#!/usr/bin/env bash
# Regenerate the paper's Figures 2-4 as CSV (and gnuplot scripts) from
# a built tree. Usage: scripts/reproduce_figures.sh [build_dir] [out_dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-figures}"
CLI="$BUILD/examples/sweep_cli"

if [[ ! -x "$CLI" ]]; then
    echo "error: $CLI not found — build the project first" >&2
    exit 1
fi
mkdir -p "$OUT"

RATES="1,5,10,15,20,25,30,40,50"

# --- Figure 2: efficiency vs request rate per n ----------------------
for n in 8 16 24 32; do
    "$CLI" --mode=mva --n=$n --rates=$RATES > "$OUT/fig2_n${n}.csv"
done

# --- Figure 3: invalidation fractions at n = 32 ----------------------
for inv in 0.10 0.20 0.30 0.40 0.50; do
    "$CLI" --mode=mva --n=32 --rates=$RATES --inv=$inv \
        > "$OUT/fig3_inv${inv#0.}.csv"
done

# --- Figure 4: block sizes at n = 32 (fixed-rate coupling) -----------
for b in 4 8 16 32 64; do
    "$CLI" --mode=mva --n=32 --rates=$RATES --block=$b \
        > "$OUT/fig4_b${b}.csv"
done

# --- Simulation cross-check points (64 processors) -------------------
# --jobs=0 fans the simulated points across all cores; the CSV is
# bit-identical for any job count (docs/PERFORMANCE.md).
"$CLI" --mode=both --n=8 --rates=5,15,25,40 --ms=2 --jobs=0 \
    > "$OUT/fig2_sim_crosscheck.csv"

# --- gnuplot driver ---------------------------------------------------
cat > "$OUT/plot.gp" <<'EOF'
set datafile separator ","
set key bottom left
set xlabel "bus requests per millisecond per processor"
set ylabel "efficiency"
set yrange [0:1]
set terminal pngcairo size 900,600

set output "fig2.png"
set title "Figure 2: efficiency vs request rate (n = 8..32)"
plot for [n in "8 16 24 32"] sprintf("fig2_n%s.csv", n) \
     using 3:5 skip 1 with linespoints title sprintf("n = %s", n)

set output "fig3.png"
set title "Figure 3: effect of invalidations (n = 32)"
plot for [i in "10 20 30 40 50"] sprintf("fig3_inv%s.csv", i) \
     using 3:5 skip 1 with linespoints title sprintf("%s%%", i)

set output "fig4.png"
set title "Figure 4: effect of block size, fixed rate (n = 32)"
plot for [b in "4 8 16 32 64"] sprintf("fig4_b%s.csv", b) \
     using 3:5 skip 1 with linespoints title sprintf("%s words", b)
EOF

echo "CSV data written to $OUT/; render with: (cd $OUT && gnuplot plot.gp)"
