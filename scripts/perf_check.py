#!/usr/bin/env python3
"""Compare a fresh BENCH_simspeed.json against the checked-in baseline.

Usage:
    perf_check.py CURRENT BASELINE [--tolerance 0.30]

Two kinds of columns are checked, per point (sim_n8, sim_n16, ...):

  determinism columns (sim_events, sim_ticks, transactions,
  efficiency) must match the baseline EXACTLY -- these describe what
  the simulator computed, not how fast, and a fixed-seed run may never
  drift.  A mismatch means a behaviour change: regenerate the baseline
  deliberately (and say why in the commit) or fix the regression.

  throughput columns (events_per_sec) may regress by at most
  --tolerance (default 30%).  Improvements never fail.  Timing noise
  on shared CI runners is real; keep the tolerance generous and treat
  this as a smoke alarm, not a microbenchmark.

Additionally, every label pair (X, X_nofilter) in the CURRENT run is
an A-B measurement of the snoop fast-reject filter taken from the
same seeds.  Two checks apply:

  the two arms' determinism columns must be IDENTICAL -- the filter
  is a simulator optimisation and may never change simulated results;

  filter speedup (events_per_sec of X over X_nofilter) must stay at
  or above --min-filter-speedup (default 1.0): if the filter stops
  paying for itself it has regressed into pure overhead and should be
  fixed or removed rather than silently dragging every run.

Similarly, every pair (X, X_prof) is an A-B measurement of the host
self-profiler (src/sim/profiler.hh) over the same seeds:

  the two arms' determinism columns must be IDENTICAL -- the profiler
  observes host time only and may never perturb simulated results;

  profiling slowdown (events_per_sec of X over X_prof) must stay at
  or below --max-prof-slowdown (default 5.0).  Profiling *on* is
  allowed to cost real time (it timestamps every event); this bound
  only catches it becoming so slow that profiled runs stop being
  representative.  The cost of profiling *off* is covered by the
  ordinary baseline comparison of X itself, since the disabled hooks
  sit in the hot path.

Every pair (X, X_t1) is an A-B measurement of the parallel
single-simulation engine (docs/PERFORMANCE.md): X runs with several
worker shards and X_t1 runs the *same* parallel engine with one
worker, over the same seeds.  Two checks apply:

  the two arms' determinism columns must be IDENTICAL -- the engine's
  canonical window order is the determinism contract, and simulated
  results may never depend on the worker count;

  parallel speedup (events_per_sec of X over X_t1) must stay at or
  above --min-parallel-speedup (default 0.9).  The default only
  guards against the engine becoming a net loss on the small shared
  CI runners; the real >= 2x scaling target is asserted on
  many-core hosts when the baseline is regenerated.  The realized
  speedup is reported side by side with the engine's own Amdahl
  projection (the par_projected_speedup column, derived from the
  realized serial-lane event fraction): realized far below projected
  means engine overhead (barriers, merges), projected itself low
  means the serial lane has grown and sharding more work off it is
  the fix.  On a single-core host the sharded arm records
  par_workers == 1 -- both arms are then the same configuration, so
  the speedup gate is skipped (the ratio would be pure noise) while
  determinism identity still applies.  A sharded arm with NO
  par_workers column at all is an explicit failure naming the
  column, never a silent skip: it means the bench stopped exporting
  the parallel telemetry and the gate would otherwise quietly die.

--points-prefix PFX restricts the baseline comparison, the A-B
pairing and --update to points whose label starts with PFX.  CI's
scheduled sim-n128-canary job uses it to gate only the env-gated
sim_n128 pair against its own baseline
(bench/baseline_simspeed_n128.json) while the ordinary perf-smoke
baseline stays free of points that a default bench run does not
produce.

A baseline column that is zero (a stale or hand-edited baseline
file) is reported as an explicit failure telling you to regenerate
with --update, never as a silent skip or a ZeroDivisionError; a key
present in the baseline but missing from the current run fails the
same way.

To regenerate the baseline after an intentional change:

    ./build/bench/bench_simspeed --jobs=1
    python3 scripts/perf_check.py --update BENCH_simspeed.json \
        bench/baseline_simspeed.json

Degraded-mode availability gate (no baseline file -- the thresholds
are the contract):

    python3 scripts/perf_check.py --availability-gate \
        BENCH_fault_resilience.json

Every failstop_* point recorded by bench_fault_resilience must have
completed == 1 (every surviving transaction finished, checker clean)
and availability >= --min-availability (default 0.99): even with a
row bus, a node or a memory module fail-stopped mid-run, at most 1%
of offered transactions may be aborted by the reconfiguration.
Graceful points must additionally report data_loss_lines == 0 --
a graceful retirement scrubs every Modified line before going dark.

Exit status: 0 ok, 1 regression/mismatch, 2 usage or missing file.
"""

import argparse
import json
import sys

DETERMINISM_KEYS = ("sim_events", "sim_ticks", "transactions",
                    "efficiency")
THROUGHPUT_KEYS = ("events_per_sec",)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def availability_gate(path, min_availability):
    pts = load(path).get("points", {})
    failstops = {k: v for k, v in sorted(pts.items())
                 if k.startswith("failstop_")}
    if not failstops:
        print(f"perf_check: {path} has no failstop_* points -- did "
              f"bench_fault_resilience run the degradation scenarios?",
              file=sys.stderr)
        return 1
    failures = []
    for label, vals in failstops.items():
        avail = vals.get("availability", 0.0)
        ok = (avail >= min_availability
              and vals.get("completed", 0.0) == 1.0)
        print(f"{label}: availability {avail:.4f} "
              f"completed {vals.get('completed', 0.0):.0f} "
              f"data_loss_lines {vals.get('data_loss_lines', 0.0):.0f} "
              f"[{'ok' if ok else 'FAIL'}]")
        if vals.get("completed", 0.0) != 1.0:
            failures.append(
                f"{label}: degraded run did not complete cleanly")
        if avail < min_availability:
            failures.append(
                f"{label}: availability {avail:.4f} below "
                f"{min_availability:.2f}")
        if vals.get("graceful", 0.0) == 1.0 \
                and vals.get("data_loss_lines", 0.0) != 0.0:
            failures.append(
                f"{label}: graceful retirement lost "
                f"{vals.get('data_loss_lines', 0.0):.0f} line(s); "
                f"must scrub to exactly 0")
    if failures:
        print("perf_check: FAILED", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("perf_check: ok")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="max fractional throughput regression")
    ap.add_argument("--min-filter-speedup", type=float, default=1.0,
                    help="min events_per_sec ratio of a point over its "
                         "_nofilter twin")
    ap.add_argument("--max-prof-slowdown", type=float, default=5.0,
                    help="max events_per_sec ratio of a point over its "
                         "_prof twin")
    ap.add_argument("--min-parallel-speedup", type=float, default=0.9,
                    help="min events_per_sec ratio of a parallel point "
                         "over its single-worker _t1 twin")
    ap.add_argument("--update", action="store_true",
                    help="rewrite BASELINE from CURRENT instead of "
                         "comparing")
    ap.add_argument("--availability-gate", action="store_true",
                    help="CURRENT is a BENCH_fault_resilience.json; "
                         "check its failstop_* degradation points "
                         "instead of comparing to a baseline")
    ap.add_argument("--min-availability", type=float, default=0.99,
                    help="min fraction of offered transactions the "
                         "degraded machine must complete")
    ap.add_argument("--points-prefix", default="",
                    help="only consider points whose label starts "
                         "with this prefix (comparison, A-B pairing "
                         "and --update alike)")
    args = ap.parse_args()

    if args.availability_gate:
        return availability_gate(args.current, args.min_availability)
    if args.baseline is None:
        ap.error("BASELINE is required unless --availability-gate")

    cur = load(args.current)
    if args.points_prefix:
        cur["points"] = {k: v for k, v in cur.get("points", {}).items()
                         if k.startswith(args.points_prefix)}
        if not cur["points"]:
            print(f"perf_check: {args.current} has no points matching "
                  f"prefix '{args.points_prefix}'", file=sys.stderr)
            return 1
    if args.update:
        cur["git_rev"] = "baseline"
        with open(args.baseline, "w") as f:
            json.dump(cur, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"perf_check: baseline {args.baseline} updated")
        return 0

    base = load(args.baseline)
    cur_pts = cur.get("points", {})
    base_pts = {k: v for k, v in base.get("points", {}).items()
                if k.startswith(args.points_prefix)}
    failures = []

    for label, bvals in sorted(base_pts.items()):
        cvals = cur_pts.get(label)
        if cvals is None:
            failures.append(f"{label}: missing from current run")
            continue
        for key in DETERMINISM_KEYS:
            if key not in bvals:
                continue
            if cvals.get(key) != bvals[key]:
                failures.append(
                    f"{label}.{key}: determinism drift "
                    f"(baseline {bvals[key]}, current "
                    f"{cvals.get(key)})")
        for key in THROUGHPUT_KEYS:
            if key not in bvals:
                continue
            if bvals[key] <= 0:
                failures.append(
                    f"{label}.{key}: baseline column is zero -- "
                    f"regenerate with --update")
                continue
            if key not in cvals:
                failures.append(
                    f"{label}.{key}: missing from current run")
                continue
            ratio = cvals[key] / bvals[key]
            status = "ok" if ratio >= 1.0 - args.tolerance else "FAIL"
            print(f"{label}.{key}: baseline {bvals[key]:.0f} "
                  f"current {cvals[key]:.0f} "
                  f"ratio {ratio:.2f} [{status}]")
            if status == "FAIL":
                failures.append(
                    f"{label}.{key}: {100 * (1 - ratio):.0f}% slower "
                    f"than baseline (tolerance "
                    f"{100 * args.tolerance:.0f}%)")

    # A-B pairs: <label> vs <label>_nofilter measured in this run.
    for off_label in sorted(cur_pts):
        if not off_label.endswith("_nofilter"):
            continue
        on_label = off_label[: -len("_nofilter")]
        on = cur_pts.get(on_label)
        off = cur_pts[off_label]
        if on is None:
            failures.append(
                f"{off_label}: no matching point {on_label}")
            continue
        for key in DETERMINISM_KEYS:
            if on.get(key) != off.get(key):
                failures.append(
                    f"{on_label}.{key}: filter on/off divergence "
                    f"(on {on.get(key)}, off {off.get(key)}) -- the "
                    f"snoop filter changed simulated results")
        for key in THROUGHPUT_KEYS:
            if off.get(key, 0.0) <= 0:
                failures.append(
                    f"{off_label}.{key}: column is zero or missing -- "
                    f"cannot compute the filter speedup")
                continue
            if key not in on:
                failures.append(
                    f"{on_label}.{key}: missing from current run")
                continue
            speedup = on[key] / off[key]
            ok = speedup >= args.min_filter_speedup
            print(f"{on_label}.filter_speedup: on "
                  f"{on[key]:.0f} off {off[key]:.0f} "
                  f"speedup {speedup:.2f} [{'ok' if ok else 'FAIL'}]")
            if not ok:
                failures.append(
                    f"{on_label}: filter speedup {speedup:.2f} below "
                    f"{args.min_filter_speedup:.2f} -- the snoop "
                    f"filter no longer pays for itself")

    # A-B pairs: <label> vs <label>_prof measured in this run.
    for prof_label in sorted(cur_pts):
        if not prof_label.endswith("_prof"):
            continue
        on_label = prof_label[: -len("_prof")]
        on = cur_pts.get(on_label)
        prof = cur_pts[prof_label]
        if on is None:
            failures.append(
                f"{prof_label}: no matching point {on_label}")
            continue
        for key in DETERMINISM_KEYS:
            if on.get(key) != prof.get(key):
                failures.append(
                    f"{on_label}.{key}: profiler on/off divergence "
                    f"(off {on.get(key)}, prof {prof.get(key)}) -- "
                    f"the self-profiler perturbed simulated results")
        for key in THROUGHPUT_KEYS:
            if prof.get(key, 0.0) <= 0:
                failures.append(
                    f"{prof_label}.{key}: column is zero or missing "
                    f"-- cannot compute the profiling slowdown")
                continue
            if key not in on:
                failures.append(
                    f"{on_label}.{key}: missing from current run")
                continue
            slowdown = on[key] / prof[key]
            ok = slowdown <= args.max_prof_slowdown
            print(f"{on_label}.prof_slowdown: off "
                  f"{on[key]:.0f} prof {prof[key]:.0f} "
                  f"slowdown {slowdown:.2f} "
                  f"[{'ok' if ok else 'FAIL'}]")
            if not ok:
                failures.append(
                    f"{on_label}: profiling slowdown {slowdown:.2f} "
                    f"above {args.max_prof_slowdown:.2f} -- profiled "
                    f"runs are no longer representative")

    # A-B pairs: <label> vs <label>_t1 measured in this run (parallel
    # engine with N workers vs the same engine with 1 worker).
    for t1_label in sorted(cur_pts):
        if not t1_label.endswith("_t1"):
            continue
        on_label = t1_label[: -len("_t1")]
        on = cur_pts.get(on_label)
        t1 = cur_pts[t1_label]
        if on is None:
            failures.append(
                f"{t1_label}: no matching point {on_label}")
            continue
        for key in DETERMINISM_KEYS:
            if on.get(key) != t1.get(key):
                failures.append(
                    f"{on_label}.{key}: thread-count divergence "
                    f"(sharded {on.get(key)}, 1-worker {t1.get(key)}) "
                    f"-- the parallel engine broke its determinism "
                    f"contract")
        if "par_workers" not in on:
            # Not a legitimate single-core skip: the bench stopped
            # exporting the parallel telemetry, so the gate cannot even
            # tell whether the speedup ratio is meaningful. Name the
            # column -- a bare KeyError here once cost a debugging
            # session.
            failures.append(
                f"{on_label}: sharded arm is missing the par_workers "
                f"column -- the bench did not export the parallel "
                f"telemetry (toMetrics/recordPoint must carry the "
                f"par_* columns), so the parallel speedup gate "
                f"cannot run")
            continue
        projected = on.get("par_projected_speedup", 0.0)
        proj_txt = (f" projected {projected:.2f}"
                    f" (serial_frac "
                    f"{on.get('par_serial_frac_events', 0.0):.3f})"
                    if projected > 0.0 else "")
        if on["par_workers"] <= 1.0:
            # Single-core host: the sharded arm ran with one worker,
            # so both arms are the same configuration and the ratio
            # would gate on pure run-to-run noise. Determinism
            # identity above still applies; the projection is still
            # worth printing -- it is derived from event counts, not
            # wall clock, so it is meaningful even here.
            print(f"{on_label}.parallel_speedup: skipped "
                  f"(par_workers <= 1; single-core host)"
                  f"{proj_txt}")
            continue
        for key in THROUGHPUT_KEYS:
            if t1.get(key, 0.0) <= 0:
                failures.append(
                    f"{t1_label}.{key}: column is zero or missing -- "
                    f"cannot compute the parallel speedup")
                continue
            if key not in on:
                failures.append(
                    f"{on_label}.{key}: missing from current run")
                continue
            speedup = on[key] / t1[key]
            ok = speedup >= args.min_parallel_speedup
            print(f"{on_label}.parallel_speedup: sharded "
                  f"{on[key]:.0f} t1 {t1[key]:.0f} "
                  f"realized {speedup:.2f}{proj_txt} "
                  f"[{'ok' if ok else 'FAIL'}]")
            if not ok:
                failures.append(
                    f"{on_label}: realized parallel speedup "
                    f"{speedup:.2f} below "
                    f"{args.min_parallel_speedup:.2f}{proj_txt} -- "
                    f"the sharded engine is a net loss on this host")

    if failures:
        print("perf_check: FAILED", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("perf_check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
