/**
 * @file
 * Offline transaction-lifecycle report over a Multicube trace export.
 *
 *   $ trace_report [--top=K] [--addr=A] trace.json
 *   $ trace_report run.trace.txt
 *
 * Accepts either export format of TransactionTracer (Chrome
 * trace-event JSON or the flat text form; detected automatically) and
 * reconstructs each transaction instance — keyed by (originator,
 * reqSeq), the same correlation the protocol itself uses to match
 * replies to requests — then prints a latency summary (p50 through
 * p99.9) and the top-K slowest completed transactions with a per-hop
 * breakdown: every bus grant/delivery, MLT route decision, memory
 * serve/bounce, snoop serve, relaunch, watchdog reissue and fault
 * injection that touched the instance, with ticks relative to issue.
 *
 * All logic lives in src/trace/trace_report.{hh,cc} so tests can
 * drive it over in-memory streams; this file is argument parsing.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "run/crash_handler.hh"
#include "run/provenance.hh"
#include "trace/trace_report.hh"

int
main(int argc, char **argv)
{
    mcube::run::installCrashHandler("trace_report");

    mcube::tracereport::Options opt;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--top=", 0) == 0)
            opt.topK = std::atoi(a.c_str() + 6);
        else if (a.rfind("--addr=", 0) == 0)
            opt.addrFilter = std::atoll(a.c_str() + 7);
        else if (a == "--help" || a == "-h") {
            std::cout << "usage: trace_report [--top=K] [--addr=A] "
                         "<trace.json | trace.txt>\n";
            return 0;
        } else {
            path = a;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: trace_report [--top=K] [--addr=A] "
                     "<trace.json | trace.txt>\n";
        return 2;
    }

    // Like sweep_cli's CSV header: a saved report names the binary
    // revision and the exact command that produced it.
    std::cout << mcube::run::provenanceHeader("trace_report", argc, argv)
              << "\n";

    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_report: cannot open " << path << "\n";
        return 2;
    }
    int rc = mcube::tracereport::report(in, std::cout, opt);
    if (rc != 0)
        std::cerr << "trace_report: no trace events in " << path << "\n";
    return rc;
}
