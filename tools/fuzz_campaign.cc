/**
 * @file
 * Chaos-campaign driver (see docs/FUZZING.md, docs/ROBUSTNESS.md).
 *
 * Modes:
 *
 *   fuzz_campaign [--runs=N] [--campaign-seed=S] [--time-budget-s=T]
 *                 [--out-dir=DIR] [--no-shrink] [--max-shrink-runs=N]
 *                 [--plant-bug] [--journal=FILE | --no-journal]
 *                 [--resume] [--no-isolate] [--deadline-s=T]
 *                 [--heartbeat-s=T] [--rss-mb=M]
 *       Generate and run a seeded campaign. Each case runs in a
 *       forked, resource-limited worker (unless --no-isolate): a
 *       crashing / OOMing / wedged case is triaged and written as a
 *       replayable crash artifact instead of killing the campaign.
 *       Completed cases append to a journal (default
 *       <out-dir>/journal.jsonl); --resume skips journaled cases, and
 *       the union of an interrupted + resumed campaign is identical
 *       to an uninterrupted one. SIGINT/SIGTERM drain gracefully
 *       (exit 128+signal, journal stays resumable); a second signal
 *       kills immediately. Failing runs write a self-contained repro
 *       artifact (<out-dir>/repro_<seed>_<i>.json) and, unless
 *       --no-shrink, a delta-debugged minimal repro (... .min.json).
 *       Exit 0 if every run passed, 1 otherwise.
 *
 *   fuzz_campaign --replay=FILE [--shrink] [--out-dir=DIR]
 *       Re-run the artifact's config and compare the result hash with
 *       the recorded one. Exit 0 on a bit-identical reproduction that
 *       still fails, 2 if the run no longer fails (bug fixed?), 3 if
 *       the hash diverged (non-determinism or binary drift), 4 if the
 *       artifact itself is corrupt, truncated, or from an
 *       incompatible format version.
 *
 *   fuzz_campaign --one-off --n=N --sys-seed=S --tester-seed=S ...
 *       Run a single explicit config (the form RandomTester's failure
 *       banner prints). Exit 0 on pass, 1 on failure.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fuzz/campaign.hh"
#include "run/crash_handler.hh"
#include "run/provenance.hh"
#include "run/shutdown.hh"

using namespace mcube;
using namespace mcube::fuzz;

namespace
{

struct Args
{
    std::vector<std::pair<std::string, std::string>> kv;

    bool
    has(const std::string &key) const
    {
        for (const auto &[k, v] : kv)
            if (k == key)
                return true;
        return false;
    }

    std::string
    str(const std::string &key, const std::string &dflt = "") const
    {
        for (const auto &[k, v] : kv)
            if (k == key)
                return v;
        return dflt;
    }

    std::uint64_t
    u64(const std::string &key, std::uint64_t dflt) const
    {
        std::string v = str(key);
        return v.empty() ? dflt : std::strtoull(v.c_str(), nullptr, 10);
    }

    double
    num(const std::string &key, double dflt) const
    {
        std::string v = str(key);
        return v.empty() ? dflt : std::strtod(v.c_str(), nullptr);
    }
};

int
usage()
{
    std::cerr
        << "usage: fuzz_campaign [--runs=N] [--campaign-seed=S]\n"
           "                     [--time-budget-s=T] [--out-dir=DIR]\n"
           "                     [--no-shrink] [--max-shrink-runs=N]\n"
           "                     [--plant-bug]\n"
           "                     [--journal=FILE | --no-journal] [--resume]\n"
           "                     [--no-isolate] [--deadline-s=T]\n"
           "                     [--heartbeat-s=T] [--rss-mb=M]\n"
           "       fuzz_campaign --replay=FILE [--shrink] [--out-dir=DIR]\n"
           "       fuzz_campaign --one-off --n=N --sys-seed=S\n"
           "                     [--tester-seed=S] [--ops=N] [--chaos=1]\n"
           "                     [--plan=FILE] ... (see docs/FUZZING.md)\n";
    return 2;
}

void
printResult(const RunConfig &cfg, const RunResult &res)
{
    std::cout << "config: n=" << cfg.n << " sys-seed=" << cfg.sysSeed
              << " tester-seed=" << cfg.tester.seed
              << " ops=" << cfg.tester.opsPerNode
              << " specs=" << cfg.plan.specs.size() << "\n"
              << "result: " << toString(res.failure) << " hash=0x"
              << std::hex << res.hash << std::dec
              << " ops=" << res.opsIssued << " bus-ops=" << res.busOps
              << " injections=" << res.injections
              << " violations=" << res.violations
              << " read-failures=" << res.readFailures
              << " end-tick=" << res.endTick << "\n";
    for (const auto &s : res.report)
        std::cout << "  " << s << "\n";
}

int
replay(const Args &args)
{
    const std::string path = args.str("replay");
    std::ifstream in(path);
    if (!in) {
        std::cerr << "fuzz_campaign: cannot open " << path << "\n";
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    Json j = Json::parse(ss.str(), &err);
    if (!err.empty()) {
        // Exit 4: the artifact file itself is bad (truncated upload,
        // hand-edited, version skew) — distinct from "cannot open"
        // (2) and from "opens fine but no longer reproduces" (2/3).
        std::cerr << "fuzz_campaign: " << path
                  << ": corrupt artifact: " << err << "\n";
        return 4;
    }
    if (std::string why = artifactParseError(j); !why.empty()) {
        std::cerr << "fuzz_campaign: " << path << ": " << why << "\n";
        return 4;
    }
    RunConfig cfg;
    std::uint64_t wantHash = 0;
    FailureKind wantFailure = FailureKind::None;
    if (!artifactFromJson(j, cfg, wantHash, wantFailure)) {
        std::cerr << "fuzz_campaign: " << path
                  << ": not a repro artifact\n";
        return 4;
    }

    // A crash artifact records the config and the worker's triage but
    // no result: replay it for the crash, not for a hash comparison.
    if (!j.has("result") && j.has("worker")) {
        std::cout << "replay: crash artifact (worker triage: "
                  << j.at("worker").str("triage", "?")
                  << "); re-running config in-process\n";
        RunResult res = runOnce(cfg);
        printResult(cfg, res);
        std::cout << "replay: config ran to completion without "
                     "crashing this binary\n";
        return res.failed() ? 1 : 0;
    }

    RunResult res = runOnce(cfg);
    printResult(cfg, res);

    if (res.hash != wantHash) {
        std::cout << "replay: hash mismatch (recorded 0x" << std::hex
                  << wantHash << ", got 0x" << res.hash << std::dec
                  << ") - non-deterministic or the binary changed\n";
        return 3;
    }
    if (!res.failed()) {
        std::cout << "replay: bit-identical, and the run no longer "
                     "fails\n";
        return 2;
    }
    std::cout << "replay: reproduced bit-identically ("
              << toString(res.failure) << ")\n";

    if (args.has("shrink")) {
        ShrinkResult s = shrinkRepro(
            cfg, static_cast<unsigned>(args.u64("max-shrink-runs", 400)),
            [](const std::string &m) { std::cout << m << "\n"; });
        std::string out = args.str("out-dir", ".") + "/replay.min.json";
        std::ofstream o(out);
        o << artifactJson(s.config, s.result, "shrunken from " + path)
                 .dump();
        std::cout << "wrote " << out << "\n";
    }
    return 0;
}

int
oneOff(const Args &args)
{
    RunConfig cfg;
    cfg.n = static_cast<unsigned>(args.u64("n", cfg.n));
    cfg.sysSeed = args.u64("sys-seed", cfg.sysSeed);
    cfg.requestTimeoutTicks =
        args.u64("timeout-ticks", cfg.requestTimeoutTicks);
    cfg.maxTicks = args.u64("max-ticks", cfg.maxTicks);

    cfg.tester.seed = args.u64("tester-seed", cfg.tester.seed);
    cfg.tester.opsPerNode =
        static_cast<unsigned>(args.u64("ops", cfg.tester.opsPerNode));
    cfg.tester.numDataLines = static_cast<unsigned>(
        args.u64("data-lines", cfg.tester.numDataLines));
    cfg.tester.numLockLines = static_cast<unsigned>(
        args.u64("lock-lines", cfg.tester.numLockLines));
    cfg.tester.pWrite = args.num("p-write", cfg.tester.pWrite);
    cfg.tester.pAllocate = args.num("p-alloc", cfg.tester.pAllocate);
    cfg.tester.pTset = args.num("p-tset", cfg.tester.pTset);
    cfg.tester.pSyncOfLocks =
        args.num("p-sync", cfg.tester.pSyncOfLocks);
    cfg.tester.maxThink = args.u64("think", cfg.tester.maxThink);
    cfg.tester.chaos = args.u64("chaos", 0) != 0;

    if (args.has("plan")) {
        std::ifstream in(args.str("plan"));
        if (!in) {
            std::cerr << "fuzz_campaign: cannot open "
                      << args.str("plan") << "\n";
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        std::string err;
        Json j = Json::parse(ss.str(), &err);
        if (!err.empty()) {
            // Exit 4: malformed file, same convention as --replay
            // artifacts (2 = cannot open).
            std::cerr << "fuzz_campaign: " << args.str("plan")
                      << ": bad JSON: " << err << "\n";
            return 4;
        }
        if (std::string why = faultPlanParseError(j); !why.empty()) {
            // An unknown fault-kind string is rejected by name here
            // rather than silently defaulting to some other kind.
            std::cerr << "fuzz_campaign: " << args.str("plan") << ": "
                      << why << "\n";
            return 4;
        }
        if (!faultPlanFromJson(j, cfg.plan)) {
            std::cerr << "fuzz_campaign: " << args.str("plan")
                      << ": fault plan does not parse\n";
            return 4;
        }
    }

    RunResult res = runOnce(cfg);
    printResult(cfg, res);
    return res.failed() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    run::installCrashHandler("fuzz_campaign");

    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0)
            return usage();
        a = a.substr(2);
        auto eq = a.find('=');
        if (eq == std::string::npos)
            args.kv.emplace_back(a, "");
        else
            args.kv.emplace_back(a.substr(0, eq), a.substr(eq + 1));
    }
    if (args.has("help"))
        return usage();

    std::cout << run::provenanceHeader("fuzz_campaign", argc, argv)
              << "\n";

    if (args.has("replay"))
        return replay(args);
    if (args.has("one-off"))
        return oneOff(args);

    run::GracefulShutdown::install();

    CampaignOptions opt;
    opt.seed = args.u64("campaign-seed", 1);
    opt.runs = static_cast<unsigned>(args.u64("runs", 50));
    opt.timeBudgetSeconds = args.num("time-budget-s", 0.0);
    opt.shrink = !args.has("no-shrink");
    opt.maxShrinkRuns =
        static_cast<unsigned>(args.u64("max-shrink-runs", 400));
    opt.outDir = args.str("out-dir", "fuzz_artifacts");
    opt.plantUnsafeDropReply = args.has("plant-bug");
    opt.log = [](const std::string &m) { std::cout << m << "\n"; };

    opt.isolate = !args.has("no-isolate");
    opt.limits.wallSeconds = args.num("deadline-s", 300.0);
    opt.limits.heartbeatSeconds = args.num("heartbeat-s", 30.0);
    opt.limits.rssBytes = args.u64("rss-mb", 4096) * (1ull << 20);
    if (!args.has("no-journal"))
        opt.journalPath =
            args.str("journal", opt.outDir + "/journal.jsonl");
    opt.resume = args.has("resume");
    opt.stopRequested = [] {
        return run::GracefulShutdown::requested();
    };
    if (args.has("plant-crash-at")) {
        // Harness self-test: kill case N with an abort and prove the
        // campaign triages it and carries on.
        unsigned at =
            static_cast<unsigned>(args.u64("plant-crash-at", 0));
        opt.preRun = [at](unsigned i) {
            if (i == at)
                __builtin_trap();
        };
    }

    std::cout << "fuzz_campaign: seed=" << opt.seed
              << " runs=" << opt.runs << " rev=" << gitRevision()
              << (opt.isolate ? " isolate=on" : " isolate=off")
              << (opt.journalPath.empty()
                      ? std::string{}
                      : " journal=" + opt.journalPath)
              << "\n";
    CampaignSummary sum = runCampaign(opt);
    if (!sum.error.empty()) {
        std::cerr << "fuzz_campaign: " << sum.error << "\n";
        return 2;
    }
    std::cout << "campaign: " << sum.runsDone << " run(s)";
    if (sum.skipped > 0)
        std::cout << ", " << sum.skipped << " resumed from journal";
    std::cout << ", " << sum.failures << " failure(s)";
    if (sum.crashes > 0)
        std::cout << ", " << sum.crashes << " crashed worker(s)";
    if (!sum.artifacts.empty())
        std::cout << ", artifacts in " << opt.outDir;
    std::cout << "\ncampaign-hash: 0x" << std::hex << sum.campaignHash
              << std::dec << "\n";
    if (sum.interrupted) {
        std::cout << "interrupted: journal is resumable with --resume\n";
        return run::GracefulShutdown::exitCode();
    }
    return sum.failures > 0 || sum.crashes > 0 ? 1 : 0;
}
