/**
 * @file
 * Self-profile report: where host time goes and how parallelizable
 * the grid is (see src/sim/profiler.hh and docs/OBSERVABILITY.md).
 *
 * Two modes:
 *
 *   $ prof_report profile.json
 *       Print the human report from a profile JSON saved earlier
 *       (sweep_cli --profile-out, or this tool's --json-out).
 *
 *   $ prof_report --run-n=32 [--rate=25] [--ms=0.5] [--seed=S]
 *                 [--json-out=prof.json] [--folded-out=prof.folded]
 *       Run a profiled MixWorkload simulation on an n x n machine,
 *       then print the same report. The report is always produced by
 *       exporting the profile to JSON and re-parsing it — the
 *       round-trip CI asserts is exercised on every run.
 *
 * Feed --folded-out to flamegraph.pl for a host-time flame graph of
 * the simulator itself.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/system.hh"
#include "proc/mix_workload.hh"
#include "run/crash_handler.hh"
#include "run/provenance.hh"
#include "sim/json.hh"
#include "sim/profiler.hh"

namespace
{

int
usage(int rc)
{
    (rc ? std::cerr : std::cout)
        << "usage: prof_report <profile.json>\n"
           "       prof_report --run-n=N [--rate=R] [--ms=M] "
           "[--seed=S]\n"
           "                   [--json-out=F] [--folded-out=F]\n";
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    mcube::run::installCrashHandler("prof_report");

    unsigned runN = 0;
    double rate = 25.0;
    double simMs = 0.5;
    std::uint64_t seed = 0;
    bool seedSet = false;
    std::string jsonOut;
    std::string foldedOut;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--run-n=", 0) == 0)
            runN = std::atoi(a.c_str() + 8);
        else if (a.rfind("--rate=", 0) == 0)
            rate = std::atof(a.c_str() + 7);
        else if (a.rfind("--ms=", 0) == 0)
            simMs = std::atof(a.c_str() + 5);
        else if (a.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(a.c_str() + 7, nullptr, 0);
            seedSet = true;
        } else if (a.rfind("--json-out=", 0) == 0)
            jsonOut = a.substr(11);
        else if (a.rfind("--folded-out=", 0) == 0)
            foldedOut = a.substr(13);
        else if (a == "--help" || a == "-h")
            return usage(0);
        else
            path = a;
    }
    if ((runN == 0) == path.empty())
        return usage(2);

    std::cout << mcube::run::provenanceHeader("prof_report", argc, argv)
              << "\n";

    std::string text;
    if (runN > 0) {
        mcube::SystemParams sp;
        sp.n = runN;
        if (seedSet)
            sp.seed = seed;
        mcube::MixParams mix;
        mix.requestsPerMs = rate;
        if (seedSet)
            mix.seed = seed;

        mcube::SimProfiler prof;
        prof.activate();
        mcube::MulticubeSystem sys(sp);
        mcube::MixWorkload wl(sys, mix);
        wl.start();
        sys.run(static_cast<mcube::Tick>(simMs * 1e6));
        wl.stop();
        sys.drain();
        prof.deactivate();

        std::ostringstream oss;
        prof.exportJson(oss);
        text = oss.str();
        if (!jsonOut.empty()) {
            std::ofstream out(jsonOut);
            if (!out) {
                std::cerr << "prof_report: cannot write " << jsonOut
                          << "\n";
                return 2;
            }
            out << text;
        }
        if (!foldedOut.empty()) {
            std::ofstream out(foldedOut);
            if (!out) {
                std::cerr << "prof_report: cannot write " << foldedOut
                          << "\n";
                return 2;
            }
            prof.exportFolded(out);
        }
    } else {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "prof_report: cannot open " << path << "\n";
            return 2;
        }
        std::ostringstream oss;
        oss << in.rdbuf();
        text = oss.str();
    }

    // Both modes report from the parsed JSON, so a freshly profiled
    // run also proves the export round-trips.
    std::string err;
    mcube::Json profile = mcube::Json::parse(text, &err);
    if (profile.isNull()) {
        std::cerr << "prof_report: parse error: " << err << "\n";
        return 1;
    }
    if (!mcube::profReport(profile, std::cout)) {
        std::cerr << "prof_report: not a v1 profile JSON\n";
        return 1;
    }
    return 0;
}
