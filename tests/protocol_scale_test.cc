/** @file
 * Scale tests: the paper's actual design point — a 32 x 32 grid of
 * 1024 processors — simulated end to end. The invariant checker is
 * O(N) per bus op, so these runs validate functionally (completion,
 * efficiency band, table consistency at the end) rather than per-op.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "proc/mix_workload.hh"

using namespace mcube;

TEST(Scale, ThousandProcessorMachineRuns)
{
    SystemParams p;
    p.n = 32;  // 1024 processors, 64 buses
    p.ctrl.cache = {128, 4};
    p.ctrl.mlt = {64, 4};
    MulticubeSystem sys(p);

    MixParams mix;
    mix.requestsPerMs = 25.0;  // the paper's design-point rate
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(500'000);  // 0.5 ms simulated
    wl.stop();
    ASSERT_TRUE(sys.drain());

    // ~1024 procs x 25/ms x 0.5 ms = ~12.8k transactions.
    EXPECT_GT(wl.totalCompleted(), 8'000u);
    // The MVA puts the 1K machine at ~0.84 efficiency here; allow a
    // generous band for the short run.
    EXPECT_GT(wl.efficiency(), 0.6);
    EXPECT_LE(wl.efficiency(), 1.01);

    // Post-run structural consistency: identical tables per column.
    for (unsigned c = 0; c < sys.n(); ++c) {
        const ModifiedLineTable &ref = sys.node(0, c).table();
        for (unsigned r = 1; r < sys.n(); ++r)
            ASSERT_TRUE(sys.node(r, c).table().identicalTo(ref))
                << "column " << c << " row " << r;
    }
}

TEST(Scale, RowBroadcastCostGrowsWithN)
{
    // One invalidation broadcast costs (n+1) row + 3 column ops:
    // measure the marginal cost at n = 16 vs n = 32 directly.
    auto broadcast_ops = [](unsigned n) {
        SystemParams p;
        p.n = n;
        MulticubeSystem sys(p);
        sys.node(n - 1, n - 2).write(0, 1, [](const TxnResult &) {});
        sys.drain();
        return sys.totalBusOps();
    };
    EXPECT_EQ(broadcast_ops(16), 16u + 4u);
    EXPECT_EQ(broadcast_ops(32), 32u + 4u);
}

TEST(Scale, BandwidthScalesWithMachine)
{
    // Same per-processor rate on 16x16 vs 32x32: per-bus utilisation
    // grows only mildly (the broadcast term), not with N — total
    // bandwidth grows with the machine (Section 6).
    auto util = [](unsigned n) {
        SystemParams p;
        p.n = n;
        p.ctrl.cache = {128, 4};
        MulticubeSystem sys(p);
        MixParams mix;
        mix.requestsPerMs = 10.0;
        mix.seed = 11;
        MixWorkload wl(sys, mix);
        wl.start();
        sys.run(500'000);
        wl.stop();
        sys.drain();
        return sys.meanBusUtilization(0);
    };
    // Processors quadruple (256 -> 1024); if bandwidth did not scale,
    // per-bus utilisation would quadruple too. It grows by the
    // broadcast term and sharing effects only.
    double u16 = util(16);
    double u32 = util(32);
    EXPECT_LT(u32, u16 * 3.0);
    EXPECT_GT(u32, u16 * 0.8);
}
