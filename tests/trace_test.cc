/** @file Tests for trace capture, serialisation and replay. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/trace.hh"

using namespace mcube;

namespace
{

Trace
sampleTrace()
{
    Trace t;
    t.add({0, TraceOp::Store, 10, 111, 100});
    t.add({5, TraceOp::Load, 10, 0, 2000});
    t.add({5, TraceOp::Store, 11, 222, 50});
    t.add({9, TraceOp::AllocStore, 12, 333, 0});
    t.add({9, TraceOp::Tset, 13, 0, 10});
    t.add({9, TraceOp::Release, 13, 0, 500});
    return t;
}

} // namespace

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t = sampleTrace();
    std::stringstream ss;
    t.save(ss);

    Trace u;
    ASSERT_TRUE(u.load(ss));
    ASSERT_EQ(u.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(u.all()[i], t.all()[i]) << "record " << i;
}

TEST(Trace, LoadSkipsCommentsAndBlanks)
{
    std::stringstream ss;
    ss << "# a comment\n\n0 L 5 0 10\n";
    Trace t;
    ASSERT_TRUE(t.load(ss));
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.all()[0].op, TraceOp::Load);
    EXPECT_EQ(t.all()[0].addr, 5u);
}

TEST(Trace, LoadRejectsBadOpcode)
{
    std::stringstream ss;
    ss << "0 X 5 0 10\n";
    Trace t;
    EXPECT_FALSE(t.load(ss));
}

TEST(Trace, LoadRejectsTruncatedLine)
{
    std::stringstream ss;
    ss << "0 L 5\n";
    Trace t;
    EXPECT_FALSE(t.load(ss));
}

TEST(Trace, ForNodeFilters)
{
    Trace t = sampleTrace();
    auto n5 = t.forNode(5);
    ASSERT_EQ(n5.size(), 2u);
    EXPECT_EQ(n5[0].op, TraceOp::Load);
    EXPECT_EQ(n5[1].op, TraceOp::Store);
    EXPECT_EQ(t.maxNode(), 9u);
}

TEST(TraceReplay, ExecutesAllReferences)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    Trace t = sampleTrace();
    TraceReplayer rep(sys, t);
    rep.start();
    sys.eventQueue().runUntil(400'000'000);
    sys.drain();

    EXPECT_TRUE(rep.finished());
    EXPECT_EQ(rep.completed(), t.size());
    EXPECT_EQ(checker.violations(), 0u);
    // The store of 111 to line 10 must be globally visible.
    EXPECT_EQ(checker.goldenToken(10), 111u);
    EXPECT_EQ(checker.goldenToken(11), 222u);
    EXPECT_EQ(checker.goldenToken(12), 333u);
}

TEST(TraceReplay, RespectsGaps)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);

    Trace t;
    t.add({0, TraceOp::Store, 1, 1, 50'000});
    t.add({0, TraceOp::Store, 2, 2, 50'000});
    TraceReplayer rep(sys, t);
    rep.start();
    sys.eventQueue().runUntil(400'000'000);
    sys.drain();
    EXPECT_TRUE(rep.finished());
    // Two 50 us gaps must have elapsed.
    EXPECT_GE(sys.eventQueue().now(), 100'000u);
}

TEST(TraceReplay, ProducerConsumerOrderPreserved)
{
    // Node 0 writes a sequence of lines; node 3 reads them much later
    // (big gap) and must observe the stored values.
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 32);

    Trace t;
    for (Addr a = 0; a < 8; ++a)
        t.add({0, TraceOp::Store, 20 + a, 900 + a, 10});
    for (Addr a = 0; a < 8; ++a)
        t.add({3, TraceOp::Load, 20 + a, 0, a == 0 ? 400'000u : 10u});

    TraceReplayer rep(sys, t);
    rep.start();
    sys.eventQueue().runUntil(800'000'000);
    sys.drain();
    ASSERT_TRUE(rep.finished());

    // The reader's cache now holds the producer's values.
    for (Addr a = 0; a < 8; ++a)
        EXPECT_EQ(sys.node(3).dataOf(20 + a).token, 900 + a);
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(TraceReplay, LargeSyntheticTraceStaysCoherent)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 128);

    // Generate a pseudo-random trace mixing 16 nodes over 12 lines.
    Random rng(2024);
    Trace t;
    for (unsigned i = 0; i < 600; ++i) {
        TraceRecord r;
        r.node = rng.below(16);
        r.addr = rng.below(12);
        bool write = rng.chance(0.4);
        r.op = write ? TraceOp::Store : TraceOp::Load;
        r.token = write ? (i + 1) * 1000 + r.node : 0;
        r.gap = 100 + rng.below(400);
        t.add(r);
    }

    TraceReplayer rep(sys, t);
    rep.start();
    sys.eventQueue().runUntil(4'000'000'000ull);
    sys.drain();
    ASSERT_TRUE(rep.finished());
    EXPECT_EQ(rep.completed(), 600u);
    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);
}
