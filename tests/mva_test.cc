/** @file Unit and property tests for the mean-value analysis model. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mva/mva_model.hh"

using namespace mcube;

namespace
{

MvaResult
solve(unsigned n, double rate)
{
    MvaParams p;
    p.n = n;
    p.requestsPerMs = rate;
    return MvaModel(p).solve();
}

} // namespace

TEST(Mva, ZeroLoadApproachesPerfectEfficiency)
{
    MvaResult r = solve(32, 0.1);
    EXPECT_GT(r.efficiency, 0.99);
    EXPECT_LT(r.efficiency, 1.0);
}

TEST(Mva, EfficiencyDecreasesWithRequestRate)
{
    double last = 1.0;
    for (double rate : {1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0}) {
        double e = solve(32, rate).efficiency;
        EXPECT_LT(e, last) << "rate " << rate;
        last = e;
    }
}

TEST(Mva, EfficiencyDecreasesWithProcessorsPerRow)
{
    // Figure 2: curves ordered 8, 16, 24, 32 from top to bottom.
    double rate = 25.0;
    double e8 = solve(8, rate).efficiency;
    double e16 = solve(16, rate).efficiency;
    double e24 = solve(24, rate).efficiency;
    double e32 = solve(32, rate).efficiency;
    EXPECT_GT(e8, e16);
    EXPECT_GT(e16, e24);
    EXPECT_GT(e24, e32);
}

TEST(Mva, PaperDesignPointNearNinetyPercent)
{
    // "our goal is to support 1K processors at roughly ninety percent
    // utilization ... less than twenty-five requests per millisecond"
    double e = solve(32, 20.0).efficiency;
    EXPECT_GT(e, 0.85);
    double e25 = solve(32, 25.0).efficiency;
    EXPECT_GT(e25, 0.75);
    EXPECT_LT(e25, 0.95);
}

TEST(Mva, InvalidationFractionLowersEfficiency)
{
    // Figure 3: 10..50 percent write misses to shared data, top to
    // bottom.
    double last = 1.0;
    for (double inv : {0.1, 0.2, 0.3, 0.4, 0.5}) {
        MvaParams p;
        p.n = 32;
        p.requestsPerMs = 30.0;
        p.fracWriteUnmod = inv;
        p.fracReadUnmod = 0.8 - inv;
        double e = MvaModel(p).solve().efficiency;
        EXPECT_LT(e, last) << "inv " << inv;
        last = e;
    }
}

TEST(Mva, InvalidationEffectSmallAtLowLoad)
{
    // "in the range of ninety percent processing power, the effect of
    // increasing invalidations is very small."
    MvaParams lo;
    lo.n = 32;
    lo.requestsPerMs = 5.0;
    lo.fracWriteUnmod = 0.1;
    lo.fracReadUnmod = 0.7;
    MvaParams hi = lo;
    hi.fracWriteUnmod = 0.5;
    hi.fracReadUnmod = 0.3;
    double gap = MvaModel(lo).solve().efficiency
               - MvaModel(hi).solve().efficiency;
    EXPECT_LT(gap, 0.01);
}

TEST(Mva, LargeBlocksHurtAtFixedRate)
{
    // Figure 4, vertical dashed line: doubling the block size without
    // reducing the request rate degrades performance monotonically.
    double last = 1.0;
    for (unsigned b : {4u, 8u, 16u, 32u, 64u}) {
        MvaParams p;
        p.n = 32;
        p.blockWords = b;
        double e = MvaModel(p).solve().efficiency;
        EXPECT_LT(e, last) << "block " << b;
        last = e;
    }
}

TEST(Mva, LargeBlocksHelpWhenRateHalves)
{
    // Figure 4, sloping dashed line: if doubling the block halves the
    // request rate, bigger blocks win.
    double last = 0.0;
    for (unsigned b : {4u, 8u, 16u, 32u, 64u}) {
        MvaParams p;
        p.n = 32;
        p.blockWords = b;
        p.requestsPerMs = 25.0 * 16.0 / b;
        double e = MvaModel(p).solve().efficiency;
        EXPECT_GT(e, last) << "block " << b;
        last = e;
    }
}

TEST(Mva, ModerateCouplingHasInteriorOptimum)
{
    // With a miss-rate/block coupling between the two extremes the
    // best block size is interior (paper: 16 or 32 words).
    auto eff = [](unsigned b) {
        MvaParams p;
        p.n = 32;
        p.blockWords = b;
        p.requestsPerMs = 25.0 * 4.0 / std::sqrt(double(b));
        return MvaModel(p).solve().efficiency;
    };
    double e4 = eff(4), e8 = eff(8), e16 = eff(16), e64 = eff(64);
    double best_interior = std::max(e8, e16);
    EXPECT_GT(best_interior, e64);
    EXPECT_GE(best_interior, e4 - 0.02);
}

TEST(Mva, RequestedWordFirstCutsRawLatency)
{
    MvaParams p;
    p.n = 32;
    p.blockWords = 32;
    double base = MvaModel(p).rawLatency();
    p.technique = LatencyTechnique::RequestedWordFirst;
    double rwf = MvaModel(p).rawLatency();
    p.technique = LatencyTechnique::Both;
    double both = MvaModel(p).rawLatency();
    EXPECT_LT(rwf, base);
    EXPECT_LT(both, rwf);
    // Both techniques remove nearly both block transfers from the
    // critical path: raw latency approaches header + fixed latency.
    EXPECT_LT(both, base - 2 * (32 * 50.0 - 100.0) + 1.0);
}

TEST(Mva, CutThroughMatchesRequestedWordFirstLatency)
{
    MvaParams p;
    p.n = 32;
    p.blockWords = 32;
    p.technique = LatencyTechnique::CutThrough;
    double ct = MvaModel(p).rawLatency();
    p.technique = LatencyTechnique::RequestedWordFirst;
    double rwf = MvaModel(p).rawLatency();
    EXPECT_DOUBLE_EQ(ct, rwf);
}

TEST(Mva, PieceTransfersTradeOccupancyForLatency)
{
    MvaParams p;
    p.n = 32;
    p.blockWords = 32;
    MvaModel whole(p);
    p.pieceWords = 4;
    MvaModel pieces(p);
    // Pieces reduce the critical-path latency...
    EXPECT_LT(pieces.rawLatency(), whole.rawLatency());
    // ...but add header overhead to the wire occupancy.
    EXPECT_GT(pieces.rowDemandPerTxn(), whole.rowDemandPerTxn());
}

TEST(Mva, UtilizationBelowOneAndConsistent)
{
    MvaResult r = solve(32, 25.0);
    EXPECT_GT(r.rowUtilization, 0.0);
    EXPECT_LE(r.rowUtilization, 1.0);
    EXPECT_GT(r.colUtilization, 0.0);
    EXPECT_LE(r.colUtilization, 1.0);
    // Row buses carry the broadcast traffic: busier than columns.
    EXPECT_GT(r.rowUtilization, r.colUtilization);
}

TEST(Mva, ThroughputTimesCycleIsUnity)
{
    MvaResult r = solve(16, 20.0);
    EXPECT_NEAR(r.throughputPerProc * r.cycleTimeNs, 1.0, 1e-9);
    EXPECT_NEAR(r.efficiency,
                (1e6 / 20.0) / r.cycleTimeNs, 1e-9);
}

TEST(Mva, HomeCacheHitsRelieveColumnsAndLatency)
{
    // Section 6: reads to unmodified data "are likely to be satisfied
    // by some cache along the path to memory" — modelled as a
    // home-column cache hit fraction.
    MvaParams base;
    base.n = 32;
    base.requestsPerMs = 25.0;
    MvaParams helped = base;
    helped.pHomeCacheHit = 0.5;

    MvaResult b = MvaModel(base).solve();
    MvaResult h = MvaModel(helped).solve();
    EXPECT_LT(h.colUtilization, b.colUtilization);
    EXPECT_GT(h.efficiency, b.efficiency);
    EXPECT_LT(MvaModel(helped).rawLatency(),
              MvaModel(base).rawLatency());
}

TEST(Mva, InvalidMixYieldsZeroResult)
{
    MvaParams p;
    p.fracReadUnmod = 0.9;  // sums to 1.3
    MvaResult r = MvaModel(p).solve();
    EXPECT_EQ(r.efficiency, 0.0);
}

TEST(Mva, SaturationIsMonotoneInRate)
{
    // Regression for the damped fixed point: deep saturation must not
    // oscillate back upward.
    double last = 1.0;
    for (double rate = 30.0; rate <= 120.0; rate += 10.0) {
        double e = solve(32, rate).efficiency;
        EXPECT_LE(e, last + 1e-6) << "rate " << rate;
        last = e;
    }
}
