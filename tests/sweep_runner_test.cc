/**
 * @file
 * Tests for the parallel sweep engine (src/sim/sweep_runner): seed
 * derivation, fan-out coverage, exception propagation, and — the
 * contract the bench suite rides on — bit-identical simulation
 * results regardless of job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/system.hh"
#include "proc/mix_workload.hh"
#include "sim/sweep_runner.hh"

using namespace mcube;
using namespace mcube::sweep;

TEST(PointSeed, PureAndWellMixed)
{
    // Same inputs, same output.
    EXPECT_EQ(pointSeed(12345, 0), pointSeed(12345, 0));
    EXPECT_EQ(pointSeed(12345, 7), pointSeed(12345, 7));

    // Neighbouring indices and neighbouring base seeds give distinct
    // streams (the whole point of the splitmix64 finalizer).
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 1ull, 12345ull}) {
        for (std::uint64_t i = 0; i < 64; ++i)
            seen.insert(pointSeed(base, i));
    }
    EXPECT_EQ(seen.size(), 3u * 64u);

    // Avalanche sanity: consecutive indices differ in many bits.
    for (std::uint64_t i = 0; i < 16; ++i) {
        std::uint64_t x = pointSeed(97, i) ^ pointSeed(97, i + 1);
        EXPECT_GE(__builtin_popcountll(x), 8);
    }
}

TEST(ResolveJobs, ZeroMeansHardware)
{
    EXPECT_GE(resolveJobs(0), 1u);
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(5), 5u);
}

TEST(SweepRunner, ForEachCoversEveryIndexOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        SweepRunner runner(jobs);
        const std::size_t count = 100;
        std::vector<std::atomic<int>> hits(count);
        runner.forEach(count, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs "
                                         << jobs;
    }
}

TEST(SweepRunner, EmptyAndSinglePointSweeps)
{
    SweepRunner runner(4);
    runner.forEach(0, [](std::size_t) { FAIL(); });
    int calls = 0;
    runner.forEach(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(SweepRunner, MapReturnsIndexOrderedResults)
{
    SweepRunner runner(4);
    auto out = runner.map<std::uint64_t>(
        50, [](std::size_t i) { return pointSeed(7, i); });
    ASSERT_EQ(out.size(), 50u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], pointSeed(7, i)) << i;
}

TEST(SweepRunner, ExceptionsPropagateAfterJoin)
{
    for (unsigned jobs : {1u, 4u}) {
        SweepRunner runner(jobs);
        EXPECT_THROW(
            runner.forEach(20,
                           [](std::size_t i) {
                               if (i == 13)
                                   throw std::runtime_error("boom");
                           }),
            std::runtime_error)
            << "jobs " << jobs;
    }
}

namespace
{

/** One simulated point of a small rate sweep, reduced to a stable
 *  fingerprint: every flattened stat of the finished system. */
std::string
simFingerprint(std::uint64_t seed, double rate)
{
    SystemParams sp;
    sp.n = 4;
    sp.seed = seed;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = rate;
    mix.seed = seed ^ 0x5eedu;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(300'000);
    wl.stop();
    sys.drain();

    FlatStats flat;
    sys.statistics().flatten(flat);
    std::ostringstream os;
    os.precision(17);
    for (const auto &[name, value] : flat)
        os << name << '=' << value << '\n';
    os << "eff=" << wl.efficiency() << " txns=" << wl.totalCompleted()
       << " events=" << sys.eventQueue().eventsExecuted();
    return os.str();
}

std::vector<std::string>
runSweep(unsigned jobs)
{
    const std::vector<double> rates = {5, 10, 15, 20, 25, 30};
    SweepRunner runner(jobs);
    return runner.map<std::string>(rates.size(), [&](std::size_t i) {
        return simFingerprint(pointSeed(12345, i), rates[i]);
    });
}

} // namespace

// The acceptance criterion of the sweep engine: a fixed-seed sweep
// produces bit-identical per-point results (full stat tree included)
// for any --jobs value, because seeds derive from (base, index) and
// results are stored by index.
TEST(SweepRunner, SimSweepBitIdenticalAcrossJobCounts)
{
    const std::vector<std::string> ref = runSweep(1);
    for (unsigned jobs : {2u, 4u, 8u}) {
        const std::vector<std::string> got = runSweep(jobs);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_EQ(got[i], ref[i])
                << "point " << i << " diverged at jobs=" << jobs;
    }
}
