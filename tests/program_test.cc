/** @file
 * Tests for the mini-program interpreter and the three Section 4 lock
 * disciplines, including mutual-exclusion correctness under
 * contention.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/processor.hh"
#include "proc/program.hh"

using namespace mcube;
using namespace mcube::prog;

namespace
{

struct Rig
{
    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<ProgramRunner>> runners;

    explicit
    Rig(unsigned n = 4)
    {
        SystemParams p;
        p.n = n;
        p.ctrl.cache = {64, 4};
        sys = std::make_unique<MulticubeSystem>(p);
        checker = std::make_unique<CoherenceChecker>(*sys, 64);
    }

    ProgramRunner &
    addRunner(NodeId node, std::vector<Instr> program)
    {
        ProcessorParams pp;
        procs.push_back(std::make_unique<Processor>(
            "p" + std::to_string(node), sys->eventQueue(),
            sys->node(node), pp));
        runners.push_back(std::make_unique<ProgramRunner>(
            "r" + std::to_string(node), sys->eventQueue(),
            *procs.back(), std::move(program),
            1000 + node));
        return *runners.back();
    }

    bool
    runAll(Tick limit = 1'000'000'000)
    {
        for (auto &r : runners)
            r->start();
        sys->eventQueue().runUntil(limit);
        for (auto &r : runners)
            if (!r->halted())
                return false;
        return sys->drain();
    }
};

/** Critical-section program: lock; acc = mem[c]; acc += 1;
 *  mem[c] = acc; unlock; repeated `iters` times. */
std::vector<Instr>
counterProgram(OpCode lock_kind, Addr lock, Addr counter,
               unsigned iters)
{
    return {
        setCnt(iters),                 // 0
        Instr{lock_kind, lock, 0, 0},  // 1: loop body
        load(counter),                 // 2
        addAcc(1),                     // 3
        storeAcc(counter),             // 4
        unlock(lock, 1),               // 5
        decJnz(1),                     // 6
        halt(),                        // 7
    };
}

} // namespace

TEST(Program, StraightLineLoadsAndStores)
{
    Rig rig;
    auto &r = rig.addRunner(0, {
        store(5, 42),
        load(5),
        addAcc(8),
        storeAcc(6),
        load(6),
        halt(),
    });
    ASSERT_TRUE(rig.runAll());
    EXPECT_EQ(r.acc(), 50u);
}

TEST(Program, CountedLoopExecutesBodyNTimes)
{
    Rig rig;
    auto &r = rig.addRunner(0, {
        setCnt(10),
        addAcc(3),   // 1
        decJnz(1),
        halt(),
    });
    ASSERT_TRUE(rig.runAll());
    EXPECT_EQ(r.acc(), 30u);
}

TEST(Program, ComputeAdvancesTime)
{
    Rig rig;
    rig.addRunner(0, {compute(12345), halt()});
    ASSERT_TRUE(rig.runAll());
    EXPECT_GE(rig.runners[0]->finishTick(), 12345u);
}

TEST(Program, StoreAllocWholeLine)
{
    Rig rig;
    auto &r = rig.addRunner(0, {
        storeAlloc(9, 77),
        load(9),
        halt(),
    });
    ASSERT_TRUE(rig.runAll());
    EXPECT_EQ(r.acc(), 77u);
}

namespace
{

void
mutualExclusionTest(OpCode lock_kind, unsigned workers, unsigned iters)
{
    Rig rig(4);
    const Addr lock = 100, counter = 101;
    for (unsigned i = 0; i < workers; ++i)
        rig.addRunner(i * 3 % 16,
                      counterProgram(lock_kind, lock, counter, iters));
    ASSERT_TRUE(rig.runAll());
    // Every increment must survive: the final counter value equals
    // workers x iters (mutual exclusion held).
    std::uint64_t final_count = rig.checker->goldenToken(counter);
    EXPECT_EQ(final_count, workers * iters);
    rig.checker->fullSweep();
    for (const auto &s : rig.checker->report())
        ADD_FAILURE() << s;
    EXPECT_EQ(rig.checker->violations(), 0u);
}

} // namespace

TEST(Program, MutualExclusionWithTTSLock)
{
    mutualExclusionTest(OpCode::LockTTS, 4, 5);
}

TEST(Program, MutualExclusionWithTsetLock)
{
    mutualExclusionTest(OpCode::LockTset, 4, 5);
}

TEST(Program, MutualExclusionWithSyncLock)
{
    mutualExclusionTest(OpCode::LockSync, 4, 5);
}

TEST(Program, MutualExclusionManyWorkersSync)
{
    mutualExclusionTest(OpCode::LockSync, 8, 4);
}

TEST(Program, MutualExclusionFullGridSync)
{
    // Regression: with a worker on every node, a join's
    // REQUEST-REMOVE can interleave with a hand-off REMOVE; the
    // owner's table reinsert used to land after the grant, poisoning
    // the MLT and stranding one waiter.
    mutualExclusionTest(OpCode::LockSync, 16, 8);
}

TEST(Program, MutualExclusionFullGridTset)
{
    mutualExclusionTest(OpCode::LockTset, 16, 6);
}

TEST(Program, MutualExclusionManyWorkersTTS)
{
    mutualExclusionTest(OpCode::LockTTS, 8, 4);
}

TEST(Program, SyncLockUsesFewerBusOpsThanTTS)
{
    // Section 4: the queue lock "collapses bus traffic to a very low
    // level" relative to test-and-test-and-set under contention.
    auto run = [](OpCode kind) {
        Rig rig(4);
        for (unsigned i = 0; i < 8; ++i)
            rig.addRunner(i * 2 % 16,
                          counterProgram(kind, 100, 101, 4));
        EXPECT_TRUE(rig.runAll());
        return rig.sys->totalBusOps();
    };
    std::uint64_t tts_ops = run(OpCode::LockTTS);
    std::uint64_t sync_ops = run(OpCode::LockSync);
    EXPECT_LT(sync_ops, tts_ops);
}

TEST(Program, SyncDegeneratesButSurvivesLockOwnerEviction)
{
    // Tiny caches force constant eviction, including of lock owners:
    // the chain aborts and waiters retry (Section 4 degeneration), but
    // mutual exclusion must still hold.
    Rig rig(4);
    // Rebuild with tiny caches.
    SystemParams p;
    p.n = 4;
    p.ctrl.cache = {2, 2};
    rig.sys = std::make_unique<MulticubeSystem>(p);
    rig.checker = std::make_unique<CoherenceChecker>(*rig.sys, 64);

    const Addr lock = 100, counter = 101;
    for (unsigned i = 0; i < 6; ++i) {
        // Interleave unrelated traffic to force evictions.
        std::vector<Instr> prog = {
            setCnt(3),
            Instr{OpCode::LockSync, lock, 0, 0},  // 1
            load(counter),
            addAcc(1),
            storeAcc(counter),
            store(200 + i * 4, i + 1),   // eviction pressure
            store(300 + i * 4, i + 1),
            unlock(lock, 1),
            decJnz(1),
            halt(),
        };
        rig.addRunner(i * 2 % 16, std::move(prog));
    }
    ASSERT_TRUE(rig.runAll());
    EXPECT_EQ(rig.checker->goldenToken(counter), 6u * 3u);
    rig.checker->fullSweep();
    for (const auto &s : rig.checker->report())
        ADD_FAILURE() << s;
    EXPECT_EQ(rig.checker->violations(), 0u);
}
