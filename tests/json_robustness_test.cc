/** @file
 * Robustness of the artifact input path: truncating a real repro
 * artifact at every byte offset (and corrupting every byte) must
 * produce a clean parse error — never UB, never a silently-accepted
 * artifact; deep nesting is depth-capped; artifactParseError reports
 * distinct, actionable messages per failure shape; and full config /
 * result round-trips stay bit-exact.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fuzz/campaign.hh"
#include "sim/json.hh"

using namespace mcube;
using namespace mcube::fuzz;

namespace
{

/** A realistic artifact: a planted-bug config plus a fully-populated
 *  result (report lines and fired-match schedules included). */
Json
sampleArtifact()
{
    RunConfig cfg = randomConfig(3, 1, /*plantUnsafeDropReply=*/true);
    RunResult res;
    res.finished = true;
    res.drained = false;
    res.violations = 2;
    res.readFailures = 1;
    res.injections = 7;
    res.opsIssued = 640;
    res.busOps = 1913;
    res.endTick = 123'456'789;
    res.hash = 0xdeadbeefcafef00dull;
    res.failure = FailureKind::CheckerViolation;
    res.report = {"line one", "line \"two\" with quotes",
                  "unicode-ish \t\n bytes"};
    res.firedMatches = {{0, 3, 9}, {}, {42}};
    return artifactJson(cfg, res, "json_robustness_test sample");
}

} // namespace

TEST(JsonRobustness, TruncationAtEveryByteFailsCleanly)
{
    const std::string full = sampleArtifact().dump(-1);
    ASSERT_GT(full.size(), 100u);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        const std::string prefix = full.substr(0, cut);
        std::string perr;
        Json j = Json::parse(prefix, &perr);
        // A strict prefix must either fail to parse or — if some
        // prefix ever parsed — be rejected by artifact validation.
        // Either way the replayer sees a loud error, not garbage.
        EXPECT_FALSE(perr.empty() && artifactParseError(j).empty())
            << "prefix of " << cut << " bytes was accepted";
    }
}

TEST(JsonRobustness, CorruptingEveryByteNeverTrips)
{
    const std::string full = sampleArtifact().dump(-1);
    for (char garbage : {'\0', '\x7f', '{', '"'}) {
        for (std::size_t i = 0; i < full.size(); ++i) {
            std::string mutated = full;
            mutated[i] = garbage;
            std::string perr;
            Json j = Json::parse(mutated, &perr);
            if (!perr.empty())
                continue;  // clean rejection
            // Parsed despite the corruption (e.g. inside a string):
            // the full validation + extraction path must stay safe.
            if (!artifactParseError(j).empty())
                continue;
            RunConfig cfg;
            std::uint64_t hash = 0;
            FailureKind kind = FailureKind::None;
            artifactFromJson(j, cfg, hash, kind);
        }
    }
}

TEST(JsonRobustness, NestingDepthIsCapped)
{
    // 32 levels is comfortably legal...
    std::string ok(32, '[');
    ok += std::string(32, ']');
    std::string perr;
    Json::parse(ok, &perr);
    EXPECT_TRUE(perr.empty()) << perr;

    // ...but a pathological artifact cannot blow the parser's stack.
    std::string deep(100'000, '[');
    deep += std::string(100'000, ']');
    Json::parse(deep, &perr);
    ASSERT_FALSE(perr.empty());
    EXPECT_NE(perr.find("nesting too deep"), std::string::npos) << perr;
}

TEST(JsonRobustness, ParseErrorsNameTheOffset)
{
    std::string perr;
    Json::parse("{\"a\": tru", &perr);
    EXPECT_FALSE(perr.empty());
    Json::parse("", &perr);
    EXPECT_FALSE(perr.empty());
    Json::parse("{\"a\":1} trailing", &perr);
    EXPECT_FALSE(perr.empty());
}

TEST(JsonRobustness, ArtifactParseErrorDistinguishesShapes)
{
    // Not an object at all.
    std::string err = artifactParseError(Json::array());
    EXPECT_NE(err.find("not a JSON object"), std::string::npos) << err;

    // An object that is not an artifact.
    Json plain = Json::object();
    plain.set("hello", 1);
    err = artifactParseError(plain);
    EXPECT_NE(err.find("format"), std::string::npos) << err;

    // Version skew: a future format must fail loudly, not half-parse.
    Json skewed = sampleArtifact();
    skewed.set("format", "mcube-fuzz-repro-v99");
    err = artifactParseError(skewed);
    EXPECT_NE(err.find("unsupported artifact format"),
              std::string::npos)
        << err;

    // Right format, unusable config.
    Json badCfg = sampleArtifact();
    badCfg.set("config", Json::array());
    err = artifactParseError(badCfg);
    EXPECT_NE(err.find("config"), std::string::npos) << err;

    // Right format, but the fault plan names a kind this binary does
    // not know (hand-edit or version skew): the error names the spec
    // and the kind string — never a silent default to another kind.
    Json badPlan = sampleArtifact();
    Json cfg = badPlan.at("config");
    std::string perr;
    cfg.set("fault_plan",
            Json::parse(R"({"seed": 1, "specs":
                            [{"kind": "fail_stop_everything"}]})",
                        &perr));
    ASSERT_TRUE(perr.empty());
    badPlan.set("config", std::move(cfg));
    err = artifactParseError(badPlan);
    EXPECT_NE(err.find("unknown fault kind"), std::string::npos) << err;
    EXPECT_NE(err.find("fail_stop_everything"), std::string::npos)
        << err;

    // The sample itself is valid.
    EXPECT_EQ(artifactParseError(sampleArtifact()), "");
}

TEST(JsonRobustness, RunResultRoundTripsBitExact)
{
    RunResult res;
    res.finished = true;
    res.drained = true;
    res.violations = 5;
    res.readFailures = 3;
    res.injections = 11;
    res.opsIssued = 999;
    res.busOps = 123'456;
    res.endTick = 0xffffffffffffull;
    res.hash = 0x0123456789abcdefull;
    res.failure = FailureKind::OracleFailure;
    res.report = {"r1", "r2"};
    res.firedMatches = {{1, 2}, {}, {0xffffffffffffffffull}};

    std::string perr;
    Json j = Json::parse(toJson(res).dump(-1), &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    RunResult back;
    ASSERT_TRUE(runResultFromJson(j, back));
    EXPECT_EQ(back.finished, res.finished);
    EXPECT_EQ(back.drained, res.drained);
    EXPECT_EQ(back.violations, res.violations);
    EXPECT_EQ(back.readFailures, res.readFailures);
    EXPECT_EQ(back.injections, res.injections);
    EXPECT_EQ(back.opsIssued, res.opsIssued);
    EXPECT_EQ(back.busOps, res.busOps);
    EXPECT_EQ(back.endTick, res.endTick);
    EXPECT_EQ(back.hash, res.hash);
    EXPECT_EQ(back.failure, res.failure);
    EXPECT_EQ(back.report, res.report);
    EXPECT_EQ(back.firedMatches, res.firedMatches);
}

TEST(JsonRobustness, ArtifactRoundTripsThroughText)
{
    Json j = sampleArtifact();
    std::string perr;
    Json re = Json::parse(j.dump(2), &perr);  // pretty-printed, too
    ASSERT_TRUE(perr.empty()) << perr;
    ASSERT_EQ(artifactParseError(re), "");

    RunConfig cfg;
    std::uint64_t hash = 0;
    FailureKind kind = FailureKind::None;
    ASSERT_TRUE(artifactFromJson(re, cfg, hash, kind));
    EXPECT_EQ(hash, 0xdeadbeefcafef00dull);
    EXPECT_EQ(kind, FailureKind::CheckerViolation);
    EXPECT_EQ(toJson(cfg).dump(-1),
              j.at("config").dump(-1));  // config survives bit-exact
}
