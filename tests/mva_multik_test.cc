/** @file Tests for the general-k Multicube MVA (Section 6). */

#include <gtest/gtest.h>

#include <cmath>

#include "mva/mva_model.hh"
#include "mva/mva_multik.hh"

using namespace mcube;

namespace
{

MultiKResult
solveNK(unsigned n, unsigned k, double rate)
{
    MultiKParams p;
    p.n = n;
    p.k = k;
    p.requestsPerMs = rate;
    return MultiKMvaModel(p).solve();
}

} // namespace

TEST(MultiK, InvalidationOpsMatchSection6Formula)
{
    MultiKParams p;
    p.n = 4;
    p.k = 3;
    MultiKMvaModel m(p);
    // (64 - 1) / (4 - 1) = 21.
    EXPECT_DOUBLE_EQ(m.invalidationOps(), 21.0);
}

TEST(MultiK, MultiSpecialCaseIsSingleBroadcast)
{
    MultiKParams p;
    p.n = 20;
    p.k = 1;
    MultiKMvaModel m(p);
    EXPECT_DOUBLE_EQ(m.invalidationOps(), 1.0);
}

TEST(MultiK, AgreesWith2DModelAtLowLoad)
{
    // The symmetrised model and the row/column model must agree
    // closely when queueing is negligible.
    MvaParams p2;
    p2.n = 16;
    p2.requestsPerMs = 2.0;
    double e2 = MvaModel(p2).solve().efficiency;
    double ek = solveNK(16, 2, 2.0).efficiency;
    EXPECT_NEAR(e2, ek, 0.01);
}

TEST(MultiK, AgreesWith2DModelAtModerateLoad)
{
    MvaParams p2;
    p2.n = 16;
    p2.requestsPerMs = 20.0;
    double e2 = MvaModel(p2).solve().efficiency;
    double ek = solveNK(16, 2, 20.0).efficiency;
    EXPECT_NEAR(e2, ek, 0.06);
}

TEST(MultiK, EfficiencyDecreasesWithRate)
{
    double last = 1.0;
    for (double r : {1.0, 10.0, 25.0, 50.0}) {
        double e = solveNK(16, 3, r).efficiency;
        EXPECT_LT(e, last);
        last = e;
    }
}

TEST(MultiK, RawLatencyGrowsWithDimensions)
{
    MultiKParams p;
    p.n = 8;
    p.k = 2;
    double l2 = MultiKMvaModel(p).rawLatency();
    p.k = 3;
    double l3 = MultiKMvaModel(p).rawLatency();
    p.k = 4;
    double l4 = MultiKMvaModel(p).rawLatency();
    EXPECT_LT(l2, l3);
    EXPECT_LT(l3, l4);
}

TEST(MultiK, BandwidthTracksPathLengthAtFixedN)
{
    // Section 6: "the bandwidth grows in proportion to k, precisely
    // the rate at which the normal path length grows." At fixed n,
    // per-bus utilisation is therefore nearly independent of k (no
    // broadcast traffic, which scales differently).
    auto util = [](unsigned n, unsigned k) {
        MultiKParams p;
        p.n = n;
        p.k = k;
        p.requestsPerMs = 10.0;
        p.fracReadUnmod = 0.8;
        p.fracReadMod = 0.1;
        p.fracWriteUnmod = 0.0;
        p.fracWriteMod = 0.1;
        return MultiKMvaModel(p).solve().busUtilization;
    };
    double u2 = util(8, 2);
    double u3 = util(8, 3);
    double u4 = util(8, 4);
    EXPECT_NEAR(u2, u3, 0.05 * u2);
    EXPECT_NEAR(u2, u4, 0.05 * u2);
}

TEST(MultiK, FixedBudgetTradesBandwidthForLatency)
{
    // Building the same N = 4096 with more dimensions buys buses
    // (lower per-bus utilisation) at the cost of longer unloaded
    // paths — the Section 6 trade-off.
    MultiKParams p2;
    p2.n = 64;
    p2.k = 2;
    MultiKParams p3;
    p3.n = 16;
    p3.k = 3;
    MultiKMvaModel m2(p2), m3(p3);
    EXPECT_GT(m2.solve().busUtilization,
              m3.solve().busUtilization);
    EXPECT_LT(m2.rawLatency(), m3.rawLatency());
}

TEST(MultiK, HypercubeBroadcastCostIsExtreme)
{
    // n = 2 maximises (N-1)/(n-1): an invalidation must touch nearly
    // every bus pair-by-pair.
    MultiKParams hc;
    hc.n = 2;
    hc.k = 12;  // N = 4096
    MultiKParams wm;
    wm.n = 64;
    wm.k = 2;   // N = 4096
    EXPECT_GT(MultiKMvaModel(hc).invalidationOps(),
              60.0 * MultiKMvaModel(wm).invalidationOps());
}

TEST(MultiK, ThroughputConsistency)
{
    MultiKResult r = solveNK(16, 3, 20.0);
    EXPECT_NEAR(r.throughputPerProc * r.cycleTimeNs, 1.0, 1e-9);
    EXPECT_GT(r.busUtilization, 0.0);
    EXPECT_LE(r.busUtilization, 1.0);
}

TEST(MultiK, InvalidMixGivesZero)
{
    MultiKParams p;
    p.fracReadUnmod = 0.9;
    EXPECT_EQ(MultiKMvaModel(p).solve().efficiency, 0.0);
}
