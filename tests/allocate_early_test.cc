/** @file
 * Tests for the optional ALLOCATE early-write extension (Section 3:
 * "allows the processor to write a line before receiving the
 * acknowledge of the ALLOCATE").
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hh"
#include "core/system.hh"

using namespace mcube;

namespace
{

struct Waiter
{
    bool done = false;
    Tick when = 0;
    TxnResult res;
};

class EarlyAlloc : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SystemParams p;
        p.n = 4;
        p.ctrl.allocateEarlyWrite = true;
        sys = std::make_unique<MulticubeSystem>(p);
        checker = std::make_unique<CoherenceChecker>(*sys, 16);
    }

    SnoopController::CompletionCb
    cb(Waiter &w)
    {
        return [this, &w](const TxnResult &r) {
            w.done = true;
            w.when = sys->eventQueue().now();
            w.res = r;
        };
    }

    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;
};

} // namespace

TEST_F(EarlyAlloc, AckArrivesBeforeTransactionCompletes)
{
    SnoopController &nd = sys->node(1, 2);
    Waiter w;
    Tick t0 = sys->eventQueue().now();
    EXPECT_EQ(nd.writeAllocate(9, 42, cb(w)), AccessOutcome::Miss);
    // The ack fires without waiting for any bus operation.
    sys->eventQueue().run(4);
    EXPECT_TRUE(w.done);
    EXPECT_EQ(w.when, t0);
    EXPECT_EQ(nd.modeOf(9), Mode::AllocPending);
    // The transaction still runs to completion in the background.
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(nd.modeOf(9), Mode::Modified);
    EXPECT_EQ(nd.dataOf(9).token, 42u);
    EXPECT_EQ(checker->goldenToken(9), 42u);
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(EarlyAlloc, LocalWritesDuringPendingWindowAccumulate)
{
    SnoopController &nd = sys->node(1, 2);
    Waiter w;
    nd.writeAllocate(9, 1, cb(w));
    sys->eventQueue().run(4);
    ASSERT_EQ(nd.modeOf(9), Mode::AllocPending);
    // Overwrite the staged line before the acknowledge returns.
    EXPECT_EQ(nd.write(9, 2, nullptr), AccessOutcome::Hit);
    EXPECT_EQ(nd.writeAllocate(9, 3, nullptr), AccessOutcome::Hit);
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(nd.modeOf(9), Mode::Modified);
    EXPECT_EQ(nd.dataOf(9).token, 3u);
    EXPECT_EQ(checker->goldenToken(9), 3u);
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(EarlyAlloc, LocalReadSeesStagedValue)
{
    SnoopController &nd = sys->node(1, 2);
    Waiter w;
    nd.writeAllocate(9, 7, cb(w));
    sys->eventQueue().run(4);
    // A read hit on the staged line returns the processor's own
    // pending write (its value is not yet globally committed).
    std::uint64_t tok = 0;
    EXPECT_EQ(nd.read(9, tok, nullptr), AccessOutcome::Hit);
    EXPECT_EQ(tok, 7u);
    ASSERT_TRUE(sys->drain());
}

TEST_F(EarlyAlloc, BusyUntilBackgroundCompletion)
{
    SnoopController &nd = sys->node(1, 2);
    Waiter w;
    nd.writeAllocate(9, 7, cb(w));
    sys->eventQueue().run(4);
    // Other misses are still rejected while the ALLOCATE is open.
    std::uint64_t tok = 0;
    EXPECT_EQ(nd.read(77, tok, nullptr), AccessOutcome::Busy);
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(nd.read(77, tok, cb(w)), AccessOutcome::Miss);
    ASSERT_TRUE(sys->drain());
}

TEST_F(EarlyAlloc, SurvivesVictimWritebackStall)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.allocateEarlyWrite = true;
    p.ctrl.cache = {1, 1};  // every fill evicts
    sys = std::make_unique<MulticubeSystem>(p);
    checker = std::make_unique<CoherenceChecker>(*sys, 16);

    SnoopController &nd = sys->node(0, 0);
    Waiter w1;
    nd.write(1, 11, cb(w1));
    sys->drain();
    ASSERT_EQ(nd.modeOf(1), Mode::Modified);

    // The allocate must first write back the dirty victim; the early
    // ack fires right after the continue, before the bus reply.
    Waiter w2;
    nd.writeAllocate(2, 22, cb(w2));
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(w2.done);
    EXPECT_EQ(nd.modeOf(2), Mode::Modified);
    EXPECT_EQ(checker->goldenToken(2), 22u);
    EXPECT_EQ(sys->memory(1).lineData(1).token, 11u);
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(EarlyAlloc, RacingWritersStillSerialise)
{
    SnoopController &a = sys->node(0, 0);
    SnoopController &b = sys->node(3, 3);
    Waiter wa, wb;
    a.writeAllocate(14, 100, cb(wa));
    b.write(14, 200, cb(wb));
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(wa.done);
    EXPECT_TRUE(wb.done);
    bool a_owns = a.modeOf(14) == Mode::Modified;
    bool b_owns = b.modeOf(14) == Mode::Modified;
    EXPECT_NE(a_owns, b_owns);
    std::uint64_t final_tok =
        a_owns ? a.dataOf(14).token : b.dataOf(14).token;
    EXPECT_EQ(final_tok, checker->goldenToken(14));
    checker->fullSweep();
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(EarlyAlloc, DisabledByDefault)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem plain(p);
    SnoopController &nd = plain.node(1, 2);
    bool done = false;
    nd.writeAllocate(9, 42, [&](const TxnResult &) { done = true; });
    plain.eventQueue().run(4);
    EXPECT_FALSE(done);  // must wait for the acknowledge
    EXPECT_NE(nd.modeOf(9), Mode::AllocPending);
    plain.drain();
    EXPECT_TRUE(done);
}
