/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace mcube;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(11, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue eq;
    eq.runUntil(42);
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, SchedulingInThePastClampsToNow)
{
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(10, [&] {
        eq.schedule(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 10u);
}

TEST(EventQueue, RunLimitCountsEvents)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, [&] { ++fired; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(eq.eventsExecuted(), 5u);
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(7, [&] {
        eq.scheduleIn(3, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 10u);
}
