/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

using namespace mcube;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(11, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue eq;
    eq.runUntil(42);
    EXPECT_EQ(eq.now(), 42u);
}

#ifdef NDEBUG
TEST(EventQueue, SchedulingInThePastClampsToNowAndCounts)
{
    // Release builds keep the legacy clamp but make the caller bug
    // observable through the sched_past_tick statistic.
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(10, [&] {
        eq.schedule(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(eq.schedPastTick(), 1u);
}
#else
TEST(EventQueueDeathTest, SchedulingInThePastAssertsInDebug)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(10, [&] { eq.schedule(5, [] {}); });
            eq.run();
        },
        "scheduled in the past");
}
#endif

TEST(EventQueue, PastTickStatStartsAtZero)
{
    EventQueue eq;
    eq.schedule(3, [] {});
    eq.run();
    EXPECT_EQ(eq.schedPastTick(), 0u);
}

TEST(EventQueue, SameTickFifoAcrossInterleavedTicks)
{
    // Tie-break must hold even when same-tick events are scheduled
    // interleaved with other ticks and from inside callbacks.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&] { order.push_back(4); });
    eq.schedule(10, [&] {
        order.push_back(0);
        eq.schedule(20, [&] { order.push_back(5); });
        eq.scheduleIn(0, [&] { order.push_back(2); });
    });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 5}));
}

TEST(EventQueue, RunUntilBoundarySameTickBatch)
{
    // Every event at exactly the boundary fires, in schedule order,
    // and events one tick later stay queued.
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        eq.schedule(50, [&order, i] { order.push_back(i); });
    eq.schedule(51, [&] { order.push_back(99); });
    eq.runUntil(50);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, StressOrderingMatchesReference)
{
    // Pseudo-random (tick, id) schedule; execution order must equal a
    // stable sort by (tick, schedule order).
    EventQueue eq;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    std::vector<std::pair<Tick, int>> expect;
    std::vector<int> order;
    for (int i = 0; i < 2000; ++i) {
        Tick t = next() % 97;
        expect.emplace_back(t, i);
        eq.schedule(t, [&order, i] { order.push_back(i); });
    }
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    eq.run();
    ASSERT_EQ(order.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(order[i], expect[i].second) << i;
}

TEST(EventQueue, OversizedCaptureFallsBackToHeap)
{
    // Captures larger than the inline buffer still work (heap path).
    struct Big
    {
        std::array<std::uint64_t, 32> payload{};
    };
    static_assert(!EventFn::fitsInline<Big>() || sizeof(Big) <= 104);
    EventQueue eq;
    Big big;
    big.payload[31] = 7;
    std::uint64_t seen = 0;
    eq.schedule(1, [big, &seen] { seen = big.payload[31]; });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, RunLimitCountsEvents)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, [&] { ++fired; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(eq.eventsExecuted(), 5u);
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(7, [&] {
        eq.scheduleIn(3, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 10u);
}
