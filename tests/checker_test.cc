/** @file Unit tests for the coherence checker itself. */

#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hh"
#include "core/system.hh"

using namespace mcube;

namespace
{

struct Fixture : ::testing::Test
{
    void
    SetUp() override
    {
        SystemParams p;
        p.n = 4;
        sys = std::make_unique<MulticubeSystem>(p);
        checker = std::make_unique<CoherenceChecker>(*sys, 8);
    }

    void
    write(unsigned row, unsigned col, Addr addr, std::uint64_t tok)
    {
        sys->node(row, col).write(addr, tok, [](const TxnResult &) {});
        ASSERT_TRUE(sys->drain());
    }

    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;
};

} // namespace

TEST_F(Fixture, GoldenTokenTracksCommits)
{
    EXPECT_EQ(checker->goldenToken(5), 0u);
    write(0, 0, 5, 10);
    EXPECT_EQ(checker->goldenToken(5), 10u);
    write(2, 2, 5, 20);
    EXPECT_EQ(checker->goldenToken(5), 20u);
}

TEST_F(Fixture, TokenWasGoldenIntervals)
{
    write(0, 0, 5, 10);
    Tick t1 = sys->eventQueue().now();
    sys->run(10'000);
    write(2, 2, 5, 20);
    Tick t2 = sys->eventQueue().now();
    sys->run(10'000);

    // Initial value 0 was golden before the first commit.
    EXPECT_TRUE(checker->tokenWasGoldenDuring(5, 0, 0, 100));
    // 10 was golden between the commits.
    EXPECT_TRUE(checker->tokenWasGoldenDuring(5, 10, t1, t1 + 1));
    // 20 is golden now and forever after.
    EXPECT_TRUE(
        checker->tokenWasGoldenDuring(5, 20, t2 + 5000, t2 + 9000));
    // 10 was never golden well after the second commit settled.
    EXPECT_FALSE(
        checker->tokenWasGoldenDuring(5, 10, t2 + 5000, t2 + 9000));
    // A value never written is never golden.
    EXPECT_FALSE(checker->tokenWasGoldenDuring(5, 77, 0, t2 + 9000));
}

TEST_F(Fixture, UnwrittenLineAcceptsOnlyZero)
{
    EXPECT_TRUE(checker->tokenWasGoldenDuring(99, 0, 0, 1000));
    EXPECT_FALSE(checker->tokenWasGoldenDuring(99, 1, 0, 1000));
}

TEST_F(Fixture, CleanRunHasNoViolations)
{
    for (Addr a = 0; a < 8; ++a)
        write(a % 4, (a + 1) % 4, a, a + 100);
    checker->fullSweep();
    EXPECT_EQ(checker->violations(), 0u);
    EXPECT_GT(checker->opsObserved(), 0u);
}

TEST_F(Fixture, DetectsInjectedMemoryCorruption)
{
    write(0, 0, 4, 50);  // line 4 homes on column 0
    // Corrupt memory behind the protocol's back: valid bit set while
    // a modified copy exists => I2 (and I4).
    LineData d;
    d.token = 999;
    sys->memory(0).poke(4, d, true);
    // The checker validates the line each bus op references, so touch
    // the corrupted line.
    std::uint64_t tok = 0;
    sys->node(1, 1).read(4, tok, [](const TxnResult &) {});
    sys->drain();
    EXPECT_GT(checker->violations(), 0u);
    EXPECT_FALSE(checker->report().empty());
}

TEST_F(Fixture, FullSweepDetectsOrphanTableEntry)
{
    // Create a modified line, then silently write it back by poking
    // memory and downgrading... we cannot reach controller internals,
    // so instead corrupt memory to make the holder's token mismatch
    // golden (I3 trips on the next checked op for that line).
    write(1, 1, 4, 50);
    LineData d;
    d.token = 123;
    sys->memory(0).poke(4, d, true);  // valid while modified: I2/I4
    std::uint64_t tok = 0;
    sys->node(0, 1).read(4, tok, [](const TxnResult &) {});
    sys->drain();
    EXPECT_GT(checker->violations(), 0u);
}

TEST_F(Fixture, ReportIsBounded)
{
    write(0, 0, 4, 50);
    LineData d;
    d.token = 999;
    for (int i = 0; i < 100; ++i) {
        sys->memory(0).poke(4, d, true);
        std::uint64_t tok = 0;
        sys->node(1, 1).read(8 + (i % 3) * 4, tok,
                             [](const TxnResult &) {});
        sys->drain();
    }
    EXPECT_LE(checker->report().size(), 32u);
}
