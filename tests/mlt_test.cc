/** @file Unit tests for the modified line table. */

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "cache/mlt.hh"

using namespace mcube;

TEST(Mlt, EmptyContainsNothing)
{
    ModifiedLineTable t({8, 2});
    EXPECT_FALSE(t.contains(0));
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.capacity(), 16u);
}

TEST(Mlt, InsertThenContains)
{
    ModifiedLineTable t({8, 2});
    EXPECT_EQ(t.insert(5), std::nullopt);
    EXPECT_TRUE(t.contains(5));
    EXPECT_EQ(t.size(), 1u);
}

TEST(Mlt, RemovePresentSucceeds)
{
    ModifiedLineTable t({8, 2});
    t.insert(5);
    EXPECT_TRUE(t.remove(5));
    EXPECT_FALSE(t.contains(5));
    EXPECT_EQ(t.size(), 0u);
}

TEST(Mlt, RemoveAbsentFails)
{
    ModifiedLineTable t({8, 2});
    EXPECT_FALSE(t.remove(5));
    t.insert(5);
    EXPECT_TRUE(t.remove(5));
    EXPECT_FALSE(t.remove(5));
}

TEST(Mlt, ReinsertRefreshesWithoutOverflow)
{
    ModifiedLineTable t({1, 2});
    t.insert(0);
    t.insert(1);
    // Refresh 0, making 1 the LRU.
    EXPECT_EQ(t.insert(0), std::nullopt);
    auto victim = t.insert(2);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 1u);
}

TEST(Mlt, OverflowEvictsLru)
{
    ModifiedLineTable t({1, 2});
    t.insert(10);
    t.insert(20);
    auto victim = t.insert(30);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 10u);
    EXPECT_TRUE(t.contains(20));
    EXPECT_TRUE(t.contains(30));
    EXPECT_FALSE(t.contains(10));
    EXPECT_EQ(t.size(), 2u);
}

TEST(Mlt, SetsIsolateOverflow)
{
    ModifiedLineTable t({2, 1});
    // The set index is mixed, so probe for a colliding pair and an
    // address in the other set.
    Addr first = 0;
    Addr collider = 1;
    while (t.setOf(collider) != t.setOf(first))
        ++collider;
    Addr other = 1;
    while (t.setOf(other) == t.setOf(first))
        ++other;
    t.insert(first);
    t.insert(other);
    // Inserting into the full set evicts only from that set.
    auto victim = t.insert(collider);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, first);
    EXPECT_TRUE(t.contains(other));
}

TEST(Mlt, SetIndexDecorrelatesHomeColumnInterleave)
{
    // Every entry of a column's table is homed on that column, i.e.
    // satisfies addr % n == column. With a plain addr % numSets index
    // those entries alias into numSets / n sets; the mixed index must
    // spread them over most of the table.
    ModifiedLineTable t({64, 1});
    std::set<std::size_t> sets;
    for (Addr a = 0; a < 64 * 4; a += 4)
        sets.insert(t.setOf(a));
    EXPECT_GT(sets.size(), 32u);
}

TEST(Mlt, IdenticalToTracksSameHistory)
{
    ModifiedLineTable a({4, 2}), b({4, 2});
    EXPECT_TRUE(a.identicalTo(b));
    a.insert(3);
    EXPECT_FALSE(a.identicalTo(b));
    b.insert(3);
    EXPECT_TRUE(a.identicalTo(b));
    a.remove(3);
    b.remove(3);
    EXPECT_TRUE(a.identicalTo(b));
}

TEST(Mlt, DeterministicVictimAcrossReplicas)
{
    // Two replicas fed the same op sequence must evict the same
    // victim — the property that keeps a column's tables identical.
    ModifiedLineTable a({1, 4}), b({1, 4});
    for (Addr x = 0; x < 4; ++x) {
        a.insert(x);
        b.insert(x);
    }
    a.remove(2);
    b.remove(2);
    a.insert(7);
    b.insert(7);
    auto va = a.insert(9);
    auto vb = b.insert(9);
    ASSERT_EQ(va.has_value(), vb.has_value());
    if (va) {
        EXPECT_EQ(*va, *vb);
    }
    EXPECT_TRUE(a.identicalTo(b));
}

TEST(Mlt, ForEachVisitsLiveEntries)
{
    ModifiedLineTable t({4, 2});
    t.insert(1);
    t.insert(2);
    t.insert(3);
    t.remove(2);
    unsigned n = 0;
    bool saw1 = false, saw3 = false;
    t.forEach([&](Addr a) {
        ++n;
        saw1 = saw1 || a == 1;
        saw3 = saw3 || a == 3;
    });
    EXPECT_EQ(n, 2u);
    EXPECT_TRUE(saw1 && saw3);
}
