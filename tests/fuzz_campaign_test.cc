/** @file
 * Chaos-campaign harness tests: JSON round-tripping of every
 * serialized config (fault plans, tester params, run configs),
 * bit-identical replay ("same seed => same run"), and the
 * planted-bug end-to-end check — a deliberately ineligible (unsafe)
 * DropReply is planted, the campaign finds it, and the shrinker
 * reduces it to a handful of ops and faults while re-verifying
 * determinism at every step.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fuzz/campaign.hh"

using namespace mcube;
using namespace mcube::fuzz;

namespace
{

std::size_t
activeNodes(const RunConfig &cfg)
{
    return cfg.tester.onlyNodes.empty()
               ? static_cast<std::size_t>(cfg.n) * cfg.n
               : cfg.tester.onlyNodes.size();
}

std::uint64_t
scheduledInjections(const RunConfig &cfg)
{
    std::uint64_t total = 0;
    for (const auto &s : cfg.plan.specs)
        total += s.atMatches.size();
    return total;
}

} // namespace

// ---------------------------------------------------------------------
// JSON round-tripping
// ---------------------------------------------------------------------

TEST(FuzzJson, FaultPlanRoundTrips)
{
    FaultPlan plan;
    plan.seed = 0xdeadbeefcafef00dULL;  // > 2^53: must survive exactly

    FaultSpec a;
    a.kind = FaultKind::Delay;
    a.prob = 0.03125;
    a.delayTicks = 1234;
    a.busDim = 1;
    a.busIndex = 2;
    a.txn = TxnType::ReadMod;
    a.maxInjections = 7;
    a.activeFrom = 1000;
    a.activeUntil = 2'000'000'000ull;
    plan.specs.push_back(a);

    FaultSpec b;
    b.kind = FaultKind::Outage;
    b.outageTicks = 42'000;
    b.atMatches = {0, 3, 17, 65535};
    b.unsafe = true;
    plan.specs.push_back(b);

    std::string text = toJson(plan).dump();
    std::string err;
    Json parsed = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    FaultPlan back;
    ASSERT_TRUE(faultPlanFromJson(parsed, back));
    EXPECT_EQ(back.seed, plan.seed);
    ASSERT_EQ(back.specs.size(), 2u);

    EXPECT_EQ(back.specs[0].kind, FaultKind::Delay);
    EXPECT_EQ(back.specs[0].prob, a.prob);
    EXPECT_EQ(back.specs[0].delayTicks, a.delayTicks);
    EXPECT_EQ(back.specs[0].busDim, a.busDim);
    EXPECT_EQ(back.specs[0].busIndex, a.busIndex);
    ASSERT_TRUE(back.specs[0].txn.has_value());
    EXPECT_EQ(*back.specs[0].txn, TxnType::ReadMod);
    EXPECT_EQ(back.specs[0].maxInjections, a.maxInjections);
    EXPECT_EQ(back.specs[0].activeFrom, a.activeFrom);
    EXPECT_EQ(back.specs[0].activeUntil, a.activeUntil);
    EXPECT_FALSE(back.specs[0].unsafe);

    EXPECT_EQ(back.specs[1].kind, FaultKind::Outage);
    EXPECT_EQ(back.specs[1].outageTicks, b.outageTicks);
    EXPECT_EQ(back.specs[1].atMatches, b.atMatches);
    EXPECT_FALSE(back.specs[1].txn.has_value());
    EXPECT_TRUE(back.specs[1].unsafe);
}

TEST(FuzzJson, FaultPlanRejectsGarbage)
{
    FaultPlan out;
    EXPECT_FALSE(faultPlanFromJson(Json(42), out));
    std::string err;
    Json bad = Json::parse(
        R"({"seed": 1, "specs": [{"kind": "no_such_kind"}]})", &err);
    ASSERT_TRUE(err.empty());
    EXPECT_FALSE(faultPlanFromJson(bad, out));
}

TEST(FuzzJson, UnknownFaultKindIsNamedByParseError)
{
    // Rejection must be loud and specific: the spec index and the
    // offending kind string, never a silent default to another kind.
    std::string err;
    Json bad = Json::parse(
        R"({"seed": 1, "specs": [{"kind": "drop_request"},
                                 {"kind": "fail_stop_everything"}]})",
        &err);
    ASSERT_TRUE(err.empty());
    FaultPlan out;
    EXPECT_FALSE(faultPlanFromJson(bad, out));
    std::string why = faultPlanParseError(bad);
    EXPECT_NE(why.find("fault spec 1"), std::string::npos) << why;
    EXPECT_NE(why.find("unknown fault kind"), std::string::npos) << why;
    EXPECT_NE(why.find("fail_stop_everything"), std::string::npos)
        << why;

    // And a good plan reports no error at all.
    EXPECT_EQ(faultPlanParseError(
                  toJson(FaultPlan::failStopNode(4, 700'000, true))),
              "");
}

TEST(FuzzJson, FailStopKindsRoundTrip)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.specs.push_back(
        FaultPlan::failStopBus(0, 2, 900'000, true).specs[0]);
    plan.specs.push_back(
        FaultPlan::failStopNode(4, 1'600'000, false).specs[0]);
    plan.specs.push_back(
        FaultPlan::failStopMemory(1, 2'300'000, true).specs[0]);

    std::string text = toJson(plan).dump();
    std::string err;
    Json parsed = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    FaultPlan back;
    ASSERT_TRUE(faultPlanFromJson(parsed, back));
    ASSERT_EQ(back.specs.size(), 3u);

    EXPECT_EQ(back.specs[0].kind, FaultKind::FailStopBus);
    EXPECT_EQ(back.specs[0].busDim, 0);
    EXPECT_EQ(back.specs[0].busIndex, 2);
    EXPECT_EQ(back.specs[0].atTick, 900'000u);
    EXPECT_TRUE(back.specs[0].graceful);

    EXPECT_EQ(back.specs[1].kind, FaultKind::FailStopNode);
    EXPECT_EQ(back.specs[1].targetNode, 4);
    EXPECT_EQ(back.specs[1].atTick, 1'600'000u);
    EXPECT_FALSE(back.specs[1].graceful);

    EXPECT_EQ(back.specs[2].kind, FaultKind::FailStopMemory);
    EXPECT_EQ(back.specs[2].busIndex, 1);
    EXPECT_TRUE(back.specs[2].graceful);

    // The kind-string table closes over every kind.
    for (FaultKind k : {FaultKind::FailStopBus, FaultKind::FailStopNode,
                        FaultKind::FailStopMemory}) {
        FaultKind rt;
        ASSERT_TRUE(faultKindFromString(toString(k), rt));
        EXPECT_EQ(rt, k);
    }
}

TEST(FuzzJson, RandomTesterParamsRoundTrip)
{
    RandomTesterParams p;
    p.numDataLines = 12;
    p.numLockLines = 3;
    p.opsPerNode = 55;
    p.pWrite = 0.4375;
    p.pAllocate = 0.0625;
    p.pTset = 0.25;
    p.pSyncOfLocks = 0.5;
    p.maxThink = 321;
    p.seed = (1ull << 62) + 9;
    p.chaos = true;
    p.onlyNodes = {0, 2, 5};

    std::string text = toJson(p).dump();
    std::string err;
    Json parsed = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    RandomTesterParams back;
    ASSERT_TRUE(randomTesterParamsFromJson(parsed, back));
    EXPECT_EQ(back.numDataLines, p.numDataLines);
    EXPECT_EQ(back.numLockLines, p.numLockLines);
    EXPECT_EQ(back.opsPerNode, p.opsPerNode);
    EXPECT_EQ(back.pWrite, p.pWrite);
    EXPECT_EQ(back.pAllocate, p.pAllocate);
    EXPECT_EQ(back.pTset, p.pTset);
    EXPECT_EQ(back.pSyncOfLocks, p.pSyncOfLocks);
    EXPECT_EQ(back.maxThink, p.maxThink);
    EXPECT_EQ(back.seed, p.seed);
    EXPECT_TRUE(back.chaos);
    EXPECT_EQ(back.onlyNodes, p.onlyNodes);
}

TEST(FuzzJson, RunConfigRoundTrips)
{
    RunConfig cfg = randomConfig(99, 3, /*plant=*/true);
    cfg.maxTicks = 123'456'789;

    std::string text = toJson(cfg).dump();
    std::string err;
    Json parsed = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    RunConfig back;
    ASSERT_TRUE(runConfigFromJson(parsed, back));
    EXPECT_EQ(back.n, cfg.n);
    EXPECT_EQ(back.sysSeed, cfg.sysSeed);
    EXPECT_EQ(back.requestTimeoutTicks, cfg.requestTimeoutTicks);
    EXPECT_EQ(back.maxTicks, cfg.maxTicks);
    EXPECT_EQ(back.tester.seed, cfg.tester.seed);
    ASSERT_EQ(back.plan.specs.size(), cfg.plan.specs.size());
    EXPECT_TRUE(back.plan.specs.back().unsafe);
}

// ---------------------------------------------------------------------
// Determinism: same config => bit-identical run
// ---------------------------------------------------------------------

TEST(FuzzReplay, SameConfigSameHash)
{
    RunConfig cfg;
    cfg.n = 2;
    cfg.sysSeed = 1234;
    cfg.requestTimeoutTicks = 300'000;
    cfg.tester.opsPerNode = 40;
    cfg.tester.seed = 9;
    cfg.plan = FaultPlan::dropRequests(0.05, 3);
    cfg.plan.specs.push_back(FaultPlan::delays(0.05, 2000, 4).specs[0]);

    RunResult a = runOnce(cfg);
    RunResult b = runOnce(cfg);
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.failure, b.failure);
    EXPECT_EQ(a.busOps, b.busOps);
    EXPECT_EQ(a.injections, b.injections);
    EXPECT_FALSE(a.failed());
    EXPECT_GT(a.injections, 0u);
}

TEST(FuzzReplay, FrozenScheduleReproducesInjections)
{
    RunConfig cfg;
    cfg.n = 2;
    cfg.sysSeed = 77;
    cfg.requestTimeoutTicks = 300'000;
    cfg.tester.opsPerNode = 50;
    cfg.tester.seed = 21;
    cfg.plan = FaultPlan::dropRequests(0.08, 13);

    RunResult probabilistic = runOnce(cfg);
    ASSERT_GT(probabilistic.injections, 0u);

    // Freezing the fired match indices into an explicit schedule (and
    // clearing prob) must reproduce the identical run.
    RunConfig frozen = freezeSchedules(cfg, probabilistic);
    EXPECT_EQ(frozen.plan.specs[0].prob, 0.0);
    EXPECT_FALSE(frozen.plan.specs[0].atMatches.empty());
    RunResult replay = runOnce(frozen);
    EXPECT_EQ(replay.hash, probabilistic.hash);
    EXPECT_EQ(replay.injections, probabilistic.injections);
    EXPECT_EQ(replay.firedMatches, probabilistic.firedMatches);
}

TEST(FuzzReplay, FailStopArtifactReplaysBitIdentical)
{
    // A run that gracefully kills a node mid-campaign must replay
    // bit-identically *through the artifact text* — the same path
    // `fuzz_campaign --replay` takes on a repro file from disk.
    RunConfig cfg;
    cfg.n = 3;
    cfg.sysSeed = 4242;
    cfg.requestTimeoutTicks = 300'000;
    cfg.tester.opsPerNode = 60;
    cfg.tester.seed = 17;
    cfg.tester.pTset = 0.0;
    // Early enough to land while agents are still issuing (the 9-node
    // 60-ops workload drains in ~150k ticks).
    cfg.plan = FaultPlan::failStopNode(4, 60'000, true);

    RunResult first = runOnce(cfg);
    EXPECT_FALSE(first.failed()) << toString(first.failure);

    std::string text =
        artifactJson(cfg, first, "planted fail-stop replay").dump();
    std::string err;
    Json parsed = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_EQ(artifactParseError(parsed), "");

    RunConfig back;
    std::uint64_t wantHash = 0;
    FailureKind wantKind = FailureKind::None;
    ASSERT_TRUE(artifactFromJson(parsed, back, wantHash, wantKind));
    EXPECT_EQ(wantHash, first.hash);
    ASSERT_EQ(back.plan.specs.size(), 1u);
    EXPECT_EQ(back.plan.specs[0].kind, FaultKind::FailStopNode);

    RunResult replay = runOnce(back);
    EXPECT_EQ(replay.hash, first.hash);
    EXPECT_EQ(replay.failure, first.failure);
    EXPECT_EQ(replay.busOps, first.busOps);
    EXPECT_EQ(replay.endTick, first.endTick);
}

// ---------------------------------------------------------------------
// Planted bug: found, shrunk, still failing, replayable
// ---------------------------------------------------------------------

namespace
{

/** A config whose plan contains the planted protocol-breaking fault:
 *  an unsafe DropReply destroys the only copy of a line. */
RunConfig
plantedConfig()
{
    RunConfig cfg;
    cfg.n = 2;
    cfg.sysSeed = 4242;
    cfg.requestTimeoutTicks = 200'000;
    cfg.maxTicks = 400'000'000ull;
    cfg.tester.opsPerNode = 30;
    cfg.tester.seed = 1717;
    cfg.tester.pWrite = 0.5;

    FaultSpec noise;  // innocuous rider the shrinker should discard
    noise.kind = FaultKind::Delay;
    noise.prob = 0.05;
    noise.delayTicks = 1500;
    cfg.plan.seed = 33;
    cfg.plan.specs.push_back(noise);

    FaultSpec bug;
    bug.kind = FaultKind::DropReply;
    bug.unsafe = true;
    bug.prob = 0.05;
    cfg.plan.specs.push_back(bug);
    return cfg;
}

} // namespace

TEST(FuzzPlantedBug, ShrinksToMinimalFailingRepro)
{
    RunConfig cfg = plantedConfig();
    RunResult found = runOnce(cfg);
    ASSERT_TRUE(found.failed())
        << "planted unsafe DropReply did not break the run";

    ShrinkResult s = shrinkRepro(cfg, /*maxRuns=*/400);
    ASSERT_TRUE(s.result.failed());
    EXPECT_EQ(s.result.failure, found.failure);
    EXPECT_TRUE(s.deterministic);

    // The acceptance bar: a handful of ops, at most two faults.
    EXPECT_LE(activeNodes(s.config) * s.config.tester.opsPerNode, 10u);
    EXPECT_LE(scheduledInjections(s.config), 2u);

    // The surviving fault is the planted one.
    ASSERT_GE(s.config.plan.specs.size(), 1u);
    bool plantedSurvives = false;
    for (const auto &spec : s.config.plan.specs)
        plantedSurvives |= spec.unsafe && !spec.atMatches.empty();
    EXPECT_TRUE(plantedSurvives);

    // The minimal repro replays bit-identically through the artifact.
    std::string text = artifactJson(s.config, s.result, "test").dump();
    std::string err;
    Json parsed = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    RunConfig replayCfg;
    std::uint64_t wantHash = 0;
    FailureKind wantKind = FailureKind::None;
    ASSERT_TRUE(
        artifactFromJson(parsed, replayCfg, wantHash, wantKind));
    EXPECT_EQ(wantHash, s.result.hash);
    RunResult replay = runOnce(replayCfg);
    EXPECT_EQ(replay.hash, wantHash);
    EXPECT_EQ(replay.failure, wantKind);
}

TEST(FuzzPlantedBug, CampaignFindsItAndWritesArtifacts)
{
    CampaignOptions opt;
    opt.seed = 7;  // deterministic: run index 1 of this seed fails
    opt.runs = 4;
    opt.shrink = true;
    opt.maxShrinkRuns = 400;
    opt.outDir = "fuzz_test_artifacts";
    opt.plantUnsafeDropReply = true;

    CampaignSummary sum = runCampaign(opt);
    EXPECT_GT(sum.failures, 0u);
    ASSERT_GE(sum.artifacts.size(), 2u);  // as-found + shrunken

    // The shrunken artifact parses and its config still fails.
    const std::string &minPath = sum.artifacts.back();
    ASSERT_NE(minPath.find(".min.json"), std::string::npos) << minPath;
    std::ifstream in(minPath);
    ASSERT_TRUE(in.good()) << minPath;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    Json parsed = Json::parse(ss.str(), &err);
    ASSERT_TRUE(err.empty()) << err;

    RunConfig cfg;
    std::uint64_t wantHash = 0;
    FailureKind wantKind = FailureKind::None;
    ASSERT_TRUE(artifactFromJson(parsed, cfg, wantHash, wantKind));
    RunResult res = runOnce(cfg);
    EXPECT_TRUE(res.failed());
    EXPECT_EQ(res.hash, wantHash);
    EXPECT_EQ(res.failure, wantKind);

    for (const auto &path : sum.artifacts)
        std::remove(path.c_str());
}
