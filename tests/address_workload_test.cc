/** @file Tests for the locality-based address-stream workload. */

#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/address_workload.hh"

using namespace mcube;

namespace
{

SystemParams
bigCacheParams()
{
    SystemParams p;
    p.n = 4;
    p.ctrl.cache = {256, 4};  // 1024 lines: holds the working set
    return p;
}

} // namespace

TEST(AddressWorkload, IssuesReferences)
{
    MulticubeSystem sys(bigCacheParams());
    AddressWorkloadParams wp;
    wp.thinkTicks = 200;
    AddressWorkload wl(sys, wp);
    wl.start();
    sys.run(1'000'000);
    wl.stop();
    sys.drain();
    EXPECT_GT(wl.references(), 1000u);
}

TEST(AddressWorkload, SnoopingCacheAbsorbsPrivateTraffic)
{
    // Section 2's claim: with the working set cached, nearly all bus
    // traffic comes from shared data. After warm-up the L2 hit rate
    // must be very high and the observed bus request rate far below
    // the reference rate.
    MulticubeSystem sys(bigCacheParams());
    AddressWorkloadParams wp;
    // Fits the 1024-line cache with headroom: the set index is mixed,
    // so placement is statistical and a working set near one line per
    // set would see a tail of conflict sets.
    wp.privateLines = 128;
    wp.thinkTicks = 100;
    AddressWorkload wl(sys, wp);
    wl.start();
    sys.run(4'000'000);
    wl.stop();
    sys.drain();

    EXPECT_GT(wl.l2HitRate(), 0.55);  // includes cold misses
    // Reference rate is ~10k refs/ms/proc (1 per 100 ns); the bus
    // request rate must be orders of magnitude lower.
    double ref_rate = static_cast<double>(wl.references()) / 4.0
                    / sys.numNodes();
    EXPECT_LT(wl.observedBusRequestRate(), ref_rate / 5.0);
}

TEST(AddressWorkload, SharedFractionDrivesBusRate)
{
    auto rate = [](double p_shared) {
        SystemParams sp = bigCacheParams();
        MulticubeSystem sys(sp);
        AddressWorkloadParams wp;
        wp.pShared = p_shared;
        // Small enough that mixed-index conflict misses stay well
        // below the coherence-miss signal being measured.
        wp.privateLines = 128;
        wp.seed = 5;
        AddressWorkload wl(sys, wp);
        wl.start();
        // Warm up past the cold misses, then measure incrementally.
        sys.run(3'000'000);
        std::uint64_t before = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id)
            before += sys.node(id).misses();
        sys.run(3'000'000);
        std::uint64_t after = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id)
            after += sys.node(id).misses();
        wl.stop();
        sys.drain();
        return static_cast<double>(after - before) / 3.0
             / sys.numNodes();
    };
    // More shared references => more coherence misses => higher bus
    // request rate (the paper's driving parameter).
    EXPECT_GT(rate(0.20), rate(0.02) * 1.5);
}

TEST(AddressWorkload, L1FiltersMostReferences)
{
    MulticubeSystem sys(bigCacheParams());
    AddressWorkloadParams wp;
    wp.privateLines = 64;  // small enough for the L1 too
    wp.pShared = 0.0;
    wp.proc.l1 = {64, 2};
    AddressWorkload wl(sys, wp);
    wl.start();
    sys.run(3'000'000);
    wl.stop();
    sys.drain();
    EXPECT_GT(wl.l1HitRate(), 0.5);
}

TEST(AddressWorkload, StaysCoherent)
{
    MulticubeSystem sys(bigCacheParams());
    CoherenceChecker checker(sys, 128);
    AddressWorkloadParams wp;
    wp.pShared = 0.3;  // heavy sharing
    wp.sharedLines = 16;
    AddressWorkload wl(sys, wp);
    wl.start();
    sys.run(2'000'000);
    wl.stop();
    sys.drain();
    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(AddressWorkload, PrivateRegionsAreDisjoint)
{
    // No node's private traffic may invalidate another's: with
    // pShared = 0 there must be no invalidations at all.
    MulticubeSystem sys(bigCacheParams());
    AddressWorkloadParams wp;
    wp.pShared = 0.0;
    AddressWorkload wl(sys, wp);
    wl.start();
    sys.run(2'000'000);
    wl.stop();
    sys.drain();
    std::uint64_t invals = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        invals += sys.node(id).invalidationsReceived();
    EXPECT_EQ(invals, 0u);
}
