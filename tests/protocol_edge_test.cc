/** @file
 * Edge-case and parameterised protocol tests complementing
 * protocol_basic_test: API contracts (Busy/Hit semantics), inclusion
 * hooks, snarfing boundaries, race permutations across grid sizes.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"

using namespace mcube;

namespace
{

struct Waiter
{
    bool done = false;
    TxnResult res;

    SnoopController::CompletionCb
    cb()
    {
        return [this](const TxnResult &r) {
            done = true;
            res = r;
        };
    }
};

std::unique_ptr<MulticubeSystem>
makeSys(unsigned n = 4)
{
    SystemParams p;
    p.n = n;
    return std::make_unique<MulticubeSystem>(p);
}

} // namespace

TEST(ProtocolEdge, SecondRequestWhileBusyIsRejected)
{
    auto sys = makeSys();
    SnoopController &nd = sys->node(0, 0);
    Waiter w1, w2;
    std::uint64_t tok = 0;
    EXPECT_EQ(nd.read(1, tok, w1.cb()), AccessOutcome::Miss);
    EXPECT_EQ(nd.read(2, tok, w2.cb()), AccessOutcome::Busy);
    EXPECT_EQ(nd.write(2, 5, w2.cb()), AccessOutcome::Busy);
    sys->drain();
    EXPECT_TRUE(w1.done);
    EXPECT_FALSE(w2.done);
}

TEST(ProtocolEdge, ReadHitOnOwnModifiedLine)
{
    auto sys = makeSys();
    SnoopController &nd = sys->node(1, 2);
    Waiter w;
    nd.write(7, 70, w.cb());
    sys->drain();
    std::uint64_t tok = 0;
    EXPECT_EQ(nd.read(7, tok, w.cb()), AccessOutcome::Hit);
    EXPECT_EQ(tok, 70u);
}

TEST(ProtocolEdge, OnPurgeHookFiresForInvalidation)
{
    auto sys = makeSys();
    SnoopController &victim = sys->node(0, 0);
    std::vector<Addr> purged;
    victim.onPurge = [&](Addr a) { purged.push_back(a); };

    Waiter w;
    std::uint64_t tok = 0;
    victim.read(9, tok, w.cb());
    sys->drain();
    sys->node(3, 3).write(9, 1, w.cb());
    sys->drain();
    ASSERT_FALSE(purged.empty());
    EXPECT_EQ(purged.back(), 9u);
}

TEST(ProtocolEdge, OnPurgeHookFiresForCleanEviction)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.cache = {1, 1};  // one line total
    MulticubeSystem sys(p);
    SnoopController &nd = sys.node(0, 0);
    std::vector<Addr> purged;
    nd.onPurge = [&](Addr a) { purged.push_back(a); };

    Waiter w1, w2;
    std::uint64_t tok = 0;
    nd.read(1, tok, w1.cb());
    sys.drain();
    nd.read(2, tok, w2.cb());
    sys.drain();
    ASSERT_FALSE(purged.empty());
    EXPECT_EQ(purged.front(), 1u);
}

TEST(ProtocolEdge, ModeOfAbsentLineIsInvalid)
{
    auto sys = makeSys();
    EXPECT_EQ(sys->node(0, 0).modeOf(123), Mode::Invalid);
    EXPECT_EQ(sys->node(0, 0).dataOf(123).token, 0u);
}

TEST(ProtocolEdge, TsetOnSharedLineGoesToBus)
{
    auto sys = makeSys();
    SnoopController &nd = sys->node(0, 1);
    Waiter w;
    std::uint64_t tok = 0;
    nd.read(20, tok, w.cb());
    sys->drain();
    ASSERT_EQ(nd.modeOf(20), Mode::Shared);

    std::uint64_t before = sys->totalBusOps();
    Waiter w2;
    bool granted = false;
    EXPECT_EQ(nd.testAndSet(20, granted, w2.cb()),
              AccessOutcome::Miss);
    sys->drain();
    ASSERT_TRUE(w2.done);
    EXPECT_TRUE(w2.res.success);
    EXPECT_GT(sys->totalBusOps(), before);
    EXPECT_EQ(nd.modeOf(20), Mode::Modified);
}

TEST(ProtocolEdge, ReleaseWithoutHoldingFails)
{
    auto sys = makeSys();
    EXPECT_FALSE(sys->node(0, 0).release(55, 1));
}

TEST(ProtocolEdge, SnarfingOffByDefault)
{
    auto sys = makeSys();
    Addr addr = 8;
    SnoopController &a = sys->node(0, 0);
    SnoopController &b = sys->node(0, 1);
    Waiter w;
    std::uint64_t tok = 0;
    a.read(addr, tok, w.cb());
    sys->drain();
    sys->node(2, 2).write(addr, 1, w.cb());
    sys->drain();
    ASSERT_EQ(a.modeOf(addr), Mode::Invalid);
    Waiter w2;
    b.read(addr, tok, w2.cb());
    sys->drain();
    EXPECT_EQ(a.modeOf(addr), Mode::Invalid);  // no snarf
    EXPECT_EQ(a.snarfs(), 0u);
}

TEST(ProtocolEdge, SnarfRequiresRecentTag)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.enableSnarfing = true;
    MulticubeSystem sys(p);
    Addr addr = 8;
    // Node (0,2) never held the line: a passing reply on its row must
    // not be snarfed (no tag).
    SnoopController &bystander = sys.node(0, 2);
    Waiter w;
    std::uint64_t tok = 0;
    sys.node(0, 1).read(addr, tok, w.cb());
    sys.drain();
    EXPECT_EQ(bystander.modeOf(addr), Mode::Invalid);
    EXPECT_EQ(bystander.snarfs(), 0u);
}

TEST(ProtocolEdge, WriteHitCommitsThroughHook)
{
    auto sys = makeSys();
    SnoopController &nd = sys->node(1, 1);
    std::vector<std::pair<Addr, std::uint64_t>> commits;
    nd.onCommitWrite = [&](Addr a, std::uint64_t t) {
        commits.emplace_back(a, t);
    };
    Waiter w;
    nd.write(3, 30, w.cb());
    sys->drain();
    Waiter w2;
    EXPECT_EQ(nd.write(3, 31, w2.cb()), AccessOutcome::Hit);
    ASSERT_EQ(commits.size(), 2u);
    EXPECT_EQ(commits[0], (std::pair<Addr, std::uint64_t>{3, 30}));
    EXPECT_EQ(commits[1], (std::pair<Addr, std::uint64_t>{3, 31}));
}

TEST(ProtocolEdge, PerClassLatencyStatsPopulate)
{
    auto sys = makeSys();
    SnoopController &nd = sys->node(0, 1);
    Waiter w;
    std::uint64_t tok = 0;
    nd.read(50, tok, w.cb());
    sys->drain();
    nd.write(51, 1, w.cb());
    sys->drain();
    bool g = false;
    nd.testAndSet(52, g, w.cb());
    sys->drain();

    EXPECT_EQ(nd.readLatency().count(), 1u);
    EXPECT_EQ(nd.writeLatency().count(), 1u);
    EXPECT_EQ(nd.lockLatency().count(), 1u);
    EXPECT_EQ(nd.missLatency().count(), 3u);
    EXPECT_GT(nd.readLatency().mean(), 0.0);
    // Reads of unmodified lines pay memory latency plus two bus data
    // transfers; sanity-band the value.
    EXPECT_GT(nd.readLatency().mean(), 2000.0);
    EXPECT_LT(nd.readLatency().mean(), 10000.0);
}

TEST(ProtocolEdge, PendingInfoDescribesOutstandingTxn)
{
    auto sys = makeSys();
    SnoopController &nd = sys->node(0, 1);
    EXPECT_TRUE(nd.pendingInfo().empty());
    Waiter w;
    std::uint64_t tok = 0;
    nd.read(50, tok, w.cb());
    std::string info = nd.pendingInfo();
    EXPECT_NE(info.find("READ"), std::string::npos);
    EXPECT_NE(info.find("50"), std::string::npos);
    sys->drain();
    EXPECT_TRUE(nd.pendingInfo().empty());
}

// ---------------------------------------------------------------------
// Parameterised sweeps across grid sizes
// ---------------------------------------------------------------------

class GridSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GridSweep, OwnershipMigrationChain)
{
    unsigned n = GetParam();
    auto sys = makeSys(n);
    CoherenceChecker checker(*sys, 16);
    Addr addr = 3;
    // Pass the line through every node in a scattered order.
    std::uint64_t expect = 0;
    for (NodeId id = 0; id < sys->numNodes(); ++id) {
        NodeId target = (id * 7 + 1) % sys->numNodes();
        Waiter w;
        expect = 1000 + id;
        sys->node(target).write(addr, expect, w.cb());
        ASSERT_TRUE(sys->drain());
        ASSERT_TRUE(w.done) << "node " << target;
    }
    EXPECT_EQ(checker.goldenToken(addr), expect);
    checker.fullSweep();
    EXPECT_EQ(checker.violations(), 0u);
}

TEST_P(GridSweep, EveryNodeCanReadEveryHomeColumn)
{
    unsigned n = GetParam();
    auto sys = makeSys(n);
    for (unsigned c = 0; c < n; ++c) {
        Addr addr = 100 * n + c;  // home column c
        Waiter w;
        std::uint64_t tok = 1;
        NodeId reader = sys->gridMap().nodeAt((c + 1) % n, (c + 2) % n);
        auto out = sys->node(reader).read(addr, tok, w.cb());
        ASSERT_TRUE(sys->drain());
        if (out == AccessOutcome::Miss) {
            ASSERT_TRUE(w.done);
            EXPECT_EQ(w.res.data.token, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 8u),
                         [](const ::testing::TestParamInfo<unsigned> &i) {
                             return "n" + std::to_string(i.param);
                         });
