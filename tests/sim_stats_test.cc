/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "sim/stats.hh"

using namespace mcube;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.set(42);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_DOUBLE_EQ(d.total(), 12.0);
    EXPECT_NEAR(d.variance(), 8.0 / 3.0, 1e-9);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Distribution, VarianceAppearsInDumps)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(8.0 / 3.0), 1e-9);

    StatGroup g("grp");
    g.addDistribution("lat", d);

    std::ostringstream text;
    g.dump(text);
    EXPECT_NE(text.str().find("stddev"), std::string::npos);

    std::ostringstream json;
    g.dumpJson(json);
    EXPECT_NE(json.str().find("\"variance\""), std::string::npos);
    EXPECT_NE(json.str().find("\"stddev\""), std::string::npos);

    std::map<std::string, double> flat;
    g.flatten(flat);
    EXPECT_NEAR(flat.at("grp.lat.variance"), 8.0 / 3.0, 1e-9);
    EXPECT_NEAR(flat.at("grp.lat.stddev"), std::sqrt(8.0 / 3.0), 1e-9);
}

TEST(Distribution, WelfordSurvivesLargeOffsets)
{
    // The naive sumSq/n - mean^2 formula catastrophically cancels
    // when the variance is tiny relative to the magnitude of the
    // samples: for {1e9+1, 1e9+2, 1e9+3}, sumSq ~ 3e18 eats the
    // units digit entirely and the subtraction returns garbage
    // (often negative). Welford's update never forms the big
    // squares, so the exact population variance 2/3 comes out.
    Distribution d;
    d.sample(1e9 + 1.0);
    d.sample(1e9 + 2.0);
    d.sample(1e9 + 3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 1e9 + 2.0);
    EXPECT_NEAR(d.variance(), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(d.stddev(), std::sqrt(2.0 / 3.0), 1e-9);
}

TEST(Distribution, VarianceNeverNegative)
{
    // Identical large samples: exact variance is 0. Any cancellation
    // bug shows up as a (possibly negative) residual, and stddev()
    // would be NaN.
    Distribution d;
    for (int i = 0; i < 1000; ++i)
        d.sample(123456789.0);
    EXPECT_GE(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_FALSE(std::isnan(d.stddev()));

    // A long near-constant stream with a tiny wobble stays exact too.
    Distribution e;
    for (int i = 0; i < 10000; ++i)
        e.sample(5e8 + (i % 2 ? 0.5 : -0.5));
    EXPECT_GE(e.variance(), 0.0);
    EXPECT_NEAR(e.variance(), 0.25, 1e-6);
}

TEST(Distribution, GoldenMoments)
{
    // Fixed dataset, exact expectations (population moments).
    const double xs[] = {3.0, 7.0, 7.0, 19.0};
    Distribution d;
    for (double x : xs)
        d.sample(x);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.total(), 36.0);
    EXPECT_DOUBLE_EQ(d.mean(), 9.0);
    EXPECT_DOUBLE_EQ(d.min(), 3.0);
    EXPECT_DOUBLE_EQ(d.max(), 19.0);
    // variance = ((3-9)^2 + (7-9)^2 + (7-9)^2 + (19-9)^2) / 4 = 36
    EXPECT_NEAR(d.variance(), 36.0, 1e-12);
    EXPECT_NEAR(d.stddev(), 6.0, 1e-12);
}

TEST(StatGroup, FlatStatsMatchesMapFlatten)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(7.0);
    Histogram h;
    h.sample(100.0);

    StatGroup root("root");
    StatGroup child("child");
    root.addCounter("ops", c);
    child.addDistribution("lat", d);
    child.addHistogram("qd", h);
    root.addChild(child);

    std::map<std::string, double> asMap;
    root.flatten(asMap);
    FlatStats asVec;
    root.flatten(asVec);

    // Same entries, and the vector form holds them in stable tree
    // order (parent stats before children) with no rebuild cost.
    EXPECT_EQ(asVec.size(), asMap.size());
    for (const auto &[name, value] : asVec) {
        ASSERT_TRUE(asMap.count(name)) << name;
        EXPECT_DOUBLE_EQ(asMap.at(name), value) << name;
    }
    ASSERT_FALSE(asVec.empty());
    EXPECT_EQ(asVec.front().first, "root.ops");
}

TEST(Histogram, PercentileGoldenValues)
{
    // 100 samples of 1.0 (bucket 0, upper bound 1.0): every
    // percentile interpolates within [0, 1] and the extremes are
    // exact.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);
    EXPECT_GE(h.p50(), 0.0);
    EXPECT_LE(h.p50(), 1.0);

    // Two-bucket split: 50 samples in (1,2], 50 in (2,4]. The median
    // sits at the boundary between the buckets and the interpolation
    // must return exactly the shared edge, 2.0.
    Histogram g;
    for (int i = 0; i < 50; ++i)
        g.sample(2.0);
    for (int i = 0; i < 50; ++i)
        g.sample(4.0);
    EXPECT_DOUBLE_EQ(g.percentile(0.5), 2.0);
    // p25 interpolates to the middle of bucket (1,2] but clamps to
    // the observed minimum 2.0; p75 is the midpoint of (2,4].
    EXPECT_DOUBLE_EQ(g.percentile(0.25), 2.0);
    EXPECT_NEAR(g.percentile(0.75), 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(g.percentile(1.0), 4.0);
}

TEST(Histogram, BucketEdges)
{
    // Bucket 0 is [0, 1]; bucket i is (2^(i-1), 2^i].
    EXPECT_EQ(Histogram::bucketOf(0.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1.5), 1u);
    EXPECT_EQ(Histogram::bucketOf(2.0), 1u);
    EXPECT_EQ(Histogram::bucketOf(2.5), 2u);
    EXPECT_EQ(Histogram::bucketOf(4.0), 2u);
    EXPECT_EQ(Histogram::bucketOf(1024.0), 10u);
    EXPECT_EQ(Histogram::bucketOf(1025.0), 11u);
    // Huge values saturate into the last bucket instead of indexing
    // out of range.
    EXPECT_EQ(Histogram::bucketOf(1e30), Histogram::numBuckets - 1);
    for (unsigned i = 1; i < 20; ++i) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::upperBound(i)), i);
        EXPECT_EQ(Histogram::bucketOf(Histogram::lowerBound(i) + 0.5),
                  i);
    }
}

TEST(Histogram, EmptyReportsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSampleIsExact)
{
    Histogram h;
    h.sample(100.0);
    EXPECT_DOUBLE_EQ(h.p50(), 100.0);
    EXPECT_DOUBLE_EQ(h.p95(), 100.0);
    EXPECT_DOUBLE_EQ(h.p99(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 100.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

// ---------------------------------------------------------------------
// 0-sample and 1-sample edge cases across every export path. The
// convention (see Histogram::percentile): an EMPTY histogram or
// distribution reports 0.0 for every derived statistic — mean,
// variance, stddev, min, max and all percentiles — never NaN or a
// division by zero; a SINGLE sample reports that sample exactly for
// every percentile (interpolation clamps to [min, max]). BENCH_*.json
// files are parsed by scripts/perf_check.py, and NaN is not valid
// JSON, so any non-finite value here would corrupt the perf gate.
// ---------------------------------------------------------------------

TEST(Histogram, ZeroAndOneSamplePercentileTailsAreFinite)
{
    Histogram empty;
    for (double q : {0.5, 0.95, 0.99, 0.999}) {
        EXPECT_TRUE(std::isfinite(empty.percentile(q))) << q;
        EXPECT_DOUBLE_EQ(empty.percentile(q), 0.0) << q;
    }
    EXPECT_DOUBLE_EQ(empty.p999(), 0.0);

    Histogram one;
    one.sample(37.0);
    for (double q : {0.5, 0.95, 0.99, 0.999}) {
        EXPECT_TRUE(std::isfinite(one.percentile(q))) << q;
        EXPECT_DOUBLE_EQ(one.percentile(q), 37.0) << q;
    }
    EXPECT_DOUBLE_EQ(one.p999(), 37.0);
}

TEST(StatGroup, EmptyAndSingleSampleDumpsStayFinite)
{
    Histogram empty_h, one_h;
    Distribution empty_d, one_d;
    one_h.sample(42.0);
    one_d.sample(42.0);

    StatGroup g("edge");
    g.addHistogram("empty_h", empty_h);
    g.addHistogram("one_h", one_h);
    g.addDistribution("empty_d", empty_d);
    g.addDistribution("one_d", one_d);

    // flatten: every value finite; empty stats all-zero.
    std::map<std::string, double> flat;
    g.flatten(flat);
    ASSERT_FALSE(flat.empty());
    for (const auto &[name, value] : flat) {
        EXPECT_TRUE(std::isfinite(value)) << name;
        if (name.find("empty_") != std::string::npos)
            EXPECT_DOUBLE_EQ(value, 0.0) << name;
    }
    EXPECT_DOUBLE_EQ(flat.at("edge.one_h.p50"), 42.0);
    EXPECT_DOUBLE_EQ(flat.at("edge.one_h.p999"), 42.0);
    EXPECT_DOUBLE_EQ(flat.at("edge.one_d.variance"), 0.0);

    // dumpJson: no NaN/inf tokens (NaN is invalid JSON and would
    // corrupt BENCH_*.json for perf_check.py).
    std::ostringstream json;
    g.dumpJson(json);
    const std::string js = json.str();
    EXPECT_EQ(js.find("nan"), std::string::npos);
    EXPECT_EQ(js.find("inf"), std::string::npos);
    EXPECT_NE(js.find("\"empty_h\""), std::string::npos);

    // Plain-text dump survives too.
    std::ostringstream text;
    g.dump(text);
    EXPECT_EQ(text.str().find("nan"), std::string::npos);
    EXPECT_EQ(text.str().find("-nan"), std::string::npos);
}

TEST(Histogram, PercentilesClampedAndOrdered)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    // q outside (0, 1) hits the exact extremes.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
    // Interpolated percentiles are monotone, clamped to [min, max],
    // and in the right order of magnitude (log buckets).
    double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, h.min());
    EXPECT_LE(p99, h.max());
    EXPECT_GT(p50, 250.0);
    EXPECT_LT(p50, 800.0);
    EXPECT_GT(p99, 512.0);
}

TEST(Histogram, TailDominatesHighPercentiles)
{
    Histogram h;
    for (int i = 0; i < 900; ++i)
        h.sample(10.0);
    for (int i = 0; i < 100; ++i)
        h.sample(100000.0);
    // A 10% outlier tail: p50 stays near the mode, p95/p99 reach into
    // the outlier's bucket (the log-bucket "order of magnitude"
    // signal).
    EXPECT_LT(h.p50(), 20.0);
    EXPECT_GT(h.p95(), 1000.0);
    EXPECT_GT(h.p99(), 1000.0);
    EXPECT_LE(h.p99(), 100000.0);
}

TEST(Histogram, NegativeSamplesClampToZero)
{
    Histogram h;
    h.sample(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.sample(7.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.p95(), 0.0);
    EXPECT_EQ(h.bucketCount(3), 0u);
}

TEST(Histogram, AppearsInGroupDumps)
{
    Histogram h;
    h.sample(3.0);
    h.sample(300.0);
    StatGroup g("grp");
    g.addHistogram("qd", h, "queue delay");

    std::ostringstream json;
    g.dumpJson(json);
    const std::string js = json.str();
    EXPECT_NE(js.find("\"p50\""), std::string::npos);
    EXPECT_NE(js.find("\"p95\""), std::string::npos);
    EXPECT_NE(js.find("\"p99\""), std::string::npos);

    std::map<std::string, double> flat;
    g.flatten(flat);
    EXPECT_DOUBLE_EQ(flat.at("grp.qd"), h.mean());
    EXPECT_DOUBLE_EQ(flat.at("grp.qd.p50"), h.p50());
    EXPECT_DOUBLE_EQ(flat.at("grp.qd.p99"), h.p99());
}

TEST(StatGroup, FlattenProducesDottedNames)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(7.0);

    StatGroup root("root");
    StatGroup child("child");
    root.addCounter("ops", c);
    child.addDistribution("lat", d);
    root.addChild(child);

    std::map<std::string, double> flat;
    root.flatten(flat);
    EXPECT_DOUBLE_EQ(flat.at("root.ops"), 3.0);
    EXPECT_DOUBLE_EQ(flat.at("root.child.lat"), 7.0);
}

TEST(StatGroup, JsonDumpIsWellFormedish)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(7.0);
    StatGroup root("root");
    StatGroup child("child");
    root.addCounter("ops", c);
    child.addDistribution("lat", d);
    root.addChild(child);

    std::ostringstream oss;
    root.dumpJson(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("\"root\": {"), std::string::npos);
    EXPECT_NE(s.find("\"ops\": 3"), std::string::npos);
    EXPECT_NE(s.find("\"child\": {"), std::string::npos);
    EXPECT_NE(s.find("\"mean\": 7"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
}

TEST(StatGroup, DumpMentionsAllStats)
{
    Counter c;
    c += 9;
    StatGroup g("grp");
    g.addCounter("things", c, "number of things");
    std::ostringstream oss;
    g.dump(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("grp:"), std::string::npos);
    EXPECT_NE(s.find("things"), std::string::npos);
    EXPECT_NE(s.find("9"), std::string::npos);
    EXPECT_NE(s.find("number of things"), std::string::npos);
}

// ---------------------------------------------------------------------
// Every controller counter and latency distribution must be registered
// with the system stats tree: recovery campaigns read them through
// flatten()/dumpJson() and a silently unregistered stat would make a
// fault run look healthier than it is.
// ---------------------------------------------------------------------

#include "core/system.hh"

TEST(StatRegistration, AllControllerStatsAppearInSystemTree)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);

    std::map<std::string, double> flat;
    sys.statistics().flatten(flat);

    const char *counters[] = {
        "hits",         "misses",        "reissues",
        "invalidations", "snarfs",       "drops",
        "mlt_overflows", "victim_wbs",   "tset_fails",
        "sync_grants",  "sync_aborts",   "sync_joins",
        "watchdog_reissues",
    };
    const char *dists[] = {
        "watchdog_recovery_latency", "miss_latency", "read_latency",
        "write_latency",             "lock_latency",
    };

    auto count_suffix = [&](const std::string &suffix) {
        std::string want = "." + suffix;
        std::size_t hits = 0;
        for (const auto &[name, value] : flat) {
            if (name.size() > want.size()
                && name.compare(name.size() - want.size(), want.size(),
                                want) == 0) {
                ++hits;
            }
        }
        return hits;
    };

    // At least one instance per node (n^2 of them; some names are
    // also registered by the memory modules).
    for (const char *name : counters)
        EXPECT_GE(count_suffix(name), 4u) << name;
    for (const char *name : dists)
        EXPECT_GE(count_suffix(name), 4u) << name;

    // Memory-side robustness counter (the bounce path) as well.
    EXPECT_GE(count_suffix("bounces"), 2u);
}

TEST(StatRegistration, DumpJsonContainsWatchdogStats)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);

    std::ostringstream oss;
    sys.statistics().dumpJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("watchdog_reissues"), std::string::npos);
    EXPECT_NE(json.find("watchdog_recovery_latency"), std::string::npos);
}

TEST(StatRegistration, HistogramsAppearInSystemTree)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);

    std::map<std::string, double> flat;
    sys.statistics().flatten(flat);

    // Controller latency/recovery, bus queueing and memory bounce-chain
    // histograms all contribute percentile entries.
    std::size_t latency = 0, queue = 0, bounce = 0, recovery = 0;
    for (const auto &[name, value] : flat) {
        if (name.find("latency_hist.p99") != std::string::npos)
            ++latency;
        if (name.find("queue_delay_hist.p95") != std::string::npos)
            ++queue;
        if (name.find("bounce_chain_hist.p50") != std::string::npos)
            ++bounce;
        if (name.find("watchdog_recovery_hist") != std::string::npos)
            ++recovery;
    }
    EXPECT_GE(latency, 4u);   // one per node
    EXPECT_GE(queue, 4u);     // two row + two column buses
    EXPECT_GE(bounce, 2u);    // one per column memory
    EXPECT_GE(recovery, 4u);

    std::ostringstream oss;
    sys.statistics().dumpJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("latency_hist"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}
