/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "sim/stats.hh"

using namespace mcube;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.set(42);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_DOUBLE_EQ(d.total(), 12.0);
    EXPECT_NEAR(d.variance(), 8.0 / 3.0, 1e-9);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(StatGroup, FlattenProducesDottedNames)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(7.0);

    StatGroup root("root");
    StatGroup child("child");
    root.addCounter("ops", c);
    child.addDistribution("lat", d);
    root.addChild(child);

    std::map<std::string, double> flat;
    root.flatten(flat);
    EXPECT_DOUBLE_EQ(flat.at("root.ops"), 3.0);
    EXPECT_DOUBLE_EQ(flat.at("root.child.lat"), 7.0);
}

TEST(StatGroup, JsonDumpIsWellFormedish)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(7.0);
    StatGroup root("root");
    StatGroup child("child");
    root.addCounter("ops", c);
    child.addDistribution("lat", d);
    root.addChild(child);

    std::ostringstream oss;
    root.dumpJson(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("\"root\": {"), std::string::npos);
    EXPECT_NE(s.find("\"ops\": 3"), std::string::npos);
    EXPECT_NE(s.find("\"child\": {"), std::string::npos);
    EXPECT_NE(s.find("\"mean\": 7"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
}

TEST(StatGroup, DumpMentionsAllStats)
{
    Counter c;
    c += 9;
    StatGroup g("grp");
    g.addCounter("things", c, "number of things");
    std::ostringstream oss;
    g.dump(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("grp:"), std::string::npos);
    EXPECT_NE(s.find("things"), std::string::npos);
    EXPECT_NE(s.find("9"), std::string::npos);
    EXPECT_NE(s.find("number of things"), std::string::npos);
}

// ---------------------------------------------------------------------
// Every controller counter and latency distribution must be registered
// with the system stats tree: recovery campaigns read them through
// flatten()/dumpJson() and a silently unregistered stat would make a
// fault run look healthier than it is.
// ---------------------------------------------------------------------

#include "core/system.hh"

TEST(StatRegistration, AllControllerStatsAppearInSystemTree)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);

    std::map<std::string, double> flat;
    sys.statistics().flatten(flat);

    const char *counters[] = {
        "hits",         "misses",        "reissues",
        "invalidations", "snarfs",       "drops",
        "mlt_overflows", "victim_wbs",   "tset_fails",
        "sync_grants",  "sync_aborts",   "sync_joins",
        "watchdog_reissues",
    };
    const char *dists[] = {
        "watchdog_recovery_latency", "miss_latency", "read_latency",
        "write_latency",             "lock_latency",
    };

    auto count_suffix = [&](const std::string &suffix) {
        std::string want = "." + suffix;
        std::size_t hits = 0;
        for (const auto &[name, value] : flat) {
            if (name.size() > want.size()
                && name.compare(name.size() - want.size(), want.size(),
                                want) == 0) {
                ++hits;
            }
        }
        return hits;
    };

    // At least one instance per node (n^2 of them; some names are
    // also registered by the memory modules).
    for (const char *name : counters)
        EXPECT_GE(count_suffix(name), 4u) << name;
    for (const char *name : dists)
        EXPECT_GE(count_suffix(name), 4u) << name;

    // Memory-side robustness counter (the bounce path) as well.
    EXPECT_GE(count_suffix("bounces"), 2u);
}

TEST(StatRegistration, DumpJsonContainsWatchdogStats)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);

    std::ostringstream oss;
    sys.statistics().dumpJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("watchdog_reissues"), std::string::npos);
    EXPECT_NE(json.find("watchdog_recovery_latency"), std::string::npos);
}
