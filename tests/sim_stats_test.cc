/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "sim/stats.hh"

using namespace mcube;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.set(42);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_DOUBLE_EQ(d.total(), 12.0);
    EXPECT_NEAR(d.variance(), 8.0 / 3.0, 1e-9);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(StatGroup, FlattenProducesDottedNames)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(7.0);

    StatGroup root("root");
    StatGroup child("child");
    root.addCounter("ops", c);
    child.addDistribution("lat", d);
    root.addChild(child);

    std::map<std::string, double> flat;
    root.flatten(flat);
    EXPECT_DOUBLE_EQ(flat.at("root.ops"), 3.0);
    EXPECT_DOUBLE_EQ(flat.at("root.child.lat"), 7.0);
}

TEST(StatGroup, JsonDumpIsWellFormedish)
{
    Counter c;
    c += 3;
    Distribution d;
    d.sample(7.0);
    StatGroup root("root");
    StatGroup child("child");
    root.addCounter("ops", c);
    child.addDistribution("lat", d);
    root.addChild(child);

    std::ostringstream oss;
    root.dumpJson(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("\"root\": {"), std::string::npos);
    EXPECT_NE(s.find("\"ops\": 3"), std::string::npos);
    EXPECT_NE(s.find("\"child\": {"), std::string::npos);
    EXPECT_NE(s.find("\"mean\": 7"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
}

TEST(StatGroup, DumpMentionsAllStats)
{
    Counter c;
    c += 9;
    StatGroup g("grp");
    g.addCounter("things", c, "number of things");
    std::ostringstream oss;
    g.dump(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("grp:"), std::string::npos);
    EXPECT_NE(s.find("things"), std::string::npos);
    EXPECT_NE(s.find("9"), std::string::npos);
    EXPECT_NE(s.find("number of things"), std::string::npos);
}
