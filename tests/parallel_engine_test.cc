/** @file
 * Determinism contract of the parallel single-simulation engine.
 *
 * The engine's promise (docs/PERFORMANCE.md) is that a fixed-seed run
 * produces bit-identical simulated results for ANY --sim-threads
 * value: the canonical window schedule — per-lane (tick, seq) order
 * inside phases, (tick, source lane, source order) at the cross-lane
 * merges — is a function of the configuration alone, never of the
 * worker count or of host scheduling. These tests run the same mixed
 * workload with 1, 2, 4 and 8 workers and require the *entire*
 * flattened stat tree, the final tick and the event count to match
 * the 1-worker run exactly. The tsan CI job runs this binary too, so
 * the same sweep doubles as the engine's data-race gate.
 *
 * Also covered: the hard-error contract for past-tick scheduling in
 * parallel mode (a death test — sequentially the queue clamps and
 * counts instead), drain termination, and telemetry consistency.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/system.hh"
#include "proc/mix_workload.hh"
#include "sim/parallel_engine.hh"

using namespace mcube;

namespace
{

struct RunOutcome
{
    std::map<std::string, double> stats;
    Tick endTick = 0;
    std::uint64_t events = 0;
    bool drained = false;
};

RunOutcome
runMix(unsigned n, unsigned threads, std::uint64_t seed, double rate,
       Tick sim_ticks)
{
    SystemParams sp;
    sp.n = n;
    sp.seed = seed;
    sp.simThreads = threads;
    MulticubeSystem sys(sp);

    MixParams mix;
    mix.requestsPerMs = rate;
    mix.seed = seed + 1;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(sim_ticks);
    wl.stop();

    RunOutcome out;
    out.drained = sys.drain();
    sys.statistics().flatten(out.stats);
    out.endTick = sys.eventQueue().now();
    out.events = sys.eventQueue().eventsExecuted();
    return out;
}

void
expectIdentical(const RunOutcome &ref, const RunOutcome &got,
                unsigned threads)
{
    EXPECT_TRUE(got.drained) << threads << " workers: did not drain";
    EXPECT_EQ(ref.endTick, got.endTick) << threads << " workers";
    EXPECT_EQ(ref.events, got.events) << threads << " workers";
    ASSERT_EQ(ref.stats.size(), got.stats.size())
        << threads << " workers: stat tree shape changed";
    auto a = ref.stats.begin();
    auto b = got.stats.begin();
    for (; a != ref.stats.end(); ++a, ++b) {
        EXPECT_EQ(a->first, b->first) << threads << " workers";
        // Bit-identical contract: exact double equality, no epsilon.
        EXPECT_EQ(a->second, b->second)
            << threads << " workers diverge at " << a->first;
    }
}

} // namespace

TEST(ParallelEngine, BitIdenticalAcrossWorkerCounts)
{
    const RunOutcome ref = runMix(8, 1, 0xC0FFEE, 40.0, 400'000);
    EXPECT_TRUE(ref.drained);
    EXPECT_GT(ref.events, 0u);
    for (unsigned threads : {2u, 4u, 8u}) {
        const RunOutcome got =
            runMix(8, threads, 0xC0FFEE, 40.0, 400'000);
        expectIdentical(ref, got, threads);
    }
}

TEST(ParallelEngine, BitIdenticalOnSmallGridHighRate)
{
    // n=4 with 8 requested workers exercises the clamp to n lanes per
    // phase; the high rate keeps every lane busy in most windows.
    const RunOutcome ref = runMix(4, 1, 987654321, 120.0, 300'000);
    for (unsigned threads : {2u, 4u, 8u}) {
        const RunOutcome got =
            runMix(4, threads, 987654321, 120.0, 300'000);
        expectIdentical(ref, got, threads);
    }
}

TEST(ParallelEngine, DrainTerminatesAndSystemQuiesces)
{
    SystemParams sp;
    sp.n = 4;
    sp.simThreads = 4;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = 50.0;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(200'000);
    wl.stop();
    EXPECT_TRUE(sys.drain());
    EXPECT_TRUE(sys.eventQueue().empty());
    for (unsigned i = 0; i < sp.n; ++i) {
        EXPECT_EQ(sys.rowBus(i).pendingOps(), 0u);
        EXPECT_EQ(sys.colBus(i).pendingOps(), 0u);
    }
}

TEST(ParallelEngine, TelemetryAccountsForEveryEvent)
{
    SystemParams sp;
    sp.n = 4;
    sp.simThreads = 2;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = 50.0;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(200'000);
    wl.stop();
    ASSERT_TRUE(sys.drain());

    ASSERT_NE(sys.parallelEngine(), nullptr);
    const ParallelEngine::Telemetry t =
        sys.parallelEngine()->telemetry();
    EXPECT_GT(t.events, 0u);
    EXPECT_EQ(t.events, t.serialEvents + t.rowEvents + t.colEvents);
    std::uint64_t lane_sum = 0;
    for (std::uint64_t e : t.laneEvents)
        lane_sum += e;
    EXPECT_EQ(t.events, lane_sum);
    std::uint64_t worker_sum = t.serialEvents; // serial runs unlogged
    for (std::uint64_t e : t.workerEvents)
        worker_sum += e;
    EXPECT_EQ(t.events, worker_sum);
    EXPECT_GT(t.windows, 0u);
    EXPECT_EQ(t.workersEffective, 2u);
    const double proj = t.projectedSpeedup(4);
    EXPECT_GE(proj, 1.0);
    EXPECT_LE(proj, 4.0);
    EXPECT_EQ(t.events, sys.eventQueue().eventsExecuted());
}

TEST(ParallelEngine, EmptyStretchesAreSkippedNotStepped)
{
    // Two events half a simulated second apart: the window loop must
    // jump the gap instead of grinding through ~10^4 empty windows.
    SystemParams sp;
    sp.n = 4;
    sp.simThreads = 2;
    MulticubeSystem sys(sp);
    EventQueue &eq = sys.eventQueue();
    unsigned fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(500'000'000, [&] { ++fired; });
    eq.runUntil(500'000'000);
    EXPECT_EQ(fired, 2u);
    EXPECT_EQ(eq.now(), 500'000'000u);
    ASSERT_NE(sys.parallelEngine(), nullptr);
    EXPECT_LT(sys.parallelEngine()->telemetry().windows, 16u);
}

TEST(ParallelEngineDeathTest, PastTickScheduleAbortsInParallelMode)
{
    // The sequential queue clamps past-tick schedules (counted in
    // sched_past_tick); the parallel engine must abort instead — a
    // clamp there would silently mask a cross-shard causality
    // violation. Death tests fork, so use the threadsafe style (the
    // engine owns a worker pool).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            SystemParams sp;
            sp.n = 4;
            sp.simThreads = 1;
            MulticubeSystem sys(sp);
            EventQueue &eq = sys.eventQueue();
            eq.schedule(1'000, [] {});
            eq.runUntil(10'000);
            eq.schedule(5'000, [] {}); // now() is 10'000: the past
        },
        "scheduled in the past");
}
