/** @file
 * Determinism contract of the parallel single-simulation engine.
 *
 * The engine's promise (docs/PERFORMANCE.md) is that a fixed-seed run
 * produces bit-identical simulated results for ANY --sim-threads
 * value: the canonical window schedule — per-lane (tick, seq) order
 * inside phases, (tick, source lane, source order) at the cross-lane
 * merges — is a function of the configuration alone, never of the
 * worker count or of host scheduling. These tests run the same mixed
 * workload with 1, 2, 4 and 8 workers and require the *entire*
 * flattened stat tree, the final tick and the event count to match
 * the 1-worker run exactly. The tsan CI job runs this binary too, so
 * the same sweep doubles as the engine's data-race gate.
 *
 * Also covered: observer composition (profiler + tracer active under
 * 1 and 4 workers must leave results untouched and export the same
 * trace bit-for-bit), the hard-error contract for past-tick
 * scheduling in parallel mode (a death test — sequentially the queue
 * clamps and counts instead), drain termination, and telemetry
 * consistency.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/mix_workload.hh"
#include "proc/random_tester.hh"
#include "sim/parallel_engine.hh"
#include "sim/profiler.hh"
#include "trace/trace_event.hh"

using namespace mcube;

namespace
{

struct RunOutcome
{
    std::map<std::string, double> stats;
    Tick endTick = 0;
    std::uint64_t events = 0;
    bool drained = false;
};

RunOutcome
runMix(unsigned n, unsigned threads, std::uint64_t seed, double rate,
       Tick sim_ticks)
{
    SystemParams sp;
    sp.n = n;
    sp.seed = seed;
    sp.simThreads = threads;
    MulticubeSystem sys(sp);

    MixParams mix;
    mix.requestsPerMs = rate;
    mix.seed = seed + 1;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(sim_ticks);
    wl.stop();

    RunOutcome out;
    out.drained = sys.drain();
    sys.statistics().flatten(out.stats);
    out.endTick = sys.eventQueue().now();
    out.events = sys.eventQueue().eventsExecuted();
    return out;
}

void
expectIdentical(const RunOutcome &ref, const RunOutcome &got,
                unsigned threads)
{
    EXPECT_TRUE(got.drained) << threads << " workers: did not drain";
    EXPECT_EQ(ref.endTick, got.endTick) << threads << " workers";
    EXPECT_EQ(ref.events, got.events) << threads << " workers";
    ASSERT_EQ(ref.stats.size(), got.stats.size())
        << threads << " workers: stat tree shape changed";
    auto a = ref.stats.begin();
    auto b = got.stats.begin();
    for (; a != ref.stats.end(); ++a, ++b) {
        EXPECT_EQ(a->first, b->first) << threads << " workers";
        // Bit-identical contract: exact double equality, no epsilon.
        EXPECT_EQ(a->second, b->second)
            << threads << " workers diverge at " << a->first;
    }
}

/** runMix with the host self-profiler AND the transaction tracer
 *  active for the whole run, as --profile-out/--trace-out would. */
struct ObservedOutcome
{
    RunOutcome run;
    std::string traceText;
    std::uint64_t profEvents = 0;
};

ObservedOutcome
runMixObserved(unsigned n, unsigned threads, std::uint64_t seed,
               double rate, Tick sim_ticks)
{
    SimProfiler prof;
    TransactionTracer tracer;
    prof.activate();
    tracer.activate();

    ObservedOutcome out;
    out.run = runMix(n, threads, seed, rate, sim_ticks);

    tracer.deactivate();
    prof.deactivate();
    std::ostringstream os;
    tracer.exportText(os);
    out.traceText = os.str();
    out.profEvents = prof.summary().events;
    return out;
}

} // namespace

TEST(ParallelEngine, BitIdenticalAcrossWorkerCounts)
{
    const RunOutcome ref = runMix(8, 1, 0xC0FFEE, 40.0, 400'000);
    EXPECT_TRUE(ref.drained);
    EXPECT_GT(ref.events, 0u);
    for (unsigned threads : {2u, 4u, 8u}) {
        const RunOutcome got =
            runMix(8, threads, 0xC0FFEE, 40.0, 400'000);
        expectIdentical(ref, got, threads);
    }
}

TEST(ParallelEngine, BitIdenticalOnSmallGridHighRate)
{
    // n=4 with 8 requested workers exercises the clamp to n lanes per
    // phase; the high rate keeps every lane busy in most windows.
    const RunOutcome ref = runMix(4, 1, 987654321, 120.0, 300'000);
    for (unsigned threads : {2u, 4u, 8u}) {
        const RunOutcome got =
            runMix(4, threads, 987654321, 120.0, 300'000);
        expectIdentical(ref, got, threads);
    }
}

TEST(ParallelEngine, ObserversComposeAndPreserveDeterminism)
{
    // Profiling and tracing must neither perturb simulated results
    // nor depend on the worker count: the engine runs per-lane
    // observer shards and folds them canonically at window boundaries
    // (docs/PERFORMANCE.md). Three-way check on one fixed-seed config:
    //
    //  - observers ON vs OFF: identical stat tree (1 worker);
    //  - observers ON, 1 vs 4 workers: identical stat tree AND a
    //    bit-identical flat trace export;
    //  - both observers actually saw the run (no silent no-op pass).
    //
    // The tsan CI job runs this binary, so the same sweep doubles as
    // the data-race gate for the observer shard swap/merge paths.
    const RunOutcome ref = runMix(8, 1, 0xD15EA5E, 40.0, 300'000);
    EXPECT_TRUE(ref.drained);

    const ObservedOutcome obs1 =
        runMixObserved(8, 1, 0xD15EA5E, 40.0, 300'000);
    const ObservedOutcome obs4 =
        runMixObserved(8, 4, 0xD15EA5E, 40.0, 300'000);

    expectIdentical(ref, obs1.run, 1);
    expectIdentical(ref, obs4.run, 4);

    EXPECT_GT(obs1.profEvents, 0u);
    EXPECT_GT(obs4.profEvents, 0u);
    ASSERT_FALSE(obs1.traceText.empty());
    // Bit-identical contract: the canonically merged trace stream is a
    // function of the configuration, not of the worker count.
    EXPECT_EQ(obs1.traceText, obs4.traceText);
}

TEST(ParallelEngine, CheckerComposesWithBarrierChecks)
{
    // The coherence checker's per-op invariants read live global
    // state, so under the window-phased engine they run from the
    // barrier hook, once the window's commits have all landed in the
    // golden history (checker.cc). A mid-window check would see e.g.
    // a home-lane write hit's token in the cache before its commit
    // deferral reaches the history and raise a false I3. Gate: a
    // watchdog-armed random campaign under the checker reports zero
    // violations at every worker count and stays bit-identical.
    auto campaign = [](unsigned threads) {
        SystemParams sp;
        sp.n = 8;
        sp.seed = 0xFEEDFACE;
        sp.simThreads = threads;
        sp.ctrl.requestTimeoutTicks = 500'000;
        MulticubeSystem sys(sp);
        CoherenceChecker checker(sys, 64);
        RandomTesterParams tp;
        tp.opsPerNode = 60;
        tp.seed = 42;
        RandomTester tester(sys, checker, tp);
        tester.start();
        sys.run(3'000'000);
        sys.drain();
        EXPECT_TRUE(tester.finished()) << "threads=" << threads;
        EXPECT_EQ(tester.readFailures(), 0u) << "threads=" << threads;
        EXPECT_EQ(checker.violations(), 0u)
            << "threads=" << threads << " first: "
            << (checker.report().empty() ? std::string("-")
                                         : checker.report().front());
        checker.fullSweep(true);
        EXPECT_EQ(checker.violations(), 0u)
            << "post-drain strict sweep, threads=" << threads;
        return tester.resultHash();
    };
    const std::uint64_t h1 = campaign(1);
    const std::uint64_t h4 = campaign(4);
    EXPECT_EQ(h1, h4);
}

TEST(ParallelEngine, DrainTerminatesAndSystemQuiesces)
{
    SystemParams sp;
    sp.n = 4;
    sp.simThreads = 4;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = 50.0;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(200'000);
    wl.stop();
    EXPECT_TRUE(sys.drain());
    EXPECT_TRUE(sys.eventQueue().empty());
    for (unsigned i = 0; i < sp.n; ++i) {
        EXPECT_EQ(sys.rowBus(i).pendingOps(), 0u);
        EXPECT_EQ(sys.colBus(i).pendingOps(), 0u);
    }
}

TEST(ParallelEngine, TelemetryAccountsForEveryEvent)
{
    SystemParams sp;
    sp.n = 4;
    sp.simThreads = 2;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = 50.0;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(200'000);
    wl.stop();
    ASSERT_TRUE(sys.drain());

    ASSERT_NE(sys.parallelEngine(), nullptr);
    const ParallelEngine::Telemetry t =
        sys.parallelEngine()->telemetry();
    EXPECT_GT(t.events, 0u);
    EXPECT_EQ(t.events, t.serialEvents + t.rowEvents + t.colEvents);
    std::uint64_t lane_sum = 0;
    for (std::uint64_t e : t.laneEvents)
        lane_sum += e;
    EXPECT_EQ(t.events, lane_sum);
    std::uint64_t worker_sum = t.serialEvents; // serial runs unlogged
    for (std::uint64_t e : t.workerEvents)
        worker_sum += e;
    EXPECT_EQ(t.events, worker_sum);
    EXPECT_GT(t.windows, 0u);
    EXPECT_EQ(t.workersEffective, 2u);
    const double proj = t.projectedSpeedup(4);
    EXPECT_GE(proj, 1.0);
    EXPECT_LE(proj, 4.0);
    EXPECT_EQ(t.events, sys.eventQueue().eventsExecuted());
}

TEST(ParallelEngine, EmptyStretchesAreSkippedNotStepped)
{
    // Two events half a simulated second apart: the window loop must
    // jump the gap instead of grinding through ~10^4 empty windows.
    SystemParams sp;
    sp.n = 4;
    sp.simThreads = 2;
    MulticubeSystem sys(sp);
    EventQueue &eq = sys.eventQueue();
    unsigned fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(500'000'000, [&] { ++fired; });
    eq.runUntil(500'000'000);
    EXPECT_EQ(fired, 2u);
    EXPECT_EQ(eq.now(), 500'000'000u);
    ASSERT_NE(sys.parallelEngine(), nullptr);
    EXPECT_LT(sys.parallelEngine()->telemetry().windows, 16u);
}

TEST(ParallelEngineDeathTest, PastTickScheduleAbortsInParallelMode)
{
    // The sequential queue clamps past-tick schedules (counted in
    // sched_past_tick); the parallel engine must abort instead — a
    // clamp there would silently mask a cross-shard causality
    // violation. Death tests fork, so use the threadsafe style (the
    // engine owns a worker pool).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            SystemParams sp;
            sp.n = 4;
            sp.simThreads = 1;
            MulticubeSystem sys(sp);
            EventQueue &eq = sys.eventQueue();
            eq.schedule(1'000, [] {});
            eq.runUntil(10'000);
            eq.schedule(5'000, [] {}); // now() is 10'000: the past
        },
        "scheduled in the past");
}
