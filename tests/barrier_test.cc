/** @file Tests for barrier synchronisation (Section 4 variation). */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/barrier.hh"
#include "proc/processor.hh"

using namespace mcube;

namespace
{

constexpr BarrierAddrs kBarrier{700, 701, 702};

struct Rig
{
    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<BarrierMember>> members;

    explicit
    Rig(unsigned parties, unsigned n = 4)
    {
        SystemParams p;
        p.n = n;
        sys = std::make_unique<MulticubeSystem>(p);
        checker = std::make_unique<CoherenceChecker>(*sys, 64);
        for (unsigned i = 0; i < parties; ++i) {
            procs.push_back(std::make_unique<Processor>(
                "p" + std::to_string(i), sys->eventQueue(),
                sys->node((i * 3) % sys->numNodes()),
                ProcessorParams{}));
            members.push_back(std::make_unique<BarrierMember>(
                *procs.back(), kBarrier, parties));
        }
    }
};

} // namespace

TEST(Barrier, AllPartiesReleaseTogether)
{
    Rig rig(6);
    unsigned released = 0;
    std::vector<Tick> when(6, 0);
    for (unsigned i = 0; i < 6; ++i) {
        // Stagger the arrivals.
        rig.sys->eventQueue().scheduleIn(i * 5000, [&, i] {
            rig.members[i]->arrive([&, i] {
                ++released;
                when[i] = rig.sys->eventQueue().now();
            });
        });
    }
    rig.sys->eventQueue().runUntil(200'000'000);
    rig.sys->drain();
    EXPECT_EQ(released, 6u);
    // Nobody may be released before the last arrival (i = 5 arrives
    // at >= 25000 ns).
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_GE(when[i], 25000u) << "member " << i;
    EXPECT_EQ(rig.checker->violations(), 0u);
}

TEST(Barrier, NoEarlyRelease)
{
    Rig rig(4);
    unsigned released = 0;
    // Only 3 of 4 arrive.
    for (unsigned i = 0; i < 3; ++i)
        rig.members[i]->arrive([&] { ++released; });
    rig.sys->eventQueue().runUntil(50'000'000);
    EXPECT_EQ(released, 0u);
    // The 4th arrival releases everyone.
    rig.members[3]->arrive([&] { ++released; });
    rig.sys->eventQueue().runUntil(200'000'000);
    rig.sys->drain();
    EXPECT_EQ(released, 4u);
}

TEST(Barrier, RepeatedEpisodes)
{
    const unsigned parties = 4, rounds = 5;
    Rig rig(parties);
    unsigned done = 0;

    // Each member loops: arrive -> (callback) arrive again.
    std::function<void(unsigned)> loop = [&](unsigned i) {
        if (rig.members[i]->episodes() >= rounds) {
            ++done;
            return;
        }
        rig.members[i]->arrive([&, i] { loop(i); });
    };
    for (unsigned i = 0; i < parties; ++i)
        loop(i);

    rig.sys->eventQueue().runUntil(2'000'000'000ull);
    rig.sys->drain();
    EXPECT_EQ(done, parties);
    for (auto &m : rig.members)
        EXPECT_EQ(m->episodes(), rounds);
    EXPECT_EQ(rig.checker->violations(), 0u);
}

TEST(Barrier, SpinningIsMostlyBusSilent)
{
    // One early arrival spins while the others trickle in slowly; its
    // spin reads must hit its cached generation copy, so total bus
    // operations stay far below the spin count.
    Rig rig(3);
    unsigned released = 0;
    rig.members[0]->arrive([&] { ++released; });
    rig.sys->eventQueue().runUntil(1'000'000);  // spin for ~1 ms alone

    std::uint64_t ops_mid = rig.sys->totalBusOps();
    std::uint64_t spins_mid = rig.members[0]->spinReads();
    EXPECT_GT(spins_mid, 1000u);       // it is definitely spinning
    EXPECT_LT(ops_mid, 200u);          // ... without bus traffic

    rig.members[1]->arrive([&] { ++released; });
    rig.members[2]->arrive([&] { ++released; });
    rig.sys->eventQueue().runUntil(100'000'000);
    rig.sys->drain();
    EXPECT_EQ(released, 3u);
}

TEST(Barrier, SixteenParties)
{
    Rig rig(16);
    unsigned released = 0;
    for (auto &m : rig.members)
        m->arrive([&] { ++released; });
    rig.sys->eventQueue().runUntil(2'000'000'000ull);
    rig.sys->drain();
    EXPECT_EQ(released, 16u);
    EXPECT_EQ(rig.checker->violations(), 0u);
}
