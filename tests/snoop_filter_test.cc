/** @file
 * Tests for the snoop fast-reject presence filter: the counting
 * summary itself, its no-false-negative contract under cache/MLT
 * churn, and whole-system equivalence with the filter off.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cache/cache_array.hh"
#include "cache/mlt.hh"
#include "cache/presence_filter.hh"
#include "core/checker.hh"
#include "core/system.hh"
#include "proc/random_tester.hh"
#include "sim/random.hh"

using namespace mcube;

TEST(PresenceFilter, AddThenMightContain)
{
    PresenceFilter f;
    EXPECT_FALSE(f.mightContain(5));
    f.add(5);
    EXPECT_TRUE(f.mightContain(5));
    f.remove(5);
    EXPECT_FALSE(f.mightContain(5));
}

TEST(PresenceFilter, CountingAbsorbsOverlap)
{
    // A line both cached and tabled is added twice; one remove must
    // not make it look absent.
    PresenceFilter f;
    f.add(9);
    f.add(9);
    f.remove(9);
    EXPECT_TRUE(f.mightContain(9));
    f.remove(9);
    EXPECT_FALSE(f.mightContain(9));
}

namespace
{

/** The one-sided contract: "definitely absent" must be right; "maybe
 *  present" needs no check. */
void
expectNoFalseNegatives(const PresenceFilter &f, CacheArray &cache,
                       const ModifiedLineTable &mlt, Addr max_addr)
{
    for (Addr a = 0; a < max_addr; ++a) {
        if (f.mightContain(a))
            continue;
        ASSERT_EQ(cache.find(a), nullptr)
            << "filter false negative for cached addr " << a;
        ASSERT_FALSE(mlt.contains(a))
            << "filter false negative for tabled addr " << a;
    }
}

} // namespace

TEST(PresenceFilter, TracksCacheAndMltThroughChurn)
{
    // Small structures so the random stream constantly evicts and
    // re-fills: every tag replacement exercises the remove+add pair
    // in CacheArray::fill, every table overflow the pair in
    // ModifiedLineTable::insert.
    constexpr Addr kAddrs = 64;
    CacheArray cache({4, 2});
    ModifiedLineTable mlt({2, 2});
    PresenceFilter filter;
    cache.setFilter(&filter);
    mlt.setFilter(&filter);
    Random rng(999);

    for (int step = 0; step < 4000; ++step) {
        Addr a = rng.below(kAddrs);
        switch (rng.below(4)) {
          case 0: {
            CacheLine *slot = cache.allocSlot(a);
            cache.fill(slot, a, Mode::Shared, LineData{});
            break;
          }
          case 1: {
            // Purge-style mode change: the tag (and the filter count)
            // must survive.
            if (CacheLine *l = cache.find(a))
                l->mode = Mode::Invalid;
            break;
          }
          case 2:
            mlt.insert(a);
            break;
          default:
            mlt.remove(a);
            break;
        }
        if (step % 64 == 0)
            expectNoFalseNegatives(filter, cache, mlt, kAddrs);
    }
    expectNoFalseNegatives(filter, cache, mlt, kAddrs);
}

TEST(PresenceFilter, SetFilterFoldsExistingContents)
{
    CacheArray cache({4, 2});
    ModifiedLineTable mlt({2, 2});
    cache.fill(cache.allocSlot(3), 3, Mode::Shared, LineData{});
    mlt.insert(7);

    PresenceFilter filter;
    cache.setFilter(&filter);
    mlt.setFilter(&filter);
    EXPECT_TRUE(filter.mightContain(3));
    EXPECT_TRUE(filter.mightContain(7));
}

namespace
{

std::map<std::string, double>
runTesterWorkload(bool snoop_filter)
{
    SystemParams p;
    p.n = 4;
    p.seed = 77;
    p.ctrl.cache = {16, 2};  // small: plenty of eviction churn
    p.ctrl.mlt = {16, 2};
    p.ctrl.snoopFilter = snoop_filter;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    RandomTesterParams tp;
    tp.opsPerNode = 80;
    tp.pTset = 0.15;
    tp.seed = 1234;
    RandomTester tester(sys, checker, tp);
    tester.start();
    sys.eventQueue().runUntil(2'000'000'000ull);
    EXPECT_TRUE(tester.finished());
    sys.drain();
    EXPECT_EQ(checker.violations(), 0u);

    std::map<std::string, double> flat;
    sys.statistics().flatten(flat);
    return flat;
}

} // namespace

TEST(SnoopFilter, FilterOnIsBitIdenticalToFilterOff)
{
    auto on = runTesterWorkload(true);
    auto off = runTesterWorkload(false);

    // Every simulated stat must match exactly; only the filter's own
    // bookkeeping counters may differ (they are zero with it off).
    for (const auto &[name, value] : on) {
        if (name.find("filter_") != std::string::npos)
            continue;
        auto it = off.find(name);
        ASSERT_NE(it, off.end()) << name;
        EXPECT_EQ(it->second, value) << name;
    }
}

TEST(SnoopFilter, RejectsASubstantialShareOfSnoops)
{
    auto on = runTesterWorkload(true);

    double hits = 0.0, rejects = 0.0;
    for (const auto &[name, value] : on) {
        if (name.find("filter_hits") != std::string::npos)
            hits += value;
        if (name.find("filter_rejects") != std::string::npos)
            rejects += value;
    }
    // The filter only pays for itself if it actually skips work. On a
    // 4x4 grid most deliveries miss most agents, so well over a tenth
    // of all snoop decisions should be fast-rejected.
    ASSERT_GT(hits + rejects, 0.0);
    EXPECT_GT(rejects / (hits + rejects), 0.1);
}
