/** @file
 * Property tests pitting the cache structures against naive reference
 * models over long random operation sequences, across geometries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/mlt.hh"
#include "cache/processor_cache.hh"
#include "sim/hash.hh"
#include "sim/random.hh"

using namespace mcube;

namespace
{

/** Naive set-associative LRU reference: per set, an ordered list of
 *  (addr) with MRU at the front. */
class RefLru
{
  public:
    /** @param mixed_index Mirror the mixed set index of CacheArray /
     *  ModifiedLineTable instead of plain addr % sets (which the L1
     *  processor cache still uses). */
    RefLru(std::size_t sets, unsigned assoc, bool mixed_index = false)
        : sets(sets), assoc(assoc), mixed(mixed_index)
    {
        lists.resize(sets);
    }

    std::size_t
    setOf(Addr a) const
    {
        return mixed ? static_cast<std::size_t>(mix64(a)) % sets
                     : a % sets;
    }

    bool
    contains(Addr a) const
    {
        const auto &l = lists[setOf(a)];
        return std::find(l.begin(), l.end(), a) != l.end();
    }

    void
    touch(Addr a)
    {
        auto &l = lists[setOf(a)];
        auto it = std::find(l.begin(), l.end(), a);
        if (it != l.end()) {
            l.erase(it);
            l.push_front(a);
        }
    }

    /** Insert; returns the evicted address if the set overflowed. */
    std::optional<Addr>
    insert(Addr a)
    {
        auto &l = lists[setOf(a)];
        auto it = std::find(l.begin(), l.end(), a);
        if (it != l.end()) {
            l.erase(it);
            l.push_front(a);
            return std::nullopt;
        }
        l.push_front(a);
        if (l.size() > assoc) {
            Addr victim = l.back();
            l.pop_back();
            return victim;
        }
        return std::nullopt;
    }

    bool
    remove(Addr a)
    {
        auto &l = lists[setOf(a)];
        auto it = std::find(l.begin(), l.end(), a);
        if (it == l.end())
            return false;
        l.erase(it);
        return true;
    }

    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto &l : lists)
            n += l.size();
        return n;
    }

  private:
    std::size_t sets;
    unsigned assoc;
    bool mixed;
    std::vector<std::list<Addr>> lists;
};

struct Geometry
{
    std::size_t sets;
    unsigned assoc;
    std::uint64_t seed;
};

std::string
geomName(const ::testing::TestParamInfo<Geometry> &info)
{
    return "s" + std::to_string(info.param.sets) + "w"
         + std::to_string(info.param.assoc) + "_r"
         + std::to_string(info.param.seed);
}

} // namespace

class MltVsReference : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(MltVsReference, LongRandomSequenceMatches)
{
    const Geometry &g = GetParam();
    ModifiedLineTable mlt({g.sets, g.assoc});
    RefLru ref(g.sets, g.assoc, true);
    Random rng(g.seed);

    for (int step = 0; step < 4000; ++step) {
        Addr a = rng.below(static_cast<std::uint32_t>(
            g.sets * g.assoc * 3));
        int op = rng.below(3);
        if (op == 0) {
            auto ev1 = mlt.insert(a);
            auto ev2 = ref.insert(a);
            ASSERT_EQ(ev1.has_value(), ev2.has_value())
                << "step " << step;
            if (ev1) {
                ASSERT_EQ(*ev1, *ev2) << "step " << step;
            }
        } else if (op == 1) {
            ASSERT_EQ(mlt.remove(a), ref.remove(a)) << "step " << step;
        } else {
            ASSERT_EQ(mlt.contains(a), ref.contains(a))
                << "step " << step;
        }
        if (step % 256 == 0) {
            ASSERT_EQ(mlt.size(), ref.size()) << "step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, MltVsReference,
                         ::testing::Values(Geometry{1, 1, 1},
                                           Geometry{1, 4, 2},
                                           Geometry{4, 2, 3},
                                           Geometry{8, 1, 4},
                                           Geometry{16, 4, 5},
                                           Geometry{3, 3, 6}),
                         geomName);

class CacheVsReference : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheVsReference, VictimChoiceMatchesLru)
{
    const Geometry &g = GetParam();
    CacheArray cache({g.sets, g.assoc});
    RefLru ref(g.sets, g.assoc, true);
    Random rng(g.seed * 31);

    // Model fills and touches; allocSlot's victim must be the LRU
    // line of the set whenever the set is full of valid tags.
    for (int step = 0; step < 4000; ++step) {
        Addr a = rng.below(static_cast<std::uint32_t>(
            g.sets * g.assoc * 3));
        if (rng.chance(0.6)) {
            CacheLine *slot = cache.allocSlot(a);
            bool full_set_eviction =
                slot->tagValid && slot->addr != a;
            auto ref_victim = ref.insert(a);
            if (full_set_eviction) {
                ASSERT_TRUE(ref_victim.has_value()) << "step " << step;
                ASSERT_EQ(slot->addr, *ref_victim) << "step " << step;
            }
            cache.fill(slot, a, Mode::Shared, LineData{});
        } else {
            CacheLine *l = cache.touch(a);
            ref.touch(a);
            ASSERT_EQ(l != nullptr, ref.contains(a)) << "step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheVsReference,
                         ::testing::Values(Geometry{1, 2, 1},
                                           Geometry{2, 4, 2},
                                           Geometry{8, 2, 3},
                                           Geometry{16, 8, 4}),
                         geomName);

TEST(ProcessorCacheVsReference, LruMatches)
{
    ProcessorCache l1({4, 2, 10});
    RefLru ref(4, 2);
    Random rng(77);
    for (int step = 0; step < 3000; ++step) {
        Addr a = rng.below(24);
        if (rng.chance(0.5)) {
            l1.fill(a, a * 10);
            ref.insert(a);
        } else if (rng.chance(0.3)) {
            l1.purge(a);
            ref.remove(a);
        } else {
            std::uint64_t tok = 0;
            bool hit = l1.lookup(a, tok);
            ASSERT_EQ(hit, ref.contains(a)) << "step " << step;
            if (hit) {
                ASSERT_EQ(tok, a * 10) << "step " << step;
            }
            ref.touch(a);
        }
    }
}
