/** @file
 * Fail-stop degradation: kill a bus / node / memory module mid-run and
 * verify the ReconfigurationManager's full lifecycle — watchdog-fed
 * detection, quarantine, epoch cutover — with the coherence checker
 * clean in every epoch, graceful-retire zero-loss accounting, and
 * fixed-seed bit-identity (the PR 4/5 determinism contract).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "fault/reconfig.hh"
#include "fuzz/campaign.hh"
#include "proc/random_tester.hh"

using namespace mcube;

namespace
{

/** Fast-lifecycle knobs so tests converge in ~1M-tick scenarios. */
ReconfigParams
quickParams()
{
    ReconfigParams rp;
    rp.escalationThreshold = 2;
    rp.detectThreshold = 2;
    rp.drainTicks = 50'000;
    rp.detectTimeoutTicks = 1'500'000;
    rp.phantomGraceTicks = 150'000;
    return rp;
}

/** Everything a degraded-mode scenario produced. */
struct ScenarioResult
{
    bool finished = false;
    bool drained = false;
    std::uint64_t violations = 0;
    std::uint64_t readFailures = 0;
    std::uint64_t opsIssued = 0;
    std::uint64_t opsAborted = 0;
    std::uint64_t testerHash = 0;
    Tick endTick = 0;

    std::uint64_t kills = 0;
    std::uint64_t detections = 0;
    std::uint64_t timeoutDetections = 0;
    unsigned epoch = 0;
    std::uint64_t dataLoss = 0;
    std::uint64_t abortedTxns = 0;
    std::uint64_t phantomRepairs = 0;
    std::uint64_t quarantinedNodes = 0;
    std::vector<Tick> detectLatencies;
    std::vector<Tick> reconfigLatencies;
};

/** Run a tester workload under @p plan with the degradation machinery
 *  attached, mirroring fuzz::runOnce's wiring. */
ScenarioResult
runScenario(const FaultPlan &plan, unsigned n, unsigned ops_per_node,
            std::uint64_t seed, Tick max_ticks = 60'000'000)
{
    SystemParams p;
    p.n = n;
    p.seed = seed;
    p.ctrl.requestTimeoutTicks = 30'000;

    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, /*full_check_interval=*/64);
    ReconfigurationManager mgr(sys, plan, &checker, quickParams());
    mgr.regStats(sys.statistics());

    RandomTesterParams tp;
    tp.seed = seed + 17;
    tp.opsPerNode = ops_per_node;
    tp.numDataLines = 16;
    tp.numLockLines = 3;
    tp.pWrite = 0.4;
    tp.pTset = 0.1;
    tp.maxThink = 300;
    RandomTester tester(sys, checker, tp);
    tester.setAddrFilter([&mgr](NodeId n, Addr a) {
        return !mgr.requestRoutable(n, a);
    });
    tester.start();

    constexpr Tick slice = 1'000'000;
    while (sys.eventQueue().now() < max_ticks) {
        sys.run(slice);
        if (checker.violations() > 0 || tester.readFailures() > 0
            || tester.finished())
            break;
    }

    ScenarioResult r;
    r.finished = tester.finished();
    if (r.finished && checker.violations() == 0)
        r.drained = sys.drain(20'000'000);
    if (r.drained)
        checker.fullSweep(/*strict=*/true);

    r.violations = checker.violations();
    r.readFailures = tester.readFailures();
    r.opsIssued = tester.opsIssued();
    r.opsAborted = tester.opsAborted();
    r.testerHash = tester.resultHash();
    r.endTick = sys.eventQueue().now();
    r.kills = mgr.kills();
    r.detections = mgr.detections();
    r.timeoutDetections = mgr.timeoutDetections();
    r.epoch = mgr.epoch();
    r.dataLoss = mgr.dataLossLines();
    r.abortedTxns = mgr.abortedTxns();
    r.phantomRepairs = mgr.phantomRepairs();
    r.quarantinedNodes = mgr.quarantinedNodes();
    r.detectLatencies = mgr.detectLatencies();
    r.reconfigLatencies = mgr.reconfigureLatencies();

    if (checker.violations() > 0) {
        for (const auto &line : checker.report())
            ADD_FAILURE() << line;
    }
    for (const auto &line : tester.failures())
        ADD_FAILURE() << line;
    return r;
}

void
expectCleanLifecycle(const ScenarioResult &r, std::uint64_t kills)
{
    EXPECT_TRUE(r.finished) << "surviving agents must finish";
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(r.readFailures, 0u);
    EXPECT_EQ(r.kills, kills);
    EXPECT_EQ(r.detections, kills);
    EXPECT_EQ(static_cast<std::uint64_t>(r.epoch), kills);
    EXPECT_EQ(r.detectLatencies.size(), kills);
    EXPECT_EQ(r.reconfigLatencies.size(), kills);
}

} // namespace

// ---------------------------------------------------------------------
// planNeedsReconfig
// ---------------------------------------------------------------------

TEST(ReconfigPlan, OnlyFailStopPlansNeedAManager)
{
    EXPECT_FALSE(ReconfigurationManager::planNeedsReconfig(
        FaultPlan::dropRequests(0.01)));
    EXPECT_FALSE(ReconfigurationManager::planNeedsReconfig(
        FaultPlan::outages(0.001, 20'000)));
    EXPECT_TRUE(ReconfigurationManager::planNeedsReconfig(
        FaultPlan::failStopNode(3, 1'000'000)));
    EXPECT_TRUE(ReconfigurationManager::planNeedsReconfig(
        FaultPlan::failStopBus(0, 1, 1'000'000)));
    EXPECT_TRUE(ReconfigurationManager::planNeedsReconfig(
        FaultPlan::failStopMemory(2, 1'000'000)));

    // Mixed plans need one too: the transient specs ride the injector,
    // the fail-stop spec rides the manager.
    FaultPlan mixed = FaultPlan::delays(0.02, 2000);
    FaultPlan fs = FaultPlan::failStopNode(0, 500'000);
    mixed.specs.push_back(fs.specs[0]);
    EXPECT_TRUE(ReconfigurationManager::planNeedsReconfig(mixed));
}

// ---------------------------------------------------------------------
// Component kills
// ---------------------------------------------------------------------

TEST(Reconfig, NodeKillDetectsCutsOverAndFinishes)
{
    ScenarioResult r = runScenario(
        FaultPlan::failStopNode(/*node=*/4, /*at_tick=*/1'000'000),
        /*n=*/3, /*ops_per_node=*/1200, /*seed=*/11);
    expectCleanLifecycle(r, 1);
    EXPECT_EQ(r.quarantinedNodes, 1u);
    // Detection rides the surviving traffic's watchdog escalations,
    // which keep arriving long before the fallback deadline.
    EXPECT_EQ(r.timeoutDetections, 0u);
    EXPECT_LT(r.detectLatencies[0], quickParams().detectTimeoutTicks);
}

TEST(Reconfig, GracefulNodeRetireLosesNothing)
{
    ScenarioResult r = runScenario(
        FaultPlan::failStopNode(4, 1'000'000, /*graceful=*/true),
        3, 1200, 11);
    expectCleanLifecycle(r, 1);
    EXPECT_EQ(r.dataLoss, 0u)
        << "graceful retire scrubs every dirty line before the kill";
}

TEST(Reconfig, RowBusKillRetiresTheWholeRow)
{
    ScenarioResult r = runScenario(
        FaultPlan::failStopBus(/*dim=*/0, /*index=*/2, 1'000'000),
        3, 1200, 23);
    expectCleanLifecycle(r, 1);
    EXPECT_EQ(r.quarantinedNodes, 3u);
}

TEST(Reconfig, MemoryKillQuarantinesItsColumn)
{
    ScenarioResult r = runScenario(
        FaultPlan::failStopMemory(/*column=*/1, 1'000'000),
        3, 1200, 37);
    expectCleanLifecycle(r, 1);
    // No controller dies with a memory module; the column's address
    // range does.
    EXPECT_EQ(r.quarantinedNodes, 0u);
}

TEST(Reconfig, QuietSystemDetectsByTimeout)
{
    // No workload at all: nothing escalates, so only the fallback
    // deadline can detect the kill — and must.
    SystemParams p;
    p.n = 2;
    p.ctrl.requestTimeoutTicks = 30'000;
    MulticubeSystem sys(p);
    ReconfigurationManager mgr(sys, FaultPlan::failStopNode(1, 100'000),
                               nullptr, quickParams());
    sys.run(100'000 + quickParams().detectTimeoutTicks
            + quickParams().drainTicks + 1000);
    EXPECT_EQ(mgr.kills(), 1u);
    EXPECT_EQ(mgr.detections(), 1u);
    EXPECT_EQ(mgr.timeoutDetections(), 1u);
    EXPECT_EQ(mgr.epoch(), 1u);
    EXPECT_TRUE(mgr.nodeRetired(1));
    EXPECT_FALSE(mgr.nodeRetired(0));
    EXPECT_FALSE(sys.gridMap().reachable(1));
    EXPECT_TRUE(sys.gridMap().reachable(0));
}

// ---------------------------------------------------------------------
// The acceptance scenario: three kills in one campaign
// ---------------------------------------------------------------------

TEST(Reconfig, TripleKillCampaignStaysCoherent)
{
    // One row bus, one node and one memory module die at staggered
    // ticks; the checker must stay clean in every epoch and the
    // surviving grid must finish the workload.
    FaultPlan plan = FaultPlan::failStopBus(0, 2, 900'000);
    plan.specs.push_back(
        FaultPlan::failStopNode(4, 1'600'000).specs[0]);
    plan.specs.push_back(
        FaultPlan::failStopMemory(0, 2'300'000).specs[0]);

    ScenarioResult r = runScenario(plan, 3, 1500, 71, 120'000'000);
    expectCleanLifecycle(r, 3);
    EXPECT_EQ(r.quarantinedNodes, 4u);  // row 2 (3 nodes) + node 4
}

TEST(Reconfig, TripleKillGracefulLosesNothing)
{
    FaultPlan plan = FaultPlan::failStopBus(0, 2, 900'000, true);
    plan.specs.push_back(
        FaultPlan::failStopNode(4, 1'600'000, true).specs[0]);
    plan.specs.push_back(
        FaultPlan::failStopMemory(0, 2'300'000, true).specs[0]);

    ScenarioResult r = runScenario(plan, 3, 1500, 71, 120'000'000);
    expectCleanLifecycle(r, 3);
    EXPECT_EQ(r.dataLoss, 0u);
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

TEST(Reconfig, FixedSeedRunsAreBitIdentical)
{
    FaultPlan plan = FaultPlan::failStopBus(1, 0, 800'000);
    plan.specs.push_back(
        FaultPlan::failStopNode(5, 1'400'000).specs[0]);

    ScenarioResult a = runScenario(plan, 3, 1000, 99);
    ScenarioResult b = runScenario(plan, 3, 1000, 99);

    EXPECT_EQ(a.testerHash, b.testerHash);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.opsIssued, b.opsIssued);
    EXPECT_EQ(a.opsAborted, b.opsAborted);
    EXPECT_EQ(a.dataLoss, b.dataLoss);
    EXPECT_EQ(a.abortedTxns, b.abortedTxns);
    EXPECT_EQ(a.phantomRepairs, b.phantomRepairs);
    EXPECT_EQ(a.detectLatencies, b.detectLatencies);
    EXPECT_EQ(a.reconfigLatencies, b.reconfigLatencies);
}

TEST(Reconfig, FuzzRunOnceHashCoversTheLifecycle)
{
    // The campaign-level contract: a fail-stop config's result hash is
    // reproducible, and differs from the same config without the kill
    // (the lifecycle is folded into the fingerprint).
    fuzz::RunConfig cfg;
    cfg.n = 3;
    cfg.sysSeed = 5;
    cfg.requestTimeoutTicks = 40'000;
    cfg.tester.seed = 6;
    cfg.tester.opsPerNode = 120;
    cfg.tester.pSyncOfLocks = 0.0;
    cfg.plan = FaultPlan::failStopNode(2, 600'000);

    fuzz::RunResult r1 = fuzz::runOnce(cfg);
    fuzz::RunResult r2 = fuzz::runOnce(cfg);
    EXPECT_EQ(r1.hash, r2.hash);
    EXPECT_EQ(r1.failure, fuzz::FailureKind::None)
        << "report: "
        << (r1.report.empty() ? "(none)" : r1.report.front());

    fuzz::RunConfig no_kill = cfg;
    no_kill.plan = FaultPlan{};
    no_kill.plan.seed = cfg.plan.seed;
    fuzz::RunResult r3 = fuzz::runOnce(no_kill);
    EXPECT_NE(r1.hash, r3.hash);
}
