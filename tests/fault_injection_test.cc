/** @file
 * Fault-injection campaign: every injectable fault kind, swept over
 * grid sizes and workloads, with the coherence checker attached and
 * the controller watchdog providing recovery. Also covers the
 * eligibility rules, deterministic schedules, the zero-fault
 * transparency guarantee and the ProgressMonitor's stall diagnosis.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "core/checker.hh"
#include "core/system.hh"
#include "fault/fault_injector.hh"
#include "fault/progress_monitor.hh"
#include "proc/random_tester.hh"

using namespace mcube;

// ---------------------------------------------------------------------
// Eligibility rules
// ---------------------------------------------------------------------

namespace
{

BusOp
mk(TxnType txn, std::uint16_t params, bool has_data = false)
{
    BusOp op;
    op.txn = txn;
    op.params = params;
    op.addr = 7;
    op.origin = 1;
    op.hasData = has_data;
    return op;
}

} // namespace

TEST(FaultEligibility, RequestsAreDroppable)
{
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::DropRequest, mk(TxnType::Read, op::Request)));
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::DropRequest,
        mk(TxnType::ReadMod, op::Request | op::Memory)));
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::DropRequest,
        mk(TxnType::Sync, op::Request | op::Direct)));
    // Non-request ops (table maintenance, writebacks, purges) are the
    // protocol's state-change machinery; dropping them is not a
    // recoverable fault model.
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::DropRequest, mk(TxnType::WriteBack, op::Remove)));
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::DropRequest,
        mk(TxnType::WriteBack, op::Update | op::Memory, true)));
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::DropRequest, mk(TxnType::ReadMod, op::Insert)));
}

TEST(FaultEligibility, OnlyRecoverableRepliesAreDroppable)
{
    // Failure notices, SYNC queue acks and memory READ data (memory
    // stays valid) may vanish: a retry can re-create them.
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::DropReply, mk(TxnType::Tset, op::Reply | op::Fail)));
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::DropReply, mk(TxnType::Sync, op::Reply | op::Ack)));
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::DropReply,
        mk(TxnType::Read, op::Reply | op::NoPurge, true)));

    // Ownership transfers are the only copy of the line.
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::DropReply,
        mk(TxnType::ReadMod, op::Reply | op::Purge, true)));
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::DropReply,
        mk(TxnType::Allocate, op::Reply | op::Purge | op::Ack)));
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::DropReply,
        mk(TxnType::Sync, op::Reply | op::Insert, true)));
    // Owner-supplied READ data updates memory in flight; dropping it
    // would lose the writeback leg.
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::DropReply,
        mk(TxnType::Read, op::Reply | op::Update, true)));
}

TEST(FaultEligibility, DelayTakesAnything)
{
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::Delay, mk(TxnType::Read, op::Request)));
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::Delay,
        mk(TxnType::ReadMod, op::Reply | op::Purge, true)));
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::Delay, mk(TxnType::WriteBack, op::Remove)));
}

TEST(FaultEligibility, DuplicateSkipsAllocate)
{
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::Duplicate, mk(TxnType::ReadMod, op::Request)));
    EXPECT_TRUE(FaultInjector::eligible(
        FaultKind::Duplicate, mk(TxnType::Tset, op::Request)));
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::Duplicate, mk(TxnType::Allocate, op::Request)));
    EXPECT_FALSE(FaultInjector::eligible(
        FaultKind::Duplicate,
        mk(TxnType::ReadMod, op::Reply | op::Purge, true)));
}

// ---------------------------------------------------------------------
// Fault campaign matrix
// ---------------------------------------------------------------------

namespace
{

struct Campaign
{
    FaultKind kind;
    double prob;
    unsigned n;
    double tset;        //!< lock-op fraction of the workload
    double syncOfLocks; //!< SYNC share of the lock ops
    std::uint64_t seed;
};

std::string
campaignName(const ::testing::TestParamInfo<Campaign> &info)
{
    const Campaign &c = info.param;
    std::string s = toString(c.kind);
    s += "_n" + std::to_string(c.n) + "_s" + std::to_string(c.seed);
    if (c.tset > 0)
        s += "_locks";
    if (c.syncOfLocks > 0)
        s += "_sync";
    return s;
}

FaultPlan
planFor(FaultKind kind, double prob, std::uint64_t seed)
{
    switch (kind) {
      case FaultKind::DropRequest:
        return FaultPlan::dropRequests(prob, seed);
      case FaultKind::DropReply:
        return FaultPlan::dropReplies(prob, seed);
      case FaultKind::Delay:
        return FaultPlan::delays(prob, 2000, seed);
      case FaultKind::Duplicate:
        return FaultPlan::duplicates(prob, seed);
      case FaultKind::Outage:
        return FaultPlan::outages(prob, 20'000, seed);
      case FaultKind::FailStopBus:
      case FaultKind::FailStopNode:
      case FaultKind::FailStopMemory:
        break;  // time-triggered, not probabilistic; no campaign here
    }
    return {};
}

} // namespace

class FaultCampaign : public ::testing::TestWithParam<Campaign>
{
};

TEST_P(FaultCampaign, TransactionsCompleteCoherently)
{
    const Campaign &c = GetParam();

    SystemParams p;
    p.n = c.n;
    p.seed = c.seed;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {64, 4};
    // Recovery machinery: without the watchdog a dropped request
    // hangs its node forever.
    p.ctrl.requestTimeoutTicks = 500'000;

    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);
    FaultInjector injector(sys, planFor(c.kind, c.prob, c.seed * 3 + 1));
    injector.regStats(sys.statistics());

    ProgressMonitor monitor(sys,
                            {/*checkIntervalTicks=*/5'000'000,
                             /*stallChecks=*/8});
    monitor.start();

    RandomTesterParams tp;
    tp.opsPerNode = 80;
    tp.numDataLines = 16;
    tp.pTset = c.tset;
    tp.pSyncOfLocks = c.syncOfLocks;
    tp.seed = c.seed * 77 + 5;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(3'000'000'000ull);
    EXPECT_TRUE(sys.drain(1'000'000'000ull));

    EXPECT_TRUE(tester.finished())
        << monitor.report() << sys.dumpPendingState();
    EXPECT_FALSE(monitor.stalled()) << monitor.report();
    EXPECT_EQ(tester.readFailures(), 0u);

    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);

    // The plan must actually have exercised its fault kind.
    EXPECT_GT(injector.totalInjections(), 0u);

    // Dropped ops only recover through the watchdog; prove the
    // recovery path fired (and measured its latency).
    if (c.kind == FaultKind::DropRequest
        || c.kind == FaultKind::DropReply) {
        std::uint64_t reissues = 0, recoveries = 0;
        for (NodeId id = 0; id < sys.numNodes(); ++id) {
            reissues += sys.node(id).watchdogReissues();
            recoveries +=
                sys.node(id).watchdogRecoveryLatency().count();
        }
        EXPECT_GT(reissues, 0u);
        EXPECT_GT(recoveries, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultCampaign,
    ::testing::Values(
        // Each single fault kind at 5% on the acceptance 4x4 grid,
        // plain data workload.
        Campaign{FaultKind::DropRequest, 0.05, 4, 0.0, 0.0, 11},
        Campaign{FaultKind::DropReply, 0.05, 4, 0.0, 0.0, 12},
        Campaign{FaultKind::Delay, 0.05, 4, 0.0, 0.0, 13},
        Campaign{FaultKind::Duplicate, 0.05, 4, 0.0, 0.0, 14},
        // Lock-heavy workloads (test-and-set, then SYNC queue locks).
        Campaign{FaultKind::DropRequest, 0.05, 4, 0.2, 0.0, 21},
        Campaign{FaultKind::DropReply, 0.05, 4, 0.2, 0.5, 22},
        Campaign{FaultKind::Delay, 0.05, 4, 0.2, 0.5, 23},
        Campaign{FaultKind::Duplicate, 0.03, 4, 0.2, 0.0, 24},
        // Small grid: every node shares one row/column pair.
        Campaign{FaultKind::DropRequest, 0.05, 2, 0.2, 0.0, 31},
        Campaign{FaultKind::Duplicate, 0.05, 2, 0.0, 0.0, 32},
        // Bus outages: rare, but each one takes a whole bus down for
        // 20k ticks, swallowing every retry inside the window.
        Campaign{FaultKind::Outage, 0.002, 4, 0.0, 0.0, 41},
        Campaign{FaultKind::Outage, 0.005, 2, 0.2, 0.0, 42}),
    campaignName);

// ---------------------------------------------------------------------
// Zero-fault transparency
// ---------------------------------------------------------------------

namespace
{

std::map<std::string, double>
runWorkload(bool with_fault_layer)
{
    SystemParams p;
    p.n = 4;
    p.seed = 99;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {64, 4};
    if (with_fault_layer) {
        // Enabled but never firing: far above any latency this
        // workload can produce, so the watchdog never draws from the
        // RNG and never perturbs an op.
        p.ctrl.requestTimeoutTicks = 2'000'000'000;
    }

    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ProgressMonitor> monitor;
    if (with_fault_layer) {
        FaultPlan plan;
        plan.specs.push_back({});  // one spec, prob 0: never fires
        injector = std::make_unique<FaultInjector>(sys, plan);
        monitor = std::make_unique<ProgressMonitor>(sys);
        monitor->start();
    }

    RandomTesterParams tp;
    tp.opsPerNode = 60;
    tp.pTset = 0.15;
    tp.seed = 4321;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(2'000'000'000ull);
    EXPECT_TRUE(tester.finished());
    sys.drain();
    EXPECT_EQ(checker.violations(), 0u);

    std::map<std::string, double> flat;
    sys.statistics().flatten(flat);
    return flat;
}

} // namespace

TEST(FaultTransparency, ZeroFaultsIsBitIdentical)
{
    auto plain = runWorkload(false);
    auto faulty = runWorkload(true);

    // Every op count and latency stat must match exactly: the fault
    // layer (hook consulted on every enqueue, idle watchdog armed on
    // every miss, progress monitor sampling) is observationally
    // inert when no fault fires.
    for (const auto &[name, value] : plain) {
        auto it = faulty.find(name);
        ASSERT_NE(it, faulty.end()) << name;
        EXPECT_EQ(it->second, value) << name;
    }
}

// ---------------------------------------------------------------------
// Deterministic schedules and scoping
// ---------------------------------------------------------------------

TEST(FaultSchedule, AtMatchesFiresExactlyAndReproducibly)
{
    auto run = [](std::vector<std::uint64_t> at) {
        SystemParams p;
        p.n = 2;
        p.seed = 7;
        p.ctrl.requestTimeoutTicks = 300'000;
        MulticubeSystem sys(p);
        CoherenceChecker checker(sys, 64);

        FaultPlan plan;
        FaultSpec spec;
        spec.kind = FaultKind::DropRequest;
        spec.atMatches = std::move(at);
        plan.specs.push_back(spec);
        FaultInjector injector(sys, plan);

        RandomTesterParams tp;
        tp.opsPerNode = 40;
        tp.seed = 55;
        RandomTester tester(sys, checker, tp);
        tester.start();
        sys.eventQueue().runUntil(2'000'000'000ull);
        sys.drain();
        EXPECT_TRUE(tester.finished());
        EXPECT_EQ(checker.violations(), 0u);
        return std::pair<std::uint64_t, std::uint64_t>(
            injector.requestsDropped(), injector.opsSeen());
    };

    auto [drops1, seen1] = run({3, 10, 11, 40});
    EXPECT_EQ(drops1, 4u);

    // Same schedule, same run: every derived number identical.
    auto [drops2, seen2] = run({3, 10, 11, 40});
    EXPECT_EQ(drops2, drops1);
    EXPECT_EQ(seen2, seen1);
}

TEST(FaultScope, SpecFiltersLimitWhereFaultsLand)
{
    SystemParams p;
    p.n = 2;
    p.seed = 3;
    p.ctrl.requestTimeoutTicks = 300'000;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    // Only READ requests, only on row 0, capped at 2 injections.
    FaultPlan plan;
    plan.seed = 17;
    FaultSpec spec;
    spec.kind = FaultKind::DropRequest;
    spec.prob = 1.0;
    spec.busDim = 0;
    spec.busIndex = 0;
    spec.txn = TxnType::Read;
    spec.maxInjections = 2;
    plan.specs.push_back(spec);
    FaultInjector injector(sys, plan);

    RandomTesterParams tp;
    tp.opsPerNode = 40;
    tp.seed = 5;
    RandomTester tester(sys, checker, tp);
    tester.start();
    sys.eventQueue().runUntil(2'000'000'000ull);
    sys.drain();

    EXPECT_TRUE(tester.finished());
    EXPECT_EQ(checker.violations(), 0u);
    EXPECT_EQ(injector.requestsDropped(), 2u);
    EXPECT_EQ(injector.totalInjections(), 2u);
}

// ---------------------------------------------------------------------
// Sustained outage vs. the watchdog
// ---------------------------------------------------------------------

// One long outage window (6x the watchdog timeout): every reissue
// inside the window is swallowed too, so recovery requires the
// backoff to keep growing until the bus answers again. The run must
// come back coherent (no livelock), the backoff must demonstrably
// have grown (a recovery took several timeout periods), and the
// recovery-latency histogram must have recorded it.
TEST(FaultOutage, WatchdogRecoversFromSustainedOutage)
{
    constexpr Tick timeout = 100'000;
    constexpr Tick window = 600'000;

    SystemParams p;
    p.n = 2;
    p.seed = 51;
    p.ctrl.requestTimeoutTicks = timeout;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::Outage;
    spec.atMatches = {0};  // first op anywhere downs its bus
    spec.outageTicks = window;
    plan.specs.push_back(spec);
    FaultInjector injector(sys, plan);
    injector.regStats(sys.statistics());

    RandomTesterParams tp;
    tp.opsPerNode = 40;
    tp.seed = 77;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(2'000'000'000ull);
    EXPECT_TRUE(sys.drain(1'000'000'000ull));

    // No livelock: everything completed and stayed coherent.
    EXPECT_TRUE(tester.finished()) << sys.dumpPendingState();
    EXPECT_EQ(tester.readFailures(), 0u);
    checker.fullSweep();
    EXPECT_EQ(checker.violations(), 0u);

    // The outage actually happened and swallowed traffic.
    EXPECT_EQ(injector.outagesOpened(), 1u);
    EXPECT_GT(injector.outageDrops(), 0u);

    std::uint64_t reissues = 0, histSamples = 0;
    double maxRecovery = 0.0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        reissues += sys.node(id).watchdogReissues();
        histSamples += sys.node(id).watchdogRecoveryHist().count();
        maxRecovery = std::max(
            maxRecovery, sys.node(id).watchdogRecoveryLatency().max());
    }
    EXPECT_GT(reissues, 0u);
    // Backoff growth: at least one transaction needed multiple
    // (doubling) waiting periods before its reissue got through.
    EXPECT_GE(maxRecovery, 3.0 * timeout);
    // The recovery-latency histogram recorded the episode.
    EXPECT_GT(histSamples, 0u);
}

// An outage must only discard ops whose loss the protocol recovers
// from; everything else is deferred past the window, never lost.
TEST(FaultOutage, UnrecoverableOpsAreDeferredNotDropped)
{
    SystemParams p;
    p.n = 2;
    p.seed = 61;
    p.ctrl.requestTimeoutTicks = 200'000;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    FaultPlan plan;
    plan.seed = 5;
    FaultSpec spec;
    spec.kind = FaultKind::Outage;
    spec.prob = 0.01;
    spec.outageTicks = 30'000;
    plan.specs.push_back(spec);
    FaultInjector injector(sys, plan);

    RandomTesterParams tp;
    tp.opsPerNode = 60;
    tp.pWrite = 0.5;  // ownership transfers to defer
    tp.seed = 19;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(3'000'000'000ull);
    EXPECT_TRUE(sys.drain(1'000'000'000ull));

    EXPECT_TRUE(tester.finished()) << sys.dumpPendingState();
    checker.fullSweep();
    EXPECT_EQ(checker.violations(), 0u);
    EXPECT_GT(injector.outagesOpened(), 0u);
    // Both window behaviours observed: safe ops discarded,
    // unrecoverable ones pushed past the window.
    EXPECT_GT(injector.outageDrops(), 0u);
    EXPECT_GT(injector.outageDeferrals(), 0u);
    EXPECT_EQ(injector.totalInjections(), injector.outagesOpened());
}

// ---------------------------------------------------------------------
// ProgressMonitor stall diagnosis
// ---------------------------------------------------------------------

TEST(ProgressMonitorTest, DiagnosesDeadlockWhenRecoveryIsDisabled)
{
    SystemParams p;
    p.n = 2;
    p.seed = 13;
    // No watchdog: a dropped request means that node hangs forever —
    // exactly the seed behaviour the monitor exists to diagnose.
    p.ctrl.requestTimeoutTicks = 0;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    FaultPlan plan = FaultPlan::dropRequests(1.0, 9);
    plan.specs[0].maxInjections = 4;
    FaultInjector injector(sys, plan);

    std::string cb_report;
    ProgressMonitor monitor(
        sys, {/*checkIntervalTicks=*/100'000, /*stallChecks=*/3},
        [&](const std::string &r) { cb_report = r; });
    monitor.start();

    RandomTesterParams tp;
    tp.opsPerNode = 20;
    tp.seed = 2;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(50'000'000ull);

    EXPECT_GT(injector.requestsDropped(), 0u);
    EXPECT_FALSE(tester.finished());
    EXPECT_TRUE(monitor.stalled());
    EXPECT_FALSE(cb_report.empty());
    // The diagnosis names the stuck transactions and the system state.
    EXPECT_NE(monitor.report().find("pending state"), std::string::npos);
    EXPECT_NE(monitor.report().find("requested"), std::string::npos);
}

TEST(ProgressMonitorTest, StaysQuietOnAHealthyRun)
{
    SystemParams p;
    p.n = 2;
    p.seed = 21;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    ProgressMonitor monitor(
        sys, {/*checkIntervalTicks=*/100'000, /*stallChecks=*/3});
    monitor.start();

    RandomTesterParams tp;
    tp.opsPerNode = 30;
    tp.seed = 8;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(2'000'000'000ull);
    EXPECT_TRUE(sys.drain());

    EXPECT_TRUE(tester.finished());
    EXPECT_FALSE(monitor.stalled());
    EXPECT_GT(monitor.checksRun(), 0u);
    EXPECT_EQ(checker.violations(), 0u);
}
