/** @file
 * Supervisor + journal unit tests: the exit-triage table, forked
 * workers for every triage class (clean, item-failed, crash-signal,
 * timeout, stalled-heartbeat, OOM under an address-space cap), the
 * worker pool with a drain predicate, and WorkJournal durability —
 * resume loading, campaign-key mismatch refusal, and torn-trailing-
 * line neutralization.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#ifdef __unix__
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "run/exit_triage.hh"
#include "run/supervisor.hh"
#include "run/work_journal.hh"
#include "sim/json.hh"

using namespace mcube;
using namespace mcube::run;

namespace
{

std::string
tempPath(const std::string &stem)
{
    return ::testing::TempDir() + stem + "_"
         + std::to_string(::getpid());
}

} // namespace

// ---------------------------------------------------------------------
// Triage table
// ---------------------------------------------------------------------

TEST(ExitTriage, StringsRoundTrip)
{
    for (Triage t : {Triage::Clean, Triage::ItemFailed, Triage::BadInput,
                     Triage::Oom, Triage::Fatal, Triage::CrashSignal,
                     Triage::Timeout, Triage::Stalled}) {
        Triage back = Triage::Clean;
        ASSERT_TRUE(triageFromString(toString(t), back)) << toString(t);
        EXPECT_EQ(back, t);
    }
    Triage t;
    EXPECT_FALSE(triageFromString("nonsense", t));
}

TEST(ExitTriage, FailureAndAbnormalClasses)
{
    EXPECT_FALSE(isFailure(Triage::Clean));
    EXPECT_TRUE(isFailure(Triage::ItemFailed));
    EXPECT_TRUE(isFailure(Triage::CrashSignal));

    EXPECT_FALSE(isAbnormal(Triage::Clean));
    EXPECT_FALSE(isAbnormal(Triage::ItemFailed));
    EXPECT_FALSE(isAbnormal(Triage::BadInput));
    EXPECT_TRUE(isAbnormal(Triage::Oom));
    EXPECT_TRUE(isAbnormal(Triage::Fatal));
    EXPECT_TRUE(isAbnormal(Triage::CrashSignal));
    EXPECT_TRUE(isAbnormal(Triage::Timeout));
    EXPECT_TRUE(isAbnormal(Triage::Stalled));
}

#ifdef __unix__
TEST(ExitTriage, WaitStatusTable)
{
    auto exited = [](int code) { return code << 8; };
    auto signaled = [](int sig) { return sig; };

    EXPECT_EQ(triageWaitStatus(exited(0), SupervisorKill::None),
              Triage::Clean);
    EXPECT_EQ(triageWaitStatus(exited(1), SupervisorKill::None),
              Triage::ItemFailed);
    EXPECT_EQ(triageWaitStatus(exited(2), SupervisorKill::None),
              Triage::BadInput);
    EXPECT_EQ(triageWaitStatus(exited(kOomExit), SupervisorKill::None),
              Triage::Oom);
    EXPECT_EQ(triageWaitStatus(exited(kFatalExit), SupervisorKill::None),
              Triage::Fatal);
    EXPECT_EQ(triageWaitStatus(signaled(SIGSEGV), SupervisorKill::None),
              Triage::CrashSignal);
    // Unsolicited SIGKILL is the kernel OOM killer's signature.
    EXPECT_EQ(triageWaitStatus(signaled(SIGKILL), SupervisorKill::None),
              Triage::Oom);
    // A kill we sent ourselves outranks whatever the wait status says.
    EXPECT_EQ(triageWaitStatus(signaled(SIGKILL),
                               SupervisorKill::Deadline),
              Triage::Timeout);
    EXPECT_EQ(triageWaitStatus(signaled(SIGKILL),
                               SupervisorKill::Heartbeat),
              Triage::Stalled);
}
#endif

// ---------------------------------------------------------------------
// Supervised workers, one per triage class
// ---------------------------------------------------------------------

TEST(Supervisor, CleanWorkerReturnsResult)
{
    if (!Supervisor::supported())
        GTEST_SKIP() << "no fork on this platform";
    Supervisor sup;
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &hb, std::string &res) {
            hb.beat();
            res = "payload-42";
            return 0;
        });
    EXPECT_EQ(out.triage, Triage::Clean);
    EXPECT_EQ(out.exitCode, 0);
    EXPECT_EQ(out.result, "payload-42");
    EXPECT_GE(out.heartbeats, 1u);
}

TEST(Supervisor, ItemFailedKeepsResult)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    Supervisor sup;
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &, std::string &res) {
            res = "failing-item";
            return 1;
        });
    EXPECT_EQ(out.triage, Triage::ItemFailed);
    EXPECT_EQ(out.result, "failing-item");
}

TEST(Supervisor, CrashingWorkerTriagesAsCrashSignal)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    Supervisor sup;
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &, std::string &) -> int {
            std::abort();
        });
    EXPECT_EQ(out.triage, Triage::CrashSignal);
    EXPECT_EQ(out.termSignal, SIGABRT);
}

TEST(Supervisor, ThrowingWorkerTriagesAsFatal)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    Supervisor sup;
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &, std::string &) -> int {
            throw std::runtime_error("boom");
        });
    EXPECT_EQ(out.triage, Triage::Fatal);
    EXPECT_EQ(out.exitCode, kFatalExit);
}

TEST(Supervisor, DeadlineKillTriagesAsTimeout)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    WorkerLimits lim;
    lim.wallSeconds = 0.3;
    Supervisor sup(lim);
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &hb, std::string &) {
            // Beating does not save a worker from its wall deadline.
            for (;;) {
                hb.beat();
                ::usleep(50'000);
            }
            return 0;
        });
    EXPECT_EQ(out.triage, Triage::Timeout);
    EXPECT_LT(out.wallSeconds, 5.0);
}

TEST(Supervisor, SilentWorkerTriagesAsStalled)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    WorkerLimits lim;
    lim.wallSeconds = 30.0;       // generous: heartbeat must fire first
    lim.heartbeatSeconds = 0.3;
    Supervisor sup(lim);
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &, std::string &) {
            ::usleep(10'000'000);  // 10 s of silence
            return 0;
        });
    EXPECT_EQ(out.triage, Triage::Stalled);
    EXPECT_LT(out.wallSeconds, 5.0);
}

TEST(Supervisor, SlowButBeatingWorkerSurvives)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    WorkerLimits lim;
    lim.heartbeatSeconds = 0.4;
    Supervisor sup(lim);
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &hb, std::string &res) {
            // Runs 1 s total — far past the 0.4 s silence budget —
            // but each beat resets the window: slow != stalled.
            for (int i = 0; i < 10; ++i) {
                ::usleep(100'000);
                hb.beat();
            }
            res = "slow-ok";
            return 0;
        });
    EXPECT_EQ(out.triage, Triage::Clean);
    EXPECT_EQ(out.result, "slow-ok");
    EXPECT_GE(out.heartbeats, 5u);
}

TEST(Supervisor, AllocationPastRssCapTriagesAsOom)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    WorkerLimits lim;
    lim.rssBytes = 256ull << 20;
    Supervisor sup(lim);
    WorkerOutcome out = sup.runOne(
        [](const Heartbeat &, std::string &) {
            std::vector<char> hog(2ull << 30, 'x');  // 2 GiB
            return hog.empty() ? 1 : 0;
        });
    EXPECT_EQ(out.triage, Triage::Oom);
    EXPECT_EQ(out.exitCode, kOomExit);
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

TEST(Supervisor, PoolRunsEveryItemConcurrently)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    Supervisor sup;
    std::vector<std::string> results(8);
    std::set<std::size_t> seen;
    sup.runPool(
        8, 4,
        [](std::size_t i) -> Supervisor::ChildFn {
            return [i](const Heartbeat &, std::string &res) {
                res = "item-" + std::to_string(i);
                return 0;
            };
        },
        [&](std::size_t i, WorkerOutcome &&out) {
            ASSERT_EQ(out.triage, Triage::Clean);
            results[i] = out.result;
            seen.insert(i);
        });
    EXPECT_EQ(seen.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(results[i], "item-" + std::to_string(i));
}

TEST(Supervisor, PoolStopPredicateDrainsWithoutDispatching)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    Supervisor sup;
    unsigned completions = 0;
    sup.runPool(
        100, 2,
        [](std::size_t i) -> Supervisor::ChildFn {
            return [i](const Heartbeat &, std::string &res) {
                res = std::to_string(i);
                return 0;
            };
        },
        [&](std::size_t, WorkerOutcome &&) { ++completions; },
        [] { return true; });  // stop before anything dispatches
    EXPECT_EQ(completions, 0u);
}

TEST(Supervisor, PoolIsolatesOneCrashFromTheRest)
{
    if (!Supervisor::supported())
        GTEST_SKIP();
    Supervisor sup;
    unsigned clean = 0, crashed = 0;
    sup.runPool(
        6, 3,
        [](std::size_t i) -> Supervisor::ChildFn {
            return [i](const Heartbeat &, std::string &res) -> int {
                if (i == 3)
                    __builtin_trap();
                res = "ok";
                return 0;
            };
        },
        [&](std::size_t i, WorkerOutcome &&out) {
            if (i == 3) {
                EXPECT_EQ(out.triage, Triage::CrashSignal);
                ++crashed;
            } else {
                EXPECT_EQ(out.triage, Triage::Clean);
                ++clean;
            }
        });
    EXPECT_EQ(clean, 5u);
    EXPECT_EQ(crashed, 1u);
}

// ---------------------------------------------------------------------
// WorkJournal
// ---------------------------------------------------------------------

TEST(WorkJournal, RecordFinishReload)
{
    const std::string path = tempPath("journal_basic");
    std::remove(path.c_str());
    const std::uint64_t key = WorkJournal::keyOf("campaign-A");

    {
        WorkJournal j;
        std::string err;
        ASSERT_TRUE(j.open(path, key, Json::object(), &err)) << err;
        EXPECT_EQ(j.loaded(), 0u);
        for (int i = 0; i < 3; ++i) {
            Json rec = Json::object();
            rec.set("value", std::uint64_t(i * 10));
            ASSERT_TRUE(j.record("item_" + std::to_string(i), rec));
        }
        j.finish();
    }

    WorkJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path, key, Json::object(), &err)) << err;
    EXPECT_EQ(j.loaded(), 3u);
    EXPECT_TRUE(j.has("item_1"));
    EXPECT_FALSE(j.has("item_9"));
    const Json *rec = j.find("item_2");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->u64("value", 0), 20u);
    std::remove(path.c_str());
}

TEST(WorkJournal, RefusesKeyMismatch)
{
    const std::string path = tempPath("journal_key");
    std::remove(path.c_str());
    {
        WorkJournal j;
        ASSERT_TRUE(j.open(path, WorkJournal::keyOf("campaign-A"),
                           Json::object()));
        j.finish();
    }
    WorkJournal j;
    std::string err;
    EXPECT_FALSE(j.open(path, WorkJournal::keyOf("campaign-B"),
                        Json::object(), &err));
    EXPECT_NE(err.find("key mismatch"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(WorkJournal, TornTrailingLineIsNeutralized)
{
    const std::string path = tempPath("journal_torn");
    std::remove(path.c_str());
    const std::uint64_t key = WorkJournal::keyOf("campaign-T");
    {
        WorkJournal j;
        ASSERT_TRUE(j.open(path, key, Json::object()));
        Json rec = Json::object();
        rec.set("v", 1u);
        ASSERT_TRUE(j.record("good", rec));
        j.abandon();  // crash: no footer
    }
    {
        // Simulate a power cut mid-append: half a line, no newline.
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"item\":\"torn\",\"record\":{\"v\"";
    }
    {
        WorkJournal j;
        std::string err;
        ASSERT_TRUE(j.open(path, key, Json::object(), &err)) << err;
        EXPECT_EQ(j.loaded(), 1u);  // torn line skipped
        EXPECT_TRUE(j.has("good"));
        EXPECT_FALSE(j.has("torn"));
        Json rec = Json::object();
        rec.set("v", 2u);
        ASSERT_TRUE(j.record("after", rec));
        j.abandon();
    }
    // The post-torn append must load cleanly too.
    WorkJournal j;
    ASSERT_TRUE(j.open(path, key, Json::object()));
    EXPECT_EQ(j.loaded(), 2u);
    EXPECT_TRUE(j.has("after"));
    std::remove(path.c_str());
}

TEST(WorkJournal, KeyOfSeparatesConfigs)
{
    EXPECT_NE(WorkJournal::keyOf("a"), WorkJournal::keyOf("b"));
    EXPECT_NE(WorkJournal::keyOf("seed=1"), WorkJournal::keyOf("seed=2"));
    EXPECT_EQ(WorkJournal::keyOf("same"), WorkJournal::keyOf("same"));
}
