/** @file Unit tests for the write-through processor (L1) cache. */

#include <gtest/gtest.h>

#include "cache/processor_cache.hh"

using namespace mcube;

TEST(ProcessorCache, MissOnEmpty)
{
    ProcessorCache c({8, 2, 10});
    std::uint64_t t = 0;
    EXPECT_FALSE(c.lookup(3, t));
    EXPECT_EQ(c.misses(), 1u);
}

TEST(ProcessorCache, FillThenHit)
{
    ProcessorCache c({8, 2, 10});
    c.fill(3, 77);
    std::uint64_t t = 0;
    EXPECT_TRUE(c.lookup(3, t));
    EXPECT_EQ(t, 77u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(ProcessorCache, WriteThroughUpdatesPresentLine)
{
    ProcessorCache c({8, 2, 10});
    c.fill(3, 1);
    c.writeThrough(3, 2);
    std::uint64_t t = 0;
    EXPECT_TRUE(c.lookup(3, t));
    EXPECT_EQ(t, 2u);
}

TEST(ProcessorCache, WriteThroughIgnoresAbsentLine)
{
    ProcessorCache c({8, 2, 10});
    c.writeThrough(3, 2);
    std::uint64_t t = 0;
    EXPECT_FALSE(c.lookup(3, t));
}

TEST(ProcessorCache, PurgeEnforcesInclusion)
{
    ProcessorCache c({8, 2, 10});
    c.fill(3, 1);
    c.purge(3);
    std::uint64_t t = 0;
    EXPECT_FALSE(c.lookup(3, t));
}

TEST(ProcessorCache, PurgeAllEmptiesCache)
{
    ProcessorCache c({8, 2, 10});
    for (Addr a = 0; a < 8; ++a)
        c.fill(a, a);
    c.purgeAll();
    std::uint64_t t = 0;
    for (Addr a = 0; a < 8; ++a)
        EXPECT_FALSE(c.lookup(a, t));
}

TEST(ProcessorCache, LruEvictionWithinSet)
{
    ProcessorCache c({1, 2, 10});
    c.fill(0, 0);
    c.fill(1, 1);
    std::uint64_t t = 0;
    c.lookup(0, t);  // 1 becomes LRU
    c.fill(2, 2);    // evicts 1
    EXPECT_TRUE(c.lookup(0, t));
    EXPECT_FALSE(c.lookup(1, t));
    EXPECT_TRUE(c.lookup(2, t));
}

TEST(ProcessorCache, RefillUpdatesInPlace)
{
    ProcessorCache c({1, 2, 10});
    c.fill(0, 1);
    c.fill(0, 9);
    std::uint64_t t = 0;
    EXPECT_TRUE(c.lookup(0, t));
    EXPECT_EQ(t, 9u);
}

TEST(ProcessorCache, HitLatencyExposed)
{
    ProcessorCache c({8, 2, 12});
    EXPECT_EQ(c.hitLatency(), 12u);
}
