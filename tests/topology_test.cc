/** @file Unit tests for GridMap and the general Multicube topology. */

#include <gtest/gtest.h>

#include "topology/grid_map.hh"
#include "topology/multicube.hh"

using namespace mcube;

TEST(GridMap, CoordinateRoundTrip)
{
    GridMap g(4);
    for (unsigned r = 0; r < 4; ++r) {
        for (unsigned c = 0; c < 4; ++c) {
            NodeId id = g.nodeAt(r, c);
            EXPECT_EQ(g.rowOf(id), r);
            EXPECT_EQ(g.colOf(id), c);
        }
    }
    EXPECT_EQ(g.numNodes(), 16u);
}

TEST(GridMap, HomeColumnInterleavesByLine)
{
    GridMap g(4);
    for (Addr a = 0; a < 32; ++a)
        EXPECT_EQ(g.homeColumn(a), a % 4);
}

TEST(GridMap, HomeColumnInterleavesByPage)
{
    // Section 3: "interleaved by lines or pages" — with 4-line pages
    // (shift 2), consecutive lines of a page share a home column.
    GridMap g(4, 2);
    for (Addr a = 0; a < 64; ++a)
        EXPECT_EQ(g.homeColumn(a), (a / 4) % 4);
    EXPECT_EQ(g.homeColumn(0), g.homeColumn(3));
    EXPECT_NE(g.homeColumn(3), g.homeColumn(4));
}

TEST(GridMap, SameRowColumnPredicates)
{
    GridMap g(3);
    EXPECT_TRUE(g.sameRow(g.nodeAt(1, 0), g.nodeAt(1, 2)));
    EXPECT_FALSE(g.sameRow(g.nodeAt(1, 0), g.nodeAt(2, 0)));
    EXPECT_TRUE(g.sameColumn(g.nodeAt(0, 2), g.nodeAt(2, 2)));
    EXPECT_FALSE(g.sameColumn(g.nodeAt(0, 2), g.nodeAt(0, 1)));
}

TEST(Multicube, ProcessorAndBusCounts)
{
    MulticubeTopology wm(32, 2);  // the Wisconsin Multicube
    EXPECT_EQ(wm.numProcessors(), 1024u);
    EXPECT_EQ(wm.numBuses(), 64u);
    EXPECT_EQ(wm.busesPerProcessor(), 2u);
}

TEST(Multicube, SpecialCases)
{
    MulticubeTopology multi(20, 1);
    EXPECT_TRUE(multi.isMulti());
    EXPECT_EQ(multi.numBuses(), 1u);
    EXPECT_EQ(multi.numProcessors(), 20u);

    MulticubeTopology hyper(2, 10);
    EXPECT_TRUE(hyper.isHypercube());
    EXPECT_EQ(hyper.numProcessors(), 1024u);
    // k * n^(k-1) = 10 * 2^9 = 5120 buses of 2 nodes each.
    EXPECT_EQ(hyper.numBuses(), 5120u);
}

TEST(Multicube, PaperFigure5Instance)
{
    // "A 64-Processor/48-Bus Multicube with 3 Dimensions" (n=4, k=3).
    MulticubeTopology m(4, 3);
    EXPECT_EQ(m.numProcessors(), 64u);
    EXPECT_EQ(m.numBuses(), 48u);
}

TEST(Multicube, BandwidthPerProcessorIsKOverN)
{
    MulticubeTopology m(32, 2);
    EXPECT_DOUBLE_EQ(m.bandwidthPerProcessor(), 2.0 / 32.0);
    MulticubeTopology m3(4, 3);
    EXPECT_DOUBLE_EQ(m3.bandwidthPerProcessor(), 3.0 / 4.0);
}

TEST(Multicube, InvalidationCost2D)
{
    // Section 6: (n + 1) row ops + 3 column ops.
    MulticubeTopology m(32, 2);
    EXPECT_EQ(m.invalidationBusOps(), 32u + 1u + 3u);
}

TEST(Multicube, MaxRequestHopsIsTwoK)
{
    EXPECT_EQ(MulticubeTopology(32, 2).maxRequestHops(), 4u);
    EXPECT_EQ(MulticubeTopology(4, 3).maxRequestHops(), 6u);
}

TEST(Multicube, CoordinateRoundTrip)
{
    MulticubeTopology m(5, 3);
    for (std::uint64_t p = 0; p < m.numProcessors(); p += 7) {
        auto c = m.coordinates(p);
        ASSERT_EQ(c.size(), 3u);
        EXPECT_EQ(m.procAt(c), p);
    }
}

TEST(Multicube, BusMembersShareAllButOneCoordinate)
{
    MulticubeTopology m(4, 3);
    auto members = m.busMembers(21, 1);
    ASSERT_EQ(members.size(), 4u);
    auto base = m.coordinates(21);
    bool self_found = false;
    for (auto p : members) {
        auto c = m.coordinates(p);
        EXPECT_EQ(c[0], base[0]);
        EXPECT_EQ(c[2], base[2]);
        self_found = self_found || p == 21;
    }
    EXPECT_TRUE(self_found);
}

TEST(Multicube, InvalidationScalesAsNMinus1OverNMinus1)
{
    MulticubeTopology m(4, 3);
    // (64 - 1) / (4 - 1) = 21, + 3 initiating column-style ops.
    EXPECT_EQ(m.invalidationBusOps(), 24u);
}
