/** @file Tests for the dance-hall (no-shared-caching) baseline. */

#include <gtest/gtest.h>

#include "baseline/dancehall.hh"

using namespace mcube;

TEST(Dancehall, StagesAreLogTwo)
{
    DancehallParams p;
    p.numProcessors = 64;
    DancehallSystem sys(p);
    EXPECT_EQ(sys.stages(), 6u);

    p.numProcessors = 100;
    DancehallSystem sys2(p);
    EXPECT_EQ(sys2.stages(), 7u);

    p.numProcessors = 1;
    DancehallSystem sys3(p);
    EXPECT_EQ(sys3.stages(), 1u);
}

TEST(Dancehall, RoundTripLatencyUnloaded)
{
    DancehallParams p;
    p.numProcessors = 16;  // 4 stages
    p.hopTicks = 100;
    p.bankServiceTicks = 750;
    p.wordTicks = 50;
    DancehallSystem sys(p);

    Tick done_at = 0;
    sys.access(0, 5, false, 0, [&](std::uint64_t) {
        done_at = sys.eventQueue().now();
    });
    sys.eventQueue().run();
    // 400 there + 800 bank + 400 back.
    EXPECT_EQ(done_at, 400u + 800u + 400u);
}

TEST(Dancehall, WriteThenReadReturnsValue)
{
    DancehallParams p;
    DancehallSystem sys(p);
    sys.access(0, 9, true, 1234, [](std::uint64_t) {});
    sys.eventQueue().run();
    std::uint64_t got = 0;
    sys.access(1, 9, false, 0, [&](std::uint64_t v) { got = v; });
    sys.eventQueue().run();
    EXPECT_EQ(got, 1234u);
    EXPECT_EQ(sys.memToken(9), 1234u);
}

TEST(Dancehall, BanksSerialiseContendedAccesses)
{
    DancehallParams p;
    p.numProcessors = 4;
    p.numBanks = 1;
    DancehallSystem sys(p);
    Tick last = 0;
    for (NodeId proc = 0; proc < 4; ++proc)
        sys.access(proc, 0, false, 0, [&](std::uint64_t) {
            last = sys.eventQueue().now();
        });
    sys.eventQueue().run();
    // Four 800-tick services serialise at the single bank.
    EXPECT_GE(last, 4u * 800u);
    EXPECT_GT(sys.bankUtilization(), 0.5);
}

TEST(Dancehall, RepeatedReadsNeverGetCheaper)
{
    // The defining weakness: no caching of shared data, so the Nth
    // read of the same address costs the same as the first.
    DancehallParams p;
    p.numProcessors = 16;
    DancehallSystem sys(p);
    std::vector<Tick> latencies;
    std::function<void(int)> chain = [&](int left) {
        if (left == 0)
            return;
        Tick t0 = sys.eventQueue().now();
        sys.access(0, 7, false, 0, [&, t0, left](std::uint64_t) {
            latencies.push_back(sys.eventQueue().now() - t0);
            chain(left - 1);
        });
    };
    chain(5);
    sys.eventQueue().run();
    ASSERT_EQ(latencies.size(), 5u);
    for (Tick t : latencies)
        EXPECT_EQ(t, latencies[0]);
}

TEST(Dancehall, WorkloadEfficiencySaneAtLowLoad)
{
    DancehallParams p;
    p.numProcessors = 16;
    DancehallSystem sys(p);
    DancehallWorkload wl(sys, 10.0);
    wl.start();
    sys.eventQueue().runUntil(3'000'000);
    wl.stop();
    sys.eventQueue().run();
    EXPECT_GT(wl.completed(), 200u);
    EXPECT_GT(wl.efficiency(), 0.9);
}

TEST(Dancehall, HighSharedRatesCollapse)
{
    // At high shared-access rates the round-trip latency plus bank
    // queueing destroys efficiency — the machine class's limitation
    // that motivates the Multicube.
    auto eff = [](double rate) {
        DancehallParams p;
        p.numProcessors = 64;
        DancehallSystem sys(p);
        DancehallWorkload wl(sys, rate, 0.25, 4096, 3);
        wl.start();
        sys.eventQueue().runUntil(2'000'000);
        wl.stop();
        sys.eventQueue().run();
        return wl.efficiency();
    };
    EXPECT_GT(eff(10.0), eff(400.0) + 0.2);
    EXPECT_LT(eff(400.0), 0.75);
}
