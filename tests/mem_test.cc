/** @file Unit tests for the memory module's Appendix A behaviour,
 * plus system-level coverage of the valid-bit bounce path (the
 * paper's "Timing Considerations" self-healing claim). */

#include <gtest/gtest.h>

#include <vector>

#include "bus/bus.hh"
#include "core/checker.hh"
#include "core/system.hh"
#include "mem/memory_module.hh"
#include "sim/event_queue.hh"
#include "topology/grid_map.hh"

using namespace mcube;

namespace
{

struct Recorder : BusAgent
{
    std::vector<BusOp> seen;
    void snoop(const BusOp &op, bool) override { seen.push_back(op); }

    /** Last op that is not the one we injected ourselves. */
    const BusOp &
    lastReply() const
    {
        return seen.back();
    }
};

struct MemFixture : ::testing::Test
{
    EventQueue eq;
    GridMap grid{2};
    Bus bus{"col0", eq, BusParams{}};
    MemoryModule mem{"mem0", eq, grid, 0, MemoryParams{}};
    Recorder rec;
    unsigned slot = 0;

    void
    SetUp() override
    {
        slot = bus.attach(&rec);
        mem.connect(bus);
    }

    BusOp
    request(TxnType t, Addr addr, NodeId org = 0)
    {
        BusOp o;
        o.txn = t;
        o.params = op::Request | op::Memory;
        o.addr = addr;
        o.origin = org;
        return o;
    }
};

} // namespace

TEST_F(MemFixture, ReadValidLineRepliesNoPurge)
{
    bus.request(slot, request(TxnType::Read, 0));
    eq.run();
    ASSERT_EQ(rec.seen.size(), 2u);  // the request + the reply
    const BusOp &r = rec.lastReply();
    EXPECT_EQ(r.txn, TxnType::Read);
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::NoPurge));
    EXPECT_TRUE(r.hasData);
    EXPECT_EQ(r.data.token, 0u);
    EXPECT_TRUE(mem.lineValid(0));
    EXPECT_EQ(mem.readsServed(), 1u);
}

TEST_F(MemFixture, ReadInvalidLineBounces)
{
    mem.poke(0, LineData{}, false);
    bus.request(slot, request(TxnType::Read, 0));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Request));
    EXPECT_TRUE(r.is(op::Remove));
    EXPECT_FALSE(r.is(op::Memory));
    EXPECT_EQ(r.origin, 0u);  // originator preserved for the retry
    EXPECT_EQ(mem.bounces(), 1u);
}

TEST_F(MemFixture, ReadModValidLinePurgesAndInvalidates)
{
    LineData d;
    d.token = 42;
    mem.poke(2, d, true);  // line 2 homes on column 0 (2 % 2 == 0)
    bus.request(slot, request(TxnType::ReadMod, 2, 3));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Purge));
    EXPECT_TRUE(r.hasData);
    EXPECT_EQ(r.data.token, 42u);
    EXPECT_FALSE(mem.lineValid(2));
}

TEST_F(MemFixture, AllocateRepliesAckWithoutData)
{
    bus.request(slot, request(TxnType::Allocate, 0, 1));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Purge));
    EXPECT_TRUE(r.is(op::Ack));
    EXPECT_FALSE(r.hasData);
    EXPECT_FALSE(mem.lineValid(0));
}

TEST_F(MemFixture, WritebackUpdateMakesLineValid)
{
    mem.poke(0, LineData{}, false);
    BusOp wb;
    wb.txn = TxnType::WriteBack;
    wb.params = op::Update | op::Memory;
    wb.addr = 0;
    wb.origin = 1;
    wb.hasData = true;
    wb.data.token = 7;
    bus.request(slot, wb);
    eq.run();
    EXPECT_TRUE(mem.lineValid(0));
    EXPECT_EQ(mem.lineData(0).token, 7u);
    EXPECT_EQ(mem.updates(), 1u);
}

TEST_F(MemFixture, ReadReplyUpdateMemoryAbsorbed)
{
    mem.poke(0, LineData{}, false);
    BusOp upd;
    upd.txn = TxnType::Read;
    upd.params = op::Reply | op::Update | op::Memory;
    upd.addr = 0;
    upd.origin = 1;
    upd.hasData = true;
    upd.data.token = 9;
    bus.request(slot, upd);
    eq.run();
    EXPECT_TRUE(mem.lineValid(0));
    EXPECT_EQ(mem.lineData(0).token, 9u);
}

TEST_F(MemFixture, TsetFreeLockGrantsAndInvalidates)
{
    bus.request(slot, request(TxnType::Tset, 0, 2));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Purge));
    EXPECT_EQ(r.data.lock, 1u);
    EXPECT_FALSE(mem.lineValid(0));
}

TEST_F(MemFixture, TsetHeldLockFailsAndKeepsLine)
{
    LineData d;
    d.lock = 1;
    mem.poke(0, d, true);
    bus.request(slot, request(TxnType::Tset, 0, 2));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Fail));
    EXPECT_FALSE(r.hasData);
    EXPECT_TRUE(mem.lineValid(0));
}

TEST_F(MemFixture, ServiceLatencyIsAccessTicks)
{
    bus.request(slot, request(TxnType::Read, 0));
    eq.run();
    // Request delivered at headerTicks (50); reply enqueued 750 later,
    // delivered after another header + block transfer.
    Tick expect = 50 + 750 + 50 + 16 * 50;
    EXPECT_EQ(eq.now(), expect);
}

TEST_F(MemFixture, BackToBackRequestsSerialise)
{
    bus.request(slot, request(TxnType::Read, 0));
    bus.request(slot, request(TxnType::Read, 2));
    eq.run();
    EXPECT_EQ(mem.readsServed(), 2u);
    // Second reply cannot be enqueued before 2 x 750 of service time.
    EXPECT_GE(eq.now(), 50u + 2u * 750u);
}

TEST_F(MemFixture, FreshLinesDefaultValidTokenZero)
{
    EXPECT_TRUE(mem.lineValid(4));
    EXPECT_EQ(mem.lineData(4).token, 0u);
}

// ---------------------------------------------------------------------
// System-level bounce path: a request that reaches memory while the
// line's valid bit is off must recover, whatever put it there.
// ---------------------------------------------------------------------

namespace
{

/** Passive agent used only to obtain a request slot for injecting
 *  hand-crafted (mis-routed) ops onto a system bus. */
struct Injector : BusAgent
{
    void snoop(const BusOp &, bool) override {}
};

struct BounceFixture : ::testing::Test
{
    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;
    Injector inj;

    void
    SetUp() override
    {
        SystemParams p;
        p.n = 2;
        p.ctrl.cache = {64, 4};
        p.ctrl.mlt = {64, 4};
        sys = std::make_unique<MulticubeSystem>(p);
        checker = std::make_unique<CoherenceChecker>(*sys, 16);
    }

    void
    drainAndCheck()
    {
        ASSERT_TRUE(sys->drain());
        checker->fullSweep();
        for (const auto &s : checker->report())
            ADD_FAILURE() << s;
        EXPECT_EQ(checker->violations(), 0u);
    }
};

} // namespace

TEST_F(BounceFixture, MisRoutedReadBouncesToOwnerInHomeColumn)
{
    // Node (1,0) takes line 0 modified: memory 0 invalid, MLT entry
    // column-wide in column 0.
    bool done = false;
    sys->node(1, 0).write(0, 77, [&](const TxnResult &) { done = true; });
    ASSERT_TRUE(sys->drain());
    ASSERT_TRUE(done);
    ASSERT_FALSE(sys->memory(0).lineValid(0));

    // A READ addressed straight to memory (op::Memory) even though the
    // line is tabled — the mis-route the valid bit exists to absorb.
    unsigned slot = sys->colBus(0).attach(&inj);
    BusOp op;
    op.txn = TxnType::Read;
    op.params = op::Request | op::Memory;
    op.addr = 0;
    op.origin = sys->gridMap().nodeAt(0, 0);
    sys->colBus(0).request(slot, op);

    drainAndCheck();

    // Memory bounced it as (REQUEST, REMOVE); the column-wide remove
    // hit the real entry, so the owner served the read itself and its
    // demotion wrote the line back: memory is valid again with the
    // owner's data, and nobody is left modified.
    EXPECT_EQ(sys->memory(0).bounces(), 1u);
    EXPECT_TRUE(sys->memory(0).lineValid(0));
    EXPECT_EQ(sys->memory(0).lineData(0).token, 77u);
    for (NodeId id = 0; id < sys->numNodes(); ++id)
        EXPECT_NE(sys->node(id).modeOf(0), Mode::Modified) << id;
    for (unsigned r = 0; r < 2; ++r)
        EXPECT_FALSE(sys->node(r, 0).table().contains(0));
}

TEST_F(BounceFixture, MisRoutedReadModTransfersOwnershipViaBounce)
{
    bool done = false;
    sys->node(1, 0).write(0, 91, [&](const TxnResult &) { done = true; });
    ASSERT_TRUE(sys->drain());
    ASSERT_TRUE(done);

    unsigned slot = sys->colBus(0).attach(&inj);
    BusOp op;
    op.txn = TxnType::ReadMod;
    op.params = op::Request | op::Memory;
    op.addr = 0;
    op.origin = sys->gridMap().nodeAt(0, 0);
    sys->colBus(0).request(slot, op);

    drainAndCheck();

    // The owner served the READ-MOD; its reply found no pending
    // transaction at the fake originator and was parked back to
    // memory, so the data survives and no stale MLT entry remains.
    EXPECT_EQ(sys->memory(0).bounces(), 1u);
    EXPECT_TRUE(sys->memory(0).lineValid(0));
    EXPECT_EQ(sys->memory(0).lineData(0).token, 91u);
    for (NodeId id = 0; id < sys->numNodes(); ++id)
        EXPECT_NE(sys->node(id).modeOf(0), Mode::Modified) << id;
}

TEST_F(BounceFixture, BounceCounterVisibleInSystemStats)
{
    // The per-module bounce counter must surface in the stats tree so
    // fault campaigns can report how often the self-healing path ran.
    bool done = false;
    sys->node(1, 0).write(0, 5, [&](const TxnResult &) { done = true; });
    ASSERT_TRUE(sys->drain());

    unsigned slot = sys->colBus(0).attach(&inj);
    BusOp op;
    op.txn = TxnType::Read;
    op.params = op::Request | op::Memory;
    op.addr = 0;
    op.origin = sys->gridMap().nodeAt(0, 0);
    sys->colBus(0).request(slot, op);
    drainAndCheck();

    std::map<std::string, double> flat;
    sys->statistics().flatten(flat);
    bool found = false;
    for (const auto &[name, value] : flat) {
        if (name.find("bounce") != std::string::npos && value >= 1.0)
            found = true;
    }
    EXPECT_TRUE(found) << "no bounce counter in flattened stats";
}
