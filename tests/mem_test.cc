/** @file Unit tests for the memory module's Appendix A behaviour. */

#include <gtest/gtest.h>

#include <vector>

#include "bus/bus.hh"
#include "mem/memory_module.hh"
#include "sim/event_queue.hh"
#include "topology/grid_map.hh"

using namespace mcube;

namespace
{

struct Recorder : BusAgent
{
    std::vector<BusOp> seen;
    void snoop(const BusOp &op, bool) override { seen.push_back(op); }

    /** Last op that is not the one we injected ourselves. */
    const BusOp &
    lastReply() const
    {
        return seen.back();
    }
};

struct MemFixture : ::testing::Test
{
    EventQueue eq;
    GridMap grid{2};
    Bus bus{"col0", eq, BusParams{}};
    MemoryModule mem{"mem0", eq, grid, 0, MemoryParams{}};
    Recorder rec;
    unsigned slot = 0;

    void
    SetUp() override
    {
        slot = bus.attach(&rec);
        mem.connect(bus);
    }

    BusOp
    request(TxnType t, Addr addr, NodeId org = 0)
    {
        BusOp o;
        o.txn = t;
        o.params = op::Request | op::Memory;
        o.addr = addr;
        o.origin = org;
        return o;
    }
};

} // namespace

TEST_F(MemFixture, ReadValidLineRepliesNoPurge)
{
    bus.request(slot, request(TxnType::Read, 0));
    eq.run();
    ASSERT_EQ(rec.seen.size(), 2u);  // the request + the reply
    const BusOp &r = rec.lastReply();
    EXPECT_EQ(r.txn, TxnType::Read);
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::NoPurge));
    EXPECT_TRUE(r.hasData);
    EXPECT_EQ(r.data.token, 0u);
    EXPECT_TRUE(mem.lineValid(0));
    EXPECT_EQ(mem.readsServed(), 1u);
}

TEST_F(MemFixture, ReadInvalidLineBounces)
{
    mem.poke(0, LineData{}, false);
    bus.request(slot, request(TxnType::Read, 0));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Request));
    EXPECT_TRUE(r.is(op::Remove));
    EXPECT_FALSE(r.is(op::Memory));
    EXPECT_EQ(r.origin, 0u);  // originator preserved for the retry
    EXPECT_EQ(mem.bounces(), 1u);
}

TEST_F(MemFixture, ReadModValidLinePurgesAndInvalidates)
{
    LineData d;
    d.token = 42;
    mem.poke(2, d, true);  // line 2 homes on column 0 (2 % 2 == 0)
    bus.request(slot, request(TxnType::ReadMod, 2, 3));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Purge));
    EXPECT_TRUE(r.hasData);
    EXPECT_EQ(r.data.token, 42u);
    EXPECT_FALSE(mem.lineValid(2));
}

TEST_F(MemFixture, AllocateRepliesAckWithoutData)
{
    bus.request(slot, request(TxnType::Allocate, 0, 1));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Purge));
    EXPECT_TRUE(r.is(op::Ack));
    EXPECT_FALSE(r.hasData);
    EXPECT_FALSE(mem.lineValid(0));
}

TEST_F(MemFixture, WritebackUpdateMakesLineValid)
{
    mem.poke(0, LineData{}, false);
    BusOp wb;
    wb.txn = TxnType::WriteBack;
    wb.params = op::Update | op::Memory;
    wb.addr = 0;
    wb.origin = 1;
    wb.hasData = true;
    wb.data.token = 7;
    bus.request(slot, wb);
    eq.run();
    EXPECT_TRUE(mem.lineValid(0));
    EXPECT_EQ(mem.lineData(0).token, 7u);
    EXPECT_EQ(mem.updates(), 1u);
}

TEST_F(MemFixture, ReadReplyUpdateMemoryAbsorbed)
{
    mem.poke(0, LineData{}, false);
    BusOp upd;
    upd.txn = TxnType::Read;
    upd.params = op::Reply | op::Update | op::Memory;
    upd.addr = 0;
    upd.origin = 1;
    upd.hasData = true;
    upd.data.token = 9;
    bus.request(slot, upd);
    eq.run();
    EXPECT_TRUE(mem.lineValid(0));
    EXPECT_EQ(mem.lineData(0).token, 9u);
}

TEST_F(MemFixture, TsetFreeLockGrantsAndInvalidates)
{
    bus.request(slot, request(TxnType::Tset, 0, 2));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Purge));
    EXPECT_EQ(r.data.lock, 1u);
    EXPECT_FALSE(mem.lineValid(0));
}

TEST_F(MemFixture, TsetHeldLockFailsAndKeepsLine)
{
    LineData d;
    d.lock = 1;
    mem.poke(0, d, true);
    bus.request(slot, request(TxnType::Tset, 0, 2));
    eq.run();
    const BusOp &r = rec.lastReply();
    EXPECT_TRUE(r.is(op::Reply));
    EXPECT_TRUE(r.is(op::Fail));
    EXPECT_FALSE(r.hasData);
    EXPECT_TRUE(mem.lineValid(0));
}

TEST_F(MemFixture, ServiceLatencyIsAccessTicks)
{
    bus.request(slot, request(TxnType::Read, 0));
    eq.run();
    // Request delivered at headerTicks (50); reply enqueued 750 later,
    // delivered after another header + block transfer.
    Tick expect = 50 + 750 + 50 + 16 * 50;
    EXPECT_EQ(eq.now(), expect);
}

TEST_F(MemFixture, BackToBackRequestsSerialise)
{
    bus.request(slot, request(TxnType::Read, 0));
    bus.request(slot, request(TxnType::Read, 2));
    eq.run();
    EXPECT_EQ(mem.readsServed(), 2u);
    // Second reply cannot be enqueued before 2 x 750 of service time.
    EXPECT_GE(eq.now(), 50u + 2u * 750u);
}

TEST_F(MemFixture, FreshLinesDefaultValidTokenZero)
{
    EXPECT_TRUE(mem.lineValid(4));
    EXPECT_EQ(mem.lineData(4).token, 0u);
}
