/** @file Unit tests for the trace-logging facility. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/log.hh"

using namespace mcube;

namespace
{

struct LogReset : ::testing::Test
{
    void SetUp() override { Log::disableAll(); }
    void TearDown() override { Log::disableAll(); }
};

} // namespace

TEST_F(LogReset, DisabledByDefault)
{
    EXPECT_FALSE(Log::enabled(LogCat::Bus));
    EXPECT_FALSE(Log::enabled(LogCat::Proto));
}

TEST_F(LogReset, EnableSingleCategory)
{
    Log::enable(LogCat::Cache);
    EXPECT_TRUE(Log::enabled(LogCat::Cache));
    EXPECT_FALSE(Log::enabled(LogCat::Bus));
}

TEST_F(LogReset, EnableFromCommaList)
{
    Log::enableFromString("Bus,Sync");
    EXPECT_TRUE(Log::enabled(LogCat::Bus));
    EXPECT_TRUE(Log::enabled(LogCat::Sync));
    EXPECT_FALSE(Log::enabled(LogCat::Mem));
}

TEST_F(LogReset, EnableAll)
{
    Log::enableFromString("all");
    EXPECT_TRUE(Log::enabled(LogCat::Bus));
    EXPECT_TRUE(Log::enabled(LogCat::Proto));
    EXPECT_TRUE(Log::enabled(LogCat::Check));
}

TEST_F(LogReset, UnknownTokensIgnored)
{
    Log::enableFromString("Nonsense,Proc");
    EXPECT_TRUE(Log::enabled(LogCat::Proc));
    EXPECT_FALSE(Log::enabled(LogCat::Bus));
}

TEST_F(LogReset, FileSinkCapturesOutput)
{
    const std::string path =
        ::testing::TempDir() + "mcube_log_sink_test.txt";
    std::remove(path.c_str());

    Log::enable(LogCat::Mem);
    Log::setFile(path);
    MCUBE_LOG(LogCat::Mem, 7, "into the file " << 123);
    Log::setFile("");  // back to stderr, flushes the file

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream body;
    body << in.rdbuf();
    const std::string s = body.str();
    EXPECT_NE(s.find("7: [LogCat::Mem] into the file 123"),
              std::string::npos);

    // With the sink reverted, new lines go to stderr, not the file.
    testing::internal::CaptureStderr();
    MCUBE_LOG(LogCat::Mem, 8, "back on stderr");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("back on stderr"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(LogReset, UnopenableFileFallsBackToStderr)
{
    Log::enable(LogCat::Bus);
    Log::setFile("/nonexistent-dir-mcube/trace.log");
    testing::internal::CaptureStderr();
    MCUBE_LOG(LogCat::Bus, 1, "still visible");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("still visible"), std::string::npos);
    Log::setFile("");
}

TEST_F(LogReset, MacroDoesNotEvaluateWhenDisabled)
{
    int evals = 0;
    auto touch = [&] {
        ++evals;
        return 1;
    };
    MCUBE_LOG(LogCat::Bus, 0, "value " << touch());
    EXPECT_EQ(evals, 0);
    Log::enable(LogCat::Bus);
    testing::internal::CaptureStderr();
    MCUBE_LOG(LogCat::Bus, 42, "value " << touch());
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(evals, 1);
    EXPECT_NE(err.find("42"), std::string::npos);
    EXPECT_NE(err.find("value 1"), std::string::npos);
}
