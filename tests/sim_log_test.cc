/** @file Unit tests for the trace-logging facility. */

#include <gtest/gtest.h>

#include "sim/log.hh"

using namespace mcube;

namespace
{

struct LogReset : ::testing::Test
{
    void SetUp() override { Log::disableAll(); }
    void TearDown() override { Log::disableAll(); }
};

} // namespace

TEST_F(LogReset, DisabledByDefault)
{
    EXPECT_FALSE(Log::enabled(LogCat::Bus));
    EXPECT_FALSE(Log::enabled(LogCat::Proto));
}

TEST_F(LogReset, EnableSingleCategory)
{
    Log::enable(LogCat::Cache);
    EXPECT_TRUE(Log::enabled(LogCat::Cache));
    EXPECT_FALSE(Log::enabled(LogCat::Bus));
}

TEST_F(LogReset, EnableFromCommaList)
{
    Log::enableFromString("Bus,Sync");
    EXPECT_TRUE(Log::enabled(LogCat::Bus));
    EXPECT_TRUE(Log::enabled(LogCat::Sync));
    EXPECT_FALSE(Log::enabled(LogCat::Mem));
}

TEST_F(LogReset, EnableAll)
{
    Log::enableFromString("all");
    EXPECT_TRUE(Log::enabled(LogCat::Bus));
    EXPECT_TRUE(Log::enabled(LogCat::Proto));
    EXPECT_TRUE(Log::enabled(LogCat::Check));
}

TEST_F(LogReset, UnknownTokensIgnored)
{
    Log::enableFromString("Nonsense,Proc");
    EXPECT_TRUE(Log::enabled(LogCat::Proc));
    EXPECT_FALSE(Log::enabled(LogCat::Bus));
}

TEST_F(LogReset, MacroDoesNotEvaluateWhenDisabled)
{
    int evals = 0;
    auto touch = [&] {
        ++evals;
        return 1;
    };
    MCUBE_LOG(LogCat::Bus, 0, "value " << touch());
    EXPECT_EQ(evals, 0);
    Log::enable(LogCat::Bus);
    testing::internal::CaptureStderr();
    MCUBE_LOG(LogCat::Bus, 42, "value " << touch());
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(evals, 1);
    EXPECT_NE(err.find("42"), std::string::npos);
    EXPECT_NE(err.find("value 1"), std::string::npos);
}
