/** @file
 * Directed scenario tests for the Multicube coherence protocol: every
 * transaction type of Appendix A, the race/robustness paths, and the
 * Section 4 synchronisation primitives, on small grids with the
 * invariant checker attached.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/checker.hh"
#include "core/system.hh"

using namespace mcube;

namespace
{

SystemParams
smallParams(unsigned n = 4)
{
    SystemParams p;
    p.n = n;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {64, 4};
    return p;
}

/** Tracks one async transaction's completion. */
struct Waiter
{
    bool done = false;
    TxnResult res;

    SnoopController::CompletionCb
    cb()
    {
        return [this](const TxnResult &r) {
            done = true;
            res = r;
        };
    }
};

class ProtocolTest : public ::testing::Test
{
  protected:
    void
    build(unsigned n = 4)
    {
        sys = std::make_unique<MulticubeSystem>(smallParams(n));
        checker = std::make_unique<CoherenceChecker>(*sys, 16);
    }

    void
    drainAndCheck()
    {
        ASSERT_TRUE(sys->drain());
        checker->fullSweep();
        if (checker->violations() > 0) {
            for (const auto &s : checker->report())
                ADD_FAILURE() << s;
        }
        EXPECT_EQ(checker->violations(), 0u);
    }

    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;
};

} // namespace

TEST_F(ProtocolTest, ReadUnmodifiedFromMemory)
{
    build();
    SnoopController &reader = sys->node(0, 1);
    std::uint64_t tok = 1;
    Waiter w;
    Addr addr = 8;  // home column 0
    EXPECT_EQ(reader.read(addr, tok, w.cb()), AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(w.done);
    EXPECT_TRUE(w.res.success);
    EXPECT_EQ(w.res.data.token, 0u);
    EXPECT_EQ(reader.modeOf(addr), Mode::Shared);
    EXPECT_TRUE(sys->memory(0).lineValid(addr));
}

TEST_F(ProtocolTest, ReadIsAHitAfterFill)
{
    build();
    SnoopController &reader = sys->node(0, 1);
    Waiter w;
    std::uint64_t tok = 1;
    reader.read(8, tok, w.cb());
    drainAndCheck();
    EXPECT_EQ(reader.read(8, tok, w.cb()), AccessOutcome::Hit);
    EXPECT_EQ(tok, 0u);
}

TEST_F(ProtocolTest, WriteMissToUnmodifiedLine)
{
    build();
    SnoopController &writer = sys->node(2, 3);
    Waiter w;
    Addr addr = 5;  // home column 1
    EXPECT_EQ(writer.write(addr, 77, w.cb()), AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(w.done);
    EXPECT_EQ(writer.modeOf(addr), Mode::Modified);
    EXPECT_EQ(writer.dataOf(addr).token, 77u);
    // Memory copy invalidated; MLT entry present in the writer's
    // column at every node of that column.
    EXPECT_FALSE(sys->memory(1).lineValid(addr));
    for (unsigned r = 0; r < 4; ++r)
        EXPECT_TRUE(sys->node(r, 3).table().contains(addr));
    // ... and nowhere else.
    for (unsigned c = 0; c < 3; ++c)
        EXPECT_FALSE(sys->node(0, c).table().contains(addr));
}

TEST_F(ProtocolTest, WriteHitInModifiedModeIsLocal)
{
    build();
    SnoopController &writer = sys->node(2, 3);
    Waiter w;
    writer.write(5, 77, w.cb());
    drainAndCheck();
    std::uint64_t ops_before = sys->totalBusOps();
    Waiter w2;
    EXPECT_EQ(writer.write(5, 78, w2.cb()), AccessOutcome::Hit);
    drainAndCheck();
    EXPECT_EQ(sys->totalBusOps(), ops_before);
    EXPECT_EQ(writer.dataOf(5).token, 78u);
}

TEST_F(ProtocolTest, ReadOfRemotelyModifiedLine)
{
    build();
    SnoopController &writer = sys->node(1, 1);
    SnoopController &reader = sys->node(2, 2);
    Addr addr = 4;  // home column 0
    Waiter w1, w2;
    writer.write(addr, 99, w1.cb());
    drainAndCheck();

    std::uint64_t tok = 0;
    EXPECT_EQ(reader.read(addr, tok, w2.cb()), AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(w2.res.data.token, 99u);
    // Both copies shared, memory updated, table entry gone.
    EXPECT_EQ(writer.modeOf(addr), Mode::Shared);
    EXPECT_EQ(reader.modeOf(addr), Mode::Shared);
    EXPECT_TRUE(sys->memory(0).lineValid(addr));
    EXPECT_EQ(sys->memory(0).lineData(addr).token, 99u);
    for (unsigned r = 0; r < 4; ++r)
        EXPECT_FALSE(sys->node(r, 1).table().contains(addr));
}

TEST_F(ProtocolTest, ReadOfModifiedLineSameRow)
{
    build();
    SnoopController &writer = sys->node(1, 1);
    SnoopController &reader = sys->node(1, 3);
    Addr addr = 4;
    Waiter w1, w2;
    writer.write(addr, 21, w1.cb());
    drainAndCheck();
    std::uint64_t tok = 0;
    reader.read(addr, tok, w2.cb());
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(w2.res.data.token, 21u);
    EXPECT_TRUE(sys->memory(0).lineValid(addr));
}

TEST_F(ProtocolTest, ReadOfModifiedLineSameColumn)
{
    build();
    SnoopController &writer = sys->node(1, 1);
    SnoopController &reader = sys->node(3, 1);
    Addr addr = 4;
    Waiter w1, w2;
    writer.write(addr, 22, w1.cb());
    drainAndCheck();
    std::uint64_t tok = 0;
    reader.read(addr, tok, w2.cb());
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(w2.res.data.token, 22u);
}

TEST_F(ProtocolTest, ReadOfModifiedLineOwnerOnHomeColumn)
{
    build();
    SnoopController &writer = sys->node(1, 0);  // home column of addr 4
    SnoopController &reader = sys->node(2, 2);
    Addr addr = 4;
    Waiter w1, w2;
    writer.write(addr, 23, w1.cb());
    drainAndCheck();
    std::uint64_t tok = 0;
    reader.read(addr, tok, w2.cb());
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(w2.res.data.token, 23u);
    EXPECT_TRUE(sys->memory(0).lineValid(addr));
}

TEST_F(ProtocolTest, WriteToRemotelyModifiedLineMovesOwnership)
{
    build();
    SnoopController &first = sys->node(0, 0);
    SnoopController &second = sys->node(3, 2);
    Addr addr = 6;  // home column 2
    Waiter w1, w2;
    first.write(addr, 10, w1.cb());
    drainAndCheck();
    second.write(addr, 11, w2.cb());
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(first.modeOf(addr), Mode::Invalid);
    EXPECT_EQ(second.modeOf(addr), Mode::Modified);
    EXPECT_EQ(second.dataOf(addr).token, 11u);
    // Table entry moved from column 0 to column 2.
    for (unsigned r = 0; r < 4; ++r) {
        EXPECT_FALSE(sys->node(r, 0).table().contains(addr));
        EXPECT_TRUE(sys->node(r, 2).table().contains(addr));
    }
    EXPECT_FALSE(sys->memory(2).lineValid(addr));
}

TEST_F(ProtocolTest, InvalidationBroadcastPurgesAllSharers)
{
    build();
    Addr addr = 12;  // home column 0
    // Four sharers in different rows/columns.
    std::vector<NodeId> sharers = {
        sys->gridMap().nodeAt(0, 1), sys->gridMap().nodeAt(1, 2),
        sys->gridMap().nodeAt(2, 3), sys->gridMap().nodeAt(3, 0)};
    for (NodeId id : sharers) {
        Waiter w;
        std::uint64_t tok = 0;
        sys->node(id).read(addr, tok, w.cb());
        drainAndCheck();
    }
    SnoopController &writer = sys->node(2, 1);
    Waiter w;
    writer.write(addr, 50, w.cb());
    drainAndCheck();
    ASSERT_TRUE(w.done);
    for (NodeId id : sharers)
        EXPECT_EQ(sys->node(id).modeOf(addr), Mode::Invalid)
            << "sharer " << id << " not purged";
    EXPECT_EQ(writer.modeOf(addr), Mode::Modified);
    EXPECT_GE(writer.invalidationsReceived()
                  + sys->node(sharers[0]).invalidationsReceived()
                  + sys->node(sharers[1]).invalidationsReceived()
                  + sys->node(sharers[2]).invalidationsReceived()
                  + sys->node(sharers[3]).invalidationsReceived(),
              4u);
}

TEST_F(ProtocolTest, AllocateGrantsOwnershipWithoutDataTransfer)
{
    build();
    SnoopController &writer = sys->node(1, 2);
    Addr addr = 9;  // home column 1
    Waiter w;
    EXPECT_EQ(writer.writeAllocate(addr, 123, w.cb()),
              AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(w.done);
    EXPECT_EQ(writer.modeOf(addr), Mode::Modified);
    EXPECT_EQ(writer.dataOf(addr).token, 123u);
    EXPECT_FALSE(sys->memory(1).lineValid(addr));
}

TEST_F(ProtocolTest, AllocateOverRemotelyModifiedLine)
{
    build();
    SnoopController &first = sys->node(0, 3);
    SnoopController &second = sys->node(2, 0);
    Addr addr = 9;
    Waiter w1, w2;
    first.write(addr, 5, w1.cb());
    drainAndCheck();
    second.writeAllocate(addr, 6, w2.cb());
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(first.modeOf(addr), Mode::Invalid);
    EXPECT_EQ(second.modeOf(addr), Mode::Modified);
    EXPECT_EQ(second.dataOf(addr).token, 6u);
}

TEST_F(ProtocolTest, EvictionWritesBackModifiedVictim)
{
    // Tiny cache: 1 set x 2 ways forces eviction on the 3rd line.
    SystemParams p = smallParams();
    p.ctrl.cache = {1, 2};
    sys = std::make_unique<MulticubeSystem>(p);
    checker = std::make_unique<CoherenceChecker>(*sys, 16);

    SnoopController &n0 = sys->node(0, 0);
    Waiter w1, w2, w3;
    n0.write(1, 11, w1.cb());
    drainAndCheck();
    n0.write(2, 22, w2.cb());
    drainAndCheck();
    // Third write evicts line 1 (LRU): its dirty data must reach
    // memory and the table entry must be removed.
    n0.write(3, 33, w3.cb());
    drainAndCheck();
    ASSERT_TRUE(w3.done);
    EXPECT_TRUE(sys->memory(1).lineValid(1));
    EXPECT_EQ(sys->memory(1).lineData(1).token, 11u);
    for (unsigned r = 0; r < 4; ++r)
        EXPECT_FALSE(sys->node(r, 0).table().contains(1));
    EXPECT_EQ(n0.modeOf(2), Mode::Modified);
    EXPECT_EQ(n0.modeOf(3), Mode::Modified);
}

TEST_F(ProtocolTest, SharedUpgradeToModified)
{
    build();
    SnoopController &nd = sys->node(1, 1);
    Addr addr = 16;
    Waiter w1, w2;
    std::uint64_t tok = 0;
    nd.read(addr, tok, w1.cb());
    drainAndCheck();
    EXPECT_EQ(nd.modeOf(addr), Mode::Shared);
    nd.write(addr, 44, w2.cb());
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(nd.modeOf(addr), Mode::Modified);
    EXPECT_EQ(nd.dataOf(addr).token, 44u);
}

TEST_F(ProtocolTest, SnarfingFillsRecentlyHeldLine)
{
    SystemParams p = smallParams();
    p.ctrl.enableSnarfing = true;
    sys = std::make_unique<MulticubeSystem>(p);
    checker = std::make_unique<CoherenceChecker>(*sys, 16);

    Addr addr = 8;  // home column 0
    SnoopController &a = sys->node(0, 0);
    SnoopController &b = sys->node(0, 1);

    // a reads the line, then loses it to a writer, leaving an invalid
    // tag behind.
    Waiter w1;
    std::uint64_t tok = 0;
    a.read(addr, tok, w1.cb());
    drainAndCheck();
    SnoopController &w = sys->node(2, 2);
    Waiter w2;
    w.write(addr, 1, w2.cb());
    drainAndCheck();
    ASSERT_EQ(a.modeOf(addr), Mode::Invalid);

    // b (same row as a) reads; the reply passes on row 0, and a may
    // snarf it back in shared mode.
    Waiter w3;
    b.read(addr, tok, w3.cb());
    drainAndCheck();
    EXPECT_EQ(b.modeOf(addr), Mode::Shared);
    EXPECT_EQ(a.modeOf(addr), Mode::Shared);
    EXPECT_GE(a.snarfs(), 1u);
    EXPECT_EQ(a.dataOf(addr).token, 1u);
}

TEST_F(ProtocolTest, RacingWritesSerialise)
{
    build();
    Addr addr = 10;  // home column 2
    SnoopController &a = sys->node(0, 0);
    SnoopController &b = sys->node(3, 3);
    Waiter wa, wb;
    a.write(addr, 100, wa.cb());
    b.write(addr, 200, wb.cb());
    drainAndCheck();
    ASSERT_TRUE(wa.done);
    ASSERT_TRUE(wb.done);
    // Exactly one final owner, holding the loser-then-winner value.
    bool a_owns = a.modeOf(addr) == Mode::Modified;
    bool b_owns = b.modeOf(addr) == Mode::Modified;
    EXPECT_NE(a_owns, b_owns);
    std::uint64_t final_tok =
        a_owns ? a.dataOf(addr).token : b.dataOf(addr).token;
    EXPECT_TRUE(final_tok == 100 || final_tok == 200);
    EXPECT_EQ(final_tok, checker->goldenToken(addr));
}

TEST_F(ProtocolTest, RacingReadAndWriteBothComplete)
{
    build();
    Addr addr = 14;
    SnoopController &r = sys->node(1, 2);
    SnoopController &w = sys->node(2, 1);
    Waiter wr, ww;
    std::uint64_t tok = 0;
    r.read(addr, tok, wr.cb());
    w.write(addr, 9, ww.cb());
    drainAndCheck();
    EXPECT_TRUE(wr.done);
    EXPECT_TRUE(ww.done);
    EXPECT_TRUE(wr.res.data.token == 0 || wr.res.data.token == 9);
}

TEST_F(ProtocolTest, DroppedSignalRecoversViaMemoryBounce)
{
    SystemParams p = smallParams();
    p.ctrl.dropSignalProb = 0.5;
    sys = std::make_unique<MulticubeSystem>(p);
    checker = std::make_unique<CoherenceChecker>(*sys, 16);

    Addr addr = 4;
    SnoopController &writer = sys->node(1, 1);
    Waiter w1;
    writer.write(addr, 66, w1.cb());
    drainAndCheck();

    // Many reads from different nodes; drops force memory bounces but
    // every request must still complete with the right data.
    for (unsigned i = 0; i < 8; ++i) {
        SnoopController &rd = sys->node(i % 4, (i + 2) % 4);
        if (rd.id() == writer.id() || rd.busy())
            continue;
        Waiter w;
        std::uint64_t tok = 0;
        auto out = rd.read(addr, tok, w.cb());
        drainAndCheck();
        if (out == AccessOutcome::Miss) {
            ASSERT_TRUE(w.done);
            EXPECT_EQ(w.res.data.token, 66u);
        }
    }
}

TEST_F(ProtocolTest, MltOverflowForcesWriteback)
{
    SystemParams p = smallParams();
    p.ctrl.mlt = {1, 2};  // two entries per column
    sys = std::make_unique<MulticubeSystem>(p);
    checker = std::make_unique<CoherenceChecker>(*sys, 16);

    SnoopController &nd = sys->node(0, 0);
    // Three dirty lines in one column overflow the 2-entry table; the
    // evicted line must be written back and demoted to shared.
    Waiter w1, w2, w3;
    nd.write(1, 11, w1.cb());
    drainAndCheck();
    nd.write(2, 22, w2.cb());
    drainAndCheck();
    nd.write(3, 33, w3.cb());
    drainAndCheck();
    EXPECT_GE(nd.mltOverflows(), 1u);
    EXPECT_EQ(nd.modeOf(1), Mode::Shared);
    EXPECT_TRUE(sys->memory(1).lineValid(1));
    EXPECT_EQ(sys->memory(1).lineData(1).token, 11u);
    EXPECT_EQ(nd.modeOf(2), Mode::Modified);
    EXPECT_EQ(nd.modeOf(3), Mode::Modified);
}

TEST_F(ProtocolTest, RemoteTsetFromMemoryAndContention)
{
    build();
    Addr lock = 20;  // home column 0
    SnoopController &a = sys->node(0, 1);
    SnoopController &b = sys->node(2, 3);

    Waiter wa;
    bool ga = false;
    EXPECT_EQ(a.testAndSet(lock, ga, wa.cb()), AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(wa.done);
    EXPECT_TRUE(wa.res.success);
    EXPECT_EQ(a.modeOf(lock), Mode::Modified);
    EXPECT_EQ(a.dataOf(lock).lock, 1u);

    // b's tset must fail without moving the line.
    Waiter wb;
    bool gb = false;
    EXPECT_EQ(b.testAndSet(lock, gb, wb.cb()), AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(wb.done);
    EXPECT_FALSE(wb.res.success);
    EXPECT_EQ(a.modeOf(lock), Mode::Modified);
    EXPECT_EQ(b.modeOf(lock), Mode::Invalid);
    // The table entry must still point at a's column after the
    // fail-path reinsert.
    EXPECT_TRUE(sys->node(0, 1).table().contains(lock));

    // After release, b succeeds.
    EXPECT_TRUE(a.release(lock, 0));
    ASSERT_TRUE(sys->drain());
    Waiter wb2;
    EXPECT_EQ(b.testAndSet(lock, gb, wb2.cb()), AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(wb2.done);
    EXPECT_TRUE(wb2.res.success);
    EXPECT_EQ(b.modeOf(lock), Mode::Modified);
}

TEST_F(ProtocolTest, LocalTsetOnHeldLineNeedsNoBus)
{
    build();
    Addr lock = 20;
    SnoopController &a = sys->node(0, 1);
    Waiter wa;
    bool g = false;
    a.testAndSet(lock, g, wa.cb());
    drainAndCheck();
    std::uint64_t ops = sys->totalBusOps();
    bool g2 = true;
    EXPECT_EQ(a.testAndSet(lock, g2, wa.cb()), AccessOutcome::Hit);
    EXPECT_FALSE(g2);  // we already hold it
    EXPECT_EQ(sys->totalBusOps(), ops);
}

TEST_F(ProtocolTest, SyncQueueGrantsInFifoOrder)
{
    build();
    Addr lock = 24;  // home column 0
    SnoopController &a = sys->node(0, 1);
    SnoopController &b = sys->node(1, 2);
    SnoopController &c = sys->node(2, 3);

    std::vector<char> order;

    Waiter wa;
    bool g = false;
    EXPECT_EQ(a.syncAcquire(lock, g, wa.cb()), AccessOutcome::Miss);
    drainAndCheck();
    ASSERT_TRUE(wa.done && wa.res.success);
    EXPECT_EQ(a.dataOf(lock).lock, 1u);

    // b and c join while a holds the lock.
    bool gb = false, gc = false;
    b.syncAcquire(lock, gb, [&](const TxnResult &r) {
        if (r.success)
            order.push_back('b');
    });
    ASSERT_TRUE(sys->drain());
    c.syncAcquire(lock, gc, [&](const TxnResult &r) {
        if (r.success)
            order.push_back('c');
    });
    ASSERT_TRUE(sys->drain());
    // Neither granted yet.
    EXPECT_TRUE(order.empty());
    EXPECT_EQ(b.modeOf(lock), Mode::Reserved);
    EXPECT_EQ(c.modeOf(lock), Mode::Reserved);

    // a releases: b must be granted; then b releases: c granted.
    EXPECT_TRUE(a.release(lock, 1));
    ASSERT_TRUE(sys->drain());
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 'b');
    EXPECT_EQ(b.modeOf(lock), Mode::Modified);
    EXPECT_EQ(b.dataOf(lock).lock, 1u);

    EXPECT_TRUE(b.release(lock, 2));
    ASSERT_TRUE(sys->drain());
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 'c');
    EXPECT_EQ(c.modeOf(lock), Mode::Modified);

    EXPECT_TRUE(c.release(lock, 3));
    drainAndCheck();
    EXPECT_EQ(c.dataOf(lock).lock, 0u);
}

TEST_F(ProtocolTest, SyncSpinningCausesNoBusTraffic)
{
    build();
    Addr lock = 24;
    SnoopController &a = sys->node(0, 1);
    SnoopController &b = sys->node(1, 2);
    Waiter wa, wb;
    bool g = false;
    a.syncAcquire(lock, g, wa.cb());
    drainAndCheck();
    b.syncAcquire(lock, g, wb.cb());
    ASSERT_TRUE(sys->drain());

    // b spins with local test-and-set on its reserved copy: zero ops.
    std::uint64_t ops = sys->totalBusOps();
    for (int i = 0; i < 100; ++i) {
        bool granted = true;
        EXPECT_EQ(b.testAndSet(lock, granted, wb.cb()),
                  AccessOutcome::Hit);
        EXPECT_FALSE(granted);
    }
    EXPECT_EQ(sys->totalBusOps(), ops);
}

TEST_F(ProtocolTest, BusOpsPerTransactionMatchPaperBounds)
{
    build();
    // READ of an unmodified line: row req, col req, col reply, row
    // reply = 4 ops (Section 6).
    SnoopController &rd = sys->node(0, 1);
    Waiter w;
    std::uint64_t tok = 0;
    std::uint64_t before = sys->totalBusOps();
    rd.read(8, tok, w.cb());
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(sys->totalBusOps() - before, 4u);

    // READ-MOD of a modified line: 4 ops. (Dirty the line first.)
    SnoopController &wr = sys->node(1, 1);
    Waiter w1;
    wr.write(40, 3, w1.cb());
    ASSERT_TRUE(sys->drain());
    before = sys->totalBusOps();
    SnoopController &wr2 = sys->node(3, 3);
    Waiter w3;
    wr2.write(40, 4, w3.cb());
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(sys->totalBusOps() - before, 4u);

    // READ of a modified line: 5 ops.
    before = sys->totalBusOps();
    SnoopController &rd2 = sys->node(2, 2);
    Waiter w2;
    rd2.read(40, tok, w2.cb());
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(sys->totalBusOps() - before, 5u);

    // READ-MOD of an unmodified line: broadcast, (n + 1) row ops and
    // 3 column ops = n + 4 total (Section 6).
    before = sys->totalBusOps();
    SnoopController &wr3 = sys->node(2, 0);
    Waiter w4;
    wr3.write(28, 5, w4.cb());
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(sys->totalBusOps() - before, 4u + 4u);
    drainAndCheck();
}

TEST_F(ProtocolTest, N2GridWorks)
{
    build(2);
    SnoopController &a = sys->node(0, 0);
    SnoopController &b = sys->node(1, 1);
    Waiter w1, w2;
    a.write(3, 7, w1.cb());
    drainAndCheck();
    std::uint64_t tok = 0;
    b.read(3, tok, w2.cb());
    drainAndCheck();
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(w2.res.data.token, 7u);
}

TEST_F(ProtocolTest, N8GridWorks)
{
    build(8);
    SnoopController &a = sys->node(3, 5);
    SnoopController &b = sys->node(6, 2);
    Waiter w1, w2;
    a.write(17, 7, w1.cb());
    drainAndCheck();
    b.write(17, 8, w2.cb());
    drainAndCheck();
    EXPECT_EQ(a.modeOf(17), Mode::Invalid);
    EXPECT_EQ(b.modeOf(17), Mode::Modified);
}
