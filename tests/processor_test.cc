/** @file Unit tests for the Processor front-end (L1 + controller). */

#include <gtest/gtest.h>

#include <memory>

#include "core/system.hh"
#include "proc/processor.hh"

using namespace mcube;

namespace
{

class ProcessorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SystemParams p;
        p.n = 4;
        p.ctrl.cache = {64, 4};
        sys = std::make_unique<MulticubeSystem>(p);
        ProcessorParams pp;
        pp.l1 = {16, 2, 10};
        proc = std::make_unique<Processor>("p0", sys->eventQueue(),
                                           sys->node(0, 1), pp);
        other = std::make_unique<Processor>("p1", sys->eventQueue(),
                                            sys->node(2, 2), pp);
    }

    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<Processor> proc;
    std::unique_ptr<Processor> other;
};

} // namespace

TEST_F(ProcessorTest, LoadMissFillsBothLevels)
{
    std::uint64_t got = 99;
    proc->load(5, [&](std::uint64_t t) { got = t; });
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(got, 0u);
    EXPECT_EQ(proc->loads(), 1u);
    // Second load: L1 hit, no new bus ops.
    std::uint64_t ops = sys->totalBusOps();
    got = 99;
    proc->load(5, [&](std::uint64_t t) { got = t; });
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(got, 0u);
    EXPECT_EQ(sys->totalBusOps(), ops);
    EXPECT_GE(proc->l1Hits(), 1u);
}

TEST_F(ProcessorTest, L1HitIsFast)
{
    proc->load(5, [](std::uint64_t) {});
    sys->drain();
    Tick t0 = sys->eventQueue().now();
    bool done = false;
    proc->load(5, [&](std::uint64_t) { done = true; });
    sys->drain();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys->eventQueue().now() - t0, 10u);  // l1 hitTicks
}

TEST_F(ProcessorTest, L2HitCostsDramLatency)
{
    proc->load(5, [](std::uint64_t) {});
    sys->drain();
    // Evict from L1 only, by loading a conflicting L1 set: L1 has 16
    // sets, so addr 5 + 16 maps to the same set... with 2 ways we need
    // two conflicting fills.
    proc->load(5 + 16, [](std::uint64_t) {});
    sys->drain();
    proc->load(5 + 32, [](std::uint64_t) {});
    sys->drain();
    Tick t0 = sys->eventQueue().now();
    bool done = false;
    proc->load(5, [&](std::uint64_t) { done = true; });
    sys->drain();
    EXPECT_TRUE(done);
    // L1 lookup + L2 DRAM access, no bus traffic.
    EXPECT_EQ(sys->eventQueue().now() - t0, 10u + 750u);
}

TEST_F(ProcessorTest, StoreThenRemoteLoadSeesValue)
{
    bool stored = false;
    proc->store(9, 1234, [&] { stored = true; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(stored);

    std::uint64_t got = 0;
    other->load(9, [&](std::uint64_t t) { got = t; });
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(got, 1234u);
}

TEST_F(ProcessorTest, InclusionPurgeOnRemoteWrite)
{
    std::uint64_t got = 0;
    proc->load(9, [&](std::uint64_t t) { got = t; });
    sys->drain();
    // Remote write invalidates the L2 copy and must purge the L1 too.
    other->store(9, 77, [] {});
    ASSERT_TRUE(sys->drain());
    got = 0;
    proc->load(9, [&](std::uint64_t t) { got = t; });
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(got, 77u);
}

TEST_F(ProcessorTest, StoreAllocateCompletes)
{
    bool done = false;
    proc->storeAllocate(30, 555, [&] { done = true; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(done);
    std::uint64_t got = 0;
    other->load(30, [&](std::uint64_t t) { got = t; });
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(got, 555u);
}

TEST_F(ProcessorTest, TsetAcquireAndReleaseRoundTrip)
{
    bool granted = false;
    proc->testAndSet(40, [&](bool g) { granted = g; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(granted);

    bool granted2 = true;
    other->testAndSet(40, [&](bool g) { granted2 = g; });
    ASSERT_TRUE(sys->drain());
    EXPECT_FALSE(granted2);

    bool released = false;
    proc->release(40, 0, [&] { released = true; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(released);

    other->testAndSet(40, [&](bool g) { granted2 = g; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(granted2);
}

TEST_F(ProcessorTest, ReleaseFallsBackAfterSteal)
{
    bool granted = false;
    proc->testAndSet(40, [&](bool g) { granted = g; });
    sys->drain();
    ASSERT_TRUE(granted);

    // A raw write steals the lock line (broken locking protocol).
    other->store(40, 7, [] {});
    sys->drain();

    // Release must still work via the write-and-unlock fallback.
    bool released = false;
    proc->release(40, 8, [&] { released = true; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(released);

    bool granted2 = false;
    other->testAndSet(40, [&](bool g) { granted2 = g; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(granted2);
}

TEST_F(ProcessorTest, LoadLineExposesLockWord)
{
    proc->testAndSet(40, [](bool) {});
    sys->drain();
    LineData seen;
    other->loadLine(40, [&](const LineData &d) { seen = d; });
    ASSERT_TRUE(sys->drain());
    EXPECT_EQ(seen.lock, 1u);
}

TEST_F(ProcessorTest, SyncAcquireGrantsWhenFree)
{
    bool granted = false;
    proc->syncAcquire(40, [&](bool g) { granted = g; });
    ASSERT_TRUE(sys->drain());
    EXPECT_TRUE(granted);
}
