/** @file
 * Unit and end-to-end tests for the transaction tracer: ring-buffer
 * semantics, export well-formedness, lifecycle reconstruction on a
 * real protocol run, fault events, and the interval metrics sampler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "fault/fault_injector.hh"
#include "trace/metrics_sampler.hh"
#include "trace/trace_event.hh"

using namespace mcube;

namespace
{

TraceEvent
ev(Tick tick, TracePhase phase, std::uint64_t seq)
{
    TraceEvent e;
    e.tick = tick;
    e.phase = phase;
    e.origin = 0;
    e.reqSeq = seq;
    return e;
}

/** Events with the given origin, chronological. */
std::vector<TraceEvent>
eventsFor(const TransactionTracer &tr, NodeId origin)
{
    std::vector<TraceEvent> out;
    for (std::size_t i = 0; i < tr.size(); ++i)
        if (tr.at(i).origin == origin)
            out.push_back(tr.at(i));
    return out;
}

bool
hasPhase(const std::vector<TraceEvent> &evs, TracePhase p)
{
    return std::any_of(evs.begin(), evs.end(), [&](const TraceEvent &e) {
        return e.phase == p;
    });
}

} // namespace

TEST(TransactionTracer, DisabledByDefault)
{
    EXPECT_EQ(TransactionTracer::active(), nullptr);
    // The macro's event expression must not be evaluated when no
    // tracer is active.
    int evals = 0;
    auto touch = [&] {
        ++evals;
        return TraceEvent{};
    };
    MCUBE_TRACE(touch());
    EXPECT_EQ(evals, 0);
}

TEST(TransactionTracer, ActivateDeactivate)
{
    TransactionTracer tr(8);
    EXPECT_EQ(TransactionTracer::active(), nullptr);
    tr.activate();
    EXPECT_EQ(TransactionTracer::active(), &tr);
    MCUBE_TRACE(ev(1, TracePhase::Issue, 1));
    EXPECT_EQ(tr.size(), 1u);
    tr.deactivate();
    EXPECT_EQ(TransactionTracer::active(), nullptr);
    MCUBE_TRACE(ev(2, TracePhase::Complete, 1));
    EXPECT_EQ(tr.size(), 1u);
}

TEST(TransactionTracer, DestructorDetaches)
{
    {
        TransactionTracer tr(8);
        tr.activate();
        EXPECT_EQ(TransactionTracer::active(), &tr);
    }
    EXPECT_EQ(TransactionTracer::active(), nullptr);
}

TEST(TransactionTracer, RingWraparoundKeepsNewest)
{
    TransactionTracer tr(4);
    for (std::uint64_t i = 1; i <= 10; ++i)
        tr.record(ev(i, TracePhase::Issue, i));

    EXPECT_EQ(tr.capacity(), 4u);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.recorded(), 10u);
    EXPECT_EQ(tr.overwritten(), 6u);
    // Oldest retained is event 7; order is chronological.
    for (std::size_t i = 0; i < tr.size(); ++i) {
        EXPECT_EQ(tr.at(i).tick, 7u + i);
        EXPECT_EQ(tr.at(i).reqSeq, 7u + i);
    }

    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.overwritten(), 0u);
}

TEST(TransactionTracer, PartialFillKeepsInsertionOrder)
{
    TransactionTracer tr(16);
    for (std::uint64_t i = 1; i <= 5; ++i)
        tr.record(ev(i * 10, TracePhase::BusGrant, i));
    EXPECT_EQ(tr.size(), 5u);
    EXPECT_EQ(tr.overwritten(), 0u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(tr.at(i).tick, (i + 1) * 10);
}

TEST(TransactionTracer, ChromeJsonIsBalanced)
{
    TransactionTracer tr(64);
    tr.record(ev(100, TracePhase::Issue, 1));
    tr.record(ev(250, TracePhase::BusGrant, 1));
    tr.record(ev(900, TracePhase::Complete, 1));

    std::ostringstream os;
    tr.exportChromeJson(os);
    const std::string s = os.str();

    EXPECT_EQ(s.front(), '{');
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    // One metadata naming event, three instants, and a derived
    // duration slice for the completed (origin, reqSeq) pair.
    EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_EQ(std::count(s.begin(), s.end(), '['),
              std::count(s.begin(), s.end(), ']'));
    // No trailing comma before a closing bracket.
    EXPECT_EQ(s.find(",]"), std::string::npos);
    EXPECT_EQ(s.find(",\n]"), std::string::npos);
}

TEST(TransactionTracer, TextExportOneLinePerEvent)
{
    TransactionTracer tr(64);
    tr.record(ev(100, TracePhase::Issue, 7));
    tr.record(ev(200, TracePhase::MemBounce, 7));

    std::ostringstream os;
    tr.exportText(os);
    const std::string s = os.str();
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
    EXPECT_NE(s.find("Issue"), std::string::npos);
    EXPECT_NE(s.find("MemBounce"), std::string::npos);
    EXPECT_NE(s.find("seq=7"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: a real protocol run must leave a reconstructible
// lifecycle in the buffer.
// ---------------------------------------------------------------------

namespace
{

SystemParams
smallParams(unsigned n = 4)
{
    SystemParams p;
    p.n = n;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {64, 4};
    return p;
}

} // namespace

TEST(TraceLifecycle, ReadModLifecycleIsComplete)
{
    MulticubeSystem sys(smallParams());
    TransactionTracer tr(1 << 14);
    tr.activate();

    bool done = false;
    SnoopController &writer = sys.node(1, 2);
    writer.write(8, 42, [&](const TxnResult &r) {
        done = true;
        EXPECT_TRUE(r.success);
    });
    ASSERT_TRUE(sys.drain());
    tr.deactivate();
    ASSERT_TRUE(done);

    auto evs = eventsFor(tr, writer.id());
    ASSERT_FALSE(evs.empty());

    // The READ-MOD miss must show the full sequence: issue, row-bus
    // grant+deliver, an MLT routing decision, memory service, and
    // completion — in causal order.
    EXPECT_TRUE(hasPhase(evs, TracePhase::Issue));
    EXPECT_TRUE(hasPhase(evs, TracePhase::BusGrant));
    EXPECT_TRUE(hasPhase(evs, TracePhase::BusDeliver));
    EXPECT_TRUE(hasPhase(evs, TracePhase::MltRoute));
    EXPECT_TRUE(hasPhase(evs, TracePhase::MemServe));
    EXPECT_TRUE(hasPhase(evs, TracePhase::Complete));

    EXPECT_EQ(evs.front().phase, TracePhase::Issue);
    // (The Complete is not necessarily the final origin-attributed
    // event — post-completion bus traffic still carries the origin.)
    auto cit = std::find_if(evs.begin(), evs.end(),
                            [](const TraceEvent &e) {
                                return e.phase == TracePhase::Complete;
                            });
    ASSERT_NE(cit, evs.end());
    EXPECT_EQ(cit->params, 1u);  // success
    EXPECT_GE(cit->aux, 0);      // latency in ticks
    EXPECT_EQ(cit->addr, evs.front().addr);

    // All events of the transaction share the correlation key.
    const std::uint64_t seq = evs.front().reqSeq;
    ASSERT_NE(seq, 0u);
    for (const TraceEvent &e : evs) {
        if (e.phase == TracePhase::Issue
            || e.phase == TracePhase::Complete) {
            EXPECT_EQ(e.reqSeq, seq);
        }
    }

    // Ticks are monotone within the buffer.
    for (std::size_t i = 1; i < tr.size(); ++i)
        EXPECT_LE(tr.at(i - 1).tick, tr.at(i).tick);

    // A write-miss to a freshly valid line inserts into the MLT; the
    // canonical (row 0) copy reports it exactly once per column.
    std::size_t inserts = 0;
    for (std::size_t i = 0; i < tr.size(); ++i)
        if (tr.at(i).phase == TracePhase::MltInsert)
            ++inserts;
    EXPECT_EQ(inserts, 1u);
}

TEST(TraceLifecycle, FaultInjectionLeavesTraceEvents)
{
    SystemParams p = smallParams();
    p.seed = 99;
    p.ctrl.requestTimeoutTicks = 500'000;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 32);
    FaultInjector injector(sys, FaultPlan::dropRequests(0.25, 7));

    TransactionTracer tr(1 << 15);
    tr.activate();

    unsigned completed = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        for (Addr a = 0; a < 512; a += 64) {
            sys.node(id).write(a + 8 * (id % 8), id,
                               [&](const TxnResult &) { ++completed; });
        }
    }
    ASSERT_TRUE(sys.drain(5'000'000'000ull));
    tr.deactivate();

    EXPECT_GT(injector.totalInjections(), 0u);
    EXPECT_GT(completed, 0u);
    EXPECT_EQ(checker.violations(), 0u);

    // Every injected fault shows up as an event attributing the drop
    // to a bus, and at least one watchdog recovery is visible.
    std::uint64_t faults = 0, reissues = 0;
    for (std::size_t i = 0; i < tr.size(); ++i) {
        const TraceEvent &e = tr.at(i);
        if (e.phase == TracePhase::FaultInject) {
            ++faults;
            EXPECT_EQ(e.comp, TraceComp::Fault);
        }
        if (e.phase == TracePhase::WatchdogReissue)
            ++reissues;
    }
    EXPECT_GT(faults, 0u);
    EXPECT_GT(reissues, 0u);

    // The export of a faulty run is still valid JSON structurally.
    std::ostringstream os;
    tr.exportChromeJson(os);
    const std::string s = os.str();
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_NE(s.find("FaultInject"), std::string::npos);
}

TEST(MetricsSamplerTest, EmitsParseableJsonl)
{
    MulticubeSystem sys(smallParams());
    std::ostringstream os;
    MetricsSampler sampler(sys, 10'000, os, /*include_stats=*/true);
    sampler.start();

    unsigned completed = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        sys.node(id).write(8 * id, id,
                           [&](const TxnResult &) { ++completed; });
    sys.run(100'000);
    sampler.stop();
    ASSERT_TRUE(sys.drain());

    EXPECT_GE(sampler.samplesTaken(), 5u);
    EXPECT_EQ(completed, sys.numNodes());

    // One balanced JSON object per line with the headline fields.
    std::istringstream lines(os.str());
    std::string line;
    unsigned nlines = 0;
    while (std::getline(lines, line)) {
        ++nlines;
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
                  std::count(line.begin(), line.end(), '}'));
        EXPECT_NE(line.find("\"tick\":"), std::string::npos);
        EXPECT_NE(line.find("\"row_util\":"), std::string::npos);
        EXPECT_NE(line.find("\"mlt_occupancy\":"), std::string::npos);
        EXPECT_NE(line.find("\"stats\":"), std::string::npos);
    }
    EXPECT_EQ(nlines, sampler.samplesTaken());
}

TEST(MetricsSamplerTest, StatsCanBeExcluded)
{
    MulticubeSystem sys(smallParams(2));
    std::ostringstream os;
    MetricsSampler sampler(sys, 5'000, os, /*include_stats=*/false);
    sampler.start();
    sys.run(20'000);
    sampler.stop();
    sys.drain();

    EXPECT_GE(sampler.samplesTaken(), 2u);
    EXPECT_EQ(os.str().find("\"stats\":"), std::string::npos);
}
