/** @file
 * Fuzz-campaign determinism across the snoop-filter toggle.
 *
 * The fast-reject filter is a pure simulator optimisation: for any
 * configuration — including fault injection and bus outages — the
 * whole-run result hash must be bit-identical with the filter enabled
 * and disabled. A divergence means a reject skipped a snoop that had
 * an observable effect, which is exactly the bug class the filter's
 * contract forbids.
 */

#include <gtest/gtest.h>

#include "fuzz/campaign.hh"

using namespace mcube;
using namespace mcube::fuzz;

TEST(FilterDeterminism, ResultHashIdenticalAcrossRandomConfigs)
{
    constexpr unsigned kRuns = 8;
    for (unsigned i = 0; i < kRuns; ++i) {
        RunConfig cfg = randomConfig(0xF117E8, i, false);

        cfg.snoopFilter = true;
        RunResult with = runOnce(cfg);
        cfg.snoopFilter = false;
        RunResult without = runOnce(cfg);

        EXPECT_EQ(with.hash, without.hash) << "run " << i;
        EXPECT_EQ(with.busOps, without.busOps) << "run " << i;
        EXPECT_EQ(with.opsIssued, without.opsIssued) << "run " << i;
        EXPECT_EQ(with.injections, without.injections) << "run " << i;
        EXPECT_EQ(with.endTick, without.endTick) << "run " << i;
        EXPECT_EQ(with.violations, without.violations) << "run " << i;
        EXPECT_EQ(with.readFailures, without.readFailures)
            << "run " << i;
        EXPECT_EQ(with.finished, without.finished) << "run " << i;
        EXPECT_EQ(with.drained, without.drained) << "run " << i;
        EXPECT_EQ(with.failure, without.failure) << "run " << i;
    }
}

TEST(FilterDeterminism, RoundTripsThroughJson)
{
    RunConfig cfg = randomConfig(42, 0, false);
    cfg.snoopFilter = false;
    Json j = toJson(cfg);
    RunConfig back;
    ASSERT_TRUE(runConfigFromJson(j, back));
    EXPECT_FALSE(back.snoopFilter);

    cfg.snoopFilter = true;
    ASSERT_TRUE(runConfigFromJson(toJson(cfg), back));
    EXPECT_TRUE(back.snoopFilter);
}
