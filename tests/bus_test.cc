/** @file Unit tests for the snooping bus substrate. */

#include <gtest/gtest.h>

#include <vector>

#include "bus/bus.hh"
#include "sim/event_queue.hh"

using namespace mcube;

namespace
{

/** Records everything it snoops. */
struct Recorder : BusAgent
{
    std::vector<BusOp> seen;
    std::vector<Tick> at;
    std::vector<bool> signals;
    EventQueue *eq = nullptr;
    bool assertSignal = false;

    bool
    supplyModifiedSignal(const BusOp &) override
    {
        return assertSignal;
    }

    void
    snoop(const BusOp &op, bool sig) override
    {
        seen.push_back(op);
        signals.push_back(sig);
        if (eq)
            at.push_back(eq->now());
    }
};

BusOp
mkOp(Addr addr, bool data = false)
{
    BusOp o;
    o.txn = TxnType::Read;
    o.params = op::Request;
    o.addr = addr;
    o.origin = 0;
    o.hasData = data;
    return o;
}

} // namespace

TEST(Bus, DeliversToAllAgentsIncludingSender)
{
    EventQueue eq;
    Bus bus("b", eq, BusParams{});
    Recorder a, b, c;
    unsigned slot_a = bus.attach(&a);
    bus.attach(&b);
    bus.attach(&c);

    bus.request(slot_a, mkOp(5));
    eq.run();

    ASSERT_EQ(a.seen.size(), 1u);
    ASSERT_EQ(b.seen.size(), 1u);
    ASSERT_EQ(c.seen.size(), 1u);
    EXPECT_EQ(a.seen[0].addr, 5u);
}

TEST(Bus, HeaderOnlyOccupancy)
{
    EventQueue eq;
    BusParams p;
    p.headerTicks = 50;
    p.wordTicks = 50;
    p.blockWords = 16;
    Bus bus("b", eq, p);
    Recorder a;
    a.eq = &eq;
    unsigned s = bus.attach(&a);

    bus.request(s, mkOp(1, false));
    eq.run();
    ASSERT_EQ(a.at.size(), 1u);
    EXPECT_EQ(a.at[0], 50u);
    EXPECT_EQ(bus.busyTicks(), 50u);
}

TEST(Bus, DataOccupancyIncludesBlockTransfer)
{
    EventQueue eq;
    BusParams p;
    p.headerTicks = 50;
    p.wordTicks = 50;
    p.blockWords = 16;
    Bus bus("b", eq, p);
    Recorder a;
    a.eq = &eq;
    unsigned s = bus.attach(&a);

    bus.request(s, mkOp(1, true));
    eq.run();
    ASSERT_EQ(a.at.size(), 1u);
    EXPECT_EQ(a.at[0], 50u + 16u * 50u);
    EXPECT_EQ(bus.busyTicks(), 850u);
}

TEST(Bus, CutThroughDeliversEarlyButHoldsWire)
{
    EventQueue eq;
    BusParams p;
    p.headerTicks = 50;
    p.wordTicks = 50;
    p.blockWords = 16;
    p.cutThrough = true;
    Bus bus("b", eq, p);
    Recorder a;
    a.eq = &eq;
    unsigned s = bus.attach(&a);

    bus.request(s, mkOp(1, true));
    bus.request(s, mkOp(2, false));
    eq.run();
    ASSERT_EQ(a.at.size(), 2u);
    EXPECT_EQ(a.at[0], 100u);          // header + first word
    EXPECT_EQ(a.at[1], 850u + 50u);    // after the full transfer
}

TEST(Bus, PieceTransferOccupancyAndEarlyDelivery)
{
    EventQueue eq;
    BusParams p;
    p.headerTicks = 50;
    p.wordTicks = 50;
    p.blockWords = 16;
    p.pieceWords = 4;
    Bus bus("b", eq, p);
    Recorder a;
    a.eq = &eq;
    unsigned s = bus.attach(&a);

    bus.request(s, mkOp(1, true));
    bus.request(s, mkOp(2, false));
    eq.run();
    ASSERT_EQ(a.at.size(), 2u);
    // Delivered after header + first 4-word piece.
    EXPECT_EQ(a.at[0], 50u + 4u * 50u);
    // Wire held for 4 headers + 16 words; next op delivered after.
    Tick occ = 4 * 50 + 16 * 50;
    EXPECT_EQ(a.at[1], occ + 50u);
    EXPECT_EQ(bus.busyTicks(), occ + 50u);
}

TEST(Bus, PieceLargerThanBlockBehavesLikeWhole)
{
    EventQueue eq;
    BusParams p;
    p.headerTicks = 50;
    p.wordTicks = 50;
    p.blockWords = 8;
    p.pieceWords = 16;
    Bus bus("b", eq, p);
    Recorder a;
    a.eq = &eq;
    unsigned s = bus.attach(&a);
    bus.request(s, mkOp(1, true));
    eq.run();
    ASSERT_EQ(a.at.size(), 1u);
    EXPECT_EQ(a.at[0], 50u + 8u * 50u);
}

TEST(Bus, FifoPerSlot)
{
    EventQueue eq;
    Bus bus("b", eq, BusParams{});
    Recorder a;
    unsigned s = bus.attach(&a);

    bus.request(s, mkOp(1));
    bus.request(s, mkOp(2));
    bus.request(s, mkOp(3));
    eq.run();
    ASSERT_EQ(a.seen.size(), 3u);
    EXPECT_EQ(a.seen[0].addr, 1u);
    EXPECT_EQ(a.seen[1].addr, 2u);
    EXPECT_EQ(a.seen[2].addr, 3u);
}

TEST(Bus, RoundRobinBetweenSlots)
{
    EventQueue eq;
    Bus bus("b", eq, BusParams{});
    Recorder a;
    unsigned s0 = bus.attach(&a);
    unsigned s1 = bus.attach(&a);
    unsigned s2 = bus.attach(&a);

    // Enqueue two ops per slot while the bus is busy with the first.
    bus.request(s0, mkOp(10));
    bus.request(s0, mkOp(11));
    bus.request(s1, mkOp(20));
    bus.request(s1, mkOp(21));
    bus.request(s2, mkOp(30));
    bus.request(s2, mkOp(31));
    eq.run();

    // 3 agents see 6 ops each? No: one agent attached 3 times sees
    // every delivery 3 times; use the per-delivery sequence instead.
    ASSERT_EQ(bus.opsDelivered(), 6u);
    std::vector<Addr> firsts;
    for (std::size_t i = 0; i < a.seen.size(); i += 3)
        firsts.push_back(a.seen[i].addr);
    EXPECT_EQ(firsts,
              (std::vector<Addr>{10, 20, 30, 11, 21, 31}));
}

TEST(Bus, WiredOrModifiedSignal)
{
    EventQueue eq;
    Bus bus("b", eq, BusParams{});
    Recorder a, b;
    unsigned s = bus.attach(&a);
    bus.attach(&b);

    b.assertSignal = true;
    bus.request(s, mkOp(1));
    eq.run();
    ASSERT_EQ(a.signals.size(), 1u);
    EXPECT_TRUE(a.signals[0]);

    b.assertSignal = false;
    bus.request(s, mkOp(2));
    eq.run();
    ASSERT_EQ(a.signals.size(), 2u);
    EXPECT_FALSE(a.signals[1]);
}

TEST(Bus, SerialNumbersAreUniqueAndMonotonic)
{
    EventQueue eq;
    Bus bus("b", eq, BusParams{});
    Recorder a;
    unsigned s = bus.attach(&a);
    bus.request(s, mkOp(1));
    bus.request(s, mkOp(2));
    eq.run();
    ASSERT_EQ(a.seen.size(), 2u);
    EXPECT_LT(a.seen[0].serial, a.seen[1].serial);
}

TEST(Bus, UtilizationReflectsBusyFraction)
{
    EventQueue eq;
    BusParams p;
    p.headerTicks = 100;
    Bus bus("b", eq, p);
    Recorder a;
    unsigned s = bus.attach(&a);
    bus.request(s, mkOp(1));
    eq.run();
    eq.runUntil(1000);
    EXPECT_NEAR(bus.utilization(), 0.1, 1e-9);
}

TEST(Bus, PendingOpsTracksQueue)
{
    EventQueue eq;
    Bus bus("b", eq, BusParams{});
    Recorder a;
    unsigned s = bus.attach(&a);
    EXPECT_EQ(bus.pendingOps(), 0u);
    bus.request(s, mkOp(1));
    bus.request(s, mkOp(2));
    EXPECT_EQ(bus.pendingOps(), 2u);
    eq.run();
    EXPECT_EQ(bus.pendingOps(), 0u);
}

TEST(Bus, ArbitrationOverheadDelaysDelivery)
{
    EventQueue eq;
    BusParams p;
    p.headerTicks = 50;
    p.arbTicks = 20;
    Bus bus("b", eq, p);
    Recorder a;
    a.eq = &eq;
    unsigned s = bus.attach(&a);
    bus.request(s, mkOp(1));
    eq.run();
    ASSERT_EQ(a.at.size(), 1u);
    EXPECT_EQ(a.at[0], 70u);
}

TEST(BusOp, ToStringNamesTypeAndParams)
{
    BusOp o;
    o.txn = TxnType::ReadMod;
    o.params = op::Request | op::Remove;
    o.addr = 77;
    o.origin = 3;
    std::string s = toString(o);
    EXPECT_NE(s.find("READMOD"), std::string::npos);
    EXPECT_NE(s.find("REQUEST"), std::string::npos);
    EXPECT_NE(s.find("REMOVE"), std::string::npos);
    EXPECT_NE(s.find("77"), std::string::npos);
}
