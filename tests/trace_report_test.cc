/** @file
 * Golden test for the trace_report CLI logic
 * (src/trace/trace_report.cc): a tiny traced protocol run is exported
 * in both TransactionTracer formats and driven through
 * tracereport::report over in-memory streams. The two formats carry
 * the same fields, so the reports must be byte-identical — and must
 * contain the latency summary and the top-K slowest-transaction
 * table the tool exists to print.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "core/system.hh"
#include "proc/mix_workload.hh"
#include "trace/trace_event.hh"
#include "trace/trace_report.hh"

using namespace mcube;

namespace
{

/** Trace a short fixed-seed mix run; fills @p tracer. */
void
tracedRun(TransactionTracer &tracer)
{
    tracer.activate();
    SystemParams sp;
    sp.n = 4;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = 25.0;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(500'000);
    wl.stop();
    sys.drain();
    tracer.deactivate();
}

std::string
reportOf(const std::string &exported, const tracereport::Options &opt,
         int expect_rc = 0)
{
    std::istringstream in(exported);
    std::ostringstream os;
    EXPECT_EQ(tracereport::report(in, os, opt), expect_rc);
    return os.str();
}

} // namespace

TEST(TraceReport, BothExportFormatsProduceTheSameReport)
{
    TransactionTracer tracer(1 << 16);
    tracedRun(tracer);
    ASSERT_GT(tracer.size(), 0u);

    std::ostringstream json, text;
    tracer.exportChromeJson(json);
    tracer.exportText(text);

    tracereport::Options opt;
    opt.topK = 3;
    const std::string fromJson = reportOf(json.str(), opt);
    const std::string fromText = reportOf(text.str(), opt);
    EXPECT_EQ(fromJson, fromText);

    // Headline lines: event/instance totals, per-phase counts, the
    // latency summary with the deep-tail percentile, and the top-K
    // table with per-hop breakdowns.
    EXPECT_NE(fromJson.find("trace_report: "), std::string::npos);
    EXPECT_NE(fromJson.find("transaction instances"), std::string::npos);
    EXPECT_NE(fromJson.find("phases: "), std::string::npos);
    EXPECT_NE(fromJson.find("Issue="), std::string::npos);
    EXPECT_NE(fromJson.find("Complete="), std::string::npos);
    EXPECT_NE(fromJson.find("latency ticks: n="), std::string::npos);
    EXPECT_NE(fromJson.find("p99.9="), std::string::npos);
    EXPECT_NE(fromJson.find("top 3 slowest transactions:"),
              std::string::npos);
    EXPECT_NE(fromJson.find("#1 node"), std::string::npos);
    EXPECT_NE(fromJson.find("#3 node"), std::string::npos);
    EXPECT_EQ(fromJson.find("#4 node"), std::string::npos);
    EXPECT_NE(fromJson.find("BusGrant"), std::string::npos);
}

TEST(TraceReport, TopKClampsToCompletedCount)
{
    TransactionTracer tracer(1 << 16);
    tracedRun(tracer);

    std::ostringstream text;
    tracer.exportText(text);

    tracereport::Options opt;
    opt.topK = 100000;
    const std::string report = reportOf(text.str(), opt);
    // "top N slowest" prints the clamped count, not the request.
    EXPECT_EQ(report.find("top 100000"), std::string::npos);
}

TEST(TraceReport, AddrFilterRestrictsInstances)
{
    TransactionTracer tracer(1 << 16);
    tracedRun(tracer);

    // Pick the address of some issued transaction from the text form.
    std::ostringstream text;
    tracer.exportText(text);
    std::istringstream scan(text.str());
    long long addr = -1;
    std::string line;
    while (std::getline(scan, line)) {
        auto pos = line.find(" Issue ");
        if (pos == std::string::npos)
            continue;
        pos = line.find("addr=");
        ASSERT_NE(pos, std::string::npos);
        addr = std::atoll(line.c_str() + pos + 5);
        break;
    }
    ASSERT_GE(addr, 0);

    tracereport::Options opt;
    opt.addrFilter = addr;
    const std::string report = reportOf(text.str(), opt);
    // Every reported transaction carries the filtered address.
    std::istringstream rep(report);
    while (std::getline(rep, line)) {
        if (line.rfind("#", 0) != 0)
            continue;
        EXPECT_NE(line.find("addr=" + std::to_string(addr)),
                  std::string::npos)
            << line;
    }
}

TEST(TraceReport, EmptyInputReturnsNonzero)
{
    tracereport::Options opt;
    std::istringstream in("");
    std::ostringstream os;
    EXPECT_EQ(tracereport::report(in, os, opt), 1);
}
