/** @file
 * Cross-feature interaction tests: writeback-continue semantics,
 * memory bounce loops, MLT overflow during lock ownership, drop
 * injection on the sync path, and an endurance run combining all
 * feature flags.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/random_tester.hh"

using namespace mcube;

namespace
{

struct Waiter
{
    bool done = false;
    TxnResult res;

    SnoopController::CompletionCb
    cb()
    {
        return [this](const TxnResult &r) {
            done = true;
            res = r;
        };
    }
};

} // namespace

TEST(Interaction, VictimWritebackDelaysButCompletesRequest)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.cache = {1, 1};
    MulticubeSystem sys(p);
    SnoopController &nd = sys.node(0, 0);

    Waiter w1;
    nd.write(1, 11, w1.cb());
    sys.drain();

    // The read of line 2 must first write back dirty line 1 (the
    // Appendix A "reserve space ... wait for continue" path).
    Waiter w2;
    std::uint64_t tok = 0;
    EXPECT_EQ(nd.read(2, tok, w2.cb()), AccessOutcome::Miss);
    ASSERT_TRUE(sys.drain());
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(nd.modeOf(2), Mode::Shared);
    EXPECT_EQ(nd.modeOf(1), Mode::Invalid);
    EXPECT_TRUE(sys.memory(1).lineValid(1));
    EXPECT_EQ(sys.memory(1).lineData(1).token, 11u);
    EXPECT_EQ(nd.victimWritebacks(), 1u);
}

TEST(Interaction, BounceLoopTerminatesUnderSustainedMisses)
{
    // Force the memory-bounce retry loop: drop every owned row
    // request so modified-line reads always mis-route to memory.
    SystemParams p;
    p.n = 4;
    p.ctrl.dropSignalProb = 0.8;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 16);

    SnoopController &owner = sys.node(1, 2);
    Waiter w1;
    owner.write(6, 66, w1.cb());
    sys.drain();

    for (unsigned i = 0; i < 6; ++i) {
        SnoopController &rd = sys.node((i * 7 + 1) % 16);
        if (rd.id() == owner.id() || rd.busy())
            continue;
        Waiter w;
        std::uint64_t tok = 0;
        auto out = rd.read(6, tok, w.cb());
        ASSERT_TRUE(sys.drain(500'000'000)) << "iteration " << i;
        if (out == AccessOutcome::Miss) {
            ASSERT_TRUE(w.done) << "iteration " << i;
            EXPECT_EQ(w.res.data.token, 66u);
        }
    }
    checker.fullSweep();
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(Interaction, MltOverflowEvictsHeldLockLineSafely)
{
    // A 2-entry MLT, with the lock line made LRU by later dirty
    // lines: the overflow writeback demotes the held lock line to
    // shared; release() then uses the refetch fallback.
    SystemParams p;
    p.n = 4;
    p.ctrl.mlt = {1, 2};
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 16);

    SnoopController &nd = sys.node(0, 0);
    Addr lock = 8;  // same column (0) so one table holds all three
    Waiter w1;
    bool g = false;
    nd.testAndSet(lock, g, w1.cb());
    sys.drain();
    ASSERT_TRUE(w1.done && w1.res.success);

    // Two more dirty lines in column 0 overflow the table.
    Waiter w2, w3;
    nd.write(12, 1, w2.cb());
    sys.drain();
    nd.write(16, 2, w3.cb());
    sys.drain();

    // The lock line was demoted; memory holds it with the lock set.
    EXPECT_EQ(nd.modeOf(lock), Mode::Shared);
    EXPECT_TRUE(sys.memory(0).lineValid(lock));
    EXPECT_EQ(sys.memory(0).lineData(lock).lock, 1u);

    // A competing tset must fail (the lock is still held)...
    Waiter w4;
    bool g2 = false;
    sys.node(3, 3).testAndSet(lock, g2, w4.cb());
    sys.drain();
    ASSERT_TRUE(w4.done);
    EXPECT_FALSE(w4.res.success);

    // ...until the holder releases through the fallback, after which
    // acquisition succeeds.
    EXPECT_FALSE(nd.release(lock, 5));  // not modified: caller must
                                        // fall back (Processor does
                                        // this automatically)
    Waiter w5;
    nd.write(lock, 5, w5.cb());
    sys.drain();
    nd.forceUnlock(lock);
    Waiter w6;
    sys.node(3, 3).testAndSet(lock, g2, w6.cb());
    sys.drain();
    ASSERT_TRUE(w6.done);
    EXPECT_TRUE(w6.res.success);
    checker.fullSweep();
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(Interaction, EnduranceAllFeaturesOn)
{
    SystemParams p;
    p.n = 5;
    p.ctrl.cache = {16, 4};
    p.ctrl.mlt = {8, 4};
    p.ctrl.enableSnarfing = true;
    p.ctrl.dropSignalProb = 0.1;
    p.ctrl.allocateEarlyWrite = true;
    p.bus.cutThrough = true;
    p.seed = 20260704;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    RandomTesterParams tp;
    tp.opsPerNode = 300;
    tp.numDataLines = 30;
    tp.pTset = 0.15;
    tp.pSyncOfLocks = 0.5;
    tp.pAllocate = 0.1;
    tp.chaos = true;
    tp.seed = 99991;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(8'000'000'000ull);
    ASSERT_TRUE(tester.finished());
    ASSERT_TRUE(sys.drain());
    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);
    for (const auto &s : tester.failures())
        ADD_FAILURE() << s;
    EXPECT_EQ(tester.readFailures(), 0u);
    EXPECT_GT(tester.opsIssued(), 25u * 300u);
}
