/** @file Unit tests for the deterministic PCG32 generator. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

using namespace mcube;

TEST(Random, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next32() == b.next32())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Random, BelowCoversRange)
{
    Random r(7);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Random, RangeInclusive)
{
    Random r(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        lo = lo || v == 5;
        hi = hi || v == 9;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ExponentialHasRequestedMean)
{
    Random r(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Random, ChanceExtremes)
{
    Random r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, ForkProducesIndependentStream)
{
    Random a(19);
    Random child = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next32() == child.next32())
            ++same;
    EXPECT_LT(same, 4);
}
