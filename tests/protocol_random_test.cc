/** @file
 * Randomised property tests: heavy contended random traffic with the
 * invariant checker attached, parameterised over grid size, seed and
 * feature flags.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/random_tester.hh"

using namespace mcube;

namespace
{

struct Flavor
{
    unsigned n;
    std::uint64_t seed;
    bool snarf;
    double drop;
    double tset;
    bool chaos;
    bool earlyAlloc = false;
    bool cutThrough = false;
    unsigned pieceWords = 0;
};

std::string
flavorName(const ::testing::TestParamInfo<Flavor> &info)
{
    const Flavor &f = info.param;
    std::string s = "n" + std::to_string(f.n) + "_s"
                  + std::to_string(f.seed);
    if (f.snarf)
        s += "_snarf";
    if (f.drop > 0)
        s += "_drop";
    if (f.tset > 0)
        s += "_locks";
    if (f.chaos)
        s += "_chaos";
    if (f.earlyAlloc)
        s += "_early";
    if (f.cutThrough)
        s += "_cut";
    if (f.pieceWords > 0)
        s += "_pieces";
    return s;
}

} // namespace

class RandomTraffic : public ::testing::TestWithParam<Flavor>
{
};

TEST_P(RandomTraffic, InvariantsHoldAndReadsAreCoherent)
{
    const Flavor &f = GetParam();

    SystemParams p;
    p.n = f.n;
    p.ctrl.cache = {32, 4};
    p.ctrl.mlt = {32, 4};
    p.ctrl.enableSnarfing = f.snarf;
    p.ctrl.dropSignalProb = f.drop;
    p.ctrl.allocateEarlyWrite = f.earlyAlloc;
    p.bus.cutThrough = f.cutThrough;
    p.bus.pieceWords = f.pieceWords;
    p.seed = f.seed;

    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 32);

    RandomTesterParams tp;
    tp.opsPerNode = 150;
    tp.pTset = f.tset;
    tp.seed = f.seed * 77 + 1;
    tp.chaos = f.chaos;
    RandomTester tester(sys, checker, tp);
    tester.start();

    // Generous bound: every op takes at most a few microseconds.
    sys.eventQueue().runUntil(400'000'000);
    ASSERT_TRUE(tester.finished())
        << "tester did not finish (deadlock/livelock?) — ops issued: "
        << tester.opsIssued();
    ASSERT_TRUE(sys.drain());
    checker.fullSweep();

    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);

    for (const auto &s : tester.failures())
        ADD_FAILURE() << s;
    EXPECT_EQ(tester.readFailures(), 0u);
    EXPECT_GT(tester.readsChecked(), 0u);
    if (f.tset > 0) {
        EXPECT_GT(tester.locksTaken(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Values(
        Flavor{2, 1, false, 0.0, 0.0, false},
        Flavor{2, 2, false, 0.0, 0.15, false},
        Flavor{3, 3, false, 0.0, 0.15, false},
        Flavor{4, 4, false, 0.0, 0.0, false},
        Flavor{4, 5, false, 0.0, 0.15, false},
        Flavor{4, 6, true, 0.0, 0.15, false},
        Flavor{4, 7, false, 0.2, 0.0, false},
        Flavor{4, 8, true, 0.2, 0.15, false},
        Flavor{5, 9, false, 0.0, 0.2, false},
        Flavor{4, 10, false, 0.0, 0.2, true},
        Flavor{6, 11, true, 0.1, 0.1, false},
        Flavor{8, 12, false, 0.0, 0.1, false},
        Flavor{4, 13, false, 0.0, 0.1, false, true},
        Flavor{4, 14, true, 0.1, 0.1, true, true},
        Flavor{4, 15, false, 0.0, 0.1, false, false, true},
        Flavor{4, 16, false, 0.0, 0.1, false, false, false, 4},
        Flavor{4, 17, true, 0.1, 0.15, false, true, true, 4}),
    flavorName);

/** SYNC queue locks under random traffic — and under chaos (plain
 *  writes stomping lock lines), which must degenerate per Section 4
 *  without deadlock or value loss. */
TEST(RandomTrafficSync, QueueLocksSurviveRandomTraffic)
{
    SystemParams p;
    p.n = 4;
    p.seed = 71;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 32);
    RandomTesterParams tp;
    tp.opsPerNode = 150;
    tp.pTset = 0.25;
    tp.pSyncOfLocks = 0.6;
    tp.seed = 72;
    RandomTester tester(sys, checker, tp);
    tester.start();
    sys.eventQueue().runUntil(2'000'000'000ull);
    ASSERT_TRUE(tester.finished()) << "sync queue deadlocked";
    ASSERT_TRUE(sys.drain());
    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);
    EXPECT_EQ(tester.readFailures(), 0u);
    EXPECT_GT(tester.locksTaken(), 0u);
}

TEST(RandomTrafficSync, QueueLocksSurviveChaos)
{
    for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
        SystemParams p;
        p.n = 4;
        p.seed = seed;
        MulticubeSystem sys(p);
        CoherenceChecker checker(sys, 32);
        RandomTesterParams tp;
        tp.opsPerNode = 120;
        tp.pTset = 0.2;
        tp.pSyncOfLocks = 0.5;
        tp.chaos = true;  // plain writes may hit lock lines
        tp.seed = seed;
        RandomTester tester(sys, checker, tp);
        tester.start();
        sys.eventQueue().runUntil(3'000'000'000ull);
        ASSERT_TRUE(tester.finished())
            << "seed " << seed << ": chaos sync deadlock";
        ASSERT_TRUE(sys.drain());
        checker.fullSweep();
        for (const auto &s : checker.report())
            ADD_FAILURE() << s;
        EXPECT_EQ(checker.violations(), 0u) << "seed " << seed;
        EXPECT_EQ(tester.readFailures(), 0u) << "seed " << seed;
    }
}

/** Tiny caches + tiny MLTs: constant replacement and overflow traffic
 *  stress the writeback and overflow paths. */
TEST(RandomTrafficStress, TinyStructuresStayCoherent)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.cache = {4, 2};
    p.ctrl.mlt = {2, 2};
    p.seed = 99;

    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 16);

    RandomTesterParams tp;
    tp.opsPerNode = 120;
    tp.numDataLines = 40;
    tp.pTset = 0.0;
    tp.seed = 1234;
    RandomTester tester(sys, checker, tp);
    tester.start();

    sys.eventQueue().runUntil(400'000'000);
    ASSERT_TRUE(tester.finished());
    ASSERT_TRUE(sys.drain());
    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);
    EXPECT_EQ(tester.readFailures(), 0u);
}

/** Determinism: identical configuration twice gives identical op
 *  counts and golden state. */
TEST(RandomTrafficDeterminism, SameSeedSameOutcome)
{
    auto run = [](std::uint64_t seed) {
        SystemParams p;
        p.n = 4;
        p.seed = seed;
        MulticubeSystem sys(p);
        CoherenceChecker checker(sys, 0);
        RandomTesterParams tp;
        tp.opsPerNode = 80;
        tp.seed = seed + 5;
        RandomTester tester(sys, checker, tp);
        tester.start();
        sys.eventQueue().runUntil(400'000'000);
        EXPECT_TRUE(tester.finished());
        return std::tuple{sys.totalBusOps(), checker.goldenToken(3),
                          sys.eventQueue().eventsExecuted()};
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}
