/** @file Unit tests for the set-associative cache array. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/cache_array.hh"

using namespace mcube;

namespace
{

LineData
tok(std::uint64_t t)
{
    LineData d;
    d.token = t;
    return d;
}

/** The set index is mixed (see CacheArray::setOf), so addresses that
 *  share a set are found by probing, not assumed from addr % sets. */
std::vector<Addr>
collidingAddrs(const CacheArray &c, std::size_t count)
{
    std::vector<Addr> out{0};
    std::size_t set = c.setOf(0);
    for (Addr a = 1; out.size() < count; ++a)
        if (c.setOf(a) == set)
            out.push_back(a);
    return out;
}

Addr
addrOutsideSet(const CacheArray &c, std::size_t set)
{
    for (Addr a = 0;; ++a)
        if (c.setOf(a) != set)
            return a;
}

} // namespace

TEST(CacheArray, FindMissesWhenEmpty)
{
    CacheArray c({4, 2});
    EXPECT_EQ(c.find(3), nullptr);
    EXPECT_EQ(c.capacity(), 8u);
}

TEST(CacheArray, FillThenFind)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(5);
    c.fill(slot, 5, Mode::Shared, tok(99));
    CacheLine *l = c.find(5);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->mode, Mode::Shared);
    EXPECT_EQ(l->data.token, 99u);
}

TEST(CacheArray, InvalidLineKeepsTagForSnarfing)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(5);
    c.fill(slot, 5, Mode::Shared, tok(1));
    c.find(5)->mode = Mode::Invalid;
    CacheLine *l = c.find(5);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->mode, Mode::Invalid);
    EXPECT_TRUE(l->tagValid);
}

TEST(CacheArray, AllocSlotReturnsMatchingLineFirst)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(5);
    c.fill(slot, 5, Mode::Modified, tok(1));
    EXPECT_EQ(c.allocSlot(5), c.find(5));
}

TEST(CacheArray, AllocSlotPrefersUntaggedWay)
{
    CacheArray c({4, 2});
    auto same = collidingAddrs(c, 2);
    c.fill(c.allocSlot(same[0]), same[0], Mode::Shared, tok(1));
    CacheLine *slot = c.allocSlot(same[1]);
    EXPECT_FALSE(slot->tagValid);
}

TEST(CacheArray, AllocSlotEvictsLru)
{
    CacheArray c({4, 2});
    // Fill both ways of one set with the first two colliders.
    auto same = collidingAddrs(c, 3);
    c.fill(c.allocSlot(same[0]), same[0], Mode::Shared, tok(1));
    c.fill(c.allocSlot(same[1]), same[1], Mode::Shared, tok(5));
    // Touch the first, so the second is LRU.
    c.touch(same[0]);
    CacheLine *victim = c.allocSlot(same[2]);
    ASSERT_TRUE(victim->tagValid);
    EXPECT_EQ(victim->addr, same[1]);
}

TEST(CacheArray, TouchUpdatesLru)
{
    CacheArray c({1, 3});
    c.fill(c.allocSlot(0), 0, Mode::Shared, tok(0));
    c.fill(c.allocSlot(1), 1, Mode::Shared, tok(1));
    c.fill(c.allocSlot(2), 2, Mode::Shared, tok(2));
    c.touch(0);
    c.touch(1);
    // 2 is now LRU.
    EXPECT_EQ(c.allocSlot(3)->addr, 2u);
}

TEST(CacheArray, CountModeCountsOnlyTagged)
{
    CacheArray c({4, 2});
    c.fill(c.allocSlot(1), 1, Mode::Modified, tok(1));
    c.fill(c.allocSlot(2), 2, Mode::Shared, tok(2));
    c.fill(c.allocSlot(3), 3, Mode::Modified, tok(3));
    EXPECT_EQ(c.countMode(Mode::Modified), 2u);
    EXPECT_EQ(c.countMode(Mode::Shared), 1u);
    EXPECT_EQ(c.countMode(Mode::Invalid), 0u);
}

TEST(CacheArray, ForEachVisitsAllTagged)
{
    CacheArray c({4, 2});
    c.fill(c.allocSlot(1), 1, Mode::Shared, tok(1));
    c.fill(c.allocSlot(6), 6, Mode::Modified, tok(6));
    int n = 0;
    c.forEach([&](CacheLine &l) {
        ++n;
        EXPECT_TRUE(l.addr == 1 || l.addr == 6);
    });
    EXPECT_EQ(n, 2);
}

TEST(CacheArray, FillClearsSyncTail)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(1);
    c.fill(slot, 1, Mode::Reserved, tok(0));
    slot->syncTail = true;
    c.fill(slot, 1, Mode::Modified, tok(2));
    EXPECT_FALSE(c.find(1)->syncTail);
}

TEST(CacheArray, SetsAreIndependent)
{
    CacheArray c({4, 1});
    auto same = collidingAddrs(c, 2);
    Addr other = addrOutsideSet(c, c.setOf(same[0]));
    c.fill(c.allocSlot(same[0]), same[0], Mode::Shared, tok(1));
    c.fill(c.allocSlot(other), other, Mode::Shared, tok(2));
    // A conflicting fill evicts only its own set's occupant.
    c.fill(c.allocSlot(same[1]), same[1], Mode::Shared, tok(3));
    EXPECT_EQ(c.find(same[0]), nullptr);
    ASSERT_NE(c.find(other), nullptr);
    EXPECT_EQ(c.find(other)->data.token, 2u);
    ASSERT_NE(c.find(same[1]), nullptr);
}

TEST(CacheArray, SetIndexDecorrelatesHomeColumnInterleave)
{
    // Home columns interleave lines as addr % n, and an n x n system
    // tends to be configured with power-of-two set counts; a plain
    // addr % numSets index correlates with the interleave, so traffic
    // homed on one column would concentrate in a fraction of the
    // sets. The mixed index must spread a stride-n stream over most
    // sets of a direct-mapped array.
    CacheArray c({64, 1});
    std::set<std::size_t> sets;
    for (Addr a = 0; a < 64 * 4; a += 4)  // 64 lines homed on column 0
        sets.insert(c.setOf(a));
    // Unmixed, a stride-4 stream reaches only 16 of 64 sets; a
    // well-mixed one covers ~63% distinct. Require well above the
    // aliased count.
    EXPECT_GT(sets.size(), 32u);
}
