/** @file Unit tests for the set-associative cache array. */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"

using namespace mcube;

namespace
{

LineData
tok(std::uint64_t t)
{
    LineData d;
    d.token = t;
    return d;
}

} // namespace

TEST(CacheArray, FindMissesWhenEmpty)
{
    CacheArray c({4, 2});
    EXPECT_EQ(c.find(3), nullptr);
    EXPECT_EQ(c.capacity(), 8u);
}

TEST(CacheArray, FillThenFind)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(5);
    c.fill(slot, 5, Mode::Shared, tok(99));
    CacheLine *l = c.find(5);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->mode, Mode::Shared);
    EXPECT_EQ(l->data.token, 99u);
}

TEST(CacheArray, InvalidLineKeepsTagForSnarfing)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(5);
    c.fill(slot, 5, Mode::Shared, tok(1));
    c.find(5)->mode = Mode::Invalid;
    CacheLine *l = c.find(5);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->mode, Mode::Invalid);
    EXPECT_TRUE(l->tagValid);
}

TEST(CacheArray, AllocSlotReturnsMatchingLineFirst)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(5);
    c.fill(slot, 5, Mode::Modified, tok(1));
    EXPECT_EQ(c.allocSlot(5), c.find(5));
}

TEST(CacheArray, AllocSlotPrefersUntaggedWay)
{
    CacheArray c({4, 2});
    // Addrs 1 and 5 share set 1 (numSets = 4).
    c.fill(c.allocSlot(1), 1, Mode::Shared, tok(1));
    CacheLine *slot = c.allocSlot(5);
    EXPECT_FALSE(slot->tagValid);
}

TEST(CacheArray, AllocSlotEvictsLru)
{
    CacheArray c({4, 2});
    // Fill both ways of set 1: addrs 1 and 5.
    c.fill(c.allocSlot(1), 1, Mode::Shared, tok(1));
    c.fill(c.allocSlot(5), 5, Mode::Shared, tok(5));
    // Touch 1, so 5 is LRU.
    c.touch(1);
    CacheLine *victim = c.allocSlot(9);
    ASSERT_TRUE(victim->tagValid);
    EXPECT_EQ(victim->addr, 5u);
}

TEST(CacheArray, TouchUpdatesLru)
{
    CacheArray c({1, 3});
    c.fill(c.allocSlot(0), 0, Mode::Shared, tok(0));
    c.fill(c.allocSlot(1), 1, Mode::Shared, tok(1));
    c.fill(c.allocSlot(2), 2, Mode::Shared, tok(2));
    c.touch(0);
    c.touch(1);
    // 2 is now LRU.
    EXPECT_EQ(c.allocSlot(3)->addr, 2u);
}

TEST(CacheArray, CountModeCountsOnlyTagged)
{
    CacheArray c({4, 2});
    c.fill(c.allocSlot(1), 1, Mode::Modified, tok(1));
    c.fill(c.allocSlot(2), 2, Mode::Shared, tok(2));
    c.fill(c.allocSlot(3), 3, Mode::Modified, tok(3));
    EXPECT_EQ(c.countMode(Mode::Modified), 2u);
    EXPECT_EQ(c.countMode(Mode::Shared), 1u);
    EXPECT_EQ(c.countMode(Mode::Invalid), 0u);
}

TEST(CacheArray, ForEachVisitsAllTagged)
{
    CacheArray c({4, 2});
    c.fill(c.allocSlot(1), 1, Mode::Shared, tok(1));
    c.fill(c.allocSlot(6), 6, Mode::Modified, tok(6));
    int n = 0;
    c.forEach([&](CacheLine &l) {
        ++n;
        EXPECT_TRUE(l.addr == 1 || l.addr == 6);
    });
    EXPECT_EQ(n, 2);
}

TEST(CacheArray, FillClearsSyncTail)
{
    CacheArray c({4, 2});
    CacheLine *slot = c.allocSlot(1);
    c.fill(slot, 1, Mode::Reserved, tok(0));
    slot->syncTail = true;
    c.fill(slot, 1, Mode::Modified, tok(2));
    EXPECT_FALSE(c.find(1)->syncTail);
}

TEST(CacheArray, SetsAreIndependent)
{
    CacheArray c({4, 1});
    c.fill(c.allocSlot(0), 0, Mode::Shared, tok(0));
    c.fill(c.allocSlot(1), 1, Mode::Shared, tok(1));
    c.fill(c.allocSlot(2), 2, Mode::Shared, tok(2));
    c.fill(c.allocSlot(3), 3, Mode::Shared, tok(3));
    for (Addr a = 0; a < 4; ++a) {
        ASSERT_NE(c.find(a), nullptr);
        EXPECT_EQ(c.find(a)->data.token, a);
    }
    // Address 4 maps to set 0 and evicts address 0 only.
    c.fill(c.allocSlot(4), 4, Mode::Shared, tok(4));
    EXPECT_EQ(c.find(0), nullptr);
    EXPECT_NE(c.find(1), nullptr);
}
