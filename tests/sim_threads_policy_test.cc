/** @file
 * The --sim-threads fallback policy (sim/sim_threads_policy.hh).
 *
 * sweep_cli promises that when an incompatible flag forces the
 * parallel engine off, it says so on stderr with one line *naming the
 * flag* — a silent fallback would let a user benchmark the sequential
 * engine believing it was sharded. The policy (and its exact warning
 * text) lives in the library precisely so this test can pin it.
 *
 * Equally important is what must NOT force the fallback: profiling
 * and tracing are lane-aware (per-lane shards, canonical fold at
 * window boundaries) and compose with --sim-threads, so the policy
 * has no knob for them at all.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/sim_threads_policy.hh"

using namespace mcube;

namespace
{

bool
mentions(const std::string &line, const std::string &needle)
{
    return line.find(needle) != std::string::npos;
}

} // namespace

TEST(SimThreadsPolicy, CleanRequestStands)
{
    SimThreadsRequest req;
    req.simThreads = 4;
    const SimThreadsDecision d = resolveSimThreads(req);
    EXPECT_EQ(d.simThreads, 4u);
    EXPECT_FALSE(d.forced());
    EXPECT_TRUE(d.warnings.empty());
}

TEST(SimThreadsPolicy, SequentialRequestNeverWarns)
{
    // --sim-threads=0 with every incompatible feature on: nothing was
    // taken away from the user, so nothing is worth a warning line.
    SimThreadsRequest req;
    req.simThreads = 0;
    req.metricsSampling = true;
    req.faultDrop = true;
    req.faultPlan = true;
    const SimThreadsDecision d = resolveSimThreads(req);
    EXPECT_EQ(d.simThreads, 0u);
    EXPECT_FALSE(d.forced());
}

TEST(SimThreadsPolicy, MetricsSamplingForcesAndNamesItsFlag)
{
    SimThreadsRequest req;
    req.simThreads = 4;
    req.metricsSampling = true;
    const SimThreadsDecision d = resolveSimThreads(req);
    EXPECT_EQ(d.simThreads, 0u);
    EXPECT_TRUE(d.forced());
    ASSERT_EQ(d.warnings.size(), 1u);
    EXPECT_TRUE(mentions(d.warnings[0], "--metrics-out"))
        << d.warnings[0];
    EXPECT_TRUE(mentions(d.warnings[0], "forcing --sim-threads=0"))
        << d.warnings[0];
}

TEST(SimThreadsPolicy, FaultDropForcesAndNamesItsFlag)
{
    SimThreadsRequest req;
    req.simThreads = 2;
    req.faultDrop = true;
    const SimThreadsDecision d = resolveSimThreads(req);
    EXPECT_EQ(d.simThreads, 0u);
    ASSERT_EQ(d.warnings.size(), 1u);
    EXPECT_TRUE(mentions(d.warnings[0], "--fault-drop"))
        << d.warnings[0];
    EXPECT_TRUE(mentions(d.warnings[0], "forcing --sim-threads=0"))
        << d.warnings[0];
}

TEST(SimThreadsPolicy, FaultPlanForcesAndNamesItsFlag)
{
    SimThreadsRequest req;
    req.simThreads = 8;
    req.faultPlan = true;
    const SimThreadsDecision d = resolveSimThreads(req);
    EXPECT_EQ(d.simThreads, 0u);
    ASSERT_EQ(d.warnings.size(), 1u);
    EXPECT_TRUE(mentions(d.warnings[0], "--fault-plan"))
        << d.warnings[0];
    EXPECT_TRUE(mentions(d.warnings[0], "forcing --sim-threads=0"))
        << d.warnings[0];
}

TEST(SimThreadsPolicy, EachForcingFlagGetsItsOwnLine)
{
    // Several incompatible flags at once: the user should see every
    // reason, one line each, not just the first one found.
    SimThreadsRequest req;
    req.simThreads = 4;
    req.metricsSampling = true;
    req.faultDrop = true;
    req.faultPlan = true;
    const SimThreadsDecision d = resolveSimThreads(req);
    EXPECT_EQ(d.simThreads, 0u);
    ASSERT_EQ(d.warnings.size(), 3u);
    EXPECT_TRUE(mentions(d.warnings[0], "--metrics-out"));
    EXPECT_TRUE(mentions(d.warnings[1], "--fault-drop"));
    EXPECT_TRUE(mentions(d.warnings[2], "--fault-plan"));
    for (const std::string &w : d.warnings)
        EXPECT_TRUE(mentions(w, "forcing --sim-threads=0")) << w;
}

TEST(SimThreadsPolicy, NoWarningEverMentionsProfilingOrTracing)
{
    // Lane-aware observers compose with the parallel engine, so the
    // policy has no knob for them: even with every forcing flag on,
    // no warning may blame --profile-out or --trace-out. If a forcing
    // knob for profiling or tracing ever reappears, this test is
    // where that decision has to be revisited deliberately.
    SimThreadsRequest req;
    req.simThreads = 4;
    req.metricsSampling = true;
    req.faultDrop = true;
    req.faultPlan = true;
    const SimThreadsDecision d = resolveSimThreads(req);
    for (const std::string &w : d.warnings) {
        EXPECT_FALSE(mentions(w, "profile")) << w;
        EXPECT_FALSE(mentions(w, "trace")) << w;
    }
}
