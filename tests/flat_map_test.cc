/** @file
 * Unit and differential tests for the open-addressing FlatMap.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/random.hh"

using namespace mcube;

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_FALSE(m.contains(7));
}

TEST(FlatMap, RefDefaultConstructsLikeOperatorBracket)
{
    FlatMap<std::uint64_t, unsigned> m;
    unsigned &v = m.ref(42);
    EXPECT_EQ(v, 0u);
    ++v;
    EXPECT_EQ(*m.find(42), 1u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, PutOverwrites)
{
    FlatMap<std::uint64_t, int> m;
    m.put(5, 10);
    m.put(5, 20);
    ASSERT_NE(m.find(5), nullptr);
    EXPECT_EQ(*m.find(5), 20);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseReportsPresence)
{
    FlatMap<std::uint64_t, int> m;
    m.put(1, 1);
    EXPECT_TRUE(m.erase(1));
    EXPECT_FALSE(m.erase(1));
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, PairKeys)
{
    FlatMap<std::pair<std::uint32_t, std::uint64_t>, unsigned> m;
    m.ref({3, 900}) = 7;
    m.ref({4, 900}) = 8;
    EXPECT_EQ(*m.find({3, 900}), 7u);
    EXPECT_EQ(*m.find({4, 900}), 8u);
    EXPECT_TRUE(m.erase({3, 900}));
    EXPECT_EQ(m.find({3, 900}), nullptr);
    EXPECT_EQ(*m.find({4, 900}), 8u);
}

TEST(FlatMap, HighWaterTracksPeakNotCurrent)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 10; ++k)
        m.put(k, 1);
    for (std::uint64_t k = 0; k < 10; ++k)
        m.erase(k);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.highWater(), 10u);
}

TEST(FlatMap, GrowsPastInitialCapacity)
{
    FlatMap<std::uint64_t, std::uint64_t> m(16);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.put(k, k * 3);
    EXPECT_EQ(m.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), k * 3);
    }
}

TEST(FlatMap, ForEachVisitsEveryLiveEntry)
{
    FlatMap<std::uint64_t, int> m;
    m.put(1, 10);
    m.put(2, 20);
    m.put(3, 30);
    m.erase(2);
    std::unordered_map<std::uint64_t, int> seen;
    m.forEach([&](std::uint64_t k, int v) { seen[k] = v; });
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[1], 10);
    EXPECT_EQ(seen[3], 30);
}

TEST(FlatMap, ClearEmptiesWithoutShrinking)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 50; ++k)
        m.put(k, 1);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(10), nullptr);
    m.put(10, 2);
    EXPECT_EQ(*m.find(10), 2);
}

// Backward-shift deletion is the easiest part to get subtly wrong:
// drive a long random insert/erase/lookup sequence against
// std::unordered_map. Keys are drawn from a small range so probe
// clusters form and deletions regularly punch holes inside them.
TEST(FlatMap, DifferentialAgainstUnorderedMap)
{
    FlatMap<std::uint64_t, std::uint64_t> m(16);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Random rng(12345);

    for (int step = 0; step < 20000; ++step) {
        std::uint64_t k = rng.below(200);
        switch (rng.below(4)) {
          case 0:
          case 1: {
            std::uint64_t v = rng.below(1u << 30);
            m.put(k, v);
            ref[k] = v;
            break;
          }
          case 2:
            ASSERT_EQ(m.erase(k), ref.erase(k) > 0) << "step " << step;
            break;
          default: {
            const std::uint64_t *v = m.find(k);
            auto it = ref.find(k);
            ASSERT_EQ(v != nullptr, it != ref.end()) << "step " << step;
            if (v) {
                ASSERT_EQ(*v, it->second) << "step " << step;
            }
            break;
          }
        }
        if (step % 512 == 0) {
            ASSERT_EQ(m.size(), ref.size()) << "step " << step;
            std::size_t visited = 0;
            m.forEach([&](std::uint64_t key, std::uint64_t value) {
                ++visited;
                auto it = ref.find(key);
                ASSERT_NE(it, ref.end()) << key;
                ASSERT_EQ(value, it->second) << key;
            });
            ASSERT_EQ(visited, ref.size()) << "step " << step;
        }
    }
}
