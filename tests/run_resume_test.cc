/** @file
 * Campaign-level resilience tests: the resume determinism contract
 * (interrupted + resumed == uninterrupted, by campaignHash), a real
 * SIGTERM drain through the GracefulShutdown latch, planted-crash
 * triage into a replayable .crash.json artifact, isolated-vs-inline
 * hash equality, and journal campaign-key refusal.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "fuzz/campaign.hh"
#include "run/shutdown.hh"
#include "run/supervisor.hh"
#include "sim/json.hh"

using namespace mcube;
using namespace mcube::fuzz;

namespace
{

/** Fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &stem)
{
    std::string dir = ::testing::TempDir() + "mcube_" + stem;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Small, fast campaign shape shared by the tests; runs=5 with this
 *  seed finishes in seconds and contains only passing cases. */
CampaignOptions
baseOptions(const std::string &outDir)
{
    CampaignOptions opt;
    opt.seed = 7;
    opt.runs = 5;
    opt.shrink = false;
    opt.outDir = outDir;
    return opt;
}

} // namespace

TEST(CampaignResume, InterruptedPlusResumedEqualsUninterrupted)
{
    const std::string dir = scratchDir("resume_basic");
    const std::string journal = dir + "/journal.jsonl";

    // Baseline: uninterrupted, no journal.
    CampaignSummary base = runCampaign(baseOptions(dir + "/base"));
    ASSERT_TRUE(base.error.empty()) << base.error;
    ASSERT_EQ(base.runsDone, 5u);
    ASSERT_NE(base.campaignHash, 0u);

    // Interrupt after two cases: the stop predicate is polled before
    // each dispatch, so polls 1 and 2 pass and poll 3 drains.
    CampaignOptions first = baseOptions(dir);
    first.journalPath = journal;
    unsigned polls = 0;
    first.stopRequested = [&polls] { return ++polls > 2; };
    CampaignSummary cut = runCampaign(first);
    ASSERT_TRUE(cut.error.empty()) << cut.error;
    EXPECT_TRUE(cut.interrupted);
    EXPECT_EQ(cut.runsDone, 2u);

    // Resume: journaled cases are skipped, the rest run fresh, and
    // the union must fingerprint identically to the baseline.
    CampaignOptions second = baseOptions(dir);
    second.journalPath = journal;
    second.resume = true;
    CampaignSummary merged = runCampaign(second);
    ASSERT_TRUE(merged.error.empty()) << merged.error;
    EXPECT_FALSE(merged.interrupted);
    EXPECT_EQ(merged.skipped, 2u);
    EXPECT_EQ(merged.runsDone, 3u);
    EXPECT_EQ(merged.campaignHash, base.campaignHash);
    EXPECT_EQ(merged.failures, base.failures);

    std::filesystem::remove_all(dir);
}

TEST(CampaignResume, SigtermDrainsAndResumeMatchesBaseline)
{
    const std::string dir = scratchDir("resume_sigterm");
    const std::string journal = dir + "/journal.jsonl";

    CampaignSummary base = runCampaign(baseOptions(dir + "/base"));
    ASSERT_TRUE(base.error.empty()) << base.error;

    // A real SIGTERM, delivered mid-campaign through the same latch
    // the CLIs poll. preRun fires before case 2, so case 2 still
    // completes and the poll before case 3 drains.
    run::GracefulShutdown::install();
    run::GracefulShutdown::reset();
    CampaignOptions first = baseOptions(dir);
    first.journalPath = journal;
    first.preRun = [](unsigned i) {
        if (i == 2)
            ::raise(SIGTERM);
    };
    first.stopRequested = [] {
        return run::GracefulShutdown::requested();
    };
    CampaignSummary cut = runCampaign(first);
    EXPECT_EQ(run::GracefulShutdown::signalSeen(), SIGTERM);
    EXPECT_EQ(run::GracefulShutdown::exitCode(), 128 + SIGTERM);
    run::GracefulShutdown::reset();
    ASSERT_TRUE(cut.error.empty()) << cut.error;
    EXPECT_TRUE(cut.interrupted);
    EXPECT_EQ(cut.runsDone, 3u);

    CampaignOptions second = baseOptions(dir);
    second.journalPath = journal;
    second.resume = true;
    CampaignSummary merged = runCampaign(second);
    ASSERT_TRUE(merged.error.empty()) << merged.error;
    EXPECT_EQ(merged.skipped, 3u);
    EXPECT_EQ(merged.campaignHash, base.campaignHash);

    std::filesystem::remove_all(dir);
}

TEST(CampaignResume, IsolatedMatchesInline)
{
    if (!run::Supervisor::supported())
        GTEST_SKIP() << "no fork on this platform";
    const std::string dir = scratchDir("resume_isolate");

    CampaignOptions inlineOpt = baseOptions(dir + "/inline");
    inlineOpt.runs = 3;
    CampaignSummary inlineSum = runCampaign(inlineOpt);
    ASSERT_TRUE(inlineSum.error.empty()) << inlineSum.error;

    CampaignOptions isoOpt = baseOptions(dir + "/iso");
    isoOpt.runs = 3;
    isoOpt.isolate = true;
    CampaignSummary isoSum = runCampaign(isoOpt);
    ASSERT_TRUE(isoSum.error.empty()) << isoSum.error;

    // Forked, heartbeat-monitored workers must not perturb results.
    EXPECT_EQ(isoSum.campaignHash, inlineSum.campaignHash);
    EXPECT_EQ(isoSum.failures, inlineSum.failures);
    EXPECT_EQ(isoSum.crashes, 0u);

    std::filesystem::remove_all(dir);
}

TEST(CampaignResume, PlantedCrashIsTriagedAndArtifacted)
{
    if (!run::Supervisor::supported())
        GTEST_SKIP() << "no fork on this platform";
    const std::string dir = scratchDir("resume_crash");

    CampaignOptions opt = baseOptions(dir);
    opt.runs = 4;
    opt.isolate = true;
    opt.journalPath = dir + "/journal.jsonl";
    opt.preRun = [](unsigned i) {
        if (i == 1)
            __builtin_trap();  // dies inside the forked worker
    };
    CampaignSummary sum = runCampaign(opt);
    ASSERT_TRUE(sum.error.empty()) << sum.error;

    // One worker died; the other three cases completed anyway.
    EXPECT_EQ(sum.crashes, 1u);
    EXPECT_EQ(sum.runsDone, 4u);
    EXPECT_FALSE(sum.interrupted);

    // The crash became a replayable artifact with the triage verdict.
    std::string crashPath;
    for (const std::string &a : sum.artifacts)
        if (a.find(".crash.json") != std::string::npos)
            crashPath = a;
    ASSERT_FALSE(crashPath.empty());
    std::ifstream in(crashPath);
    ASSERT_TRUE(in.good()) << crashPath;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string perr;
    Json j = Json::parse(text, &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    EXPECT_EQ(artifactParseError(j), "");
    EXPECT_FALSE(j.has("result"));
    ASSERT_TRUE(j.has("worker"));
    EXPECT_EQ(j.at("worker").str("triage"), "crash_signal");

    // It parses as a replay input: no recorded expectation, so a
    // replayer re-runs the config rather than comparing hashes.
    RunConfig cfg;
    std::uint64_t expectedHash = 1;
    FailureKind expectedFailure = FailureKind::Stall;
    ASSERT_TRUE(artifactFromJson(j, cfg, expectedHash, expectedFailure));
    EXPECT_EQ(expectedHash, 0u);
    EXPECT_EQ(expectedFailure, FailureKind::None);

    // The crashed case is journaled (a deterministic crash would just
    // re-crash): resuming skips all four cases.
    CampaignOptions again = baseOptions(dir);
    again.runs = 4;
    again.isolate = true;
    again.journalPath = dir + "/journal.jsonl";
    again.resume = true;
    CampaignSummary resumed = runCampaign(again);
    ASSERT_TRUE(resumed.error.empty()) << resumed.error;
    EXPECT_EQ(resumed.skipped, 4u);
    EXPECT_EQ(resumed.runsDone, 0u);
    EXPECT_EQ(resumed.crashes, 1u);
    EXPECT_EQ(resumed.campaignHash, sum.campaignHash);

    std::filesystem::remove_all(dir);
}

TEST(CampaignResume, JournalRefusesDifferentCampaign)
{
    const std::string dir = scratchDir("resume_refuse");
    const std::string journal = dir + "/journal.jsonl";

    CampaignOptions first = baseOptions(dir);
    first.runs = 2;
    first.journalPath = journal;
    CampaignSummary a = runCampaign(first);
    ASSERT_TRUE(a.error.empty()) << a.error;

    // Same journal file, different campaign seed: the key check must
    // refuse rather than silently mix two campaigns' results.
    CampaignOptions second = baseOptions(dir);
    second.runs = 2;
    second.seed = 8;
    second.journalPath = journal;
    second.resume = true;
    CampaignSummary b = runCampaign(second);
    EXPECT_FALSE(b.error.empty());
    EXPECT_NE(b.error.find("key mismatch"), std::string::npos)
        << b.error;

    std::filesystem::remove_all(dir);
}
