/** @file
 * Tests for the simulator self-profiler: the zero-perturbation
 * contract (fixed-seed runs are bit-identical with profiling on or
 * off), the event-queue profile, the coupling analyzer's
 * parallelism-readiness numbers, the JSON round-trip through
 * profReport, and the folded-stacks export shape.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/system.hh"
#include "proc/mix_workload.hh"
#include "sim/json.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"

using namespace mcube;

namespace
{

struct RunResult
{
    FlatStats stats;
    std::uint64_t events = 0;
    Tick finalTick = 0;
};

/** One fixed-seed mix run on an n x n machine, optionally profiled. */
RunResult
runMix(unsigned n, double sim_ms, SimProfiler *prof)
{
    if (prof)
        prof->activate();
    SystemParams sp;
    sp.n = n;
    MulticubeSystem sys(sp);
    MixParams mix;
    mix.requestsPerMs = 25.0;
    MixWorkload wl(sys, mix);
    wl.start();
    sys.run(static_cast<Tick>(sim_ms * 1e6));
    wl.stop();
    sys.drain();
    if (prof)
        prof->deactivate();

    RunResult out;
    sys.statistics().flatten(out.stats);
    out.events = sys.eventQueue().eventsExecuted();
    out.finalTick = sys.eventQueue().now();
    return out;
}

} // namespace

TEST(SimProfiler, InactiveByDefault)
{
    EXPECT_EQ(SimProfiler::active(), nullptr);
    SimProfiler prof;
    EXPECT_EQ(SimProfiler::active(), nullptr);
    prof.activate();
    EXPECT_EQ(SimProfiler::active(), &prof);
    prof.deactivate();
    EXPECT_EQ(SimProfiler::active(), nullptr);
}

TEST(SimProfiler, DeactivatesOnDestruction)
{
    {
        SimProfiler prof;
        prof.activate();
        EXPECT_EQ(SimProfiler::active(), &prof);
    }
    EXPECT_EQ(SimProfiler::active(), nullptr);
}

// The load-bearing contract: the profiler observes host time only.
// A fixed-seed run must produce the bit-identical stat tree, event
// count and final tick whether or not it was profiled.
TEST(SimProfiler, ProfilingDoesNotPerturbSimulation)
{
    RunResult plain = runMix(4, 0.5, nullptr);
    SimProfiler prof;
    RunResult profiled = runMix(4, 0.5, &prof);

    EXPECT_EQ(plain.events, profiled.events);
    EXPECT_EQ(plain.finalTick, profiled.finalTick);
    ASSERT_EQ(plain.stats.size(), profiled.stats.size());
    for (std::size_t i = 0; i < plain.stats.size(); ++i) {
        EXPECT_EQ(plain.stats[i].first, profiled.stats[i].first);
        EXPECT_EQ(plain.stats[i].second, profiled.stats[i].second)
            << plain.stats[i].first;
    }
}

TEST(SimProfiler, CountsEventsAndScopes)
{
    SimProfiler prof;
    RunResult r = runMix(4, 0.5, &prof);

    EXPECT_EQ(prof.eventCount(), r.events);
    // Every event opens a scope, and bus/controller work nests more.
    EXPECT_GT(prof.scopeCount(), prof.eventCount());
    EXPECT_GT(prof.wallNs(), 0u);
}

TEST(SimProfiler, CouplingSummaryIsSane)
{
    SimProfiler prof;
    runMix(4, 1.0, &prof);
    SimProfiler::Summary s = prof.summary();

    // A mix run exercises both bus dimensions and the MLT forwards
    // between them, so cross-domain enqueues must appear.
    EXPECT_GT(s.rowOps, 0u);
    EXPECT_GT(s.colOps, 0u);
    EXPECT_GT(s.crossOps, 0u);

    // The minimum enqueue-to-delivery latency can never be zero: a
    // grant always pays at least the header transfer time. This is
    // the conservative lookahead bound, so it must be positive for
    // both decompositions.
    EXPECT_GT(s.row.lookaheadTicks, 0u);
    EXPECT_GT(s.col.lookaheadTicks, 0u);

    for (const SimProfiler::ShardingView *v : {&s.row, &s.col}) {
        EXPECT_GE(v->parallelFracNs, 0.0);
        EXPECT_LE(v->parallelFracNs, 1.0);
        EXPECT_NEAR(v->parallelFracNs + v->serialFracNs, 1.0, 1e-9);
        EXPECT_GE(v->imbalance, 1.0);
        // Amdahl projection: bounded by k, and monotone in k from
        // k=2 up (denominator shrinks as k grows). k=1 is pinned to
        // exactly 1.0 and excluded from the monotone sweep: under a
        // loaded host the measured imbalance can legitimately exceed
        // 2, making the honest 2-shard projection *less* than 1 — a
        // projected net loss, not a model bug.
        EXPECT_DOUBLE_EQ(v->speedupAt(1), 1.0);
        double prev = 0.0;
        for (unsigned k : {2u, 4u, 8u, 16u, 32u}) {
            double sp = v->speedupAt(k);
            EXPECT_GE(sp, prev * (1.0 - 1e-12));
            EXPECT_LE(sp, static_cast<double>(k) + 1e-9);
            prev = sp;
        }
    }
}

TEST(SimProfiler, JsonRoundTripThroughReport)
{
    SimProfiler prof;
    runMix(4, 0.5, &prof);

    std::ostringstream json;
    prof.exportJson(json);

    std::string err;
    Json profile = Json::parse(json.str(), &err);
    ASSERT_FALSE(profile.isNull()) << err;
    EXPECT_EQ(profile.u64("profile_version", 0), 1u);
    EXPECT_EQ(profile.u64("events", 0), prof.eventCount());

    std::ostringstream report;
    ASSERT_TRUE(profReport(profile, report));
    const std::string text = report.str();
    EXPECT_NE(text.find("host time by kind"), std::string::npos);
    EXPECT_NE(text.find("event queue:"), std::string::npos);
    EXPECT_NE(text.find("host time by domain"), std::string::npos);
    EXPECT_NE(text.find("min enqueue->delivery"), std::string::npos);
    EXPECT_NE(text.find("row-stripe"), std::string::npos);
    EXPECT_NE(text.find("col-stripe"), std::string::npos);

    // Not-a-profile JSON is rejected, not misreported.
    Json other = Json::parse("{\"x\": 1}", &err);
    std::ostringstream sink;
    EXPECT_FALSE(profReport(other, sink));
}

TEST(SimProfiler, FoldedStacksAreWellFormed)
{
    SimProfiler prof;
    runMix(4, 0.5, &prof);

    std::ostringstream folded;
    prof.exportFolded(folded);
    std::istringstream in(folded.str());
    std::string line;
    unsigned lines = 0;
    bool sawNested = false;
    while (std::getline(in, line)) {
        ++lines;
        // "frame;frame;frame <self_ns>": one space, positive count.
        auto sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        ASSERT_GT(sp, 0u) << line;
        const std::string stack = line.substr(0, sp);
        const std::string count = line.substr(sp + 1);
        ASSERT_FALSE(count.empty()) << line;
        for (char c : count)
            EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)))
                << line;
        // Every stack is rooted in the event-loop frame.
        EXPECT_EQ(stack.rfind("event", 0), 0u) << line;
        if (stack.find(';') != std::string::npos)
            sawNested = true;
    }
    EXPECT_GT(lines, 0u);
    EXPECT_TRUE(sawNested);
}

TEST(SimProfiler, QueueProfileInJson)
{
    SimProfiler prof;
    runMix(4, 0.5, &prof);

    std::ostringstream json;
    prof.exportJson(json);
    std::string err;
    Json profile = Json::parse(json.str(), &err);
    ASSERT_FALSE(profile.isNull()) << err;

    const Json &eq = profile.at("event_queue");
    EXPECT_GT(eq.at("depth").u64("count", 0), 0u);
    EXPECT_GT(eq.at("schedule_horizon_ticks").u64("count", 0), 0u);
    EXPECT_GT(eq.u64("slab_high_water", 0), 0u);

    // Embedded folded stacks mirror the exportFolded lines.
    EXPECT_GT(profile.at("stacks").size(), 0u);
}
