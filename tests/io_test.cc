/** @file Tests for DMA-through-the-snooping-cache I/O (Section 2). */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/checker.hh"
#include "core/system.hh"
#include "io/dma_engine.hh"

using namespace mcube;

namespace
{

class IoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SystemParams p;
        p.n = 4;
        sys = std::make_unique<MulticubeSystem>(p);
        checker = std::make_unique<CoherenceChecker>(*sys, 64);
        DmaParams dp;
        dp.ticksPerLine = 500;
        engine = std::make_unique<DmaEngine>(
            "disk0", sys->eventQueue(), sys->node(1, 2), dp);
    }

    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;
    std::unique_ptr<DmaEngine> engine;
};

} // namespace

TEST_F(IoTest, InputInstallsLinesInHostCache)
{
    bool done = false;
    engine->input(100, 8, 5000, [&] { done = true; });
    sys->eventQueue().runUntil(200'000'000);
    sys->drain();
    ASSERT_TRUE(done);
    EXPECT_EQ(engine->linesIn(), 8u);
    // The data lives modified in the hosting node's cache; memory was
    // never written with the payload (no double writing).
    for (Addr a = 100; a < 108; ++a) {
        EXPECT_EQ(sys->node(1, 2).modeOf(a), Mode::Modified);
        EXPECT_EQ(sys->node(1, 2).dataOf(a).token, 5000 + (a - 100));
        EXPECT_FALSE(
            sys->memory(sys->gridMap().homeColumn(a)).lineValid(a));
    }
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(IoTest, OutputReadsCurrentValues)
{
    // Scatter the source lines: some modified in a remote cache, some
    // only in memory.
    SnoopController &producer = sys->node(3, 0);
    for (Addr a = 200; a < 204; ++a) {
        producer.write(a, 9000 + a, [](const TxnResult &) {});
        sys->drain();
    }

    std::map<Addr, std::uint64_t> seen;
    bool done = false;
    engine->output(200, 8,
                   [&](Addr a, std::uint64_t tok) { seen[a] = tok; },
                   [&] { done = true; });
    sys->eventQueue().runUntil(200'000'000);
    sys->drain();
    ASSERT_TRUE(done);
    EXPECT_EQ(engine->linesOut(), 8u);
    for (Addr a = 200; a < 204; ++a)
        EXPECT_EQ(seen[a], 9000 + a) << "line " << a;
    for (Addr a = 204; a < 208; ++a)
        EXPECT_EQ(seen[a], 0u) << "line " << a;
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(IoTest, DeviceToConsumerNeverTouchesMemoryPayload)
{
    // Input on one node, consume from another: the data crosses the
    // buses cache-to-cache.
    bool in_done = false;
    engine->input(300, 4, 7000, [&] { in_done = true; });
    sys->eventQueue().runUntil(200'000'000);
    ASSERT_TRUE(in_done);

    SnoopController &consumer = sys->node(0, 3);
    for (Addr a = 300; a < 304; ++a) {
        std::uint64_t tok = 0;
        bool got = false;
        consumer.read(a, tok, [&](const TxnResult &r) {
            tok = r.data.token;
            got = true;
        });
        sys->drain();
        ASSERT_TRUE(got);
        EXPECT_EQ(tok, 7000 + (a - 300));
    }
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(IoTest, DevicePacingBoundsThroughput)
{
    Tick t0 = sys->eventQueue().now();
    bool done = false;
    engine->input(400, 16, 1, [&] { done = true; });
    sys->eventQueue().runUntil(200'000'000);
    sys->drain();
    ASSERT_TRUE(done);
    // 16 lines at >= 500 ns each.
    EXPECT_GE(sys->eventQueue().now() - t0, 15u * 500u);
}

TEST_F(IoTest, EngineQueuesJobsInOrder)
{
    std::vector<int> order;
    engine->input(500, 2, 1, [&] { order.push_back(1); });
    engine->output(500, 2, nullptr, [&] { order.push_back(2); });
    engine->input(600, 2, 9, [&] { order.push_back(3); });
    sys->eventQueue().runUntil(200'000'000);
    sys->drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(IoTest, CoexistsWithBusyController)
{
    // The host node's processor traffic interleaves with DMA.
    SnoopController &host = sys->node(1, 2);
    bool dma_done = false;
    engine->input(700, 8, 1, [&] { dma_done = true; });

    unsigned proc_ops = 0;
    std::function<void(Addr)> issue = [&](Addr a) {
        if (a >= 820)
            return;
        if (host.busy()) {
            sys->eventQueue().scheduleIn(300,
                                         [&issue, a] { issue(a); });
            return;
        }
        host.write(a, a, [&, a](const TxnResult &) {
            ++proc_ops;
            issue(a + 1);
        });
    };
    issue(800);

    sys->eventQueue().runUntil(400'000'000);
    sys->drain();
    EXPECT_TRUE(dma_done);
    EXPECT_EQ(proc_ops, 20u);
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(IoTest, TwoEnginesOnDifferentNodes)
{
    DmaParams dp;
    DmaEngine other("net0", sys->eventQueue(), sys->node(2, 0), dp);
    bool d1 = false, d2 = false;
    engine->input(900, 6, 100, [&] { d1 = true; });
    other.input(950, 6, 200, [&] { d2 = true; });
    sys->eventQueue().runUntil(400'000'000);
    sys->drain();
    EXPECT_TRUE(d1);
    EXPECT_TRUE(d2);
    EXPECT_EQ(sys->node(1, 2).modeOf(900), Mode::Modified);
    EXPECT_EQ(sys->node(2, 0).modeOf(950), Mode::Modified);
    EXPECT_EQ(checker->violations(), 0u);
}
