/** @file
 * Directed race tests: multi-way write races, reads racing
 * writebacks, drop injection under contention, and reissue-storm
 * bounds — the "Timing Considerations" section made executable.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"

using namespace mcube;

namespace
{

struct Waiter
{
    bool done = false;
    TxnResult res;

    SnoopController::CompletionCb
    cb()
    {
        return [this](const TxnResult &r) {
            done = true;
            res = r;
        };
    }
};

struct Rig
{
    std::unique_ptr<MulticubeSystem> sys;
    std::unique_ptr<CoherenceChecker> checker;

    explicit
    Rig(unsigned n = 4, double drop = 0.0)
    {
        SystemParams p;
        p.n = n;
        p.ctrl.dropSignalProb = drop;
        sys = std::make_unique<MulticubeSystem>(p);
        checker = std::make_unique<CoherenceChecker>(*sys, 16);
    }

    void
    check()
    {
        checker->fullSweep();
        for (const auto &s : checker->report())
            ADD_FAILURE() << s;
        EXPECT_EQ(checker->violations(), 0u);
    }
};

} // namespace

TEST(Races, FourWayWriteRace)
{
    Rig rig;
    Addr addr = 10;
    std::vector<Waiter> ws(4);
    NodeId writers[] = {0, 5, 10, 15};  // the grid diagonal
    for (int i = 0; i < 4; ++i)
        rig.sys->node(writers[i]).write(addr, 100 + i, ws[i].cb());
    ASSERT_TRUE(rig.sys->drain());
    unsigned owners = 0;
    std::uint64_t final_tok = 0;
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(ws[i].done) << "writer " << i;
        if (rig.sys->node(writers[i]).modeOf(addr) == Mode::Modified) {
            ++owners;
            final_tok = rig.sys->node(writers[i]).dataOf(addr).token;
        }
    }
    EXPECT_EQ(owners, 1u);
    EXPECT_EQ(final_tok, rig.checker->goldenToken(addr));
    rig.check();
}

TEST(Races, SixteenWayWriteRaceOnOneLine)
{
    Rig rig;
    Addr addr = 11;
    std::vector<Waiter> ws(16);
    for (NodeId id = 0; id < 16; ++id)
        rig.sys->node(id).write(addr, 1000 + id, ws[id].cb());
    ASSERT_TRUE(rig.sys->drain(100'000'000));
    for (NodeId id = 0; id < 16; ++id)
        EXPECT_TRUE(ws[id].done) << "writer " << id;
    unsigned owners = 0;
    for (NodeId id = 0; id < 16; ++id)
        owners += rig.sys->node(id).modeOf(addr) == Mode::Modified;
    EXPECT_EQ(owners, 1u);
    rig.check();
}

TEST(Races, ReadersRaceOneWriter)
{
    Rig rig;
    Addr addr = 12;
    Waiter wr;
    rig.sys->node(1, 1).write(addr, 7, wr.cb());
    // Launch reads from every other node immediately (all race the
    // write and each other).
    std::vector<Waiter> rs(16);
    for (NodeId id = 0; id < 16; ++id) {
        if (id == rig.sys->gridMap().nodeAt(1, 1))
            continue;
        std::uint64_t tok = 0;
        rig.sys->node(id).read(addr, tok, rs[id].cb());
    }
    ASSERT_TRUE(rig.sys->drain(100'000'000));
    for (NodeId id = 0; id < 16; ++id) {
        if (id == rig.sys->gridMap().nodeAt(1, 1))
            continue;
        ASSERT_TRUE(rs[id].done) << "reader " << id;
        EXPECT_TRUE(rs[id].res.data.token == 0
                    || rs[id].res.data.token == 7)
            << "reader " << id << " got " << rs[id].res.data.token;
    }
    rig.check();
}

TEST(Races, WritebackRacesIncomingWrite)
{
    // A modified victim is being written back while another node
    // writes the same line: WRITEBACK's remove-first ordering must
    // let exactly one path win without losing the line.
    SystemParams p;
    p.n = 4;
    p.ctrl.cache = {1, 1};  // every new fill evicts
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 16);

    SnoopController &a = sys.node(0, 0);
    Waiter w1;
    a.write(1, 11, w1.cb());
    sys.drain();

    // a's next write to line 2 starts a WRITEBACK of line 1; b writes
    // line 1 at the same instant.
    Waiter w2, w3;
    a.write(2, 22, w2.cb());
    sys.node(3, 3).write(1, 33, w3.cb());
    ASSERT_TRUE(sys.drain(100'000'000));
    EXPECT_TRUE(w2.done);
    EXPECT_TRUE(w3.done);
    EXPECT_EQ(checker.goldenToken(1), 33u);
    EXPECT_EQ(sys.node(3, 3).dataOf(1).token, 33u);
    checker.fullSweep();
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(Races, DropsUnderWriteContention)
{
    // Heavy drop injection while many nodes fight over few lines:
    // the valid-bit bounce must recover every request.
    Rig rig(4, 0.4);
    std::vector<Waiter> ws(16);
    for (unsigned round = 0; round < 4; ++round) {
        for (NodeId id = 0; id < 16; ++id) {
            ws[id] = Waiter{};
            rig.sys->node(id).write(20 + (id + round) % 3,
                                    round * 100 + id, ws[id].cb());
        }
        ASSERT_TRUE(rig.sys->drain(400'000'000)) << "round " << round;
        for (NodeId id = 0; id < 16; ++id)
            ASSERT_TRUE(ws[id].done)
                << "round " << round << " node " << id;
    }
    std::uint64_t drops = 0;
    for (NodeId id = 0; id < 16; ++id)
        drops += rig.sys->node(id).dropsInjected();
    EXPECT_GT(drops, 0u);
    rig.check();
}

TEST(Races, ReissueCountStaysBounded)
{
    // Races cost retries, but an isolated two-way race must settle in
    // a handful of reissues, not a storm.
    Rig rig;
    Addr addr = 30;
    Waiter wa, wb;
    rig.sys->node(0, 0).write(addr, 1, wa.cb());
    rig.sys->node(3, 3).write(addr, 2, wb.cb());
    ASSERT_TRUE(rig.sys->drain());
    std::uint64_t reissues = 0;
    for (NodeId id = 0; id < 16; ++id)
        reissues += rig.sys->node(id).reissues();
    EXPECT_LE(reissues, 6u);
    rig.check();
}

TEST(Races, AlternatingOwnershipPingPong)
{
    // Sustained ping-pong between two nodes: each transfer must take
    // the 4-op modified path, never touching memory.
    Rig rig;
    Addr addr = 31;
    SnoopController &a = rig.sys->node(0, 1);
    SnoopController &b = rig.sys->node(2, 3);
    Waiter w;
    a.write(addr, 0, w.cb());
    ASSERT_TRUE(rig.sys->drain());
    std::uint64_t mem_reads =
        rig.sys->memory(rig.sys->gridMap().homeColumn(addr))
            .readsServed();
    for (unsigned i = 1; i <= 10; ++i) {
        Waiter wi;
        SnoopController &who = (i % 2) ? b : a;
        who.write(addr, i, wi.cb());
        ASSERT_TRUE(rig.sys->drain());
        ASSERT_TRUE(wi.done);
    }
    EXPECT_EQ(rig.sys
                  ->memory(rig.sys->gridMap().homeColumn(addr))
                  .readsServed(),
              mem_reads);  // cache-to-cache the whole time
    rig.check();
}
