/** @file Unit tests for the single-bus write-once baseline. */

#include <gtest/gtest.h>

#include "baseline/multi_workload.hh"
#include "baseline/single_bus_multi.hh"

using namespace mcube;

namespace
{

MultiParams
smallParams(unsigned procs = 4)
{
    MultiParams p;
    p.numProcessors = procs;
    p.cache = {16, 2};
    return p;
}

struct Waiter
{
    bool done = false;
    std::uint64_t token = 0;

    MultiCache::CompletionCb
    cb()
    {
        return [this](std::uint64_t t) {
            done = true;
            token = t;
        };
    }
};

} // namespace

TEST(WriteOnce, ReadMissFromMemory)
{
    SingleBusMulti sys(smallParams());
    Waiter w;
    std::uint64_t tok = 1;
    EXPECT_FALSE(sys.cache(0).read(7, tok, w.cb()));
    ASSERT_TRUE(sys.drain());
    ASSERT_TRUE(w.done);
    EXPECT_EQ(w.token, 0u);
    EXPECT_EQ(sys.cache(0).modeOf(7), WoMode::Valid);
}

TEST(WriteOnce, ReadHitAfterFill)
{
    SingleBusMulti sys(smallParams());
    Waiter w;
    std::uint64_t tok = 1;
    sys.cache(0).read(7, tok, w.cb());
    sys.drain();
    EXPECT_TRUE(sys.cache(0).read(7, tok, w.cb()));
    EXPECT_EQ(tok, 0u);
}

TEST(WriteOnce, FirstWriteToValidGoesThroughAndReserves)
{
    SingleBusMulti sys(smallParams());
    Waiter w1, w2;
    std::uint64_t tok = 0;
    sys.cache(0).read(7, tok, w1.cb());
    sys.drain();
    EXPECT_FALSE(sys.cache(0).write(7, 42, w2.cb()));
    ASSERT_TRUE(sys.drain());
    ASSERT_TRUE(w2.done);
    EXPECT_EQ(sys.cache(0).modeOf(7), WoMode::Reserved);
    // Write-through: memory has the new value immediately.
    EXPECT_EQ(sys.memToken(7), 42u);
    EXPECT_TRUE(sys.memValid(7));
}

TEST(WriteOnce, SecondWriteIsLocalAndDirties)
{
    SingleBusMulti sys(smallParams());
    Waiter w1, w2;
    std::uint64_t tok = 0;
    sys.cache(0).read(7, tok, w1.cb());
    sys.drain();
    sys.cache(0).write(7, 42, w2.cb());
    sys.drain();
    std::uint64_t ops = sys.bus().opsDelivered();
    EXPECT_TRUE(sys.cache(0).write(7, 43, w2.cb()));
    EXPECT_EQ(sys.cache(0).modeOf(7), WoMode::Dirty);
    EXPECT_EQ(sys.bus().opsDelivered(), ops);  // no bus traffic
    EXPECT_EQ(sys.memToken(7), 42u);           // memory now stale
    EXPECT_FALSE(sys.memValid(7));
}

TEST(WriteOnce, WriteThroughInvalidatesOtherCopies)
{
    SingleBusMulti sys(smallParams());
    Waiter w;
    std::uint64_t tok = 0;
    sys.cache(0).read(7, tok, w.cb());
    sys.drain();
    sys.cache(1).read(7, tok, w.cb());
    sys.drain();
    EXPECT_EQ(sys.cache(1).modeOf(7), WoMode::Valid);

    Waiter w2;
    sys.cache(0).write(7, 5, w2.cb());
    sys.drain();
    EXPECT_EQ(sys.cache(1).modeOf(7), WoMode::Invalid);
    EXPECT_GE(sys.cache(1).invalidations(), 1u);
}

TEST(WriteOnce, DirtyHolderServicesReadAndUpdatesMemory)
{
    SingleBusMulti sys(smallParams());
    Waiter w1, w2, w3;
    std::uint64_t tok = 0;
    sys.cache(0).read(7, tok, w1.cb());
    sys.drain();
    sys.cache(0).write(7, 10, w2.cb());
    sys.drain();
    sys.cache(0).write(7, 11, w2.cb());  // local: dirty, memory stale

    sys.cache(2).read(7, tok, w3.cb());
    ASSERT_TRUE(sys.drain());
    ASSERT_TRUE(w3.done);
    EXPECT_EQ(w3.token, 11u);
    EXPECT_EQ(sys.cache(0).modeOf(7), WoMode::Valid);
    EXPECT_EQ(sys.cache(2).modeOf(7), WoMode::Valid);
    EXPECT_EQ(sys.memToken(7), 11u);
}

TEST(WriteOnce, WriteMissTransfersOwnershipFromDirtyHolder)
{
    SingleBusMulti sys(smallParams());
    Waiter w1, w2, w3;
    std::uint64_t tok = 0;
    sys.cache(0).read(7, tok, w1.cb());
    sys.drain();
    sys.cache(0).write(7, 10, w2.cb());
    sys.drain();
    sys.cache(0).write(7, 11, w2.cb());

    sys.cache(3).write(7, 99, w3.cb());
    ASSERT_TRUE(sys.drain());
    ASSERT_TRUE(w3.done);
    EXPECT_EQ(sys.cache(0).modeOf(7), WoMode::Invalid);
    EXPECT_EQ(sys.cache(3).modeOf(7), WoMode::Dirty);
    EXPECT_EQ(sys.cache(3).tokenOf(7), 99u);
}

TEST(WriteOnce, DirtyEvictionWritesBack)
{
    MultiParams p = smallParams();
    p.cache = {1, 2};
    SingleBusMulti sys(p);
    Waiter w;
    std::uint64_t tok = 0;

    // Dirty line 1 via read + two writes.
    sys.cache(0).read(1, tok, w.cb());
    sys.drain();
    Waiter w2;
    sys.cache(0).write(1, 10, w2.cb());
    sys.drain();
    sys.cache(0).write(1, 11, w2.cb());

    // Fill both ways of the set, evicting line 1.
    Waiter w3, w4;
    sys.cache(0).read(3, tok, w3.cb());
    sys.drain();
    sys.cache(0).read(5, tok, w4.cb());
    ASSERT_TRUE(sys.drain());
    EXPECT_EQ(sys.memToken(1), 11u);
    EXPECT_TRUE(sys.memValid(1));
}

TEST(WriteOnce, WorkloadRunsAndEfficiencyIsSane)
{
    MultiParams p;
    p.numProcessors = 8;
    SingleBusMulti sys(p);
    MixParams mp;
    mp.requestsPerMs = 25.0;
    MultiMixWorkload wl(sys, mp);
    wl.start();
    sys.run(3'000'000);  // 3 ms
    wl.stop();
    sys.drain();
    EXPECT_GT(wl.totalCompleted(), 100u);
    EXPECT_GT(wl.efficiency(), 0.3);
    EXPECT_LE(wl.efficiency(), 1.01);
}

TEST(WriteOnce, SaturatesWithManyProcessors)
{
    // Section 1: multis are "limited to some tens of processors" —
    // efficiency must drop markedly from 8 to 64 processors at the
    // same per-processor rate.
    auto eff = [](unsigned procs) {
        MultiParams p;
        p.numProcessors = procs;
        SingleBusMulti sys(p);
        MixParams mp;
        mp.requestsPerMs = 25.0;
        mp.seed = 7;
        MultiMixWorkload wl(sys, mp);
        wl.start();
        sys.run(3'000'000);
        wl.stop();
        sys.drain();
        return wl.efficiency();
    };
    double e8 = eff(8);
    double e64 = eff(64);
    EXPECT_GT(e8, e64 + 0.1);
}
