/** @file Tests for MulticubeSystem assembly and aggregate queries. */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/system.hh"

using namespace mcube;

TEST(System, ConstructsRequestedGeometry)
{
    SystemParams p;
    p.n = 5;
    MulticubeSystem sys(p);
    EXPECT_EQ(sys.n(), 5u);
    EXPECT_EQ(sys.numNodes(), 25u);
    EXPECT_EQ(sys.gridMap().numNodes(), 25u);
    // Every node is addressable both ways.
    for (unsigned r = 0; r < 5; ++r)
        for (unsigned c = 0; c < 5; ++c)
            EXPECT_EQ(sys.node(r, c).id(),
                      sys.node(sys.gridMap().nodeAt(r, c)).id());
}

TEST(System, NodesKnowTheirCoordinates)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);
    EXPECT_EQ(sys.node(2, 3).row(), 2u);
    EXPECT_EQ(sys.node(2, 3).col(), 3u);
}

TEST(System, DrainOnIdleSystemSucceedsImmediately)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);
    EXPECT_TRUE(sys.drain());
    EXPECT_EQ(sys.totalBusOps(), 0u);
}

TEST(System, TotalBusOpsSumsAllBuses)
{
    SystemParams p;
    p.n = 4;
    MulticubeSystem sys(p);
    std::uint64_t tok = 0;
    sys.node(0, 1).read(8, tok, [](const TxnResult &) {});
    sys.drain();
    std::uint64_t manual = 0;
    for (unsigned i = 0; i < 4; ++i)
        manual += sys.rowBus(i).opsDelivered()
                + sys.colBus(i).opsDelivered();
    EXPECT_EQ(sys.totalBusOps(), manual);
    EXPECT_EQ(manual, 4u);
}

TEST(System, MeanUtilizationPerDimension)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);
    std::uint64_t tok = 0;
    sys.node(0, 1).read(2, tok, [](const TxnResult &) {});
    sys.drain();
    sys.run(100'000);
    EXPECT_GT(sys.meanBusUtilization(0), 0.0);
    EXPECT_GT(sys.meanBusUtilization(1), 0.0);
    EXPECT_LT(sys.meanBusUtilization(0), 1.0);
}

TEST(System, StatisticsTreeFlattens)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);
    std::uint64_t tok = 0;
    sys.node(0, 0).read(1, tok, [](const TxnResult &) {});
    sys.drain();

    std::map<std::string, double> flat;
    sys.statistics().flatten(flat);
    EXPECT_GT(flat.size(), 10u);
    EXPECT_EQ(flat.count("system.node0_0.misses"), 1u);
    EXPECT_EQ(flat.at("system.node0_0.misses"), 1.0);
    EXPECT_EQ(flat.count("system.row0.ops"), 1u);
}

TEST(System, StatisticsDumpIsNonEmpty)
{
    SystemParams p;
    p.n = 2;
    MulticubeSystem sys(p);
    std::ostringstream oss;
    sys.statistics().dump(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("system:"), std::string::npos);
    EXPECT_NE(s.find("mem0"), std::string::npos);
    EXPECT_NE(s.find("node1_1"), std::string::npos);
}

TEST(System, PageInterleavedSystemWorks)
{
    SystemParams p;
    p.n = 4;
    p.homePageShift = 2;  // 4-line pages
    MulticubeSystem sys(p);
    // Lines 0..3 home on column 0; a write/read pair must route
    // correctly through mem0.
    SnoopController &w = sys.node(1, 1);
    w.write(3, 30, [](const TxnResult &) {});
    ASSERT_TRUE(sys.drain());
    EXPECT_FALSE(sys.memory(0).lineValid(3));
    std::uint64_t tok = 0;
    bool done = false;
    sys.node(2, 2).read(3, tok, [&](const TxnResult &r) {
        done = true;
        tok = r.data.token;
    });
    ASSERT_TRUE(sys.drain());
    ASSERT_TRUE(done);
    EXPECT_EQ(tok, 30u);
    EXPECT_TRUE(sys.memory(0).lineValid(3));
}

TEST(System, DistinctSeedsChangeNodeRngStreams)
{
    // Drop injection uses per-node RNGs seeded from the system seed;
    // two systems with different seeds must behave identically in the
    // absence of randomness (deterministic protocol), so just check
    // construction with various seeds works and runs are repeatable.
    for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
        SystemParams p;
        p.n = 3;
        p.seed = seed;
        MulticubeSystem sys(p);
        std::uint64_t tok = 0;
        sys.node(1, 1).read(5, tok, [](const TxnResult &) {});
        EXPECT_TRUE(sys.drain());
        EXPECT_EQ(sys.totalBusOps(), 4u);
    }
}
