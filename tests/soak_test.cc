/** @file
 * Whole-system soak test: random data traffic, queue locks, barriers
 * and DMA all running concurrently on one machine with the invariant
 * checker attached — the integration test across every subsystem.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "fault/progress_monitor.hh"
#include "io/dma_engine.hh"
#include "proc/barrier.hh"
#include "proc/processor.hh"
#include "proc/program.hh"
#include "proc/random_tester.hh"

using namespace mcube;
using namespace mcube::prog;

namespace
{

constexpr Addr kLock = 5000, kCounter = 5001;
constexpr BarrierAddrs kBarrier{5100, 5101, 5102};
constexpr Addr kDmaBase = 6000;

} // namespace

TEST(Soak, EverySubsystemConcurrently)
{
    SystemParams p;
    p.n = 4;
    p.ctrl.cache = {64, 4};
    p.ctrl.mlt = {32, 4};
    p.seed = 4242;
    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, 64);

    // A stall in any subsystem should fail with a diagnosis rather
    // than silently timing out below.
    ProgressMonitor monitor(sys, {/*checkIntervalTicks=*/10'000'000,
                                  /*stallChecks=*/8});
    monitor.start();

    // --- 1. Random data traffic on 6 nodes (via the RandomTester's
    // issue machinery, data pool only).
    RandomTesterParams tp;
    tp.opsPerNode = 60;
    tp.pTset = 0.0;
    tp.numDataLines = 16;
    tp.seed = 99;
    // Disjoint from the lock workers (0,5,10,15), barrier members
    // (2,7,12) and DMA hosts (14,13): each node has one outstanding
    // request slot, so exactly one driver may own it.
    tp.onlyNodes = {1, 3, 4, 6, 8, 9, 11};
    RandomTester tester(sys, checker, tp);
    tester.start();

    // --- 2. Lock workers on 4 nodes.
    std::vector<std::unique_ptr<Processor>> lockProcs;
    std::vector<std::unique_ptr<ProgramRunner>> lockRunners;
    for (unsigned i = 0; i < 4; ++i) {
        ProcessorParams pp;
        lockProcs.push_back(std::make_unique<Processor>(
            "lp" + std::to_string(i), sys.eventQueue(),
            sys.node(i * 5 % 16), pp));
        lockRunners.push_back(std::make_unique<ProgramRunner>(
            "lr" + std::to_string(i), sys.eventQueue(),
            *lockProcs.back(),
            std::vector<Instr>{
                setCnt(5),
                lockSync(kLock),
                load(kCounter),
                addAcc(1),
                storeAcc(kCounter),
                unlock(kLock, 1),
                decJnz(1),
                halt(),
            },
            500 + i));
    }
    for (auto &r : lockRunners)
        r->start();

    // --- 3. A 3-party barrier group on other nodes.
    std::vector<std::unique_ptr<Processor>> barProcs;
    std::vector<std::unique_ptr<BarrierMember>> members;
    unsigned barrier_rounds = 0;
    for (unsigned i = 0; i < 3; ++i) {
        ProcessorParams pp;
        barProcs.push_back(std::make_unique<Processor>(
            "bp" + std::to_string(i), sys.eventQueue(),
            sys.node((i * 5 + 2) % 16), pp));
        members.push_back(std::make_unique<BarrierMember>(
            *barProcs.back(), kBarrier, 3));
    }
    std::function<void(unsigned)> barrier_loop = [&](unsigned i) {
        if (members[i]->episodes() >= 4) {
            if (i == 0)
                barrier_rounds = members[0]->episodes();
            return;
        }
        members[i]->arrive([&, i] { barrier_loop(i); });
    };
    for (unsigned i = 0; i < 3; ++i)
        barrier_loop(i);

    // --- 4. DMA in and out on two more nodes.
    DmaParams dp;
    dp.ticksPerLine = 700;
    DmaEngine nic("nic", sys.eventQueue(), sys.node(3, 2), dp);
    DmaEngine disk("disk", sys.eventQueue(), sys.node(3, 1), dp);
    bool dma_in = false, dma_out = false;
    std::uint64_t dma_sum = 0;
    nic.input(kDmaBase, 24, 7000, [&] {
        dma_in = true;
        disk.output(kDmaBase, 24,
                    [&](Addr, std::uint64_t t) { dma_sum += t; },
                    [&] { dma_out = true; });
    });

    // --- Run everything together.
    sys.eventQueue().runUntil(4'000'000'000ull);
    sys.drain();

    // Random traffic finished and verified. On a hang, dump every
    // in-flight transaction so the failure is diagnosable.
    EXPECT_TRUE(tester.finished()) << sys.dumpPendingState();
    EXPECT_FALSE(monitor.stalled()) << monitor.report();
    EXPECT_EQ(tester.readFailures(), 0u);

    // Mutual exclusion preserved.
    for (auto &r : lockRunners)
        EXPECT_TRUE(r->halted());
    EXPECT_EQ(checker.goldenToken(kCounter), 4u * 5u);

    // Barrier progressed through all rounds for every member.
    for (auto &m : members)
        EXPECT_EQ(m->episodes(), 4u);

    // DMA pipeline moved every line with the right payload.
    EXPECT_TRUE(dma_in);
    EXPECT_TRUE(dma_out);
    std::uint64_t expect = 0;
    for (unsigned i = 0; i < 24; ++i)
        expect += 7000 + i;
    EXPECT_EQ(dma_sum, expect);

    // And the whole run was coherent.
    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(Soak, RepeatableAcrossSeeds)
{
    for (std::uint64_t seed : {7ull, 1234ull, 987654ull}) {
        SystemParams p;
        p.n = 4;
        p.seed = seed;
        MulticubeSystem sys(p);
        CoherenceChecker checker(sys, 128);
        RandomTesterParams tp;
        tp.opsPerNode = 80;
        tp.pTset = 0.2;
        tp.seed = seed;
        tp.chaos = true;
        RandomTester tester(sys, checker, tp);
        tester.start();
        sys.eventQueue().runUntil(2'000'000'000ull);
        EXPECT_TRUE(tester.finished())
            << "seed " << seed << "\n" << sys.dumpPendingState();
        sys.drain();
        checker.fullSweep();
        EXPECT_EQ(checker.violations(), 0u) << "seed " << seed;
        EXPECT_EQ(tester.readFailures(), 0u) << "seed " << seed;
    }
}
