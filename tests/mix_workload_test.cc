/** @file Tests for the rate-driven synthetic mix workload. */

#include <gtest/gtest.h>

#include <memory>

#include "core/checker.hh"
#include "core/system.hh"
#include "proc/mix_workload.hh"

using namespace mcube;

TEST(MixWorkload, HitsTheConfiguredRateAtLowLoad)
{
    SystemParams sp;
    sp.n = 4;
    MulticubeSystem sys(sp);
    MixParams mp;
    mp.requestsPerMs = 10.0;
    MixWorkload wl(sys, mp);
    wl.start();
    sys.run(5'000'000);  // 5 ms
    wl.stop();
    sys.drain();
    // Expected: 16 procs x 10 req/ms x 5 ms = 800 transactions.
    double expect = 16 * 10.0 * 5.0;
    EXPECT_NEAR(wl.totalCompleted(), expect, expect * 0.25);
}

TEST(MixWorkload, EfficiencyNearOneAtTinyLoad)
{
    SystemParams sp;
    sp.n = 4;
    MulticubeSystem sys(sp);
    MixParams mp;
    mp.requestsPerMs = 1.0;
    MixWorkload wl(sys, mp);
    wl.start();
    sys.run(5'000'000);
    wl.stop();
    sys.drain();
    EXPECT_GT(wl.efficiency(), 0.95);
    EXPECT_LE(wl.efficiency(), 1.01);
}

TEST(MixWorkload, EfficiencyFallsWithLoad)
{
    auto eff = [](double rate) {
        SystemParams sp;
        sp.n = 4;
        MulticubeSystem sys(sp);
        MixParams mp;
        mp.requestsPerMs = rate;
        mp.seed = 3;
        MixWorkload wl(sys, mp);
        wl.start();
        sys.run(4'000'000);
        wl.stop();
        sys.drain();
        return wl.efficiency();
    };
    EXPECT_GT(eff(5.0), eff(80.0));
}

TEST(MixWorkload, TargetsModifiedLines)
{
    SystemParams sp;
    sp.n = 4;
    MulticubeSystem sys(sp);
    MixParams mp;
    mp.requestsPerMs = 50.0;
    MixWorkload wl(sys, mp);
    wl.start();
    sys.run(5'000'000);
    wl.stop();
    sys.drain();
    // 20% of requests aim at modified lines; the registry sometimes
    // runs dry early, so expect a meaningful but not exact fraction.
    EXPECT_GT(wl.achievedModifiedFraction(), 0.08);
    EXPECT_LT(wl.achievedModifiedFraction(), 0.35);
}

TEST(MixWorkload, StaysCoherentUnderLoad)
{
    SystemParams sp;
    sp.n = 4;
    MulticubeSystem sys(sp);
    CoherenceChecker checker(sys, 256);
    MixParams mp;
    mp.requestsPerMs = 100.0;
    MixWorkload wl(sys, mp);
    wl.start();
    sys.run(2'000'000);
    wl.stop();
    sys.drain();
    checker.fullSweep();
    for (const auto &s : checker.report())
        ADD_FAILURE() << s;
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(MixWorkload, ClassCountsRoughlyMatchMix)
{
    SystemParams sp;
    sp.n = 4;
    MulticubeSystem sys(sp);
    MixParams mp;
    mp.requestsPerMs = 40.0;
    MixWorkload wl(sys, mp);
    wl.start();
    sys.run(5'000'000);
    wl.stop();
    sys.drain();
    double total = static_cast<double>(wl.totalCompleted());
    ASSERT_GT(total, 500.0);
    // Reads (classes 0 and 1) should be ~75%; writes ~25%. Modified
    // classes downgrade when the registry is dry, so compare
    // read-vs-write, which is unaffected by downgrades.
    double reads = static_cast<double>(wl.completed(0) + wl.completed(1));
    double writes = static_cast<double>(wl.completed(2) + wl.completed(3));
    EXPECT_NEAR(reads / total, 0.75, 0.06);
    EXPECT_NEAR(writes / total, 0.25, 0.06);
}
