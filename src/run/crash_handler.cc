#include "run/crash_handler.hh"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>

#include "sim/log.hh"

namespace mcube::run
{

namespace
{

std::mutex gCtxLock;
std::function<std::string()> gDump;
std::string gTool = "mcube";
bool gInstalled = false;
volatile std::sig_atomic_t gDumped = 0;

/** Emit banner + context dump + flush. Reentrancy-guarded so the
 *  terminate path followed by the SIGABRT it raises dumps once. */
void
lastBreath(const char *what)
{
    if (gDumped)
        return;
    gDumped = 1;
    std::fprintf(stderr, "\n=== %s: FATAL: %s ===\n", gTool.c_str(),
                 what);
    // Best-effort: if the crash happened while the slot was being
    // updated, skip the dump rather than deadlock in a handler.
    if (gCtxLock.try_lock()) {
        std::function<std::string()> dump = gDump;
        gCtxLock.unlock();
        if (dump) {
            try {
                std::string text = dump();
                std::fwrite(text.data(), 1, text.size(), stderr);
                if (!text.empty() && text.back() != '\n')
                    std::fputc('\n', stderr);
            } catch (...) {
                std::fputs("(context dump itself failed)\n", stderr);
            }
        }
    }
    std::fputs("=== end of diagnostic dump ===\n", stderr);
    Log::flush();
    std::fflush(stderr);
}

extern "C" void
crashSignalHandler(int sig)
{
    lastBreath(::strsignal(sig) ? ::strsignal(sig) : "fatal signal");
    // Restore the default disposition and re-raise so the wait
    // status the supervisor triages still names the real signal.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

[[noreturn]] void
terminateHandler()
{
    const char *what = "std::terminate (uncaught exception?)";
    std::string msg;
    if (auto e = std::current_exception()) {
        try {
            std::rethrow_exception(e);
        } catch (const std::exception &ex) {
            msg = std::string("uncaught exception: ") + ex.what();
            what = msg.c_str();
        } catch (...) {
            what = "uncaught non-standard exception";
        }
    }
    lastBreath(what);
    std::abort();
}

} // namespace

void
installCrashHandler(const std::string &toolName)
{
    gTool = toolName;
    if (gInstalled)
        return;
    gInstalled = true;
    std::set_terminate(terminateHandler);
    for (int sig : {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL})
        std::signal(sig, crashSignalHandler);
}

void
setCrashContext(std::function<std::string()> dump)
{
    std::lock_guard<std::mutex> g(gCtxLock);
    gDump = std::move(dump);
}

} // namespace mcube::run
