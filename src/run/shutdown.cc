#include "run/shutdown.hh"

#include <csignal>

#ifdef __unix__
#include <unistd.h>
#endif

namespace mcube::run
{

namespace
{

volatile std::sig_atomic_t gSignal = 0;
volatile std::sig_atomic_t gCount = 0;
bool gInstalled = false;

extern "C" void
shutdownHandler(int sig)
{
    gSignal = sig;
    if (++gCount >= 2) {
        // Second signal: the user means NOW. Everything durable was
        // fsync'd line-by-line, so an immediate _exit leaves the
        // journal valid (footer-less, which reload tolerates).
#ifdef __unix__
        ::_exit(128 + sig);
#endif
    }
}

} // namespace

void
GracefulShutdown::install()
{
    if (gInstalled)
        return;
    gInstalled = true;
#ifdef __unix__
    struct sigaction sa = {};
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: poll()/read() must wake up
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
#else
    std::signal(SIGINT, shutdownHandler);
    std::signal(SIGTERM, shutdownHandler);
#endif
}

bool
GracefulShutdown::requested()
{
    return gSignal != 0;
}

int
GracefulShutdown::signalSeen()
{
    return gSignal;
}

int
GracefulShutdown::exitCode()
{
    return gSignal != 0 ? 128 + gSignal : 0;
}

void
GracefulShutdown::reset()
{
    gSignal = 0;
    gCount = 0;
}

} // namespace mcube::run
