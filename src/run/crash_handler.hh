/**
 * @file
 * Last-breath diagnostics for fatal errors in the CLIs.
 *
 * A bare abort() or uncaught exception loses exactly the state a
 * post-mortem needs. installCrashHandler() arms a std::set_terminate
 * handler plus SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL handlers that,
 * before the process dies:
 *
 *  1. write a banner naming the tool and the failure to stderr,
 *  2. print the registered context dump — typically the live
 *     system's Controller pending state
 *     (MulticubeSystem::dumpPendingState) registered for the duration
 *     of a run via ScopedCrashContext,
 *  3. flush the Log file sink (MCUBE_DEBUG_FILE) so buffered trace
 *     lines reach disk,
 *
 * then restore the default disposition and re-raise, preserving the
 * original wait status for the supervisor's triage. The dump path is
 * best-effort — not async-signal-safe, but the process is already
 * dying and the alternative is no diagnosis at all.
 */

#ifndef MCUBE_RUN_CRASH_HANDLER_HH
#define MCUBE_RUN_CRASH_HANDLER_HH

#include <functional>
#include <string>

namespace mcube::run
{

/** Arm terminate/fatal-signal diagnostics for this process
 *  (idempotent; @p toolName appears in the banner). */
void installCrashHandler(const std::string &toolName);

/** Register a closure that produces the diagnostic dump (e.g. a
 *  captured MulticubeSystem's dumpPendingState). Pass {} to clear.
 *  One slot, mutex-guarded; later registrations win. */
void setCrashContext(std::function<std::string()> dump);

/** RAII registration of a crash-context dump for one run's scope. */
class ScopedCrashContext
{
  public:
    explicit ScopedCrashContext(std::function<std::string()> dump)
    {
        setCrashContext(std::move(dump));
    }
    ~ScopedCrashContext() { setCrashContext({}); }

    ScopedCrashContext(const ScopedCrashContext &) = delete;
    ScopedCrashContext &operator=(const ScopedCrashContext &) = delete;
};

} // namespace mcube::run

#endif // MCUBE_RUN_CRASH_HANDLER_HH
