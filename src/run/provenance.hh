/**
 * @file
 * Self-describing artifacts: git revision + effective-command echo.
 *
 * Every file a harness writes (CSV, BENCH json, repro artifact,
 * journal) and every tool's stdout should carry enough provenance to
 * re-run it: the binary's git revision and the effective command
 * line. sweep_cli pioneered the '#'-comment header; this header
 * centralizes the pieces so trace_report and fuzz_campaign emit the
 * same shape.
 */

#ifndef MCUBE_RUN_PROVENANCE_HH
#define MCUBE_RUN_PROVENANCE_HH

#include <string>

namespace mcube::run
{

/** Best-effort HEAD revision (cached); "unknown" outside git. */
const std::string &gitRevision();

/** One '#'-comment provenance line: tool, revision, argv echo. */
std::string provenanceHeader(const std::string &tool, int argc,
                             char **argv);

} // namespace mcube::run

#endif // MCUBE_RUN_PROVENANCE_HH
