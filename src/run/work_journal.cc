#include "run/work_journal.hh"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "sim/hash.hh"

namespace mcube::run
{

namespace
{

constexpr const char *kFormat = "mcube-journal-v1";

std::string
keyHex(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

WorkJournal::~WorkJournal()
{
#ifdef __unix__
    if (fd >= 0)
        ::close(fd);
#endif
}

std::uint64_t
WorkJournal::keyOf(const std::string &canonicalConfig)
{
    // FNV-1a over the bytes, then one mix64 finalizer pass so short
    // configs still avalanche into all 64 bits.
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : canonicalConfig) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return mix64(h);
}

bool
WorkJournal::open(const std::string &path, std::uint64_t campaignKey,
                  const Json &header, std::string *err)
{
#ifndef __unix__
    (void)path;
    (void)campaignKey;
    (void)header;
    if (err)
        *err = "journals need a POSIX platform";
    return false;
#else
    std::lock_guard<std::mutex> g(lock);
    if (fd >= 0) {
        if (err)
            *err = "journal already open";
        return false;
    }

    // The journal usually lives next to the artifacts, in a directory
    // that may not exist yet.
    {
        std::filesystem::path parent =
            std::filesystem::path(path).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
    }

    bool fresh = true;
    bool endsWithNewline = true;
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            fresh = false;
            std::string line;
            bool sawHeader = false;
            while (std::getline(in, line)) {
                if (line.empty())
                    continue;
                std::string perr;
                Json j = Json::parse(line, &perr);
                if (!perr.empty() || !j.isObject()) {
                    // A torn line from a crash mid-append: skip it.
                    // Anything after it would also be suspect, but
                    // O_APPEND writes are whole lines, so in practice
                    // only the final line can tear.
                    continue;
                }
                if (!sawHeader) {
                    sawHeader = true;
                    if (j.str("journal") != kFormat) {
                        if (err)
                            *err = path + ": not a " + kFormat
                                 + " journal";
                        return false;
                    }
                    if (j.str("key") != keyHex(campaignKey)) {
                        if (err)
                            *err = path
                                 + ": campaign key mismatch (journal "
                                 + j.str("key") + ", expected "
                                 + keyHex(campaignKey)
                                 + ") - refusing to resume a "
                                   "different campaign";
                        return false;
                    }
                    continue;
                }
                if (j.flag("footer", false))
                    continue;  // advisory; a resumed file may hold one
                std::string item = j.str("item");
                if (item.empty())
                    continue;
                if (!entries.count(item))
                    ++_loaded;
                entries[item] = j.at("record");
            }
            // getline() hides whether the final line was newline-
            // terminated; inspect the raw last byte to detect a torn
            // trailing append.
            in.clear();
            in.seekg(0, std::ios::end);
            auto sz = in.tellg();
            if (sz > 0) {
                in.seekg(-1, std::ios::end);
                char last = 0;
                in.get(last);
                endsWithNewline = last == '\n';
            }
        }
    }

    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        if (err)
            *err = path + ": cannot open for append";
        return false;
    }
    _path = path;

    if (!fresh && !endsWithNewline) {
        // Neutralize a torn trailing line so the next append starts
        // on a fresh line (the garbage line parse-skips on reload).
        writeLine("");
    }
    if (fresh) {
        Json h = Json::object();
        h.set("journal", kFormat);
        h.set("key", keyHex(campaignKey));
        for (const auto &[k, v] : header.members())
            h.set(k, v);
        if (!writeLine(h.dump(-1))) {
            if (err)
                *err = path + ": header write failed";
            ::close(fd);
            fd = -1;
            return false;
        }
    }
    return true;
#endif
}

bool
WorkJournal::has(const std::string &item) const
{
    std::lock_guard<std::mutex> g(lock);
    return entries.count(item) != 0;
}

const Json *
WorkJournal::find(const std::string &item) const
{
    std::lock_guard<std::mutex> g(lock);
    auto it = entries.find(item);
    return it == entries.end() ? nullptr : &it->second;
}

std::size_t
WorkJournal::completed() const
{
    std::lock_guard<std::mutex> g(lock);
    return entries.size();
}

bool
WorkJournal::record(const std::string &item, Json record)
{
    std::lock_guard<std::mutex> g(lock);
    if (fd < 0)
        return false;
    Json line = Json::object();
    line.set("item", item);
    line.set("record", record);
    if (!writeLine(line.dump(-1)))
        return false;
    entries[item] = std::move(record);
    return true;
}

void
WorkJournal::finish()
{
    std::lock_guard<std::mutex> g(lock);
    if (fd < 0)
        return;
    Json f = Json::object();
    f.set("footer", true);
    f.set("completed", static_cast<std::uint64_t>(entries.size()));
    writeLine(f.dump(-1));
#ifdef __unix__
    ::close(fd);
#endif
    fd = -1;
}

void
WorkJournal::abandon()
{
    std::lock_guard<std::mutex> g(lock);
#ifdef __unix__
    if (fd >= 0)
        ::close(fd);
#endif
    fd = -1;
}

bool
WorkJournal::writeLine(const std::string &line)
{
#ifndef __unix__
    (void)line;
    return false;
#else
    std::string buf = line;
    buf += '\n';
    const char *p = buf.data();
    std::size_t left = buf.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    // The fsync is the contract: once record() returns, a crash (or
    // SIGKILL) cannot lose the item.
    return ::fsync(fd) == 0;
#endif
}

} // namespace mcube::run
