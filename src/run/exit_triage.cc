#include "run/exit_triage.hh"

#include <csignal>

#ifdef __unix__
#include <sys/wait.h>
#endif

namespace mcube::run
{

const char *
toString(Triage t)
{
    switch (t) {
      case Triage::Clean:
        return "clean";
      case Triage::ItemFailed:
        return "item_failed";
      case Triage::BadInput:
        return "bad_input";
      case Triage::Oom:
        return "oom";
      case Triage::Fatal:
        return "fatal";
      case Triage::CrashSignal:
        return "crash_signal";
      case Triage::Timeout:
        return "timeout";
      case Triage::Stalled:
        return "stalled";
    }
    return "?";
}

bool
triageFromString(const std::string &name, Triage &out)
{
    for (auto t : {Triage::Clean, Triage::ItemFailed, Triage::BadInput,
                   Triage::Oom, Triage::Fatal, Triage::CrashSignal,
                   Triage::Timeout, Triage::Stalled}) {
        if (name == toString(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

bool
isFailure(Triage t)
{
    return t != Triage::Clean;
}

bool
isAbnormal(Triage t)
{
    switch (t) {
      case Triage::Clean:
      case Triage::ItemFailed:
      case Triage::BadInput:
        return false;
      default:
        return true;
    }
}

Triage
triageWaitStatus(int waitStatus, SupervisorKill kill)
{
#ifdef __unix__
    // What we did to the child outranks how it looks dead: a SIGKILL
    // we sent must not be mistaken for the kernel's OOM killer.
    if (kill == SupervisorKill::Deadline)
        return Triage::Timeout;
    if (kill == SupervisorKill::Heartbeat)
        return Triage::Stalled;

    if (WIFEXITED(waitStatus)) {
        switch (WEXITSTATUS(waitStatus)) {
          case 0:
            return Triage::Clean;
          case 1:
            return Triage::ItemFailed;
          case 2:
            return Triage::BadInput;
          case kOomExit:
            return Triage::Oom;
          default:
            return Triage::Fatal;
        }
    }
    if (WIFSIGNALED(waitStatus)) {
        // An unsolicited SIGKILL is (almost always) the kernel OOM
        // killer; every other fatal signal is a genuine crash.
        return WTERMSIG(waitStatus) == SIGKILL ? Triage::Oom
                                               : Triage::CrashSignal;
    }
#else
    (void)waitStatus;
    (void)kill;
#endif
    return Triage::Fatal;
}

} // namespace mcube::run
