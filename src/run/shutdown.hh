/**
 * @file
 * Two-stage SIGINT/SIGTERM handling for long-running harnesses.
 *
 * The contract (docs/ROBUSTNESS.md, "Signal behaviour"):
 *
 *  - the FIRST SIGINT or SIGTERM requests a graceful drain: the
 *    harness stops dispatching new work, lets in-flight supervised
 *    workers finish (or hit their deadline), flushes partial outputs
 *    and appends the journal footer, then exits 128+signum;
 *  - the SECOND signal hard-kills the process from the handler
 *    (_exit — async-signal-safe). The journal stays valid because
 *    every record was already an fsync'd whole line; only the
 *    advisory footer is lost.
 *
 * The handler only flips a sig_atomic_t flag; all the draining logic
 * runs in normal code that polls requested().
 */

#ifndef MCUBE_RUN_SHUTDOWN_HH
#define MCUBE_RUN_SHUTDOWN_HH

namespace mcube::run
{

/** Process-wide graceful-shutdown latch. */
class GracefulShutdown
{
  public:
    /** Install the SIGINT/SIGTERM handler (idempotent). */
    static void install();

    /** True once a first signal has been seen. */
    static bool requested();

    /** The signal that requested shutdown (0 = none yet). */
    static int signalSeen();

    /** Conventional exit code for a drained run: 128 + signal, or 0
     *  if no signal arrived. */
    static int exitCode();

    /** Reset the latch (tests re-arm between cases). */
    static void reset();
};

} // namespace mcube::run

#endif // MCUBE_RUN_SHUTDOWN_HH
