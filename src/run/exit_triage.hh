/**
 * @file
 * Exit-status triage for supervised worker processes.
 *
 * A supervised run (sweep point, fuzz case, bench point) ends in one
 * of a small set of ways, and the supervisor must tell them apart to
 * decide what to do next: record the result, write a crash artifact,
 * or flag a livelocked worker. The classification funnels every
 * source of truth — the child's exit code, the signal that killed it,
 * and what the supervisor itself did to it — through one function so
 * the triage table lives in exactly one place (documented in
 * docs/ROBUSTNESS.md).
 *
 * Child exit-code conventions (kept clear of shell conventions):
 *   0              clean pass
 *   1              run completed but the item failed (e.g. a checker
 *                  violation) — deterministic, worth an artifact
 *   2              input unusable (bad config / artifact)
 *   kOomExit (101) allocation failure: the worker's new-handler fired
 *                  under its RLIMIT_AS cap
 *   kFatalExit(102) uncaught exception escaped the worker body
 */

#ifndef MCUBE_RUN_EXIT_TRIAGE_HH
#define MCUBE_RUN_EXIT_TRIAGE_HH

#include <cstdint>
#include <string>

namespace mcube::run
{

/** What a finished worker means to the campaign. */
enum class Triage : std::uint8_t
{
    Clean,        //!< exit 0: item passed
    ItemFailed,   //!< exit 1: run completed, the item itself failed
    BadInput,     //!< exit 2: the worker rejected its input
    Oom,          //!< new-handler exit or an external SIGKILL (kernel
                  //!< OOM killer): the worker ran out of memory
    Fatal,        //!< any other nonzero exit (uncaught exception, ...)
    CrashSignal,  //!< died on a signal (SIGSEGV, SIGABRT, SIGILL, ...)
    Timeout,      //!< supervisor killed it: wall-clock deadline passed
    Stalled,      //!< supervisor killed it: heartbeat went silent
                  //!< (livelocked, not merely slow)
};

/** Child exit code reserved for "operator new failed under the RSS
 *  cap" (the worker installs a new-handler that exits with this). */
constexpr int kOomExit = 101;

/** Child exit code reserved for "an exception escaped the worker". */
constexpr int kFatalExit = 102;

/** Stable lower-snake name of @p t (journal/artifact vocabulary). */
const char *toString(Triage t);

/** Inverse of toString(). */
bool triageFromString(const std::string &name, Triage &out);

/** True for every kind except Clean. */
bool isFailure(Triage t);

/** Kinds that mean "the worker died without producing a result" —
 *  the campaign should write a crash artifact, not parse output. */
bool isAbnormal(Triage t);

/** What the supervisor itself did to the child before it died. */
enum class SupervisorKill : std::uint8_t
{
    None,       //!< the child ended on its own
    Deadline,   //!< killed because the wall-clock deadline passed
    Heartbeat,  //!< killed because the heartbeat window expired
};

/**
 * Classify a waitpid() status. @p kill records whether (and why) the
 * supervisor killed the child — a SIGKILL we sent means Timeout or
 * Stalled, while a SIGKILL we did not send almost certainly came from
 * the kernel's OOM killer and triages as Oom.
 */
Triage triageWaitStatus(int waitStatus, SupervisorKill kill);

} // namespace mcube::run

#endif // MCUBE_RUN_EXIT_TRIAGE_HH
