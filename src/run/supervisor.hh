/**
 * @file
 * Process-isolated execution of sweep points, fuzz cases and bench
 * points.
 *
 * One misbehaving item must not take down a campaign: the Supervisor
 * forks each item into a worker process with
 *
 *  - an address-space cap (setrlimit(RLIMIT_AS); RLIMIT_RSS is a
 *    no-op on modern Linux) plus a new-handler that converts
 *    allocation failure into a distinct exit code, so OOM triages as
 *    OOM rather than as a crash;
 *  - a wall-clock deadline enforced by the parent (the child may be
 *    wedged in ways no in-process timer survives);
 *  - a heartbeat pipe: the child beats whenever its simulation makes
 *    real progress (fed by ProgressMonitor), so the parent can tell a
 *    *slow* worker (beats keep coming — leave it alone) from a
 *    *livelocked* one (busy but silent — kill and triage Stalled);
 *  - a result pipe carrying the worker's serialized result back, so
 *    a crashing worker costs one item, not the campaign's state.
 *
 * Workers end in _exit() (never by returning through the parent's
 * stack), and the parent fflush()es stdio before forking, so gtest /
 * CLI output is never duplicated through an inherited buffer.
 *
 * runPool() is the campaign shape: up to `jobs` concurrent forked
 * workers, dispatch stopping as soon as the stop predicate fires
 * (graceful drain — in-flight workers finish or hit their deadline),
 * completion delivered in whatever order children finish. Everything
 * here is POSIX; supported() gates the fallback inline path callers
 * keep for exotic platforms.
 */

#ifndef MCUBE_RUN_SUPERVISOR_HH
#define MCUBE_RUN_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "run/exit_triage.hh"

namespace mcube::run
{

/** Per-worker resource limits; 0 disables the respective limit. */
struct WorkerLimits
{
    double wallSeconds = 0.0;       //!< hard per-item deadline
    double heartbeatSeconds = 0.0;  //!< max silence before Stalled
    std::uint64_t rssBytes = 0;     //!< address-space cap (RLIMIT_AS)
};

/** Child-side handle for feeding the heartbeat pipe. */
class Heartbeat
{
  public:
    explicit Heartbeat(int fd = -1) : fd(fd) {}

    /** Signal liveness (one byte, non-blocking, errors ignored — a
     *  full pipe already proves the parent saw recent beats). */
    void beat() const;

    bool active() const { return fd >= 0; }

  private:
    int fd;
};

/** Everything the supervisor learned about one finished worker. */
struct WorkerOutcome
{
    Triage triage = Triage::Fatal;
    int exitCode = -1;      //!< valid when the child exited
    int termSignal = 0;     //!< valid when the child died on a signal
    double wallSeconds = 0.0;
    std::uint64_t heartbeats = 0;
    std::string result;     //!< bytes the worker returned (may be
                            //!< partial/empty for abnormal triage)
    std::string error;      //!< supervisor-side note (fork failure...)
};

/** Forks, watches, kills and triages worker processes. */
class Supervisor
{
  public:
    /**
     * The worker body. Runs in the forked child; writes its
     * serialized result into @p resultOut and returns the exit code
     * (see exit_triage.hh for the conventions). Exceptions escaping
     * the body become kFatalExit.
     */
    using ChildFn =
        std::function<int(const Heartbeat &, std::string &resultOut)>;

    explicit Supervisor(WorkerLimits limits = {}) : limits(limits) {}

    /** True when fork-based isolation is available at all. */
    static bool supported();

    /** Run one item in a supervised worker, blocking until triage. */
    WorkerOutcome runOne(const ChildFn &fn) const;

    /**
     * Run items [0, count) with up to @p jobs concurrent workers.
     * @p makeChild builds item i's body (called in the parent, just
     * before the fork); @p done receives each outcome on the calling
     * thread, in completion order. @p stop is polled before every
     * dispatch: once true, no new worker starts but in-flight workers
     * drain normally (finish, or hit their deadline).
     */
    void runPool(std::size_t count, unsigned jobs,
                 const std::function<ChildFn(std::size_t)> &makeChild,
                 const std::function<void(std::size_t, WorkerOutcome &&)>
                     &done,
                 const std::function<bool()> &stop = {}) const;

    const WorkerLimits &workerLimits() const { return limits; }

  private:
    WorkerLimits limits;
};

} // namespace mcube::run

#endif // MCUBE_RUN_SUPERVISOR_HH
