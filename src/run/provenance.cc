#include "run/provenance.hh"

#include <cstdio>
#include <mutex>

namespace mcube::run
{

const std::string &
gitRevision()
{
    static std::once_flag once;
    static std::string rev = "unknown";
    std::call_once(once, [] {
        if (FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
            char buf[80] = {};
            if (fgets(buf, sizeof(buf), p)) {
                std::string r(buf);
                while (!r.empty()
                       && (r.back() == '\n' || r.back() == '\r'))
                    r.pop_back();
                if (!r.empty())
                    rev = r;
            }
            pclose(p);
        }
    });
    return rev;
}

std::string
provenanceHeader(const std::string &tool, int argc, char **argv)
{
    std::string out = "# " + tool + " rev=" + gitRevision();
    for (int i = 1; i < argc; ++i) {
        out += ' ';
        out += argv[i];
    }
    return out;
}

} // namespace mcube::run
