/**
 * @file
 * Append-only, fsync'd JSONL journal of completed work items.
 *
 * Long harness runs (sweeps, fuzz campaigns, benches) lose hours of
 * finished work when the process dies; the journal makes completed
 * items durable so a restarted run can skip them. The format is built
 * for crash-survival, not elegance:
 *
 *  - one JSON object per line, appended with O_APPEND and fsync'd, so
 *    a line is either fully on disk or absent — a torn final line
 *    (power cut mid-write) is detected and skipped on reload;
 *  - the first line is a header carrying a 64-bit campaign key
 *    (hash of the effective configuration + git revision): a journal
 *    can only resume the exact run shape that wrote it, so "resume"
 *    can never silently mix results from two different campaigns or
 *    binaries;
 *  - a footer line is appended on graceful shutdown; it is advisory
 *    (a journal without one is still valid — that is the whole
 *    point), but lets tooling distinguish "drained cleanly" from
 *    "died mid-run".
 *
 * The determinism contract proved by the sweep/fuzz engines (same
 * seed + index => bit-identical result) is what makes journal-based
 * resume sound: an item's journaled record equals what re-running it
 * would produce, so interrupted + resumed == uninterrupted.
 */

#ifndef MCUBE_RUN_WORK_JOURNAL_HH
#define MCUBE_RUN_WORK_JOURNAL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/json.hh"

namespace mcube::run
{

/** Durable record of which items of one campaign are done. */
class WorkJournal
{
  public:
    WorkJournal() = default;
    ~WorkJournal();

    WorkJournal(const WorkJournal &) = delete;
    WorkJournal &operator=(const WorkJournal &) = delete;

    /**
     * Open (creating or resuming) the journal at @p path.
     *
     * If the file already exists its header key must equal
     * @p campaignKey; on mismatch the open fails — a journal from a
     * different configuration or binary must never feed a resume.
     * Existing well-formed entry lines are loaded (a torn trailing
     * line is neutralized and skipped); @p header is written only
     * when the file is fresh.
     *
     * @return false (with a message in @p err) on I/O failure or key
     *         mismatch.
     */
    bool open(const std::string &path, std::uint64_t campaignKey,
              const Json &header, std::string *err = nullptr);

    bool isOpen() const { return fd >= 0; }
    const std::string &path() const { return _path; }

    /** True if @p item was loaded or recorded. */
    bool has(const std::string &item) const;

    /** The journaled record of @p item, or nullptr. */
    const Json *find(const std::string &item) const;

    /** Items known complete (loaded + recorded). */
    std::size_t completed() const;

    /** Entries loaded from disk by open() (i.e. resumable work). */
    std::size_t loaded() const { return _loaded; }

    /**
     * Durably append @p record for @p item: one JSONL line, fsync'd
     * before returning. Thread-safe (parallel sweep workers record
     * concurrently). @return false on write failure.
     */
    bool record(const std::string &item, Json record);

    /** Append the advisory footer and close the file. Idempotent. */
    void finish();

    /** Close without a footer (what a crash looks like; for tests). */
    void abandon();

    /** Hash a canonical configuration string into a campaign key. */
    static std::uint64_t keyOf(const std::string &canonicalConfig);

  private:
    bool writeLine(const std::string &line);

    mutable std::mutex lock;
    int fd = -1;
    std::string _path;
    std::size_t _loaded = 0;
    std::map<std::string, Json> entries;
};

} // namespace mcube::run

#endif // MCUBE_RUN_WORK_JOURNAL_HH
