#include "run/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <new>
#include <vector>

#ifdef __unix__
#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace mcube::run
{

void
Heartbeat::beat() const
{
#ifdef __unix__
    if (fd < 0)
        return;
    // Non-blocking single byte; EAGAIN means the pipe already holds
    // 64K unread beats, which proves liveness better than blocking
    // the simulation on it would.
    char b = 1;
    ssize_t n;
    do {
        n = ::write(fd, &b, 1);
    } while (n < 0 && errno == EINTR);
#endif
}

bool
Supervisor::supported()
{
#ifdef __unix__
    return true;
#else
    return false;
#endif
}

#ifdef __unix__

namespace
{

using Clock = std::chrono::steady_clock;

struct ChildProc
{
    pid_t pid = -1;
    std::size_t index = 0;
    int hbFd = -1;   //!< parent's read end of the heartbeat pipe
    int resFd = -1;  //!< parent's read end of the result pipe
    Clock::time_point start;
    Clock::time_point deadline;
    Clock::time_point hbDeadline;
    bool hasDeadline = false;
    bool hasHb = false;
    SupervisorKill kill = SupervisorKill::None;
    WorkerOutcome out;
};

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
writeAll(int fd, const char *p, std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return;  // parent gone (EPIPE) or pipe broken: give up
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

/** Drain @p fd into @p out; returns false once EOF is reached. */
bool
drainFd(int fd, std::string *out, std::uint64_t *beats)
{
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            if (out)
                out->append(buf, static_cast<std::size_t>(n));
            if (beats)
                *beats += static_cast<std::uint64_t>(n);
            continue;
        }
        if (n == 0)
            return false;  // EOF: writer closed
        if (errno == EINTR)
            continue;
        return true;  // EAGAIN: nothing more right now
    }
}

[[noreturn]] void
runChild(const Supervisor::ChildFn &fn, const WorkerLimits &limits,
         int hbWrite, int resWrite)
{
    // The parent coordinates graceful shutdown: its first SIGINT or
    // SIGTERM means "stop dispatching, let workers drain", so the
    // worker itself must not die on a terminal-delivered signal. The
    // parent's hard kill is SIGKILL, which cannot be ignored.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGTERM, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);

    if (limits.rssBytes > 0) {
        // RLIMIT_AS, not RLIMIT_RSS: the latter is unenforced on
        // modern Linux. Address space over-counts reservations a
        // little, but the simulator's big tables are touched pages.
        struct rlimit rl;
        rl.rlim_cur = limits.rssBytes;
        rl.rlim_max = limits.rssBytes;
        ::setrlimit(RLIMIT_AS, &rl);
    }
    // Allocation failure under the cap gets its own exit code so the
    // supervisor triages it as OOM, not as a generic crash.
    std::set_new_handler([] {
        std::fputs("worker: allocation failed under the memory cap\n",
                   stderr);
        ::_exit(kOomExit);
    });

    int code = kFatalExit;
    std::string result;
    try {
        code = fn(Heartbeat(hbWrite), result);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "worker: uncaught exception: %s\n",
                     e.what());
        code = kFatalExit;
    } catch (...) {
        std::fputs("worker: uncaught non-standard exception\n", stderr);
        code = kFatalExit;
    }
    writeAll(resWrite, result.data(), result.size());
    ::close(resWrite);
    ::close(hbWrite);
    std::fflush(stderr);
    // _exit, never return: unwinding into the parent's main (gtest,
    // atexit handlers, stdio flush of inherited buffers) from a fork
    // would corrupt the parent's own output and state.
    ::_exit(code);
}

bool
spawn(const Supervisor::ChildFn &fn, const WorkerLimits &limits,
      std::size_t index, ChildProc &cp)
{
    int hb[2] = {-1, -1};
    int res[2] = {-1, -1};
    if (::pipe(hb) != 0)
        return false;
    if (::pipe(res) != 0) {
        ::close(hb[0]);
        ::close(hb[1]);
        return false;
    }
    setNonBlocking(hb[0]);
    setNonBlocking(res[0]);
    setNonBlocking(hb[1]);  // beat() must never block the simulation

    // Flush stdio so the child's inherited buffers are empty; a child
    // _exit never flushes, so nothing can be emitted twice.
    std::fflush(stdout);
    std::fflush(stderr);

    pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {hb[0], hb[1], res[0], res[1]})
            ::close(fd);
        return false;
    }
    if (pid == 0) {
        ::close(hb[0]);
        ::close(res[0]);
        runChild(fn, limits, hb[1], res[1]);  // never returns
    }

    ::close(hb[1]);
    ::close(res[1]);

    cp = ChildProc{};
    cp.pid = pid;
    cp.index = index;
    cp.hbFd = hb[0];
    cp.resFd = res[0];
    cp.start = Clock::now();
    if (limits.wallSeconds > 0) {
        cp.hasDeadline = true;
        cp.deadline =
            cp.start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               limits.wallSeconds));
    }
    if (limits.heartbeatSeconds > 0) {
        cp.hasHb = true;
        cp.hbDeadline =
            cp.start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               limits.heartbeatSeconds));
    }
    return true;
}

} // namespace

void
Supervisor::runPool(
    std::size_t count, unsigned jobs,
    const std::function<ChildFn(std::size_t)> &makeChild,
    const std::function<void(std::size_t, WorkerOutcome &&)> &done,
    const std::function<bool()> &stop) const
{
    if (count == 0)
        return;
    jobs = std::max(1u, jobs);

    std::vector<ChildProc> running;
    running.reserve(jobs);
    std::size_t nextIndex = 0;
    bool draining = false;

    const auto hbWindow = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(limits.heartbeatSeconds));

    for (;;) {
        if (!draining && stop && stop())
            draining = true;

        // Dispatch up to the worker cap (unless draining).
        while (!draining && nextIndex < count
               && running.size() < jobs) {
            ChildProc cp;
            if (!spawn(makeChild(nextIndex), limits, nextIndex, cp)) {
                WorkerOutcome bad;
                bad.triage = Triage::Fatal;
                bad.error = "fork/pipe failed";
                done(nextIndex, std::move(bad));
            } else {
                running.push_back(std::move(cp));
            }
            ++nextIndex;
            if (stop && stop())
                draining = true;
        }

        if (running.empty()) {
            if (draining || nextIndex >= count)
                return;
            continue;
        }

        // Wait for output, exit, or the nearest deadline.
        std::vector<pollfd> fds;
        fds.reserve(running.size() * 2);
        for (const auto &cp : running) {
            if (cp.hbFd >= 0)
                fds.push_back({cp.hbFd, POLLIN, 0});
            if (cp.resFd >= 0)
                fds.push_back({cp.resFd, POLLIN, 0});
        }
        auto now = Clock::now();
        // 200ms floor keeps the stop predicate responsive even when
        // no deadline is near; deadlines shorten the wait.
        auto wait = std::chrono::milliseconds(200);
        for (const auto &cp : running) {
            if (cp.kill != SupervisorKill::None)
                continue;
            if (cp.hasDeadline)
                wait = std::min(
                    wait, std::chrono::duration_cast<
                              std::chrono::milliseconds>(cp.deadline
                                                         - now));
            if (cp.hasHb)
                wait = std::min(
                    wait, std::chrono::duration_cast<
                              std::chrono::milliseconds>(cp.hbDeadline
                                                         - now));
        }
        int timeoutMs = static_cast<int>(
            std::max<std::chrono::milliseconds::rep>(wait.count(), 0));
        // With every pipe at EOF but the child still alive, poll is
        // a plain sleep — never a spin on waitpid.
        int pr = ::poll(fds.empty() ? nullptr : fds.data(),
                        static_cast<nfds_t>(fds.size()),
                        timeoutMs + 1);
        if (pr < 0 && errno != EINTR)
            return;  // unrecoverable; children get reaped by init

        now = Clock::now();
        for (auto &cp : running) {
            // Drain pipes first so a burst of beats observed before
            // the deadline check counts in the child's favour.
            if (cp.hbFd >= 0) {
                std::uint64_t beats = 0;
                if (!drainFd(cp.hbFd, nullptr, &beats)) {
                    ::close(cp.hbFd);
                    cp.hbFd = -1;
                }
                if (beats > 0) {
                    cp.out.heartbeats += beats;
                    if (cp.hasHb)
                        cp.hbDeadline = now + hbWindow;
                }
            }
            if (cp.resFd >= 0) {
                if (!drainFd(cp.resFd, &cp.out.result, nullptr)) {
                    ::close(cp.resFd);
                    cp.resFd = -1;
                }
            }
            if (cp.kill == SupervisorKill::None) {
                if (cp.hasDeadline && now >= cp.deadline) {
                    cp.kill = SupervisorKill::Deadline;
                    ::kill(cp.pid, SIGKILL);
                } else if (cp.hasHb && now >= cp.hbDeadline) {
                    cp.kill = SupervisorKill::Heartbeat;
                    ::kill(cp.pid, SIGKILL);
                }
            }
        }

        // Reap whatever finished; deliver outcomes.
        for (std::size_t i = 0; i < running.size();) {
            ChildProc &cp = running[i];
            int status = 0;
            pid_t r = ::waitpid(cp.pid, &status, WNOHANG);
            if (r == 0) {
                ++i;
                continue;
            }
            // Pull any bytes still buffered in the pipes (they
            // outlive the writer), then finalize.
            if (cp.hbFd >= 0) {
                drainFd(cp.hbFd, nullptr, &cp.out.heartbeats);
                ::close(cp.hbFd);
            }
            if (cp.resFd >= 0) {
                drainFd(cp.resFd, &cp.out.result, nullptr);
                ::close(cp.resFd);
            }
            WorkerOutcome out = std::move(cp.out);
            if (r < 0) {
                out.triage = Triage::Fatal;
                out.error = "waitpid failed";
            } else {
                out.triage = triageWaitStatus(status, cp.kill);
                if (WIFEXITED(status))
                    out.exitCode = WEXITSTATUS(status);
                if (WIFSIGNALED(status))
                    out.termSignal = WTERMSIG(status);
            }
            out.wallSeconds =
                std::chrono::duration<double>(Clock::now() - cp.start)
                    .count();
            std::size_t index = cp.index;
            running.erase(running.begin()
                          + static_cast<std::ptrdiff_t>(i));
            done(index, std::move(out));
        }
    }
}

#else // !__unix__

void
Supervisor::runPool(
    std::size_t count, unsigned jobs,
    const std::function<ChildFn(std::size_t)> &makeChild,
    const std::function<void(std::size_t, WorkerOutcome &&)> &done,
    const std::function<bool()> &stop) const
{
    // No fork(): degrade to inline execution with no isolation. The
    // exit-code conventions still map onto triage kinds.
    (void)jobs;
    for (std::size_t i = 0; i < count; ++i) {
        if (stop && stop())
            return;
        WorkerOutcome out;
        try {
            out.exitCode = makeChild(i)(Heartbeat(), out.result);
        } catch (...) {
            out.exitCode = kFatalExit;
        }
        switch (out.exitCode) {
          case 0:
            out.triage = Triage::Clean;
            break;
          case 1:
            out.triage = Triage::ItemFailed;
            break;
          case 2:
            out.triage = Triage::BadInput;
            break;
          case kOomExit:
            out.triage = Triage::Oom;
            break;
          default:
            out.triage = Triage::Fatal;
            break;
        }
        done(i, std::move(out));
    }
}

#endif // __unix__

WorkerOutcome
Supervisor::runOne(const ChildFn &fn) const
{
    WorkerOutcome result;
    runPool(
        1, 1, [&](std::size_t) { return fn; },
        [&](std::size_t, WorkerOutcome &&out) {
            result = std::move(out);
        });
    return result;
}

} // namespace mcube::run
