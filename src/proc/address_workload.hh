/**
 * @file
 * Address-stream workload: loads and stores with locality, issued
 * through the full two-level cache hierarchy.
 *
 * Unlike MixWorkload (which injects bus transactions directly at the
 * rate the MVA assumes), this workload models what the paper's
 * Section 2 argues qualitatively: each processor touches a large
 * private working set — which the huge snooping cache absorbs almost
 * entirely after warm-up — plus a small shared hot set that produces
 * the coherence traffic. The observed bus request rate is therefore
 * an *output*, demonstrating the "snooping cache reduces bus traffic
 * to shared data and I/O" claim rather than assuming it.
 *
 * Per reference: with probability pShared the address comes from the
 * global shared pool (and is a store with probability pSharedWrite),
 * otherwise from the node's private region (store with probability
 * pPrivateWrite). References are separated by a fixed think time.
 */

#ifndef MCUBE_PROC_ADDRESS_WORKLOAD_HH
#define MCUBE_PROC_ADDRESS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/system.hh"
#include "proc/processor.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

/** Locality and mix parameters. */
struct AddressWorkloadParams
{
    /** Lines in each node's private working set. */
    std::uint64_t privateLines = 512;
    /** Lines in the global shared hot set. */
    std::uint64_t sharedLines = 64;
    double pShared = 0.05;        //!< fraction of refs to shared data
    double pSharedWrite = 0.3;    //!< store fraction within shared refs
    double pPrivateWrite = 0.3;   //!< store fraction within private refs
    Tick thinkTicks = 100;        //!< processor time between refs
    std::uint64_t seed = 77;
    ProcessorParams proc{};
};

/** Drives every node with the address stream. */
class AddressWorkload
{
  public:
    AddressWorkload(MulticubeSystem &sys,
                    const AddressWorkloadParams &params);

    void start();
    void
    stop()
    {
        running = false;
        stopTick = sys.eventQueue().now();
    }

    /** References issued (loads + stores). */
    std::uint64_t references() const { return _refs; }

    /** Observed bus transactions per millisecond per processor —
     *  the paper's "bus request rate", here an output. */
    double observedBusRequestRate() const;

    /** Aggregate L1 / snooping-cache hit fractions. */
    double l1HitRate() const;
    double l2HitRate() const;

    Processor &processor(NodeId id) { return *procs[id]; }

  private:
    struct Agent
    {
        NodeId id = 0;
        Random rng;
    };

    void step(NodeId id);
    void issue(NodeId id);
    Addr pick(Agent &a, bool &is_write);

    MulticubeSystem &sys;
    AddressWorkloadParams params;
    Random seeder;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<Agent> agents;
    bool running = false;
    Tick startTick = 0;
    Tick stopTick = 0;
    std::uint64_t _refs = 0;
    std::uint64_t nextToken = 1;
};

} // namespace mcube

#endif // MCUBE_PROC_ADDRESS_WORKLOAD_HH
