/**
 * @file
 * Memory-reference trace capture and replay.
 *
 * Section 5 notes that "very little data has been published on the
 * memory reference behavior of parallel programs", forcing the
 * paper's evaluation onto statistical workloads. This module provides
 * the infrastructure a trace-based study would use: a compact record
 * format, text serialisation (one record per line, easy to generate
 * from any tool), and a per-node replayer that respects the recorded
 * inter-reference gaps.
 *
 * Record line format:
 *
 *     <node> <L|S|A|T|R> <addr> <token> <gap_ticks>
 *
 * L = load, S = store, A = allocate-store, T = test-and-set,
 * R = release; gap_ticks = think time before the reference.
 */

#ifndef MCUBE_PROC_TRACE_HH
#define MCUBE_PROC_TRACE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "proc/processor.hh"
#include "sim/types.hh"

namespace mcube
{

/** Kinds of traced references. */
enum class TraceOp : char
{
    Load = 'L',
    Store = 'S',
    AllocStore = 'A',
    Tset = 'T',
    Release = 'R',
};

/** One traced memory reference. */
struct TraceRecord
{
    NodeId node = 0;
    TraceOp op = TraceOp::Load;
    Addr addr = 0;
    std::uint64_t token = 0;
    Tick gap = 0;  //!< think time before issuing this reference

    bool operator==(const TraceRecord &) const = default;
};

/** An in-memory trace with text (de)serialisation. */
class Trace
{
  public:
    Trace() = default;

    void add(const TraceRecord &r) { records.push_back(r); }
    const std::vector<TraceRecord> &all() const { return records; }
    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    /** Write one record per line. */
    void save(std::ostream &os) const;

    /**
     * Parse a text trace. @return false on malformed input (parsing
     * stops at the first bad line; earlier records are kept).
     */
    bool load(std::istream &is);

    /** Records belonging to one node, in order. */
    std::vector<TraceRecord> forNode(NodeId node) const;

    /** Highest node id referenced (0 if empty). */
    NodeId maxNode() const;

  private:
    std::vector<TraceRecord> records;
};

/**
 * Replays a trace on a MulticubeSystem, one asynchronous reference
 * stream per node (each node owns a Processor front-end).
 */
class TraceReplayer
{
  public:
    TraceReplayer(MulticubeSystem &sys, const Trace &trace,
                  const ProcessorParams &pp = {});

    /** Launch all node streams. */
    void start();

    /** True once every stream has drained. */
    bool finished() const;

    /** References completed so far. */
    std::uint64_t completed() const { return _completed; }

    /** Per-node processors (for stats inspection). */
    Processor &processor(NodeId node) { return *procs[node]; }

  private:
    struct Stream
    {
        std::vector<TraceRecord> refs;
        std::size_t next = 0;
        bool done = false;
    };

    void step(NodeId node);
    void issue(NodeId node);

    MulticubeSystem &sys;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<Stream> streams;
    std::uint64_t _completed = 0;
};

} // namespace mcube

#endif // MCUBE_PROC_TRACE_HH
