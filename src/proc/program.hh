/**
 * @file
 * A tiny per-node program interpreter for synchronisation studies.
 *
 * Examples and benches describe each processor's behaviour as a short
 * instruction list (loads, stores, lock acquire/release in three
 * flavours, compute delays, counted loops). The interpreter drives a
 * Processor asynchronously on the shared event queue; spin loops for
 * the three lock disciplines of Section 4 are built in:
 *
 *   LockTTS   software test-and-test-and-set: spin reading the shared
 *             copy of the lock word, attempt test-and-set on observing
 *             it clear (the single-bus multi technique the paper says
 *             "translates to multiple broadcast operations");
 *   LockTset  hardware remote test-and-set with exponential backoff;
 *   LockSync  the distributed queue lock (SYNC transaction).
 */

#ifndef MCUBE_PROC_PROGRAM_HH
#define MCUBE_PROC_PROGRAM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "proc/processor.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace mcube
{

/** Program opcodes. */
enum class OpCode : std::uint8_t
{
    Load,       //!< acc = mem[addr].token
    Store,      //!< mem[addr].token = imm
    StoreAcc,   //!< mem[addr].token = acc
    StoreAlloc, //!< whole-line store of imm via the ALLOCATE hint
    LockTTS,    //!< acquire lock at addr, test-and-test-and-set
    LockTset,   //!< acquire lock at addr, remote tset + backoff
    LockSync,   //!< acquire lock at addr, SYNC queue lock
    Unlock,     //!< release lock at addr, storing imm (0: keep acc)
    Compute,    //!< spin the processor for imm ticks
    SetCnt,     //!< cnt = imm
    DecJnz,     //!< if (--cnt != 0) goto target
    AddAcc,     //!< acc += imm (no memory access)
    Halt,       //!< stop; onDone fires
};

/** One instruction. */
struct Instr
{
    OpCode op = OpCode::Halt;
    Addr addr = 0;
    std::uint64_t imm = 0;
    int target = 0;  //!< jump target (instruction index)
};

/** Convenience constructors for readable program listings. */
namespace prog
{

inline Instr load(Addr a) { return {OpCode::Load, a, 0, 0}; }
inline Instr
store(Addr a, std::uint64_t v)
{
    return {OpCode::Store, a, v, 0};
}
inline Instr storeAcc(Addr a) { return {OpCode::StoreAcc, a, 0, 0}; }
inline Instr
storeAlloc(Addr a, std::uint64_t v)
{
    return {OpCode::StoreAlloc, a, v, 0};
}
inline Instr lockTTS(Addr a) { return {OpCode::LockTTS, a, 0, 0}; }
inline Instr lockTset(Addr a) { return {OpCode::LockTset, a, 0, 0}; }
inline Instr lockSync(Addr a) { return {OpCode::LockSync, a, 0, 0}; }
inline Instr
unlock(Addr a, std::uint64_t v = 0)
{
    return {OpCode::Unlock, a, v, 0};
}
inline Instr compute(Tick t) { return {OpCode::Compute, 0, t, 0}; }
inline Instr setCnt(std::uint64_t c) { return {OpCode::SetCnt, 0, c, 0}; }
inline Instr decJnz(int tgt) { return {OpCode::DecJnz, 0, 0, tgt}; }
inline Instr addAcc(std::uint64_t v) { return {OpCode::AddAcc, 0, v, 0}; }
inline Instr halt() { return {OpCode::Halt, 0, 0, 0}; }

} // namespace prog

/** Executes one program on one Processor. */
class ProgramRunner
{
  public:
    ProgramRunner(std::string name, EventQueue &eq, Processor &proc,
                  std::vector<Instr> program, std::uint64_t seed = 5);

    ProgramRunner(const ProgramRunner &) = delete;
    ProgramRunner &operator=(const ProgramRunner &) = delete;

    /** Start executing at instruction 0. */
    void start();

    bool halted() const { return _halted; }
    std::uint64_t acc() const { return _acc; }
    Tick finishTick() const { return _finishTick; }

    /** Lock acquisitions performed, per discipline attempts. */
    std::uint64_t lockAcquires() const { return _lockAcquires; }
    std::uint64_t spinReads() const { return _spinReads; }
    std::uint64_t tsetAttempts() const { return _tsetAttempts; }

    /** Fires when the program halts. */
    std::function<void()> onDone;

  private:
    void step();
    void advance() { ++pc; step(); }
    void spinTTS(Addr addr);
    void spinTset(Addr addr, Tick backoff);

    std::string name;
    EventQueue &eq;
    Processor &proc;
    std::vector<Instr> program;
    Random rng;

    std::size_t pc = 0;
    std::uint64_t _acc = 0;
    std::uint64_t cnt = 0;
    bool _halted = false;
    Tick _finishTick = 0;

    std::uint64_t _lockAcquires = 0;
    std::uint64_t _spinReads = 0;
    std::uint64_t _tsetAttempts = 0;
};

} // namespace mcube

#endif // MCUBE_PROC_PROGRAM_HH
