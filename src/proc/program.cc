#include "proc/program.hh"

#include <cassert>
#include <utility>

namespace mcube
{

ProgramRunner::ProgramRunner(std::string name, EventQueue &eq,
                             Processor &proc, std::vector<Instr> program,
                             std::uint64_t seed)
    : name(std::move(name)), eq(eq), proc(proc),
      program(std::move(program)), rng(seed)
{
}

void
ProgramRunner::start()
{
    pc = 0;
    _halted = false;
    step();
}

void
ProgramRunner::step()
{
    if (pc >= program.size()) {
        _halted = true;
        _finishTick = eq.now();
        if (onDone)
            onDone();
        return;
    }

    const Instr &in = program[pc];
    switch (in.op) {
      case OpCode::Load:
        proc.load(in.addr, [this](std::uint64_t tok) {
            _acc = tok;
            advance();
        });
        break;

      case OpCode::Store:
        proc.store(in.addr, in.imm, [this] { advance(); });
        break;

      case OpCode::StoreAcc:
        proc.store(in.addr, _acc, [this] { advance(); });
        break;

      case OpCode::StoreAlloc:
        proc.storeAllocate(in.addr, in.imm, [this] { advance(); });
        break;

      case OpCode::LockTTS:
        spinTTS(in.addr);
        break;

      case OpCode::LockTset:
        spinTset(in.addr, 200);
        break;

      case OpCode::LockSync:
        proc.syncAcquire(in.addr, [this, addr = in.addr](bool granted) {
            if (granted) {
                ++_lockAcquires;
                advance();
            } else {
                // Local double-acquire; retry this instruction.
                (void)addr;
                eq.scheduleIn(100, [this] { step(); });
            }
        });
        break;

      case OpCode::Unlock:
        proc.release(in.addr, in.imm ? in.imm : _acc,
                     [this] { advance(); });
        break;

      case OpCode::Compute:
        eq.scheduleIn(in.imm, [this] { advance(); });
        break;

      case OpCode::SetCnt:
        cnt = in.imm;
        advance();
        break;

      case OpCode::DecJnz:
        assert(cnt > 0);
        if (--cnt != 0) {
            pc = static_cast<std::size_t>(in.target);
            step();
        } else {
            advance();
        }
        break;

      case OpCode::AddAcc:
        _acc += in.imm;
        advance();
        break;

      case OpCode::Halt:
        _halted = true;
        _finishTick = eq.now();
        if (onDone)
            onDone();
        break;
    }
}

void
ProgramRunner::spinTTS(Addr addr)
{
    // Spin on the shared copy of the lock word; attempt the atomic
    // only when it reads clear.
    ++_spinReads;
    proc.loadLine(addr, [this, addr](const LineData &d) {
        if (d.lock != 0) {
            eq.scheduleIn(50, [this, addr] { spinTTS(addr); });
            return;
        }
        ++_tsetAttempts;
        proc.testAndSet(addr, [this, addr](bool granted) {
            if (granted) {
                ++_lockAcquires;
                advance();
            } else {
                spinTTS(addr);
            }
        });
    });
}

void
ProgramRunner::spinTset(Addr addr, Tick backoff)
{
    ++_tsetAttempts;
    proc.testAndSet(addr, [this, addr, backoff](bool granted) {
        if (granted) {
            ++_lockAcquires;
            advance();
            return;
        }
        Tick delay = backoff + rng.below(64);
        Tick next_backoff = backoff < 3200 ? backoff * 2 : backoff;
        eq.scheduleIn(delay, [this, addr, next_backoff] {
            spinTset(addr, next_backoff);
        });
    });
}

} // namespace mcube
