/**
 * @file
 * Randomised protocol tester in the spirit of gem5's Ruby random
 * tester: every node issues a random stream of reads, writes,
 * allocate-writes, test-and-sets and releases over a small, highly
 * contended address pool, while the CoherenceChecker validates the
 * global invariants after every bus operation. Read results are
 * validated against the golden value history (any value that was
 * golden while the read was outstanding is accepted — the paper's
 * relaxed ordering).
 */

#ifndef MCUBE_PROC_RANDOM_TESTER_HH
#define MCUBE_PROC_RANDOM_TESTER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/checker.hh"
#include "core/system.hh"
#include "sim/json.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace mcube
{

/** Configuration of a random tester run. */
struct RandomTesterParams
{
    unsigned numDataLines = 24;   //!< contended plain-data pool
    unsigned numLockLines = 4;    //!< pool used only by tset/release
    unsigned opsPerNode = 200;
    double pWrite = 0.35;
    double pAllocate = 0.05;
    double pTset = 0.15;          //!< lock ops (0 disables sync tests)
    /** Of the lock ops, fraction using the SYNC queue lock instead of
     *  remote test-and-set (stresses the chain join/hand-off/abort
     *  machinery, especially in chaos mode). */
    double pSyncOfLocks = 0.0;
    Tick maxThink = 400;          //!< uniform think time between ops
    std::uint64_t seed = 31;
    /** Chaos mode: plain reads/writes may also target lock lines,
     *  exercising the broken-protocol degeneration paths. */
    bool chaos = false;
    /** Restrict the tester to these nodes (empty = every node).
     *  Needed when other drivers own some nodes' request slots. */
    std::vector<NodeId> onlyNodes{};
};

/** @{ JSON round-tripping for repro artifacts (tools/fuzz_campaign). */
Json toJson(const RandomTesterParams &p);
bool randomTesterParamsFromJson(const Json &j, RandomTesterParams &out);
/** @} */

/** One oracle (golden-value) failure, machine-readable. */
struct OracleFailure
{
    NodeId node = 0;
    Addr addr = 0;
    std::uint64_t token = 0;  //!< value the read returned
    Tick from = 0;            //!< window the value had to be golden in
    Tick to = 0;
};

/** Drives a system with random traffic and validates results. */
class RandomTester
{
  public:
    RandomTester(MulticubeSystem &sys, CoherenceChecker &checker,
                 const RandomTesterParams &params);

    /** Launch all node loops. */
    void start();

    /** True once every node has issued its quota and drained. */
    bool finished() const;

    /** @{ Run totals. Counters live per agent (an agent's issue and
     *  completion events run on its node's home lane under the
     *  parallel engine, so shared counters would race); the accessors
     *  sum them, which is exactly the old shared-counter value. */
    std::uint64_t readsChecked() const { return sumAgents(&Agent::readsChecked); }
    std::uint64_t readFailures() const { return _read_failures; }
    std::uint64_t opsIssued() const { return sumAgents(&Agent::ops); }
    std::uint64_t locksTaken() const { return sumAgents(&Agent::locks); }
    /** Transactions cut short by an epoch cutover (TxnResult::aborted);
     *  the numerator of a degraded-mode unavailability ratio. */
    std::uint64_t opsAborted() const { return sumAgents(&Agent::aborted); }
    /** @} */

    /**
     * Blocklist predicate for unroutable issues (fail-stop plans): a
     * true return means the tester redraws instead of issuing the
     * address from that node. Agents whose node retires finish early
     * on their own — this filter is what keeps the *surviving* agents
     * off quarantined ranges and off addresses whose request relay
     * died with their row-mate (requests, unlike replies, cannot be
     * rerouted; see ReconfigurationManager::requestRoutable).
     * Deterministic as long as the predicate is (it only flips at
     * kill/drain ticks).
     */
    void setAddrFilter(std::function<bool(NodeId, Addr)> fn)
    {
        addrFilter = std::move(fn);
    }

    /** First few read-check failure descriptions. */
    const std::vector<std::string> &failures() const { return _failLog; }

    /** Structured form of the first few oracle failures. */
    const std::vector<OracleFailure> &failureRecords() const
    {
        return _failRecords;
    }

    /**
     * Order-sensitive digest of everything this run produced: op and
     * check counts, lock grants, per-agent token cursors and the
     * final simulated time. Two runs of the same seed and params on
     * the same binary must produce the same hash — the "same seed =>
     * same run" property the fuzz campaign's replay mode checks.
     * Combine with system-level counters (bus ops, injections) via
     * hashCombine for a whole-run fingerprint.
     */
    std::uint64_t resultHash() const;

    /** FNV-1a step, exposed for whole-run fingerprints. */
    static std::uint64_t hashCombine(std::uint64_t h, std::uint64_t v);

    /**
     * One-line copy-pasteable command reproducing this run under
     * tools/fuzz_campaign --one-off (system seed and grid size
     * included). Printed ahead of failure reports so a red run in a
     * log is always re-runnable.
     */
    std::string reproCommand() const;

  private:
    struct Agent
    {
        NodeId id = 0;
        Random rng;
        std::uint64_t opsLeft = 0;
        std::uint64_t nextToken = 1;
        Addr heldLock = 0;
        bool holdingLock = false;
        bool done = false;
        /** Lane-local counters; see the accessor block above. */
        std::uint64_t ops = 0;
        std::uint64_t readsChecked = 0;
        std::uint64_t locks = 0;
        std::uint64_t aborted = 0;
    };

    std::uint64_t
    sumAgents(std::uint64_t Agent::*field) const
    {
        std::uint64_t t = 0;
        for (const auto &a : agents)
            t += a.*field;
        return t;
    }

    void next(Agent &a);
    void issue(Agent &a);
    Addr pickData(Agent &a);
    Addr pickLock(Agent &a);
    Addr rawPickData(Agent &a);
    Addr rawPickLock(Agent &a);
    bool filtered(NodeId node, Addr addr) const
    {
        return addrFilter && addrFilter(node, addr);
    }
    std::uint64_t freshToken(Agent &a);

    MulticubeSystem &sys;
    CoherenceChecker &checker;
    RandomTesterParams params;
    Random seeder;
    std::vector<Agent> agents;

    void recordFailure(NodeId node, Addr addr, std::uint64_t token,
                       Tick from, Tick to, const char *how);

    /** Only mutated by recordFailure(), which runs on the serial lane
     *  under the parallel engine (read checks are deferred there
     *  along with their checker queries). */
    std::uint64_t _read_failures = 0;
    std::function<bool(NodeId, Addr)> addrFilter;
    std::vector<std::string> _failLog;
    std::vector<OracleFailure> _failRecords;
};

} // namespace mcube

#endif // MCUBE_PROC_RANDOM_TESTER_HH
