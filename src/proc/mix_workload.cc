#include "proc/mix_workload.hh"

#include <cassert>

namespace mcube
{

namespace
{

/** Ticks per millisecond (1 tick = 1 ns). */
constexpr double ticksPerMs = 1e6;

} // namespace

MixWorkload::MixWorkload(MulticubeSystem &sys, const MixParams &params)
    : sys(sys), params(params), seeder(params.seed),
      par_(sys.eventQueue().parallelActive()), stats("mix")
{
    [[maybe_unused]] double sum = params.fracReadUnmod
        + params.fracReadMod + params.fracWriteUnmod
        + params.fracWriteMod;
    assert(sum > 0.999 && sum < 1.001 && "class mix must sum to 1");

    agents.resize(sys.numNodes());
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        agents[id].id = id;
        agents[id].rng = seeder.fork();
    }

    stats.addCounter("read_unmod", classDone[0]);
    stats.addCounter("read_mod", classDone[1]);
    stats.addCounter("write_unmod", classDone[2]);
    stats.addCounter("write_mod", classDone[3]);
    stats.addCounter("mod_targeted", statModTargeted,
                     "requests aimed at a registry-modified line");
    stats.addCounter("mod_registry_empty", statModMissedRegistry,
                     "modified-class requests downgraded (registry dry)");
    stats.addDistribution("latency", statLatency,
                          "bus transaction latency (ticks)");
}

void
MixWorkload::start()
{
    startTick = sys.eventQueue().now();
    running = true;
    for (auto &a : agents)
        scheduleNext(a);
}

void
MixWorkload::scheduleNext(Agent &a)
{
    if (!running)
        return;
    double mean_think = ticksPerMs / params.requestsPerMs;
    Tick think = static_cast<Tick>(a.rng.exponential(mean_think));
    if (think == 0)
        think = 1;
    a.computeTicks += think;
    NodeId id = a.id;
    // Pin the issue to the node's home lane: the next issue touches
    // only this agent, its controller and its row port. Sequentially
    // (homeLane() == 0, no engine) this is exactly scheduleIn().
    sys.eventQueue().scheduleToLane(sys.node(id).homeLane(), think,
                                    [this, id] { issue(agents[id]); });
}

bool
MixWorkload::pickModified(Agent &a, Addr &addr_out)
{
    // Compact the sampling vector opportunistically.
    while (!modifiedList.empty()) {
        std::size_t i = a.rng.below(
            static_cast<std::uint32_t>(modifiedList.size()));
        Addr cand = modifiedList[i];
        auto it = modifiedBy.find(cand);
        if (it == modifiedBy.end()) {
            modifiedList[i] = modifiedList.back();
            modifiedList.pop_back();
            continue;
        }
        if (it->second == a.id) {
            // Our own modified line would be a cache hit, not a bus
            // transaction; try again (bounded by list shuffling).
            if (modifiedList.size() == 1)
                return false;
            std::size_t j = a.rng.below(
                static_cast<std::uint32_t>(modifiedList.size()));
            if (j == i)
                return false;
            continue;
        }
        addr_out = cand;
        return true;
    }
    return false;
}

bool
MixWorkload::pickModifiedFrozen(Agent &a, Addr &addr_out)
{
    if (modifiedList.empty())
        return false;
    // Bounded resampling over the frozen vector: stale or self-owned
    // entries are skipped, not pruned (pruning would race concurrent
    // issuers on other row lanes). The bound keeps the draw count —
    // and hence the RNG stream — deterministic.
    for (unsigned tries = 0; tries < 8; ++tries) {
        std::size_t i = a.rng.below(
            static_cast<std::uint32_t>(modifiedList.size()));
        Addr cand = modifiedList[i];
        auto it = modifiedBy.find(cand);
        if (it == modifiedBy.end() || it->second == a.id)
            continue;
        addr_out = cand;
        return true;
    }
    return false;
}

void
MixWorkload::recordDone(NodeId id, unsigned cls, Addr addr,
                        bool is_write, Tick latency)
{
    statLatency.sample(static_cast<double>(latency));
    ++classDone[cls];
    if (is_write) {
        auto [it, fresh] = modifiedBy.emplace(addr, id);
        if (!fresh)
            it->second = id;
        else
            modifiedList.push_back(addr);
    } else {
        // A READ demotes a modified line to global unmodified.
        modifiedBy.erase(addr);
        if (par_ && modifiedList.size() > 2 * modifiedBy.size() + 64) {
            // The frozen picker never prunes, so compact here — on
            // the serial lane, where the registry is exclusively
            // owned — once stale entries dominate.
            std::erase_if(modifiedList, [this](Addr a2) {
                return modifiedBy.find(a2) == modifiedBy.end();
            });
        }
    }
}

void
MixWorkload::issue(Agent &a)
{
    if (!running) {
        return;
    }

    SnoopController &ctrl = sys.node(a.id);
    if (ctrl.retired()) {
        // The node fail-stopped; this agent stops with it.
        return;
    }
    if (ctrl.busy()) {
        // Should not happen (one request per node), but be safe.
        scheduleNext(a);
        return;
    }

    double r = a.rng.uniform();
    unsigned cls;
    if (r < params.fracReadUnmod)
        cls = 0;
    else if (r < params.fracReadUnmod + params.fracReadMod)
        cls = 1;
    else if (r < params.fracReadUnmod + params.fracReadMod
                     + params.fracWriteUnmod)
        cls = 2;
    else
        cls = 3;

    Addr addr = 0;
    bool to_modified = false;
    if (cls == 1 || cls == 3) {
        bool picked = par_ ? pickModifiedFrozen(a, addr)
                           : pickModified(a, addr);
        if (picked) {
            to_modified = true;
            if (par_)
                ++a.modTargeted;
            else
                ++statModTargeted;
        } else {
            if (par_)
                ++a.modMissedRegistry;
            else
                ++statModMissedRegistry;
            cls = cls == 1 ? 0 : 2;  // downgrade to the unmod class
        }
    }
    if (!to_modified)
        addr = a.rng.next64() % params.addressSpace;

    NodeId id = a.id;
    bool is_write = cls >= 2;
    auto done = [this, id, cls, addr,
                 is_write](const TxnResult &res) {
        Agent &ag = agents[id];
        if (res.aborted) {
            // Cut short by an epoch transition: not a completion, and
            // the line's registry state is whatever the cutover left.
            scheduleNext(ag);
            return;
        }
        // The registry and latency stats are shared across all nodes:
        // under the parallel engine (where this callback runs on the
        // node's home lane) the bookkeeping crosses to the serial
        // lane; sequentially deferToLane runs it inline, exactly as
        // before. The next think-time timer needs nothing shared and
        // stays on the home lane.
        Tick lat = res.latency;
        sys.eventQueue().deferToLane(0, [this, id, cls, addr, is_write,
                                         lat] {
            recordDone(id, cls, addr, is_write, lat);
        });
        scheduleNext(ag);
    };

    AccessOutcome out;
    std::uint64_t tok = 0;
    if (is_write)
        out = ctrl.write(addr, (static_cast<std::uint64_t>(a.id + 1)
                                << 40) + a.nextToken++,
                         done);
    else
        out = ctrl.read(addr, tok, done);

    if (out == AccessOutcome::Hit) {
        // Rare (registry raced with a local hit): count and move on.
        TxnResult res;
        res.latency = 0;
        done(res);
    }
}

double
MixWorkload::efficiency() const
{
    // Paper metric: achieved speed relative to a machine with no bus
    // or memory latency. With non-overlapping requests that equals
    // achieved throughput / ideal throughput (= the request rate).
    Tick end = stopTick ? stopTick : sys.eventQueue().now();
    if (end <= startTick)
        return 1.0;
    double elapsed_ms = static_cast<double>(end - startTick) / 1e6;
    double ideal = params.requestsPerMs * elapsed_ms
                 * static_cast<double>(agents.size());
    if (ideal <= 0.0)
        return 1.0;
    double eff = static_cast<double>(totalCompleted()) / ideal;
    return eff > 1.0 ? 1.0 : eff;
}

std::uint64_t
MixWorkload::totalCompleted() const
{
    std::uint64_t t = 0;
    for (const auto &c : classDone)
        t += c.value();
    return t;
}

double
MixWorkload::achievedModifiedFraction() const
{
    std::uint64_t total = totalCompleted();
    if (total == 0)
        return 0.0;
    return static_cast<double>(statModTargeted.value())
         / static_cast<double>(total);
}

void
MixWorkload::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
