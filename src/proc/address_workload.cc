#include "proc/address_workload.hh"

namespace mcube
{

namespace
{

/** Private regions are spaced far apart and far from the shared set. */
constexpr Addr privateBase = 1ull << 32;
constexpr Addr privateStride = 1ull << 24;

} // namespace

AddressWorkload::AddressWorkload(MulticubeSystem &sys,
                                 const AddressWorkloadParams &params)
    : sys(sys), params(params), seeder(params.seed)
{
    agents.resize(sys.numNodes());
    procs.reserve(sys.numNodes());
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        agents[id].id = id;
        agents[id].rng = seeder.fork();
        procs.push_back(std::make_unique<Processor>(
            "aw" + std::to_string(id), sys.eventQueue(), sys.node(id),
            params.proc));
    }
}

void
AddressWorkload::start()
{
    startTick = sys.eventQueue().now();
    running = true;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        step(id);
}

void
AddressWorkload::step(NodeId id)
{
    if (!running)
        return;
    sys.eventQueue().scheduleIn(params.thinkTicks,
                                [this, id] { issue(id); });
}

Addr
AddressWorkload::pick(Agent &a, bool &is_write)
{
    if (a.rng.chance(params.pShared)) {
        is_write = a.rng.chance(params.pSharedWrite);
        return a.rng.below(
            static_cast<std::uint32_t>(params.sharedLines));
    }
    is_write = a.rng.chance(params.pPrivateWrite);
    return privateBase + a.id * privateStride
         + a.rng.below(static_cast<std::uint32_t>(params.privateLines));
}

void
AddressWorkload::issue(NodeId id)
{
    if (!running)
        return;
    Agent &a = agents[id];
    Processor &p = *procs[id];
    if (p.busy()) {
        step(id);
        return;
    }

    bool is_write = false;
    Addr addr = pick(a, is_write);
    ++_refs;
    if (is_write) {
        p.store(addr,
                (static_cast<std::uint64_t>(id + 1) << 40)
                    + nextToken++,
                [this, id] { step(id); });
    } else {
        p.load(addr, [this, id](std::uint64_t) { step(id); });
    }
}

double
AddressWorkload::observedBusRequestRate() const
{
    Tick end = stopTick ? stopTick : sys.eventQueue().now();
    if (end <= startTick)
        return 0.0;
    double elapsed_ms = static_cast<double>(end - startTick) / 1e6;
    std::uint64_t misses = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        misses += sys.node(id).misses();
    return static_cast<double>(misses)
         / (elapsed_ms * static_cast<double>(sys.numNodes()));
}

double
AddressWorkload::l1HitRate() const
{
    std::uint64_t hits = 0, total = 0;
    for (const auto &p : procs) {
        hits += p->l1Hits();
        total += p->loads() + p->stores();
    }
    return total ? static_cast<double>(hits)
                       / static_cast<double>(total)
                 : 0.0;
}

double
AddressWorkload::l2HitRate() const
{
    std::uint64_t hits = 0, misses = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        hits += sys.node(id).hits();
        misses += sys.node(id).misses();
    }
    std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits)
                       / static_cast<double>(total)
                 : 0.0;
}

} // namespace mcube
