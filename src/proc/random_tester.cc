#include "proc/random_tester.hh"

#include <algorithm>
#include <sstream>

namespace mcube
{

namespace
{

/** Lock lines live far from the data pool so the pools are disjoint. */
constexpr Addr lockBase = 1ull << 30;

} // namespace

RandomTester::RandomTester(MulticubeSystem &sys, CoherenceChecker &checker,
                           const RandomTesterParams &params)
    : sys(sys), checker(checker), params(params), seeder(params.seed)
{
    agents.resize(sys.numNodes());
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        agents[id].id = id;
        agents[id].rng = seeder.fork();
        bool active = params.onlyNodes.empty()
                   || std::find(params.onlyNodes.begin(),
                                params.onlyNodes.end(), id)
                          != params.onlyNodes.end();
        agents[id].opsLeft = active ? params.opsPerNode : 0;
        agents[id].done = !active;
    }
}

void
RandomTester::start()
{
    for (auto &a : agents)
        if (!a.done)
            next(a);
}

bool
RandomTester::finished() const
{
    for (const auto &a : agents)
        if (!a.done)
            return false;
    return true;
}

Addr
RandomTester::pickData(Agent &a)
{
    if (params.chaos && params.numLockLines > 0 && a.rng.chance(0.2))
        return pickLock(a);
    return a.rng.below(params.numDataLines);
}

Addr
RandomTester::pickLock(Agent &a)
{
    return lockBase + a.rng.below(params.numLockLines);
}

std::uint64_t
RandomTester::freshToken(Agent &a)
{
    return (static_cast<std::uint64_t>(a.id + 1) << 40) + a.nextToken++;
}

void
RandomTester::next(Agent &a)
{
    if (a.opsLeft == 0 && !a.holdingLock) {
        a.done = true;
        return;
    }
    Tick think = 1 + a.rng.below(static_cast<std::uint32_t>(
                         params.maxThink));
    NodeId id = a.id;
    sys.eventQueue().scheduleIn(think, [this, id] { issue(agents[id]); });
}

void
RandomTester::issue(Agent &a)
{
    SnoopController &ctrl = sys.node(a.id);
    if (ctrl.busy()) {
        next(a);
        return;
    }

    NodeId id = a.id;
    ++_ops;

    // Holding a lock: release it with high probability so locks keep
    // circulating.
    if (a.holdingLock && (a.opsLeft == 0 || a.rng.chance(0.7))) {
        Addr addr = a.heldLock;
        std::uint64_t tok = freshToken(a);
        a.holdingLock = false;
        if (!ctrl.release(addr, tok)) {
            // Line stolen while held (chaos mode): recover.
            auto out = ctrl.write(addr, tok,
                                  [this, id](const TxnResult &) {
                                      Agent &ag = agents[id];
                                      sys.node(ag.id).forceUnlock(
                                          ag.heldLock);
                                      next(ag);
                                  });
            if (out == AccessOutcome::Hit) {
                ctrl.forceUnlock(addr);
                next(a);
            }
            return;
        }
        next(a);
        return;
    }

    if (a.opsLeft > 0)
        --a.opsLeft;

    double r = a.rng.uniform();
    if (params.pTset > 0.0 && !a.holdingLock && r < params.pTset) {
        Addr addr = pickLock(a);
        bool granted = false;
        bool use_sync = params.pSyncOfLocks > 0.0
                     && a.rng.chance(params.pSyncOfLocks);
        auto done = [this, id, addr](const TxnResult &res) {
            Agent &ag = agents[id];
            if (res.success) {
                ag.holdingLock = true;
                ag.heldLock = addr;
                ++_locks;
            }
            next(ag);
        };
        AccessOutcome out =
            use_sync ? ctrl.syncAcquire(addr, granted, done)
                     : ctrl.testAndSet(addr, granted, done);
        if (out == AccessOutcome::Hit) {
            if (granted) {
                a.holdingLock = true;
                a.heldLock = addr;
                ++_locks;
            }
            next(a);
        }
        return;
    }

    r = a.rng.uniform();
    if (r < params.pWrite) {
        Addr addr = pickData(a);
        auto out = ctrl.write(addr, freshToken(a),
                              [this, id](const TxnResult &) {
                                  next(agents[id]);
                              });
        if (out == AccessOutcome::Hit)
            next(a);
        return;
    }
    if (r < params.pWrite + params.pAllocate) {
        Addr addr = pickData(a);
        auto out = ctrl.writeAllocate(addr, freshToken(a),
                                      [this, id](const TxnResult &) {
                                          next(agents[id]);
                                      });
        if (out == AccessOutcome::Hit)
            next(a);
        return;
    }

    // Read with value verification.
    Addr addr = pickData(a);
    Tick issued = sys.eventQueue().now();
    std::uint64_t tok = 0;
    auto out = ctrl.read(
        addr, tok, [this, id, addr, issued](const TxnResult &res) {
            Agent &ag = agents[id];
            ++_reads_checked;
            Tick done = sys.eventQueue().now();
            if (!checker.tokenWasGoldenDuring(addr, res.data.token,
                                              issued, done)) {
                ++_read_failures;
                if (_failLog.size() < 16) {
                    std::ostringstream oss;
                    oss << "node " << id << " read line " << addr
                        << " got token " << res.data.token
                        << " never golden in [" << issued << ", "
                        << done << "]";
                    _failLog.push_back(oss.str());
                }
            }
            next(ag);
        });
    if (out == AccessOutcome::Hit) {
        ++_reads_checked;
        // A hit returns the locally cached copy; it must have been
        // golden at some point up to now (shared copies may be
        // transiently stale only during an in-flight invalidation,
        // which still means the value was golden earlier).
        if (!checker.tokenWasGoldenDuring(addr, tok, 0, issued)) {
            ++_read_failures;
            if (_failLog.size() < 16) {
                std::ostringstream oss;
                oss << "node " << a.id << " hit line " << addr
                    << " token " << tok << " never golden before "
                    << issued;
                _failLog.push_back(oss.str());
            }
        }
        next(a);
    }
}

} // namespace mcube
