#include "proc/random_tester.hh"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace mcube
{

namespace
{

/** Lock lines live far from the data pool so the pools are disjoint. */
constexpr Addr lockBase = 1ull << 30;

} // namespace

Json
toJson(const RandomTesterParams &p)
{
    Json j = Json::object();
    j.set("num_data_lines", p.numDataLines);
    j.set("num_lock_lines", p.numLockLines);
    j.set("ops_per_node", p.opsPerNode);
    j.set("p_write", p.pWrite);
    j.set("p_allocate", p.pAllocate);
    j.set("p_tset", p.pTset);
    j.set("p_sync_of_locks", p.pSyncOfLocks);
    j.set("max_think", p.maxThink);
    j.set("seed", p.seed);
    if (p.chaos)
        j.set("chaos", true);
    if (!p.onlyNodes.empty()) {
        Json nodes = Json::array();
        for (NodeId id : p.onlyNodes)
            nodes.push(static_cast<std::uint64_t>(id));
        j.set("only_nodes", std::move(nodes));
    }
    return j;
}

bool
randomTesterParamsFromJson(const Json &j, RandomTesterParams &out)
{
    if (!j.isObject())
        return false;
    RandomTesterParams d;
    out.numDataLines =
        static_cast<unsigned>(j.u64("num_data_lines", d.numDataLines));
    out.numLockLines =
        static_cast<unsigned>(j.u64("num_lock_lines", d.numLockLines));
    out.opsPerNode =
        static_cast<unsigned>(j.u64("ops_per_node", d.opsPerNode));
    out.pWrite = j.num("p_write", d.pWrite);
    out.pAllocate = j.num("p_allocate", d.pAllocate);
    out.pTset = j.num("p_tset", d.pTset);
    out.pSyncOfLocks = j.num("p_sync_of_locks", d.pSyncOfLocks);
    out.maxThink = j.u64("max_think", d.maxThink);
    out.seed = j.u64("seed", d.seed);
    out.chaos = j.flag("chaos", false);
    out.onlyNodes.clear();
    const Json &nodes = j.at("only_nodes");
    for (std::size_t i = 0; i < nodes.size(); ++i)
        out.onlyNodes.push_back(
            static_cast<NodeId>(nodes.at(i).asU64()));
    return true;
}

RandomTester::RandomTester(MulticubeSystem &sys, CoherenceChecker &checker,
                           const RandomTesterParams &params)
    : sys(sys), checker(checker), params(params), seeder(params.seed)
{
    agents.resize(sys.numNodes());
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        agents[id].id = id;
        agents[id].rng = seeder.fork();
        bool active = params.onlyNodes.empty()
                   || std::find(params.onlyNodes.begin(),
                                params.onlyNodes.end(), id)
                          != params.onlyNodes.end();
        agents[id].opsLeft = active ? params.opsPerNode : 0;
        agents[id].done = !active;
    }
}

void
RandomTester::start()
{
    for (auto &a : agents)
        if (!a.done)
            next(a);
}

bool
RandomTester::finished() const
{
    for (const auto &a : agents)
        if (!a.done)
            return false;
    return true;
}

std::uint64_t
RandomTester::hashCombine(std::uint64_t h, std::uint64_t v)
{
    // FNV-1a over the value's bytes, 64-bit.
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
RandomTester::resultHash() const
{
    std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
    h = hashCombine(h, opsIssued());
    h = hashCombine(h, readsChecked());
    h = hashCombine(h, _read_failures);
    h = hashCombine(h, locksTaken());
    h = hashCombine(h, opsAborted());
    h = hashCombine(h, sys.eventQueue().now());
    h = hashCombine(h, checker.opsObserved());
    h = hashCombine(h, checker.violations());
    for (const auto &a : agents) {
        h = hashCombine(h, a.nextToken);
        h = hashCombine(h, a.opsLeft);
        h = hashCombine(h, a.done ? 1 : 0);
    }
    return h;
}

std::string
RandomTester::reproCommand() const
{
    const SystemParams &sp = sys.params();
    std::ostringstream oss;
    oss << "fuzz_campaign --one-off"
        << " --n=" << sys.n() << " --sys-seed=" << sp.seed
        << " --timeout-ticks=" << sp.ctrl.requestTimeoutTicks
        << " --tester-seed=" << params.seed
        << " --ops=" << params.opsPerNode
        << " --data-lines=" << params.numDataLines
        << " --lock-lines=" << params.numLockLines
        << " --p-write=" << params.pWrite
        << " --p-alloc=" << params.pAllocate
        << " --p-tset=" << params.pTset
        << " --p-sync=" << params.pSyncOfLocks
        << " --think=" << params.maxThink;
    if (params.chaos)
        oss << " --chaos=1";
    return oss.str();
}

void
RandomTester::recordFailure(NodeId node, Addr addr,
                            std::uint64_t token, Tick from, Tick to,
                            const char *how)
{
    ++_read_failures;
    if (_read_failures == 1) {
        // First failure: print the repro line before anything else so
        // even a truncated log is re-runnable.
        std::cerr << "RandomTester: oracle FAILURE; repro: "
                  << reproCommand() << "\n";
    }
    if (_failLog.size() < 16) {
        std::ostringstream oss;
        oss << "node " << node << " " << how << " line " << addr
            << " got token " << token << " never golden in [" << from
            << ", " << to << "]; "
            << checker.historyWindow(addr, from, to);
        _failLog.push_back(oss.str());
        _failRecords.push_back({node, addr, token, from, to});
        std::cerr << "RandomTester: " << oss.str() << "\n";
    }
}

Addr
RandomTester::rawPickData(Agent &a)
{
    if (params.chaos && params.numLockLines > 0 && a.rng.chance(0.2))
        return rawPickLock(a);
    return a.rng.below(params.numDataLines);
}

Addr
RandomTester::rawPickLock(Agent &a)
{
    return lockBase + a.rng.below(params.numLockLines);
}

// Quarantine-aware picks: bounded redraw away from blocklisted lines.
// The bound keeps the draw count finite even if a filter swallows the
// whole pool; issue() skips the op when the last candidate is still
// filtered.

Addr
RandomTester::pickData(Agent &a)
{
    Addr addr = rawPickData(a);
    for (int tries = 0; tries < 16 && filtered(a.id, addr); ++tries)
        addr = rawPickData(a);
    return addr;
}

Addr
RandomTester::pickLock(Agent &a)
{
    Addr addr = rawPickLock(a);
    for (int tries = 0; tries < 16 && filtered(a.id, addr); ++tries)
        addr = rawPickLock(a);
    return addr;
}

std::uint64_t
RandomTester::freshToken(Agent &a)
{
    return (static_cast<std::uint64_t>(a.id + 1) << 40) + a.nextToken++;
}

void
RandomTester::next(Agent &a)
{
    if (a.opsLeft == 0 && !a.holdingLock) {
        a.done = true;
        return;
    }
    Tick think = 1 + a.rng.below(static_cast<std::uint32_t>(
                         params.maxThink));
    NodeId id = a.id;
    // Lane-local self-scheduling: the next issue touches only this
    // agent and its controller. Sequentially identical to scheduleIn.
    sys.eventQueue().scheduleToLane(sys.node(id).homeLane(), think,
                                    [this, id] { issue(agents[id]); });
}

void
RandomTester::issue(Agent &a)
{
    SnoopController &ctrl = sys.node(a.id);
    if (ctrl.retired()) {
        // The node fail-stopped; this agent's run ends with it.
        a.done = true;
        return;
    }
    if (ctrl.busy()) {
        next(a);
        return;
    }

    NodeId id = a.id;
    ++a.ops;

    // A lock whose line was quarantined out from under us (its home
    // memory fail-stopped) cannot be released through the protocol any
    // more — the copy is gone; just forget it.
    if (a.holdingLock && filtered(a.id, a.heldLock)) {
        a.holdingLock = false;
        next(a);
        return;
    }

    // Holding a lock: release it with high probability so locks keep
    // circulating.
    if (a.holdingLock && (a.opsLeft == 0 || a.rng.chance(0.7))) {
        Addr addr = a.heldLock;
        std::uint64_t tok = freshToken(a);
        a.holdingLock = false;
        if (!ctrl.release(addr, tok)) {
            // Line stolen while held (chaos mode): recover.
            auto out = ctrl.write(addr, tok,
                                  [this, id](const TxnResult &res) {
                                      Agent &ag = agents[id];
                                      if (res.aborted) {
                                          ++ag.aborted;
                                          next(ag);
                                          return;
                                      }
                                      sys.node(ag.id).forceUnlock(
                                          ag.heldLock);
                                      next(ag);
                                  });
            if (out == AccessOutcome::Hit) {
                ctrl.forceUnlock(addr);
                next(a);
            }
            return;
        }
        next(a);
        return;
    }

    if (a.opsLeft > 0)
        --a.opsLeft;

    double r = a.rng.uniform();
    if (params.pTset > 0.0 && !a.holdingLock && r < params.pTset) {
        Addr addr = pickLock(a);
        if (filtered(a.id, addr)) {
            // Whole lock pool quarantined; skip the op.
            next(a);
            return;
        }
        bool granted = false;
        bool use_sync = params.pSyncOfLocks > 0.0
                     && a.rng.chance(params.pSyncOfLocks);
        auto done = [this, id, addr](const TxnResult &res) {
            Agent &ag = agents[id];
            if (res.aborted)
                ++ag.aborted;
            if (res.success) {
                ag.holdingLock = true;
                ag.heldLock = addr;
                ++ag.locks;
            }
            next(ag);
        };
        AccessOutcome out =
            use_sync ? ctrl.syncAcquire(addr, granted, done)
                     : ctrl.testAndSet(addr, granted, done);
        if (out == AccessOutcome::Hit) {
            if (granted) {
                a.holdingLock = true;
                a.heldLock = addr;
                ++a.locks;
            }
            next(a);
        }
        return;
    }

    r = a.rng.uniform();
    if (r < params.pWrite) {
        Addr addr = pickData(a);
        if (filtered(a.id, addr)) {
            next(a);
            return;
        }
        auto out = ctrl.write(addr, freshToken(a),
                              [this, id](const TxnResult &res) {
                                  if (res.aborted)
                                      ++agents[id].aborted;
                                  next(agents[id]);
                              });
        if (out == AccessOutcome::Hit)
            next(a);
        return;
    }
    if (r < params.pWrite + params.pAllocate) {
        Addr addr = pickData(a);
        if (filtered(a.id, addr)) {
            next(a);
            return;
        }
        auto out = ctrl.writeAllocate(addr, freshToken(a),
                                      [this, id](const TxnResult &res) {
                                          if (res.aborted)
                                              ++agents[id].aborted;
                                          next(agents[id]);
                                      });
        if (out == AccessOutcome::Hit)
            next(a);
        return;
    }

    // Read with value verification.
    Addr addr = pickData(a);
    if (filtered(a.id, addr)) {
        next(a);
        return;
    }
    Tick issued = sys.eventQueue().now();
    std::uint64_t tok = 0;
    auto out = ctrl.read(
        addr, tok, [this, id, addr, issued](const TxnResult &res) {
            Agent &ag = agents[id];
            if (res.aborted) {
                // Cut short by an epoch transition: no value to check.
                ++ag.aborted;
                next(ag);
                return;
            }
            ++ag.readsChecked;
            Tick done = sys.eventQueue().now();
            // The golden-value oracle is shared checker state, so the
            // check crosses to the serial lane; the tick window is
            // captured, so deferral cannot shift it. Sequentially
            // deferToLane runs inline, exactly as before.
            std::uint64_t token = res.data.token;
            sys.eventQueue().deferToLane(
                0, [this, id, addr, token, issued, done] {
                    if (!checker.tokenWasGoldenDuring(addr, token,
                                                      issued, done)) {
                        recordFailure(id, addr, token, issued, done,
                                      "read");
                    }
                });
            next(ag);
        });
    if (out == AccessOutcome::Hit) {
        ++a.readsChecked;
        // A hit returns the locally cached copy; it must have been
        // golden at some point up to now (shared copies may be
        // transiently stale only during an in-flight invalidation,
        // which still means the value was golden earlier).
        sys.eventQueue().deferToLane(0, [this, id, addr, tok, issued] {
            if (!checker.tokenWasGoldenDuring(addr, tok, 0, issued))
                recordFailure(id, addr, tok, 0, issued, "hit");
        });
        next(a);
    }
}

} // namespace mcube
