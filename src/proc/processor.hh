/**
 * @file
 * The processor-side memory interface: L1 processor cache in front of
 * a node's snooping cache controller.
 *
 * All operations are asynchronous (the snooping cache is DRAM and bus
 * transactions take microseconds); exactly one operation may be
 * outstanding per processor, matching the paper's non-overlapping
 * request model. Completion callbacks fire on the shared event queue.
 *
 * Latency model:
 *   - L1 hit: l1.hitTicks;
 *   - L1 miss, snooping-cache hit: l1.hitTicks + l2HitTicks;
 *   - snooping-cache miss: full bus transaction latency.
 * The write-through L1 stores only the data token; lock words are
 * always read from the snooping cache.
 */

#ifndef MCUBE_PROC_PROCESSOR_HH
#define MCUBE_PROC_PROCESSOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "cache/processor_cache.hh"
#include "core/controller.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

/** Configuration of a Processor front-end. */
struct ProcessorParams
{
    ProcessorCacheParams l1{};
    Tick l2HitTicks = 750;  //!< DRAM snooping-cache hit latency
    bool useL1 = true;      //!< disable to model raw L2 traffic
};

/** One node's processor-side memory port. */
class Processor
{
  public:
    using LoadCb = std::function<void(std::uint64_t token)>;
    using LineCb = std::function<void(const LineData &data)>;
    using DoneCb = std::function<void()>;
    using BoolCb = std::function<void(bool)>;

    Processor(std::string name, EventQueue &eq, SnoopController &ctrl,
              const ProcessorParams &params);

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    SnoopController &controller() { return ctrl; }

    /** True while an operation is in flight. */
    bool busy() const { return inFlight || ctrl.busy(); }

    /** Load the data token of @p addr. */
    void load(Addr addr, LoadCb cb);

    /** Load the full line (lock word visible; bypasses the L1). */
    void loadLine(Addr addr, LineCb cb);

    /** Store @p token to @p addr. */
    void store(Addr addr, std::uint64_t token, DoneCb cb);

    /** Whole-line store using the ALLOCATE hint. */
    void storeAllocate(Addr addr, std::uint64_t token, DoneCb cb);

    /** Hardware remote test-and-set; cb(true) if the lock was taken. */
    void testAndSet(Addr addr, BoolCb cb);

    /** Queue-lock acquire; cb(true) when granted (may retry inside). */
    void syncAcquire(Addr addr, BoolCb cb);

    /** Release a lock, storing @p token. Falls back to a write
     *  transaction if the line was stolen while we held the lock. */
    void release(Addr addr, std::uint64_t token, DoneCb cb);

    std::uint64_t loads() const { return statLoads.value(); }
    std::uint64_t stores() const { return statStores.value(); }
    std::uint64_t l1Hits() const { return l1.hits(); }

    void regStats(StatGroup &parent);

  private:
    /** Finish an op after @p delay ticks. */
    void finish(Tick delay, DoneCb fn);

    std::string name;
    EventQueue &eq;
    SnoopController &ctrl;
    ProcessorParams params;
    ProcessorCache l1;
    bool inFlight = false;

    Counter statLoads;
    Counter statStores;
    Counter statTsets;
    Counter statSyncs;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_PROC_PROCESSOR_HH
