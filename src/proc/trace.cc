#include "proc/trace.hh"

#include <sstream>

namespace mcube
{

void
Trace::save(std::ostream &os) const
{
    for (const auto &r : records) {
        os << r.node << ' ' << static_cast<char>(r.op) << ' ' << r.addr
           << ' ' << r.token << ' ' << r.gap << '\n';
    }
}

bool
Trace::load(std::istream &is)
{
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        TraceRecord r;
        char opch = 0;
        if (!(iss >> r.node >> opch >> r.addr >> r.token >> r.gap))
            return false;
        switch (opch) {
          case 'L': r.op = TraceOp::Load; break;
          case 'S': r.op = TraceOp::Store; break;
          case 'A': r.op = TraceOp::AllocStore; break;
          case 'T': r.op = TraceOp::Tset; break;
          case 'R': r.op = TraceOp::Release; break;
          default: return false;
        }
        records.push_back(r);
    }
    return true;
}

std::vector<TraceRecord>
Trace::forNode(NodeId node) const
{
    std::vector<TraceRecord> out;
    for (const auto &r : records)
        if (r.node == node)
            out.push_back(r);
    return out;
}

NodeId
Trace::maxNode() const
{
    NodeId m = 0;
    for (const auto &r : records)
        m = std::max(m, r.node);
    return m;
}

TraceReplayer::TraceReplayer(MulticubeSystem &sys, const Trace &trace,
                             const ProcessorParams &pp)
    : sys(sys)
{
    streams.resize(sys.numNodes());
    procs.reserve(sys.numNodes());
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        procs.push_back(std::make_unique<Processor>(
            "replay" + std::to_string(id), sys.eventQueue(),
            sys.node(id), pp));
        streams[id].refs = trace.forNode(id);
        streams[id].done = streams[id].refs.empty();
    }
}

void
TraceReplayer::start()
{
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        if (!streams[id].done)
            step(id);
}

bool
TraceReplayer::finished() const
{
    for (const auto &s : streams)
        if (!s.done)
            return false;
    return true;
}

void
TraceReplayer::step(NodeId node)
{
    Stream &s = streams[node];
    if (s.next >= s.refs.size()) {
        s.done = true;
        return;
    }
    Tick gap = s.refs[s.next].gap;
    if (gap == 0) {
        issue(node);
    } else {
        sys.eventQueue().scheduleIn(gap,
                                    [this, node] { issue(node); });
    }
}

void
TraceReplayer::issue(NodeId node)
{
    Stream &s = streams[node];
    const TraceRecord &r = s.refs[s.next];
    Processor &p = *procs[node];

    auto advance = [this, node] {
        Stream &st = streams[node];
        ++st.next;
        ++_completed;
        step(node);
    };

    switch (r.op) {
      case TraceOp::Load:
        p.load(r.addr, [advance](std::uint64_t) { advance(); });
        break;
      case TraceOp::Store:
        p.store(r.addr, r.token, advance);
        break;
      case TraceOp::AllocStore:
        p.storeAllocate(r.addr, r.token, advance);
        break;
      case TraceOp::Tset:
        p.testAndSet(r.addr, [advance](bool) { advance(); });
        break;
      case TraceOp::Release:
        p.release(r.addr, r.token, advance);
        break;
    }
}

} // namespace mcube
