/**
 * @file
 * Rate-driven synthetic workload matching the [LeVe88] model
 * assumptions used for Figures 2-4.
 *
 * Each node alternates between computing (exponentially distributed
 * think time whose mean is 1/request-rate) and issuing one bus
 * transaction, chosen from four classes:
 *
 *   read-unmodified   READ to a line whose home memory copy is valid
 *   read-modified     READ to a line currently modified elsewhere
 *   write-unmodified  READ-MOD to an unmodified line (invalidation
 *                     broadcast — the Figure 3 parameter)
 *   write-modified    READ-MOD to a line modified elsewhere
 *
 * The workload keeps a functional registry of which lines it has made
 * globally modified, so the class mix is controllable; fresh addresses
 * are drawn from a huge space so "unmodified" requests are cold misses
 * (the paper's premise that the snooping cache eliminates private-data
 * traffic, leaving only shared data and I/O on the buses).
 *
 * Efficiency is measured exactly as the paper defines it: time spent
 * computing divided by elapsed time, which is 1.0 on a machine with no
 * bus or memory latency.
 */

#ifndef MCUBE_PROC_MIX_WORKLOAD_HH
#define MCUBE_PROC_MIX_WORKLOAD_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/system.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

/** Mix and rate parameters (defaults = Figure 2 caption). */
struct MixParams
{
    double requestsPerMs = 25.0;   //!< bus transactions per ms per proc
    double fracReadUnmod = 0.60;   //!< reads to unmodified lines
    double fracReadMod = 0.15;     //!< reads to modified lines
    double fracWriteUnmod = 0.20;  //!< write misses to unmodified data
    double fracWriteMod = 0.05;    //!< write misses to modified data
    std::uint64_t addressSpace = 1ull << 40;  //!< fresh-line pool
    std::uint64_t seed = 97;
};

/** Drives every node of a system with the synthetic mix. */
class MixWorkload
{
  public:
    MixWorkload(MulticubeSystem &sys, const MixParams &params);

    /** Begin issuing (first think times start at the current tick). */
    void start();

    /** Stop issuing new requests at the next opportunity. Under the
     *  parallel engine this also folds the per-agent issue counters
     *  into the stat tree (issues cease with `running`, so the fold
     *  is final; completion-side stats always land on the serial lane
     *  and need no fold). */
    void
    stop()
    {
        running = false;
        stopTick = sys.eventQueue().now();
        if (par_) {
            for (auto &a : agents) {
                statModTargeted += a.modTargeted;
                statModMissedRegistry += a.modMissedRegistry;
                a.modTargeted = 0;
                a.modMissedRegistry = 0;
            }
        }
    }

    /** Paper's efficiency metric over all nodes since start(). */
    double efficiency() const;

    /** Transactions completed, by class [ru, rm, wu, wm]. */
    std::uint64_t completed(unsigned cls) const
    {
        return classDone[cls].value();
    }

    std::uint64_t totalCompleted() const;

    /** Mean transaction latency in ticks. */
    double meanLatency() const { return statLatency.mean(); }

    /** Fraction of requests that actually hit a modified line. */
    double achievedModifiedFraction() const;

    void regStats(StatGroup &parent);

  private:
    struct Agent
    {
        NodeId id = 0;
        Random rng;
        Tick computeTicks = 0;   //!< accumulated think time
        std::uint64_t nextToken = 1;
        /** Issue-time counters kept lane-local under the parallel
         *  engine (issue() runs on the node's home lane); folded into
         *  the shared Counters at stop(). Unused sequentially. */
        std::uint64_t modTargeted = 0;
        std::uint64_t modMissedRegistry = 0;
    };

    void scheduleNext(Agent &a);
    void issue(Agent &a);

    /** Pick a line currently modified by a node other than @p self;
     *  returns false if the registry has no candidate. Sequential
     *  variant: prunes stale entries from the sampling vector as it
     *  goes. */
    bool pickModified(Agent &a, Addr &addr_out);

    /** Parallel variant of pickModified(): issue() runs on the node's
     *  home lane while other rows issue concurrently, so the registry
     *  must be treated as frozen (it only mutates on the serial lane,
     *  a phase that never overlaps issue). Stale entries are skipped
     *  with bounded resampling instead of pruned; compaction happens
     *  on the serial lane (recordDone). */
    bool pickModifiedFrozen(Agent &a, Addr &addr_out);

    /** Completion bookkeeping: latency sample, class counter, and the
     *  modified-line registry update. Runs inline sequentially; under
     *  the parallel engine it is deferred to the serial lane in
     *  canonical cross-lane order (the registry and Distributions are
     *  shared across all nodes). */
    void recordDone(NodeId id, unsigned cls, Addr addr, bool is_write,
                    Tick latency);

    MulticubeSystem &sys;
    MixParams params;
    Random seeder;
    std::vector<Agent> agents;
    Tick startTick = 0;
    Tick stopTick = 0;
    bool running = false;
    /** True when the system runs the parallel engine (fixed at
     *  construction); selects the lane-sharded issue/completion paths
     *  above. */
    bool par_ = false;

    /** Functional registry: line -> last writer. */
    std::unordered_map<Addr, NodeId> modifiedBy;
    std::vector<Addr> modifiedList;  //!< sampling vector (lazily
                                     //!< compacted)

    Counter classDone[4];
    Counter statModTargeted;
    Counter statModMissedRegistry;
    Distribution statLatency;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_PROC_MIX_WORKLOAD_HH
