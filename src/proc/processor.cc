#include "proc/processor.hh"

#include <cassert>
#include <utility>

namespace mcube
{

Processor::Processor(std::string name, EventQueue &eq,
                     SnoopController &ctrl, const ProcessorParams &params)
    : name(std::move(name)), eq(eq), ctrl(ctrl), params(params),
      l1(params.l1), stats(this->name)
{
    // Keep the L1 a strict subset of the snooping cache (Section 2).
    ctrl.onPurge = [this](Addr addr) { l1.purge(addr); };

    stats.addCounter("loads", statLoads);
    stats.addCounter("stores", statStores);
    stats.addCounter("tsets", statTsets);
    stats.addCounter("syncs", statSyncs);
    l1.regStats(stats);
}

void
Processor::finish(Tick delay, DoneCb fn)
{
    if (delay == 0) {
        inFlight = false;
        fn();
    } else {
        eq.scheduleIn(delay, [this, fn = std::move(fn)] {
            inFlight = false;
            fn();
        });
    }
}

void
Processor::load(Addr addr, LoadCb cb)
{
    assert(!busy());
    ++statLoads;

    std::uint64_t token = 0;
    if (params.useL1 && l1.lookup(addr, token)) {
        inFlight = true;
        finish(l1.hitLatency(),
               [cb = std::move(cb), token] { cb(token); });
        return;
    }

    inFlight = true;
    Tick l1_pen = params.useL1 ? l1.hitLatency() : 0;
    std::uint64_t t = 0;
    auto outcome = ctrl.read(
        addr, t, [this, addr, cb](const TxnResult &res) {
            if (params.useL1)
                l1.fill(addr, res.data.token);
            std::uint64_t tok = res.data.token;
            finish(0, [cb, tok] { cb(tok); });
        });
    if (outcome == AccessOutcome::Hit) {
        if (params.useL1)
            l1.fill(addr, t);
        finish(l1_pen + params.l2HitTicks,
               [cb = std::move(cb), t] { cb(t); });
    }
    // On Miss the controller callback finishes the op.
}

void
Processor::loadLine(Addr addr, LineCb cb)
{
    assert(!busy());
    ++statLoads;
    inFlight = true;
    LineData d;
    auto outcome = ctrl.readLine(
        addr, d, [this, cb](const TxnResult &res) {
            LineData data = res.data;
            finish(0, [cb, data] { cb(data); });
        });
    if (outcome == AccessOutcome::Hit) {
        finish(params.l2HitTicks, [cb = std::move(cb), d] { cb(d); });
    }
}

void
Processor::store(Addr addr, std::uint64_t token, DoneCb cb)
{
    assert(!busy());
    ++statStores;
    inFlight = true;

    auto outcome = ctrl.write(
        addr, token, [this, addr, token, cb](const TxnResult &) {
            if (params.useL1)
                l1.writeThrough(addr, token);
            finish(0, cb);
        });
    if (outcome == AccessOutcome::Hit) {
        // Write-through into the L1 copy if present.
        if (params.useL1)
            l1.writeThrough(addr, token);
        finish(params.l2HitTicks, std::move(cb));
    }
}

void
Processor::storeAllocate(Addr addr, std::uint64_t token, DoneCb cb)
{
    assert(!busy());
    ++statStores;
    inFlight = true;

    auto outcome = ctrl.writeAllocate(
        addr, token, [this, addr, token, cb](const TxnResult &) {
            if (params.useL1)
                l1.writeThrough(addr, token);
            finish(0, cb);
        });
    if (outcome == AccessOutcome::Hit) {
        if (params.useL1)
            l1.writeThrough(addr, token);
        finish(params.l2HitTicks, std::move(cb));
    }
}

void
Processor::testAndSet(Addr addr, BoolCb cb)
{
    assert(!busy());
    ++statTsets;
    inFlight = true;

    bool granted = false;
    auto outcome = ctrl.testAndSet(
        addr, granted, [this, cb](const TxnResult &res) {
            bool ok = res.success;
            finish(0, [cb, ok] { cb(ok); });
        });
    if (outcome == AccessOutcome::Hit) {
        finish(params.l2HitTicks,
               [cb = std::move(cb), granted] { cb(granted); });
    }
}

void
Processor::syncAcquire(Addr addr, BoolCb cb)
{
    assert(!busy());
    ++statSyncs;
    inFlight = true;

    bool granted = false;
    auto outcome = ctrl.syncAcquire(
        addr, granted, [this, cb](const TxnResult &res) {
            bool ok = res.success;
            finish(0, [cb, ok] { cb(ok); });
        });
    if (outcome == AccessOutcome::Hit) {
        finish(params.l2HitTicks,
               [cb = std::move(cb), granted] { cb(granted); });
    }
}

void
Processor::release(Addr addr, std::uint64_t token, DoneCb cb)
{
    assert(!busy());
    inFlight = true;

    if (ctrl.release(addr, token)) {
        if (params.useL1)
            l1.writeThrough(addr, token);
        finish(params.l2HitTicks, std::move(cb));
        return;
    }

    // The line was stolen while we held the lock (broken-protocol
    // degeneration, Section 4): re-fetch it exclusively, then unlock.
    auto outcome = ctrl.write(
        addr, token, [this, addr, cb](const TxnResult &) {
            ctrl.forceUnlock(addr);
            finish(0, cb);
        });
    if (outcome == AccessOutcome::Hit) {
        ctrl.forceUnlock(addr);
        finish(params.l2HitTicks, std::move(cb));
    }
}

void
Processor::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
