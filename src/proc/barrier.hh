/**
 * @file
 * Barrier synchronisation built on the Section 4 primitives.
 *
 * "A variation of the technique of exploiting the inconsistency of
 * the caches can be used to implement barrier synchronization
 * efficiently." The paper leaves the design open; this implementation
 * uses the machinery it describes:
 *
 *  - an arrival counter protected by the SYNC queue lock (arrivals
 *    serialise through O(1)-bus-op lock hand-offs);
 *  - a generation line that waiters spin on *in their own caches*:
 *    spin reads hit the local shared copy and cost zero bus
 *    operations; the last arrival's write of the new generation
 *    triggers one invalidation broadcast, after which each waiter
 *    takes exactly one re-read miss to observe the release.
 *
 * Each node participates through its own BarrierMember, driven by the
 * asynchronous Processor interface.
 */

#ifndef MCUBE_PROC_BARRIER_HH
#define MCUBE_PROC_BARRIER_HH

#include <cstdint>
#include <functional>

#include "proc/processor.hh"
#include "sim/types.hh"

namespace mcube
{

/** Shared-memory layout of one barrier. */
struct BarrierAddrs
{
    Addr lock = 0;        //!< SYNC lock protecting the counter
    Addr count = 0;       //!< arrivals in the current episode
    Addr generation = 0;  //!< episode number; bumped on release
};

/** One node's participation handle in a barrier. */
class BarrierMember
{
  public:
    using ArriveCb = std::function<void()>;

    /**
     * @param proc This node's processor front-end.
     * @param addrs Barrier lines (same for all members).
     * @param parties Number of participating nodes.
     */
    BarrierMember(Processor &proc, const BarrierAddrs &addrs,
                  unsigned parties)
        : proc(proc), addrs(addrs), parties(parties)
    {
    }

    BarrierMember(const BarrierMember &) = delete;
    BarrierMember &operator=(const BarrierMember &) = delete;

    /**
     * Arrive at the barrier; @p cb fires once all parties of the
     * current episode have arrived.
     */
    void arrive(ArriveCb cb);

    /** Episodes completed by this member. */
    std::uint64_t episodes() const { return _episodes; }

    /** Spin re-reads while waiting (diagnostic). */
    std::uint64_t spinReads() const { return _spinReads; }

  private:
    void acquireLock();
    void readCount();
    void spinOnGeneration();

    Processor &proc;
    BarrierAddrs addrs;
    unsigned parties;

    ArriveCb pendingCb;
    std::uint64_t myGeneration = 0;
    std::uint64_t _episodes = 0;
    std::uint64_t _spinReads = 0;
};

} // namespace mcube

#endif // MCUBE_PROC_BARRIER_HH
