#include "proc/barrier.hh"

namespace mcube
{

void
BarrierMember::arrive(ArriveCb cb)
{
    pendingCb = std::move(cb);
    // Snapshot the generation we are waiting to leave, then enter the
    // critical section.
    proc.load(addrs.generation, [this](std::uint64_t gen) {
        myGeneration = gen;
        acquireLock();
    });
}

void
BarrierMember::acquireLock()
{
    proc.syncAcquire(addrs.lock, [this](bool granted) {
        if (granted)
            readCount();
        else
            acquireLock();  // rare local contention; retry
    });
}

void
BarrierMember::readCount()
{
    proc.load(addrs.count, [this](std::uint64_t count) {
        std::uint64_t arrived = count + 1;
        if (arrived >= parties) {
            // Last arrival: reset the counter and release everyone by
            // bumping the generation (one invalidation broadcast).
            proc.store(addrs.count, 0, [this] {
                proc.store(addrs.generation, myGeneration + 1, [this] {
                    proc.release(addrs.lock, 1, [this] {
                        ++_episodes;
                        ArriveCb cb = std::move(pendingCb);
                        if (cb)
                            cb();
                    });
                });
            });
        } else {
            proc.store(addrs.count, arrived, [this] {
                proc.release(addrs.lock, 1,
                             [this] { spinOnGeneration(); });
            });
        }
    });
}

void
BarrierMember::spinOnGeneration()
{
    ++_spinReads;
    proc.load(addrs.generation, [this](std::uint64_t gen) {
        if (gen != myGeneration) {
            ++_episodes;
            ArriveCb cb = std::move(pendingCb);
            if (cb)
                cb();
            return;
        }
        // Still the old generation: the copy is cached locally, so
        // this spin is bus-silent until the release invalidates it.
        spinOnGeneration();
    });
}

} // namespace mcube
