#include "fuzz/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "core/checker.hh"
#include "core/system.hh"
#include "fault/progress_monitor.hh"
#include "fault/reconfig.hh"
#include "run/crash_handler.hh"
#include "run/provenance.hh"
#include "run/work_journal.hh"
#include "sim/random.hh"

namespace mcube::fuzz
{

// ---------------------------------------------------------------------
// Run configuration
// ---------------------------------------------------------------------

Json
toJson(const RunConfig &cfg)
{
    Json j = Json::object();
    j.set("n", cfg.n);
    j.set("sys_seed", cfg.sysSeed);
    j.set("request_timeout_ticks", cfg.requestTimeoutTicks);
    j.set("cache_sets", cfg.cacheSets);
    j.set("cache_ways", cfg.cacheWays);
    j.set("mlt_sets", cfg.mltSets);
    j.set("mlt_ways", cfg.mltWays);
    j.set("full_check_interval", cfg.fullCheckInterval);
    j.set("max_ticks", cfg.maxTicks);
    j.set("drain_ticks", cfg.drainTicks);
    j.set("snoop_filter", Json(cfg.snoopFilter));
    j.set("tester", mcube::toJson(cfg.tester));
    j.set("fault_plan", mcube::toJson(cfg.plan));
    return j;
}

bool
runConfigFromJson(const Json &j, RunConfig &out)
{
    if (!j.isObject())
        return false;
    RunConfig d;
    out.n = static_cast<unsigned>(j.u64("n", d.n));
    out.sysSeed = j.u64("sys_seed", d.sysSeed);
    out.requestTimeoutTicks =
        j.u64("request_timeout_ticks", d.requestTimeoutTicks);
    out.cacheSets = static_cast<unsigned>(j.u64("cache_sets", d.cacheSets));
    out.cacheWays = static_cast<unsigned>(j.u64("cache_ways", d.cacheWays));
    out.mltSets = static_cast<unsigned>(j.u64("mlt_sets", d.mltSets));
    out.mltWays = static_cast<unsigned>(j.u64("mlt_ways", d.mltWays));
    out.fullCheckInterval =
        j.u64("full_check_interval", d.fullCheckInterval);
    out.maxTicks = j.u64("max_ticks", d.maxTicks);
    out.drainTicks = j.u64("drain_ticks", d.drainTicks);
    out.snoopFilter = j.flag("snoop_filter", d.snoopFilter);
    if (out.n == 0)
        return false;
    if (j.has("tester")
        && !randomTesterParamsFromJson(j.at("tester"), out.tester))
        return false;
    if (j.has("fault_plan")
        && !faultPlanFromJson(j.at("fault_plan"), out.plan))
        return false;
    return true;
}

// ---------------------------------------------------------------------
// Failure kinds
// ---------------------------------------------------------------------

const char *
toString(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return "none";
      case FailureKind::CheckerViolation:
        return "checker_violation";
      case FailureKind::OracleFailure:
        return "oracle_failure";
      case FailureKind::Stall:
        return "stall";
      case FailureKind::DrainTimeout:
        return "drain_timeout";
    }
    return "?";
}

bool
failureKindFromString(const std::string &name, FailureKind &out)
{
    for (auto k : {FailureKind::None, FailureKind::CheckerViolation,
                   FailureKind::OracleFailure, FailureKind::Stall,
                   FailureKind::DrainTimeout}) {
        if (name == toString(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// Single run
// ---------------------------------------------------------------------

RunResult
runOnce(const RunConfig &cfg, const run::Heartbeat *heartbeat)
{
    SystemParams p;
    p.n = cfg.n;
    p.seed = cfg.sysSeed;
    p.ctrl.cache = {cfg.cacheSets, cfg.cacheWays};
    p.ctrl.mlt = {cfg.mltSets, cfg.mltWays};
    p.ctrl.requestTimeoutTicks = cfg.requestTimeoutTicks;
    p.ctrl.snoopFilter = cfg.snoopFilter;

    MulticubeSystem sys(p);
    CoherenceChecker checker(sys, cfg.fullCheckInterval);
    FaultInjector injector(sys, cfg.plan);
    injector.regStats(sys.statistics());

    RandomTester tester(sys, checker, cfg.tester);

    // Plans with fail-stop specs get the full degradation machinery:
    // kills execute at their tick, detection rides the watchdog, and
    // the tester steers surviving agents off quarantined lines.
    std::unique_ptr<ReconfigurationManager> reconfig;
    if (ReconfigurationManager::planNeedsReconfig(cfg.plan)) {
        reconfig = std::make_unique<ReconfigurationManager>(
            sys, cfg.plan, &checker);
        reconfig->regStats(sys.statistics());
        ReconfigurationManager *mgr = reconfig.get();
        tester.setAddrFilter([mgr](NodeId n, Addr a) {
            return !mgr->requestRoutable(n, a);
        });
    }

    // Should this run die abnormally, the crash handler dumps the
    // pending-transaction state of the system that was live.
    run::ScopedCrashContext crashCtx(
        [&sys] { return sys.dumpPendingState(); });

    // Liveness reporting for a supervising parent. The monitor only
    // observes (no state / RNG impact), so attaching it cannot change
    // the result hash.
    std::unique_ptr<ProgressMonitor> monitor;
    if (heartbeat && heartbeat->active()) {
        heartbeat->beat();  // cover system construction time
        ProgressMonitorParams mp;
        mp.onProgress = [heartbeat] { heartbeat->beat(); };
        monitor = std::make_unique<ProgressMonitor>(sys, mp);
        monitor->start();
    }

    tester.start();

    // Run in fixed slices so a violation or oracle miss ends the run
    // at a deterministic boundary instead of burning the whole tick
    // budget. Slicing is part of the run definition: the end tick
    // feeds the result hash.
    constexpr Tick slice = 20'000'000;
    while (sys.eventQueue().now() < cfg.maxTicks) {
        Tick left = cfg.maxTicks - sys.eventQueue().now();
        sys.run(std::min(slice, left));
        if (checker.violations() > 0 || tester.readFailures() > 0
            || tester.finished())
            break;
    }

    RunResult res;
    res.finished = tester.finished();
    if (res.finished && checker.violations() == 0
        && tester.readFailures() == 0) {
        res.drained = sys.drain(cfg.drainTicks);
        if (res.drained)
            checker.fullSweep(/*strict=*/true);
    }

    res.violations = checker.violations();
    res.readFailures = tester.readFailures();
    res.injections = injector.totalInjections();
    res.opsIssued = tester.opsIssued();
    res.busOps = sys.totalBusOps();
    res.endTick = sys.eventQueue().now();

    if (res.violations > 0)
        res.failure = FailureKind::CheckerViolation;
    else if (res.readFailures > 0)
        res.failure = FailureKind::OracleFailure;
    else if (!res.finished)
        res.failure = FailureKind::Stall;
    else if (!res.drained)
        res.failure = FailureKind::DrainTimeout;

    std::uint64_t h = tester.resultHash();
    h = RandomTester::hashCombine(h, res.busOps);
    h = RandomTester::hashCombine(h, res.injections);
    h = RandomTester::hashCombine(h,
                                  static_cast<std::uint64_t>(res.failure));
    h = RandomTester::hashCombine(h, res.drained ? 1 : 0);
    if (reconfig) {
        // The degradation lifecycle is part of the run's identity:
        // replay bit-identity must cover kills, epochs and losses too.
        h = RandomTester::hashCombine(h, reconfig->kills());
        h = RandomTester::hashCombine(h, reconfig->detections());
        h = RandomTester::hashCombine(h, reconfig->epoch());
        h = RandomTester::hashCombine(h, reconfig->dataLossLines());
        h = RandomTester::hashCombine(h, reconfig->abortedTxns());
        h = RandomTester::hashCombine(h, reconfig->phantomRepairs());
    }
    res.hash = h;

    for (const auto &s : checker.report()) {
        if (res.report.size() >= 8)
            break;
        res.report.push_back(s);
    }
    for (const auto &s : tester.failures()) {
        if (res.report.size() >= 8)
            break;
        res.report.push_back(s);
    }

    res.firedMatches.reserve(cfg.plan.specs.size());
    for (std::size_t i = 0; i < cfg.plan.specs.size(); ++i)
        res.firedMatches.push_back(injector.firedMatches(i));

    return res;
}

// ---------------------------------------------------------------------
// Run results as JSON
// ---------------------------------------------------------------------

Json
toJson(const RunResult &res)
{
    Json r = Json::object();
    r.set("hash", res.hash);
    r.set("failure", std::string(toString(res.failure)));
    r.set("finished", res.finished);
    r.set("drained", res.drained);
    r.set("violations", res.violations);
    r.set("read_failures", res.readFailures);
    r.set("injections", res.injections);
    r.set("ops_issued", res.opsIssued);
    r.set("bus_ops", res.busOps);
    r.set("end_tick", res.endTick);
    if (!res.report.empty()) {
        Json arr = Json::array();
        for (const auto &s : res.report)
            arr.push(s);
        r.set("report", std::move(arr));
    }
    if (!res.firedMatches.empty()) {
        Json outer = Json::array();
        for (const auto &fm : res.firedMatches) {
            Json inner = Json::array();
            for (std::uint64_t m : fm)
                inner.push(Json(m));
            outer.push(std::move(inner));
        }
        r.set("fired_matches", std::move(outer));
    }
    return r;
}

bool
runResultFromJson(const Json &j, RunResult &out)
{
    if (!j.isObject())
        return false;
    out = RunResult{};
    out.hash = j.u64("hash", 0);
    if (!failureKindFromString(j.str("failure", "none"), out.failure))
        return false;
    out.finished = j.flag("finished", false);
    out.drained = j.flag("drained", false);
    out.violations = j.u64("violations", 0);
    out.readFailures = j.u64("read_failures", 0);
    out.injections = j.u64("injections", 0);
    out.opsIssued = j.u64("ops_issued", 0);
    out.busOps = j.u64("bus_ops", 0);
    out.endTick = j.u64("end_tick", 0);
    const Json &rep = j.at("report");
    for (std::size_t i = 0; i < rep.size(); ++i)
        if (rep.at(i).isString())
            out.report.push_back(rep.at(i).asString());
    const Json &fm = j.at("fired_matches");
    for (std::size_t i = 0; i < fm.size(); ++i) {
        std::vector<std::uint64_t> inner;
        const Json &arr = fm.at(i);
        for (std::size_t k = 0; k < arr.size(); ++k)
            inner.push_back(arr.at(k).asU64());
        out.firedMatches.push_back(std::move(inner));
    }
    return true;
}

// ---------------------------------------------------------------------
// Schedule freezing
// ---------------------------------------------------------------------

RunConfig
freezeSchedules(const RunConfig &cfg, const RunResult &observed)
{
    RunConfig out = cfg;
    for (std::size_t i = 0; i < out.plan.specs.size(); ++i) {
        FaultSpec &s = out.plan.specs[i];
        s.atMatches = i < observed.firedMatches.size()
                          ? observed.firedMatches[i]
                          : std::vector<std::uint64_t>{};
        // With every spec on an explicit schedule the injector's RNG is
        // never consulted, so the frozen plan is trivially
        // deterministic and independent of spec order.
        s.prob = 0.0;
    }
    return out;
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

namespace
{

std::uint64_t
totalScheduled(const RunConfig &cfg)
{
    std::uint64_t total = 0;
    for (const auto &s : cfg.plan.specs)
        total += s.atMatches.size();
    return total;
}

std::size_t
activeNodeCount(const RunConfig &cfg)
{
    return cfg.tester.onlyNodes.empty()
               ? static_cast<std::size_t>(cfg.n) * cfg.n
               : cfg.tester.onlyNodes.size();
}

/**
 * Greedy ddmin over one vector inside the config: repeatedly try to
 * delete chunks (halving the chunk size down to 1), keeping at least
 * @p minKeep elements. @p getVec projects the vector out of a config;
 * @p attempt validates a candidate (and commits it on success).
 */
template <typename GetVec, typename Attempt>
std::uint64_t
ddminVec(RunConfig &cur, GetVec getVec, std::size_t minKeep,
         Attempt attempt)
{
    std::uint64_t removedTotal = 0;
    std::size_t chunk =
        std::max<std::size_t>(1, getVec(cur).size() / 2);
    for (;;) {
        bool removed = false;
        std::size_t pos = getVec(cur).size();
        while (pos > 0) {
            pos = std::min(pos, getVec(cur).size());
            if (pos == 0)
                break;
            std::size_t cnt = std::min(chunk, pos);
            std::size_t lo = pos - cnt;
            if (getVec(cur).size() - cnt >= minKeep) {
                RunConfig cand = cur;
                auto &v = getVec(cand);
                v.erase(v.begin() + static_cast<std::ptrdiff_t>(lo),
                        v.begin() + static_cast<std::ptrdiff_t>(lo + cnt));
                if (attempt(cand)) {
                    removed = true;
                    removedTotal += cnt;
                }
            }
            pos = lo;
        }
        if (chunk == 1) {
            if (!removed)
                break;
        } else {
            chunk = std::max<std::size_t>(1, chunk / 2);
        }
    }
    return removedTotal;
}

} // namespace

ShrinkResult
shrinkRepro(const RunConfig &failing, unsigned maxRuns,
            const std::function<void(const std::string &)> &log)
{
    ShrinkResult sr;
    unsigned runs = 0;

    auto note = [&](const std::string &s) {
        sr.steps.push_back(s);
        if (log)
            log("shrink: " + s);
    };

    RunResult base = runOnce(failing);
    ++runs;
    if (!base.failed()) {
        sr.config = failing;
        sr.result = base;
        sr.runsUsed = runs;
        note("original config did not fail; nothing to shrink");
        return sr;
    }
    const FailureKind kind = base.failure;

    RunConfig cur = failing;
    RunResult curRes = base;

    // Accept a candidate only if it fails the same way twice with the
    // same hash: every reduction step re-proves determinism.
    auto attempt = [&](const RunConfig &cand) -> bool {
        if (runs + 2 > maxRuns)
            return false;
        RunResult a = runOnce(cand);
        ++runs;
        if (a.failure != kind)
            return false;
        RunResult b = runOnce(cand);
        ++runs;
        if (b.failure != a.failure || b.hash != a.hash)
            return false;
        cur = cand;
        curRes = std::move(a);
        return true;
    };

    // Reduction operators reused across passes.

    // Geometrically halve (then decrement) the simulated-time budget.
    // A stall repro otherwise costs the full original budget on every
    // subsequent attempt; shrinking it first makes the rest of the
    // search cheap and the final repro quick to replay.
    auto lowerMaxTicks = [&]() {
        while (cur.maxTicks > 40'000'000) {
            RunConfig cand = cur;
            cand.maxTicks = cur.maxTicks / 2;
            if (!attempt(cand))
                break;
        }
    };

    // Lower each scheduled injection's match index (halving, then
    // decrementing). A fault pinned to the 150th eligible op forces
    // the workload to stay big enough to produce 150 eligible ops;
    // moving the injection earlier in the stream unlocks the op-count
    // and node-set reductions below. This changes *which* op is
    // faulted, so each lowered index must (and does) re-prove the
    // same failure kind.
    auto lowerIndices = [&]() {
        for (std::size_t si = 0; si < cur.plan.specs.size(); ++si) {
            for (std::size_t ei = 0;
                 ei < cur.plan.specs[si].atMatches.size(); ++ei) {
                // Not every earlier index works (e.g. only an
                // ownership-transfer reply stalls when dropped), so a
                // greedy halving gets stuck on the first unsuitable
                // op. Scan upward from 0 instead and take the first
                // index that still fails — the minimal firing
                // position.
                for (std::uint64_t target = 0;
                     target < cur.plan.specs[si].atMatches[ei];
                     ++target) {
                    RunConfig cand = cur;
                    cand.plan.specs[si].atMatches[ei] = target;
                    if (attempt(cand))
                        break;
                    if (runs + 2 > maxRuns)
                        break;
                }
            }
        }
    };

    // Reduce the per-node op count (geometric, then linear).
    auto lowerOps = [&]() {
        while (cur.tester.opsPerNode > 1) {
            RunConfig cand = cur;
            cand.tester.opsPerNode =
                std::max(1u, cur.tester.opsPerNode / 2);
            if (!attempt(cand))
                break;
        }
        while (cur.tester.opsPerNode > 1) {
            RunConfig cand = cur;
            cand.tester.opsPerNode -= 1;
            if (!attempt(cand))
                break;
        }
    };

    // Step 0: shrink the tick budget while the config is still
    // probabilistic. A stall repro left at its original budget makes
    // every following attempt (and the freeze itself — probabilistic
    // faults keep firing for the whole stalled tail, bloating the
    // frozen schedule) proportionally expensive.
    lowerMaxTicks();

    // Step 1: freeze probabilistic specs into explicit schedules.
    bool frozen = false;
    {
        RunConfig cand = freezeSchedules(cur, curRes);
        if (attempt(cand)) {
            frozen = true;
            std::ostringstream oss;
            oss << "froze " << cur.plan.specs.size() << " spec(s) into "
                << totalScheduled(cur) << " scheduled injection(s)";
            note(oss.str());
        } else {
            note("freeze did not reproduce; shrinking original config");
        }
    }
    sr.deterministic = frozen;

    // Step 2: drop whole specs (last to first, so indices stay valid).
    for (std::size_t i = cur.plan.specs.size(); i-- > 0;) {
        if (cur.plan.specs.size() <= 1)
            break;
        if (i >= cur.plan.specs.size())
            continue;
        RunConfig cand = cur;
        cand.plan.specs.erase(cand.plan.specs.begin()
                              + static_cast<std::ptrdiff_t>(i));
        if (attempt(cand))
            note("removed fault spec " + std::to_string(i));
    }

    // Step 3: ddmin each surviving spec's injection schedule.
    if (frozen) {
        for (std::size_t si = 0; si < cur.plan.specs.size(); ++si) {
            std::uint64_t removed = ddminVec(
                cur,
                [si](RunConfig &c) -> std::vector<std::uint64_t> & {
                    return c.plan.specs[si].atMatches;
                },
                /*minKeep=*/0, attempt);
            if (removed > 0)
                note("spec " + std::to_string(si) + ": removed "
                     + std::to_string(removed) + " scheduled injection(s)");
        }
        // Specs whose whole schedule went away are inert; retire them.
        for (std::size_t i = cur.plan.specs.size(); i-- > 0;) {
            if (cur.plan.specs.size() <= 1
                || !cur.plan.specs[i].atMatches.empty())
                continue;
            RunConfig cand = cur;
            cand.plan.specs.erase(cand.plan.specs.begin()
                                  + static_cast<std::ptrdiff_t>(i));
            if (attempt(cand))
                note("removed emptied fault spec " + std::to_string(i));
        }
    }

    // Step 4: move the surviving injections earlier in the stream,
    // then reduce the per-node op count.
    {
        unsigned before = cur.tester.opsPerNode;
        if (frozen)
            lowerIndices();
        lowerOps();
        if (cur.tester.opsPerNode < before)
            note("ops per node " + std::to_string(before) + " -> "
                 + std::to_string(cur.tester.opsPerNode));
    }

    // Step 5: shrink the set of active tester nodes. Materialize the
    // implicit "all nodes" set first (behaviorally identical, but
    // attempt() re-proves that too).
    {
        std::size_t before = activeNodeCount(cur);
        if (cur.tester.onlyNodes.empty()) {
            RunConfig cand = cur;
            for (NodeId id = 0;
                 id < static_cast<NodeId>(cur.n) * cur.n; ++id)
                cand.tester.onlyNodes.push_back(id);
            attempt(cand);
        }
        if (!cur.tester.onlyNodes.empty()) {
            ddminVec(
                cur,
                [](RunConfig &c) -> std::vector<NodeId> & {
                    return c.tester.onlyNodes;
                },
                /*minKeep=*/1, attempt);
        }
        if (activeNodeCount(cur) < before)
            note("active nodes " + std::to_string(before) + " -> "
                 + std::to_string(activeNodeCount(cur)));
    }

    // Step 6: prune schedule entries the final run never reached, and
    // take one more pass at the (now much shorter) schedules.
    if (frozen) {
        RunConfig cand = freezeSchedules(cur, curRes);
        bool differs = false;
        for (std::size_t i = 0; i < cur.plan.specs.size(); ++i)
            differs |= cand.plan.specs[i].atMatches
                       != cur.plan.specs[i].atMatches;
        if (differs && attempt(cand))
            note("pruned schedule entries the run never reached");
        for (std::size_t si = 0; si < cur.plan.specs.size(); ++si) {
            ddminVec(
                cur,
                [si](RunConfig &c) -> std::vector<std::uint64_t> & {
                    return c.plan.specs[si].atMatches;
                },
                /*minKeep=*/0, attempt);
        }
        // Dropping nodes shortened the match stream again: one more
        // index/op-count pass usually pays for itself.
        lowerIndices();
        lowerOps();
        lowerMaxTicks();
    }

    {
        std::ostringstream oss;
        oss << "minimal repro: " << activeNodeCount(cur) << " node(s) x "
            << cur.tester.opsPerNode << " op(s), "
            << cur.plan.specs.size() << " spec(s), "
            << totalScheduled(cur) << " scheduled injection(s), "
            << runs << " run(s) used";
        note(oss.str());
    }

    sr.config = cur;
    sr.result = curRes;
    sr.runsUsed = runs;
    return sr;
}

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

namespace
{

constexpr const char *kArtifactFormat = "mcube-fuzz-repro-v1";

} // namespace

std::string
gitRevision()
{
    return run::gitRevision();
}

Json
artifactJson(const RunConfig &cfg, const RunResult &res,
             const std::string &note)
{
    Json j = Json::object();
    j.set("format", kArtifactFormat);
    j.set("git_rev", gitRevision());
    if (!note.empty())
        j.set("note", note);
    j.set("config", toJson(cfg));
    j.set("result", toJson(res));
    return j;
}

std::string
artifactParseError(const Json &j)
{
    if (!j.isObject())
        return "not a JSON object (corrupt or truncated artifact?)";
    if (!j.has("format"))
        return "missing \"format\" field — not a repro artifact";
    const std::string fmt = j.str("format", "");
    if (fmt != kArtifactFormat)
        return "unsupported artifact format \"" + fmt + "\" (this "
               "binary reads \"" + std::string(kArtifactFormat) + "\")";
    if (!j.has("config"))
        return "artifact has no \"config\" field";
    RunConfig cfg;
    if (!runConfigFromJson(j.at("config"), cfg)) {
        // Most common cause in practice: a hand-edited or version-
        // skewed fault plan. Name the exact spec and kind when so.
        if (j.at("config").has("fault_plan")) {
            std::string why =
                faultPlanParseError(j.at("config").at("fault_plan"));
            if (!why.empty())
                return "artifact \"config.fault_plan\": " + why;
        }
        return "artifact \"config\" does not parse as a run config";
    }
    if (j.has("result") && j.at("result").isObject()) {
        FailureKind k;
        if (!failureKindFromString(
                j.at("result").str("failure", "none"), k))
            return "artifact \"result.failure\" names an unknown "
                   "failure kind";
    }
    return "";
}

bool
artifactFromJson(const Json &j, RunConfig &cfg,
                 std::uint64_t &expectedHash,
                 FailureKind &expectedFailure)
{
    if (!artifactParseError(j).empty())
        return false;
    if (!runConfigFromJson(j.at("config"), cfg))
        return false;
    const Json &r = j.at("result");
    expectedHash = r.u64("hash", 0);
    expectedFailure = FailureKind::None;
    if (r.isObject()
        && !failureKindFromString(r.str("failure", "none"),
                                  expectedFailure))
        return false;
    return true;
}

Json
crashArtifactJson(const RunConfig &cfg,
                  const run::WorkerOutcome &outcome,
                  const std::string &note)
{
    Json j = Json::object();
    j.set("format", kArtifactFormat);
    j.set("git_rev", gitRevision());
    if (!note.empty())
        j.set("note", note);
    j.set("config", toJson(cfg));

    Json t = Json::object();
    t.set("triage", std::string(run::toString(outcome.triage)));
    t.set("exit_code", static_cast<std::int64_t>(outcome.exitCode));
    t.set("signal", static_cast<std::int64_t>(outcome.termSignal));
    t.set("wall_seconds", outcome.wallSeconds);
    t.set("heartbeats", outcome.heartbeats);
    if (!outcome.error.empty())
        t.set("error", outcome.error);
    j.set("worker", std::move(t));
    return j;
}

// ---------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------

RunConfig
randomConfig(std::uint64_t campaignSeed, unsigned runIndex,
             bool plantUnsafeDropReply)
{
    std::uint64_t s = RandomTester::hashCombine(
        RandomTester::hashCombine(14695981039346656037ULL, campaignSeed),
        runIndex);
    Random rng(s ? s : 1);

    RunConfig cfg;
    static constexpr unsigned grids[] = {2, 2, 3, 3, 4};
    cfg.n = grids[rng.below(5)];
    cfg.sysSeed = rng.below(1'000'000'000) + 1;
    cfg.requestTimeoutTicks = 300'000 + rng.below(500'000);

    cfg.tester.seed = rng.below(1'000'000'000) + 1;
    cfg.tester.opsPerNode = 20 + rng.below(80);
    cfg.tester.numDataLines = 8 + rng.below(24);
    cfg.tester.numLockLines = 2 + rng.below(4);
    cfg.tester.pWrite = 0.2 + 0.3 * rng.uniform();
    cfg.tester.pAllocate = 0.1 * rng.uniform();
    cfg.tester.pTset = rng.chance(0.5) ? 0.1 + 0.15 * rng.uniform() : 0.0;
    cfg.tester.pSyncOfLocks =
        (cfg.tester.pTset > 0.0 && rng.chance(0.5)) ? 0.5 : 0.0;
    cfg.tester.maxThink = 100 + rng.below(500);

    // Fault probabilities stay in the range the resilience tests prove
    // recoverable (the campaign hunts protocol bugs, not configs that
    // merely exceed the tick budget); outages are rare but long.
    cfg.plan.seed = rng.below(1'000'000'000) + 1;
    unsigned nspecs = 1 + rng.below(3);
    for (unsigned i = 0; i < nspecs; ++i) {
        FaultSpec sp;
        sp.kind = static_cast<FaultKind>(rng.below(5));
        switch (sp.kind) {
          case FaultKind::Delay:
            sp.prob = 0.08 * rng.uniform();
            sp.delayTicks = 500 + rng.below(4000);
            break;
          case FaultKind::Duplicate:
            sp.prob = 0.05 * rng.uniform();
            break;
          case FaultKind::Outage:
            sp.prob = 0.002 * rng.uniform();
            sp.outageTicks = 10'000 + rng.below(40'000);
            break;
          default:
            sp.prob = 0.08 * rng.uniform();
            break;
        }
        if (rng.chance(0.3)) {
            sp.busDim = rng.chance(0.5) ? 0 : 1;
            if (rng.chance(0.5))
                sp.busIndex = static_cast<int>(rng.below(cfg.n));
        }
        cfg.plan.specs.push_back(sp);
    }

    // Fail-stop lottery. Drawn strictly after every draw above so the
    // transient half of a config is unchanged by the feature's
    // existence; skipped for planted-bug campaigns, whose shrink tests
    // assume a purely transient plan.
    if (!plantUnsafeDropReply && rng.chance(0.08)) {
        FaultSpec fs;
        unsigned victim = rng.below(3);
        fs.graceful = rng.chance(0.5);
        fs.atTick = 500'000 + rng.below(3'500'000);
        switch (victim) {
          case 0:
            fs.kind = FaultKind::FailStopBus;
            fs.busDim = rng.chance(0.5) ? 0 : 1;
            fs.busIndex = static_cast<int>(rng.below(cfg.n));
            break;
          case 1:
            fs.kind = FaultKind::FailStopNode;
            fs.targetNode = static_cast<int>(rng.below(cfg.n * cfg.n));
            break;
          default:
            fs.kind = FaultKind::FailStopMemory;
            fs.busIndex = static_cast<int>(rng.below(cfg.n));
            break;
        }
        cfg.plan.specs.push_back(fs);
        // SYNC queue chains threaded through dying nodes are covered
        // by the dedicated reconfiguration tests; the fuzzer's job
        // here is the detect/quarantine/cutover machinery itself.
        cfg.tester.pSyncOfLocks = 0.0;
    }

    if (plantUnsafeDropReply) {
        // The planted bug: an *unsafe* DropReply may destroy the only
        // copy of a line (see FaultSpec::unsafe).
        FaultSpec bug;
        bug.kind = FaultKind::DropReply;
        bug.unsafe = true;
        bug.prob = 0.02;
        cfg.plan.specs.push_back(bug);
    }
    return cfg;
}

namespace
{

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

/** Canonical identity of a campaign: everything that determines which
 *  cases exist and what they do. Journals from a different campaign
 *  shape (or binary revision) must refuse to resume. */
std::string
campaignIdentity(const CampaignOptions &opt)
{
    std::ostringstream oss;
    oss << "fuzz_campaign|seed=" << opt.seed << "|runs=" << opt.runs
        << "|plant=" << (opt.plantUnsafeDropReply ? 1 : 0)
        << "|rev=" << run::gitRevision();
    return oss.str();
}

} // namespace

CampaignSummary
runCampaign(const CampaignOptions &opt)
{
    CampaignSummary sum;
    auto t0 = std::chrono::steady_clock::now();
    auto logLine = [&](const std::string &s) {
        if (opt.log)
            opt.log(s);
    };
    auto wantStop = [&] {
        return opt.stopRequested && opt.stopRequested();
    };

    const bool isolate = opt.isolate && run::Supervisor::supported();
    run::Supervisor sup(opt.limits);

    run::WorkJournal journal;
    if (!opt.journalPath.empty()) {
        if (!opt.resume) {
            std::error_code ec;
            std::filesystem::remove(opt.journalPath, ec);
        }
        Json hdr = Json::object();
        hdr.set("tool", "fuzz_campaign");
        hdr.set("seed", opt.seed);
        hdr.set("runs", opt.runs);
        hdr.set("plant_unsafe_drop_reply",
                Json(opt.plantUnsafeDropReply));
        std::string jerr;
        if (!journal.open(opt.journalPath,
                          run::WorkJournal::keyOf(campaignIdentity(opt)),
                          hdr, &jerr)) {
            sum.error = "journal: " + jerr;
            return sum;
        }
        if (journal.loaded() > 0)
            logLine("journal: " + std::to_string(journal.loaded())
                    + " case(s) already recorded in "
                    + opt.journalPath);
    }

    // (index, hash) of every case with a result — journaled or fresh —
    // folded into campaignHash in index order at the end.
    std::map<unsigned, std::uint64_t> hashByIndex;

    bool dirReady = false;
    auto ensureDir = [&] {
        if (dirReady)
            return;
        std::error_code ec;
        std::filesystem::create_directories(opt.outDir, ec);
        dirReady = true;
    };

    bool complete = true;
    for (unsigned i = 0; i < opt.runs; ++i) {
        const std::string item = "run_" + std::to_string(i);

        // Resume path: merge the journaled outcome, skip execution.
        if (journal.isOpen() && journal.has(item)) {
            const Json *rec = journal.find(item);
            run::Triage tri = run::Triage::Clean;
            run::triageFromString(rec->str("triage", "clean"), tri);
            RunResult res;
            if (!run::isAbnormal(tri)
                && runResultFromJson(rec->at("result"), res)) {
                hashByIndex[i] = res.hash;
                if (res.failed())
                    ++sum.failures;
            } else {
                ++sum.crashes;
            }
            ++sum.skipped;
            continue;
        }

        if (wantStop()) {
            sum.interrupted = true;
            complete = false;
            logLine("stop requested: draining after " +
                    std::to_string(sum.runsDone) + " run(s)");
            break;
        }

        if (opt.timeBudgetSeconds > 0) {
            double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (elapsed >= opt.timeBudgetSeconds) {
                complete = false;
                std::ostringstream oss;
                oss << "time budget (" << opt.timeBudgetSeconds
                    << "s) reached after " << sum.runsDone << " run(s)";
                logLine(oss.str());
                break;
            }
        }

        RunConfig cfg =
            randomConfig(opt.seed, i, opt.plantUnsafeDropReply);

        RunResult res;
        bool haveResult = false;
        Json entry = Json::object();

        if (isolate) {
            run::WorkerOutcome out = sup.runOne(
                [&cfg, &opt, i](const run::Heartbeat &hb,
                                std::string &resultOut) {
                    if (opt.preRun)
                        opt.preRun(i);
                    RunResult r = runOnce(cfg, &hb);
                    resultOut = toJson(r).dump(-1);
                    return r.failed() ? 1 : 0;
                });
            run::Triage tri = out.triage;
            if (!run::isAbnormal(tri)) {
                std::string perr;
                Json rj = Json::parse(out.result, &perr);
                if (runResultFromJson(rj, res)) {
                    haveResult = true;
                } else {
                    // Clean exit but garbage on the result pipe: treat
                    // as a worker fault, not a campaign fault.
                    tri = run::Triage::Fatal;
                    out.error = "worker result did not parse: " + perr;
                }
            }
            entry.set("triage", std::string(run::toString(tri)));
            entry.set("exit_code",
                      static_cast<std::int64_t>(out.exitCode));
            entry.set("signal",
                      static_cast<std::int64_t>(out.termSignal));
            entry.set("wall_s", out.wallSeconds);
            entry.set("heartbeats", out.heartbeats);
            if (haveResult)
                entry.set("result", toJson(res));

            if (!haveResult) {
                ++sum.crashes;
                ensureDir();
                std::string path = opt.outDir + "/repro_"
                                 + std::to_string(opt.seed) + "_"
                                 + std::to_string(i) + ".crash.json";
                out.triage = tri;
                if (writeFile(path,
                              crashArtifactJson(
                                  cfg, out, "worker died abnormally")
                                  .dump()))
                    sum.artifacts.push_back(path);
                std::ostringstream oss;
                oss << "run " << (i + 1) << "/" << opt.runs
                    << ": WORKER " << run::toString(tri);
                if (out.termSignal)
                    oss << " (signal " << out.termSignal << ")";
                oss << " -> wrote " << path;
                logLine(oss.str());
            }
        } else {
            auto rt0 = std::chrono::steady_clock::now();
            if (opt.preRun)
                opt.preRun(i);
            res = runOnce(cfg);
            haveResult = true;
            double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - rt0)
                              .count();
            entry.set("triage",
                      std::string(run::toString(
                          res.failed() ? run::Triage::ItemFailed
                                       : run::Triage::Clean)));
            entry.set("exit_code", res.failed() ? 1 : 0);
            entry.set("signal", 0);
            entry.set("wall_s", wall);
            entry.set("result", toJson(res));
        }
        ++sum.runsDone;

        if (haveResult) {
            hashByIndex[i] = res.hash;
            std::ostringstream oss;
            oss << "run " << (i + 1) << "/" << opt.runs << ": n=" << cfg.n
                << " ops=" << cfg.tester.opsPerNode
                << " specs=" << cfg.plan.specs.size() << " -> ";
            if (res.failed())
                oss << "FAIL (" << toString(res.failure) << ")";
            else
                oss << "ok";
            oss << " hash=" << std::hex << res.hash << std::dec;
            logLine(oss.str());
        }

        // Journal before shrinking: the case's verdict is durable even
        // if the (long) shrink is interrupted.
        if (journal.isOpen() && !journal.record(item, entry))
            logLine("journal: WARNING: failed to record " + item);

        if (!haveResult || !res.failed())
            continue;
        ++sum.failures;

        ensureDir();
        std::string base = opt.outDir + "/repro_"
                         + std::to_string(opt.seed) + "_"
                         + std::to_string(i);
        if (writeFile(base + ".json",
                      artifactJson(cfg, res, "as found").dump()))
            sum.artifacts.push_back(base + ".json");
        logLine("wrote " + base + ".json");

        if (opt.shrink && !wantStop()) {
            ShrinkResult s =
                shrinkRepro(cfg, opt.maxShrinkRuns, opt.log);
            std::string how = s.deterministic
                                  ? "shrunken (determinism re-verified "
                                    "at every step)"
                                  : "shrunken";
            if (writeFile(base + ".min.json",
                          artifactJson(s.config, s.result, how).dump()))
                sum.artifacts.push_back(base + ".min.json");
            logLine("wrote " + base + ".min.json");
        }
    }

    std::uint64_t h = 14695981039346656037ULL;
    for (const auto &[idx, hash] : hashByIndex) {
        h = RandomTester::hashCombine(h, idx);
        h = RandomTester::hashCombine(h, hash);
    }
    sum.campaignHash = h;

    // Footer only when every case is accounted for; an interrupted
    // journal (no footer) is exactly what --resume continues from.
    if (journal.isOpen() && complete)
        journal.finish();
    return sum;
}

} // namespace mcube::fuzz
