/**
 * @file
 * Chaos-campaign engine: seeded fault-fuzzing of the coherence
 * protocol, self-contained repro artifacts, and automatic repro
 * shrinking.
 *
 * A *campaign* generates seeded (topology x workload x fault-plan)
 * combinations and runs each one under the CoherenceChecker and the
 * random tester's golden-value oracle. Every run is fully described
 * by a RunConfig, which serializes to JSON; the simulator is
 * deterministic, so a RunConfig plus the binary is a complete repro —
 * replayability is checked via a run-result hash ("same seed => same
 * run").
 *
 * When a run fails (invariant violation, oracle miss, stall, or drain
 * timeout), the engine writes the config + result as an artifact and
 * then *shrinks* it: probabilistic fault specs are first frozen into
 * explicit k-th-op schedules (using the injector's fired-match
 * counters), then delta-debugging removes faults, lowers the per-node
 * op count and drops tester nodes — re-verifying after every accepted
 * step that the reduced config still fails the same way,
 * deterministically (two runs, identical hash). The result is a
 * minimal explicit-schedule repro a human can actually read.
 *
 * The planted-bug test drives this end to end: an `unsafe` DropReply
 * spec (deliberately outside the protocol's recoverable-fault model)
 * is planted, the campaign finds it, and the shrinker reduces it to a
 * handful of ops and at most a couple of faults.
 */

#ifndef MCUBE_FUZZ_CAMPAIGN_HH
#define MCUBE_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"
#include "proc/random_tester.hh"
#include "run/supervisor.hh"
#include "sim/json.hh"
#include "sim/types.hh"

namespace mcube::fuzz
{

/** Complete, serializable configuration of one fuzzed run. */
struct RunConfig
{
    unsigned n = 4;                    //!< grid edge (N = n^2 nodes)
    std::uint64_t sysSeed = 1;
    Tick requestTimeoutTicks = 500'000;  //!< watchdog (0 = disabled)
    unsigned cacheSets = 64;
    unsigned cacheWays = 4;
    unsigned mltSets = 64;
    unsigned mltWays = 4;
    std::uint64_t fullCheckInterval = 64;
    Tick maxTicks = 3'000'000'000ull;  //!< stall budget
    Tick drainTicks = 1'000'000'000ull;
    /** Snoop fast-reject filter (pure simulator optimisation; the
     *  result hash must be bit-identical either way). */
    bool snoopFilter = true;
    RandomTesterParams tester{};
    FaultPlan plan{};
};

/** @{ JSON round-tripping of a run configuration. */
Json toJson(const RunConfig &cfg);
bool runConfigFromJson(const Json &j, RunConfig &out);
/** @} */

/** Why a run counts as failed. */
enum class FailureKind : std::uint8_t
{
    None,              //!< completed cleanly
    CheckerViolation,  //!< a coherence invariant broke
    OracleFailure,     //!< a read returned a never-golden value
    Stall,             //!< tester did not finish within maxTicks
    DrainTimeout,      //!< finished but the system would not drain
};

const char *toString(FailureKind kind);
bool failureKindFromString(const std::string &name, FailureKind &out);

/** Everything observed about one run. */
struct RunResult
{
    bool finished = false;
    bool drained = false;
    std::uint64_t violations = 0;
    std::uint64_t readFailures = 0;
    std::uint64_t injections = 0;
    std::uint64_t opsIssued = 0;
    std::uint64_t busOps = 0;
    Tick endTick = 0;
    /** Whole-run fingerprint (tester hash + system counters). */
    std::uint64_t hash = 0;
    FailureKind failure = FailureKind::None;
    /** First few checker/oracle failure descriptions. */
    std::vector<std::string> report;
    /** Per-spec match indices where the injector fired (freezing). */
    std::vector<std::vector<std::uint64_t>> firedMatches;

    bool failed() const { return failure != FailureKind::None; }
};

/** @{ JSON round-tripping of a run result (fired-match schedules
 *  included), the payload a supervised worker hands back. */
Json toJson(const RunResult &res);
bool runResultFromJson(const Json &j, RunResult &out);
/** @} */

/**
 * Build the system described by @p cfg and run it to completion
 * (with early exit as soon as a violation or oracle miss appears).
 *
 * When @p heartbeat is non-null the run reports liveness through it:
 * a ProgressMonitor beats whenever a transaction completed since its
 * last check (or nothing is outstanding), so a supervising parent
 * can distinguish a slow run from a livelocked one. The monitor is
 * observation-only — the result (hash included) is bit-identical
 * with or without a heartbeat attached.
 */
RunResult runOnce(const RunConfig &cfg,
                  const run::Heartbeat *heartbeat = nullptr);

/**
 * Freeze every probabilistic spec of @p cfg into an explicit
 * atMatches schedule reproducing exactly the injections @p observed
 * recorded. Specs already scheduled are pruned to the entries that
 * actually fired.
 */
RunConfig freezeSchedules(const RunConfig &cfg,
                          const RunResult &observed);

/** Outcome of shrinking one failing config. */
struct ShrinkResult
{
    RunConfig config;   //!< minimal failing config, explicit schedules
    RunResult result;   //!< result of the minimal config
    unsigned runsUsed = 0;
    /** True iff every accepted step re-ran twice with equal hashes. */
    bool deterministic = false;
    std::vector<std::string> steps;  //!< accepted-reduction log
};

/**
 * Delta-debug @p failing down to a minimal config that still fails
 * with the same FailureKind. Each accepted reduction is verified by
 * running the candidate twice (identical hash both times). @p maxRuns
 * bounds the total number of simulations.
 */
ShrinkResult shrinkRepro(const RunConfig &failing,
                         unsigned maxRuns = 400,
                         const std::function<void(const std::string &)>
                             &log = {});

/** @{ Self-contained repro artifact: config + result + git rev. */
Json artifactJson(const RunConfig &cfg, const RunResult &res,
                  const std::string &note = "");

/**
 * Validate @p j as a repro artifact before trusting any field.
 * Returns "" when usable, otherwise a message that distinguishes the
 * failure shapes a replayer must tell apart: not an object / missing
 * or mismatched format version / unusable config. Corrupt and
 * version-skewed artifacts thus fail loudly and distinctly instead
 * of replaying garbage.
 */
std::string artifactParseError(const Json &j);

/** Parse an artifact (artifactParseError must pass). A crash
 *  artifact carries no result: @p expectedHash stays 0 ("no recorded
 *  expectation") and @p expectedFailure None. */
bool artifactFromJson(const Json &j, RunConfig &cfg,
                      std::uint64_t &expectedHash,
                      FailureKind &expectedFailure);
/** @} */

/**
 * Crash artifact: written when a supervised worker died (signal,
 * OOM, deadline) instead of returning a result. Same format= and
 * config= shape as a failure artifact — replayable with
 * `fuzz_campaign --replay` (expect to reproduce the crash!) — plus
 * the supervisor's triage verdict.
 */
Json crashArtifactJson(const RunConfig &cfg,
                       const run::WorkerOutcome &outcome,
                       const std::string &note = "");

/** Knobs of a whole campaign. */
struct CampaignOptions
{
    std::uint64_t seed = 1;
    unsigned runs = 50;
    /** Stop starting new runs after this much wall time (0 = off). */
    double timeBudgetSeconds = 0.0;
    bool shrink = true;
    unsigned maxShrinkRuns = 400;
    std::string outDir = "fuzz_artifacts";
    /**
     * Plant a deliberately ineligible (unsafe) DropReply spec in every
     * generated plan — the end-to-end harness check: the campaign must
     * find it and the shrinker must reduce it.
     */
    bool plantUnsafeDropReply = false;
    /** Progress sink (one line per event); empty = silent. */
    std::function<void(const std::string &)> log{};

    /**
     * Run every case in a forked, resource-limited worker process
     * (run::Supervisor): a crashing / OOMing / wedged case is triaged
     * and becomes a replayable crash artifact instead of killing the
     * campaign. Ignored (inline execution) where fork is unavailable.
     * Results are hash-identical either way.
     */
    bool isolate = false;
    /** Per-case limits when isolating (0 disables each). */
    run::WorkerLimits limits{};
    /**
     * Append-only fsync'd JSONL journal of completed cases (empty =
     * no journal). Keyed by (seed, runs, plant flag, git rev); a
     * journal written by a different campaign refuses to resume.
     */
    std::string journalPath;
    /**
     * Skip cases the journal already records, merging their hashes
     * and failure counts into the summary — the union of an
     * interrupted + resumed campaign is identical to an uninterrupted
     * one (compare campaignHash). Without resume an existing journal
     * file is replaced.
     */
    bool resume = false;
    /** Test hook: runs right before case @p i, inside the forked
     *  child when isolating — how the tests plant a crash. */
    std::function<void(unsigned)> preRun{};
    /** Polled between cases; once true the campaign drains
     *  gracefully: no new case starts, in-flight cases finish (or hit
     *  their deadline), the journal stays valid for --resume. */
    std::function<bool()> stopRequested{};
};

/** Derive run @p runIndex of campaign @p campaignSeed. The mapping is
 *  pure: the same (seed, index) always yields the same config. */
RunConfig randomConfig(std::uint64_t campaignSeed, unsigned runIndex,
                       bool plantUnsafeDropReply = false);

/** What a campaign did. */
struct CampaignSummary
{
    unsigned runsDone = 0;  //!< cases executed in this invocation
    unsigned failures = 0;  //!< failing cases (journaled ones included)
    unsigned skipped = 0;   //!< journaled cases not re-run (resume)
    unsigned crashes = 0;   //!< abnormal worker deaths, triaged
    bool interrupted = false;  //!< stopRequested drained the campaign
    /**
     * Fingerprint over (case index, result hash) in index order,
     * journaled and fresh cases alike. Case results are pure in
     * (seed, index), so an interrupted+resumed campaign must produce
     * the same campaignHash as an uninterrupted one — the resume
     * determinism contract, checked by tests and CI.
     */
    std::uint64_t campaignHash = 0;
    std::string error;  //!< campaign-level fatal error ("" = none)
    std::vector<std::string> artifacts;  //!< files written (see outDir)
};

/** Run a campaign; failing runs write (and shrink) repro artifacts. */
CampaignSummary runCampaign(const CampaignOptions &opt);

/** Best-effort HEAD revision; "unknown" outside a git checkout. */
std::string gitRevision();

} // namespace mcube::fuzz

#endif // MCUBE_FUZZ_CAMPAIGN_HH
