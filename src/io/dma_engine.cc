#include "io/dma_engine.hh"

#include <utility>

#include "sim/log.hh"

namespace mcube
{

DmaEngine::DmaEngine(std::string name, EventQueue &eq,
                     SnoopController &ctrl, const DmaParams &params)
    : name(std::move(name)), eq(eq), ctrl(ctrl), params(params),
      stats(this->name)
{
    stats.addCounter("lines_in", statLinesIn,
                     "device lines written into the machine");
    stats.addCounter("lines_out", statLinesOut,
                     "machine lines read out to the device");
    stats.addCounter("retries", statRetries,
                     "pump attempts deferred (controller busy)");
}

void
DmaEngine::input(Addr base, unsigned lines, std::uint64_t first_token,
                 DoneCb cb)
{
    Job j;
    j.isInput = true;
    j.base = base;
    j.lines = lines;
    j.token = first_token;
    j.done = std::move(cb);
    jobs.push_back(std::move(j));
    pump();
}

void
DmaEngine::output(Addr base, unsigned lines,
                  std::function<void(Addr, std::uint64_t)> sink,
                  DoneCb cb)
{
    Job j;
    j.isInput = false;
    j.base = base;
    j.lines = lines;
    j.sink = std::move(sink);
    j.done = std::move(cb);
    jobs.push_back(std::move(j));
    pump();
}

void
DmaEngine::pump()
{
    if (lineInFlight || jobs.empty())
        return;

    Job &job = jobs.front();
    if (job.next >= job.lines) {
        DoneCb done = std::move(job.done);
        jobs.pop_front();
        if (done)
            done();
        pump();
        return;
    }

    if (eq.now() < deviceReadyAt) {
        eq.schedule(deviceReadyAt, [this] { pump(); });
        return;
    }

    // The engine shares the node's single transaction slot with the
    // processor; back off briefly if the controller is occupied.
    if (ctrl.busy()) {
        ++statRetries;
        eq.scheduleIn(200, [this] { pump(); });
        return;
    }

    Addr addr = job.base + job.next;
    lineInFlight = true;
    deviceReadyAt = eq.now() + params.ticksPerLine;

    if (job.isInput) {
        std::uint64_t tok = job.token + job.next;
        auto out = ctrl.writeAllocate(
            addr, tok, [this](const TxnResult &) { lineDone(); });
        if (out == AccessOutcome::Hit)
            lineDone();
    } else {
        std::uint64_t tok = 0;
        auto out =
            ctrl.read(addr, tok, [this, addr](const TxnResult &res) {
                Job &j = jobs.front();
                if (j.sink)
                    j.sink(addr, res.data.token);
                lineDone();
            });
        if (out == AccessOutcome::Hit) {
            if (job.sink)
                job.sink(addr, tok);
            lineDone();
        }
    }
}

void
DmaEngine::lineDone()
{
    Job &job = jobs.front();
    if (job.isInput)
        ++statLinesIn;
    else
        ++statLinesOut;
    ++job.next;
    lineInFlight = false;
    MCUBE_LOG(LogCat::Proc, eq.now(),
              name << " line " << job.next << "/" << job.lines);
    pump();
}

void
DmaEngine::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
