/**
 * @file
 * I/O via DMA through the snooping cache (Section 2).
 *
 * "The solution ... is to attach the I/O directly to some or all of
 * the processors, with DMA routed through the processor's snooping
 * cache. At the interconnection level, I/O is then treated as any
 * other processor request for shared data ... avoiding much of the
 * double writing normally associated with DMA on conventional bus
 * systems. In the proposed machine, I/O data may never actually be
 * written to memory, but be read directly across the bus into the
 * cache of the processor requesting it."
 *
 * A DmaEngine sits beside one node's controller and issues coherent
 * transactions on the device's behalf:
 *
 *  - input (device -> machine): each arriving line is installed with
 *    the ALLOCATE hint ("much of the benefit can be obtained by its
 *    inclusion in a few places, such as in I/O handlers"), so no
 *    stale data is fetched and replies are dataless acknowledges;
 *  - output (machine -> device): each line is fetched with a READ
 *    transaction, wherever it currently lives.
 *
 * The device side is modelled as a fixed line rate (e.g. a disk or
 * network port); transfers self-pace at min(device rate, memory
 * system throughput). One node may host several engines, but each
 * engine shares the node's single outstanding-transaction slot with
 * the processor, so engines queue internally.
 */

#ifndef MCUBE_IO_DMA_ENGINE_HH
#define MCUBE_IO_DMA_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "core/controller.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

/** Device timing parameters. */
struct DmaParams
{
    /** Minimum spacing between consecutive device lines (e.g. a
     *  100 MB/s device moving 128-byte lines = 1280 ns/line). */
    Tick ticksPerLine = 1280;
};

/** One DMA engine attached to a node. */
class DmaEngine
{
  public:
    using DoneCb = std::function<void()>;

    /**
     * @param name Instance name for stats.
     * @param eq Shared event queue.
     * @param ctrl The hosting node's snooping cache controller.
     * @param params Device timing.
     */
    DmaEngine(std::string name, EventQueue &eq, SnoopController &ctrl,
              const DmaParams &params);

    DmaEngine(const DmaEngine &) = delete;
    DmaEngine &operator=(const DmaEngine &) = delete;

    /**
     * Device input: write @p lines consecutive lines starting at
     * @p base into the machine. Tokens are taken from @p first_token
     * upward (modelling the device payload).
     */
    void input(Addr base, unsigned lines, std::uint64_t first_token,
               DoneCb cb);

    /**
     * Device output: read @p lines consecutive lines starting at
     * @p base out of the machine. Each line's token is handed to
     * @p sink (modelling the device consuming the payload).
     */
    void output(Addr base, unsigned lines,
                std::function<void(Addr, std::uint64_t)> sink,
                DoneCb cb);

    bool idle() const { return jobs.empty() && !lineInFlight; }

    std::uint64_t linesIn() const { return statLinesIn.value(); }
    std::uint64_t linesOut() const { return statLinesOut.value(); }

    void regStats(StatGroup &parent);

  private:
    struct Job
    {
        bool isInput = false;
        Addr base = 0;
        unsigned lines = 0;
        unsigned next = 0;
        std::uint64_t token = 0;
        std::function<void(Addr, std::uint64_t)> sink;
        DoneCb done;
    };

    /** Start the next line of the front job when the device and the
     *  controller are both ready. */
    void pump();
    void lineDone();

    std::string name;
    EventQueue &eq;
    SnoopController &ctrl;
    DmaParams params;

    std::deque<Job> jobs;
    bool lineInFlight = false;
    Tick deviceReadyAt = 0;

    Counter statLinesIn;
    Counter statLinesOut;
    Counter statRetries;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_IO_DMA_ENGINE_HH
