/**
 * @file
 * The per-node snooping cache controller — the paper's core contribution.
 *
 * Each node of the grid owns one SnoopController, which snoops one row
 * bus and one column bus and implements the cache consistency protocol
 * of Section 3 / Appendix A:
 *
 *  - READ, READ-MOD, ALLOCATE and WRITE-BACK transactions, each a
 *    sequence of row/column bus operations;
 *  - the modified line table (identical across a column) that routes
 *    row requests either to the owning column or to the home column;
 *  - request reissue when an MLT remove fails or memory holds an
 *    invalid line (race resolution / robustness, "Timing
 *    Considerations");
 *  - the invalidation broadcast for READ-MODs to unmodified lines;
 *  - MLT overflow writebacks;
 *  - optional snarfing of passing unmodified data;
 *  - optional random dropping of the modified-line signal, exercising
 *    the robustness property that lets controllers discard requests.
 *
 * It also implements the Section 4 synchronisation extension: the
 *  remote test-and-set transaction and the SYNC distributed queue
 * lock. Deviation from the paper (documented in DESIGN.md): the MLT
 * entry for a queued lock stays at the *owner's* column rather than
 * moving to the tail's column, and joins walk the waiter chain with
 * short directed operations. This keeps every foreign request
 * serviceable (the owner always holds the modified copy) while
 * preserving the paper's headline properties: local spinning with
 * zero bus traffic, O(1) bus operations per lock hand-off, and
 * FIFO-ish grant order, with degeneration to remote test-and-set when
 * the protocol is broken.
 *
 * The engine is memoryless in the paper's sense: apart from the
 * node's own outstanding processor request, every bus operation is
 * handled purely from (op, local cache mode, local MLT).
 */

#ifndef MCUBE_CORE_CONTROLLER_HH
#define MCUBE_CORE_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "bus/bus.hh"
#include "bus/bus_op.hh"
#include "cache/cache_array.hh"
#include "cache/mlt.hh"
#include "cache/presence_filter.hh"
#include "sim/flat_map.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "topology/grid_map.hh"

namespace mcube
{

/** Static configuration of a controller. */
struct ControllerParams
{
    CacheArrayParams cache{1024, 8};  //!< snooping cache geometry
    MltParams mlt{256, 4};            //!< modified line table geometry
    bool enableSnarfing = false;      //!< fill invalid tags from passing data
    double dropSignalProb = 0.0;      //!< P(discard a row request we own)
    Tick syncRetryTicks = 500;        //!< backoff before a SYNC rejoin
    /** DRAM snooping-cache access latency (paper: 750 ns), charged
     *  once per transaction served by a remote snooping cache. */
    Tick accessTicks = 750;
    /**
     * Section 3's optional ALLOCATE refinement: "It may be
     * implemented in a manner that allows the processor to write a
     * line before receiving the acknowledge of the ALLOCATE." When
     * set, writeAllocate() acknowledges the processor as soon as the
     * line is staged locally (mode AllocPending); the transaction
     * still completes in the background and commits globally then.
     */
    bool allocateEarlyWrite = false;
    /**
     * Transaction watchdog: if the outstanding request sits in
     * Stage::Requested longer than this (e.g. because a fault dropped
     * the request or a recoverable reply), the controller reissues it
     * with capped exponential backoff plus jitter. 0 (the default)
     * disables the watchdog entirely, preserving the paper-faithful
     * behaviour tick for tick; fault campaigns enable it explicitly.
     * When enabling, pick a value well above the workload's worst
     * fault-free miss latency — a watchdog firing on a merely-slow
     * transaction floods the system with duplicate requests. SYNC
     * waiters that are already queued in a lock chain are exempt —
     * their wait is bounded by the holder's critical section, not by
     * the bus.
     */
    Tick requestTimeoutTicks = 0;
    /** Backoff doublings cap: timeout grows up to 2^shift times. */
    unsigned watchdogBackoffShift = 3;
    /** Uniform jitter added to each rearm, avoiding reissue storms. */
    Tick watchdogJitterTicks = 512;
    /**
     * Cap on consecutive bounce relaunches of one request instance by
     * the originator's row-mate on the home column. A request that a
     * watchdog reissue has already satisfied leaves a stale
     * bounce-relaunch loop spinning forever (memory bounce -> row
     * relaunch -> memory bounce ...); each lap occupies the memory
     * module, so accumulated loops can starve real traffic. After
     * this many relaunches the loop is allowed to die — the
     * originator's watchdog restarts a live request from scratch.
     * Only consulted when requestTimeoutTicks > 0 (without a watchdog
     * a capped request could never recover, so the cap is off).
     */
    unsigned maxRelaunches = 64;
    /**
     * Snoop fast-reject filter: keep a counting presence summary of
     * the cache tags + MLT entries and let Bus::deliver skip this
     * controller's snoop for addresses the summary rejects. Pure
     * *simulator* optimization — simulated results are bit-identical
     * on or off (enforced by the fuzz determinism test and, in debug
     * builds, a shadow check on every reject); off exists for A-B
     * benching and for debugging the filter itself.
     */
    bool snoopFilter = true;
    std::uint64_t seed = 1;           //!< RNG seed (drop injection)
};

/** Result of a completed processor transaction. */
struct TxnResult
{
    bool success = true;   //!< test-and-set / sync: lock acquired
    LineData data{};       //!< line contents delivered (reads)
    Tick latency = 0;      //!< issue-to-completion time
    /** The transaction was cancelled by a fail-stop reconfiguration
     *  (docs/ROBUSTNESS.md); data is meaningless and no global state
     *  changed on this node's behalf. */
    bool aborted = false;
};

/** Outcome of a processor-side access attempt. */
enum class AccessOutcome
{
    Hit,   //!< satisfied immediately from the snooping cache
    Miss,  //!< a bus transaction was started; callback will fire
    Busy,  //!< an earlier transaction is still outstanding
};

/**
 * One node's snooping cache controller.
 */
class SnoopController
{
  public:
    using CompletionCb = std::function<void(const TxnResult &)>;

    SnoopController(std::string name, EventQueue &eq, const GridMap &grid,
                    NodeId id, const ControllerParams &params);

    SnoopController(const SnoopController &) = delete;
    SnoopController &operator=(const SnoopController &) = delete;

    /** Attach to this node's row and column buses. Call once. */
    void connect(Bus &row_bus, Bus &col_bus);

    /**
     * Pin this node's completion callbacks and timers to engine lane
     * @p lane (the node's row-bus lane, set by MulticubeSystem when a
     * parallel engine is active). Sequentially the value is unused:
     * scheduleToLane() degrades to scheduleIn(). Sharding completions
     * by home lane is what keeps the serial lane down to genuinely
     * global work (docs/PERFORMANCE.md, "Serial-lane pressure").
     */
    void setHomeLane(unsigned lane) { homeLane_ = lane; }

    /** The engine lane completions are pinned to (0 sequentially). */
    unsigned homeLane() const { return homeLane_; }

    NodeId id() const { return _id; }
    unsigned row() const { return grid.rowOf(_id); }
    unsigned col() const { return grid.colOf(_id); }

    /** True while a processor transaction is outstanding. */
    bool busy() const { return pending.stage != Stage::Idle; }

    /**
     * @{
     * Processor-side access API. On Hit the out-parameter (if any) is
     * valid and no callback fires; on Miss the callback fires at
     * completion; on Busy nothing happened (one outstanding request
     * per processor, matching the paper's non-overlapping model).
     */

    /** Read a line (token only). */
    AccessOutcome read(Addr addr, std::uint64_t &token_out,
                       CompletionCb cb);

    /** Read a full line, lock/link words included (used by software
     *  test-and-test-and-set, which inspects the lock word). */
    AccessOutcome readLine(Addr addr, LineData &data_out,
                           CompletionCb cb);

    /** Write a line (token becomes the line's new contents). */
    AccessOutcome write(Addr addr, std::uint64_t token, CompletionCb cb);

    /**
     * Write a whole line using the ALLOCATE hint: prior contents are
     * not fetched; replies carry an acknowledge instead of data.
     */
    AccessOutcome writeAllocate(Addr addr, std::uint64_t token,
                                CompletionCb cb);

    /** Remote test-and-set (Section 4). granted_out valid on Hit. */
    AccessOutcome testAndSet(Addr addr, bool &granted_out,
                             CompletionCb cb);

    /**
     * Join the distributed queue lock for @p addr (Section 4 SYNC).
     * On Hit, @p granted_out says whether the (locally held) lock was
     * free; on Miss the transaction completes — possibly much later —
     * when the lock is granted to this node.
     */
    AccessOutcome syncAcquire(Addr addr, bool &granted_out,
                              CompletionCb cb);

    /**
     * Clear the lock word of a line held Modified locally (recovery
     * path when release() could not run because the line had been
     * stolen and re-fetched). @return false if not held modified.
     */
    bool forceUnlock(Addr addr);

    /**
     * Release a lock held on @p addr: clears the lock word, stores
     * @p token, and hands the line to the next queued waiter if any.
     * @return false if this node does not hold the line modified.
     */
    bool release(Addr addr, std::uint64_t token);

    /** @} */

    /** Hook invoked whenever a line leaves the snooping cache, so the
     *  L1 can preserve the strict-subset property. */
    std::function<void(Addr)> onPurge;

    /** Hook invoked when a store commits (write hit, write-miss
     *  completion, or lock release); used by the coherence checker to
     *  maintain the golden per-line value. */
    std::function<void(Addr, std::uint64_t)> onCommitWrite;

    /** Hook invoked on every watchdog reissue with the per-transaction
     *  reissue count; the ReconfigurationManager feeds its fail-stop
     *  detection counters from it (docs/ROBUSTNESS.md). */
    std::function<void(NodeId, Addr, unsigned)> onWatchdogReissue;

    /**
     * @{
     * Fail-stop degradation API (docs/ROBUSTNESS.md), driven by the
     * ReconfigurationManager — never by the protocol engine itself.
     */

    /**
     * Fail-stop this node permanently: the outstanding transaction (if
     * any) is aborted, both ports go silent (no snooping, no modified
     * signal), and every later processor access returns Busy. Local
     * cache/MLT contents are left in place for the manager to audit —
     * quarantine of the dead state happens at the epoch cutover.
     */
    void retire();

    /**
     * Graceful-retire phase 1: close the processor side. The pending
     * transaction (if any) is aborted, later processor accesses return
     * Busy and retired() reads true so workloads park their agents —
     * but both ports stay fully alive: in-flight replies to the
     * aborted request are still parked back to memory, and the node
     * keeps serving its modified lines (transferring ownership to
     * live requesters instead of stranding it).
     */
    void beginDrain();

    /**
     * Graceful-retire phase 2: silence both ports (no snooping, no
     * modified signal — indistinguishable from dead on the wire), so
     * no new reply naming this node is ever queued on a bus that is
     * about to fail-stop. Requests for its remaining modified lines
     * bounce off the invalid memory copy until the final scrub
     * revalidates them. Cache and MLT contents stay in place for that
     * scrub. Implies beginDrain().
     */
    void goSilent();

    /** True once the node stopped accepting processor requests —
     *  retire() or beginDrain() (a drained node is about to die). */
    bool retired() const { return retired_ || draining_; }

    /**
     * Cancel the outstanding transaction with an aborted TxnResult
     * (fires the callback from a fresh event, like a completion).
     * Used on live nodes whose pending address was quarantined.
     */
    void abortPending();

    /** Epoch cutover: invalidate any local copy of @p addr (counted as
     *  an invalidation; onPurge fires so subset properties hold). */
    void retireLine(Addr addr);

    /** Epoch cutover: drop the MLT entry for @p addr, if present,
     *  keeping the presence filter in sync. */
    void dropTableEntry(Addr addr);

    /** @} */

    /** @{ Introspection for tests and the coherence checker. */
    const CacheArray &cacheArray() const { return cache; }
    const ModifiedLineTable &table() const { return mlt; }
    Mode modeOf(Addr addr) const;
    LineData dataOf(Addr addr) const;
    /** One-line description of the outstanding transaction (for
     *  debugging stuck systems); empty when idle. */
    std::string pendingInfo() const;
    /** Address of the outstanding transaction (valid while busy()). */
    Addr pendingAddr() const { return pending.addr; }
    /** @} */

    /** @{ Statistics. */
    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }
    std::uint64_t reissues() const { return statReissues.value(); }
    std::uint64_t invalidationsReceived() const
    {
        return statInvalidations.value();
    }
    std::uint64_t snarfs() const { return statSnarfs.value(); }
    std::uint64_t dropsInjected() const { return statDrops.value(); }
    std::uint64_t mltOverflows() const { return statMltOverflow.value(); }
    std::uint64_t victimWritebacks() const
    {
        return statVictimWbs.value();
    }
    std::uint64_t tsetFails() const { return statTsetFails.value(); }
    std::uint64_t syncGrants() const { return statSyncGrants.value(); }
    std::uint64_t syncAborts() const { return statSyncAborts.value(); }
    std::uint64_t syncJoins() const { return statSyncJoins.value(); }
    std::uint64_t watchdogReissues() const
    {
        return statWatchdogReissues.value();
    }
    /** Snoops delivered because the presence summary said
     *  maybe-present (a structural exclusion did not apply). */
    std::uint64_t filterHits() const { return statFilterHits.value(); }
    /** Snoops skipped entirely by the fast-reject filter. */
    std::uint64_t filterRejects() const
    {
        return statFilterRejects.value();
    }
    const Distribution &watchdogRecoveryLatency() const
    {
        return statWatchdogRecovery;
    }
    const Histogram &watchdogRecoveryHist() const
    {
        return statWatchdogRecoveryHist;
    }
    const Distribution &missLatency() const { return statMissLatency; }
    const Histogram &missLatencyHist() const { return statLatencyHist; }
    const Distribution &readLatency() const { return statReadLatency; }
    const Distribution &writeLatency() const
    {
        return statWriteLatency;
    }
    const Distribution &lockLatency() const { return statLockLatency; }
    void regStats(StatGroup &parent);
    /** @} */

  private:
    /** Stage of the single outstanding processor transaction. */
    enum class Stage : std::uint8_t
    {
        Idle,       //!< no transaction outstanding
        WbVictim,   //!< waiting for victim writeback "continue"
        Requested,  //!< row request issued, waiting for the reply
    };

    /** The outstanding processor request (the only retained state). */
    struct Pending
    {
        Stage stage = Stage::Idle;
        TxnType txn = TxnType::Read;
        Addr addr = 0;
        std::uint64_t newToken = 0;  //!< store value for writes
        CompletionCb cb;
        Tick start = 0;
        // SYNC bookkeeping:
        NodeId queueNext = invalidNode;  //!< our successor in the chain
        bool queuedInChain = false;      //!< a predecessor points at us
        bool purged = false;             //!< reserved copy was purged
        // ALLOCATE early-write bookkeeping:
        bool earlyAck = false;           //!< ack before completion
        bool ackFired = false;           //!< early ack delivered
        // Victim-writeback bookkeeping:
        Addr wbVictimAddr = 0;           //!< line our WB REMOVE names
        // Watchdog bookkeeping:
        std::uint64_t seq = 0;           //!< transaction sequence id
        std::uint64_t wdArm = 0;         //!< watchdog arm generation
        Tick nextTimeout = 0;            //!< current backoff interval
        bool watchdogFired = false;      //!< at least one reissue
        unsigned reissueCount = 0;       //!< watchdog reissues so far
    };

    /** BusAgent adapters: one per attached bus so the controller can
     *  tell row traffic from column traffic. */
    struct Port : BusAgent
    {
        SnoopController *owner = nullptr;
        bool isRow = false;

        bool supplyModifiedSignal(const BusOp &op) override;
        void snoop(const BusOp &op, bool modified_signal) override;
        bool snoopRejects(const BusOp &op) override;
    };

    friend struct Port;

    /**
     * Fire onCommitWrite for a committed store. Under the parallel
     * engine the hook mutates observer state shared across nodes (the
     * coherence checker's golden values), so the call is deferred to
     * the serial lane in canonical cross-lane order; deferCall
     * preserves the committing tick, so the hook still sees the
     * commit-time eq.now(). Sequentially the hook runs inline,
     * byte-identically to before.
     */
    void commitWrite(Addr addr, std::uint64_t token);

    /** @{ Bus send helpers. */
    void sendRow(BusOp op);
    void sendCol(BusOp op);
    /** Route a Direct op toward op.dest (row first, column relay). */
    void sendDirected(BusOp op);
    BusOp makeOp(TxnType txn, std::uint16_t params, Addr addr,
                 NodeId origin) const;
    /** @} */

    bool onHomeColumn(Addr addr) const
    {
        return grid.homeColumn(addr) == col();
    }

    /** @{ Transaction initiation. */
    AccessOutcome startMiss(TxnType txn, Addr addr, std::uint64_t token,
                            CompletionCb cb);
    /** Prepare the cache slot for pending.addr; may start a victim
     *  writeback. @return true if the request can be issued now. */
    bool prepareSlot();
    /** Deliver the ALLOCATE early acknowledge once the line is staged
     *  locally (no-op unless the pending txn opted in). */
    void maybeFireEarlyAck();
    /** Issue the row-bus request for the pending transaction. */
    void issueRequest();
    /** @{ Transaction watchdog (timeout/reissue recovery path). */
    /** Schedule the next watchdog check for the current transaction. */
    void armWatchdog();
    /** Watchdog event: reissue if transaction @p seq is still stuck. */
    void watchdogFire(std::uint64_t seq, std::uint64_t arm);

    /**
     * Does this reply answer our outstanding request instance? Once
     * the watchdog can reissue requests, several of our requests may
     * be live at once and a reply may arrive after its transaction
     * completed; claiming it for a newer same-address transaction
     * would corrupt the protocol. reqSeq 0 (sync grants/acks, which
     * answer a queued waiter, not one request) matches any instance.
     */
    bool replyForPending(const BusOp &op) const
    {
        return pending.stage == Stage::Requested
            && pending.addr == op.addr
            && (op.reqSeq == 0 || op.reqSeq == pending.seq);
    }
    /** @} */
    /** Finish the pending transaction. @p extra_latency models the
     *  remote snooping-cache access time for cache-served data. */
    void complete(bool success, const LineData &data,
                  Tick extra_latency = 0);
    /** @} */

    /** @{ Row-bus protocol handlers. */
    void snoopRow(const BusOp &op, bool modified_signal);
    void rowRequest(const BusOp &op, bool modified_signal);
    void rowReply(const BusOp &op);
    void rowPurge(const BusOp &op);
    void rowUpdate(const BusOp &op);
    /** @} */

    /** @{ Column-bus protocol handlers. */
    void snoopCol(const BusOp &op, bool modified_signal);
    void colRequestRemove(const BusOp &op);
    void colReply(const BusOp &op);
    void colInsert(const BusOp &op);
    void colWritebackRemove(const BusOp &op);
    /** @} */

    /** Respond to a request while holding the line modified. */
    void serveAsOwner(const BusOp &op);
    /** Handle MLT insert (+ overflow writeback) for @p addr. */
    void tableInsert(Addr addr);
    /** Invalidate a local copy (purge broadcast or ownership loss). */
    void purgeLine(CacheLine *line);
    /** Snarf @p data into a matching invalid tag if enabled. */
    void trySnarf(const BusOp &op);

    /** @{ SYNC engine. */
    void handleSyncJoin(const BusOp &op, CacheLine *line);
    void handleSyncDirect(const BusOp &op);
    void syncGrantTo(NodeId next, CacheLine *line);
    void syncAbortTo(NodeId next, Addr addr);
    void syncRestart();
    /** Reverse-route a dataless ACK/FAIL reply toward @p org. */
    void routeReplyToward(NodeId org, BusOp op);
    /** @{ Degraded-mode reply routing (docs/ROBUSTNESS.md). A
     *  cross-grid reply normally hops through one relay node; when a
     *  fail-stop retired that relay, the sender flips to the other
     *  diagonal — relayed at (toward's row, my column) instead of
     *  (my row, toward's column), or vice versa. Both predicates are
     *  free while no node has been marked unreachable. */
    bool rowRelayDead(NodeId toward) const;
    bool colRelayDead(NodeId toward) const;
    /** @} */
    /** Finish (or abandon) an in-flight lock hand-off for @p addr. */
    void finishHandoff(Addr addr);
    /** A data-carrying reply addressed to us found no matching
     *  pending transaction (stale chain state, or a duplicate request
     *  created by fault injection / a watchdog reissue racing the
     *  original). Never drop the line: push it back to memory,
     *  unlocked, and clear any table entry just installed. */
    void parkUnclaimedReply(const BusOp &op, bool entry_inserted);
    /** True if a hand-off REMOVE for @p addr is still in flight. */
    bool handoffPending(Addr addr) const;
    /** @} */

    /** Should this (request) op be dropped by fault injection? */
    bool maybeDrop(const BusOp &op);

    std::string name;
    EventQueue &eq;
    const GridMap &grid;
    NodeId _id;
    ControllerParams params;

    /**
     * @{ Snoop fast-reject hot path. Port::snoopRejects runs once per
     * (bus op, attached agent) — the hottest code in the simulator —
     * and decides from exactly these members (plus params/_id/grid
     * above). They are declared together so one rejection reads a few
     * *adjacent* cache lines of this object instead of scattered
     * ones; PresenceFilter keeps its query bitmap as its first field
     * for the same reason.
     */
    Counter statFilterHits;
    Counter statFilterRejects;
    /** Consecutive bounce relaunches performed on behalf of each
     *  (originator, addr); reset whenever the originator itself sends
     *  a fresh request through us. See ControllerParams::maxRelaunches.
     *  A flat table: snoopRejects probes it on every row request. */
    FlatMap<std::pair<NodeId, Addr>, unsigned> relaunchCounts;
    /** Counting summary of cache tags + MLT entries, consulted by
     *  Port::snoopRejects; kept in sync by the two structures. */
    PresenceFilter presence;
    /** @} */

    Random rng;

    Port rowPort;
    Port colPort;
    Bus *rowBus = nullptr;
    Bus *colBus = nullptr;
    unsigned rowSlot = 0;
    unsigned colSlot = 0;
    unsigned homeLane_ = 0;  //!< see setHomeLane()

    CacheArray cache;
    ModifiedLineTable mlt;
    Pending pending;
    std::uint64_t txnSeq = 0;  //!< sequence source for Pending::seq

    /** In-flight lock hand-offs: (addr, grantee); the grant is sent
     *  when our own SYNC(COLUMN, REMOVE) op is delivered. */
    std::vector<std::pair<Addr, NodeId>> handoffs;

    /** Serial of a row request this node decided to drop (fault
     *  injection); checked in the snoop pass. */
    std::uint64_t droppedSerial = 0;

    /** retire() latch; never cleared. Gates both ports and the
     *  processor-side API. */
    bool retired_ = false;
    bool draining_ = false;   //!< beginDrain(): processor side closed
    bool silenced_ = false;   //!< goSilent(): ports gated too

    Counter statHits;
    Counter statMisses;
    Counter statReissues;
    Counter statInvalidations;
    Counter statSnarfs;
    Counter statDrops;
    Counter statMltOverflow;
    Counter statVictimWbs;
    Counter statTsetFails;
    Counter statSyncGrants;
    Counter statSyncAborts;
    Counter statSyncJoins;
    Counter statWatchdogReissues;
    Distribution statWatchdogRecovery;
    Distribution statMissLatency;
    /** Latency split by transaction class. */
    Distribution statReadLatency;
    Distribution statWriteLatency;
    Distribution statLockLatency;
    /** Log-bucketed latency shapes (p50/p95/p99 in dumps). */
    Histogram statLatencyHist;
    Histogram statWatchdogRecoveryHist;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_CORE_CONTROLLER_HH
