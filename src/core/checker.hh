/**
 * @file
 * Global coherence invariant checker.
 *
 * The checker taps every bus in a MulticubeSystem (attached after all
 * functional agents, so it observes post-transition state) and keeps a
 * golden per-line value history fed by every controller's commit hook.
 * After each bus operation it verifies:
 *
 *  I1  at most one cache holds the line in Modified mode;
 *  I2  a Modified holder implies the memory copy is invalid;
 *  I3  a Modified holder's token equals the golden (latest) token;
 *  I4  a valid memory line's token equals the golden token;
 *
 * and, on a sampling interval (full sweeps are O(system)):
 *
 *  I5  the modified line tables of a column are identical;
 *  I6  every MLT entry has a Modified holder in its column;
 *  I7  no line has MLT entries in two different columns.
 *
 * The paper explicitly does not guarantee complete serializability
 * (Section 4): a writer commits as soon as it owns the line, while
 * the invalidation broadcast is still purging shared copies row by
 * row, so reads may legally observe the previous value until the
 * broadcast settles. The checker therefore tracks, per line, when
 * each broadcast's row purges finish; tokenWasGoldenDuring() accepts
 * a value while it is golden and keeps accepting it until the purge
 * wave that overwrote it has fully settled.
 */

#ifndef MCUBE_CORE_CHECKER_HH
#define MCUBE_CORE_CHECKER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/bus.hh"
#include "core/system.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace mcube
{

/**
 * One recorded invariant violation, machine-readable. The fuzz
 * campaign's shrinker classifies failures by invariant and checks a
 * shrunk repro still fails *the same way*; strings are not a stable
 * enough key for that.
 */
struct ViolationRecord
{
    Tick when = 0;
    /** Invariant tag: "I1".."I7" (see file comment). */
    std::string invariant;
    Addr addr = 0;
    /** Full human-readable description (same text as report()). */
    std::string detail;
};

/** Invariant checker attached to a MulticubeSystem. */
class CoherenceChecker
{
  public:
    /**
     * @param sys System to watch. The checker installs itself on all
     * buses and takes over every controller's onCommitWrite hook.
     * @param full_check_interval Run the O(system) sweeps (I5-I7)
     * every this many bus operations (0 disables them).
     */
    explicit CoherenceChecker(MulticubeSystem &sys,
                              std::uint64_t full_check_interval = 64);

    CoherenceChecker(const CoherenceChecker &) = delete;
    CoherenceChecker &operator=(const CoherenceChecker &) = delete;

    /** Number of invariant violations recorded so far. */
    std::uint64_t violations() const { return _violations; }

    /** Human-readable description of the first few violations. */
    const std::vector<std::string> &report() const { return _report; }

    /** Structured form of the first few violations (same cap as
     *  report()). */
    const std::vector<ViolationRecord> &violationRecords() const
    {
        return _records;
    }

    /**
     * Human-readable commit history of @p addr overlapping [from, to]
     * (plus the last commit before the window, which is the value a
     * read entering the window could still observe). Used by the
     * random tester's failure messages so an oracle miss shows what
     * the line actually held.
     */
    std::string historyWindow(Addr addr, Tick from, Tick to) const;

    /** Latest committed token for @p addr (0 if never written). */
    std::uint64_t goldenToken(Addr addr) const;

    /**
     * True if @p token was the golden value of @p addr at any instant
     * in [from, to]; used to validate read results under the paper's
     * relaxed ordering.
     */
    bool tokenWasGoldenDuring(Addr addr, std::uint64_t token, Tick from,
                              Tick to) const;

    /** Bus operations observed. */
    std::uint64_t opsObserved() const { return _ops; }

    /**
     * @{
     * Fail-stop reconfiguration cooperation (docs/ROBUSTNESS.md).
     * Installed/driven by the ReconfigurationManager so the invariants
     * stay meaningful within each degradation epoch and across the
     * transition.
     */

    /**
     * A dirty line owned by a killed node was lost; memory was
     * revalidated with its stale copy holding @p stale_token. Appends
     * a settled golden commit so I3/I4 compare against the value that
     * is now architecturally visible, and forgets any purge wave still
     * accounted against the line (its row ops died with the fault).
     */
    void onLineLost(Addr addr, std::uint64_t stale_token);

    /**
     * An epoch cutover ran: drop lenient-sweep suspects accumulated
     * against the pre-transition topology (their repair window ended
     * with the component, not with a repair op).
     */
    void onEpochTransition();

    /**
     * Predicate for addresses homed on a fail-stopped memory module.
     * All invariants are suppressed for quarantined lines: their
     * memory-side state is frozen mid-protocol and unreconstructable
     * by design.
     */
    void setQuarantined(std::function<bool(Addr)> fn)
    {
        quarantined = std::move(fn);
    }

    /**
     * A fail-stop kill executed: lines can legitimately sit in an
     * owner-less tabled state until the cutover and the (bounded)
     * phantom repairs settle, far longer than suspectWindowTicks.
     * While at least one window is open, lenient-sweep I6/I7 offences
     * keep aging but are not reported; per-op checks (I1-I4) and
     * strict sweeps stay fully armed. Windows nest per kill; the
     * manager closes each one a fixed lag after its cutover.
     */
    void beginDegradedWindow() { ++degradedDepth; }
    void endDegradedWindow()
    {
        if (degradedDepth > 0)
            --degradedDepth;
    }

    /** @} */

    /**
     * Run the full sweep (I5-I7) immediately.
     *
     * @param strict Report I6/I7 offences right away. The periodic
     * sweeps pass false: an unclaimed reply's column-wide table
     * insert is undone by a bus-ordered WRITEBACK (REMOVE), and a
     * sweep landing inside that window sees a phantom entry that is
     * already being repaired. Lenient sweeps only report an I6/I7
     * offence seen in several consecutive sweeps — a real phantom is
     * permanent, so it is still caught. Call sites that run after the
     * system drains (no in-flight repairs) should stay strict.
     */
    void fullSweep(bool strict = true);

  private:
    struct Tap : BusAgent
    {
        CoherenceChecker *checker = nullptr;
        bool isRow = false;
        void
        snoop(const BusOp &op, bool) override
        {
            EventQueue &eq = checker->sys.eventQueue();
            if (eq.parallelActive()) {
                // Checker state is global, so the observation crosses
                // from the bus's lane to the serial lane, where
                // afterOp replays in canonical cross-lane order (taps
                // attach after every functional agent, so within one
                // delivery the controllers' commit-hook deferrals
                // sort first). The invariant checks themselves do NOT
                // run there: they read live cache/memory state, which
                // by the serial phase is already the end-of-window
                // state and can be ahead of this op's canonical
                // position (e.g. a same-tick home-lane write hit
                // whose commit deferral sorts after this check).
                // afterOp therefore only queues the address and the
                // engine's barrier hook checks it once the window's
                // golden history is complete (see flushWindowChecks).
                CoherenceChecker *c = checker;
                bool row = isRow;
                eq.deferToLane(0, [c, op, row] { c->afterOp(op, row); });
            } else {
                checker->afterOp(op, isRow);
            }
        }
    };

    /** One committed value of a line. */
    struct CommitEntry
    {
        Tick when = 0;            //!< commit tick
        std::uint64_t token = 0;
        /** Tick at which the invalidation wave that installed this
         *  value finished purging (== when for non-broadcast
         *  commits; maxTick while the wave is still in flight). */
        Tick settled = 0;
    };

    void afterOp(const BusOp &op, bool is_row);
    void checkLine(Addr addr);
    /**
     * Parallel-engine barrier hook: run the per-op invariant checks
     * (and any due lenient sweep) queued by afterOp during the
     * window. The end-of-window state of a line equals its state
     * after the last op that touched it — a state the sequential
     * checker also verifies — and the golden history is complete, so
     * the checks are exact here where mid-window they would be racy
     * against later same-window commits.
     */
    void flushWindowChecks();
    void fail(const std::string &what);
    void fail(const std::string &invariant, Addr addr,
              const std::string &what);

    MulticubeSystem &sys;
    std::uint64_t fullInterval;
    std::vector<std::unique_ptr<Tap>> taps;

    /** Non-null once a ReconfigurationManager quarantined a column. */
    std::function<bool(Addr)> quarantined;

    FlatMap<Addr, std::vector<CommitEntry>> history;
    /** Row purges still outstanding per line. */
    FlatMap<Addr, unsigned> pendingPurges;
    /**
     * I6/I7 offences seen in lenient sweeps, keyed by message, with
     * the tick each was first observed at. An entry is dropped as soon
     * as one sweep does not reproduce it.
     */
    std::unordered_map<std::string, Tick> sweepSuspects;
    /**
     * How long an offence must persist (continuously, across every
     * lenient sweep in between) before it is reported. Repair windows
     * are bounded in time — a parked reply's undo WRITEBACK arrives
     * within a couple of bus latencies, plus any injected delay — so
     * the budget is expressed in ticks, not sweep counts.
     */
    static constexpr Tick suspectWindowTicks = 10'000;

    /** Open degradation windows (see beginDegradedWindow()). */
    unsigned degradedDepth = 0;

    /**
     * @{
     * Parallel-engine mode (set once at construction when the system
     * runs the window-phased engine): afterOp queues addresses here
     * and flushWindowChecks() verifies them at the window barrier.
     */
    bool barrierChecks = false;
    std::vector<Addr> windowAddrs;
    bool sweepDue = false;
    /** @} */

    std::uint64_t _ops = 0;
    std::uint64_t _violations = 0;
    std::vector<std::string> _report;
    std::vector<ViolationRecord> _records;
};

} // namespace mcube

#endif // MCUBE_CORE_CHECKER_HH
