#include "core/checker.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"
#include "sim/profiler.hh"

namespace mcube
{

CoherenceChecker::CoherenceChecker(MulticubeSystem &sys,
                                   std::uint64_t full_check_interval)
    : sys(sys), fullInterval(full_check_interval)
{
    const unsigned n = sys.n();
    for (unsigned i = 0; i < n; ++i) {
        auto rt = std::make_unique<Tap>();
        rt->checker = this;
        rt->isRow = true;
        sys.rowBus(i).attach(rt.get());
        taps.push_back(std::move(rt));

        auto ct = std::make_unique<Tap>();
        ct->checker = this;
        ct->isRow = false;
        sys.colBus(i).attach(ct.get());
        taps.push_back(std::move(ct));
    }

    EventQueue &eq = sys.eventQueue();
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        sys.node(id).onCommitWrite =
            [this, &eq](Addr addr, std::uint64_t token) {
                auto &h = history.ref(addr);
                // A broadcast commit's wave may still be settling;
                // mark unknown and fix up when the purge count drains.
                const unsigned *pp = pendingPurges.find(addr);
                Tick settled = (pp && *pp > 0) ? maxTick : eq.now();
                h.push_back({eq.now(), token, settled});
            };
    }

    if (ParallelEngine *eng = sys.parallelEngine()) {
        // Under the window-phased engine the per-op checks read live
        // global state, which is only consistent with the canonical
        // golden history at window barriers (see Tap::snoop).
        barrierChecks = true;
        eng->addBarrierHook([this] { flushWindowChecks(); });
    }
}

std::uint64_t
CoherenceChecker::goldenToken(Addr addr) const
{
    const std::vector<CommitEntry> *h = history.find(addr);
    if (!h || h->empty())
        return 0;
    return h->back().token;
}

bool
CoherenceChecker::tokenWasGoldenDuring(Addr addr, std::uint64_t token,
                                       Tick from, Tick to) const
{
    const std::vector<CommitEntry> *hp = history.find(addr);

    // A value v_i is golden over [when_i, when_{i+1}) but copies of it
    // may legally be observed until the invalidation wave installing
    // v_{i+1} settles (Section 4: no complete serializability).
    // Model: v_i acceptable over [when_i, settled_{i+1}].
    if (!hp || hp->empty())
        return token == 0;

    const auto &h = *hp;
    if (token == 0) {
        Tick end = h.front().settled;
        if (from <= end)
            return true;
    }
    for (std::size_t i = 0; i < h.size(); ++i) {
        if (h[i].token != token)
            continue;
        Tick start = h[i].when;
        Tick end = i + 1 < h.size() ? h[i + 1].settled : maxTick;
        if (start <= to && from <= end)
            return true;
    }
    return false;
}

void
CoherenceChecker::fail(const std::string &what)
{
    // Tag is the "I<n>" prefix every violation message carries; the
    // sweep offences don't thread their address through, so 0 here.
    auto colon = what.find(':');
    fail(colon == std::string::npos ? std::string("?")
                                    : what.substr(0, colon),
         0, what);
}

void
CoherenceChecker::fail(const std::string &invariant, Addr addr,
                       const std::string &what)
{
    ++_violations;
    if (_report.size() < 32) {
        std::ostringstream oss;
        oss << sys.eventQueue().now() << ": " << what;
        _report.push_back(oss.str());
        _records.push_back(
            {sys.eventQueue().now(), invariant, addr, what});
    }
    MCUBE_LOG(LogCat::Check, sys.eventQueue().now(),
              "VIOLATION: " << what);
}

std::string
CoherenceChecker::historyWindow(Addr addr, Tick from, Tick to) const
{
    std::ostringstream oss;
    oss << "history of line " << addr << " over [" << from << ", "
        << to << "]:";
    const std::vector<CommitEntry> *hp = history.find(addr);
    if (!hp || hp->empty())
        return oss.str() + " (never written; golden token is 0)";

    const auto &h = *hp;
    bool any = false;
    for (std::size_t i = 0; i < h.size(); ++i) {
        // Include the last commit before the window too: its value is
        // still legally observable while the next wave settles.
        Tick visible_until = i + 1 < h.size() ? h[i + 1].settled
                                              : maxTick;
        if (visible_until < from || h[i].when > to)
            continue;
        any = true;
        oss << " tok=" << h[i].token << "@" << h[i].when;
        if (h[i].settled == maxTick)
            oss << "(unsettled)";
        else if (h[i].settled != h[i].when)
            oss << "(settled@" << h[i].settled << ")";
    }
    if (!any)
        oss << " (no overlapping commits; " << h.size()
            << " total, latest tok=" << h.back().token << "@"
            << h.back().when << ")";
    return oss.str();
}

void
CoherenceChecker::afterOp(const BusOp &op, bool is_row)
{
    MCUBE_PROF_SCOPE(profScope, ProfKind::Checker, 0, {});
    ++_ops;

    bool is_write_txn = op.txn == TxnType::ReadMod
                     || op.txn == TxnType::Allocate
                     || op.txn == TxnType::Tset
                     || op.txn == TxnType::Sync;
    if (is_write_txn && op.is(op::Purge) && !op.is(op::Direct)) {
        if (!is_row && op.is(op::Reply)) {
            // Memory launched an invalidation broadcast: one row op
            // per home-column controller follows.
            pendingPurges.ref(op.addr) += sys.n();
            // If the originator was on the home column, its commit
            // hook already ran during this delivery (controllers
            // snoop before the checker tap) and believed no wave was
            // pending; reopen it.
            std::vector<CommitEntry> *hit = history.find(op.addr);
            if (hit && !hit->empty()
                && hit->back().when == sys.eventQueue().now()) {
                hit->back().settled = maxTick;
            }
        } else if (is_row) {
            unsigned *pp = pendingPurges.find(op.addr);
            if (pp && *pp > 0 && --*pp == 0) {
                // Wave settled: stamp the commit it installed. (A
                // broadcast with no commit yet — org fills later on
                // its own column — has nothing to stamp; the commit
                // hook saw pendingPurges > 0 and marked itself
                // unsettled.)
                std::vector<CommitEntry> *hit = history.find(op.addr);
                if (hit && !hit->empty()
                    && hit->back().settled == maxTick) {
                    hit->back().settled = sys.eventQueue().now();
                }
            }
        }
    }

    if (barrierChecks) {
        // Check at the window barrier, once every same-window commit
        // (possibly canonically later than this op) has landed in the
        // golden history the checks compare against.
        windowAddrs.push_back(op.addr);
        if (fullInterval && _ops % fullInterval == 0)
            sweepDue = true;
        return;
    }
    checkLine(op.addr);
    if (fullInterval && _ops % fullInterval == 0)
        fullSweep(false);
}

void
CoherenceChecker::flushWindowChecks()
{
    if (!windowAddrs.empty()) {
        // Dedup: one end-of-window check per distinct line covers
        // every op on it this window (the final state is the only one
        // observable here).
        std::sort(windowAddrs.begin(), windowAddrs.end());
        windowAddrs.erase(
            std::unique(windowAddrs.begin(), windowAddrs.end()),
            windowAddrs.end());
        for (Addr addr : windowAddrs)
            checkLine(addr);
        windowAddrs.clear();
    }
    if (sweepDue) {
        sweepDue = false;
        fullSweep(false);
    }
}

void
CoherenceChecker::onLineLost(Addr addr, std::uint64_t stale_token)
{
    history.ref(addr).push_back({sys.eventQueue().now(), stale_token,
                                 sys.eventQueue().now()});
    pendingPurges.erase(addr);
}

void
CoherenceChecker::onEpochTransition()
{
    sweepSuspects.clear();
}

void
CoherenceChecker::checkLine(Addr addr)
{
    const GridMap &grid = sys.gridMap();

    if (quarantined && quarantined(addr))
        return;

    unsigned modified_holders = 0;
    NodeId holder = invalidNode;
    for (NodeId id = 0; id < sys.numNodes(); ++id) {
        if (sys.node(id).modeOf(addr) == Mode::Modified) {
            ++modified_holders;
            holder = id;
        }
    }

    if (modified_holders > 1) {
        std::ostringstream oss;
        oss << "I1: line " << addr << " has " << modified_holders
            << " modified holders";
        fail("I1", addr, oss.str());
    }

    MemoryModule &mem = sys.memory(grid.homeColumn(addr));
    bool mem_valid = mem.lineValid(addr);

    if (modified_holders >= 1 && mem_valid) {
        std::ostringstream oss;
        oss << "I2: line " << addr << " modified at node " << holder
            << " but memory copy is valid";
        fail("I2", addr, oss.str());
    }

    std::uint64_t golden = goldenToken(addr);
    if (modified_holders == 1) {
        std::uint64_t tok = sys.node(holder).dataOf(addr).token;
        if (tok != golden) {
            std::ostringstream oss;
            oss << "I3: line " << addr << " holder " << holder
                << " token " << tok << " != golden " << golden;
            fail("I3", addr, oss.str());
        }
    }

    if (mem_valid) {
        std::uint64_t tok = mem.lineData(addr).token;
        if (tok != golden) {
            std::ostringstream oss;
            oss << "I4: line " << addr << " memory token " << tok
                << " != golden " << golden;
            fail("I4", addr, oss.str());
        }
    }
}

void
CoherenceChecker::fullSweep(bool strict)
{
    MCUBE_PROF_SCOPE(profScope, ProfKind::Checker, 1, {});
    const unsigned n = sys.n();

    // I5: MLTs identical within each column. Inserts and removes are
    // column-wide broadcasts delivered atomically, so a column's
    // tables never diverge even transiently — always strict. Retired
    // nodes froze their copy at the kill tick and are exempt; the
    // first live row of each column is the reference (a fully dead
    // column has no live table to check).
    std::vector<unsigned> ref_row(n, n);
    for (unsigned c = 0; c < n; ++c) {
        for (unsigned r = 0; r < n; ++r) {
            if (!sys.node(r, c).retired()) {
                ref_row[c] = r;
                break;
            }
        }
        if (ref_row[c] == n)
            continue;
        const ModifiedLineTable &ref = sys.node(ref_row[c], c).table();
        for (unsigned r = ref_row[c] + 1; r < n; ++r) {
            if (sys.node(r, c).retired())
                continue;
            if (!sys.node(r, c).table().identicalTo(ref)) {
                std::ostringstream oss;
                oss << "I5: MLT mismatch in column " << c << " (row "
                    << r << " vs row " << ref_row[c] << ")";
                fail(oss.str());
            }
        }
    }

    // I6/I7: every entry has a modified holder in its column, and no
    // line is tabled in two columns. A lenient sweep defers these: a
    // reply refused by its originator leaves a phantom entry until
    // the undo WRITEBACK (REMOVE) is delivered, and the sweep may run
    // inside that window. Offences are only reported once they have
    // persisted across suspectThreshold consecutive sweeps.
    std::vector<std::string> offences;
    std::unordered_map<Addr, unsigned> entry_col;
    for (unsigned c = 0; c < n; ++c) {
        if (ref_row[c] == n)
            continue;  // fully dead column: tables are frozen
        sys.node(ref_row[c], c).table().forEach([&](Addr addr) {
            if (quarantined && quarantined(addr))
                return;
            auto [it, fresh] = entry_col.emplace(addr, c);
            if (!fresh && it->second != c) {
                std::ostringstream oss;
                oss << "I7: line " << addr << " tabled in columns "
                    << it->second << " and " << c;
                offences.push_back(oss.str());
            }
            bool found = false;
            for (unsigned r = 0; r < n; ++r) {
                if (sys.node(r, c).modeOf(addr) == Mode::Modified) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::ostringstream oss;
                oss << "I6: line " << addr << " tabled in column " << c
                    << " with no modified holder there";
                offences.push_back(oss.str());
            }
        });
    }

    if (strict) {
        for (const auto &o : offences)
            fail(o);
        return;
    }

    const Tick now = sys.eventQueue().now();
    std::unordered_map<std::string, Tick> next;
    for (const auto &o : offences) {
        auto it = sweepSuspects.find(o);
        Tick first = it == sweepSuspects.end() ? now : it->second;
        if (degradedDepth == 0 && now - first >= suspectWindowTicks) {
            fail(o + " (persisted for " + std::to_string(now - first)
                 + " ticks)");
            first = now;  // re-report once per window, not per op
        }
        next[o] = first;
    }
    sweepSuspects = std::move(next);
}

} // namespace mcube
