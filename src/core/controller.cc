#include "core/controller.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "sim/log.hh"
#include "sim/profiler.hh"
#include "trace/trace_event.hh"

namespace mcube
{

SnoopController::SnoopController(std::string name, EventQueue &eq,
                                 const GridMap &grid, NodeId id,
                                 const ControllerParams &params)
    : name(std::move(name)), eq(eq), grid(grid), _id(id), params(params),
      rng(params.seed, id + 1), cache(params.cache), mlt(params.mlt),
      stats(this->name)
{
    rowPort.owner = this;
    rowPort.isRow = true;
    colPort.owner = this;
    colPort.isRow = false;

    // One shared presence summary covers both address sources the
    // snoop handlers consult; the counting filter absorbs overlap.
    cache.setFilter(&presence);
    mlt.setFilter(&presence);

    stats.addCounter("hits", statHits, "snooping cache hits");
    stats.addCounter("misses", statMisses, "transactions issued");
    stats.addCounter("reissues", statReissues,
                     "requests reissued after a lost race or bounce");
    stats.addCounter("invalidations", statInvalidations,
                     "local copies purged by remote write misses");
    stats.addCounter("snarfs", statSnarfs, "lines snarfed in passing");
    stats.addCounter("drops", statDrops,
                     "row requests discarded by fault injection");
    stats.addCounter("mlt_overflows", statMltOverflow,
                     "modified line table overflow writebacks");
    stats.addCounter("victim_wbs", statVictimWbs,
                     "modified victims written back on replacement");
    stats.addCounter("tset_fails", statTsetFails,
                     "remote test-and-set failures observed");
    stats.addCounter("sync_grants", statSyncGrants,
                     "queue-lock grants received");
    stats.addCounter("sync_aborts", statSyncAborts,
                     "queue-lock chain aborts received");
    stats.addCounter("sync_joins", statSyncJoins,
                     "waiters appended to our chain link");
    stats.addCounter("watchdog_reissues", statWatchdogReissues,
                     "requests reissued by the transaction watchdog");
    stats.addCounter("filter_hits", statFilterHits,
                     "snoops delivered past the presence filter");
    stats.addCounter("filter_rejects", statFilterRejects,
                     "snoops skipped by the fast-reject filter");
    stats.addDistribution("watchdog_recovery_latency",
                          statWatchdogRecovery,
                          "issue-to-completion ticks of transactions "
                          "recovered by the watchdog");
    stats.addDistribution("miss_latency", statMissLatency,
                          "issue-to-completion ticks");
    stats.addDistribution("read_latency", statReadLatency,
                          "READ transaction latency");
    stats.addDistribution("write_latency", statWriteLatency,
                          "READ-MOD / ALLOCATE transaction latency");
    stats.addDistribution("lock_latency", statLockLatency,
                          "TSET / SYNC transaction latency");
    stats.addHistogram("latency_hist", statLatencyHist,
                       "issue-to-completion latency distribution");
    stats.addHistogram("watchdog_recovery_hist",
                       statWatchdogRecoveryHist,
                       "latency distribution of watchdog-recovered "
                       "transactions");
}

void
SnoopController::connect(Bus &row_bus, Bus &col_bus)
{
    assert(!rowBus && !colBus);
    rowBus = &row_bus;
    colBus = &col_bus;
    rowSlot = rowBus->attach(&rowPort);
    colSlot = colBus->attach(&colPort);
    // The row-0 copy of each column's MLT is the canonical one for
    // tracing (all copies mutate identically).
    mlt.setTraceContext(&eq, _id, row() == 0);
}

Mode
SnoopController::modeOf(Addr addr) const
{
    const CacheLine *l = cache.find(addr);
    return l ? l->mode : Mode::Invalid;
}

LineData
SnoopController::dataOf(Addr addr) const
{
    const CacheLine *l = cache.find(addr);
    return l ? l->data : LineData{};
}

void
SnoopController::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

std::string
SnoopController::pendingInfo() const
{
    if (pending.stage == Stage::Idle)
        return "";
    std::ostringstream oss;
    oss << name << ": "
        << toString(makeOp(pending.txn, 0, pending.addr, _id))
        << (pending.stage == Stage::WbVictim ? " [wb-victim]"
                                             : " [requested]");
    if (pending.txn == TxnType::Sync) {
        oss << " queued=" << pending.queuedInChain
            << " purged=" << pending.purged << " next=";
        if (pending.queueNext == invalidNode)
            oss << "-";
        else
            oss << pending.queueNext;
    }
    oss << " since=" << pending.start;
    if (pending.watchdogFired)
        oss << " [wd-reissued, next-timeout=" << pending.nextTimeout
            << "]";
    return oss.str();
}

// ---------------------------------------------------------------------
// Bus send helpers
// ---------------------------------------------------------------------

BusOp
SnoopController::makeOp(TxnType txn, std::uint16_t p, Addr addr,
                        NodeId origin) const
{
    BusOp o;
    o.txn = txn;
    o.params = p;
    o.addr = addr;
    o.origin = origin;
    o.sender = _id;
    return o;
}

void
SnoopController::sendRow(BusOp op)
{
    assert(rowBus);
    if (retired_)
        return;  // dead silicon drives no wires
    op.sender = _id;
    rowBus->request(rowSlot, std::move(op));
}

void
SnoopController::sendCol(BusOp op)
{
    assert(colBus);
    if (retired_)
        return;  // dead silicon drives no wires
    op.sender = _id;
    colBus->request(colSlot, std::move(op));
}

void
SnoopController::sendDirected(BusOp op)
{
    assert(op.dest != invalidNode);
    op.params |= op::Direct;
    if (op.dest == _id) {
        // Degenerate self-send: handle immediately, no bus traffic.
        handleSyncDirect(op);
        return;
    }
    if (grid.sameColumn(_id, op.dest))
        sendCol(std::move(op));
    else if (!rowRelayDead(op.dest))
        sendRow(std::move(op));  // relayed at (my row, dest's column)
    else
        sendCol(std::move(op));  // fallback: (dest's row, my column)
}

bool
SnoopController::rowRelayDead(NodeId toward) const
{
    return !grid.reachable(
        grid.nodeAt(grid.rowOf(_id), grid.colOf(toward)));
}

bool
SnoopController::colRelayDead(NodeId toward) const
{
    return !grid.reachable(
        grid.nodeAt(grid.rowOf(toward), grid.colOf(_id)));
}

void
SnoopController::routeReplyToward(NodeId org, BusOp op)
{
    op.origin = org;
    if (grid.sameRow(_id, org))
        sendRow(std::move(op));
    else if (grid.sameColumn(_id, org))
        sendCol(std::move(op));
    else if (!rowRelayDead(org))
        sendRow(std::move(op));  // relayed at (my row, org's column)
    else
        sendCol(std::move(op));  // fallback: (org's row, my column)
}

// ---------------------------------------------------------------------
// Processor-side API
// ---------------------------------------------------------------------

AccessOutcome
SnoopController::read(Addr addr, std::uint64_t &token_out,
                      CompletionCb cb)
{
    LineData d;
    AccessOutcome out = readLine(addr, d, std::move(cb));
    if (out == AccessOutcome::Hit)
        token_out = d.token;
    return out;
}

AccessOutcome
SnoopController::readLine(Addr addr, LineData &data_out, CompletionCb cb)
{
    if (retired_ || draining_)
        return AccessOutcome::Busy;
    CacheLine *line = cache.touch(addr);
    if (line && (line->mode == Mode::Shared
                 || line->mode == Mode::Modified
                 || line->mode == Mode::AllocPending)) {
        // AllocPending: the processor reads back its own staged
        // whole-line write (early-write extension).
        data_out = line->data;
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (busy())
        return AccessOutcome::Busy;
    return startMiss(TxnType::Read, addr, 0, std::move(cb));
}

AccessOutcome
SnoopController::write(Addr addr, std::uint64_t token, CompletionCb cb)
{
    if (retired_ || draining_)
        return AccessOutcome::Busy;
    CacheLine *line = cache.touch(addr);
    if (line && line->mode == Mode::Modified) {
        // A plain store is line-granular here: it overwrites the lock
        // and link words too ("a process inadvertently writes in a
        // line it shouldn't, breaking the locking protocol"). A
        // chained waiter would otherwise never see a grant: abort it.
        if (line->data.next != invalidNode) {
            syncAbortTo(line->data.next, addr);
            line->data.next = invalidNode;
        }
        line->data.lock = 0;
        line->data.token = token;
        commitWrite(addr, token);
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (line && line->mode == Mode::AllocPending
        && pending.stage != Stage::Idle && pending.addr == addr) {
        // Early-write staging area: accumulate locally; the value
        // commits globally when the ALLOCATE completes.
        line->data.token = token;
        pending.newToken = token;
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (busy())
        return AccessOutcome::Busy;
    return startMiss(TxnType::ReadMod, addr, token, std::move(cb));
}

AccessOutcome
SnoopController::writeAllocate(Addr addr, std::uint64_t token,
                               CompletionCb cb)
{
    if (retired_ || draining_)
        return AccessOutcome::Busy;
    CacheLine *line = cache.touch(addr);
    if (line && line->mode == Mode::Modified) {
        // Whole-line store semantics, as in write().
        if (line->data.next != invalidNode) {
            syncAbortTo(line->data.next, addr);
            line->data.next = invalidNode;
        }
        line->data.lock = 0;
        line->data.token = token;
        commitWrite(addr, token);
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (line && line->mode == Mode::AllocPending
        && pending.stage != Stage::Idle && pending.addr == addr) {
        line->data.token = token;
        pending.newToken = token;
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (busy())
        return AccessOutcome::Busy;
    return startMiss(TxnType::Allocate, addr, token, std::move(cb));
}

AccessOutcome
SnoopController::testAndSet(Addr addr, bool &granted_out, CompletionCb cb)
{
    if (retired_ || draining_)
        return AccessOutcome::Busy;
    CacheLine *line = cache.touch(addr);
    if (line && line->mode == Mode::Modified) {
        // Executed locally: the line already lives here.
        if (line->data.lock == 0) {
            line->data.lock = 1;
            granted_out = true;
        } else {
            granted_out = false;
        }
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (line && line->mode == Mode::Reserved) {
        // Section 4: a reserved line fails test-and-set with no bus op.
        granted_out = false;
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (busy())
        return AccessOutcome::Busy;
    return startMiss(TxnType::Tset, addr, 0, std::move(cb));
}

AccessOutcome
SnoopController::syncAcquire(Addr addr, bool &granted_out,
                             CompletionCb cb)
{
    if (retired_ || draining_)
        return AccessOutcome::Busy;
    CacheLine *line = cache.touch(addr);
    if (line && line->mode == Mode::Modified) {
        if (line->data.lock == 0) {
            line->data.lock = 1;
            granted_out = true;
        } else {
            // We hold the line but another agent on this node holds
            // the lock; the caller retries.
            granted_out = false;
        }
        ++statHits;
        return AccessOutcome::Hit;
    }
    if (busy())
        return AccessOutcome::Busy;
    return startMiss(TxnType::Sync, addr, 0, std::move(cb));
}

bool
SnoopController::forceUnlock(Addr addr)
{
    if (retired_ || draining_)
        return false;
    CacheLine *line = cache.find(addr);
    if (!line || line->mode != Mode::Modified)
        return false;
    line->data.lock = 0;
    return true;
}

bool
SnoopController::release(Addr addr, std::uint64_t token)
{
    if (retired_ || draining_)
        return false;
    CacheLine *line = cache.find(addr);
    if (!line || line->mode != Mode::Modified)
        return false;

    line->data.token = token;
    commitWrite(addr, token);

    if (line->data.next != invalidNode) {
        // Hand the line to the next waiter. The MLT entry must leave
        // our column before the grant installs it in the grantee's
        // column, so the grant is deferred until our own REMOVE op is
        // delivered (see finishHandoff). The lock word stays set so a
        // passing test-and-set cannot sneak in between.
        NodeId next = line->data.next;
        handoffs.emplace_back(addr, next);
        sendCol(makeOp(TxnType::Sync, op::Remove, addr, _id));
        MCUBE_LOG(LogCat::Sync, eq.now(),
                  name << " release " << addr << " handoff to " << next);
    } else {
        line->data.lock = 0;
    }
    return true;
}

// ---------------------------------------------------------------------
// Fail-stop degradation API (docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------

void
SnoopController::abortPending()
{
    if (pending.stage == Stage::Idle)
        return;
    TxnResult res;
    res.success = false;
    res.aborted = true;
    res.latency = eq.now() - pending.start;
    CompletionCb cb = std::move(pending.cb);
    // Resetting Pending bumps wdArm/seq out from under any armed
    // watchdog timer, so stale timers die silently; the abort result
    // deliberately bypasses complete()'s latency sampling (an aborted
    // transaction never finished).
    pending = Pending{};
    if (cb)
        eq.scheduleToLane(homeLane_, 0, [cb = std::move(cb), res] {
            cb(res);
        });
}

void
SnoopController::retire()
{
    if (retired_)
        return;
    abortPending();
    retired_ = true;
    MCUBE_LOG(LogCat::Proto, eq.now(), name << " RETIRED (fail-stop)");
}

void
SnoopController::beginDrain()
{
    if (retired_ || draining_)
        return;
    abortPending();
    draining_ = true;
    MCUBE_LOG(LogCat::Proto, eq.now(),
              name << " DRAINING (graceful retire, processor closed)");
}

void
SnoopController::goSilent()
{
    if (retired_ || silenced_)
        return;
    beginDrain();
    silenced_ = true;
    MCUBE_LOG(LogCat::Proto, eq.now(),
              name << " SILENT (graceful retire, ports gated)");
}

void
SnoopController::retireLine(Addr addr)
{
    CacheLine *line = cache.find(addr);
    if (line && line->mode != Mode::Invalid)
        purgeLine(line);
}

void
SnoopController::dropTableEntry(Addr addr)
{
    mlt.remove(addr);
}

// ---------------------------------------------------------------------
// Transaction initiation
// ---------------------------------------------------------------------

AccessOutcome
SnoopController::startMiss(TxnType txn, Addr addr, std::uint64_t token,
                           CompletionCb cb)
{
    assert(pending.stage == Stage::Idle);
    pending.stage = Stage::WbVictim;  // provisional; prepareSlot decides
    pending.txn = txn;
    pending.addr = addr;
    pending.newToken = token;
    pending.cb = std::move(cb);
    pending.start = eq.now();
    pending.queueNext = invalidNode;
    pending.queuedInChain = false;
    pending.purged = false;
    pending.earlyAck =
        txn == TxnType::Allocate && params.allocateEarlyWrite;
    pending.ackFired = false;
    pending.seq = ++txnSeq;
    pending.nextTimeout = params.requestTimeoutTicks;
    pending.watchdogFired = false;
    pending.reissueCount = 0;
    ++statMisses;

    if (prepareSlot()) {
        maybeFireEarlyAck();
        issueRequest();
    }
    return AccessOutcome::Miss;
}

void
SnoopController::maybeFireEarlyAck()
{
    if (!pending.earlyAck || pending.ackFired)
        return;
    pending.ackFired = true;

    // Stage the whole-line write locally; the modified line table has
    // not been updated yet (the paper's extra line state).
    CacheLine *line = cache.find(pending.addr);
    assert(line);
    LineData d;
    d.token = pending.newToken;
    cache.fill(line, pending.addr, Mode::AllocPending, d);

    TxnResult res;
    res.success = true;
    res.data = d;
    res.latency = eq.now() - pending.start;
    CompletionCb cb = std::move(pending.cb);
    pending.cb = nullptr;
    if (cb)
        eq.scheduleToLane(homeLane_, 0, [cb = std::move(cb), res] {
            cb(res);
        });
}

bool
SnoopController::prepareSlot()
{
    Addr addr = pending.addr;
    CacheLine *line = cache.find(addr);
    if (line) {
        // Tag already present (shared upgrade, invalid re-fetch, or a
        // reserved sync copy) — no replacement needed.
        if (pending.txn == TxnType::Sync && line->mode == Mode::Invalid)
            cache.fill(line, addr, Mode::Reserved, LineData{});
        return true;
    }

    CacheLine *slot = cache.allocSlot(addr);
    if (slot->tagValid && slot->mode == Mode::Modified) {
        // Appendix A: reserve space with a WRITEBACK transaction and
        // wait for "continue" before issuing the request.
        if (slot->data.next != invalidNode) {
            // Evicting a queue-lock owner breaks the chain: tell the
            // next waiter to retry (degeneration, Section 4).
            syncAbortTo(slot->data.next, slot->addr);
            slot->data.next = invalidNode;
        }
        ++statVictimWbs;
        pending.wbVictimAddr = slot->addr;
        sendCol(makeOp(TxnType::WriteBack, op::Remove, slot->addr, _id));
        // pending.stage stays WbVictim; continue arrives via
        // colWritebackRemove's id-match path.
        return false;
    }

    // Clean (or reserved-foreign — never picked; see allocSlot use)
    // victim: silently replace.
    if (slot->tagValid && onPurge)
        onPurge(slot->addr);
    Mode init =
        pending.txn == TxnType::Sync ? Mode::Reserved : Mode::Invalid;
    cache.fill(slot, addr, init, LineData{});
    return true;
}

void
SnoopController::issueRequest()
{
    pending.stage = Stage::Requested;
    BusOp req = makeOp(pending.txn, op::Request, pending.addr, _id);
    req.reqSeq = pending.seq;
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::Issue,
                            TraceComp::Controller, pending.txn,
                            op::Request, _id, _id, pending.addr,
                            pending.seq, 0, 0}));
    sendRow(req);
    MCUBE_LOG(LogCat::Proto, eq.now(),
              name << " issue " << toString(makeOp(pending.txn,
                                                   op::Request,
                                                   pending.addr, _id)));
    armWatchdog();
}

// ---------------------------------------------------------------------
// Transaction watchdog
// ---------------------------------------------------------------------

void
SnoopController::armWatchdog()
{
    if (params.requestTimeoutTicks == 0)
        return;
    std::uint64_t seq = pending.seq;
    std::uint64_t arm = ++pending.wdArm;
    // The timer runs on the node's home lane: watchdogFire touches
    // only this controller and its row port, both owned by that lane.
    eq.scheduleToLane(homeLane_, pending.nextTimeout,
                      [this, seq, arm] { watchdogFire(seq, arm); });
}

void
SnoopController::watchdogFire(std::uint64_t seq, std::uint64_t arm)
{
    // The transaction this timer was armed for is gone (completed,
    // replaced by a newer one, or re-armed since): the timer dies
    // silently. An armed but never-firing watchdog makes no RNG draws
    // and sends no ops, so fault-free behaviour is untouched.
    if (pending.stage != Stage::Requested || pending.seq != seq
        || pending.wdArm != arm)
        return;

    if (pending.txn == TxnType::Sync && pending.queuedInChain) {
        // Queued waiters wait on the holder's critical section, which
        // the bus cannot bound. Go dormant rather than re-arm: every
        // op that moves a queued waiter forward (hand-off REMOVE,
        // grant, abort) is undroppable, and syncRestart re-arms us if
        // the chain is ever torn down. A perpetual re-arm here would
        // keep the event queue alive forever and break drain().
        return;
    }

    ++statWatchdogReissues;
    pending.watchdogFired = true;
    ++pending.reissueCount;
    if (onWatchdogReissue) {
        // The hook must not mutate this controller synchronously (we
        // are mid-reissue); the ReconfigurationManager only bumps
        // detection counters and schedules events from it.
        onWatchdogReissue(_id, pending.addr, pending.reissueCount);
    }
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::WatchdogReissue,
                            TraceComp::Controller, pending.txn,
                            op::Request, _id, _id, pending.addr,
                            pending.seq, 0,
                            static_cast<std::int64_t>(
                                pending.nextTimeout)}));
    MCUBE_LOG(LogCat::Proto, eq.now(),
              name << " watchdog reissue seq=" << seq << " "
                   << pendingInfo());

    if (pending.txn == TxnType::Sync) {
        // Reuse the SYNC restart path: it already aborts a stale
        // successor (cycle guard), re-reserves the local copy and
        // rejoins with backoff.
        syncRestart();
    } else {
        // Reissue the row request from scratch. The original may
        // merely be delayed, so a duplicate can now race us — the
        // stale-request and unclaimed-reply guards make that safe.
        // ALLOCATE reissues as READ-MOD: its reply carries the line,
        // so a spurious extra reply stays parkable, whereas a second
        // dataless ALLOCATE ack could strand the line nowhere.
        TxnType wire_txn = pending.txn == TxnType::Allocate
                             ? TxnType::ReadMod
                             : pending.txn;
        BusOp re = makeOp(wire_txn, op::Request, pending.addr, _id);
        re.reqSeq = pending.seq;
        sendRow(re);
    }

    // Capped exponential backoff plus jitter before the next check.
    Tick cap = params.requestTimeoutTicks
             << params.watchdogBackoffShift;
    pending.nextTimeout = std::min(pending.nextTimeout * 2, cap);
    Tick jitter = params.watchdogJitterTicks > 0
                    ? rng.below(static_cast<std::uint32_t>(
                          params.watchdogJitterTicks))
                    : 0;
    std::uint64_t armed_seq = pending.seq;
    std::uint64_t armed_arm = ++pending.wdArm;
    eq.scheduleToLane(homeLane_, pending.nextTimeout + jitter,
                      [this, armed_seq, armed_arm] {
        watchdogFire(armed_seq, armed_arm);
    });
}

void
SnoopController::complete(bool success, const LineData &data,
                          Tick extra_latency)
{
    assert(pending.stage != Stage::Idle);
    TxnResult res;
    res.success = success;
    res.data = data;
    res.latency = eq.now() + extra_latency - pending.start;
    statMissLatency.sample(static_cast<double>(res.latency));
    statLatencyHist.sample(static_cast<double>(res.latency));
    if (pending.watchdogFired) {
        statWatchdogRecovery.sample(static_cast<double>(res.latency));
        statWatchdogRecoveryHist.sample(
            static_cast<double>(res.latency));
    }
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::Complete,
                            TraceComp::Controller, pending.txn,
                            static_cast<std::uint16_t>(success ? 1 : 0),
                            _id, _id, pending.addr, pending.seq, 0,
                            static_cast<std::int64_t>(res.latency)}));
    switch (pending.txn) {
      case TxnType::Read:
        statReadLatency.sample(static_cast<double>(res.latency));
        break;
      case TxnType::ReadMod:
      case TxnType::Allocate:
        statWriteLatency.sample(static_cast<double>(res.latency));
        break;
      case TxnType::Tset:
      case TxnType::Sync:
        statLockLatency.sample(static_cast<double>(res.latency));
        break;
      case TxnType::WriteBack:
        break;
    }

    if (success
        && (pending.txn == TxnType::ReadMod
            || pending.txn == TxnType::Allocate)) {
        // Commit the store that motivated the miss. Plain stores are
        // line-granular: the lock/link words are overwritten too.
        CacheLine *line = cache.find(pending.addr);
        if (line && line->mode == Mode::Modified) {
            line->data.token = pending.newToken;
            line->data.lock = 0;
            line->data.next = invalidNode;
        }
        res.data.token = pending.newToken;
        commitWrite(pending.addr, pending.newToken);
    }

    CompletionCb cb = std::move(pending.cb);
    pending = Pending{};
    if (!cb)
        return;
    if (extra_latency == 0 && !eq.parallelActive()) {
        cb(res);
    } else {
        // Parallel engine (or a DRAM snooping-cache access delaying
        // only the processor's view of the data): run the callback on
        // the node's home lane, so per-node work — the next workload
        // issue, the next think-time timer — stays off the serial
        // lane. Anything in the callback that touches cross-node
        // shared state defers itself to lane 0 (see
        // MixWorkload/RandomTester).
        eq.scheduleToLane(homeLane_, extra_latency,
                          [cb = std::move(cb), res] { cb(res); });
    }
}

void
SnoopController::commitWrite(Addr addr, std::uint64_t token)
{
    if (!onCommitWrite)
        return;
    if (eq.parallelActive()) {
        // The hook body runs at the next window barrier under lane
        // 0's context with the committing tick preserved (deferCall
        // keeps the caller's now()), in canonical cross-lane order.
        eq.deferToLane(0, [this, addr, token] {
            onCommitWrite(addr, token);
        });
    } else {
        onCommitWrite(addr, token);
    }
}

// ---------------------------------------------------------------------
// Port adapters
// ---------------------------------------------------------------------

bool
SnoopController::Port::supplyModifiedSignal(const BusOp &op)
{
    if (owner->retired_ || owner->silenced_)
        return false;  // dead (or dying-silent) silicon asserts nothing
    if (!isRow || !op.is(op::Request) || op.is(op::Direct))
        return false;
    SnoopController &c = *owner;
    if (!c.mlt.contains(op.addr))
        return false;
    if (c.params.dropSignalProb > 0.0
        && c.rng.chance(c.params.dropSignalProb)) {
        // Robustness feature ("Timing Considerations"): the controller
        // occasionally simply discards the request. The home column
        // then routes it to memory, which bounces it, and the request
        // retries.
        c.droppedSerial = op.serial;
        ++c.statDrops;
        return false;
    }
    return true;
}

void
SnoopController::Port::snoop(const BusOp &op, bool modified_signal)
{
    // Domain is inherited from the enclosing Bus::deliver scope.
    MCUBE_PROF_SCOPE(profScope, ProfKind::CtrlSnoop,
                     static_cast<std::uint32_t>(owner->_id), {});
    if (owner->retired_ || owner->silenced_)
        return;
    if (isRow)
        owner->snoopRow(op, modified_signal);
    else
        owner->snoopCol(op, modified_signal);
}

bool
SnoopController::Port::snoopRejects(const BusOp &op)
{
    SnoopController &c = *owner;
    if (c.retired_ || c.silenced_) {
        // A retired (or silenced dying) node neither asserts the
        // modified signal nor reacts to any op, so both delivery
        // passes may always be skipped — independent of the
        // snoop-filter setting.
        (void)op;
        return true;
    }
    if (!c.params.snoopFilter)
        return false;

    // The conditions below mirror snoopRow/snoopCol case by case: an
    // op may be rejected only when the handler's every side effect is
    // gated on the address being present in the cache array or the
    // MLT — both covered by the counting presence summary. Relays and
    // table-copy mutations that fire regardless of local contents
    // (column INSERT/PURGE, same-row/column forwarding, home-column
    // routing) are structurally exempt. Note a rejected agent's
    // supplyModifiedSignal is provably false with no RNG draw: it
    // consults the RNG only after mlt.contains() succeeds.
    if (isRow) {
        if (op.is(op::Direct)) {
            // snoopRow acts only for the destination or its column.
            if (op.dest != c._id && !c.grid.sameColumn(c._id, op.dest)) {
                ++c.statFilterRejects;
                return true;
            }
            ++c.statFilterHits;
            return false;
        }
        // Originator, column-mates of the originator (relay duty) and
        // home-column nodes (memory routing duty) always listen.
        if (op.origin == c._id || c.grid.sameColumn(c._id, op.origin)
            || c.onHomeColumn(op.addr)) {
            ++c.statFilterHits;
            return false;
        }
        if (!c.relaunchCounts.empty() && op.is(op::Request)
            && op.sender == op.origin
            && !c.presence.mightContain(op.addr)) {
            // rowRequest's one side effect that does not depend on
            // local line state is resetting the relaunch budget when
            // the originator itself re-sends. When presence says the
            // handler would otherwise do nothing, perform that erase
            // here and skip it — keeping the skip decision on the
            // presence summary alone, so it cannot diverge with
            // watchdog configuration. (Skipped outright while no
            // relaunch is being tracked at all — the common case.)
            c.relaunchCounts.erase({op.origin, op.addr});
        }
    } else {
        if (op.is(op::Direct)) {
            // snoopCol acts for the destination itself — or for the
            // dest's row-mate relaying a column-first fallback route
            // (never present in a healthy grid: the only row-mate of
            // dest on a column carrying its ops is dest itself).
            if (op.dest != c._id && !c.grid.sameRow(c._id, op.dest)) {
                ++c.statFilterRejects;
                return true;
            }
            ++c.statFilterHits;
            return false;
        }
        // Column INSERTs and PURGE-carrying replies mutate (or relay
        // from) every copy in the column regardless of local state.
        if (op.is(op::Insert) || op.is(op::Purge)) {
            ++c.statFilterHits;
            return false;
        }
        // (COLUMN, REQUEST, MEMORY) is served by the memory module;
        // controllers provably take no action.
        if (op.is(op::Request) && op.is(op::Memory)) {
            ++c.statFilterRejects;
            return true;
        }
        // Originator and its row-mates handle replies/relaunches.
        if (op.origin == c._id || c.grid.sameRow(c._id, op.origin)) {
            ++c.statFilterHits;
            return false;
        }
    }

    if (c.presence.mightContain(op.addr)) {
        ++c.statFilterHits;
        return false;
    }
#ifndef NDEBUG
    // Shadow check: a false negative of the presence summary would
    // silently change simulated behaviour. The filter counts every
    // fill/evict/insert/remove, so a rejected address must be absent
    // from both structures.
    assert(!c.cache.find(op.addr) && "presence filter false negative");
    assert(!c.mlt.contains(op.addr) && "presence filter false negative");
#endif
    ++c.statFilterRejects;
    return true;
}

// ---------------------------------------------------------------------
// Row-bus handlers
// ---------------------------------------------------------------------

void
SnoopController::snoopRow(const BusOp &op, bool modified_signal)
{
    if (op.is(op::Direct)) {
        if (op.dest == _id)
            handleSyncDirect(op);
        else if (grid.sameColumn(_id, op.dest))
            sendCol(op);  // relay down the destination's column
        return;
    }
    if (op.is(op::Request))
        rowRequest(op, modified_signal);
    else if (op.is(op::Reply))
        rowReply(op);
    else if (op.is(op::Purge))
        rowPurge(op);
    else if (op.is(op::Update))
        rowUpdate(op);
}

void
SnoopController::rowRequest(const BusOp &op, bool modified_signal)
{
    Addr addr = op.addr;

    // A request sent by its own originator starts a fresh instance:
    // any relaunch budget we burned for an earlier bounce episode of
    // this (origin, addr) no longer applies.
    if (op.sender == op.origin)
        relaunchCounts.erase({op.origin, addr});

    if (mlt.contains(addr) && droppedSerial != op.serial) {
        // We asserted the modified signal: the line is modified in our
        // column — forward the request there.
        MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::MltRoute,
                                TraceComp::Controller, op.txn,
                                op.params, _id, op.origin, addr,
                                op.reqSeq, op.serial,
                                route::ToOwnerColumn}));
        BusOp fwd = op;
        fwd.params = op::Request | op::Remove;
        sendCol(fwd);
        return;
    }

    if (onHomeColumn(addr) && !modified_signal) {
        if (op.txn == TxnType::Read) {
            CacheLine *line = cache.find(addr);
            if (line && line->mode == Mode::Shared) {
                // Home-column controller supplies the data itself.
                MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::MltRoute,
                                        TraceComp::Controller, op.txn,
                                        op.params, _id, op.origin, addr,
                                        op.reqSeq, op.serial,
                                        route::HomeShared}));
                BusOp reply = op;
                reply.params = op::Reply;
                reply.hasData = true;
                reply.data = line->data;
                cache.markUsed(line);
                sendRow(reply);
                return;
            }
        }
        MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::MltRoute,
                                TraceComp::Controller, op.txn,
                                op.params, _id, op.origin, addr,
                                op.reqSeq, op.serial, route::ToMemory}));
        BusOp fwd = op;
        fwd.params = op::Request | op::Memory;
        sendCol(fwd);
    }
}

void
SnoopController::rowReply(const BusOp &op)
{
    bool mine = op.origin == _id;

    if (op.is(op::Fail)) {
        // TSET/SYNC failure notification travelling back to org.
        if (mine) {
            if (replyForPending(op)) {
                if (pending.txn == TxnType::Tset) {
                    ++statTsetFails;
                    complete(false, LineData{});
                } else if (pending.txn == TxnType::Sync) {
                    if (op.hasData || op.data.next != invalidNode) {
                        // Chain hint: walk to the indicated waiter.
                        BusOp join = makeOp(TxnType::Sync, op::Request,
                                            op.addr, _id);
                        join.dest = op.data.next;
                        join.reqSeq = pending.seq;
                        sendDirected(join);
                    } else {
                        syncRestart();
                    }
                }
            }
        } else if (grid.sameColumn(_id, op.origin)) {
            sendCol(op);
        }
        return;
    }

    if (op.is(op::Ack) && op.txn == TxnType::Sync) {
        // "You are queued" notification.
        if (mine) {
            if (replyForPending(op))
                pending.queuedInChain = true;
        } else if (grid.sameColumn(_id, op.origin)) {
            sendCol(op);
        }
        return;
    }

    switch (op.txn) {
      case TxnType::Read:
        if (mine && replyForPending(op)) {
            CacheLine *line = cache.find(op.addr);
            assert(line);
            cache.fill(line, op.addr, Mode::Shared, op.data);
            // NOPURGE marks data served straight from memory; all
            // other read replies were fetched from a snooping cache.
            complete(true, op.data,
                     op.is(op::NoPurge) ? 0 : params.accessTicks);
        } else {
            trySnarf(op);
        }
        if (op.is(op::Update) && onHomeColumn(op.addr)
            && grid.sameRow(_id, op.origin)) {
            // Home-column controller writes the line back to memory.
            // Only on org's own row (every healthy read reply's row
            // leg): on a degraded fallback leg along the *owner's* row
            // the update is org's to deliver once the reply reaches it
            // — forwarding here too would double-deliver, and a late
            // second update can stale-revalidate memory after it
            // already served a newer owner.
            BusOp upd = op;
            upd.params = op::Update | op::Memory;
            sendCol(upd);
        }
        if (!mine && op.is(op::Update) && !op.is(op::Memory)
            && grid.sameColumn(_id, op.origin)) {
            // Degraded fallback leg (docs/ROBUSTNESS.md): the owner's
            // column relay toward org was dead, so the read reply came
            // along the owner's row; forward it onto org's column.
            // Never taken in a healthy grid — a same-row serve has no
            // column-mate of org other than org itself on the bus.
            sendCol(op);
        }
        break;

      case TxnType::ReadMod:
      case TxnType::Allocate:
      case TxnType::Tset:
      case TxnType::Sync:
        if (op.is(op::Purge)) {
            // (ROW, REPLY, PURGE): broadcast leg of a write miss to an
            // unmodified line; home-column copies were purged already.
            if (mine && replyForPending(op)) {
                CacheLine *line = cache.find(op.addr);
                assert(line);
                LineData d = op.data;
                if (op.txn == TxnType::Sync)
                    d.next = pending.queueNext;
                cache.fill(line, op.addr, Mode::Modified, d);
                sendCol(makeOp(op.txn, op::Insert, op.addr, _id));
                if (op.txn == TxnType::Sync)
                    ++statSyncGrants;
                complete(true, d);
            } else {
                // Allocate acks are dataless on the wire, but they
                // still transfer ownership: the server invalidated its
                // copy when it sent the ack. An unclaimed ack must be
                // parked too or the line is lost; op.data carries the
                // pre-serve contents for exactly this purpose.
                if (mine
                    && (op.hasData || op.txn == TxnType::Allocate))
                    parkUnclaimedReply(op, false);
                // Appendix A exempts home-column nodes (their copies
                // were purged when the memory reply passed on the
                // column), but a home-column node may have snarfed a
                // stale copy from a reply that slipped in between, so
                // purge unconditionally — a double purge is harmless.
                CacheLine *line = cache.find(op.addr);
                if (line && (line->mode == Mode::Shared
                             || line->mode == Mode::Reserved))
                    purgeLine(line);
            }
        } else {
            // (ROW, REPLY): data (or allocate-ack / sync grant) from
            // the previous owner heading to org's column.
            if (mine && replyForPending(op)) {
                CacheLine *line = cache.find(op.addr);
                assert(line);
                LineData d = op.data;
                if (op.txn == TxnType::Allocate)
                    d = LineData{};
                if (op.txn == TxnType::Sync)
                    d.next = pending.queueNext;
                cache.fill(line, op.addr, Mode::Modified, d);
                sendCol(makeOp(op.txn, op::Insert, op.addr, _id));
                if (op.txn == TxnType::Sync)
                    ++statSyncGrants;
                complete(true, d, params.accessTicks);
            } else if (mine
                       && (op.hasData || op.txn == TxnType::Allocate)) {
                // Dataless allocate acks transfer ownership too; see
                // the purge branch above.
                parkUnclaimedReply(op, false);
            } else if (grid.sameColumn(_id, op.origin)) {
                BusOp fwd = op;
                fwd.params = op::Reply | op::Insert;
                if (op.txn == TxnType::Allocate)
                    fwd.params |= op::Ack;
                sendCol(fwd);
            }
        }
        break;

      case TxnType::WriteBack:
        break;  // WRITEBACK has no row replies
    }
}

void
SnoopController::rowPurge(const BusOp &op)
{
    // (ROW, PURGE): purge all shared copies. Appendix A lets
    // home-column nodes skip this (their copies went away with the
    // column reply), but snarfing can re-install a copy in the gap
    // between the column purge and this row purge, so purge
    // unconditionally.
    CacheLine *line = cache.find(op.addr);
    if (line
        && (line->mode == Mode::Shared || line->mode == Mode::Reserved))
        purgeLine(line);
}

void
SnoopController::rowUpdate(const BusOp &op)
{
    // (ROW, UPDATE): forward the memory update to the home column.
    if (onHomeColumn(op.addr)) {
        BusOp upd = op;
        upd.params = op::Update | op::Memory;
        sendCol(upd);
    }
}

// ---------------------------------------------------------------------
// Column-bus handlers
// ---------------------------------------------------------------------

void
SnoopController::snoopCol(const BusOp &op, bool modified_signal)
{
    (void)modified_signal;
    if (op.is(op::Direct)) {
        if (op.dest == _id) {
            handleSyncDirect(op);
        } else if (grid.sameRow(_id, op.dest)) {
            // Degraded fallback leg (docs/ROBUSTNESS.md): a directed
            // op routed column-first because the sender's row relay
            // was dead; the dest's row-mate forwards it on.
            sendRow(op);
        }
        return;
    }
    if (op.is(op::Request) && op.is(op::Remove)) {
        colRequestRemove(op);
    } else if (op.is(op::Request) && op.is(op::Memory)) {
        // Served by the memory module; controllers take no action.
    } else if (op.is(op::Reply)) {
        colReply(op);
    } else if (op.is(op::Insert)) {
        colInsert(op);
    } else if (op.is(op::Remove)) {
        colWritebackRemove(op);
    }
}

void
SnoopController::colRequestRemove(const BusOp &op)
{
    bool removed = mlt.remove(op.addr);

    if (!removed) {
        // Lost a race (or a stale bounce): the controller on the
        // originator's row relaunches the request.
        if (grid.sameRow(_id, op.origin)) {
            if (op.origin == _id && !replyForPending(op)) {
                // Our own bounced request, but the transaction that
                // sent it is gone (a watchdog reissue already
                // completed it): let the stale loop die instead of
                // relaunching it forever.
                return;
            }
            if (params.requestTimeoutTicks > 0 && op.origin != _id) {
                // We relaunch on behalf of a row-mate whose pending
                // state we cannot see. A stale instance would loop
                // through memory indefinitely, so cap the relaunch
                // chain; a live originator's watchdog restarts with a
                // fresh request (which resets this count).
                unsigned &cnt = relaunchCounts.ref({op.origin, op.addr});
                if (++cnt > params.maxRelaunches)
                    return;
            }
            ++statReissues;
            MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::Relaunch,
                                    TraceComp::Controller, op.txn,
                                    op.params, _id, op.origin, op.addr,
                                    op.reqSeq, op.serial, 0}));
            BusOp re = op;
            re.params = op::Request;
            re.hasData = false;
            sendRow(re);
        }
        return;
    }

    CacheLine *line = cache.find(op.addr);
    if (line && line->mode == Mode::Modified)
        serveAsOwner(op);
}

void
SnoopController::serveAsOwner(const BusOp &op)
{
    if (op.origin == _id) {
        // A stale duplicate of our own request caught up with us after
        // we already became the owner. Serving it would purge the only
        // copy of the line (a READ-MOD self-serve replies into the
        // void), so refuse and reinstate the table entry the REMOVE
        // side effect just stripped from our column.
        if (!handoffPending(op.addr))
            sendCol(makeOp(op.txn, op::Insert, op.addr, _id));
        return;
    }

    CacheLine *line = cache.find(op.addr);
    assert(line && line->mode == Mode::Modified);
    NodeId org = op.origin;
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::SnoopServe,
                            TraceComp::Controller, op.txn, op.params,
                            _id, org, op.addr, op.reqSeq, op.serial,
                            static_cast<std::int64_t>(
                                line->data.lock)}));

    switch (op.txn) {
      case TxnType::Read: {
        // Supply the data, demote to shared; memory gets updated along
        // the reply path. A read demotion also breaks any queue-lock
        // chain rooted here (the shared copy can no longer be handed
        // off exclusively), so abort the waiter.
        if (line->data.next != invalidNode) {
            syncAbortTo(line->data.next, op.addr);
            line->data.next = invalidNode;
        }
        BusOp reply = op;
        reply.hasData = true;
        reply.data = line->data;
        line->mode = Mode::Shared;
        if (onHomeColumn(op.addr)) {
            reply.params = op::Reply | op::Update | op::Memory;
            sendCol(reply);
        } else if (grid.sameRow(_id, org)) {
            reply.params = op::Reply | op::Update;
            sendRow(reply);
        } else if (!colRelayDead(org)) {
            reply.params = op::Reply | op::Update;
            sendCol(reply);
        } else {
            // Fallback: relayed at (my row, org's column) instead.
            reply.params = op::Reply | op::Update;
            sendRow(reply);
        }
        break;
      }

      case TxnType::ReadMod:
      case TxnType::Allocate: {
        if (line->data.next != invalidNode) {
            // Foreign steal of a queue-lock owner: degenerate.
            syncAbortTo(line->data.next, op.addr);
            line->data.next = invalidNode;
        }
        BusOp reply = op;
        if (op.txn == TxnType::Allocate) {
            reply.hasData = false;
            reply.params = op::Reply | op::Ack;
        } else {
            reply.hasData = true;
            reply.params = op::Reply;
        }
        reply.data = line->data;
        purgeLine(line);
        if (grid.sameColumn(_id, org)) {
            reply.params |= op::Insert;
            sendCol(reply);
        } else if (!rowRelayDead(org)) {
            sendRow(reply);
        } else {
            sendCol(reply);  // fallback: (org's row, my column)
        }
        break;
      }

      case TxnType::Tset:
      case TxnType::Sync: {
        if (line->data.lock == 0) {
            // Lock free: the line (with the lock now set) moves to the
            // requester exactly like a READ-MOD.
            BusOp reply = op;
            reply.hasData = true;
            reply.data = line->data;
            reply.data.lock = 1;
            reply.data.next = invalidNode;
            purgeLine(line);
            if (grid.sameColumn(_id, org)) {
                reply.params = op::Reply | op::Insert;
                sendCol(reply);
            } else {
                reply.params = op::Reply;
                if (!rowRelayDead(org))
                    sendRow(reply);
                else
                    sendCol(reply);  // fallback: (org's row, my column)
            }
        } else {
            // Lock held. The REMOVE side effect already cleared the
            // table entry, so reinstate it on our column first —
            // unless a hand-off REMOVE for this line is already in
            // our queue: the reinsert would then land after the grant
            // and leave a table entry with no owner.
            if (!handoffPending(op.addr))
                sendCol(makeOp(op.txn, op::Insert, op.addr, _id));
            if (op.txn == TxnType::Tset) {
                BusOp fail = op;
                fail.params = op::Reply | op::Fail;
                fail.hasData = false;
                routeReplyToward(org, fail);
            } else {
                handleSyncJoin(op, line);
            }
        }
        break;
      }

      case TxnType::WriteBack:
        assert(false);
        break;
    }
}

void
SnoopController::colReply(const BusOp &op)
{
    bool mine = op.origin == _id;

    if (op.is(op::Fail)) {
        if (mine) {
            if (replyForPending(op)) {
                if (pending.txn == TxnType::Tset) {
                    ++statTsetFails;
                    complete(false, LineData{});
                } else if (pending.txn == TxnType::Sync) {
                    if (op.data.next != invalidNode) {
                        BusOp join = makeOp(TxnType::Sync, op::Request,
                                            op.addr, _id);
                        join.dest = op.data.next;
                        join.reqSeq = pending.seq;
                        sendDirected(join);
                    } else {
                        syncRestart();
                    }
                }
            }
        } else if (grid.sameRow(_id, op.origin)) {
            sendRow(op);
        }
        return;
    }

    if (op.is(op::Ack) && op.txn == TxnType::Sync && !op.is(op::Insert)) {
        if (mine) {
            if (replyForPending(op))
                pending.queuedInChain = true;
        } else if (grid.sameRow(_id, op.origin)) {
            sendRow(op);
        }
        return;
    }

    switch (op.txn) {
      case TxnType::Read:
        if (op.is(op::Memory) && op.is(op::Update)) {
            // (COLUMN, REPLY, UPDATE, MEMORY): owner was on the home
            // column; memory absorbs the data in its own snoop.
            if (mine && replyForPending(op)) {
                CacheLine *line = cache.find(op.addr);
                assert(line);
                cache.fill(line, op.addr, Mode::Shared, op.data);
                complete(true, op.data, params.accessTicks);
            } else if (grid.sameRow(_id, op.origin)) {
                BusOp fwd = op;
                fwd.params = op::Reply;
                sendRow(fwd);
            } else {
                // No snarfing from column replies: a row purge may
                // already have passed (see trySnarf).
            }
        } else if (op.is(op::Update)) {
            // (COLUMN, REPLY, UPDATE): owner's column, org elsewhere
            // (or on this column).
            if (mine && replyForPending(op)) {
                CacheLine *line = cache.find(op.addr);
                assert(line);
                cache.fill(line, op.addr, Mode::Shared, op.data);
                complete(true, op.data, params.accessTicks);
                // Route the memory update via our row.
                BusOp upd = op;
                upd.params = op::Update;
                upd.origin = _id;
                sendRow(upd);
            } else if (grid.sameRow(_id, op.origin)) {
                BusOp fwd = op;
                fwd.params = op::Reply | op::Update;
                sendRow(fwd);
            } else {
                // No snarfing from column replies: a row purge may
                // already have passed (see trySnarf).
            }
        } else if (op.is(op::NoPurge)) {
            // (COLUMN, REPLY, NOPURGE): data straight from memory.
            if (mine && replyForPending(op)) {
                CacheLine *line = cache.find(op.addr);
                assert(line);
                cache.fill(line, op.addr, Mode::Shared, op.data);
                complete(true, op.data);
            } else if (grid.sameRow(_id, op.origin)) {
                BusOp fwd = op;
                fwd.params = op::Reply | op::NoPurge;
                sendRow(fwd);
            } else {
                // No snarfing from column replies: a row purge may
                // already have passed (see trySnarf).
            }
        }
        break;

      case TxnType::ReadMod:
      case TxnType::Allocate:
      case TxnType::Tset:
      case TxnType::Sync:
        if (op.is(op::Purge)) {
            // (COLUMN, REPLY, PURGE) from memory on the home column:
            // every controller purges and relays a purge onto its row.
            if (mine && replyForPending(op)) {
                CacheLine *line = cache.find(op.addr);
                assert(line);
                LineData d = op.data;
                if (op.txn == TxnType::Allocate)
                    d = LineData{};
                if (op.txn == TxnType::Sync)
                    d.next = pending.queueNext;
                cache.fill(line, op.addr, Mode::Modified, d);
                sendCol(makeOp(op.txn, op::Insert, op.addr, _id));
                sendRow(makeOp(op.txn, op::Purge, op.addr, _id));
                if (op.txn == TxnType::Sync)
                    ++statSyncGrants;
                complete(true, d);
            } else {
                if (mine
                    && (op.hasData || op.txn == TxnType::Allocate)) {
                    // Memory handed the line to a transaction that no
                    // longer exists: the contents must survive. This
                    // includes dataless allocate acks — op.data holds
                    // the pre-serve line for recovery.
                    parkUnclaimedReply(op, false);
                }
                CacheLine *line = cache.find(op.addr);
                if (line && (line->mode == Mode::Shared
                             || line->mode == Mode::Reserved))
                    purgeLine(line);
                if (grid.sameRow(_id, op.origin)) {
                    BusOp fwd = op;
                    fwd.params = op::Reply | op::Purge;
                    sendRow(fwd);
                } else {
                    BusOp fwd = op;
                    fwd.params = op::Purge;
                    fwd.hasData = false;
                    sendRow(fwd);
                }
            }
        } else if (op.is(op::Insert)) {
            // (COLUMN, REPLY, INSERT): grant arriving on org's column;
            // every controller in the column inserts the table entry.
            tableInsert(op.addr);
            if (mine && replyForPending(op)) {
                CacheLine *line = cache.find(op.addr);
                assert(line);
                LineData d = op.data;
                if (op.txn == TxnType::Allocate)
                    d = LineData{};
                if (op.txn == TxnType::Sync)
                    d.next = pending.queueNext;
                cache.fill(line, op.addr, Mode::Modified, d);
                if (op.txn == TxnType::Sync)
                    ++statSyncGrants;
                complete(true, d, params.accessTicks);
            } else if (mine
                       && (op.hasData || op.txn == TxnType::Allocate)) {
                parkUnclaimedReply(op, true);
            }
        } else if (!mine && grid.sameRow(_id, op.origin)) {
            // Degraded fallback leg (docs/ROBUSTNESS.md): the owner's
            // row relay toward org was dead, so the grant came up the
            // owner's column as a plain reply; forward it onto org's
            // row (org installs and broadcasts its own INSERT). Never
            // taken in a healthy grid — cross-column grants always
            // travel row-first there.
            sendRow(op);
        }
        break;

      case TxnType::WriteBack:
        break;
    }
}

void
SnoopController::colInsert(const BusOp &op)
{
    tableInsert(op.addr);
}

void
SnoopController::colWritebackRemove(const BusOp &op)
{
    bool removed = mlt.remove(op.addr);

    if (op.txn == TxnType::Sync) {
        // Our queue-lock hand-off REMOVE: time to send the grant.
        if (op.origin == _id)
            finishHandoff(op.addr);
        return;
    }

    if (op.origin != _id)
        return;

    // WRITEBACK (COLUMN, REMOVE), id match. "If the remove failed then
    // some other bus operation will remove the data; in either case
    // signal the processor request to continue."
    if (removed) {
        CacheLine *line = cache.find(op.addr);
        if (line && line->mode == Mode::Modified) {
            BusOp upd = makeOp(TxnType::WriteBack, op::Update, op.addr,
                               _id);
            upd.hasData = true;
            upd.data = line->data;
            if (onHomeColumn(op.addr)) {
                upd.params = op::Update | op::Memory;
                sendCol(upd);
            } else {
                sendRow(upd);
            }
            line->mode = Mode::Shared;
        }
    } else if (cache.find(op.addr)
               && cache.find(op.addr)->mode == Mode::Modified) {
        // Remove failed but we still hold the modified copy: the entry
        // is momentarily absent because a reinstate INSERT is in
        // flight (a stale duplicate request stripped it). The paper's
        // "some other bus operation will remove the data" does not
        // hold here — evicting now would drop the only copy — so spin
        // the REMOVE until the table and the cache agree again.
        sendCol(makeOp(TxnType::WriteBack, op::Remove, op.addr, _id));
        return;
    }

    // Continue the stalled processor request (victim replacement).
    // Matching on the victim address keeps unrelated WRITEBACK REMOVEs
    // we originate (unclaimed-reply parking undo) from releasing the
    // stall early.
    if (pending.stage == Stage::WbVictim
        && op.addr == pending.wbVictimAddr) {
        CacheLine *slot = cache.allocSlot(pending.addr);
        if (slot->tagValid && onPurge)
            onPurge(slot->addr);
        Mode init = pending.txn == TxnType::Sync ? Mode::Reserved
                                                 : Mode::Invalid;
        cache.fill(slot, pending.addr, init, LineData{});
        maybeFireEarlyAck();
        issueRequest();
    }
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

void
SnoopController::tableInsert(Addr addr)
{
    std::optional<Addr> victim = mlt.insert(addr);
    if (!victim)
        return;

    ++statMltOverflow;
    CacheLine *line = cache.find(*victim);
    if (line && line->mode == Mode::Modified) {
        // We hold the overflow line: write it back and demote it.
        if (line->data.next != invalidNode) {
            syncAbortTo(line->data.next, *victim);
            line->data.next = invalidNode;
        }
        BusOp upd = makeOp(TxnType::WriteBack, op::Update, *victim, _id);
        upd.hasData = true;
        upd.data = line->data;
        if (onHomeColumn(*victim)) {
            upd.params = op::Update | op::Memory;
            sendCol(upd);
        } else {
            sendRow(upd);
        }
        line->mode = Mode::Shared;
    }
}

void
SnoopController::purgeLine(CacheLine *line)
{
    assert(line);
    if (line->mode == Mode::Reserved && pending.stage == Stage::Requested
        && pending.txn == TxnType::Sync && pending.addr == line->addr) {
        pending.purged = true;
    }
    if (line->mode == Mode::Shared || line->mode == Mode::Reserved)
        ++statInvalidations;
    line->mode = Mode::Invalid;
    if (onPurge)
        onPurge(line->addr);
}

void
SnoopController::trySnarf(const BusOp &op)
{
    if (!params.enableSnarfing || !op.hasData)
        return;
    if (op.txn != TxnType::Read || !op.is(op::Reply))
        return;
    // Only lines we recently held (tag still present, mode invalid)
    // may be snarfed, and READ replies always carry a line that is in
    // (or entering) global state unmodified.
    CacheLine *line = cache.find(op.addr);
    if (!line || line->mode != Mode::Invalid)
        return;
    cache.fill(line, op.addr, Mode::Shared, op.data);
    ++statSnarfs;
}

// ---------------------------------------------------------------------
// SYNC engine
// ---------------------------------------------------------------------

void
SnoopController::handleSyncJoin(const BusOp &op, CacheLine *line)
{
    // We own the line, the lock is held: append the requester.
    NodeId org = op.origin;
    if (org == _id) {
        // Our own stale re-request found us already owning the line;
        // nothing to queue.
        return;
    }
    if (line->data.next == org) {
        // Re-join after a spurious (stale) abort: already queued;
        // acknowledge idempotently. Never hand back a hint equal to
        // the requester — it would walk to itself.
        BusOp ack = makeOp(TxnType::Sync, op::Reply | op::Ack, op.addr,
                           org);
        routeReplyToward(org, ack);
    } else if (line->data.next == invalidNode) {
        line->data.next = org;
        ++statSyncJoins;
        BusOp ack = makeOp(TxnType::Sync, op::Reply | op::Ack, op.addr,
                           org);
        routeReplyToward(org, ack);
        MCUBE_LOG(LogCat::Sync, eq.now(),
                  name << " queued " << org << " on " << op.addr);
    } else {
        // Chain occupied: hand back a hint so the requester walks to
        // the current link.
        BusOp fail = makeOp(TxnType::Sync, op::Reply | op::Fail, op.addr,
                            org);
        fail.data.next = line->data.next;
        routeReplyToward(org, fail);
    }
}

void
SnoopController::handleSyncDirect(const BusOp &op)
{
    if (op.is(op::Request)) {
        // Join-walk: a waiter (or the owner) is asked to append org.
        NodeId org = op.origin;
        CacheLine *line = cache.find(op.addr);
        if (line && line->mode == Mode::Modified) {
            if (line->data.lock == 0) {
                // Lock freed while walking; grant via the normal path:
                // restart as an owner-side serve without MLT motion is
                // unsafe, so just tell org to retry from scratch.
                BusOp fail = makeOp(TxnType::Sync, op::Reply | op::Fail,
                                    op.addr, org);
                routeReplyToward(org, fail);
            } else {
                handleSyncJoin(op, line);
            }
            return;
        }
        if (org == _id) {
            // A hint pointed us at ourselves (stale chain state):
            // restart the whole transaction instead of self-linking.
            if (pending.stage == Stage::Requested
                && pending.txn == TxnType::Sync
                && pending.addr == op.addr)
                syncRestart();
            return;
        }
        if (pending.stage == Stage::Requested
            && pending.txn == TxnType::Sync && pending.addr == op.addr) {
            if (pending.queueNext == org
                || pending.queueNext == invalidNode) {
                if (pending.queueNext == invalidNode)
                    ++statSyncJoins;
                pending.queueNext = org;
                BusOp ack = makeOp(TxnType::Sync, op::Reply | op::Ack,
                                   op.addr, org);
                routeReplyToward(org, ack);
            } else {
                BusOp fail = makeOp(TxnType::Sync, op::Reply | op::Fail,
                                    op.addr, org);
                fail.data.next = pending.queueNext;
                routeReplyToward(org, fail);
            }
            return;
        }
        // Stale hint: tell org to restart the whole transaction.
        BusOp fail = makeOp(TxnType::Sync, op::Reply | op::Fail, op.addr,
                            org);
        routeReplyToward(org, fail);
        return;
    }

    if (op.is(op::Fail) && op.is(op::Purge)) {
        // Abort: our predecessor lost the line; retry from scratch.
        if (pending.stage == Stage::Requested
            && pending.txn == TxnType::Sync && pending.addr == op.addr) {
            ++statSyncAborts;
            syncRestart();
        }
        return;
    }
}

void
SnoopController::syncGrantTo(NodeId next, CacheLine *line)
{
    assert(line && line->mode == Mode::Modified);
    BusOp reply = makeOp(TxnType::Sync, op::Reply, line->addr, next);
    reply.hasData = true;
    reply.data = line->data;
    reply.data.lock = 1;
    reply.data.next = invalidNode;
    purgeLine(line);
    if (grid.sameColumn(_id, next)) {
        reply.params = op::Reply | op::Insert;
        sendCol(reply);
    } else if (!rowRelayDead(next)) {
        sendRow(reply);
    } else {
        sendCol(reply);  // fallback: (next's row, my column)
    }
}

void
SnoopController::syncAbortTo(NodeId next, Addr addr)
{
    BusOp abort = makeOp(TxnType::Sync, op::Fail | op::Purge, addr, _id);
    abort.dest = next;
    sendDirected(abort);
}

void
SnoopController::syncRestart()
{
    assert(pending.stage == Stage::Requested
           && pending.txn == TxnType::Sync);
    // Cascade: re-joining while still holding a successor could put
    // us behind our own successor (a wait cycle). Abort the tail of
    // the chain too; everyone re-joins fresh. This only triggers on
    // broken-protocol degeneration, where the paper gives up FIFO
    // order anyway.
    if (pending.queueNext != invalidNode) {
        syncAbortTo(pending.queueNext, pending.addr);
        pending.queueNext = invalidNode;
    }
    pending.queuedInChain = false;
    pending.purged = false;
    // The re-join request is droppable and the watchdog may have gone
    // dormant while we sat queued, so re-arm it. A later re-arm (e.g.
    // by the watchdog's own backoff) supersedes this one.
    armWatchdog();
    Addr addr = pending.addr;
    // Re-reserve our copy if it was purged, then reissue after a short
    // backoff (plus jitter) to avoid lock-step retry storms.
    Tick delay = params.syncRetryTicks + rng.below(64);
    eq.scheduleToLane(homeLane_, delay, [this, addr] {
        if (pending.stage != Stage::Requested
            || pending.txn != TxnType::Sync || pending.addr != addr)
            return;
        CacheLine *line = cache.find(addr);
        if (line && line->mode == Mode::Invalid)
            cache.fill(line, addr, Mode::Reserved, LineData{});
        BusOp re = makeOp(TxnType::Sync, op::Request, addr, _id);
        re.reqSeq = pending.seq;
        sendRow(re);
    });
}

void
SnoopController::parkUnclaimedReply(const BusOp &op, bool entry_inserted)
{
    CacheLine *line = cache.find(op.addr);
    if (line && line->mode == Mode::Modified)
        return;  // we already own the line; duplicate data is stale

    MCUBE_LOG(LogCat::Sync, eq.now(),
              name << " parking unclaimed reply " << op);
    MCUBE_TRACE((TraceEvent{eq.now(), TracePhase::ParkedReply,
                            TraceComp::Controller, op.txn, op.params,
                            _id, op.origin, op.addr, op.reqSeq,
                            op.serial, entry_inserted ? 1 : 0}));
    if (entry_inserted)
        sendCol(makeOp(TxnType::WriteBack, op::Remove, op.addr, _id));

    // A chain rooted at a dead transaction can never be granted; send
    // any rider back to restart before the link is severed.
    if (op.data.next != invalidNode)
        syncAbortTo(op.data.next, op.addr);

    BusOp upd = makeOp(TxnType::WriteBack, op::Update, op.addr, _id);
    upd.hasData = true;
    upd.data = op.data;
    // A parked grant means its lock acquisition never happened; plain
    // data replies keep their (application-owned) lock word.
    if (op.txn == TxnType::Tset || op.txn == TxnType::Sync)
        upd.data.lock = 0;
    upd.data.next = invalidNode;
    if (onHomeColumn(op.addr)) {
        upd.params = op::Update | op::Memory;
        sendCol(upd);
    } else {
        sendRow(upd);
    }
}

bool
SnoopController::handoffPending(Addr addr) const
{
    for (const auto &[a, next] : handoffs)
        if (a == addr)
            return true;
    return false;
}

void
SnoopController::finishHandoff(Addr addr)
{
    for (auto it = handoffs.begin(); it != handoffs.end(); ++it) {
        if (it->first != addr)
            continue;
        NodeId next = it->second;
        handoffs.erase(it);
        CacheLine *line = cache.find(addr);
        if (line && line->mode == Mode::Modified) {
            if (!grid.reachable(next)) {
                // The grantee fail-stopped while our hand-off REMOVE
                // was in flight. Granting anyway would purge the only
                // copy into a dead port; abandon the hand-off, free
                // the lock, and reinstate the table entry the REMOVE
                // just stripped from our column.
                line->data.lock = 0;
                line->data.next = invalidNode;
                sendCol(makeOp(TxnType::Sync, op::Insert, addr, _id));
                return;
            }
            syncGrantTo(next, line);
        }
        // If the line was stolen between release() and now, the
        // stealing path already aborted the chain.
        return;
    }
}

// ---------------------------------------------------------------------
// Fault injection helper
// ---------------------------------------------------------------------

bool
SnoopController::maybeDrop(const BusOp &op)
{
    return droppedSerial == op.serial;
}

} // namespace mcube
