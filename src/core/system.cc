#include "core/system.hh"

#include <algorithm>
#include <sstream>
#include <string>

namespace mcube
{

MulticubeSystem::MulticubeSystem(const SystemParams &params)
    : _params(params), grid(params.n, params.homePageShift),
      stats("system")
{
    const unsigned n = params.n;

    if (params.simThreads > 0) {
        // Window width: the minimum bus occupancy (arbitration +
        // header), i.e. the minimum cross-domain hop latency — the
        // same conservative lookahead bound the coupling analyzer
        // measures (docs/PERFORMANCE.md).
        const Tick window = std::max<Tick>(
            1, params.bus.arbTicks + params.bus.headerTicks);
        par = std::make_unique<ParallelEngine>(eq, n,
                                               params.simThreads,
                                               window);
        eq.setParallel(par.get());
    }

    rowBuses.reserve(n);
    colBuses.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        rowBuses.push_back(std::make_unique<Bus>(
            "row" + std::to_string(i), eq, params.bus));
        colBuses.push_back(std::make_unique<Bus>(
            "col" + std::to_string(i), eq, params.bus));
        if (par) {
            rowBuses.back()->setScheduleLane(par->rowLane(i));
            colBuses.back()->setScheduleLane(par->colLane(i));
        }
    }

    nodes.reserve(grid.numNodes());
    for (NodeId id = 0; id < grid.numNodes(); ++id) {
        ControllerParams cp = params.ctrl;
        cp.seed = params.seed * 2654435761u + id;
        auto c = std::make_unique<SnoopController>(
            "node" + std::to_string(grid.rowOf(id)) + "_"
                + std::to_string(grid.colOf(id)),
            eq, grid, id, cp);
        c->connect(*rowBuses[grid.rowOf(id)], *colBuses[grid.colOf(id)]);
        // A node's home lane is its row bus's lane: completion
        // callbacks and workload self-scheduling run there instead of
        // serializing on lane 0 (docs/PERFORMANCE.md, "Serial-lane
        // pressure").
        if (par)
            c->setHomeLane(par->rowLane(grid.rowOf(id)));
        nodes.push_back(std::move(c));
    }

    memories.reserve(n);
    for (unsigned c = 0; c < n; ++c) {
        auto m = std::make_unique<MemoryModule>(
            "mem" + std::to_string(c), eq, grid, c, params.mem);
        m->connect(*colBuses[c]);
        memories.push_back(std::move(m));
    }

    eq.regStats(stats);
    for (auto &b : rowBuses)
        b->regStats(stats);
    for (auto &b : colBuses)
        b->regStats(stats);
    for (auto &nd : nodes)
        nd->regStats(stats);
    for (auto &m : memories)
        m->regStats(stats);
}

bool
MulticubeSystem::drain(Tick max_ticks)
{
    Tick deadline = eq.now() + max_ticks;
    while (eq.now() < deadline) {
        bool idle = true;
        for (auto &b : rowBuses)
            idle = idle && b->pendingOps() == 0;
        for (auto &b : colBuses)
            idle = idle && b->pendingOps() == 0;
        if (idle && eq.empty())
            return true;
        if (eq.empty())
            return true;  // only time advanced past pending? cannot be
        eq.run(1);
        if (eq.now() >= deadline)
            break;
    }
    return false;
}

std::uint64_t
MulticubeSystem::totalBusOps() const
{
    std::uint64_t total = 0;
    for (const auto &b : rowBuses)
        total += b->opsDelivered();
    for (const auto &b : colBuses)
        total += b->opsDelivered();
    return total;
}

std::string
MulticubeSystem::dumpPendingState() const
{
    std::ostringstream oss;
    oss << "---- pending state at tick " << eq.now() << " ----\n";

    std::vector<Addr> addrs;
    unsigned busy = 0;
    for (const auto &nd : nodes) {
        if (!nd->busy())
            continue;
        ++busy;
        oss << "  " << nd->pendingInfo() << "\n";
        addrs.push_back(nd->pendingAddr());
    }
    if (busy == 0)
        oss << "  (no controller has an outstanding transaction)\n";

    for (Addr a : addrs) {
        unsigned home = grid.homeColumn(a);
        oss << "  mem" << home << ": addr " << a << " valid="
            << (memories[home]->lineValid(a) ? "yes" : "no") << "\n";
    }

    for (unsigned c = 0; c < grid.n(); ++c) {
        const auto &t = nodes[grid.nodeAt(0, c)]->table();
        oss << "  col" << c << " MLT " << t.size() << "/"
            << t.capacity() << ":";
        unsigned shown = 0;
        t.forEach([&](Addr a) {
            if (shown++ < 16)
                oss << " " << a;
        });
        if (shown > 16)
            oss << " (+" << shown - 16 << " more)";
        oss << "\n";
    }

    for (unsigned i = 0; i < grid.n(); ++i) {
        oss << "  row" << i << " queue=" << rowBuses[i]->pendingOps()
            << ", col" << i << " queue=" << colBuses[i]->pendingOps()
            << "\n";
    }
    return oss.str();
}

unsigned
MulticubeSystem::outstandingTransactions() const
{
    unsigned busy = 0;
    for (const auto &nd : nodes)
        if (nd->busy())
            ++busy;
    return busy;
}

double
MulticubeSystem::meanBusUtilization(unsigned dim) const
{
    const auto &buses = dim == 0 ? rowBuses : colBuses;
    double sum = 0.0;
    for (const auto &b : buses)
        sum += b->utilization();
    return buses.empty() ? 0.0 : sum / static_cast<double>(buses.size());
}

} // namespace mcube
