/**
 * @file
 * Assembly of a complete Wisconsin Multicube: n row buses, n column
 * buses, n^2 snooping cache controllers and n memory modules (one per
 * column, line-interleaved), all sharing one event queue.
 */

#ifndef MCUBE_CORE_SYSTEM_HH
#define MCUBE_CORE_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "bus/bus.hh"
#include "core/controller.hh"
#include "mem/memory_module.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"
#include "sim/stats.hh"
#include "topology/grid_map.hh"

namespace mcube
{

/** Configuration of a whole system. */
struct SystemParams
{
    unsigned n = 4;              //!< processors per bus (N = n^2)
    BusParams bus{};             //!< timing shared by rows and columns
    ControllerParams ctrl{};     //!< per-node controller configuration
    MemoryParams mem{};          //!< per-column memory configuration
    std::uint64_t seed = 12345;  //!< base seed; nodes derive their own
    /** Home-column interleave granularity: 0 = by line (default),
     *  p = by 2^p-line pages (Section 3: "by lines or pages"). */
    unsigned homePageShift = 0;
    /**
     * Worker threads for the parallel single-simulation engine
     * (docs/PERFORMANCE.md). 0 (default) selects the classic
     * sequential engine. Any value >= 1 selects the window-phased
     * parallel engine, whose results are bit-identical for every
     * simThreads value (1 included) but follow a different canonical
     * event order than the sequential engine, and identical whether
     * profiling/tracing are active or not (the engine gives each lane
     * shard observers and folds them canonically at window
     * boundaries). Still incompatible with observers that assume a
     * single-threaded queue mid-run — metrics sampling and fault
     * injection — for which sweep_cli forces 0 (see
     * resolveSimThreads() in sim/sim_threads_policy.hh).
     */
    unsigned simThreads = 0;
};

/** A complete n x n Multicube machine instance. */
class MulticubeSystem
{
  public:
    explicit MulticubeSystem(const SystemParams &params);

    MulticubeSystem(const MulticubeSystem &) = delete;
    MulticubeSystem &operator=(const MulticubeSystem &) = delete;

    EventQueue &eventQueue() { return eq; }
    const GridMap &gridMap() const { return grid; }
    /** Mutable map, for the ReconfigurationManager's unreachable
     *  marking (docs/ROBUSTNESS.md); everything else reads it. */
    GridMap &gridMap() { return grid; }
    unsigned n() const { return grid.n(); }
    unsigned numNodes() const { return grid.numNodes(); }

    /** The configuration this system was built from (repro echoing). */
    const SystemParams &params() const { return _params; }

    SnoopController &node(NodeId id) { return *nodes[id]; }
    SnoopController &node(unsigned row, unsigned col)
    {
        return *nodes[grid.nodeAt(row, col)];
    }
    MemoryModule &memory(unsigned col) { return *memories[col]; }
    Bus &rowBus(unsigned row) { return *rowBuses[row]; }
    Bus &colBus(unsigned col) { return *colBuses[col]; }

    /** Run for @p ticks of simulated time. */
    void run(Tick ticks) { eq.runUntil(eq.now() + ticks); }

    /**
     * Run until every bus is idle and no events remain, or @p max_ticks
     * elapse. @return true if the system drained.
     */
    bool drain(Tick max_ticks = 10'000'000);

    /** Total bus operations delivered across all 2n buses. */
    std::uint64_t totalBusOps() const;

    /**
     * Human-readable snapshot of all in-flight work: every busy
     * controller's pendingInfo(), each column's MLT contents, the
     * memory valid bit for every pending address, and per-bus queue
     * depths. Used by timeout and stall diagnostics (soak tests,
     * ProgressMonitor) so hung runs fail with a diagnosis instead of
     * a bare timeout.
     */
    std::string dumpPendingState() const;

    /** Mean utilisation over all row (dim 0) or column (dim 1) buses. */
    double meanBusUtilization(unsigned dim) const;

    /** Controllers with an outstanding processor transaction (the
     *  in-flight gauge sampled by MetricsSampler). */
    unsigned outstandingTransactions() const;

    /** Root of the system's statistics tree. */
    const StatGroup &statistics() const { return stats; }
    StatGroup &statistics() { return stats; }

    /** The parallel engine, or nullptr when simThreads == 0. */
    ParallelEngine *parallelEngine() { return par.get(); }

  private:
    SystemParams _params;
    EventQueue eq;
    GridMap grid;
    StatGroup stats;
    std::vector<std::unique_ptr<Bus>> rowBuses;
    std::vector<std::unique_ptr<Bus>> colBuses;
    std::vector<std::unique_ptr<SnoopController>> nodes;
    std::vector<std::unique_ptr<MemoryModule>> memories;
    /** Declared last: destroyed first, so pending lane events (which
     *  capture raw bus/controller pointers) die before their
     *  targets, and the worker pool stops before teardown. */
    std::unique_ptr<ParallelEngine> par;
};

} // namespace mcube

#endif // MCUBE_CORE_SYSTEM_HH
