/**
 * @file
 * Transaction-lifecycle report over a trace export, as a library.
 *
 * The logic behind tools/trace_report: parse either export format of
 * TransactionTracer (Chrome trace-event JSON or the flat text form,
 * detected automatically), reconstruct transaction instances keyed by
 * (originator, reqSeq), and print a latency summary plus the top-K
 * slowest completed transactions with a per-hop breakdown. Living in
 * the library lets tests drive the exact CLI logic over in-memory
 * streams (see tests/trace_report_test.cc) instead of fork/exec'ing
 * the binary.
 */

#ifndef MCUBE_TRACE_TRACE_REPORT_HH
#define MCUBE_TRACE_TRACE_REPORT_HH

#include <istream>
#include <ostream>

namespace mcube::tracereport
{

struct Options
{
    unsigned topK = 5;          //!< slowest transactions to detail
    long long addrFilter = -1;  //!< only this address (-1: all)
};

/**
 * Read one trace export from @p in and write the report to @p os.
 * @return 0 on success, 1 if @p in held no recognizable trace events.
 */
int report(std::istream &in, std::ostream &os, const Options &opt = {});

} // namespace mcube::tracereport

#endif // MCUBE_TRACE_TRACE_REPORT_HH
