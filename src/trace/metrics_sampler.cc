#include "trace/metrics_sampler.hh"

#include <cassert>
#include <map>
#include <string>

namespace mcube
{

MetricsSampler::MetricsSampler(MulticubeSystem &sys, Tick period,
                               std::ostream &os, bool include_stats)
    : sys(sys), period(period), os(os), includeStats(include_stats)
{
    assert(period > 0);
    lastRowBusy.resize(sys.n(), 0);
    lastColBusy.resize(sys.n(), 0);
}

void
MetricsSampler::start()
{
    if (active)
        return;
    active = true;
    lastTick = sys.eventQueue().now();
    for (unsigned i = 0; i < sys.n(); ++i) {
        lastRowBusy[i] = sys.rowBus(i).busyTicks();
        lastColBusy[i] = sys.colBus(i).busyTicks();
    }
    arm();
}

void
MetricsSampler::stop()
{
    if (!active)
        return;
    active = false;
    // Flush the final partial interval: a run whose length is not a
    // multiple of the period would otherwise silently drop its tail
    // (and a run shorter than one period would produce no samples at
    // all). Skip only when the last sample already covers "now".
    if (sys.eventQueue().now() > lastTick || samples == 0)
        sampleNow();
}

void
MetricsSampler::arm()
{
    sys.eventQueue().scheduleIn(period, [this] {
        if (!active)
            return;
        sampleNow();
        arm();
    });
}

void
MetricsSampler::sampleNow()
{
    EventQueue &eq = sys.eventQueue();
    const unsigned n = sys.n();
    Tick now = eq.now();
    Tick interval = now > lastTick ? now - lastTick : 1;

    double row_util = 0.0, col_util = 0.0;
    os << "{\"tick\":" << now << ",\"interval_ticks\":" << interval;
    for (unsigned i = 0; i < n; ++i) {
        Tick rb = sys.rowBus(i).busyTicks();
        Tick cb = sys.colBus(i).busyTicks();
        row_util += static_cast<double>(rb - lastRowBusy[i]);
        col_util += static_cast<double>(cb - lastColBusy[i]);
        lastRowBusy[i] = rb;
        lastColBusy[i] = cb;
    }
    row_util /= static_cast<double>(interval) * n;
    col_util /= static_cast<double>(interval) * n;
    os << ",\"row_util\":" << row_util << ",\"col_util\":" << col_util;

    os << ",\"outstanding\":" << sys.outstandingTransactions();

    os << ",\"mlt_occupancy\":[";
    for (unsigned c = 0; c < n; ++c)
        os << (c ? "," : "") << sys.node(0, c).table().size();
    os << "]";

    os << ",\"row_queue\":[";
    for (unsigned i = 0; i < n; ++i)
        os << (i ? "," : "") << sys.rowBus(i).pendingOps();
    os << "],\"col_queue\":[";
    for (unsigned i = 0; i < n; ++i)
        os << (i ? "," : "") << sys.colBus(i).pendingOps();
    os << "]";

    if (includeStats) {
        // The tree shape is fixed after construction, so the entries
        // arrive in a stable order and no per-sample map is needed.
        FlatStats flat;
        sys.statistics().flatten(flat);
        os << ",\"stats\":{";
        const char *sep = "";
        for (const auto &[name, value] : flat) {
            os << sep << "\"" << name << "\":" << value;
            sep = ",";
        }
        os << "}";
    }

    os << "}\n";
    lastTick = now;
    ++samples;
}

} // namespace mcube
