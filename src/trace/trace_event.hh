/**
 * @file
 * Structured transaction-lifecycle tracing for the Multicube.
 *
 * The protocol's interesting properties are temporal: a READ-MOD is a
 * *sequence* — issue, row-bus grant, MLT route decision, column-bus
 * grant, memory access or snoop serve, possibly a bounce/relaunch
 * chain or a watchdog reissue, reply, completion. End-of-run counters
 * cannot show where such a sequence spent its time or how recovery
 * chains unfold under fault injection; this module records the
 * sequence itself.
 *
 * Model components emit compact fixed-size TraceEvents through the
 * MCUBE_TRACE macro into a bounded ring buffer (oldest events are
 * overwritten once the buffer is full, so memory stays bounded on
 * arbitrarily long runs). The buffer exports as
 *
 *  - Chrome trace-event JSON (open in Perfetto / chrome://tracing):
 *    one instant event per TraceEvent plus one derived duration slice
 *    per completed transaction (issue -> complete, keyed by
 *    originator and transaction-instance id), and
 *  - a flat text form, one event per line, for grepping.
 *
 * Tracing is disabled by default and costs one static pointer load
 * and branch per site — the same zero-cost-when-disabled discipline
 * as MCUBE_LOG. A tracer becomes the active sink with activate() and
 * detaches with deactivate() (or its destructor); at most one tracer
 * is active per process, matching the one-simulation-at-a-time use of
 * the tools and tests.
 */

#ifndef MCUBE_TRACE_TRACE_EVENT_HH
#define MCUBE_TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "bus/bus_op.hh"
#include "sim/types.hh"

namespace mcube
{

/** Lifecycle phases a trace event can mark. */
enum class TracePhase : std::uint8_t
{
    Issue,            //!< controller starts a transaction (row request)
    BusGrant,         //!< arbitration won; op occupies the wire
    BusDeliver,       //!< op broadcast to all agents on the bus
    MltRoute,         //!< row-request routing decision (see aux codes)
    MltInsert,        //!< canonical MLT copy inserted an entry
    MltRemove,        //!< canonical MLT copy removed (aux: 1 hit, 0 miss)
    MltEvict,         //!< MLT overflow evicted an entry (aux: victim)
    MemServe,         //!< memory served a request (valid line)
    MemUpdate,        //!< memory absorbed an UPDATE
    MemBounce,        //!< memory bounced a request (invalid line)
    SnoopServe,       //!< owning snooping cache served a request
    Relaunch,         //!< row-mate relaunched a bounced request
    WatchdogReissue,  //!< transaction watchdog reissued the request
    ParkedReply,      //!< unclaimed reply parked back to memory
    FaultInject,      //!< fault injector fired (aux: FaultKind)
    Complete,         //!< transaction completed (aux: latency ticks)
};

/** Which component emitted an event. */
enum class TraceComp : std::uint8_t
{
    Controller,  //!< compIndex = node id
    Memory,      //!< compIndex = column
    RowBus,      //!< compIndex = row
    ColBus,      //!< compIndex = column
    Bus,         //!< baseline / standalone bus, compIndex = 0
    Fault,       //!< fault injector; compIndex = dim * 256 + bus index
};

/** Route decisions recorded by TracePhase::MltRoute in aux. */
namespace route
{
constexpr std::int64_t ToOwnerColumn = 1;  //!< MLT hit, fwd to column
constexpr std::int64_t HomeShared = 2;     //!< home node served shared
constexpr std::int64_t ToMemory = 3;       //!< fwd to home memory
} // namespace route

/** One compact trace record (fixed size, no heap allocation). */
struct TraceEvent
{
    Tick tick = 0;
    TracePhase phase = TracePhase::Issue;
    TraceComp comp = TraceComp::Controller;
    TxnType txn = TxnType::Read;
    std::uint16_t params = 0;       //!< BusOp params bits (where known)
    std::uint32_t compIndex = 0;    //!< see TraceComp
    NodeId origin = invalidNode;    //!< transaction originator
    Addr addr = 0;
    std::uint64_t reqSeq = 0;       //!< originator's txn-instance id
    std::uint64_t serial = 0;       //!< bus serial (where known)
    std::int64_t aux = 0;           //!< per-phase detail (see phases)
};

/** Text names for export and reports. */
const char *toString(TracePhase phase);
const char *toString(TraceComp comp);

/**
 * The bounded event sink. Construct with a capacity, activate() to
 * start collecting, then export after the run.
 */
class TransactionTracer
{
  public:
    explicit TransactionTracer(std::size_t capacity = 1 << 16);
    ~TransactionTracer();

    TransactionTracer(const TransactionTracer &) = delete;
    TransactionTracer &operator=(const TransactionTracer &) = delete;

    /** Install this tracer as this *thread's* sink (replacing any
     *  previously active one). Activation is thread-local — the same
     *  discipline as SimProfiler — so the parallel engine can give
     *  each lane its own shard tracer on whichever worker thread runs
     *  it, and merge the shards canonically at window boundaries
     *  (ParallelEngine). Single-threaded users see the historical
     *  one-active-tracer-per-process behaviour unchanged. */
    void activate();

    /** Detach; MCUBE_TRACE becomes a no-op again. */
    void deactivate();

    /** The calling thread's active sink, or nullptr when tracing is
     *  off. This is the whole cost of a disabled trace site. */
    static TransactionTracer *active() { return gActive; }

    /** Swap this thread's active sink for @p t (may be null) and
     *  return the previous one. Used by the parallel engine to
     *  install a lane's shard tracer around lane execution. */
    static TransactionTracer *
    exchangeActive(TransactionTracer *t)
    {
        TransactionTracer *prev = gActive;
        gActive = t;
        return prev;
    }

    /** Append one event (overwrites the oldest once full). */
    void record(const TraceEvent &ev);

    /** @{ Buffer inspection (events in chronological order). */
    std::size_t size() const { return count; }
    std::size_t capacity() const { return ring.size(); }
    /** Total events ever recorded, including overwritten ones. */
    std::uint64_t recorded() const { return total; }
    /** Events lost to ring wraparound. */
    std::uint64_t overwritten() const { return total - count; }
    /** The i-th oldest retained event, i in [0, size()). */
    const TraceEvent &at(std::size_t i) const;
    void clear();
    /** @} */

    /** Write Chrome trace-event JSON (Perfetto / chrome://tracing). */
    void exportChromeJson(std::ostream &os) const;

    /** Write the flat text form, one event per line. */
    void exportText(std::ostream &os) const;

  private:
    static thread_local TransactionTracer *gActive;

    std::vector<TraceEvent> ring;
    std::size_t head = 0;       //!< next write position
    std::size_t count = 0;      //!< retained events
    std::uint64_t total = 0;    //!< lifetime events
};

} // namespace mcube

/**
 * Trace-site macro: MCUBE_TRACE(event_expr). The event expression is
 * only evaluated when a tracer is active.
 */
#define MCUBE_TRACE(ev)                                                     \
    do {                                                                    \
        if (auto *_mcube_tr = ::mcube::TransactionTracer::active())         \
            _mcube_tr->record((ev));                                        \
    } while (0)

#endif // MCUBE_TRACE_TRACE_EVENT_HH
