#include "trace/trace_event.hh"

#include <cassert>
#include <map>
#include <utility>

namespace mcube
{

thread_local TransactionTracer *TransactionTracer::gActive = nullptr;

const char *
toString(TracePhase phase)
{
    switch (phase) {
      case TracePhase::Issue: return "Issue";
      case TracePhase::BusGrant: return "BusGrant";
      case TracePhase::BusDeliver: return "BusDeliver";
      case TracePhase::MltRoute: return "MltRoute";
      case TracePhase::MltInsert: return "MltInsert";
      case TracePhase::MltRemove: return "MltRemove";
      case TracePhase::MltEvict: return "MltEvict";
      case TracePhase::MemServe: return "MemServe";
      case TracePhase::MemUpdate: return "MemUpdate";
      case TracePhase::MemBounce: return "MemBounce";
      case TracePhase::SnoopServe: return "SnoopServe";
      case TracePhase::Relaunch: return "Relaunch";
      case TracePhase::WatchdogReissue: return "WatchdogReissue";
      case TracePhase::ParkedReply: return "ParkedReply";
      case TracePhase::FaultInject: return "FaultInject";
      case TracePhase::Complete: return "Complete";
    }
    return "?";
}

const char *
toString(TraceComp comp)
{
    switch (comp) {
      case TraceComp::Controller: return "node";
      case TraceComp::Memory: return "mem";
      case TraceComp::RowBus: return "row";
      case TraceComp::ColBus: return "col";
      case TraceComp::Bus: return "bus";
      case TraceComp::Fault: return "fault";
    }
    return "?";
}

TransactionTracer::TransactionTracer(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    ring.resize(capacity);
}

TransactionTracer::~TransactionTracer()
{
    if (gActive == this)
        gActive = nullptr;
}

void
TransactionTracer::activate()
{
    gActive = this;
}

void
TransactionTracer::deactivate()
{
    if (gActive == this)
        gActive = nullptr;
}

void
TransactionTracer::record(const TraceEvent &ev)
{
    ring[head] = ev;
    head = (head + 1) % ring.size();
    if (count < ring.size())
        ++count;
    ++total;
}

const TraceEvent &
TransactionTracer::at(std::size_t i) const
{
    assert(i < count);
    // Oldest retained event sits at head when the ring has wrapped,
    // else at index 0.
    std::size_t start = count == ring.size() ? head : 0;
    return ring[(start + i) % ring.size()];
}

void
TransactionTracer::clear()
{
    head = 0;
    count = 0;
    total = 0;
}

namespace
{

/** Stable numeric pid per component for the Chrome trace (Perfetto
 *  groups tracks by pid; names arrive via process_name metadata). */
long
pidOf(const TraceEvent &ev)
{
    switch (ev.comp) {
      case TraceComp::Controller:
        return static_cast<long>(ev.compIndex);
      case TraceComp::Memory:
        return 1000 + static_cast<long>(ev.compIndex);
      case TraceComp::RowBus:
        return 2000 + static_cast<long>(ev.compIndex);
      case TraceComp::ColBus:
        return 3000 + static_cast<long>(ev.compIndex);
      case TraceComp::Bus:
        return 2999;
      case TraceComp::Fault:
        return 4000 + static_cast<long>(ev.compIndex);
    }
    return -1;
}

/** Chrome trace ts is in microseconds; ticks are nanoseconds. */
void
emitTs(std::ostream &os, Tick tick)
{
    Tick frac = tick % 1000;
    os << tick / 1000 << "." << frac / 100 << (frac / 10) % 10
       << frac % 10;
}

void
emitArgs(std::ostream &os, const TraceEvent &ev)
{
    os << "{\"tick\":" << ev.tick
       << ",\"txn\":\"" << toString(ev.txn) << "\""
       << ",\"addr\":" << ev.addr << ",\"origin\":";
    if (ev.origin == invalidNode)
        os << -1;
    else
        os << ev.origin;
    os << ",\"reqSeq\":" << ev.reqSeq << ",\"serial\":" << ev.serial
       << ",\"params\":" << ev.params << ",\"aux\":" << ev.aux
       << ",\"comp\":\"" << toString(ev.comp) << ev.compIndex << "\"}";
}

} // namespace

void
TransactionTracer::exportChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[\n";
    const char *sep = "";

    // Process-name metadata, one entry per distinct component.
    std::map<long, std::string> procs;
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent &ev = at(i);
        procs.emplace(pidOf(ev),
                      std::string(toString(ev.comp))
                          + std::to_string(ev.compIndex));
    }
    for (const auto &[pid, pname] : procs) {
        os << sep << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << pname
           << "\"}}";
        sep = ",\n";
    }

    // One instant event per record.
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent &ev = at(i);
        os << sep << "{\"ph\":\"i\",\"s\":\"p\",\"name\":\""
           << toString(ev.phase) << "\",\"ts\":";
        emitTs(os, ev.tick);
        os << ",\"pid\":" << pidOf(ev) << ",\"tid\":0,\"args\":";
        emitArgs(os, ev);
        os << "}";
        sep = ",\n";
    }

    // Derived duration slices: one per completed transaction whose
    // Issue survived in the ring (keyed by originator + instance id;
    // a controller has one outstanding transaction, so slices on one
    // track never overlap).
    std::map<std::pair<std::uint32_t, std::uint64_t>, Tick> issued;
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent &ev = at(i);
        if (ev.comp != TraceComp::Controller)
            continue;
        if (ev.phase == TracePhase::Issue) {
            issued[{ev.compIndex, ev.reqSeq}] = ev.tick;
        } else if (ev.phase == TracePhase::Complete) {
            auto it = issued.find({ev.compIndex, ev.reqSeq});
            if (it == issued.end())
                continue;
            Tick start = it->second;
            issued.erase(it);
            os << sep << "{\"ph\":\"X\",\"name\":\"" << toString(ev.txn)
               << " addr=" << ev.addr << "\",\"ts\":";
            emitTs(os, start);
            os << ",\"dur\":";
            emitTs(os, ev.tick - start);
            os << ",\"pid\":" << pidOf(ev) << ",\"tid\":1,\"args\":";
            emitArgs(os, ev);
            os << "}";
            sep = ",\n";
        }
    }

    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void
TransactionTracer::exportText(std::ostream &os) const
{
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent &ev = at(i);
        os << ev.tick << " " << toString(ev.comp) << ev.compIndex << " "
           << toString(ev.phase) << " " << toString(ev.txn)
           << " addr=" << ev.addr << " org=";
        if (ev.origin == invalidNode)
            os << "-";
        else
            os << ev.origin;
        os << " seq=" << ev.reqSeq << " serial=" << ev.serial
           << " params=" << ev.params << " aux=" << ev.aux << "\n";
    }
}

} // namespace mcube
