#include "trace/trace_report.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace mcube::tracereport
{

namespace
{

struct Ev
{
    std::uint64_t tick = 0;
    std::string comp;   // "node3", "row0", "mem1", "fault256", ...
    std::string phase;  // "Issue", "MemBounce", ...
    std::string txn;    // "READ", "READMOD", ...
    std::uint64_t addr = 0;
    long long origin = -1;
    std::uint64_t reqSeq = 0;
    std::uint64_t serial = 0;
    std::uint64_t params = 0;
    long long aux = 0;
};

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/** Extract the number following @p key in @p line, or @p dflt. */
long long
numAfter(const std::string &line, const std::string &key, long long dflt)
{
    auto pos = line.find(key);
    if (pos == std::string::npos)
        return dflt;
    return std::atoll(line.c_str() + pos + key.size());
}

/** Extract the quoted string following @p key in @p line. */
std::string
strAfter(const std::string &line, const std::string &key)
{
    auto pos = line.find(key);
    if (pos == std::string::npos)
        return "";
    pos += key.size();
    auto end = line.find('"', pos);
    if (end == std::string::npos)
        return "";
    return line.substr(pos, end - pos);
}

/** One instant-event line of our Chrome JSON export. */
bool
parseJsonLine(const std::string &line, Ev &ev)
{
    if (line.find("\"ph\":\"i\"") == std::string::npos)
        return false;
    ev.phase = strAfter(line, "\"name\":\"");
    ev.tick = numAfter(line, "\"tick\":", 0);
    ev.txn = strAfter(line, "\"txn\":\"");
    ev.addr = numAfter(line, "\"addr\":", 0);
    ev.origin = numAfter(line, "\"origin\":", -1);
    ev.reqSeq = numAfter(line, "\"reqSeq\":", 0);
    ev.serial = numAfter(line, "\"serial\":", 0);
    ev.params = numAfter(line, "\"params\":", 0);
    ev.aux = numAfter(line, "\"aux\":", 0);
    ev.comp = strAfter(line, "\"comp\":\"");
    return !ev.phase.empty();
}

/** One line of the flat text export:
 *  tick comp phase txn addr=A org=O seq=S serial=R params=P aux=X */
bool
parseTextLine(const std::string &line, Ev &ev)
{
    std::istringstream iss(line);
    if (!(iss >> ev.tick >> ev.comp >> ev.phase >> ev.txn))
        return false;
    ev.addr = numAfter(line, "addr=", 0);
    auto pos = line.find("org=");
    ev.origin = (pos != std::string::npos && line[pos + 4] == '-')
                  ? -1
                  : numAfter(line, "org=", -1);
    ev.reqSeq = numAfter(line, "seq=", 0);
    ev.serial = numAfter(line, "serial=", 0);
    ev.params = numAfter(line, "params=", 0);
    ev.aux = numAfter(line, "aux=", 0);
    return true;
}

std::vector<Ev>
parseFile(std::istream &in)
{
    std::vector<Ev> evs;
    std::string line;
    bool json = false;
    bool sniffed = false;
    while (std::getline(in, line)) {
        if (!sniffed) {
            auto c = line.find_first_not_of(" \t");
            if (c == std::string::npos)
                continue;
            json = line[c] == '{';
            sniffed = true;
        }
        Ev ev;
        if (json ? parseJsonLine(line, ev) : parseTextLine(line, ev))
            evs.push_back(std::move(ev));
    }
    return evs;
}

// ---------------------------------------------------------------------
// Reconstruction
// ---------------------------------------------------------------------

struct Txn
{
    long long origin = -1;
    std::uint64_t reqSeq = 0;
    std::vector<const Ev *> hops;
    const Ev *issue = nullptr;
    const Ev *complete = nullptr;
    unsigned bounces = 0;
    unsigned relaunches = 0;
    unsigned reissues = 0;
    unsigned faults = 0;

    std::uint64_t latency() const
    {
        return complete && issue ? complete->tick - issue->tick : 0;
    }
};

const char *
routeName(long long aux)
{
    switch (aux) {
      case 1: return "to-owner-column";
      case 2: return "home-shared";
      case 3: return "to-memory";
    }
    return "?";
}

std::string
detailOf(const Ev &ev)
{
    std::ostringstream oss;
    if (ev.phase == "BusGrant")
        oss << "queue-delay=" << ev.aux;
    else if (ev.phase == "MltRoute")
        oss << "route=" << routeName(ev.aux);
    else if (ev.phase == "MemBounce")
        oss << "chain=" << ev.aux;
    else if (ev.phase == "MemServe" && ev.aux > 0)
        oss << "after " << ev.aux << " bounce(s)";
    else if (ev.phase == "WatchdogReissue")
        oss << "next-timeout=" << ev.aux;
    else if (ev.phase == "FaultInject")
        oss << "kind=" << ev.aux;
    else if (ev.phase == "Complete")
        oss << "latency=" << ev.aux
            << (ev.params ? " ok" : " failed");
    return oss.str();
}

void
printTxn(std::ostream &os, const Txn &t, unsigned rank)
{
    os << "#" << rank << " node" << t.origin << " "
       << t.issue->txn << " addr=" << t.issue->addr
       << " seq=" << t.reqSeq << " latency=" << t.latency()
       << " ticks";
    if (t.bounces)
        os << " bounces=" << t.bounces;
    if (t.relaunches)
        os << " relaunches=" << t.relaunches;
    if (t.reissues)
        os << " wd-reissues=" << t.reissues;
    if (t.faults)
        os << " faults=" << t.faults;
    os << "\n";
    os << "    " << std::left << std::setw(12) << "tick"
       << std::setw(10) << "+delta" << std::setw(10) << "comp"
       << std::setw(18) << "phase" << "detail\n";
    for (const Ev *ev : t.hops) {
        os << "    " << std::left << std::setw(12) << ev->tick
           << std::setw(10) << ev->tick - t.issue->tick
           << std::setw(10) << ev->comp << std::setw(18)
           << ev->phase << detailOf(*ev) << "\n";
    }
}

} // namespace

int
report(std::istream &in, std::ostream &os, const Options &opt)
{
    std::vector<Ev> evs = parseFile(in);
    if (evs.empty())
        return 1;

    // Group by transaction instance. Events without an instance id
    // (MLT mutations, untagged ops) contribute to totals only.
    std::map<std::pair<long long, std::uint64_t>, Txn> txns;
    std::map<std::string, unsigned> phaseCounts;
    for (const Ev &ev : evs) {
        ++phaseCounts[ev.phase];
        if (ev.origin < 0 || ev.reqSeq == 0)
            continue;
        if (opt.addrFilter >= 0
            && ev.addr != static_cast<std::uint64_t>(opt.addrFilter))
            continue;
        Txn &t = txns[{ev.origin, ev.reqSeq}];
        t.origin = ev.origin;
        t.reqSeq = ev.reqSeq;
        t.hops.push_back(&ev);
        if (ev.phase == "Issue" && !t.issue)
            t.issue = &ev;
        else if (ev.phase == "Complete")
            t.complete = &ev;
        else if (ev.phase == "MemBounce")
            ++t.bounces;
        else if (ev.phase == "Relaunch")
            ++t.relaunches;
        else if (ev.phase == "WatchdogReissue")
            ++t.reissues;
        else if (ev.phase == "FaultInject")
            ++t.faults;
    }

    std::vector<const Txn *> complete;
    unsigned incomplete = 0;
    Histogram latHist;
    for (const auto &[key, t] : txns) {
        if (t.issue && t.complete) {
            complete.push_back(&t);
            latHist.sample(static_cast<double>(t.latency()));
        } else {
            ++incomplete;
        }
    }
    std::sort(complete.begin(), complete.end(),
              [](const Txn *a, const Txn *b) {
                  return a->latency() > b->latency();
              });

    os << "trace_report: " << evs.size() << " events, "
       << txns.size() << " transaction instances ("
       << complete.size() << " complete, " << incomplete
       << " partial)\n";
    os << "phases:";
    for (const auto &[phase, cnt] : phaseCounts)
        os << " " << phase << "=" << cnt;
    os << "\n";
    if (latHist.count()) {
        // The log buckets exist for the tail: p99.9 shows the
        // order-of-magnitude of the worst recovery chains.
        os << "latency ticks: n=" << latHist.count()
           << " mean=" << latHist.mean()
           << " p50=" << latHist.p50()
           << " p95=" << latHist.p95()
           << " p99=" << latHist.p99()
           << " p99.9=" << latHist.p999()
           << " max=" << latHist.max() << "\n";
    }
    os << "\n";

    if (complete.empty()) {
        os << "no completed transactions in the trace window\n";
        return 0;
    }
    os << "top " << std::min<std::size_t>(opt.topK, complete.size())
       << " slowest transactions:\n";
    for (unsigned i = 0; i < opt.topK && i < complete.size(); ++i)
        printTxn(os, *complete[i], i + 1);
    return 0;
}

} // namespace mcube::tracereport
