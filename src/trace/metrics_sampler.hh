/**
 * @file
 * Interval snapshots of the statistics tree, as JSONL time series.
 *
 * End-of-run stats answer "how much"; they cannot show how bus
 * utilisation evolves under a fault campaign, when the MLTs fill up,
 * or how many transactions are in flight while a recovery chain
 * unwinds. The MetricsSampler wakes every N ticks and appends one
 * JSON object per line to a stream:
 *
 *   {"tick":200000,"interval_ticks":100000,
 *    "row_util":0.41,"col_util":0.33,          <- this interval only
 *    "outstanding":7,                          <- busy controllers
 *    "mlt_occupancy":[3,1,0,2],                <- entries per column
 *    "row_queue":[0,2,0,0],"col_queue":[1,0,0,0],
 *    "stats":{ ...flattened cumulative tree... }}
 *
 * Interval utilisation is computed from busy-tick deltas, so the
 * series shows load as it happens rather than a long-run average.
 * The flattened stat tree (cumulative, as flatten() reports it) can
 * be disabled for very frequent sampling.
 *
 * The sampler self-schedules on the system's event queue; call stop()
 * before draining the system, or the rearm events keep the queue
 * non-empty forever.
 */

#ifndef MCUBE_TRACE_METRICS_SAMPLER_HH
#define MCUBE_TRACE_METRICS_SAMPLER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/system.hh"
#include "sim/types.hh"

namespace mcube
{

/** Periodic JSONL snapshot writer for one MulticubeSystem. */
class MetricsSampler
{
  public:
    /**
     * @param sys System to observe.
     * @param period Ticks between samples (must be > 0).
     * @param os Sink; one JSON object per line.
     * @param include_stats Embed the flattened stat tree per sample.
     */
    MetricsSampler(MulticubeSystem &sys, Tick period, std::ostream &os,
                   bool include_stats = true);

    MetricsSampler(const MetricsSampler &) = delete;
    MetricsSampler &operator=(const MetricsSampler &) = delete;

    /** Schedule the first sample one period from now. */
    void start();

    /** Take no further samples (a last no-op wakeup may still fire).
     *  Emits one final sample first if simulated time has advanced
     *  past the last one, so the tail of a run — or a run shorter
     *  than one period — is never silently dropped. */
    void stop();

    /** Take one sample immediately (also used by the timer). */
    void sampleNow();

    std::uint64_t samplesTaken() const { return samples; }

  private:
    void arm();

    MulticubeSystem &sys;
    Tick period;
    std::ostream &os;
    bool includeStats;
    bool active = false;

    std::uint64_t samples = 0;
    std::vector<Tick> lastRowBusy;
    std::vector<Tick> lastColBusy;
    Tick lastTick = 0;
};

} // namespace mcube

#endif // MCUBE_TRACE_METRICS_SAMPLER_HH
