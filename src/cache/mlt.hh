/**
 * @file
 * The modified line table (Section 3).
 *
 * "Associated with each processor is a modified line table, all of
 * which are identical for a given column. This table is used to store
 * addresses for all modified lines residing in caches in that column."
 *
 * The table is implemented as a set-associative cache of addresses
 * (the paper's footnote 7 notes it is "likely to be implemented as a
 * cache"). Because every mutation arrives over the column bus and is
 * executed by every node in the column in the same order, all copies
 * stay identical, including the LRU victim chosen on overflow — the
 * replacement stamp advances only on table mutations, never on
 * lookups.
 */

#ifndef MCUBE_CACHE_MLT_HH
#define MCUBE_CACHE_MLT_HH

#include <cstdint>
#include <optional>

#include "cache/presence_filter.hh"
#include "sim/event_queue.hh"
#include "sim/hash.hh"
#include "sim/types.hh"
#include "sim/zeroed_array.hh"

namespace mcube
{

/** Geometry of a modified line table. */
struct MltParams
{
    std::size_t numSets = 256;
    unsigned assoc = 4;
};

/** One node's copy of its column's modified line table. */
class ModifiedLineTable
{
  public:
    explicit ModifiedLineTable(const MltParams &params);

    /** True if @p addr is recorded as modified in this column. */
    bool contains(Addr addr) const;

    /**
     * Insert @p addr. If the target set is full, the LRU entry is
     * evicted and returned — the overflow case of READMOD
     * (COLUMN, REPLY, INSERT): the holder of the evicted line must
     * write it back and demote it to shared. Inserting a present
     * address refreshes its LRU position and never overflows.
     */
    std::optional<Addr> insert(Addr addr);

    /**
     * Remove @p addr. @return true if the entry existed ("remove
     * failed" in Appendix A is the false case, which triggers request
     * reissue).
     */
    bool remove(Addr addr);

    /** Number of live entries. */
    std::size_t size() const { return live; }

    /** Total entry capacity. */
    std::size_t capacity() const { return slots.size(); }

    /** Peak live-entry count ever reached. */
    std::size_t highWater() const { return peak; }

    /**
     * Give this copy a tracing identity. Every node in a column
     * executes the same mutation stream, so only the *canonical* copy
     * (row 0 of the column) emits MltInsert/MltRemove/MltEvict trace
     * events — without the flag an n x n machine would log each
     * column-wide mutation n times.
     */
    void setTraceContext(EventQueue *eq, NodeId node, bool canonical)
    {
        traceEq = eq;
        traceNode = node;
        traceCanonical = canonical;
    }

    /** Visit every live entry (checker support). Templated: no
     *  std::function allocation per sweep. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &s : slots)
            if (s.valid)
                fn(s.addr);
    }

    /** Structural equality (checker: tables identical per column). */
    bool identicalTo(const ModifiedLineTable &other) const;

    /**
     * Attach a presence filter kept in sync with the live entries
     * (add on insert, remove on remove/evict). Existing entries are
     * folded in. Pass nullptr to detach.
     */
    void setFilter(PresenceFilter *f);

    /** Set index of @p addr. Mixed (mix64) rather than a raw modulo,
     *  which would correlate with the home-column interleave; public
     *  so tests can construct colliding address sets. */
    std::size_t
    setOf(Addr addr) const
    {
        std::size_t h = static_cast<std::size_t>(mix64(addr));
        return setMask ? (h & setMask) : h % params.numSets;
    }

  private:
    struct Slot
    {
        Addr addr = 0;
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    MltParams params;
    /** numSets - 1 when numSets is a power of two, else 0. */
    std::size_t setMask = 0;
    /** Lazily-zeroed: a zeroed Slot is a valid empty entry (valid =
     *  false), so untouched sets stay unmapped. */
    ZeroedArray<Slot> slots;
    PresenceFilter *filter = nullptr;
    std::size_t live = 0;
    std::size_t peak = 0;
    std::uint64_t nextStamp = 1;

    EventQueue *traceEq = nullptr;
    NodeId traceNode = invalidNode;
    bool traceCanonical = false;
};

} // namespace mcube

#endif // MCUBE_CACHE_MLT_HH
