/**
 * @file
 * Set-associative line storage with true-LRU replacement.
 *
 * Used for the snooping cache. Invalid lines keep their tag so the
 * snarfing optimisation ("a line that is invalid, but was recently
 * contained in the cache, may be acquired as it passes by") can
 * recognise recently held lines.
 */

#ifndef MCUBE_CACHE_CACHE_ARRAY_HH
#define MCUBE_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "bus/bus_op.hh"
#include "cache/line_state.hh"
#include "sim/types.hh"

namespace mcube
{

/** One cached coherency block. */
struct CacheLine
{
    Addr addr = 0;
    bool tagValid = false;       //!< tag meaningful (even if Invalid mode)
    Mode mode = Mode::Invalid;
    LineData data{};
    bool syncTail = false;       //!< this copy is the queue-lock tail
    std::uint64_t lruStamp = 0;  //!< larger = more recently used
};

/** Geometry of a cache array. */
struct CacheArrayParams
{
    std::size_t numSets = 64;
    unsigned assoc = 4;
};

/** A set-associative array of CacheLine. */
class CacheArray
{
  public:
    explicit CacheArray(const CacheArrayParams &params);

    /** Total line capacity. */
    std::size_t capacity() const { return lines.size(); }

    /**
     * Find the line holding @p addr (any mode as long as the tag is
     * valid). Does not update LRU. @return nullptr if absent.
     */
    CacheLine *find(Addr addr);
    const CacheLine *find(Addr addr) const;

    /** find() + LRU touch. */
    CacheLine *touch(Addr addr);

    /**
     * Pick the slot that an allocation of @p addr would use: the
     * matching line if the tag is present, else an un-tagged way,
     * else the LRU way of the set. Never nullptr. The caller decides
     * what to do with the current occupant (e.g. write back a
     * modified victim) before overwriting.
     */
    CacheLine *allocSlot(Addr addr);

    /**
     * Install @p addr in @p slot (previously returned by allocSlot)
     * with the given mode/data, updating the tag and LRU.
     */
    void fill(CacheLine *slot, Addr addr, Mode mode, const LineData &data);

    /** Mark the line's access time (LRU update) without other change. */
    void markUsed(CacheLine *line);

    /** Visit every tag-valid line (for the checker / writeback-all). */
    void forEach(const std::function<void(CacheLine &)> &fn);
    void forEach(const std::function<void(const CacheLine &)> &fn) const;

    /** Number of lines currently in Modified mode. */
    std::size_t countMode(Mode m) const;

  private:
    std::size_t setOf(Addr addr) const { return addr % params.numSets; }

    CacheArrayParams params;
    std::vector<CacheLine> lines;
    std::uint64_t stamp = 0;
};

} // namespace mcube

#endif // MCUBE_CACHE_CACHE_ARRAY_HH
