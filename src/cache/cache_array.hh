/**
 * @file
 * Set-associative line storage with true-LRU replacement.
 *
 * Used for the snooping cache. Invalid lines keep their tag so the
 * snarfing optimisation ("a line that is invalid, but was recently
 * contained in the cache, may be acquired as it passes by") can
 * recognise recently held lines.
 *
 * Lookups are O(1): a flat tag index (addr -> line) shadows the tag
 * bits, maintained in fill() — the only place tags ever change. The
 * set index is mix64-hashed rather than addr % numSets: the raw
 * modulo correlates with the grid's home-column interleave
 * (addr % n), so whenever gcd(n, numSets) > 1 whole sets would go
 * unused for any single column's resident lines.
 */

#ifndef MCUBE_CACHE_CACHE_ARRAY_HH
#define MCUBE_CACHE_CACHE_ARRAY_HH

#include <cstdint>

#include "bus/bus_op.hh"
#include "cache/line_state.hh"
#include "cache/presence_filter.hh"
#include "sim/flat_map.hh"
#include "sim/hash.hh"
#include "sim/types.hh"
#include "sim/zeroed_array.hh"

namespace mcube
{

/** One cached coherency block. */
struct CacheLine
{
    Addr addr = 0;
    bool tagValid = false;       //!< tag meaningful (even if Invalid mode)
    Mode mode = Mode::Invalid;
    LineData data{};
    bool syncTail = false;       //!< this copy is the queue-lock tail
    std::uint64_t lruStamp = 0;  //!< larger = more recently used
};

/** Geometry of a cache array. */
struct CacheArrayParams
{
    std::size_t numSets = 64;
    unsigned assoc = 4;
};

/** A set-associative array of CacheLine. */
class CacheArray
{
  public:
    explicit CacheArray(const CacheArrayParams &params);

    /** Total line capacity. */
    std::size_t capacity() const { return lines.size(); }

    /** Set index of @p addr (mixed; see file comment). Exposed so
     *  tests can construct colliding / non-colliding address sets. */
    std::size_t
    setOf(Addr addr) const
    {
        std::size_t h = static_cast<std::size_t>(mix64(addr));
        return setMask ? (h & setMask) : h % params.numSets;
    }

    /**
     * Find the line holding @p addr (any mode as long as the tag is
     * valid). Does not update LRU. @return nullptr if absent. O(1)
     * via the tag index.
     */
    CacheLine *find(Addr addr);
    const CacheLine *find(Addr addr) const;

    /** find() + LRU touch. */
    CacheLine *touch(Addr addr);

    /**
     * Pick the slot that an allocation of @p addr would use: the
     * matching line if the tag is present, else an un-tagged way,
     * else the LRU way of the set. Never nullptr. The caller decides
     * what to do with the current occupant (e.g. write back a
     * modified victim) before overwriting.
     */
    CacheLine *allocSlot(Addr addr);

    /**
     * Install @p addr in @p slot (previously returned by allocSlot)
     * with the given mode/data, updating the tag, LRU, tag index and
     * the attached presence filter.
     */
    void fill(CacheLine *slot, Addr addr, Mode mode, const LineData &data);

    /** Mark the line's access time (LRU update) without other change. */
    void markUsed(CacheLine *line);

    /**
     * Attach a presence filter to be kept in sync with the tag
     * contents (add on install, remove on overwrite). Existing tags
     * are folded in. Pass nullptr to detach.
     */
    void setFilter(PresenceFilter *f);

    /** Visit every tag-valid line (for the checker / writeback-all).
     *  Templated: no std::function allocation per sweep. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &l : lines)
            if (l.tagValid)
                fn(l);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &l : lines)
            if (l.tagValid)
                fn(l);
    }

    /** Number of lines currently in Modified mode. */
    std::size_t countMode(Mode m) const;

  private:
    /** Linear-scan find, the pre-index reference implementation;
     *  debug builds assert the tag index agrees with it. */
    CacheLine *scanFind(Addr addr);

    CacheArrayParams params;
    /** numSets - 1 when numSets is a power of two (the common case),
     *  0 to fall back to the modulo in setOf(). */
    std::size_t setMask = 0;
    /** Lazily-zeroed: a zeroed CacheLine is a valid empty slot
     *  (tagValid false gates every read), so untouched sets never
     *  cost construction time or resident pages. */
    ZeroedArray<CacheLine> lines;
    /** addr -> index into lines, one entry per tag-valid line. Starts
     *  small and grows with actual occupancy, not capacity. */
    FlatMap<Addr, std::uint32_t> tagIndex;
    PresenceFilter *filter = nullptr;
    std::uint64_t stamp = 0;
};

} // namespace mcube

#endif // MCUBE_CACHE_CACHE_ARRAY_HH
