#include "cache/cache_array.hh"

#include <cassert>

namespace mcube
{

CacheArray::CacheArray(const CacheArrayParams &p) : params(p)
{
    assert(params.numSets > 0 && params.assoc > 0);
    if ((params.numSets & (params.numSets - 1)) == 0)
        setMask = params.numSets - 1;
    lines.reset(params.numSets * params.assoc);
}

CacheLine *
CacheArray::scanFind(Addr addr)
{
    std::size_t base = setOf(addr) * params.assoc;
    for (unsigned w = 0; w < params.assoc; ++w) {
        CacheLine &l = lines[base + w];
        if (l.tagValid && l.addr == addr)
            return &l;
    }
    return nullptr;
}

CacheLine *
CacheArray::find(Addr addr)
{
    const std::uint32_t *idx = tagIndex.find(addr);
    CacheLine *l = idx ? &lines[*idx] : nullptr;
    assert(l == scanFind(addr));
    return l;
}

const CacheLine *
CacheArray::find(Addr addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

CacheLine *
CacheArray::touch(Addr addr)
{
    CacheLine *l = find(addr);
    if (l)
        markUsed(l);
    return l;
}

CacheLine *
CacheArray::allocSlot(Addr addr)
{
    std::size_t base = setOf(addr) * params.assoc;
    CacheLine *lru = nullptr;
    for (unsigned w = 0; w < params.assoc; ++w) {
        CacheLine &l = lines[base + w];
        if (l.tagValid && l.addr == addr)
            return &l;
        if (!l.tagValid)
            return &l;
        if (!lru || l.lruStamp < lru->lruStamp)
            lru = &l;
    }
    assert(lru);
    return lru;
}

void
CacheArray::fill(CacheLine *slot, Addr addr, Mode mode,
                 const LineData &data)
{
    assert(slot);
    if (!slot->tagValid || slot->addr != addr) {
        if (slot->tagValid) {
            tagIndex.erase(slot->addr);
            if (filter)
                filter->remove(slot->addr);
        }
        // A tag is installed in exactly one slot (allocSlot returns a
        // matching line before anything else).
        assert(!tagIndex.contains(addr));
        tagIndex.ref(addr) =
            static_cast<std::uint32_t>(slot - lines.data());
        if (filter)
            filter->add(addr);
    }
    slot->addr = addr;
    slot->tagValid = true;
    slot->mode = mode;
    slot->data = data;
    slot->syncTail = false;
    slot->lruStamp = ++stamp;
}

void
CacheArray::markUsed(CacheLine *line)
{
    assert(line);
    line->lruStamp = ++stamp;
}

void
CacheArray::setFilter(PresenceFilter *f)
{
    filter = f;
    if (!filter)
        return;
    for (const auto &l : lines)
        if (l.tagValid)
            filter->add(l.addr);
}

std::size_t
CacheArray::countMode(Mode m) const
{
    std::size_t n = 0;
    for (const auto &l : lines)
        if (l.tagValid && l.mode == m)
            ++n;
    return n;
}

} // namespace mcube
