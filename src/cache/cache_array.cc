#include "cache/cache_array.hh"

#include <cassert>

namespace mcube
{

CacheArray::CacheArray(const CacheArrayParams &p) : params(p)
{
    assert(params.numSets > 0 && params.assoc > 0);
    lines.resize(params.numSets * params.assoc);
}

CacheLine *
CacheArray::find(Addr addr)
{
    std::size_t base = setOf(addr) * params.assoc;
    for (unsigned w = 0; w < params.assoc; ++w) {
        CacheLine &l = lines[base + w];
        if (l.tagValid && l.addr == addr)
            return &l;
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

CacheLine *
CacheArray::touch(Addr addr)
{
    CacheLine *l = find(addr);
    if (l)
        markUsed(l);
    return l;
}

CacheLine *
CacheArray::allocSlot(Addr addr)
{
    std::size_t base = setOf(addr) * params.assoc;
    CacheLine *lru = nullptr;
    for (unsigned w = 0; w < params.assoc; ++w) {
        CacheLine &l = lines[base + w];
        if (l.tagValid && l.addr == addr)
            return &l;
        if (!l.tagValid)
            return &l;
        if (!lru || l.lruStamp < lru->lruStamp)
            lru = &l;
    }
    assert(lru);
    return lru;
}

void
CacheArray::fill(CacheLine *slot, Addr addr, Mode mode,
                 const LineData &data)
{
    assert(slot);
    slot->addr = addr;
    slot->tagValid = true;
    slot->mode = mode;
    slot->data = data;
    slot->syncTail = false;
    slot->lruStamp = ++stamp;
}

void
CacheArray::markUsed(CacheLine *line)
{
    assert(line);
    line->lruStamp = ++stamp;
}

void
CacheArray::forEach(const std::function<void(CacheLine &)> &fn)
{
    for (auto &l : lines)
        if (l.tagValid)
            fn(l);
}

void
CacheArray::forEach(const std::function<void(const CacheLine &)> &fn) const
{
    for (const auto &l : lines)
        if (l.tagValid)
            fn(l);
}

std::size_t
CacheArray::countMode(Mode m) const
{
    std::size_t n = 0;
    for (const auto &l : lines)
        if (l.tagValid && l.mode == m)
            ++n;
    return n;
}

} // namespace mcube
