/**
 * @file
 * Per-cache line modes (Section 3) plus the sync extension states.
 */

#ifndef MCUBE_CACHE_LINE_STATE_HH
#define MCUBE_CACHE_LINE_STATE_HH

#include <cstdint>

namespace mcube
{

/**
 * Local mode of a line in a snooping cache.
 *
 * Section 3: "With respect to a particular cache, a line may be in one
 * of three local modes: shared, modified, or invalid." The Section 4
 * queue lock adds Reserved (space allocated while waiting in the
 * distributed lock queue, not yet readable or writable), and the
 * optional ALLOCATE early-write extension adds AllocPending — the
 * paper's "additional cache line state which signifies that the line
 * can be written locally, but that the modified line table has not
 * been updated".
 */
enum class Mode : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
    Reserved,
    AllocPending,
};

/** Printable mode name. */
inline const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Invalid: return "I";
      case Mode::Shared: return "S";
      case Mode::Modified: return "M";
      case Mode::Reserved: return "R";
      case Mode::AllocPending: return "A";
    }
    return "?";
}

/** Global state of a line (Section 3). */
enum class GlobalState : std::uint8_t
{
    Unmodified,  //!< memory is correct; copies may exist anywhere
    Modified,    //!< memory stale; exactly one cache holds the line
};

} // namespace mcube

#endif // MCUBE_CACHE_LINE_STATE_HH
