#include "cache/mlt.hh"

#include <algorithm>
#include <cassert>

#include "sim/profiler.hh"
#include "trace/trace_event.hh"

namespace mcube
{

namespace
{

void
traceMlt(EventQueue *eq, NodeId node, bool canonical, TracePhase phase,
         Addr addr, std::int64_t aux)
{
    if (!canonical || !eq)
        return;
    MCUBE_TRACE((TraceEvent{eq->now(), phase, TraceComp::Controller,
                            TxnType::Read, 0, node, invalidNode, addr,
                            0, 0, aux}));
}

} // namespace

ModifiedLineTable::ModifiedLineTable(const MltParams &p) : params(p)
{
    assert(params.numSets > 0 && params.assoc > 0);
    if ((params.numSets & (params.numSets - 1)) == 0)
        setMask = params.numSets - 1;
    slots.reset(params.numSets * params.assoc);
}

bool
ModifiedLineTable::contains(Addr addr) const
{
    std::size_t base = setOf(addr) * params.assoc;
    for (unsigned w = 0; w < params.assoc; ++w) {
        const Slot &s = slots[base + w];
        if (s.valid && s.addr == addr)
            return true;
    }
    return false;
}

std::optional<Addr>
ModifiedLineTable::insert(Addr addr)
{
    MCUBE_PROF_SCOPE(profScope, ProfKind::Mlt,
                     static_cast<std::uint32_t>(traceNode), {});
    std::size_t base = setOf(addr) * params.assoc;
    Slot *free_slot = nullptr;
    Slot *lru = nullptr;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Slot &s = slots[base + w];
        if (s.valid && s.addr == addr) {
            s.stamp = nextStamp++;
            return std::nullopt;
        }
        if (!s.valid && !free_slot)
            free_slot = &s;
        if (s.valid && (!lru || s.stamp < lru->stamp))
            lru = &s;
    }

    if (free_slot) {
        free_slot->addr = addr;
        free_slot->valid = true;
        free_slot->stamp = nextStamp++;
        ++live;
        peak = std::max(peak, live);
        if (filter)
            filter->add(addr);
        traceMlt(traceEq, traceNode, traceCanonical,
                 TracePhase::MltInsert, addr,
                 static_cast<std::int64_t>(live));
        return std::nullopt;
    }

    assert(lru);
    Addr evicted = lru->addr;
    lru->addr = addr;
    lru->stamp = nextStamp++;
    if (filter) {
        filter->remove(evicted);
        filter->add(addr);
    }
    traceMlt(traceEq, traceNode, traceCanonical, TracePhase::MltEvict,
             addr, static_cast<std::int64_t>(evicted));
    return evicted;
}

bool
ModifiedLineTable::remove(Addr addr)
{
    MCUBE_PROF_SCOPE(profScope, ProfKind::Mlt,
                     static_cast<std::uint32_t>(traceNode), {});
    std::size_t base = setOf(addr) * params.assoc;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Slot &s = slots[base + w];
        if (s.valid && s.addr == addr) {
            s.valid = false;
            --live;
            if (filter)
                filter->remove(addr);
            traceMlt(traceEq, traceNode, traceCanonical,
                     TracePhase::MltRemove, addr, 1);
            return true;
        }
    }
    traceMlt(traceEq, traceNode, traceCanonical, TracePhase::MltRemove,
             addr, 0);
    return false;
}

void
ModifiedLineTable::setFilter(PresenceFilter *f)
{
    filter = f;
    if (!filter)
        return;
    for (const auto &s : slots)
        if (s.valid)
            filter->add(s.addr);
}

bool
ModifiedLineTable::identicalTo(const ModifiedLineTable &other) const
{
    if (slots.size() != other.slots.size())
        return false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].valid != other.slots[i].valid)
            return false;
        if (slots[i].valid && slots[i].addr != other.slots[i].addr)
            return false;
    }
    return true;
}

} // namespace mcube
