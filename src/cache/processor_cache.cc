#include "cache/processor_cache.hh"

#include <cassert>

namespace mcube
{

ProcessorCache::ProcessorCache(const ProcessorCacheParams &p)
    : params(p), stats("l1")
{
    assert(params.numSets > 0 && params.assoc > 0);
    lines.resize(params.numSets * params.assoc);
    stats.addCounter("hits", statHits);
    stats.addCounter("misses", statMisses);
    stats.addCounter("purges", statPurges,
                     "inclusion purges from the snooping cache");
}

bool
ProcessorCache::lookup(Addr addr, std::uint64_t &token_out)
{
    std::size_t base = setOf(addr) * params.assoc;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.addr == addr) {
            l.stamp = nextStamp++;
            token_out = l.token;
            ++statHits;
            return true;
        }
    }
    ++statMisses;
    return false;
}

void
ProcessorCache::fill(Addr addr, std::uint64_t token)
{
    std::size_t base = setOf(addr) * params.assoc;
    Line *victim = nullptr;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.addr == addr) {
            l.token = token;
            l.stamp = nextStamp++;
            return;
        }
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.stamp < victim->stamp)
            victim = &l;
    }
    assert(victim);
    victim->addr = addr;
    victim->valid = true;
    victim->token = token;
    victim->stamp = nextStamp++;
}

void
ProcessorCache::writeThrough(Addr addr, std::uint64_t token)
{
    std::size_t base = setOf(addr) * params.assoc;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.addr == addr) {
            l.token = token;
            l.stamp = nextStamp++;
            return;
        }
    }
}

void
ProcessorCache::purge(Addr addr)
{
    std::size_t base = setOf(addr) * params.assoc;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.addr == addr) {
            l.valid = false;
            ++statPurges;
            return;
        }
    }
}

void
ProcessorCache::purgeAll()
{
    for (auto &l : lines)
        l.valid = false;
}

void
ProcessorCache::regStats(StatGroup &parent)
{
    parent.addChild(stats);
}

} // namespace mcube
