/**
 * @file
 * The first-level (SRAM) processor cache.
 *
 * Section 2: "a high-performance (SRAM) cache designed with the
 * traditional goal of minimizing memory latency. ... Consistency
 * between the two cache levels is maintained by using a write-through
 * strategy to assure that the processor cache is always a strict
 * subset of the snooping cache."
 *
 * The processor cache is purely a latency filter: it never appears on
 * a bus. The snooping-cache controller calls purge() whenever it
 * invalidates or evicts a line, preserving the subset property.
 */

#ifndef MCUBE_CACHE_PROCESSOR_CACHE_HH
#define MCUBE_CACHE_PROCESSOR_CACHE_HH

#include <cstdint>
#include <vector>

#include "bus/bus_op.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

/** Geometry and timing of a processor cache. */
struct ProcessorCacheParams
{
    std::size_t numSets = 128;
    unsigned assoc = 2;
    Tick hitTicks = 10;  //!< SRAM access latency
};

/** A small write-through first-level cache. */
class ProcessorCache
{
  public:
    explicit ProcessorCache(const ProcessorCacheParams &params);

    /**
     * Look up @p addr. On a hit the stored token is written to
     * @p token_out.
     * @return true on hit.
     */
    bool lookup(Addr addr, std::uint64_t &token_out);

    /** Install @p addr with @p token (called on L1 fill). */
    void fill(Addr addr, std::uint64_t token);

    /**
     * Write-through update: if present, update the token in place.
     * The write always proceeds to the snooping cache regardless.
     */
    void writeThrough(Addr addr, std::uint64_t token);

    /** Remove @p addr (inclusion enforcement from the L2). */
    void purge(Addr addr);

    /** Drop everything. */
    void purgeAll();

    Tick hitLatency() const { return params.hitTicks; }

    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }

    void regStats(StatGroup &parent);

  private:
    struct Line
    {
        Addr addr = 0;
        bool valid = false;
        std::uint64_t token = 0;
        std::uint64_t stamp = 0;
    };

    std::size_t setOf(Addr addr) const { return addr % params.numSets; }

    ProcessorCacheParams params;
    std::vector<Line> lines;
    std::uint64_t nextStamp = 1;

    Counter statHits;
    Counter statMisses;
    Counter statPurges;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_CACHE_PROCESSOR_CACHE_HH
