/**
 * @file
 * A counting presence filter over one controller's cache + MLT tags.
 *
 * The paper's buses broadcast every op to every attached agent, and
 * most agents answer "not mine" after a full set scan. The filter
 * gives Bus::deliver an O(1) fast-reject: one bit probe that says
 * either "definitely not present" or "maybe present".
 *
 * This is a *simulator* optimization, not a protocol change. The
 * contract is one-sided:
 *
 *  - false positives are harmless (the agent just snoops and finds
 *    nothing, exactly as without the filter);
 *  - false negatives are forbidden — a skipped snoop that would have
 *    matched corrupts the simulation. Counting (not a plain bitmap)
 *    makes removal exact, and debug builds shadow-check every reject
 *    against the real cache/MLT contents (SnoopController::Port::
 *    snoopRejects).
 *
 * One filter instance covers both the CacheArray tags and the MLT
 * entries of its controller; overlap (a line both cached and tabled)
 * is handled naturally by the counters.
 *
 * Layout matters more than asymptotics here. mightContain() runs once
 * per (bus op, attached agent) — the hottest read in the simulator —
 * so everything is stored INLINE in the filter object (which lives
 * inside the controller): a 128-byte query bitmap (bit b set iff
 * counts[b] != 0) backed by a 2 KiB bank of u16 counters. No heap
 * indirection means a query is one hash and one load from an object
 * the snoop path has already touched; across a 32x32 machine all
 * 1024 bitmaps together fit comfortably in a mid-level cache.
 *
 * The bucket count is deliberately FIXED (1024). A growable filter
 * was tried and rejected: keeping the bitmap heap-allocated so it
 * could be resized cost more per query (a dependent pointer chase
 * into memory with no reuse) than the set scans it was avoiding,
 * because the scans themselves usually read calloc's shared zero
 * page (see sim/zeroed_array.hh). With a fixed table the
 * false-positive rate simply degrades as entries pile up — at 1024
 * buckets a controller tracking L live lines answers "maybe" to
 * roughly 1 - exp(-L/1024) of foreign addresses, still a paying
 * trade for the occupancies the snooping caches reach in practice,
 * and still *correct* at any occupancy.
 */

#ifndef MCUBE_CACHE_PRESENCE_FILTER_HH
#define MCUBE_CACHE_PRESENCE_FILTER_HH

#include <cassert>
#include <cstdint>

#include "sim/hash.hh"
#include "sim/types.hh"

namespace mcube
{

/** Counting set-membership summary; see file comment. */
class PresenceFilter
{
  public:
    /** Bucket count; fixed — see file comment for why. */
    static constexpr std::size_t kBuckets = 1024;

    PresenceFilter() = default;

    /** Record @p addr (tag installed / MLT entry inserted). */
    void
    add(Addr addr)
    {
        std::size_t b = bucket(addr);
        assert(counts[b] != UINT16_MAX);
        ++counts[b];
        bits[b >> 6] |= std::uint64_t(1) << (b & 63);
        ++live;
    }

    /** Forget one occurrence of @p addr (tag overwritten / MLT entry
     *  removed). Must pair with an earlier add(). */
    void
    remove(Addr addr)
    {
        std::size_t b = bucket(addr);
        assert(counts[b] > 0);
        if (--counts[b] == 0)
            bits[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
        assert(live > 0);
        --live;
    }

    /** False means definitely absent; true means maybe present. */
    bool
    mightContain(Addr addr) const
    {
        std::size_t b = bucket(addr);
        return bits[b >> 6] >> (b & 63) & 1;
    }

    /** Live tracked entries (adds minus removes). */
    std::size_t size() const { return live; }

    /** Bucket count (fixed). */
    std::size_t capacity() const { return kBuckets; }

  private:
    static std::size_t
    bucket(Addr addr)
    {
        return mix64(addr) & (kBuckets - 1);
    }

    /** Query bitmap: bit b == (counts[b] != 0). 128 bytes. */
    std::uint64_t bits[kBuckets / 64] = {};
    /** Exact per-bucket occupancy, touched only on add/remove. */
    std::uint16_t counts[kBuckets] = {};
    std::size_t live = 0;
};

} // namespace mcube

#endif // MCUBE_CACHE_PRESENCE_FILTER_HH
