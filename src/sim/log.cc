#include "sim/log.hh"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

namespace mcube
{

namespace
{

std::unique_ptr<std::ofstream> gLogFile;
bool gLogFileInit = false;

} // namespace

std::uint32_t &
Log::mask()
{
    static std::uint32_t m = [] {
        std::uint32_t init = 0;
        if (const char *env = std::getenv("MCUBE_DEBUG")) {
            // Parse here to avoid ordering issues with static init.
            std::string spec(env);
            std::uint32_t bits = 0;
            std::size_t pos = 0;
            while (pos <= spec.size()) {
                std::size_t comma = spec.find(',', pos);
                std::string tok = spec.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                if (tok == "all")
                    bits = ~0u;
                else if (tok == "Bus")
                    bits |= static_cast<std::uint32_t>(LogCat::Bus);
                else if (tok == "Proto")
                    bits |= static_cast<std::uint32_t>(LogCat::Proto);
                else if (tok == "Cache")
                    bits |= static_cast<std::uint32_t>(LogCat::Cache);
                else if (tok == "Mem")
                    bits |= static_cast<std::uint32_t>(LogCat::Mem);
                else if (tok == "Proc")
                    bits |= static_cast<std::uint32_t>(LogCat::Proc);
                else if (tok == "Sync")
                    bits |= static_cast<std::uint32_t>(LogCat::Sync);
                else if (tok == "Check")
                    bits |= static_cast<std::uint32_t>(LogCat::Check);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            init = bits;
        }
        return init;
    }();
    return m;
}

void
Log::enableFromString(const std::string &spec)
{
    if (spec == "all") {
        mask() = ~0u;
        return;
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (tok == "Bus")
            enable(LogCat::Bus);
        else if (tok == "Proto")
            enable(LogCat::Proto);
        else if (tok == "Cache")
            enable(LogCat::Cache);
        else if (tok == "Mem")
            enable(LogCat::Mem);
        else if (tok == "Proc")
            enable(LogCat::Proc);
        else if (tok == "Sync")
            enable(LogCat::Sync);
        else if (tok == "Check")
            enable(LogCat::Check);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

void
Log::initFromEnv()
{
    // Touching mask() performs the lazy env parse.
    (void)mask();
}

std::ostream &
Log::sink()
{
    if (!gLogFileInit) {
        gLogFileInit = true;
        if (const char *env = std::getenv("MCUBE_DEBUG_FILE")) {
            auto f = std::make_unique<std::ofstream>(env, std::ios::app);
            if (f->is_open())
                gLogFile = std::move(f);
        }
    }
    return gLogFile ? *gLogFile : std::cerr;
}

void
Log::setFile(const std::string &path)
{
    gLogFileInit = true;
    if (path.empty()) {
        gLogFile.reset();
        return;
    }
    auto f = std::make_unique<std::ofstream>(path, std::ios::app);
    if (f->is_open())
        gLogFile = std::move(f);
    else
        gLogFile.reset();
}

void
Log::flush()
{
    sink().flush();
}

void
Log::emit(Tick when, const char *cat, const std::string &msg)
{
    // Parallel sweeps (src/sim/sweep_runner) may emit from several
    // simulation threads; keep each line atomic.
    static std::mutex emitLock;
    std::lock_guard<std::mutex> g(emitLock);
    sink() << when << ": [" << cat << "] " << msg << "\n";
}

} // namespace mcube
