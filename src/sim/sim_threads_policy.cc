#include "sim/sim_threads_policy.hh"

namespace mcube
{

SimThreadsDecision
resolveSimThreads(const SimThreadsRequest &req)
{
    SimThreadsDecision d;
    d.simThreads = req.simThreads;
    if (req.simThreads == 0)
        return d;

    auto force = [&d](const char *flag, const char *why) {
        d.warnings.push_back(std::string(flag) + " " + why
                             + "; forcing --sim-threads=0");
    };
    if (req.metricsSampling) {
        force("--metrics-out",
              "samples the live stat tree mid-run and requires the "
              "sequential engine");
    }
    if (req.faultDrop) {
        force("--fault-drop",
              "injects faults from a single RNG across bus lanes and "
              "requires the sequential engine");
    }
    if (req.faultPlan) {
        force("--fault-plan",
              "drives fail-stop reconfiguration on global state and "
              "requires the sequential engine");
    }
    if (!d.warnings.empty())
        d.simThreads = 0;
    return d;
}

} // namespace mcube
