/**
 * @file
 * An open-addressing flat hash map for simulator hot paths.
 *
 * std::unordered_map and std::map pay a heap allocation per node and a
 * pointer chase per probe; the tables on the delivery path (memory
 * backing store, bounce-chain counters, the checker's commit history,
 * cache tag indexes) are probed once per bus operation, so those costs
 * dominate large-grid runs. FlatMap stores slots contiguously:
 *
 *  - linear probing over a power-of-two table (mask, no modulo);
 *  - keys mixed through mix64 (sim/hash.hh), so sequential addresses
 *    and (node, addr) pairs spread evenly;
 *  - backward-shift deletion — no tombstones, so probe chains never
 *    grow from churn and iteration-free workloads stay O(1) per op;
 *  - ref() default-constructs missing values, matching the
 *    operator[] semantics the call sites were written against.
 *
 * Determinism: the table's *contents* are a pure function of the
 * insert/erase sequence. Nothing in the simulator iterates a FlatMap
 * in slot order to make decisions (forEach exists for dumps/tests
 * only), so replacing a std:: map with FlatMap is behaviour-neutral.
 */

#ifndef MCUBE_SIM_FLAT_MAP_HH
#define MCUBE_SIM_FLAT_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/hash.hh"

namespace mcube
{

/** Key hasher used by FlatMap: mix64 over the key's integer image. */
template <typename K>
struct FlatKeyHash
{
    std::uint64_t
    operator()(const K &k) const
    {
        return mix64(static_cast<std::uint64_t>(k));
    }
};

/** Pairs (e.g. (NodeId, Addr) request instances) mix both halves. */
template <typename A, typename B>
struct FlatKeyHash<std::pair<A, B>>
{
    std::uint64_t
    operator()(const std::pair<A, B> &p) const
    {
        return mix64(mix64(static_cast<std::uint64_t>(p.first))
                     ^ static_cast<std::uint64_t>(p.second));
    }
};

/**
 * The map. K needs operator== and a FlatKeyHash specialization; V
 * needs to be default-constructible and movable.
 */
template <typename K, typename V, typename Hash = FlatKeyHash<K>>
class FlatMap
{
  public:
    explicit FlatMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots.resize(cap);
        mask = cap - 1;
    }

    std::size_t size() const { return live; }
    bool empty() const { return live == 0; }

    /** Largest size() ever reached (high-water mark for stats). */
    std::size_t highWater() const { return peak; }

    /** Pointer to the value of @p key, or nullptr if absent. */
    V *
    find(const K &key)
    {
        std::size_t i = Hash{}(key)&mask;
        while (slots[i].used) {
            if (slots[i].key == key)
                return &slots[i].value;
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /**
     * Value of @p key, default-constructed and inserted if absent
     * (operator[] semantics).
     */
    V &
    ref(const K &key)
    {
        if (V *v = find(key))
            return *v;
        maybeGrow();
        std::size_t i = Hash{}(key)&mask;
        while (slots[i].used)
            i = (i + 1) & mask;
        slots[i].used = true;
        slots[i].key = key;
        slots[i].value = V{};
        ++live;
        if (live > peak)
            peak = live;
        return slots[i].value;
    }

    /** Insert-or-assign @p value under @p key. */
    void
    put(const K &key, V value)
    {
        ref(key) = std::move(value);
    }

    /**
     * Remove @p key. @return true if it was present. Uses
     * backward-shift deletion: every displaced element between the
     * hole and the end of the probe cluster slides back toward its
     * home slot, so no tombstones accumulate.
     */
    bool
    erase(const K &key)
    {
        std::size_t i = Hash{}(key)&mask;
        while (slots[i].used) {
            if (slots[i].key == key) {
                removeAt(i);
                return true;
            }
            i = (i + 1) & mask;
        }
        return false;
    }

    void
    clear()
    {
        for (auto &s : slots) {
            s.used = false;
            s.value = V{};
        }
        live = 0;
    }

    /** Visit every (key, value) pair; order is unspecified — for
     *  dumps and tests only, never for simulated decisions. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &s : slots)
            if (s.used)
                fn(s.key, s.value);
    }

  private:
    struct Slot
    {
        K key{};
        V value{};
        bool used = false;
    };

    void
    removeAt(std::size_t i)
    {
        assert(slots[i].used);
        // Backward shift: an element at j belongs in the hole at i iff
        // its home slot h is not inside (i, j] — i.e. the hole lies
        // within the element's probe path.
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (!slots[j].used)
                break;
            std::size_t h = Hash{}(slots[j].key) & mask;
            if (((j - h) & mask) >= ((j - i) & mask)) {
                slots[i].key = std::move(slots[j].key);
                slots[i].value = std::move(slots[j].value);
                i = j;
            }
        }
        slots[i].used = false;
        slots[i].value = V{};
        --live;
    }

    void
    maybeGrow()
    {
        // Grow at ~0.7 load to keep probe clusters short.
        if ((live + 1) * 10 < slots.size() * 7)
            return;
        std::vector<Slot> old = std::move(slots);
        slots.clear();
        slots.resize(old.size() * 2);
        mask = slots.size() - 1;
        for (auto &s : old) {
            if (!s.used)
                continue;
            std::size_t i = Hash{}(s.key)&mask;
            while (slots[i].used)
                i = (i + 1) & mask;
            slots[i].used = true;
            slots[i].key = std::move(s.key);
            slots[i].value = std::move(s.value);
        }
    }

    std::vector<Slot> slots;
    std::size_t mask = 0;
    std::size_t live = 0;
    std::size_t peak = 0;
};

} // namespace mcube

#endif // MCUBE_SIM_FLAT_MAP_HH
