/**
 * @file
 * A minimal JSON value type: parse, build, serialize.
 *
 * The repo deliberately has no external JSON dependency; the trace
 * exporters hand-format their output and trace_report hand-parses it.
 * The fuzz-campaign subsystem, though, needs *round-tripping* —
 * a repro artifact written by one process must deserialize into the
 * exact same FaultPlan / RandomTesterParams in another — so this file
 * provides one small tree-shaped value type shared by everything that
 * persists configuration.
 *
 * Integers are stored as 64-bit (signed or unsigned) and only fall
 * back to double when the text has a fraction or exponent, so 64-bit
 * seeds and tick values survive a round trip bit-exactly. Object keys
 * keep insertion order, which keeps artifacts diffable.
 */

#ifndef MCUBE_SIM_JSON_HH
#define MCUBE_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcube
{

/** One JSON value (null / bool / number / string / array / object). */
class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Unsigned,  //!< integral, stored as uint64
        Signed,    //!< integral and negative, stored as int64
        Double,    //!< had a fraction or exponent
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : _type(Type::Bool), _bool(b) {}
    Json(std::uint64_t v) : _type(Type::Unsigned), _uint(v) {}
    Json(std::int64_t v);
    Json(int v) : Json(static_cast<std::int64_t>(v)) {}
    Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(double v) : _type(Type::Double), _dbl(v) {}
    Json(const char *s) : _type(Type::String), _str(s) {}
    Json(std::string s) : _type(Type::String), _str(std::move(s)) {}

    static Json array() { Json j; j._type = Type::Array; return j; }
    static Json object() { Json j; j._type = Type::Object; return j; }

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isNumber() const
    {
        return _type == Type::Unsigned || _type == Type::Signed
            || _type == Type::Double;
    }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }
    bool isString() const { return _type == Type::String; }

    /** @{ Value accessors (zero/empty on type mismatch). */
    bool boolean() const { return _type == Type::Bool && _bool; }
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    double asDouble() const;
    const std::string &asString() const { return _str; }
    /** @} */

    /** @{ Array access. */
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    Json &push(Json v);
    /** @} */

    /** @{ Object access. at(key) returns a shared null for missing
     *  keys, so lookups chain safely over absent subtrees. */
    bool has(const std::string &key) const;
    const Json &at(const std::string &key) const;
    Json &set(const std::string &key, Json v);
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return _obj;
    }
    /** @} */

    /** @{ Typed object lookups with defaults. */
    std::uint64_t u64(const std::string &key, std::uint64_t dflt) const;
    std::int64_t i64(const std::string &key, std::int64_t dflt) const;
    double num(const std::string &key, double dflt) const;
    bool flag(const std::string &key, bool dflt) const;
    std::string str(const std::string &key,
                    const std::string &dflt = "") const;
    /** @} */

    /** Serialize; @p indent < 0 means compact single-line. */
    std::string dump(int indent = 2) const;

    /**
     * Parse @p text. On failure returns a Null value and, when
     * @p err is non-null, stores a message with the byte offset.
     */
    static Json parse(const std::string &text,
                      std::string *err = nullptr);

  private:
    void write(std::string &out, int indent, int depth) const;

    Type _type = Type::Null;
    bool _bool = false;
    std::uint64_t _uint = 0;
    std::int64_t _int = 0;
    double _dbl = 0.0;
    std::string _str;
    std::vector<Json> _arr;
    std::vector<std::pair<std::string, Json>> _obj;
};

} // namespace mcube

#endif // MCUBE_SIM_JSON_HH
