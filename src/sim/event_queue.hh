/**
 * @file
 * A minimal deterministic discrete-event queue.
 *
 * Events are arbitrary callables scheduled at an absolute tick. Events
 * scheduled for the same tick fire in scheduling order (a monotonic
 * sequence number breaks ties), which keeps simulations reproducible.
 *
 * The queue is the hottest structure in the simulator, so it avoids
 * the two classic costs of the obvious implementation:
 *
 *  - callables are stored in a small-buffer EventFn instead of a
 *    std::function, so the typical capture ([this, op]) never touches
 *    the heap; oversized callables transparently fall back to one
 *    allocation;
 *  - the priority queue is a 4-ary implicit heap over 24-byte
 *    (when, seq, slot) keys, with the callables parked in a stable,
 *    free-listed slab. Sift operations move only the small keys, never
 *    the callables.
 *
 * Scheduling an event in the past is a caller bug: sequentially it
 * asserts in debug builds and, in release builds, is clamped to now()
 * and counted in the `sched_past_tick` statistic so the condition
 * stays observable. Under the parallel engine (see below) the clamp
 * would silently mask a cross-shard causality violation, so a past
 * tick is a hard error (abort) there, in every build mode.
 *
 * The queue can optionally route through a ParallelEngine
 * (sim/parallel_engine.hh): when a MulticubeSystem is built with
 * simThreads > 0 the queue's schedules are sharded into per-bus-domain
 * lanes and executed window-by-window on a worker pool. Callers keep
 * using the same schedule()/run()/runUntil() surface; bus code uses
 * scheduleInLane() to pin its internal events to its lane, and
 * everything else lands on the serial lane.
 */

#ifndef MCUBE_SIM_EVENT_QUEUE_HH
#define MCUBE_SIM_EVENT_QUEUE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/profiler.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

class ParallelEngine;

/**
 * A move-only type-erased callable with inline small-buffer storage.
 *
 * Sized so every capture in the simulator (the largest is a BusOp
 * plus a pointer, or a completion callback plus a TxnResult) stays
 * inline; anything larger is heap-allocated behind the same
 * interface.
 */
class EventFn
{
  public:
    /** Inline capture storage, in bytes. */
    static constexpr std::size_t bufBytes = 104;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventFn(F &&f)  // NOLINT: intentional converting constructor
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            new (buf) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            new (buf) Fn *(new Fn(std::forward<F>(f)));
            ops = &heapOps<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const { return ops != nullptr; }

    void operator()() { ops->invoke(buf); }

    /** Whether callables of type @p Fn avoid the heap fallback. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= bufBytes
            && alignof(Fn) <= alignof(std::max_align_t)
            && std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct at @p dst from @p src, destroying @p src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static inline const Ops inlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            Fn *s = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static inline const Ops heapOps = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *dst, void *src) {
            new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
    };

    void
    moveFrom(EventFn &o) noexcept
    {
        ops = o.ops;
        if (ops) {
            ops->relocate(buf, o.buf);
            o.ops = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    const Ops *ops = nullptr;
    alignas(std::max_align_t) unsigned char buf[bufBytes];
};

/**
 * The central event queue driving a simulation.
 *
 * All model components share one queue; the owner calls run() or
 * runUntil() to advance simulated time.
 */
class EventQueue
{
  public:
    EventQueue()
    {
        // `executed` stays off the stat tree deliberately: harness
        // components (progress monitors, samplers) execute events of
        // their own, and stat-tree bit-identity checks must not be
        // sensitive to that. It remains visible via eventsExecuted().
        statsGrp.addCounter("sched_past_tick", statPastTick,
                            "schedules targeting a tick before now() "
                            "(clamped; a caller bug in debug builds)");
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (context-aware in parallel mode: the
     *  running event's tick on a worker lane). */
    Tick now() const { return par ? parNow() : _now; }

    /**
     * Attach (or detach, with nullptr) a parallel engine. While
     * attached, every schedule is routed to an engine lane — plain
     * schedule()/scheduleIn() to the serial lane, scheduleInLane() to
     * the named lane — and run()/runUntil() drive the engine's
     * window loop. Must only be flipped while the queue is idle.
     */
    void setParallel(ParallelEngine *p) { par = p; }

    /** The attached engine, if any. */
    ParallelEngine *parallel() const { return par; }

    /** True when schedules route through a parallel engine. */
    bool parallelActive() const { return par != nullptr; }

    /**
     * Schedule a callable at an absolute tick.
     *
     * @param when Absolute tick; must be >= now(). Sequentially a past
     *             tick asserts in debug builds and release builds
     *             clamp to now() and count the event in
     *             `sched_past_tick`; under the parallel engine a past
     *             tick aborts (it would be a cross-shard causality
     *             violation a clamp would silently mask).
     * @param f Callable to invoke.
     */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        if (par) {
            // Non-bus events (timers, callbacks, workload arrivals)
            // serialize on lane 0; see sim/parallel_engine.hh.
            parScheduleLane(0, when, EventFn(std::forward<F>(f)));
            return;
        }
        if (when < _now) {
            assert(when >= _now && "event scheduled in the past");
            ++statPastTick;
            when = _now;
        }
        if (SimProfiler *prof = SimProfiler::active())
            prof->onSchedule(when - _now);
        std::uint32_t slot;
        if (!freeSlots.empty()) {
            slot = freeSlots.back();
            freeSlots.pop_back();
            slots[slot] = EventFn(std::forward<F>(f));
        } else {
            slot = static_cast<std::uint32_t>(slots.size());
            slots.emplace_back(std::forward<F>(f));
        }
        heap.push_back(Key{when, nextSeq++, slot});
        siftUp(heap.size() - 1);
    }

    /** Schedule a callable @p delay ticks in the future. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&f)
    {
        schedule(now() + delay, std::forward<F>(f));
    }

    /**
     * Schedule a callable @p delay ticks in the future on engine lane
     * @p lane (used by buses for their internal arbitrate/deliver/
     * release events). Sequentially this is exactly scheduleIn().
     */
    template <typename F>
    void
    scheduleInLane(unsigned lane, Tick delay, F &&f)
    {
        if (!par) {
            schedule(_now + delay, std::forward<F>(f));
            return;
        }
        parScheduleLane(lane, parNow() + delay,
                        EventFn(std::forward<F>(f)));
    }

    /**
     * Schedule a callable @p delay ticks in the future on engine lane
     * @p lane, from *any* execution context. Sequentially this is
     * exactly scheduleIn(); under the parallel engine it is the
     * cross-lane counterpart of scheduleInLane(): when the calling
     * context is a different lane, the target tick is pushed out to
     * at least one window ahead so it can never land in the target
     * lane's past (lanes within a window advance independently).
     * Same-lane and coordinator-context schedules keep their exact
     * tick. Used to pin a node's completion callbacks and workload
     * self-scheduling to the node's home (row) lane.
     */
    template <typename F>
    void
    scheduleToLane(unsigned lane, Tick delay, F &&f)
    {
        if (!par) {
            schedule(_now + delay, std::forward<F>(f));
            return;
        }
        parScheduleToLane(lane, delay, EventFn(std::forward<F>(f)));
    }

    /**
     * True when the calling context runs on a parallel-engine lane
     * other than @p lane. Components pinned to a lane (buses) use this
     * to detect calls arriving from a foreign lane, which must be
     * deferred with deferToLane() instead of touching their state.
     */
    bool foreignLane(unsigned lane) const;

    /**
     * Defer @p fn to run under lane @p lane's context at the next
     * window barrier, in canonical cross-lane order (no-op wrapper
     * around an immediate call when no engine is attached).
     */
    void deferToLane(unsigned lane, EventFn fn);

    /** True if no events remain. */
    bool empty() const;

    /** Number of pending events in the sequential heap (lane-resident
     *  events are counted by the engine's telemetry instead). */
    std::size_t size() const { return heap.size(); }

    /** Total number of events ever executed. */
    std::uint64_t eventsExecuted() const;

    /** Schedules that targeted a past tick (clamped in release). */
    std::uint64_t schedPastTick() const { return statPastTick.value(); }

    /** Register the queue's counters under @p parent. */
    void regStats(StatGroup &parent) { parent.addChild(statsGrp); }

    /**
     * Run until the queue drains or @p limit events have executed.
     * @return number of events executed by this call.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Run until simulated time reaches @p end (events at exactly @p end
     * do fire), the queue drains, or @p limit events execute. Time is
     * left at @p end if the queue drained earlier. In parallel mode a
     * window is the smallest unit of work, so @p limit is honored at
     * window granularity (run() executes at least one whole window).
     * @return number of events executed by this call.
     */
    std::uint64_t runUntil(Tick end, std::uint64_t limit = UINT64_MAX);

  private:
    /** Out-of-line parallel-engine hooks (keep the header decoupled
     *  from parallel_engine.hh). */
    void parScheduleLane(unsigned lane, Tick when, EventFn fn);
    void parScheduleToLane(unsigned lane, Tick delay, EventFn fn);
    Tick parNow() const;
    bool parEmpty() const;
    /** Heap key: priority (when, seq) plus the owning slab slot. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Remove the root key, keeping the heap valid. */
    void popTop();

    /** 4-ary implicit min-heap of keys (see file comment). */
    std::vector<Key> heap;
    /** Stable slab of callables, indexed by Key::slot. */
    std::vector<EventFn> slots;
    std::vector<std::uint32_t> freeSlots;

    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    ParallelEngine *par = nullptr;

    Counter statExecuted;
    Counter statPastTick;
    StatGroup statsGrp{"eventq"};
};

} // namespace mcube

#endif // MCUBE_SIM_EVENT_QUEUE_HH
