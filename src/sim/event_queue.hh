/**
 * @file
 * A minimal deterministic discrete-event queue.
 *
 * Events are arbitrary callables scheduled at an absolute tick. Events
 * scheduled for the same tick fire in scheduling order (a monotonic
 * sequence number breaks ties), which keeps simulations reproducible.
 */

#ifndef MCUBE_SIM_EVENT_QUEUE_HH
#define MCUBE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace mcube
{

/**
 * The central event queue driving a simulation.
 *
 * All model components share one queue; the owner calls run() or
 * runUntil() to advance simulated time.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to invoke.
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < _now)
            when = _now;
        heap.push(Entry{when, nextSeq++, std::move(cb)});
    }

    /** Schedule a callback @p delay ticks in the future. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(_now + delay, std::move(cb));
    }

    /** True if no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap.size(); }

    /** Total number of events ever executed. */
    std::uint64_t eventsExecuted() const { return executed; }

    /**
     * Run until the queue drains or @p limit events have executed.
     * @return number of events executed by this call.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Run until simulated time reaches @p end (events at exactly @p end
     * do fire), the queue drains, or @p limit events execute. Time is
     * left at @p end if the queue drained earlier.
     * @return number of events executed by this call.
     */
    std::uint64_t runUntil(Tick end, std::uint64_t limit = UINT64_MAX);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace mcube

#endif // MCUBE_SIM_EVENT_QUEUE_HH
