/**
 * @file
 * Debug tracing with per-category flags, gem5 DPRINTF style.
 *
 * Tracing is off by default and costs one branch per site. Categories
 * are enabled programmatically (Log::enable) or via the MCUBE_DEBUG
 * environment variable, a comma-separated category list ("Bus,Proto" or
 * "all").
 *
 * Output goes to stderr by default. Set MCUBE_DEBUG_FILE=<path> (or
 * call Log::setFile) to append trace lines to a file instead — long
 * soak runs with tracing enabled would otherwise interleave with the
 * program's own stderr.
 */

#ifndef MCUBE_SIM_LOG_HH
#define MCUBE_SIM_LOG_HH

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace mcube
{

/** Trace categories, one bit each. */
enum class LogCat : std::uint32_t
{
    Bus = 1u << 0,
    Proto = 1u << 1,
    Cache = 1u << 2,
    Mem = 1u << 3,
    Proc = 1u << 4,
    Sync = 1u << 5,
    Check = 1u << 6,
};

/** Global trace configuration. */
class Log
{
  public:
    /** Enable one category. */
    static void enable(LogCat c) { mask() |= static_cast<uint32_t>(c); }

    /** Disable all categories. */
    static void disableAll() { mask() = 0; }

    /** Enable categories named in a comma-separated list ("all" works). */
    static void enableFromString(const std::string &spec);

    /** Read MCUBE_DEBUG once; called lazily from enabled(). */
    static void initFromEnv();

    static bool
    enabled(LogCat c)
    {
        return (mask() & static_cast<std::uint32_t>(c)) != 0;
    }

    /** Emit one trace line. Used by the MCUBE_LOG macro. */
    static void emit(Tick when, const char *cat, const std::string &msg);

    /**
     * Append trace output to @p path instead of stderr (the
     * programmatic form of MCUBE_DEBUG_FILE). An empty path reverts
     * to stderr; an unopenable path is ignored.
     */
    static void setFile(const std::string &path);

    /** Flush the active sink — called by the crash handler so a
     *  dying process does not strand buffered trace lines. */
    static void flush();

  private:
    static std::uint32_t &mask();
    static std::ostream &sink();
};

} // namespace mcube

/**
 * Trace macro: MCUBE_LOG(LogCat::Bus, queue.now(), "granted op " << op).
 * The stream expression is not evaluated unless the category is enabled.
 */
#define MCUBE_LOG(cat, when, expr)                                          \
    do {                                                                    \
        if (::mcube::Log::enabled(cat)) {                                   \
            std::ostringstream _mcube_oss;                                  \
            _mcube_oss << expr;                                             \
            ::mcube::Log::emit((when), #cat, _mcube_oss.str());             \
        }                                                                   \
    } while (0)

#endif // MCUBE_SIM_LOG_HH
