/**
 * @file
 * Fundamental simulator-wide scalar types and constants.
 */

#ifndef MCUBE_SIM_TYPES_HH
#define MCUBE_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace mcube
{

/** Simulated time. One tick is one nanosecond of simulated time. */
using Tick = std::uint64_t;

/** Largest representable tick, used as "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/**
 * A line address. Addresses are already line-granular throughout the
 * simulator: consecutive integers name consecutive coherency blocks.
 * Word offsets never matter for coherence, only for timing, which is
 * derived from the configured block size.
 */
using Addr = std::uint64_t;

/** Flat node identifier; node (row r, column c) in an n x n grid is
 *  r * n + c. */
using NodeId = std::uint32_t;

/** Sentinel for "no node" (e.g. a bus op originated by memory). */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

} // namespace mcube

#endif // MCUBE_SIM_TYPES_HH
