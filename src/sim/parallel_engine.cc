#include "sim/parallel_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/profiler.hh"
#include "trace/trace_event.hh"

namespace mcube
{

namespace
{

/** Peak resident-set high-water mark (VmHWM) in bytes, 0 where the
 *  kernel doesn't export it. The n=128 (16K processor) canary graphs
 *  this: at that scale memory, not host cycles, is the first wall. */
std::uint64_t
peakRssBytes()
{
#ifdef __linux__
    if (std::FILE *f = std::fopen("/proc/self/status", "r")) {
        char line[256];
        std::uint64_t kb = 0;
        while (std::fgets(line, sizeof line, f)) {
            if (std::strncmp(line, "VmHWM:", 6) == 0) {
                kb = std::strtoull(line + 6, nullptr, 10);
                break;
            }
        }
        std::fclose(f);
        return kb * 1024;
    }
#endif
    return 0;
}

/** Execution context of the calling thread: set while a lane event
 *  (or a merged cross-lane call) is running. */
struct ExecCtx
{
    ParallelEngine *eng = nullptr;
    unsigned lane = 0;
    Tick now = 0;
};

thread_local ExecCtx tlCtx;

std::uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

constexpr Tick kNoTick = static_cast<Tick>(-1);

} // namespace

/** A deferred cross-lane interaction (see mergeOutboxes). */
struct ParallelEngine::Outbox
{
    Tick when;
    std::uint32_t target;
    bool isCall;
    EventFn fn;
};

/**
 * One event-queue shard. Same layout idea as EventQueue: a 4-ary
 * implicit min-heap of small keys over a free-listed callable slab,
 * plus the lane's outbox of deferred cross-lane interactions.
 */
struct ParallelEngine::Lane
{
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    std::vector<Key> heap;
    std::vector<EventFn> slots;
    std::vector<std::uint32_t> freeSlots;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::vector<Outbox> outbox;

    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void
    siftUp(std::size_t i)
    {
        Key k = heap[i];
        while (i > 0) {
            std::size_t parent = (i - 1) >> 2;
            if (!before(k, heap[parent]))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = k;
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap.size();
        Key k = heap[i];
        for (;;) {
            std::size_t child = 4 * i + 1;
            if (child >= n)
                break;
            std::size_t best = child;
            std::size_t last = std::min(child + 4, n);
            for (std::size_t j = child + 1; j < last; ++j)
                if (before(heap[j], heap[best]))
                    best = j;
            if (!before(heap[best], k))
                break;
            heap[i] = heap[best];
            i = best;
        }
        heap[i] = k;
    }

    void
    popTop()
    {
        heap.front() = heap.back();
        heap.pop_back();
        if (!heap.empty())
            siftDown(0);
    }
};

ParallelEngine::ParallelEngine(EventQueue &eq, unsigned n,
                               unsigned workers, Tick window)
    : eq(eq), n_(n), workersRequested_(workers),
      workers_(std::max(1u, std::min(workers, n))),
      window_(std::max<Tick>(1, window))
{
    lanes.reserve(numLanes());
    for (unsigned i = 0; i < numLanes(); ++i)
        lanes.push_back(std::make_unique<Lane>());
    workerEvents_.assign(workers_, 0);
    threads.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
        threads.emplace_back([this, w] { workerMain(w); });
}

ParallelEngine::~ParallelEngine()
{
    {
        std::lock_guard<std::mutex> g(poolMutex);
        quit_ = true;
    }
    poolCv.notify_all();
    for (auto &t : threads)
        t.join();
}

Tick
ParallelEngine::ctxNow() const
{
    return tlCtx.eng == this ? tlCtx.now : now_;
}

unsigned
ParallelEngine::ctxLane() const
{
    return tlCtx.eng == this ? tlCtx.lane : UINT32_MAX;
}

void
ParallelEngine::fatalPastTick(unsigned lane, Tick when, Tick ref) const
{
    std::fprintf(stderr,
                 "mcube: fatal: event scheduled in the past under the "
                 "parallel engine (lane %u, when=%llu < now=%llu); "
                 "this is a cross-shard causality violation\n",
                 lane, static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(ref));
    std::abort();
}

void
ParallelEngine::pushEvent(Lane &lane, Tick when, EventFn fn)
{
    std::uint32_t slot;
    if (!lane.freeSlots.empty()) {
        slot = lane.freeSlots.back();
        lane.freeSlots.pop_back();
        lane.slots[slot] = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(lane.slots.size());
        lane.slots.push_back(std::move(fn));
    }
    lane.heap.push_back(Lane::Key{when, lane.nextSeq++, slot});
    lane.siftUp(lane.heap.size() - 1);
}

void
ParallelEngine::scheduleLane(unsigned lane, Tick when, EventFn fn)
{
    const Tick ref = ctxNow();
    if (when < ref)
        fatalPastTick(lane, when, ref);
    // Schedule-horizon feed, mirroring EventQueue::schedule: the
    // calling thread's active profiler is the running lane's shard
    // inside a phase, the main profiler otherwise.
    if (SimProfiler *p = SimProfiler::active())
        p->onSchedule(when - ref);
    if (tlCtx.eng == this && tlCtx.lane != lane) {
        // Foreign-lane schedule: defer through the issuing lane's
        // outbox; the destination seq is assigned at merge time so the
        // canonical order is independent of worker placement.
        lanes[tlCtx.lane]->outbox.push_back(
            Outbox{when, lane, false, std::move(fn)});
        return;
    }
    pushEvent(*lanes[lane], when, std::move(fn));
}

void
ParallelEngine::deferCall(unsigned lane, EventFn fn)
{
    if (tlCtx.eng != this) {
        // Coordinator between phases: workers are idle, direct access
        // is race-free — run inline under the target lane's context.
        ExecCtx saved = tlCtx;
        tlCtx = ExecCtx{this, lane, now_};
        fn();
        tlCtx = saved;
        return;
    }
    lanes[tlCtx.lane]->outbox.push_back(
        Outbox{tlCtx.now, lane, true, std::move(fn)});
}

void
ParallelEngine::runLane(unsigned lane_idx, Tick window_end)
{
    Lane &L = *lanes[lane_idx];
    // Install this lane's shard observers on the executing thread (a
    // worker or the coordinator) so MCUBE_TRACE / MCUBE_PROF_SCOPE
    // sites inside events record lane-locally; restored on exit.
    SimProfiler *prof =
        profShards_.empty() ? nullptr : profShards_[lane_idx].get();
    SimProfiler *prevProf = nullptr;
    if (prof)
        prevProf = SimProfiler::exchangeActive(prof);
    TransactionTracer *prevTracer = nullptr;
    const bool tracing = !traceShards_.empty();
    if (tracing)
        prevTracer = TransactionTracer::exchangeActive(
            traceShards_[lane_idx].get());
    ExecCtx saved = tlCtx;
    while (!L.heap.empty() && L.heap.front().when < window_end) {
        Lane::Key top = L.heap.front();
        L.popTop();
        // Move the callable out and free its slot before invoking: the
        // callback may schedule new events on this lane while it runs.
        EventFn fn = std::move(L.slots[top.slot]);
        L.freeSlots.push_back(top.slot);
        tlCtx = ExecCtx{this, lane_idx, top.when};
        if (prof) {
            prof->onExecute(top.when, L.heap.size() + 1,
                            L.slots.size(), L.freeSlots.size());
            ProfScope scope(prof, ProfKind::Event, 0, {});
            fn();
        } else {
            fn();
        }
        ++L.executed;
    }
    tlCtx = saved;
    if (prof)
        SimProfiler::exchangeActive(prevProf);
    if (tracing)
        TransactionTracer::exchangeActive(prevTracer);
}

void
ParallelEngine::workLoop(unsigned worker_id, std::uint64_t epoch_base,
                         unsigned first, unsigned count,
                         Tick window_end)
{
    for (;;) {
        std::uint64_t cur =
            claimWord_.load(std::memory_order_acquire);
        if ((cur >> 32) != (epoch_base >> 32))
            return; // the phase this thread woke up for is over
        const std::uint32_t t = static_cast<std::uint32_t>(cur);
        if (t >= count)
            return;
        if (!claimWord_.compare_exchange_weak(
                cur, cur + 1, std::memory_order_acq_rel,
                std::memory_order_acquire))
            continue;
        Lane &L = *lanes[first + t];
        const std::uint64_t before = L.executed;
        runLane(first + t, window_end);
        workerEvents_[worker_id] += L.executed - before;
        tasksDone_.fetch_add(1, std::memory_order_release);
    }
}

void
ParallelEngine::workerMain(unsigned worker_id)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t epoch;
        unsigned first, count;
        Tick end;
        {
            std::unique_lock<std::mutex> l(poolMutex);
            poolCv.wait(l,
                        [&] { return quit_ || phaseEpoch_ != seen; });
            if (quit_)
                return;
            epoch = phaseEpoch_;
            seen = epoch;
            first = phaseFirst_;
            count = phaseCount_;
            end = phaseEnd_;
        }
        workLoop(worker_id, epoch << 32, first, count, end);
    }
}

void
ParallelEngine::runPhase(unsigned first, unsigned count, Tick window_end,
                         std::uint64_t &phase_ns)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (threads.empty() || count <= 1) {
        for (unsigned i = 0; i < count; ++i) {
            Lane &L = *lanes[first + i];
            const std::uint64_t before = L.executed;
            runLane(first + i, window_end);
            workerEvents_[0] += L.executed - before;
        }
    } else {
        std::uint64_t epoch;
        {
            std::lock_guard<std::mutex> g(poolMutex);
            epoch = ++phaseEpoch_;
            phaseFirst_ = first;
            phaseCount_ = count;
            phaseEnd_ = window_end;
            tasksDone_.store(0, std::memory_order_relaxed);
            claimWord_.store(epoch << 32,
                             std::memory_order_release);
        }
        poolCv.notify_all();
        workLoop(0, epoch << 32, first, count, window_end);
        // Wait for every *claimed* lane to finish — not for straggler
        // threads to wake up; late workers fail the epoch check in
        // workLoop and go back to sleep on their own.
        const auto tw = std::chrono::steady_clock::now();
        while (tasksDone_.load(std::memory_order_acquire) != count)
            std::this_thread::yield();
        barrierWaitNs_ += nsSince(tw);
    }
    ++parallelPhases_;
    phase_ns += nsSince(t0);
}

void
ParallelEngine::mergeOutboxes()
{
    // Loop until quiescent: a merged call could in principle append
    // fresh entries to its own lane's outbox.
    for (;;) {
        mergeScratch.clear();
        for (std::uint32_t li = 0; li < lanes.size(); ++li) {
            const auto &ob = lanes[li]->outbox;
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(ob.size()); ++i)
                mergeScratch.push_back(MergeRef{ob[i].when, li, i});
        }
        if (mergeScratch.empty())
            return;
        std::sort(mergeScratch.begin(), mergeScratch.end(),
                  [](const MergeRef &a, const MergeRef &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.srcLane != b.srcLane)
                          return a.srcLane < b.srcLane;
                      return a.srcIdx < b.srcIdx;
                  });
        // Remember how much of each outbox this pass consumes; entries
        // appended while applying are handled by the next pass.
        std::vector<std::size_t> consumed(lanes.size());
        for (std::size_t li = 0; li < lanes.size(); ++li)
            consumed[li] = lanes[li]->outbox.size();
        ExecCtx saved = tlCtx;
        const bool observed =
            !profShards_.empty() || !traceShards_.empty();
        for (const MergeRef &m : mergeScratch) {
            Outbox &e = lanes[m.srcLane]->outbox[m.srcIdx];
            tlCtx = ExecCtx{this, e.target, e.when};
            if (e.isCall) {
                if (observed) {
                    // Record under the *target* lane's shards so the
                    // canonical window-end merge orders these events
                    // exactly like lane-executed ones.
                    SimProfiler *pp =
                        profShards_.empty()
                            ? SimProfiler::exchangeActive(nullptr)
                            : SimProfiler::exchangeActive(
                                  profShards_[e.target].get());
                    TransactionTracer *pt =
                        traceShards_.empty()
                            ? TransactionTracer::exchangeActive(nullptr)
                            : TransactionTracer::exchangeActive(
                                  traceShards_[e.target].get());
                    e.fn();
                    SimProfiler::exchangeActive(pp);
                    TransactionTracer::exchangeActive(pt);
                } else {
                    e.fn();
                }
            } else {
                pushEvent(*lanes[e.target], e.when, std::move(e.fn));
            }
            ++crossLaneOps_;
        }
        tlCtx = saved;
        for (std::size_t li = 0; li < lanes.size(); ++li) {
            auto &ob = lanes[li]->outbox;
            ob.erase(ob.begin(),
                     ob.begin()
                         + static_cast<std::ptrdiff_t>(consumed[li]));
        }
    }
}

void
ParallelEngine::syncObservers()
{
    mainProf_ = SimProfiler::active();
    if (mainProf_ && profShards_.empty()) {
        profShards_.reserve(numLanes());
        for (unsigned i = 0; i < numLanes(); ++i)
            profShards_.push_back(std::make_unique<SimProfiler>());
    } else if (!mainProf_ && !profShards_.empty()) {
        profShards_.clear();
    }

    mainTracer_ = TransactionTracer::active();
    if (mainTracer_ && traceShards_.empty()) {
        traceShards_.reserve(numLanes());
        for (unsigned i = 0; i < numLanes(); ++i)
            traceShards_.push_back(std::make_unique<TransactionTracer>(
                mainTracer_->capacity()));
    } else if (!mainTracer_ && !traceShards_.empty()) {
        traceShards_.clear();
    }
}

void
ParallelEngine::mergeObservers()
{
    if (mainProf_)
        for (auto &shard : profShards_) {
            mainProf_->absorb(*shard);
            shard->reset();
        }

    if (!mainTracer_)
        return;
    traceScratch_.clear();
    for (std::uint32_t li = 0; li < traceShards_.size(); ++li) {
        const TransactionTracer &tr = *traceShards_[li];
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(tr.size()); ++i)
            traceScratch_.push_back(TraceRef{tr.at(i).tick, li, i});
    }
    if (traceScratch_.empty())
        return;
    // Canonical order: (tick, lane, intra-lane record order) — a
    // total order with no dependence on worker placement, so the main
    // ring's contents are bit-identical for any --sim-threads.
    std::sort(traceScratch_.begin(), traceScratch_.end(),
              [](const TraceRef &a, const TraceRef &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.lane != b.lane)
                      return a.lane < b.lane;
                  return a.idx < b.idx;
              });
    for (const TraceRef &r : traceScratch_)
        mainTracer_->record(traceShards_[r.lane]->at(r.idx));
    for (auto &shard : traceShards_)
        shard->clear();
}

Tick
ParallelEngine::earliestEvent() const
{
    Tick best = kNoTick;
    for (const auto &l : lanes)
        if (!l->heap.empty() && l->heap.front().when < best)
            best = l->heap.front().when;
    return best;
}

void
ParallelEngine::runWindow(Tick window_end)
{
    const auto countRange = [this](unsigned first, unsigned count) {
        std::uint64_t tot = 0;
        for (unsigned i = 0; i < count; ++i)
            tot += lanes[first + i]->executed;
        return tot;
    };

    std::uint64_t mark = countRange(1, n_);
    runPhase(1, n_, window_end, rowPhaseNs_);
    rowEvents_ += countRange(1, n_) - mark;
    const auto tm0 = std::chrono::steady_clock::now();
    mergeOutboxes();
    serialNs_ += nsSince(tm0);

    mark = countRange(1 + n_, n_);
    runPhase(1 + n_, n_, window_end, colPhaseNs_);
    colEvents_ += countRange(1 + n_, n_) - mark;

    // Merges and the serial lane all run single-threaded on the
    // coordinator; they are the engine's serial fraction.
    const auto tm1 = std::chrono::steady_clock::now();
    mergeOutboxes();
    mark = lanes[serialLane]->executed;
    runLane(serialLane, window_end);
    serialEvents_ += lanes[serialLane]->executed - mark;
    mergeOutboxes();
    // Every deferral of the window has been applied: the state is the
    // quiescent post-window state. Global validators run now.
    for (const auto &hook : barrierHooks)
        hook();
    mergeObservers();
    serialNs_ += nsSince(tm1);

    ++windows_;
    std::uint64_t tot = 0;
    for (const auto &l : lanes)
        tot += l->executed;
    executedTotal_.store(tot, std::memory_order_relaxed);
    if (progressHook && windows_ % progressEvery == 0)
        progressHook();
}

std::uint64_t
ParallelEngine::runUntil(Tick end)
{
    const auto t0 = std::chrono::steady_clock::now();
    syncObservers();
    const std::uint64_t startTotal =
        executedTotal_.load(std::memory_order_relaxed);
    for (;;) {
        const Tick e = earliestEvent();
        if (e == kNoTick || e > end)
            break;
        if (e > now_)
            now_ = e; // skip an empty stretch in one jump
        if (end > now_ && end - now_ >= window_) {
            const Tick we = now_ + window_;
            runWindow(we);
            now_ = we;
        } else {
            // Final (partial) window: events at exactly `end` fire.
            runWindow(end + 1);
            if (now_ < end)
                now_ = end;
        }
    }
    if (now_ < end)
        now_ = end;
    wallNs_ += nsSince(t0);
    return executedTotal_.load(std::memory_order_relaxed) - startTotal;
}

std::uint64_t
ParallelEngine::runOneWindow()
{
    const Tick e = earliestEvent();
    if (e == kNoTick)
        return 0;
    const auto t0 = std::chrono::steady_clock::now();
    syncObservers();
    const std::uint64_t startTotal =
        executedTotal_.load(std::memory_order_relaxed);
    if (e > now_)
        now_ = e;
    const Tick we = now_ + window_;
    runWindow(we);
    now_ = we;
    wallNs_ += nsSince(t0);
    return executedTotal_.load(std::memory_order_relaxed) - startTotal;
}

bool
ParallelEngine::empty() const
{
    for (const auto &l : lanes)
        if (!l->heap.empty() || !l->outbox.empty())
            return false;
    return true;
}

double
ParallelEngine::Telemetry::parallelFracEvents() const
{
    return events ? double(rowEvents + colEvents) / double(events) : 0.0;
}

double
ParallelEngine::Telemetry::serialFracEvents() const
{
    return events ? double(serialEvents) / double(events) : 0.0;
}

double
ParallelEngine::Telemetry::serialEventsPerWindow() const
{
    return windows ? double(serialEvents) / double(windows) : 0.0;
}

double
ParallelEngine::Telemetry::serialNsPerWindow() const
{
    return windows ? double(serialNs) / double(windows) : 0.0;
}

double
ParallelEngine::Telemetry::parallelFracNs() const
{
    const std::uint64_t par_ns = rowPhaseNs + colPhaseNs;
    const std::uint64_t tot = par_ns + serialNs;
    return tot ? double(par_ns) / double(tot) : 0.0;
}

double
ParallelEngine::Telemetry::imbalance() const
{
    // Event counts stand in for per-lane busy time: lanes run
    // homogeneous bus events, so counts track load closely.
    std::uint64_t mx = 0, sum = 0, nlanes = 0;
    for (std::size_t i = 1; i < laneEvents.size(); ++i) {
        mx = std::max(mx, laneEvents[i]);
        sum += laneEvents[i];
        ++nlanes;
    }
    if (!nlanes || !sum)
        return 1.0;
    const double mean = double(sum) / double(nlanes);
    return mean > 0.0 ? double(mx) / mean : 1.0;
}

double
ParallelEngine::Telemetry::projectedSpeedup(unsigned k) const
{
    const double pf = parallelFracNs();
    return amdahlSpeedup(1.0 - pf, pf, imbalance(), k);
}

ParallelEngine::Telemetry
ParallelEngine::telemetry() const
{
    Telemetry t;
    t.workersRequested = workersRequested_;
    t.workersEffective = workers_;
    t.windowTicks = window_;
    t.windows = windows_;
    t.parallelPhases = parallelPhases_;
    t.events = executedTotal_.load(std::memory_order_relaxed);
    t.serialEvents = serialEvents_;
    t.rowEvents = rowEvents_;
    t.colEvents = colEvents_;
    t.crossLaneOps = crossLaneOps_;
    t.wallNs = wallNs_;
    t.serialNs = serialNs_;
    t.rowPhaseNs = rowPhaseNs_;
    t.colPhaseNs = colPhaseNs_;
    t.barrierWaitNs = barrierWaitNs_;
    t.peakRssBytes = peakRssBytes();
    t.laneEvents.reserve(lanes.size());
    for (const auto &l : lanes)
        t.laneEvents.push_back(l->executed);
    t.workerEvents = workerEvents_;
    return t;
}

void
ParallelEngine::telemetryJson(std::ostream &os) const
{
    const Telemetry t = telemetry();
    os << "{\n";
    os << "  \"workers_requested\": " << t.workersRequested << ",\n";
    os << "  \"workers_effective\": " << t.workersEffective << ",\n";
    os << "  \"window_ticks\": " << t.windowTicks << ",\n";
    os << "  \"windows\": " << t.windows << ",\n";
    os << "  \"parallel_phases\": " << t.parallelPhases << ",\n";
    os << "  \"events\": " << t.events << ",\n";
    os << "  \"serial_events\": " << t.serialEvents << ",\n";
    os << "  \"row_events\": " << t.rowEvents << ",\n";
    os << "  \"col_events\": " << t.colEvents << ",\n";
    os << "  \"cross_lane_ops\": " << t.crossLaneOps << ",\n";
    os << "  \"wall_ns\": " << t.wallNs << ",\n";
    os << "  \"serial_ns\": " << t.serialNs << ",\n";
    os << "  \"row_phase_ns\": " << t.rowPhaseNs << ",\n";
    os << "  \"col_phase_ns\": " << t.colPhaseNs << ",\n";
    os << "  \"barrier_wait_ns\": " << t.barrierWaitNs << ",\n";
    os << "  \"peak_rss_bytes\": " << t.peakRssBytes << ",\n";
    // Serial-lane pressure as first-class columns: the quantity the
    // per-node home-lane sharding shrinks (docs/PERFORMANCE.md).
    os << "  \"serial_frac_events\": " << t.serialFracEvents()
       << ",\n";
    os << "  \"serial_events_per_window\": "
       << t.serialEventsPerWindow() << ",\n";
    os << "  \"serial_ns_per_window\": " << t.serialNsPerWindow()
       << ",\n";
    os << "  \"parallel_frac_events\": " << t.parallelFracEvents()
       << ",\n";
    os << "  \"parallel_frac_ns\": " << t.parallelFracNs() << ",\n";
    os << "  \"imbalance\": " << t.imbalance() << ",\n";
    os << "  \"projected_speedup_at_workers\": "
       << t.projectedSpeedup(t.workersEffective) << ",\n";
    os << "  \"lane_events\": [";
    for (std::size_t i = 0; i < t.laneEvents.size(); ++i)
        os << (i ? ", " : "") << t.laneEvents[i];
    os << "],\n";
    os << "  \"worker_events\": [";
    for (std::size_t i = 0; i < t.workerEvents.size(); ++i)
        os << (i ? ", " : "") << t.workerEvents[i];
    os << "]\n";
    os << "}\n";
}

} // namespace mcube
