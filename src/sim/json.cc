#include "sim/json.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mcube
{

namespace
{

const Json nullJson{};

} // namespace

Json::Json(std::int64_t v)
{
    if (v >= 0) {
        _type = Type::Unsigned;
        _uint = static_cast<std::uint64_t>(v);
    } else {
        _type = Type::Signed;
        _int = v;
    }
}

std::uint64_t
Json::asU64() const
{
    switch (_type) {
      case Type::Unsigned:
        return _uint;
      case Type::Signed:
        return _int < 0 ? 0 : static_cast<std::uint64_t>(_int);
      case Type::Double:
        return _dbl < 0 ? 0 : static_cast<std::uint64_t>(_dbl);
      default:
        return 0;
    }
}

std::int64_t
Json::asI64() const
{
    switch (_type) {
      case Type::Unsigned:
        return static_cast<std::int64_t>(_uint);
      case Type::Signed:
        return _int;
      case Type::Double:
        return static_cast<std::int64_t>(_dbl);
      default:
        return 0;
    }
}

double
Json::asDouble() const
{
    switch (_type) {
      case Type::Unsigned:
        return static_cast<double>(_uint);
      case Type::Signed:
        return static_cast<double>(_int);
      case Type::Double:
        return _dbl;
      default:
        return 0.0;
    }
}

std::size_t
Json::size() const
{
    if (_type == Type::Array)
        return _arr.size();
    if (_type == Type::Object)
        return _obj.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    if (_type != Type::Array || i >= _arr.size())
        return nullJson;
    return _arr[i];
}

Json &
Json::push(Json v)
{
    _type = Type::Array;
    _arr.push_back(std::move(v));
    return *this;
}

bool
Json::has(const std::string &key) const
{
    for (const auto &[k, v] : _obj)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    for (const auto &[k, v] : _obj)
        if (k == key)
            return v;
    return nullJson;
}

Json &
Json::set(const std::string &key, Json v)
{
    _type = Type::Object;
    for (auto &[k, old] : _obj) {
        if (k == key) {
            old = std::move(v);
            return *this;
        }
    }
    _obj.emplace_back(key, std::move(v));
    return *this;
}

std::uint64_t
Json::u64(const std::string &key, std::uint64_t dflt) const
{
    const Json &v = at(key);
    return v.isNumber() ? v.asU64() : dflt;
}

std::int64_t
Json::i64(const std::string &key, std::int64_t dflt) const
{
    const Json &v = at(key);
    return v.isNumber() ? v.asI64() : dflt;
}

double
Json::num(const std::string &key, double dflt) const
{
    const Json &v = at(key);
    return v.isNumber() ? v.asDouble() : dflt;
}

bool
Json::flag(const std::string &key, bool dflt) const
{
    const Json &v = at(key);
    return v.type() == Type::Bool ? v.boolean() : dflt;
}

std::string
Json::str(const std::string &key, const std::string &dflt) const
{
    const Json &v = at(key);
    return v.isString() ? v.asString() : dflt;
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

namespace
{

void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::write(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent < 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    char buf[40];
    switch (_type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += _bool ? "true" : "false";
        break;
      case Type::Unsigned:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, _uint);
        out += buf;
        break;
      case Type::Signed:
        std::snprintf(buf, sizeof(buf), "%" PRId64, _int);
        out += buf;
        break;
      case Type::Double:
        if (std::isfinite(_dbl)) {
            // %.17g guarantees an exact double round trip.
            std::snprintf(buf, sizeof(buf), "%.17g", _dbl);
            out += buf;
        } else {
            out += "null";
        }
        break;
      case Type::String:
        writeEscaped(out, _str);
        break;
      case Type::Array:
        if (_arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < _arr.size(); ++i) {
            if (i)
                out += indent < 0 ? "," : ", ";
            _arr[i].write(out, -1, depth + 1);  // arrays stay inline
        }
        out += ']';
        break;
      case Type::Object:
        if (_obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < _obj.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            if (indent < 0 && i)
                out += ' ';
            writeEscaped(out, _obj[i].first);
            out += indent < 0 ? ":" : ": ";
            _obj[i].second.write(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent >= 0)
        out += '\n';
    return out;
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

namespace
{

struct Parser
{
    /**
     * Nesting cap. parseValue() recurses per '['/'{'; without a
     * limit a *corrupt or adversarial* artifact of a few kilobytes
     * of open brackets overflows the stack — undefined behaviour in
     * the exact code path that is supposed to reject bad input.
     * Real artifacts nest ~4 deep; 64 is generous.
     */
    static constexpr int kMaxDepth = 64;

    const std::string &text;
    std::size_t pos = 0;
    std::string err;
    int depth = 0;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) != 0)
            return fail("bad literal");
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("bad escape");
            char e = text[pos++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("bad \\u escape");
                unsigned v = static_cast<unsigned>(std::strtoul(
                    text.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                // Artifacts only contain ASCII; encode low code
                // points directly, anything else as '?'.
                out += v < 0x80 ? static_cast<char>(v) : '?';
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;  // closing quote
        return true;
    }

    bool
    parseNumber(Json &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool integral = true;
        while (pos < text.size()) {
            char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-'
                       || c == '+') {
                if (c == '.' || c == 'e' || c == 'E')
                    integral = false;
                ++pos;
            } else {
                break;
            }
        }
        std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            return fail("bad number");
        if (integral) {
            if (tok[0] == '-')
                out = Json(static_cast<std::int64_t>(
                    std::strtoll(tok.c_str(), nullptr, 10)));
            else
                out = Json(static_cast<std::uint64_t>(
                    std::strtoull(tok.c_str(), nullptr, 10)));
        } else {
            out = Json(std::strtod(tok.c_str(), nullptr));
        }
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if ((c == '{' || c == '[') && depth >= kMaxDepth)
            return fail("nesting too deep");
        DepthGuard guard(*this, c == '{' || c == '[');
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Json v;
                if (!parseValue(v))
                    return false;
                out.set(key, std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                Json v;
                if (!parseValue(v))
                    return false;
                out.push(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Json(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Json(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Json();
            return true;
        }
        return parseNumber(out);
    }

    struct DepthGuard
    {
        DepthGuard(Parser &p, bool counts) : p(p), counts(counts)
        {
            if (counts)
                ++p.depth;
        }
        ~DepthGuard()
        {
            if (counts)
                --p.depth;
        }
        Parser &p;
        bool counts;
    };
};

} // namespace

Json
Json::parse(const std::string &text, std::string *err)
{
    Parser p{text, 0, {}};
    Json out;
    if (!p.parseValue(out)) {
        if (err)
            *err = p.err;
        return Json();
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing content at offset "
                 + std::to_string(p.pos);
        return Json();
    }
    if (err)
        err->clear();
    return out;
}

} // namespace mcube
