/**
 * @file
 * Self-profiling for the simulator: where does *host* time go, and
 * how parallelizable is the grid really?
 *
 * Three concerns share one subsystem because they share one hook set:
 *
 *  - a scoped wall-clock profiler attributing host nanoseconds to
 *    event kinds (event loop, bus arbitration/delivery, controller
 *    snoops, MLT, memory, checker, fault injector), to individual
 *    components, and to event *domains* (row bus i / column bus j) —
 *    the call tree accumulates into a path trie exported as JSON and
 *    as folded stacks (flamegraph.pl compatible);
 *  - an event-queue profile: heap depth per executed event, same-tick
 *    batch sizes, slab/free-list occupancy, and the schedule-horizon
 *    distribution (how far ahead events are scheduled — the raw
 *    material of any conservative-parallel lookahead argument);
 *  - a coupling analyzer: every bus grant is classified as
 *    intra-domain or cross-domain using the domain context the op was
 *    *enqueued* from, yielding the parallelizable event fraction,
 *    per-domain load imbalance, the minimum observed enqueue-to-
 *    delivery latency (the safe conservative lookahead bound), and an
 *    Amdahl-style projected speedup for k shards under row-stripe and
 *    column-stripe decompositions.
 *
 * Cost contract (same discipline as MCUBE_TRACE / MCUBE_LOG): when no
 * profiler is active every hook is one thread-local pointer load and
 * a branch; no clock is read, nothing allocates. The profiler never
 * touches simulated state or any Random stream, so fixed-seed runs
 * are bit-identical with profiling on or off — enforced by
 * profiler_test and by the sim_n32 / sim_n32_prof bench pair.
 *
 * The active profiler is *per thread* (activate() installs into a
 * thread_local slot): a profiled point inside a parallel sweep never
 * observes — or races with — sibling worker threads.
 */

#ifndef MCUBE_SIM_PROFILER_HH
#define MCUBE_SIM_PROFILER_HH

#include <array>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

class Json;

/** What a profiled scope is doing (the "kind" axis of the trie). */
enum class ProfKind : std::uint8_t
{
    Event,       //!< one event-queue callback (the root of most work)
    BusArb,      //!< Bus::tryArbitrate (grant decision + scheduling)
    BusDeliver,  //!< Bus::deliver two-pass broadcast
    CtrlSnoop,   //!< SnoopController port snoop (row or column)
    Mlt,         //!< MLT insert/remove bookkeeping
    Memory,      //!< MemoryModule::snoop (serve/update/bounce)
    Checker,     //!< coherence checker sweep / per-op check
    Fault,       //!< fault injector enqueue hook
    NumKinds,
};

const char *toString(ProfKind kind);

/**
 * Amdahl-style speedup for @p k shards: 1 / (serial + parallel *
 * imbalance / k), capped at k. Shared by the coupling analyzer's
 * projection (ShardingView::speedupAt) and the parallel engine's
 * realized-vs-projected telemetry (ParallelEngine::Telemetry), so the
 * two always agree on the model.
 */
double amdahlSpeedup(double serial_frac, double parallel_frac,
                     double imbalance, unsigned k);

/**
 * The domain an event belongs to: one row bus, one column bus, or
 * none (workload callbacks, timers, anything not tied to a bus).
 */
struct ProfDomain
{
    enum class Dim : std::uint8_t { None = 0, Row = 1, Col = 2 };

    Dim dim = Dim::None;
    std::uint16_t index = 0;

    bool operator==(const ProfDomain &o) const
    {
        return dim == o.dim && index == o.index;
    }
    bool operator!=(const ProfDomain &o) const { return !(*this == o); }
};

/**
 * The profiler. Construct, activate(), run the simulation, then
 * export. At most one profiler is active per *thread*.
 */
class SimProfiler
{
  public:
    SimProfiler();
    ~SimProfiler();

    SimProfiler(const SimProfiler &) = delete;
    SimProfiler &operator=(const SimProfiler &) = delete;

    /** Install as this thread's active profiler (replacing any). */
    void activate();

    /** Detach (hooks become no-ops again). Idempotent. */
    void deactivate();

    /** This thread's active profiler, or nullptr. The only call hot
     *  paths make when profiling is off. */
    static SimProfiler *active() { return tlActive; }

    /**
     * Swap this thread's active profiler for @p p (may be null) and
     * return the previous one, touching no wall-clock bookkeeping on
     * either side — unlike activate()/deactivate(), which stamp the
     * activation span. The parallel engine uses this to install a
     * lane's shard profiler around lane execution and restore the
     * enclosing profiler afterwards without corrupting its wallNs().
     */
    static SimProfiler *
    exchangeActive(SimProfiler *p)
    {
        SimProfiler *prev = tlActive;
        tlActive = p;
        return prev;
    }

    /** Monotonic host clock, nanoseconds. */
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** @{ Scope plumbing, used by ProfScope only. push() descends to
     *  (or creates) the trie child for the frame and returns the
     *  previous position; pop() charges @p ns and restores it. */
    std::uint32_t push(ProfKind kind, std::uint32_t comp, ProfDomain d);
    void pop(std::uint32_t prev_node, ProfDomain prev_domain,
             std::uint64_t ns);
    /** @} */

    /** Domain context of the innermost enclosing scope that declared
     *  one (None outside any bus work). Read by Bus::enqueue to stamp
     *  ops with their *origin* domain. */
    ProfDomain currentDomain() const { return curDomain; }

    /** @{ Event-queue feed (EventQueue hooks). */
    void onSchedule(Tick horizon) { horizonHist.sample(double(horizon)); }
    void onExecute(Tick when, std::size_t heap_depth,
                   std::size_t slab_slots, std::size_t free_slots);
    /** @} */

    /**
     * Coupling feed: one bus grant. @p bus is the granting bus's
     * domain, @p from the domain context the op was enqueued under,
     * @p total_latency the full enqueue-to-delivery tick count
     * (queue delay + arbitration + transfer until delivery) — the
     * quantity whose minimum is the conservative lookahead bound.
     */
    void onBusGrant(ProfDomain bus, ProfDomain from, Tick total_latency);

    /** Scopes entered so far (diagnostic / test hook). */
    std::uint64_t scopeCount() const { return scopes; }

    /** Events observed via onExecute. */
    std::uint64_t eventCount() const { return events; }

    /** Host nanoseconds between activate() and deactivate() (or now,
     *  while still active). */
    std::uint64_t wallNs() const;

    /** One sharding decomposition's parallelism-readiness numbers. */
    struct ShardingView
    {
        double parallelFracEvents = 0.0; //!< intra-domain bus-op share
        double parallelFracNs = 0.0;     //!< intra-domain host-ns share
        double serialFracNs = 0.0;       //!< cross-domain host-ns share
        double imbalance = 1.0;          //!< max/mean per-domain ns
        Tick lookaheadTicks = 0;         //!< min cross-feed latency

        /** Amdahl-style projection for @p k shards (>= 1), capped
         *  at k. */
        double speedupAt(unsigned k) const;
    };

    struct Summary
    {
        std::uint64_t wallNs = 0;
        std::uint64_t events = 0;
        std::uint64_t scopes = 0;
        std::uint64_t rowOps = 0;   //!< grants on row buses
        std::uint64_t colOps = 0;   //!< grants on column buses
        std::uint64_t otherOps = 0; //!< grants on undimensioned buses
        std::uint64_t crossOps = 0; //!< grants enqueued cross-domain
        ShardingView row;           //!< row-stripe decomposition
        ShardingView col;           //!< column-stripe decomposition
    };

    Summary summary() const;

    /** Build the full profile as a JSON tree (schema v1; see
     *  docs/OBSERVABILITY.md). */
    Json toJson() const;

    /** Write toJson() to @p os (pretty-printed). */
    void exportJson(std::ostream &os) const;

    /** Write the call trie as folded stacks: one
     *  "frame;frame;frame <self_ns>" line per trie path with nonzero
     *  self time — flamegraph.pl's input format. */
    void exportFolded(std::ostream &os) const;

    /**
     * Fold another profiler's accumulated data into this one: trie
     * nodes are matched (or created) path-by-path and their ns/count
     * charged here, the event-queue and coupling histograms merge
     * bucket-exact, and the min-latency lookahead bounds take the
     * elementwise minimum. Wall-clock bookkeeping (activation time,
     * accumulated wall ns) is deliberately untouched — it describes
     * *this* profiler's activation span, not the shard's.
     *
     * This is how the parallel engine gives each lane a thread-local
     * shard profiler and still exports one coherent profile: shards
     * are absorbed on the coordinator in lane order at every window
     * boundary, then reset. @p o must not be mid-scope (its scope
     * stack unwound), which is guaranteed at a window barrier.
     */
    void absorb(const SimProfiler &o);

    /**
     * Drop all accumulated data (trie, histograms, coupling state) so
     * the profiler can be reused as a fresh shard after absorb().
     * Must not be called mid-scope. Wall-clock bookkeeping is reset
     * too; activation state is untouched.
     */
    void reset();

  private:
    struct Node
    {
        std::uint32_t parent = 0;
        ProfKind kind = ProfKind::Event;
        ProfDomain domain;
        std::uint32_t comp = 0;
        std::uint64_t ns = 0;     //!< inclusive
        std::uint64_t count = 0;  //!< scope entries
    };

    /** Self ns per node (inclusive minus children), index-parallel
     *  with `nodes`. */
    std::vector<std::uint64_t> selfNs() const;

    /** Domain each node's time belongs to: its own, or the nearest
     *  ancestor's. */
    ProfDomain inheritedDomain(std::uint32_t node) const;

    /** "row3:deliver"-style frame label. */
    std::string frameLabel(const Node &n) const;

    static thread_local SimProfiler *tlActive;

    std::vector<Node> nodes;           //!< trie; node 0 is the root
    FlatMap<std::uint64_t, std::uint32_t> childIndex;
    std::uint32_t cur = 0;             //!< current trie position
    ProfDomain curDomain;

    std::uint64_t scopes = 0;
    std::uint64_t events = 0;
    std::uint64_t t0Ns = 0;
    std::uint64_t totalWallNs = 0;     //!< accumulated across activations

    // Event-queue profile.
    Histogram depthHist;    //!< heap depth per executed event
    Histogram batchHist;    //!< events sharing one tick
    Histogram horizonHist;  //!< schedule distance (ticks ahead of now)
    Histogram occHist;      //!< live slab slots per executed event
    std::uint64_t slabHighWater = 0;
    std::uint64_t freeHighWater = 0;
    Tick batchTick = 0;
    std::uint64_t batchLen = 0;

    // Coupling analyzer. Per-domain grant counts grow on demand.
    std::vector<std::uint64_t> rowOps;
    std::vector<std::uint64_t> colOps;
    std::uint64_t otherOps = 0;
    /** Min observed enqueue-to-delivery ticks per bus dimension
     *  (index 0 row, 1 col); 0 count means none observed. */
    std::array<Tick, 2> minOpLatency{};
    std::array<std::uint64_t, 2> opLatencyCount{};
    std::array<Histogram, 2> opLatencyHist;
    /** Cross-domain grants by (from dim, to dim), dims in {row, col}:
     *  [0]=row->col [1]=col->row [2]=same-dim different-index. */
    std::array<std::uint64_t, 3> crossCount{};
    std::array<Tick, 3> crossMinLatency{};
};

/**
 * RAII profiling scope. Constructing against a null profiler (the
 * common case: profiling off) does nothing at all; otherwise it
 * descends the trie and charges the elapsed host-ns on destruction.
 */
class ProfScope
{
  public:
    ProfScope(SimProfiler *p, ProfKind kind, std::uint32_t comp,
              ProfDomain domain = {})
        : prof(p)
    {
        if (!p)
            return;
        prevDomain = p->currentDomain();
        prevNode = p->push(kind, comp, domain);
        t0 = SimProfiler::nowNs();
    }

    ~ProfScope()
    {
        if (prof)
            prof->pop(prevNode, prevDomain, SimProfiler::nowNs() - t0);
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    SimProfiler *prof;
    std::uint32_t prevNode = 0;
    ProfDomain prevDomain;
    std::uint64_t t0 = 0;
};

/** Open a profiling scope for the rest of the enclosing block.
 *  Zero-cost when no profiler is active on this thread. The domain
 *  argument is pasted unparenthesized so `{}` (inherit from the
 *  enclosing scope) works as an argument. */
#define MCUBE_PROF_SCOPE(var, kind, comp, domain)                     \
    ::mcube::ProfScope var(::mcube::SimProfiler::active(), (kind),    \
                           (comp), domain)

/**
 * Print the human-readable parallelism-readiness report from a parsed
 * profile JSON (the exact file exportJson writes — tools/prof_report
 * round-trips through this, so "parses its own output" holds by
 * construction). @return false if @p profile lacks the v1 schema.
 */
bool profReport(const Json &profile, std::ostream &os);

} // namespace mcube

#endif // MCUBE_SIM_PROFILER_HH
