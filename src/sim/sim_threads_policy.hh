/**
 * @file
 * Shared policy for when a requested parallel single-simulation
 * engine (`--sim-threads`, docs/PERFORMANCE.md) must fall back to the
 * sequential engine.
 *
 * The parallel engine composes with the in-process observers that are
 * lane-aware — SimProfiler and TransactionTracer run as per-lane
 * shards folded canonically at window boundaries — so profiling and
 * tracing deliberately do NOT appear here. What still forces the
 * sequential engine:
 *
 *  - metrics sampling (`--metrics-out`): the sampler reads the live
 *    stat tree mid-run from a timer event, racing every lane;
 *  - fault injection (`--fault-drop`, `--fault-plan`): injectors draw
 *    from one RNG on bus paths across lanes, and the recovery
 *    machinery (reconfiguration epochs) serializes on global state.
 *
 * The decision lives in the library, not in the CLI, so tests can
 * assert both the forcing behaviour and the exact warning text that
 * names the offending flag.
 */

#ifndef MCUBE_SIM_SIM_THREADS_POLICY_HH
#define MCUBE_SIM_SIM_THREADS_POLICY_HH

#include <string>
#include <vector>

namespace mcube
{

/** What the caller asked for, as relevant to the policy. */
struct SimThreadsRequest
{
    unsigned simThreads = 0;   //!< requested worker count
    bool metricsSampling = false;  //!< --metrics-out active
    bool faultDrop = false;        //!< --fault-drop > 0
    bool faultPlan = false;        //!< --fault-plan given
};

/** The resolved worker count plus one warning line per forcing flag. */
struct SimThreadsDecision
{
    unsigned simThreads = 0;  //!< value to actually use
    /** One line per incompatible flag, each naming that flag and
     *  ending in "forcing --sim-threads=0"; empty when the request
     *  stands. Callers print these to stderr verbatim. */
    std::vector<std::string> warnings;

    bool forced() const { return !warnings.empty(); }
};

/** Apply the policy above to @p req. */
SimThreadsDecision resolveSimThreads(const SimThreadsRequest &req);

} // namespace mcube

#endif // MCUBE_SIM_SIM_THREADS_POLICY_HH
