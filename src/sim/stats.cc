#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

namespace mcube
{

double
Distribution::variance() const
{
    if (n == 0)
        return 0.0;
    double v = m2 / static_cast<double>(n);
    return v > 0.0 ? v : 0.0;
}

double
Histogram::percentile(double q) const
{
    if (n == 0)
        return 0.0;
    if (q <= 0.0)
        return _min;
    if (q >= 1.0)
        return _max;

    // Rank of the requested quantile among the n samples (1-based).
    double rank = q * static_cast<double>(n);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < numBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        double lo = lowerBound(b);
        double hi = upperBound(b);
        double prev = static_cast<double>(cum);
        cum += buckets[b];
        if (static_cast<double>(cum) >= rank) {
            // Interpolate within the bucket by rank position.
            double frac = (rank - prev) / static_cast<double>(buckets[b]);
            double v = lo + frac * (hi - lo);
            return std::clamp(v, _min, _max);
        }
    }
    return _max;
}

void
StatGroup::addCounter(const std::string &name, const Counter &c,
                      const std::string &desc)
{
    counters.push_back({name, &c, desc});
}

void
StatGroup::addDistribution(const std::string &name, const Distribution &d,
                           const std::string &desc)
{
    dists.push_back({name, &d, desc});
}

void
StatGroup::addHistogram(const std::string &name, const Histogram &h,
                        const std::string &desc)
{
    hists.push_back({name, &h, desc});
}

void
StatGroup::addChild(const StatGroup &child)
{
    children.push_back(&child);
}

void
StatGroup::dump(std::ostream &os, int indent) const
{
    std::string pad(indent * 2, ' ');
    os << pad << _name << ":\n";
    for (const auto &e : counters) {
        os << pad << "  " << std::left << std::setw(32) << e.name
           << std::right << std::setw(14) << e.counter->value();
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << "\n";
    }
    for (const auto &e : dists) {
        os << pad << "  " << std::left << std::setw(32) << e.name
           << std::right << " n=" << e.dist->count()
           << " mean=" << e.dist->mean()
           << " min=" << e.dist->min()
           << " max=" << e.dist->max()
           << " stddev=" << e.dist->stddev();
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << "\n";
    }
    for (const auto &e : hists) {
        os << pad << "  " << std::left << std::setw(32) << e.name
           << std::right << " n=" << e.hist->count()
           << " mean=" << e.hist->mean()
           << " min=" << e.hist->min()
           << " max=" << e.hist->max()
           << " p50=" << e.hist->p50()
           << " p95=" << e.hist->p95()
           << " p99=" << e.hist->p99()
           << " p99.9=" << e.hist->p999();
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << "\n";
    }
    for (const auto *c : children)
        c->dump(os, indent + 1);
}

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    std::string pad(indent * 2, ' ');
    std::string pad2((indent + 1) * 2, ' ');
    os << pad << "\"" << _name << "\": {";
    const char *sep = "\n";
    for (const auto &e : counters) {
        os << sep << pad2 << "\"" << e.name
           << "\": " << e.counter->value();
        sep = ",\n";
    }
    for (const auto &e : dists) {
        os << sep << pad2 << "\"" << e.name << "\": {\"count\": "
           << e.dist->count() << ", \"mean\": " << e.dist->mean()
           << ", \"min\": " << e.dist->min()
           << ", \"max\": " << e.dist->max()
           << ", \"variance\": " << e.dist->variance()
           << ", \"stddev\": " << e.dist->stddev() << "}";
        sep = ",\n";
    }
    for (const auto &e : hists) {
        os << sep << pad2 << "\"" << e.name << "\": {\"count\": "
           << e.hist->count() << ", \"mean\": " << e.hist->mean()
           << ", \"min\": " << e.hist->min()
           << ", \"max\": " << e.hist->max()
           << ", \"p50\": " << e.hist->p50()
           << ", \"p95\": " << e.hist->p95()
           << ", \"p99\": " << e.hist->p99()
           << ", \"p99.9\": " << e.hist->p999() << "}";
        sep = ",\n";
    }
    for (const auto *c : children) {
        os << sep;
        c->dumpJson(os, indent + 1);
        sep = ",\n";
    }
    os << "\n" << pad << "}";
    if (indent == 0)
        os << "\n";
}

void
StatGroup::flatten(std::map<std::string, double> &out,
                   const std::string &prefix) const
{
    FlatStats flat;
    std::string scratch = prefix;
    flattenInto(flat, scratch);
    for (auto &[name, value] : flat)
        out[std::move(name)] = value;
}

void
StatGroup::flatten(FlatStats &out) const
{
    std::string scratch;
    flattenInto(out, scratch);
}

void
StatGroup::flattenInto(FlatStats &out, std::string &prefix) const
{
    const std::size_t outer = prefix.size();
    if (!prefix.empty())
        prefix += '.';
    prefix += _name;
    const std::size_t base = prefix.size();

    auto emit = [&](const std::string &name, const char *suffix,
                    double value) {
        prefix.resize(base);
        prefix += '.';
        prefix += name;
        if (suffix)
            prefix += suffix;
        out.emplace_back(prefix, value);
    };

    for (const auto &e : counters)
        emit(e.name, nullptr,
             static_cast<double>(e.counter->value()));
    for (const auto &e : dists) {
        emit(e.name, nullptr, e.dist->mean());
        emit(e.name, ".variance", e.dist->variance());
        emit(e.name, ".stddev", e.dist->stddev());
    }
    for (const auto &e : hists) {
        emit(e.name, nullptr, e.hist->mean());
        emit(e.name, ".p50", e.hist->p50());
        emit(e.name, ".p95", e.hist->p95());
        emit(e.name, ".p99", e.hist->p99());
        emit(e.name, ".p999", e.hist->p999());
    }
    for (const auto *c : children) {
        prefix.resize(base);
        c->flattenInto(out, prefix);
    }
    prefix.resize(outer);
}

} // namespace mcube
