#include "sim/stats.hh"

#include <iomanip>

namespace mcube
{

double
Distribution::variance() const
{
    if (n == 0)
        return 0.0;
    double m = mean();
    double v = sumSq / n - m * m;
    return v > 0.0 ? v : 0.0;
}

void
StatGroup::addCounter(const std::string &name, const Counter &c,
                      const std::string &desc)
{
    counters.push_back({name, &c, desc});
}

void
StatGroup::addDistribution(const std::string &name, const Distribution &d,
                           const std::string &desc)
{
    dists.push_back({name, &d, desc});
}

void
StatGroup::addChild(const StatGroup &child)
{
    children.push_back(&child);
}

void
StatGroup::dump(std::ostream &os, int indent) const
{
    std::string pad(indent * 2, ' ');
    os << pad << _name << ":\n";
    for (const auto &e : counters) {
        os << pad << "  " << std::left << std::setw(32) << e.name
           << std::right << std::setw(14) << e.counter->value();
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << "\n";
    }
    for (const auto &e : dists) {
        os << pad << "  " << std::left << std::setw(32) << e.name
           << std::right << " n=" << e.dist->count()
           << " mean=" << e.dist->mean()
           << " min=" << e.dist->min()
           << " max=" << e.dist->max();
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << "\n";
    }
    for (const auto *c : children)
        c->dump(os, indent + 1);
}

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    std::string pad(indent * 2, ' ');
    std::string pad2((indent + 1) * 2, ' ');
    os << pad << "\"" << _name << "\": {";
    const char *sep = "\n";
    for (const auto &e : counters) {
        os << sep << pad2 << "\"" << e.name
           << "\": " << e.counter->value();
        sep = ",\n";
    }
    for (const auto &e : dists) {
        os << sep << pad2 << "\"" << e.name << "\": {\"count\": "
           << e.dist->count() << ", \"mean\": " << e.dist->mean()
           << ", \"min\": " << e.dist->min()
           << ", \"max\": " << e.dist->max() << "}";
        sep = ",\n";
    }
    for (const auto *c : children) {
        os << sep;
        c->dumpJson(os, indent + 1);
        sep = ",\n";
    }
    os << "\n" << pad << "}";
    if (indent == 0)
        os << "\n";
}

void
StatGroup::flatten(std::map<std::string, double> &out,
                   const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &e : counters)
        out[base + "." + e.name] =
            static_cast<double>(e.counter->value());
    for (const auto &e : dists)
        out[base + "." + e.name] = e.dist->mean();
    for (const auto *c : children)
        c->flatten(out, base);
}

} // namespace mcube
