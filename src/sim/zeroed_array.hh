/**
 * @file
 * Fixed-size array backed by lazily zeroed memory.
 *
 * The simulator's big per-node tables — cache line arrays, MLT slot
 * arrays — are sized for the configured *capacity* but a typical run
 * touches only a small fraction of it. A std::vector
 * value-initializes every element up front, which both costs
 * construction time (an n=32 machine allocates hundreds of MB across
 * its 1024 controllers) and faults every page into the process,
 * bloating the working set. Anonymous copy-on-write zero pages
 * instead make untouched sets cost neither construction time nor
 * resident memory — and *reads* of never-written elements all land on
 * the kernel's single shared zero page, so a scan over a mostly-empty
 * table stays cache-resident no matter how many tables exist.
 *
 * Large arrays (>= kMmapBytes) are therefore mapped directly with
 * mmap(MAP_ANONYMOUS) rather than calloc'd: glibc only services big
 * callocs from fresh zero mappings until the first such block is
 * freed, after which it raises its internal threshold and starts
 * recycling dirty arena pages — memset cost returns and the shared
 * zero page is lost. Going to mmap ourselves keeps the lazy-zero
 * behaviour deterministic for every system a process constructs, not
 * just the first. Small arrays stay on calloc (a syscall per tiny
 * table would cost more than it saves).
 *
 * The element type must be trivially copyable and destructible, and
 * its all-zero-bytes state must be a valid "empty" value — the
 * containing structure must treat a zeroed element exactly like a
 * freshly default-constructed one (e.g. a CacheLine whose tagValid is
 * false is never read beyond that flag).
 */

#ifndef MCUBE_SIM_ZEROED_ARRAY_HH
#define MCUBE_SIM_ZEROED_ARRAY_HH

#include <cstdlib>
#include <new>
#include <type_traits>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#define MCUBE_ZEROED_ARRAY_HAS_MMAP 1
#endif

namespace mcube
{

/** Fixed-size lazily-zeroed array; see file comment. */
template <typename T>
class ZeroedArray
{
    static_assert(std::is_trivially_copyable_v<T>
                      && std::is_trivially_destructible_v<T>,
                  "ZeroedArray elements live in raw zeroed storage");

  public:
    /** Allocations at least this big bypass malloc for a private
     *  anonymous mapping (see file comment). */
    static constexpr std::size_t kMmapBytes = 256 * 1024;

    ZeroedArray() = default;

    explicit ZeroedArray(std::size_t n) { reset(n); }

    ZeroedArray(ZeroedArray &&other) noexcept
        : ptr(other.ptr), n(other.n), mapped(other.mapped)
    {
        other.ptr = nullptr;
        other.n = 0;
        other.mapped = false;
    }

    ZeroedArray &
    operator=(ZeroedArray &&other) noexcept
    {
        if (this != &other) {
            release();
            ptr = other.ptr;
            n = other.n;
            mapped = other.mapped;
            other.ptr = nullptr;
            other.n = 0;
            other.mapped = false;
        }
        return *this;
    }

    ZeroedArray(const ZeroedArray &) = delete;
    ZeroedArray &operator=(const ZeroedArray &) = delete;

    ~ZeroedArray() { release(); }

    /** Discard the contents and become a zeroed array of @p count. */
    void
    reset(std::size_t count)
    {
        release();
        ptr = nullptr;
        n = 0;
        mapped = false;
        if (!count)
            return;
#ifdef MCUBE_ZEROED_ARRAY_HAS_MMAP
        if (count * sizeof(T) >= kMmapBytes) {
            void *m = ::mmap(nullptr, count * sizeof(T),
                             PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            if (m != MAP_FAILED) {
                ptr = static_cast<T *>(m);
                n = count;
                mapped = true;
                return;
            }
            // Fall through to calloc on mmap failure.
        }
#endif
        ptr = static_cast<T *>(std::calloc(count, sizeof(T)));
        if (!ptr)
            throw std::bad_alloc();
        n = count;
    }

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }

    T *data() { return ptr; }
    const T *data() const { return ptr; }

    T &operator[](std::size_t i) { return ptr[i]; }
    const T &operator[](std::size_t i) const { return ptr[i]; }

    T *begin() { return ptr; }
    T *end() { return ptr + n; }
    const T *begin() const { return ptr; }
    const T *end() const { return ptr + n; }

  private:
    void
    release()
    {
#ifdef MCUBE_ZEROED_ARRAY_HAS_MMAP
        if (mapped) {
            ::munmap(ptr, n * sizeof(T));
            return;
        }
#endif
        std::free(ptr);
    }

    T *ptr = nullptr;
    std::size_t n = 0;
    bool mapped = false;
};

} // namespace mcube

#endif // MCUBE_SIM_ZEROED_ARRAY_HH
