/**
 * @file
 * Shared integer mixing for hot-path lookup structures.
 *
 * Everything in the simulator that needs a well-mixed 64-bit key —
 * the flat hash maps, the snoop presence filters, the cache/MLT set
 * index — funnels through the same splitmix64 finalizer. One mixer
 * means one set of constants to audit and identical avalanche
 * behaviour everywhere; the function is pure, so any structure built
 * on it stays deterministic run-to-run.
 */

#ifndef MCUBE_SIM_HASH_HH
#define MCUBE_SIM_HASH_HH

#include <cstdint>

namespace mcube
{

/**
 * splitmix64 finalizer: a cheap bijective mixer whose output bits all
 * depend on all input bits. Suitable for hashing sequential or
 * strided keys (addresses, node ids) whose low bits alone carry
 * structure a power-of-two table must not see.
 */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace mcube

#endif // MCUBE_SIM_HASH_HH
