/**
 * @file
 * Parallel execution of independent simulation points.
 *
 * The paper's data figures sweep (configuration x request rate) grids;
 * every point is one single-threaded, deterministic MulticubeSystem
 * run that shares nothing with any other point. SweepRunner fans such
 * points across a worker pool while keeping the *results* bit-exact
 * regardless of worker count or completion order:
 *
 *  - each point is addressed by its index in the sweep, and results
 *    land in an index-addressed vector, so completion order never
 *    shows;
 *  - per-point seeds are derived purely from (base seed, point index)
 *    via pointSeed(), so a point's RNG streams do not depend on which
 *    worker ran it or on how many workers exist.
 *
 * The simulator core stays single-threaded: nothing in src/ shares
 * mutable state between two running systems (the Log sink is
 * mutex-guarded, tracing stays a one-run-at-a-time tool). A sweep at
 * --jobs 1 executes points inline on the calling thread, which keeps
 * debugging and tracing simple.
 */

#ifndef MCUBE_SIM_SWEEP_RUNNER_HH
#define MCUBE_SIM_SWEEP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace mcube::sweep
{

/**
 * Derive the seed of point @p index of a sweep with base seed
 * @p baseSeed. Pure (same inputs, same output) and well-mixed
 * (splitmix64 finalizer), so neighbouring indices get statistically
 * independent streams and results cannot depend on job count.
 */
std::uint64_t pointSeed(std::uint64_t baseSeed, std::uint64_t index);

/** Resolve a jobs request: 0 means "all hardware threads". */
unsigned resolveJobs(unsigned requested);

/** A blocking fan-out executor for independent sweep points. */
class SweepRunner
{
  public:
    /** @param jobs Worker count; 0 = hardware concurrency. */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return _jobs; }

    /**
     * Run @p body(i) for every i in [0, count). Blocks until all
     * points finish. Points are claimed dynamically, so stragglers
     * don't serialize the tail; @p body must not share mutable state
     * across indices. The first exception thrown by any point is
     * rethrown here after all workers stop.
     *
     * @p stop, when provided, is polled before each claim: once it
     * returns true, no further indices are claimed — points already
     * in flight complete normally (graceful drain; the caller can
     * tell which indices ran). Results stay bit-identical for any
     * job count over whichever indices did run.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &body,
                 const std::function<bool()> &stop = {}) const;

    /**
     * Compute @p body(i) for every index and return the results in
     * index order — identical output for any job count.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t count,
        const std::function<R(std::size_t)> &body) const
    {
        std::vector<R> out(count);
        forEach(count, [&](std::size_t i) { out[i] = body(i); });
        return out;
    }

  private:
    unsigned _jobs;
};

} // namespace mcube::sweep

#endif // MCUBE_SIM_SWEEP_RUNNER_HH
