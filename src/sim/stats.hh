/**
 * @file
 * A lightweight statistics package in the spirit of gem5's.
 *
 * Components declare named scalar counters, distributions, log-bucketed
 * histograms and derived formulas inside a StatGroup; groups nest, and
 * any group can be dumped as an indented text report, a JSON object or
 * a flat name=value map.
 */

#ifndef MCUBE_SIM_STATS_HH
#define MCUBE_SIM_STATS_HH

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mcube
{

class StatGroup;

/**
 * A flattened stat tree: ("group.sub.stat", value) pairs in tree
 * (pre-order) traversal order. Built without per-entry tree rebuilds
 * or redundant string concatenation, unlike a std::map — the container
 * for per-point stat snapshots on hot sweep paths.
 */
using FlatStats = std::vector<std::pair<std::string, double>>;

/** A monotonically growing (or explicitly set) scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++val; return *this; }
    Counter &operator+=(std::uint64_t d) { val += d; return *this; }

    void set(std::uint64_t v) { val = v; }
    void reset() { val = 0; }

    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/**
 * Streaming mean/min/max/count over observed samples.
 *
 * Variance uses Welford's online recurrence rather than the naive
 * sumSq/n - mean^2 form: for large-magnitude samples (tick
 * timestamps, for instance) the naive form subtracts two nearly equal
 * 10^18-scale values and loses every significant digit, even going
 * negative. Welford's M2 accumulates squared deviations directly, so
 * it stays accurate and non-negative by construction.
 */
class Distribution
{
  public:
    Distribution() = default;

    void
    sample(double v)
    {
        sum += v;
        if (n == 0 || v < _min)
            _min = v;
        if (n == 0 || v > _max)
            _max = v;
        ++n;
        // Welford: each increment (v - oldMean)(v - newMean) is
        // non-negative because newMean lies between oldMean and v.
        double delta = v - _mean;
        _mean += delta / static_cast<double>(n);
        m2 += delta * (v - _mean);
    }

    void
    reset()
    {
        sum = m2 = _mean = 0.0;
        _min = _max = 0.0;
        n = 0;
    }

    std::uint64_t count() const { return n; }
    double mean() const { return n ? _mean : 0.0; }
    double min() const { return _min; }
    double max() const { return _max; }
    double total() const { return sum; }
    /** Population variance of the observed samples (always >= 0). */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

  private:
    double sum = 0.0;
    double _mean = 0.0;
    double m2 = 0.0;  //!< sum of squared deviations from the mean
    double _min = 0.0;
    double _max = 0.0;
    std::uint64_t n = 0;
};

/**
 * A log-bucketed latency histogram with percentile accessors.
 *
 * Bucket 0 holds samples in [0, 1]; bucket i (i >= 1) holds samples
 * in (2^(i-1), 2^i]. With 64 buckets the full Tick range is covered,
 * so sampling never saturates. Percentiles interpolate linearly
 * within the winning bucket and are clamped to the observed
 * [min, max], which makes single-sample and single-bucket
 * distributions exact. Mean/min/max/total are exact (tracked beside
 * the buckets), only percentiles are approximate — the right
 * trade-off for the queueing-delay distributions that matter here,
 * where tail *order of magnitude* is the signal.
 */
class Histogram
{
  public:
    static constexpr unsigned numBuckets = 64;

    Histogram() = default;

    void
    sample(double v)
    {
        if (v < 0.0)
            v = 0.0;
        if (n == 0 || v < _min)
            _min = v;
        if (n == 0 || v > _max)
            _max = v;
        sum += v;
        ++buckets[bucketOf(v)];
        ++n;
    }

    void
    reset()
    {
        buckets.fill(0);
        sum = _min = _max = 0.0;
        n = 0;
    }

    /**
     * Fold another histogram's samples into this one, as if every
     * sample had been recorded here directly. Bucket counts add
     * exactly, so percentiles of the merged histogram equal those of
     * a single histogram fed both streams. Used by the lane-sharded
     * profiler (SimProfiler::absorb) at window boundaries.
     */
    void
    merge(const Histogram &o)
    {
        if (o.n == 0)
            return;
        if (n == 0 || o._min < _min)
            _min = o._min;
        if (n == 0 || o._max > _max)
            _max = o._max;
        for (unsigned i = 0; i < numBuckets; ++i)
            buckets[i] += o.buckets[i];
        sum += o.sum;
        n += o.n;
    }

    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / n : 0.0; }
    double min() const { return _min; }
    double max() const { return _max; }
    double total() const { return sum; }

    /**
     * Approximate quantile for @p q in [0, 1]. q <= 0 reports min(),
     * q >= 1 reports max().
     *
     * Empty-histogram convention: with no samples, every derived
     * statistic — mean, min, max and all percentiles — reports 0.0,
     * never NaN and never a division by zero. A single sample is
     * reported exactly at every percentile (interpolation is clamped
     * to [min, max]). This keeps dump/dumpJson/flatten output finite
     * unconditionally; NaN is not valid JSON, and BENCH_*.json is
     * machine-parsed by scripts/perf_check.py.
     */
    double percentile(double q) const;

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }
    double p999() const { return percentile(0.999); }

    /** Samples recorded in bucket @p i (range [lowerBound(i),
     *  upperBound(i)]). */
    std::uint64_t bucketCount(unsigned i) const { return buckets[i]; }

    /** Inclusive lower edge of bucket @p i. */
    static double
    lowerBound(unsigned i)
    {
        return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
    }

    /** Inclusive upper edge of bucket @p i. */
    static double
    upperBound(unsigned i)
    {
        return std::ldexp(1.0, static_cast<int>(i));
    }

    /** Bucket index a value lands in (exposed for tests). */
    static unsigned
    bucketOf(double v)
    {
        if (v <= 1.0)
            return 0;
        if (v >= std::ldexp(1.0, 63))
            return numBuckets - 1;  // uint64 cast below would overflow
        // Smallest i with v <= 2^i, i.e. ceil(log2(v)).
        auto u = static_cast<std::uint64_t>(std::ceil(v)) - 1;
        unsigned i = std::bit_width(u);
        return i < numBuckets ? i : numBuckets - 1;
    }

  private:
    std::array<std::uint64_t, numBuckets> buckets{};
    double sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::uint64_t n = 0;
};

/**
 * A named collection of statistics. Groups form a tree; leaf stats are
 * registered by reference, so components keep plain Counter members and
 * register them once at construction.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Register a counter under @p name. The counter must outlive the
     *  group. */
    void addCounter(const std::string &name, const Counter &c,
                    const std::string &desc = "");

    /** Register a distribution under @p name. */
    void addDistribution(const std::string &name, const Distribution &d,
                         const std::string &desc = "");

    /** Register a histogram under @p name. */
    void addHistogram(const std::string &name, const Histogram &h,
                      const std::string &desc = "");

    /** Register a child group. The child must outlive the parent. */
    void addChild(const StatGroup &child);

    /** Write an indented human-readable report. */
    void dump(std::ostream &os, int indent = 0) const;

    /** Write the whole tree as a JSON object (counters as integers,
     *  distributions as {count, mean, min, max, variance, stddev},
     *  histograms additionally carrying p50/p95/p99/p99.9). */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /**
     * Flatten every counter, distribution and histogram into
     * "group.sub.stat" -> value entries. Distributions contribute
     * their mean under the bare name plus ".variance"/".stddev"
     * entries; histograms contribute mean plus
     * ".p50"/".p95"/".p99"/".p999".
     */
    void flatten(std::map<std::string, double> &out,
                 const std::string &prefix = "") const;

    /**
     * Append the same entries to @p out in tree order, reusing one
     * growing prefix buffer instead of building a map — the cheap form
     * used per sweep point and per metrics sample.
     */
    void flatten(FlatStats &out) const;

  private:
    void flattenInto(FlatStats &out, std::string &prefix) const;

    struct CounterEntry
    {
        std::string name;
        const Counter *counter;
        std::string desc;
    };

    struct DistEntry
    {
        std::string name;
        const Distribution *dist;
        std::string desc;
    };

    struct HistEntry
    {
        std::string name;
        const Histogram *hist;
        std::string desc;
    };

    std::string _name;
    std::vector<CounterEntry> counters;
    std::vector<DistEntry> dists;
    std::vector<HistEntry> hists;
    std::vector<const StatGroup *> children;
};

} // namespace mcube

#endif // MCUBE_SIM_STATS_HH
