/**
 * @file
 * A lightweight statistics package in the spirit of gem5's.
 *
 * Components declare named scalar counters, distributions and derived
 * formulas inside a StatGroup; groups nest, and any group can be dumped
 * as an indented text report or a flat name=value map.
 */

#ifndef MCUBE_SIM_STATS_HH
#define MCUBE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mcube
{

class StatGroup;

/** A monotonically growing (or explicitly set) scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++val; return *this; }
    Counter &operator+=(std::uint64_t d) { val += d; return *this; }

    void set(std::uint64_t v) { val = v; }
    void reset() { val = 0; }

    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/** Streaming mean/min/max/count over observed samples. */
class Distribution
{
  public:
    Distribution() = default;

    void
    sample(double v)
    {
        sum += v;
        sumSq += v * v;
        if (n == 0 || v < _min)
            _min = v;
        if (n == 0 || v > _max)
            _max = v;
        ++n;
    }

    void
    reset()
    {
        sum = sumSq = 0.0;
        _min = _max = 0.0;
        n = 0;
    }

    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / n : 0.0; }
    double min() const { return _min; }
    double max() const { return _max; }
    double total() const { return sum; }
    /** Population variance of the observed samples. */
    double variance() const;

  private:
    double sum = 0.0;
    double sumSq = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::uint64_t n = 0;
};

/**
 * A named collection of statistics. Groups form a tree; leaf stats are
 * registered by reference, so components keep plain Counter members and
 * register them once at construction.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Register a counter under @p name. The counter must outlive the
     *  group. */
    void addCounter(const std::string &name, const Counter &c,
                    const std::string &desc = "");

    /** Register a distribution under @p name. */
    void addDistribution(const std::string &name, const Distribution &d,
                         const std::string &desc = "");

    /** Register a child group. The child must outlive the parent. */
    void addChild(const StatGroup &child);

    /** Write an indented human-readable report. */
    void dump(std::ostream &os, int indent = 0) const;

    /** Write the whole tree as a JSON object (counters as integers,
     *  distributions as {count, mean, min, max}). */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /**
     * Flatten every counter and distribution mean into
     * "group.sub.stat" -> value entries.
     */
    void flatten(std::map<std::string, double> &out,
                 const std::string &prefix = "") const;

  private:
    struct CounterEntry
    {
        std::string name;
        const Counter *counter;
        std::string desc;
    };

    struct DistEntry
    {
        std::string name;
        const Distribution *dist;
        std::string desc;
    };

    std::string _name;
    std::vector<CounterEntry> counters;
    std::vector<DistEntry> dists;
    std::vector<const StatGroup *> children;
};

} // namespace mcube

#endif // MCUBE_SIM_STATS_HH
