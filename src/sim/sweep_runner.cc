#include "sim/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mcube::sweep
{

std::uint64_t
pointSeed(std::uint64_t baseSeed, std::uint64_t index)
{
    // splitmix64 finalizer over the combined value: cheap, pure, and
    // avalanching, so index 0 and index 1 share nothing.
    std::uint64_t z = baseSeed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs) : _jobs(resolveJobs(jobs)) {}

void
SweepRunner::forEach(std::size_t count,
                     const std::function<void(std::size_t)> &body,
                     const std::function<bool()> &stop) const
{
    if (count == 0)
        return;

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(_jobs, count));
    if (workers <= 1) {
        // Inline fast path: no threads, easiest to debug and the only
        // mode in which process-global tools (tracing) may be active.
        for (std::size_t i = 0; i < count; ++i) {
            if (stop && stop())
                return;
            body(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorLock;

    auto worker = [&] {
        for (;;) {
            if (stop && stop())
                return;
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(errorLock);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace mcube::sweep
