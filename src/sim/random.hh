/**
 * @file
 * Deterministic pseudo-random number generation (PCG32).
 *
 * The simulator never uses std::random_device or global state; every
 * stochastic component owns a Random seeded from its configuration so
 * runs are exactly reproducible.
 */

#ifndef MCUBE_SIM_RANDOM_HH
#define MCUBE_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace mcube
{

/** A small, fast, statistically solid PCG32 generator. */
class Random
{
  public:
    explicit
    Random(std::uint64_t seed = 0x853c49e6748fea9bULL,
           std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state = 0;
        inc = (stream << 1) | 1;
        next32();
        state += seed;
        next32();
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    next32()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        auto rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next32()) << 32) | next32();
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        // Lemire-style rejection keeps the distribution exactly uniform.
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        std::uint64_t span = hi - lo + 1;
        if (span == 0)
            return next64();
        // 64-bit modulo bias is negligible for the spans used here, but
        // keep it exact via the 32-bit path when possible.
        if (span <= UINT32_MAX)
            return lo + below(static_cast<std::uint32_t>(span));
        return lo + next64() % span;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // uniform() can return 0; clamp away from log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Split off an independent generator (for a child component). */
    Random
    fork()
    {
        return Random(next64(), next64());
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace mcube

#endif // MCUBE_SIM_RANDOM_HH
