#include "sim/profiler.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "sim/json.hh"

namespace mcube
{

thread_local SimProfiler *SimProfiler::tlActive = nullptr;

const char *
toString(ProfKind kind)
{
    switch (kind) {
      case ProfKind::Event: return "event";
      case ProfKind::BusArb: return "bus_arb";
      case ProfKind::BusDeliver: return "bus_deliver";
      case ProfKind::CtrlSnoop: return "ctrl_snoop";
      case ProfKind::Mlt: return "mlt";
      case ProfKind::Memory: return "memory";
      case ProfKind::Checker: return "checker";
      case ProfKind::Fault: return "fault";
      case ProfKind::NumKinds: break;
    }
    return "?";
}

SimProfiler::SimProfiler()
{
    nodes.emplace_back();  // root
}

SimProfiler::~SimProfiler()
{
    deactivate();
}

void
SimProfiler::activate()
{
    if (tlActive == this)
        return;
    tlActive = this;
    t0Ns = nowNs();
}

void
SimProfiler::deactivate()
{
    if (tlActive != this)
        return;
    tlActive = nullptr;
    totalWallNs += nowNs() - t0Ns;
    if (batchLen) {
        batchHist.sample(static_cast<double>(batchLen));
        batchLen = 0;
    }
}

std::uint64_t
SimProfiler::wallNs() const
{
    std::uint64_t w = totalWallNs;
    if (tlActive == this)
        w += nowNs() - t0Ns;
    return w;
}

std::uint32_t
SimProfiler::push(ProfKind kind, std::uint32_t comp, ProfDomain d)
{
    ++scopes;
    // Frame key: parent(18) | kind(4) | dim(2) | index(16) | comp(24).
    std::uint64_t key =
        (static_cast<std::uint64_t>(cur) << 46)
        | (static_cast<std::uint64_t>(kind) << 42)
        | (static_cast<std::uint64_t>(d.dim) << 40)
        | (static_cast<std::uint64_t>(d.index) << 24)
        | static_cast<std::uint64_t>(comp & 0xffffffu);
    std::uint32_t id;
    if (std::uint32_t *c = childIndex.find(key)) {
        id = *c;
    } else {
        id = static_cast<std::uint32_t>(nodes.size());
        assert(id < (1u << 18) && "profiler path trie overflow");
        Node n;
        n.parent = cur;
        n.kind = kind;
        n.domain = d;
        n.comp = comp;
        nodes.push_back(n);
        childIndex.put(key, id);
    }
    std::uint32_t prev = cur;
    cur = id;
    if (d.dim != ProfDomain::Dim::None)
        curDomain = d;
    return prev;
}

void
SimProfiler::pop(std::uint32_t prev_node, ProfDomain prev_domain,
                 std::uint64_t ns)
{
    Node &n = nodes[cur];
    n.ns += ns;
    ++n.count;
    cur = prev_node;
    curDomain = prev_domain;
}

void
SimProfiler::onExecute(Tick when, std::size_t heap_depth,
                       std::size_t slab_slots, std::size_t free_slots)
{
    ++events;
    depthHist.sample(static_cast<double>(heap_depth));
    occHist.sample(static_cast<double>(slab_slots - free_slots));
    if (slab_slots > slabHighWater)
        slabHighWater = slab_slots;
    if (free_slots > freeHighWater)
        freeHighWater = free_slots;
    if (when == batchTick && batchLen > 0) {
        ++batchLen;
    } else {
        if (batchLen)
            batchHist.sample(static_cast<double>(batchLen));
        batchTick = when;
        batchLen = 1;
    }
}

void
SimProfiler::onBusGrant(ProfDomain bus, ProfDomain from,
                        Tick total_latency)
{
    unsigned d;
    if (bus.dim == ProfDomain::Dim::Row) {
        if (rowOps.size() <= bus.index)
            rowOps.resize(bus.index + 1, 0);
        ++rowOps[bus.index];
        d = 0;
    } else if (bus.dim == ProfDomain::Dim::Col) {
        if (colOps.size() <= bus.index)
            colOps.resize(bus.index + 1, 0);
        ++colOps[bus.index];
        d = 1;
    } else {
        ++otherOps;
        return;
    }
    if (opLatencyCount[d]++ == 0 || total_latency < minOpLatency[d])
        minOpLatency[d] = total_latency;
    opLatencyHist[d].sample(static_cast<double>(total_latency));

    if (from.dim != ProfDomain::Dim::None && from != bus) {
        unsigned c = from.dim != bus.dim
                         ? (from.dim == ProfDomain::Dim::Row ? 0u : 1u)
                         : 2u;
        if (crossCount[c]++ == 0 || total_latency < crossMinLatency[c])
            crossMinLatency[c] = total_latency;
    }
}

void
SimProfiler::absorb(const SimProfiler &o)
{
    // Replay the shard's trie into this one. Nodes are created on
    // first descent, so a parent's index is always smaller than its
    // children's — one forward pass with an id map suffices.
    std::vector<std::uint32_t> idMap(o.nodes.size(), 0);
    for (std::uint32_t i = 1; i < o.nodes.size(); ++i) {
        const Node &on = o.nodes[i];
        std::uint32_t parent = idMap[on.parent];
        std::uint64_t key =
            (static_cast<std::uint64_t>(parent) << 46)
            | (static_cast<std::uint64_t>(on.kind) << 42)
            | (static_cast<std::uint64_t>(on.domain.dim) << 40)
            | (static_cast<std::uint64_t>(on.domain.index) << 24)
            | static_cast<std::uint64_t>(on.comp & 0xffffffu);
        std::uint32_t id;
        if (std::uint32_t *c = childIndex.find(key)) {
            id = *c;
        } else {
            id = static_cast<std::uint32_t>(nodes.size());
            assert(id < (1u << 18) && "profiler path trie overflow");
            Node n;
            n.parent = parent;
            n.kind = on.kind;
            n.domain = on.domain;
            n.comp = on.comp;
            nodes.push_back(n);
            childIndex.put(key, id);
        }
        nodes[id].ns += on.ns;
        nodes[id].count += on.count;
        idMap[i] = id;
    }

    scopes += o.scopes;
    events += o.events;

    depthHist.merge(o.depthHist);
    batchHist.merge(o.batchHist);
    horizonHist.merge(o.horizonHist);
    occHist.merge(o.occHist);
    // The shard never deactivates, so flush its pending same-tick
    // batch here (the shard is reset right after being absorbed).
    if (o.batchLen)
        batchHist.sample(static_cast<double>(o.batchLen));
    slabHighWater = std::max(slabHighWater, o.slabHighWater);
    freeHighWater = std::max(freeHighWater, o.freeHighWater);

    if (rowOps.size() < o.rowOps.size())
        rowOps.resize(o.rowOps.size(), 0);
    for (std::size_t i = 0; i < o.rowOps.size(); ++i)
        rowOps[i] += o.rowOps[i];
    if (colOps.size() < o.colOps.size())
        colOps.resize(o.colOps.size(), 0);
    for (std::size_t i = 0; i < o.colOps.size(); ++i)
        colOps[i] += o.colOps[i];
    otherOps += o.otherOps;

    for (unsigned d = 0; d < 2; ++d) {
        if (o.opLatencyCount[d]) {
            if (opLatencyCount[d] == 0
                || o.minOpLatency[d] < minOpLatency[d])
                minOpLatency[d] = o.minOpLatency[d];
            opLatencyCount[d] += o.opLatencyCount[d];
        }
        opLatencyHist[d].merge(o.opLatencyHist[d]);
    }
    for (unsigned c = 0; c < 3; ++c) {
        if (o.crossCount[c]) {
            if (crossCount[c] == 0
                || o.crossMinLatency[c] < crossMinLatency[c])
                crossMinLatency[c] = o.crossMinLatency[c];
            crossCount[c] += o.crossCount[c];
        }
    }
}

void
SimProfiler::reset()
{
    assert(cur == 0 && "SimProfiler::reset mid-scope");
    nodes.clear();
    nodes.emplace_back();  // root
    childIndex.clear();
    cur = 0;
    curDomain = {};
    scopes = events = 0;
    totalWallNs = 0;
    depthHist.reset();
    batchHist.reset();
    horizonHist.reset();
    occHist.reset();
    slabHighWater = freeHighWater = 0;
    batchTick = 0;
    batchLen = 0;
    rowOps.clear();
    colOps.clear();
    otherOps = 0;
    minOpLatency = {};
    opLatencyCount = {};
    for (auto &h : opLatencyHist)
        h.reset();
    crossCount = {};
    crossMinLatency = {};
}

std::vector<std::uint64_t>
SimProfiler::selfNs() const
{
    // Children nest strictly inside their parent's measured interval,
    // so the subtraction cannot go negative for any real node; the
    // root (which is never timed) is clamped.
    std::vector<std::int64_t> s(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        s[i] = static_cast<std::int64_t>(nodes[i].ns);
    for (std::size_t i = 1; i < nodes.size(); ++i)
        s[nodes[i].parent] -= static_cast<std::int64_t>(nodes[i].ns);
    std::vector<std::uint64_t> out(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        out[i] = s[i] > 0 ? static_cast<std::uint64_t>(s[i]) : 0;
    return out;
}

ProfDomain
SimProfiler::inheritedDomain(std::uint32_t node) const
{
    while (node != 0) {
        if (nodes[node].domain.dim != ProfDomain::Dim::None)
            return nodes[node].domain;
        node = nodes[node].parent;
    }
    return {};
}

std::string
SimProfiler::frameLabel(const Node &n) const
{
    auto busName = [&]() -> std::string {
        switch (n.domain.dim) {
          case ProfDomain::Dim::Row:
            return "row" + std::to_string(n.domain.index);
          case ProfDomain::Dim::Col:
            return "col" + std::to_string(n.domain.index);
          case ProfDomain::Dim::None: break;
        }
        return "bus";
    };
    switch (n.kind) {
      case ProfKind::Event: return "event";
      case ProfKind::BusArb: return busName() + ":arb";
      case ProfKind::BusDeliver: return busName() + ":deliver";
      case ProfKind::CtrlSnoop:
        return "node" + std::to_string(n.comp) + ":snoop";
      case ProfKind::Mlt:
        return "node" + std::to_string(n.comp) + ":mlt";
      case ProfKind::Memory:
        return "mem" + std::to_string(n.comp) + ":snoop";
      case ProfKind::Checker: return "checker";
      case ProfKind::Fault: return "fault";
      case ProfKind::NumKinds: break;
    }
    return "?";
}

double
amdahlSpeedup(double serial_frac, double parallel_frac,
              double imbalance, unsigned k)
{
    if (k <= 1)
        return 1.0;
    double denom =
        serial_frac + parallel_frac * imbalance / static_cast<double>(k);
    if (denom <= 0.0)
        return static_cast<double>(k);
    double s = 1.0 / denom;
    return std::min(s, static_cast<double>(k));
}

double
SimProfiler::ShardingView::speedupAt(unsigned k) const
{
    return amdahlSpeedup(serialFracNs, parallelFracNs, imbalance, k);
}

namespace
{

/** Per-domain self host-ns and the two sharding views derived from
 *  them — shared by summary() and toJson(). */
struct DomainTimes
{
    std::vector<std::uint64_t> rowNs;
    std::vector<std::uint64_t> colNs;
    std::uint64_t rowTotal = 0;
    std::uint64_t colTotal = 0;
    std::uint64_t noneTotal = 0;

    std::uint64_t total() const { return rowTotal + colTotal + noneTotal; }
};

double
imbalanceOf(const std::vector<std::uint64_t> &ns)
{
    if (ns.empty())
        return 1.0;
    std::uint64_t mx = 0, sum = 0;
    for (std::uint64_t v : ns) {
        mx = std::max(mx, v);
        sum += v;
    }
    if (sum == 0)
        return 1.0;
    double mean = static_cast<double>(sum)
                / static_cast<double>(ns.size());
    return std::max(1.0, static_cast<double>(mx) / mean);
}

} // namespace

SimProfiler::Summary
SimProfiler::summary() const
{
    Summary s;
    s.wallNs = wallNs();
    s.events = events;
    s.scopes = scopes;
    for (std::uint64_t v : rowOps)
        s.rowOps += v;
    for (std::uint64_t v : colOps)
        s.colOps += v;
    s.otherOps = otherOps;
    s.crossOps = crossCount[0] + crossCount[1] + crossCount[2];

    DomainTimes dt;
    std::vector<std::uint64_t> self = selfNs();
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        ProfDomain d = inheritedDomain(static_cast<std::uint32_t>(i));
        switch (d.dim) {
          case ProfDomain::Dim::Row:
            if (dt.rowNs.size() <= d.index)
                dt.rowNs.resize(d.index + 1, 0);
            dt.rowNs[d.index] += self[i];
            dt.rowTotal += self[i];
            break;
          case ProfDomain::Dim::Col:
            if (dt.colNs.size() <= d.index)
                dt.colNs.resize(d.index + 1, 0);
            dt.colNs[d.index] += self[i];
            dt.colTotal += self[i];
            break;
          case ProfDomain::Dim::None:
            dt.noneTotal += self[i];
            break;
        }
    }

    std::uint64_t opsTotal = s.rowOps + s.colOps + s.otherOps;
    double nsTotal = static_cast<double>(dt.total());

    // Row-stripe sharding: every row bus (and the controller/MLT work
    // its deliveries trigger) stays inside one shard; column buses are
    // the coupling fabric. Untagged time (workload callbacks, event-
    // loop overhead) shards with its issuing node, so it counts as
    // parallelizable. Column-stripe is the mirror image.
    s.row.parallelFracEvents =
        opsTotal ? static_cast<double>(s.rowOps + s.otherOps)
                       / static_cast<double>(opsTotal)
                 : 0.0;
    s.row.serialFracNs =
        nsTotal > 0 ? static_cast<double>(dt.colTotal) / nsTotal : 0.0;
    s.row.parallelFracNs = 1.0 - s.row.serialFracNs;
    s.row.imbalance = imbalanceOf(dt.rowNs);
    s.row.lookaheadTicks = opLatencyCount[1] ? minOpLatency[1] : 0;

    s.col.parallelFracEvents =
        opsTotal ? static_cast<double>(s.colOps + s.otherOps)
                       / static_cast<double>(opsTotal)
                 : 0.0;
    s.col.serialFracNs =
        nsTotal > 0 ? static_cast<double>(dt.rowTotal) / nsTotal : 0.0;
    s.col.parallelFracNs = 1.0 - s.col.serialFracNs;
    s.col.imbalance = imbalanceOf(dt.colNs);
    s.col.lookaheadTicks = opLatencyCount[0] ? minOpLatency[0] : 0;
    return s;
}

namespace
{

constexpr unsigned kProjectedShards[] = {2, 4, 8, 16, 32, 64};

Json
histJson(const Histogram &h)
{
    Json j = Json::object();
    j.set("count", h.count());
    j.set("mean", h.mean());
    j.set("max", h.max());
    j.set("p50", h.p50());
    j.set("p95", h.p95());
    j.set("p99", h.p99());
    j.set("p999", h.p999());
    return j;
}

Json
shardingJson(const SimProfiler::ShardingView &v)
{
    Json j = Json::object();
    j.set("parallel_frac_events", v.parallelFracEvents);
    j.set("parallel_frac_ns", v.parallelFracNs);
    j.set("serial_frac_ns", v.serialFracNs);
    j.set("imbalance", v.imbalance);
    j.set("lookahead_ticks", static_cast<std::uint64_t>(v.lookaheadTicks));
    Json sp = Json::array();
    for (unsigned k : kProjectedShards) {
        Json e = Json::object();
        e.set("k", k);
        e.set("speedup", v.speedupAt(k));
        sp.push(std::move(e));
    }
    j.set("projected_speedup", std::move(sp));
    return j;
}

} // namespace

Json
SimProfiler::toJson() const
{
    Summary s = summary();
    std::vector<std::uint64_t> self = selfNs();

    Json j = Json::object();
    j.set("profile_version", std::uint64_t{1});
    j.set("wall_ns", s.wallNs);
    j.set("events", s.events);
    j.set("scopes", s.scopes);

    // Per-kind self/inclusive totals.
    std::array<std::uint64_t, std::size_t(ProfKind::NumKinds)> kindSelf{};
    std::array<std::uint64_t, std::size_t(ProfKind::NumKinds)> kindIncl{};
    std::array<std::uint64_t, std::size_t(ProfKind::NumKinds)> kindCnt{};
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        auto k = static_cast<std::size_t>(nodes[i].kind);
        kindSelf[k] += self[i];
        kindIncl[k] += nodes[i].ns;
        kindCnt[k] += nodes[i].count;
    }
    Json kinds = Json::object();
    for (std::size_t k = 0; k < std::size_t(ProfKind::NumKinds); ++k) {
        if (!kindCnt[k])
            continue;
        Json e = Json::object();
        e.set("self_ns", kindSelf[k]);
        e.set("incl_ns", kindIncl[k]);
        e.set("count", kindCnt[k]);
        kinds.set(toString(static_cast<ProfKind>(k)), std::move(e));
    }
    j.set("kinds", std::move(kinds));

    Json eq = Json::object();
    eq.set("depth", histJson(depthHist));
    eq.set("same_tick_batch", histJson(batchHist));
    eq.set("schedule_horizon_ticks", histJson(horizonHist));
    eq.set("slab_occupancy", histJson(occHist));
    eq.set("slab_high_water", slabHighWater);
    eq.set("free_list_high_water", freeHighWater);
    j.set("event_queue", std::move(eq));

    // Per-domain self ns + grant counts.
    DomainTimes dt;
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        ProfDomain d = inheritedDomain(static_cast<std::uint32_t>(i));
        if (d.dim == ProfDomain::Dim::Row) {
            if (dt.rowNs.size() <= d.index)
                dt.rowNs.resize(d.index + 1, 0);
            dt.rowNs[d.index] += self[i];
            dt.rowTotal += self[i];
        } else if (d.dim == ProfDomain::Dim::Col) {
            if (dt.colNs.size() <= d.index)
                dt.colNs.resize(d.index + 1, 0);
            dt.colNs[d.index] += self[i];
            dt.colTotal += self[i];
        } else {
            dt.noneTotal += self[i];
        }
    }
    auto domainArray = [](const std::vector<std::uint64_t> &ns,
                          const std::vector<std::uint64_t> &ops) {
        Json arr = Json::array();
        std::size_t n = std::max(ns.size(), ops.size());
        for (std::size_t i = 0; i < n; ++i) {
            Json e = Json::object();
            e.set("index", static_cast<std::uint64_t>(i));
            e.set("self_ns", i < ns.size() ? ns[i] : 0);
            e.set("ops", i < ops.size() ? ops[i] : 0);
            arr.push(std::move(e));
        }
        return arr;
    };
    Json domains = Json::object();
    domains.set("rows", domainArray(dt.rowNs, rowOps));
    domains.set("cols", domainArray(dt.colNs, colOps));
    domains.set("row_ns", dt.rowTotal);
    domains.set("col_ns", dt.colTotal);
    domains.set("unattributed_ns", dt.noneTotal);
    j.set("domains", std::move(domains));

    Json coupling = Json::object();
    Json ops = Json::object();
    ops.set("row", s.rowOps);
    ops.set("col", s.colOps);
    ops.set("other", s.otherOps);
    coupling.set("bus_ops", std::move(ops));
    Json lat = Json::object();
    lat.set("row_min",
            opLatencyCount[0] ? static_cast<std::uint64_t>(minOpLatency[0])
                              : 0);
    lat.set("col_min",
            opLatencyCount[1] ? static_cast<std::uint64_t>(minOpLatency[1])
                              : 0);
    lat.set("row", histJson(opLatencyHist[0]));
    lat.set("col", histJson(opLatencyHist[1]));
    coupling.set("op_latency_ticks", std::move(lat));
    static const char *kCrossNames[3] = {"row_to_col", "col_to_row",
                                         "same_dim"};
    Json cross = Json::object();
    for (unsigned c = 0; c < 3; ++c) {
        Json e = Json::object();
        e.set("count", crossCount[c]);
        e.set("min_latency_ticks",
              crossCount[c] ? static_cast<std::uint64_t>(crossMinLatency[c])
                            : 0);
        cross.set(kCrossNames[c], std::move(e));
    }
    coupling.set("cross", std::move(cross));
    Json sharding = Json::object();
    sharding.set("row_stripe", shardingJson(s.row));
    sharding.set("col_stripe", shardingJson(s.col));
    coupling.set("sharding", std::move(sharding));
    j.set("coupling", std::move(coupling));

    // Folded stacks, embedded so one JSON file carries everything.
    Json stacks = Json::array();
    std::vector<std::string> labels(nodes.size());
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        labels[i] = n.parent == 0
                        ? frameLabel(n)
                        : labels[n.parent] + ";" + frameLabel(n);
        if (!self[i])
            continue;
        Json e = Json::object();
        e.set("stack", labels[i]);
        e.set("self_ns", self[i]);
        e.set("count", nodes[i].count);
        stacks.push(std::move(e));
    }
    j.set("stacks", std::move(stacks));
    return j;
}

void
SimProfiler::exportJson(std::ostream &os) const
{
    os << toJson().dump(2);
    os << "\n";
}

void
SimProfiler::exportFolded(std::ostream &os) const
{
    std::vector<std::uint64_t> self = selfNs();
    std::vector<std::string> labels(nodes.size());
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        labels[i] = n.parent == 0
                        ? frameLabel(n)
                        : labels[n.parent] + ";" + frameLabel(n);
        if (self[i])
            os << labels[i] << " " << self[i] << "\n";
    }
}

namespace
{

std::string
fmtNs(double ns)
{
    char buf[64];
    if (ns >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2f s", ns / 1e9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof buf, "%.1f ms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1f us", ns / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f ns", ns);
    return buf;
}

std::string
fmtPct(double frac)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%5.1f%%", frac * 100.0);
    return buf;
}

void
histLine(std::ostream &os, const char *name, const Json &h)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  %-24s p50 %-10.0f p95 %-10.0f p99.9 %-10.0f "
                  "max %.0f",
                  name, h.num("p50", 0), h.num("p95", 0),
                  h.num("p999", 0), h.num("max", 0));
    os << buf << "\n";
}

void
shardingReport(std::ostream &os, const char *name, const Json &v)
{
    char imb[32];
    std::snprintf(imb, sizeof imb, "%.2f", v.num("imbalance", 1));
    os << "  " << name << ": parallel "
       << fmtPct(v.num("parallel_frac_ns", 0)) << " of host-ns ("
       << fmtPct(v.num("parallel_frac_events", 0)) << " of bus grants), "
       << "imbalance " << imb << ", lookahead "
       << v.u64("lookahead_ticks", 0) << " ticks\n"
       << "    projected speedup:";
    const Json &sp = v.at("projected_speedup");
    for (std::size_t i = 0; i < sp.size(); ++i) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "  k=%" PRIu64 " %.2fx",
                      sp.at(i).u64("k", 0), sp.at(i).num("speedup", 0));
        os << buf;
    }
    os << "\n";
}

} // namespace

bool
profReport(const Json &profile, std::ostream &os)
{
    if (profile.u64("profile_version", 0) != 1)
        return false;

    auto wallNs = static_cast<double>(profile.u64("wall_ns", 0));
    std::uint64_t events = profile.u64("events", 0);
    os << "self-profile: wall " << fmtNs(wallNs) << ", " << events
       << " events";
    if (wallNs > 0)
        os << " (" << static_cast<std::uint64_t>(events / (wallNs / 1e9))
           << " events/s)";
    os << ", " << profile.u64("scopes", 0) << " scopes\n";

    os << "host time by kind (self):\n";
    const Json &kinds = profile.at("kinds");
    double kindTotal = 0;
    for (const auto &[name, e] : kinds.members())
        kindTotal += e.num("self_ns", 0);
    for (const auto &[name, e] : kinds.members()) {
        double ns = e.num("self_ns", 0);
        char buf[160];
        std::snprintf(buf, sizeof buf, "  %-12s %s  %-10s n=%" PRIu64,
                      name.c_str(),
                      fmtPct(kindTotal > 0 ? ns / kindTotal : 0).c_str(),
                      fmtNs(ns).c_str(), e.u64("count", 0));
        os << buf << "\n";
    }

    os << "event queue:\n";
    const Json &eq = profile.at("event_queue");
    histLine(os, "heap depth", eq.at("depth"));
    histLine(os, "same-tick batch", eq.at("same_tick_batch"));
    histLine(os, "schedule horizon", eq.at("schedule_horizon_ticks"));
    histLine(os, "slab occupancy", eq.at("slab_occupancy"));
    os << "  slab high-water " << eq.u64("slab_high_water", 0)
       << " slots, free-list high-water "
       << eq.u64("free_list_high_water", 0) << "\n";

    const Json &dom = profile.at("domains");
    double rowNs = dom.num("row_ns", 0);
    double colNs = dom.num("col_ns", 0);
    double noneNs = dom.num("unattributed_ns", 0);
    double domTotal = rowNs + colNs + noneNs;
    os << "host time by domain (self):\n";
    os << "  row buses    " << fmtPct(domTotal > 0 ? rowNs / domTotal : 0)
       << "  " << fmtNs(rowNs) << " over " << dom.at("rows").size()
       << " domains\n";
    os << "  col buses    " << fmtPct(domTotal > 0 ? colNs / domTotal : 0)
       << "  " << fmtNs(colNs) << " over " << dom.at("cols").size()
       << " domains\n";
    os << "  unattributed " << fmtPct(domTotal > 0 ? noneNs / domTotal : 0)
       << "  " << fmtNs(noneNs) << "\n";

    const Json &coupling = profile.at("coupling");
    const Json &ops = coupling.at("bus_ops");
    std::uint64_t rowOps = ops.u64("row", 0);
    std::uint64_t colOps = ops.u64("col", 0);
    std::uint64_t opsTotal = rowOps + colOps + ops.u64("other", 0);
    const Json &cross = coupling.at("cross");
    std::uint64_t crossOps = cross.at("row_to_col").u64("count", 0)
                           + cross.at("col_to_row").u64("count", 0)
                           + cross.at("same_dim").u64("count", 0);
    os << "coupling:\n";
    os << "  bus grants: row " << rowOps << " ("
       << fmtPct(opsTotal ? double(rowOps) / double(opsTotal) : 0)
       << "), col " << colOps << " ("
       << fmtPct(opsTotal ? double(colOps) / double(opsTotal) : 0)
       << ")\n";
    os << "  cross-domain enqueues: " << crossOps << " ("
       << fmtPct(opsTotal ? double(crossOps) / double(opsTotal) : 0)
       << " of grants); row->col "
       << cross.at("row_to_col").u64("count", 0) << " (min "
       << cross.at("row_to_col").u64("min_latency_ticks", 0)
       << " ticks), col->row " << cross.at("col_to_row").u64("count", 0)
       << " (min " << cross.at("col_to_row").u64("min_latency_ticks", 0)
       << " ticks)\n";
    const Json &lat = coupling.at("op_latency_ticks");
    os << "  min enqueue->delivery: row " << lat.u64("row_min", 0)
       << " ticks, col " << lat.u64("col_min", 0) << " ticks\n";

    os << "parallelism readiness (Amdahl projection, measured "
          "imbalance):\n";
    const Json &sharding = coupling.at("sharding");
    shardingReport(os, "row-stripe", sharding.at("row_stripe"));
    shardingReport(os, "col-stripe", sharding.at("col_stripe"));
    return true;
}

} // namespace mcube
