#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/parallel_engine.hh"

namespace mcube
{

void
EventQueue::parScheduleLane(unsigned lane, Tick when, EventFn fn)
{
    par->scheduleLane(lane, when, std::move(fn));
}

void
EventQueue::parScheduleToLane(unsigned lane, Tick delay, EventFn fn)
{
    Tick when = par->ctxNow() + delay;
    // Inside a phase, a foreign lane may already have run past `when`
    // within the current window; the earliest tick guaranteed to be in
    // every lane's future is the next window boundary. Same-lane
    // schedules are always monotonic, and coordinator-context
    // schedules (between windows) are at or after the last window end,
    // so both keep their exact tick.
    const unsigned ctx = par->ctxLane();
    if (ctx != UINT32_MAX && ctx != lane) {
        const Tick safe = par->ctxNow() + par->window();
        if (when < safe)
            when = safe;
    }
    par->scheduleLane(lane, when, std::move(fn));
}

Tick
EventQueue::parNow() const
{
    return par->ctxNow();
}

bool
EventQueue::parEmpty() const
{
    return par->empty();
}

bool
EventQueue::empty() const
{
    return heap.empty() && (!par || parEmpty());
}

std::uint64_t
EventQueue::eventsExecuted() const
{
    return statExecuted.value() + (par ? par->eventsExecuted() : 0);
}

bool
EventQueue::foreignLane(unsigned lane) const
{
    if (!par)
        return false;
    const unsigned ctx = par->ctxLane();
    return ctx != UINT32_MAX && ctx != lane;
}

void
EventQueue::deferToLane(unsigned lane, EventFn fn)
{
    if (!par) {
        fn();
        return;
    }
    par->deferCall(lane, std::move(fn));
}

void
EventQueue::siftUp(std::size_t i)
{
    Key k = heap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) >> 2;
        if (!before(k, heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = k;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap.size();
    Key k = heap[i];
    for (;;) {
        std::size_t child = 4 * i + 1;
        if (child >= n)
            break;
        std::size_t best = child;
        std::size_t last = std::min(child + 4, n);
        for (std::size_t j = child + 1; j < last; ++j)
            if (before(heap[j], heap[best]))
                best = j;
        if (!before(heap[best], k))
            break;
        heap[i] = heap[best];
        i = best;
    }
    heap[i] = k;
}

void
EventQueue::popTop()
{
    heap.front() = heap.back();
    heap.pop_back();
    if (!heap.empty())
        siftDown(0);
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    if (par) {
        // Windows are the smallest unit of parallel work: step whole
        // windows until drained or the (approximate) limit is met.
        // Each non-empty window executes at least one event, so drain
        // loops calling run(1) always make progress.
        std::uint64_t total = 0;
        while (!par->empty() && total < limit)
            total += par->runOneWindow();
        _now = std::max(_now, par->now());
        return total;
    }
    std::uint64_t count = 0;
    while (!heap.empty() && count < limit) {
        Key top = heap.front();
        popTop();
        _now = top.when;
        // Move the callable out and free its slot before invoking: the
        // callback may schedule new events (growing or reusing the
        // slab) while it runs.
        EventFn fn = std::move(slots[top.slot]);
        freeSlots.push_back(top.slot);
        if (SimProfiler *prof = SimProfiler::active()) {
            prof->onExecute(top.when, heap.size() + 1, slots.size(),
                            freeSlots.size());
            ProfScope scope(prof, ProfKind::Event, 0, {});
            fn();
        } else {
            fn();
        }
        ++count;
        ++statExecuted;
    }
    return count;
}

std::uint64_t
EventQueue::runUntil(Tick end, std::uint64_t limit)
{
    if (par) {
        (void)limit; // window granularity; see header
        const std::uint64_t n = par->runUntil(end);
        _now = std::max(_now, par->now());
        return n;
    }
    std::uint64_t count = 0;
    while (!heap.empty() && heap.front().when <= end && count < limit) {
        Key top = heap.front();
        popTop();
        _now = top.when;
        EventFn fn = std::move(slots[top.slot]);
        freeSlots.push_back(top.slot);
        if (SimProfiler *prof = SimProfiler::active()) {
            prof->onExecute(top.when, heap.size() + 1, slots.size(),
                            freeSlots.size());
            ProfScope scope(prof, ProfKind::Event, 0, {});
            fn();
        } else {
            fn();
        }
        ++count;
        ++statExecuted;
    }
    if (_now < end && (heap.empty() || heap.front().when > end))
        _now = end;
    return count;
}

} // namespace mcube
