#include "sim/event_queue.hh"

#include <utility>

namespace mcube
{

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t count = 0;
    while (!heap.empty() && count < limit) {
        // The callback may schedule new events, so pop before invoking.
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        _now = e.when;
        e.cb();
        ++count;
        ++executed;
    }
    return count;
}

std::uint64_t
EventQueue::runUntil(Tick end, std::uint64_t limit)
{
    std::uint64_t count = 0;
    while (!heap.empty() && heap.top().when <= end && count < limit) {
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        _now = e.when;
        e.cb();
        ++count;
        ++executed;
    }
    if (_now < end && (heap.empty() || heap.top().when > end))
        _now = end;
    return count;
}

} // namespace mcube
