/**
 * @file
 * Conservative parallel discrete-event engine for a *single*
 * simulation (docs/PERFORMANCE.md, "Parallel single-simulation
 * engine").
 *
 * The Multicube grid is naturally partitionable: each bus plus its
 * attached agents is a mostly-independent event domain, coupled only
 * by cross-bus transactions. The engine shards the event queue into
 * *lanes* — one serial lane (workloads, controller timers, completion
 * callbacks), one lane per row bus and one per column bus — and
 * executes simulated time in fixed *windows* whose width is the
 * minimum bus occupancy (arbitration + header ticks): the same
 * minimum cross-domain hop latency the coupling analyzer
 * (src/sim/profiler.hh) measures as the safe conservative lookahead
 * bound.
 *
 * Within one window [T, T + W):
 *
 *   1. every ROW lane runs its events on the worker pool; a row lane
 *      touches only its bus and the controllers attached to it
 *      (row r owns controllers (r, *)), so row lanes never share
 *      mutable state;
 *   2. barrier; cross-lane traffic produced in 1 is merged;
 *   3. every COLUMN lane runs (column c owns controllers (*, c) and
 *      memory module c);
 *   4. barrier; merge;
 *   5. the SERIAL lane runs exclusively on the coordinator;
 *   6. merge, and the window advances.
 *
 * Cross-lane interactions never touch a foreign lane directly. A
 * Bus::request issued from a foreign lane is recorded in the issuing
 * lane's *outbox* as a deferred call; a schedule() targeting another
 * lane is recorded as a deferred event. At each merge the coordinator
 * applies all outbox entries in the canonical order
 *
 *     (tick, source lane id, source entry order)
 *
 * and destination sequence numbers are assigned at merge time — an
 * order with no dependence on the worker count or on which worker ran
 * which lane. Together with per-lane (tick, seq) execution order this
 * makes the simulated results **bit-identical for any --sim-threads
 * value**; a ctest (parallel_engine_test) and the tsan CI job enforce
 * it at 1/2/4/8 shards.
 *
 * The parallel engine is a *distinct* canonical schedule from the
 * classic sequential engine (simThreads = 0): phases quantize
 * cross-dimension interleavings, so its stat trees are reproducible
 * across thread counts but are not expected to equal the classic
 * engine's. The classic engine stays the default and is untouched.
 *
 * Scheduling an event in the past is a hard error here (it would be a
 * cross-shard causality violation); see EventQueue::schedule.
 */

#ifndef MCUBE_SIM_PARALLEL_ENGINE_HH
#define MCUBE_SIM_PARALLEL_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mcube
{

class SimProfiler;
class TransactionTracer;

/**
 * The window-phased parallel engine behind EventQueue's parallel
 * mode. Constructed by MulticubeSystem when SystemParams::simThreads
 * is non-zero; model code never talks to it directly — everything
 * goes through EventQueue::schedule / scheduleInLane / deferToLane /
 * scheduleToLane.
 *
 * Lane-aware observability: when a SimProfiler or TransactionTracer
 * is active on the coordinator thread, the engine gives every lane a
 * *shard* observer. Lane execution (and merge-applied cross-lane
 * calls) swap the running lane's shard into the thread-local active
 * slot, so model-code hook sites need no changes; at every window
 * boundary the coordinator folds the shards back into the main
 * observer — profiler shards via SimProfiler::absorb in lane order,
 * tracer shards sorted into the main ring in canonical
 * (tick, lane, intra-lane order). The trace export is therefore
 * bit-identical for any worker count, and simulated results are
 * bit-identical with observers on or off (neither ever touches
 * simulated state).
 */
class ParallelEngine
{
  public:
    /** Lane 0 is the serial lane. */
    static constexpr unsigned serialLane = 0;

    /**
     * @param eq Owning queue (routes its schedules here while set).
     * @param n Grid dimension: n row lanes plus n column lanes.
     * @param workers Requested worker count (>= 1); clamped to n, the
     *                widest any phase can go.
     * @param window Lookahead window width in ticks (>= 1); the
     *               minimum cross-domain hop latency.
     */
    ParallelEngine(EventQueue &eq, unsigned n, unsigned workers,
                   Tick window);

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    ~ParallelEngine();

    unsigned rowLane(unsigned r) const { return 1 + r; }
    unsigned colLane(unsigned c) const { return 1 + n_ + c; }
    unsigned numLanes() const { return 1 + 2 * n_; }
    unsigned workers() const { return workers_; }
    Tick window() const { return window_; }

    /** Engine-global simulated time (the last window boundary). */
    Tick now() const { return now_; }

    /** Simulated time of the current execution context: the running
     *  event's tick on a worker, now() otherwise. */
    Tick ctxNow() const;

    /** Lane of the calling thread's execution context, or
     *  UINT32_MAX when no event is being executed (coordinator
     *  between phases — direct access is safe there). */
    unsigned ctxLane() const;

    /**
     * Schedule @p fn at @p when on @p lane. Same-lane schedules go
     * straight into the lane's heap; foreign-lane schedules are
     * deferred through the issuing lane's outbox and merged
     * canonically at the next barrier. @p when earlier than the
     * context's now is a hard error (see file comment).
     */
    void scheduleLane(unsigned lane, Tick when, EventFn fn);

    /**
     * Defer a direct cross-lane call (e.g. a Bus::request from a
     * foreign lane): @p fn runs at the next merge, in canonical
     * order, under @p lane's context at the caller's current tick.
     * Outside any phase it runs inline immediately.
     */
    void deferCall(unsigned lane, EventFn fn);

    /** Run windows until simulated time reaches @p end (events at
     *  exactly @p end do fire). @return events executed. */
    std::uint64_t runUntil(Tick end);

    /** Run a single window (used by drain loops); empty stretches are
     *  skipped in one jump. @return events executed. */
    std::uint64_t runOneWindow();

    /** True if no events remain in any lane. */
    bool empty() const;

    /** Events executed so far, all lanes (safe to read from a monitor
     *  thread). */
    std::uint64_t eventsExecuted() const
    {
        return executedTotal_.load(std::memory_order_relaxed);
    }

    /**
     * Invoke @p fn every @p every_windows windows from the
     * coordinator, between phases (per-worker progress is readable
     * then). Supervised runs wire their heartbeat here so a stalled
     * worker pool goes silent instead of wedging.
     */
    void
    setProgressHook(std::function<void()> fn,
                    std::uint64_t every_windows = 256)
    {
        progressHook = std::move(fn);
        progressEvery = every_windows ? every_windows : 1;
    }

    /**
     * Invoke @p fn on the coordinator at the end of every window,
     * after the serial lane has drained and every cross-lane deferral
     * of the window has been applied. At that point the simulation
     * state is quiescent and globally consistent — it equals the
     * state after the last event of the window, a state the
     * sequential engine also passes through. Global-state validators
     * (the CoherenceChecker's per-op invariant checks) run here:
     * mid-window they would read live lane state that is ahead of the
     * canonical position of their deferred callback. Hooks run in
     * registration order and count toward the serial-phase wall time.
     */
    void addBarrierHook(std::function<void()> fn)
    {
        barrierHooks.push_back(std::move(fn));
    }

    /** Realized execution telemetry (per-shard attribution). */
    struct Telemetry
    {
        unsigned workersRequested = 0;
        unsigned workersEffective = 0;
        Tick windowTicks = 0;
        std::uint64_t windows = 0;
        std::uint64_t parallelPhases = 0;
        std::uint64_t events = 0;
        std::uint64_t serialEvents = 0;
        std::uint64_t rowEvents = 0;
        std::uint64_t colEvents = 0;
        std::uint64_t crossLaneOps = 0;  //!< merged outbox entries
        std::uint64_t wallNs = 0;        //!< inside runUntil/runOneWindow
        std::uint64_t serialNs = 0;      //!< serial phase + merges
        std::uint64_t rowPhaseNs = 0;
        std::uint64_t colPhaseNs = 0;
        std::uint64_t barrierWaitNs = 0; //!< coordinator wait at joins
        std::uint64_t peakRssBytes = 0;  //!< VmHWM at snapshot (0 if
                                         //!< unavailable)
        std::vector<std::uint64_t> laneEvents;   //!< per shard
        std::vector<std::uint64_t> workerEvents; //!< per worker

        /** Share of events executed in parallel phases. */
        double parallelFracEvents() const;
        /** Share of events that ran on the serial lane — the Amdahl
         *  bottleneck the per-node sharding attacks. */
        double serialFracEvents() const;
        /** Mean serial-lane events per window (first-class per-window
         *  pressure column; see docs/PERFORMANCE.md). */
        double serialEventsPerWindow() const;
        /** Mean serial-phase host-ns per window. */
        double serialNsPerWindow() const;
        /** Host-ns share of the parallel phases. */
        double parallelFracNs() const;
        /** Max/mean per-lane event imbalance (row+col lanes). */
        double imbalance() const;
        /** Amdahl projection from the realized fractions, for
         *  comparison against the measured speedup of an A-B thread
         *  pair (perf_check.py's *_t1 columns). */
        double projectedSpeedup(unsigned k) const;
    };

    /** Snapshot the telemetry (call while idle). */
    Telemetry telemetry() const;

    /** Write telemetry() as a JSON object (the per-shard artifact CI
     *  uploads; see --par-stats-out in sweep_cli). */
    void telemetryJson(std::ostream &os) const;

  private:
    struct Lane;
    struct Outbox;

    void pushEvent(Lane &lane, Tick when, EventFn fn);
    /** Execute @p lane's events with tick < @p window_end. */
    void runLane(unsigned lane_idx, Tick window_end);
    /** Run lanes [first, first+count) in parallel up to
     *  @p window_end. */
    void runPhase(unsigned first, unsigned count, Tick window_end,
                  std::uint64_t &phase_ns);
    /** Claim-and-run lanes of one phase epoch (workers and the
     *  coordinator both execute this). */
    void workLoop(unsigned worker_id, std::uint64_t epoch_base,
                  unsigned first, unsigned count, Tick window_end);
    /** Apply every lane's outbox in canonical order. */
    void mergeOutboxes();
    /** Detect coordinator-active observers and (de)provision lane
     *  shards accordingly. Called while the pool is idle. */
    void syncObservers();
    /** Fold every lane's shard observers into the main ones (profiler
     *  absorb in lane order; tracer events sorted canonically). */
    void mergeObservers();
    /** Earliest pending tick across all lanes (Tick max if none). */
    Tick earliestEvent() const;
    /** One window starting at now_, events with tick < window_end. */
    void runWindow(Tick window_end);
    void workerMain(unsigned worker_id);
    [[noreturn]] void fatalPastTick(unsigned lane, Tick when,
                                    Tick ref) const;

    EventQueue &eq;
    const unsigned n_;
    const unsigned workersRequested_;
    const unsigned workers_;     //!< effective (<= n, >= 1)
    const Tick window_;
    Tick now_ = 0;

    std::vector<std::unique_ptr<Lane>> lanes;

    // Worker pool (workers_ - 1 threads; the coordinator works too).
    // Lanes are claimed via an epoch-tagged CAS word, so a worker that
    // wakes up late simply fails the epoch check and goes back to
    // sleep — the coordinator only ever waits for *claimed* lanes to
    // finish, never for straggler threads to wake (which keeps an
    // oversubscribed pool, e.g. 4 workers on 2 cores, cheap).
    std::vector<std::thread> threads;
    std::mutex poolMutex;
    std::condition_variable poolCv;
    /** (epoch << 32) | next-lane-to-claim. */
    std::atomic<std::uint64_t> claimWord_{0};
    /** Lanes of the current phase that finished running. */
    std::atomic<std::uint32_t> tasksDone_{0};
    bool quit_ = false;
    // Phase descriptor; written and read under poolMutex.
    std::uint64_t phaseEpoch_ = 0;
    unsigned phaseFirst_ = 0;
    unsigned phaseCount_ = 0;
    Tick phaseEnd_ = 0;

    std::atomic<std::uint64_t> executedTotal_{0};

    std::function<void()> progressHook;
    std::uint64_t progressEvery = 256;
    std::vector<std::function<void()>> barrierHooks;

    // Telemetry (coordinator-owned except workerEvents_, which each
    // worker writes for itself inside phases).
    std::uint64_t windows_ = 0;
    std::uint64_t parallelPhases_ = 0;
    std::uint64_t serialEvents_ = 0;
    std::uint64_t rowEvents_ = 0;
    std::uint64_t colEvents_ = 0;
    std::uint64_t crossLaneOps_ = 0;
    std::uint64_t wallNs_ = 0;
    std::uint64_t serialNs_ = 0;
    std::uint64_t rowPhaseNs_ = 0;
    std::uint64_t colPhaseNs_ = 0;
    std::uint64_t barrierWaitNs_ = 0;
    std::vector<std::uint64_t> workerEvents_;

    /** Scratch for mergeOutboxes (avoids per-merge allocation). */
    struct MergeRef
    {
        Tick when;
        std::uint32_t srcLane;
        std::uint32_t srcIdx;
    };
    std::vector<MergeRef> mergeScratch;

    // Lane-aware observability (see class comment). Shards exist only
    // while the corresponding main observer is active; both vectors
    // are indexed by lane.
    SimProfiler *mainProf_ = nullptr;
    TransactionTracer *mainTracer_ = nullptr;
    std::vector<std::unique_ptr<SimProfiler>> profShards_;
    std::vector<std::unique_ptr<TransactionTracer>> traceShards_;
    /** Scratch for mergeObservers' canonical trace sort. */
    struct TraceRef
    {
        Tick tick;
        std::uint32_t lane;
        std::uint32_t idx;
    };
    std::vector<TraceRef> traceScratch_;
};

} // namespace mcube

#endif // MCUBE_SIM_PARALLEL_ENGINE_HH
