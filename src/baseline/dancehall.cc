#include "baseline/dancehall.hh"

#include <cassert>

namespace mcube
{

DancehallSystem::DancehallSystem(const DancehallParams &p) : params(p)
{
    assert(p.numProcessors >= 1 && p.numBanks >= 1);
    inFlight.assign(p.numProcessors, false);
    bankBusyUntil.assign(p.numBanks, 0);
    bankBusyTotal.assign(p.numBanks, 0);
}

unsigned
DancehallSystem::stages() const
{
    unsigned s = 0;
    unsigned p = 1;
    while (p < params.numProcessors) {
        p *= 2;
        ++s;
    }
    return s == 0 ? 1 : s;
}

Tick
DancehallSystem::networkLatency() const
{
    return static_cast<Tick>(stages()) * params.hopTicks;
}

void
DancehallSystem::access(NodeId proc, Addr addr, bool is_write,
                        std::uint64_t token,
                        std::function<void(std::uint64_t)> cb)
{
    assert(proc < params.numProcessors);
    assert(!inFlight[proc]);
    inFlight[proc] = true;
    ++statAccesses;

    unsigned bank = static_cast<unsigned>(addr % params.numBanks);
    Tick arrive = eq.now() + networkLatency();
    Tick start = std::max(arrive, bankBusyUntil[bank]);
    Tick service = params.bankServiceTicks + params.wordTicks;
    bankBusyUntil[bank] = start + service;
    bankBusyTotal[bank] += service;
    Tick reply_at = bankBusyUntil[bank] + networkLatency();

    eq.schedule(reply_at,
                [this, proc, addr, is_write, token,
                 cb = std::move(cb)] {
                    std::uint64_t result;
                    if (is_write) {
                        mem[addr] = token;
                        result = token;
                    } else {
                        result = mem[addr];
                    }
                    inFlight[proc] = false;
                    if (cb)
                        cb(result);
                });
}

double
DancehallSystem::bankUtilization() const
{
    Tick now = eq.now();
    if (now == 0)
        return 0.0;
    double sum = 0.0;
    for (Tick t : bankBusyTotal)
        sum += static_cast<double>(std::min(t, now));
    return sum
         / (static_cast<double>(now) * params.numBanks);
}

DancehallWorkload::DancehallWorkload(DancehallSystem &sys,
                                     double requests_per_ms,
                                     double frac_write,
                                     std::uint64_t shared_lines,
                                     std::uint64_t seed)
    : sys(sys), rate(requests_per_ms), fracWrite(frac_write),
      sharedLines(shared_lines), seeder(seed)
{
    agents.resize(sys.numProcessors());
    for (NodeId id = 0; id < sys.numProcessors(); ++id) {
        agents[id].id = id;
        agents[id].rng = seeder.fork();
    }
}

void
DancehallWorkload::start()
{
    startTick = sys.eventQueue().now();
    running = true;
    for (auto &a : agents)
        scheduleNext(a);
}

void
DancehallWorkload::scheduleNext(Agent &a)
{
    if (!running)
        return;
    Tick think = static_cast<Tick>(a.rng.exponential(1e6 / rate));
    if (think == 0)
        think = 1;
    NodeId id = a.id;
    sys.eventQueue().scheduleIn(think, [this, id] { issue(agents[id]); });
}

void
DancehallWorkload::issue(Agent &a)
{
    if (!running)
        return;
    if (sys.busy(a.id)) {
        scheduleNext(a);
        return;
    }
    Addr addr = a.rng.below(static_cast<std::uint32_t>(sharedLines));
    bool is_write = a.rng.chance(fracWrite);
    NodeId id = a.id;
    sys.access(a.id, addr, is_write,
               (static_cast<std::uint64_t>(a.id + 1) << 40)
                   + a.nextToken++,
               [this, id](std::uint64_t) {
                   ++done;
                   scheduleNext(agents[id]);
               });
}

double
DancehallWorkload::efficiency() const
{
    Tick end = stopTick ? stopTick : sys.eventQueue().now();
    if (end <= startTick)
        return 1.0;
    double elapsed_ms = static_cast<double>(end - startTick) / 1e6;
    double ideal = rate * elapsed_ms
                 * static_cast<double>(agents.size());
    if (ideal <= 0.0)
        return 1.0;
    double eff = static_cast<double>(done) / ideal;
    return eff > 1.0 ? 1.0 : eff;
}

} // namespace mcube
