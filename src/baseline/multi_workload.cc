#include "baseline/multi_workload.hh"

namespace mcube
{

namespace
{

constexpr double ticksPerMs = 1e6;

} // namespace

MultiMixWorkload::MultiMixWorkload(SingleBusMulti &sys,
                                   const MixParams &params)
    : sys(sys), params(params), seeder(params.seed)
{
    agents.resize(sys.numProcessors());
    for (NodeId id = 0; id < sys.numProcessors(); ++id) {
        agents[id].id = id;
        agents[id].rng = seeder.fork();
    }
}

void
MultiMixWorkload::start()
{
    startTick = sys.eventQueue().now();
    running = true;
    for (auto &a : agents)
        scheduleNext(a);
}

void
MultiMixWorkload::scheduleNext(Agent &a)
{
    if (!running)
        return;
    double mean_think = ticksPerMs / params.requestsPerMs;
    Tick think = static_cast<Tick>(a.rng.exponential(mean_think));
    if (think == 0)
        think = 1;
    a.computeTicks += think;
    NodeId id = a.id;
    sys.eventQueue().scheduleIn(think, [this, id] { issue(agents[id]); });
}

bool
MultiMixWorkload::pickModified(Agent &a, Addr &addr_out)
{
    while (!modifiedList.empty()) {
        std::size_t i = a.rng.below(
            static_cast<std::uint32_t>(modifiedList.size()));
        Addr cand = modifiedList[i];
        auto it = modifiedBy.find(cand);
        if (it == modifiedBy.end()) {
            modifiedList[i] = modifiedList.back();
            modifiedList.pop_back();
            continue;
        }
        if (it->second == a.id)
            return false;
        addr_out = cand;
        return true;
    }
    return false;
}

void
MultiMixWorkload::issue(Agent &a)
{
    if (!running)
        return;

    MultiCache &cache = sys.cache(a.id);
    if (cache.busy()) {
        scheduleNext(a);
        return;
    }

    double r = a.rng.uniform();
    unsigned cls;
    if (r < params.fracReadUnmod)
        cls = 0;
    else if (r < params.fracReadUnmod + params.fracReadMod)
        cls = 1;
    else if (r < params.fracReadUnmod + params.fracReadMod
                     + params.fracWriteUnmod)
        cls = 2;
    else
        cls = 3;

    Addr addr = 0;
    bool to_modified = false;
    if (cls == 1 || cls == 3)
        to_modified = pickModified(a, addr);
    if (!to_modified)
        addr = a.rng.next64() % params.addressSpace;

    NodeId id = a.id;
    bool is_write = cls >= 2;
    auto done = [this, id, addr, is_write](std::uint64_t) {
        Agent &ag = agents[id];
        ++completedCount;
        if (is_write) {
            auto [it, fresh] = modifiedBy.emplace(addr, id);
            if (!fresh)
                it->second = id;
            else
                modifiedList.push_back(addr);
        } else {
            modifiedBy.erase(addr);
        }
        scheduleNext(ag);
    };

    bool hit;
    if (is_write) {
        hit = cache.write(addr, (static_cast<std::uint64_t>(a.id + 1)
                                 << 40) + a.nextToken++,
                          done);
    } else {
        std::uint64_t tok = 0;
        hit = cache.read(addr, tok, done);
    }
    if (hit) {
        ++completedCount;
        scheduleNext(a);
    }
}

double
MultiMixWorkload::efficiency() const
{
    // Same metric as MixWorkload: achieved / ideal throughput.
    Tick end = stopTick ? stopTick : sys.eventQueue().now();
    if (end <= startTick)
        return 1.0;
    double elapsed_ms = static_cast<double>(end - startTick) / 1e6;
    double ideal = params.requestsPerMs * elapsed_ms
                 * static_cast<double>(agents.size());
    if (ideal <= 0.0)
        return 1.0;
    double eff = static_cast<double>(completedCount) / ideal;
    return eff > 1.0 ? 1.0 : eff;
}

} // namespace mcube
