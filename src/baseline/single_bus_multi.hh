/**
 * @file
 * Baseline: a single-bus "multi" with Goodman's write-once snooping
 * protocol [Good83] — the machine class the Wisconsin Multicube
 * generalises, and the baseline its Section 1 motivation compares
 * against ("this class of multiprocessors is limited to some tens of
 * processors").
 *
 * Per-cache states follow write-once:
 *   Invalid    no copy
 *   Valid      clean shared copy, memory current
 *   Reserved   written exactly once, memory current, sole copy
 *   Dirty      written repeatedly, memory stale, sole copy
 *
 * Transitions: the first write to a Valid line goes through to memory
 * as a one-word bus write (invalidating other copies and yielding
 * Reserved); later writes are local (Dirty). A read miss is served by
 * memory or by a Dirty holder (which also updates memory). A write
 * miss uses read-with-intent (READ-MOD): all other copies invalidate.
 *
 * The timing substrate (Bus) is shared with the Multicube so the
 * comparison isolates the interconnect topology.
 */

#ifndef MCUBE_BASELINE_SINGLE_BUS_MULTI_HH
#define MCUBE_BASELINE_SINGLE_BUS_MULTI_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/bus.hh"
#include "cache/cache_array.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

/** Write-once line states. */
enum class WoMode : std::uint8_t
{
    Invalid,
    Valid,
    Reserved,
    Dirty,
};

/** Configuration of the baseline machine. */
struct MultiParams
{
    unsigned numProcessors = 16;
    BusParams bus{};
    CacheArrayParams cache{1024, 8};
    Tick memAccessTicks = 750;
    std::uint64_t seed = 11;
};

class SingleBusMulti;

/** One processor's cache controller on the single bus. */
class MultiCache
{
  public:
    using CompletionCb = std::function<void(std::uint64_t token)>;

    MultiCache(SingleBusMulti &sys, NodeId id);

    bool busy() const { return pendingActive; }

    /** Read a line; cb fires on miss completion.
     *  @return true if it hit (token_out valid, no cb). */
    bool read(Addr addr, std::uint64_t &token_out, CompletionCb cb);

    /** Write a line; cb fires when the write owns the line. */
    bool write(Addr addr, std::uint64_t token, CompletionCb cb);

    WoMode modeOf(Addr addr) const;
    std::uint64_t tokenOf(Addr addr) const;

    std::uint64_t hits() const { return statHits; }
    std::uint64_t misses() const { return statMisses; }
    std::uint64_t invalidations() const { return statInvals; }

  private:
    friend class SingleBusMulti;

    struct Line
    {
        Addr addr = 0;
        bool tagValid = false;
        WoMode mode = WoMode::Invalid;
        std::uint64_t token = 0;
        std::uint64_t lru = 0;
    };

    Line *find(Addr addr);
    const Line *find(Addr addr) const;
    Line *allocSlot(Addr addr);

    /** Snoop one bus op (called by the system's bus agent). */
    void snoop(const BusOp &op);

    void complete(std::uint64_t token);

    SingleBusMulti &sys;
    NodeId id;
    std::vector<Line> lines;
    std::uint64_t nextLru = 1;

    bool pendingActive = false;
    Addr pendingAddr = 0;
    bool pendingWrite = false;
    std::uint64_t pendingToken = 0;
    CompletionCb pendingCb;

    std::uint64_t statHits = 0;
    std::uint64_t statMisses = 0;
    std::uint64_t statInvals = 0;
};

/** The whole single-bus machine. */
class SingleBusMulti
{
  public:
    explicit SingleBusMulti(const MultiParams &params);

    SingleBusMulti(const SingleBusMulti &) = delete;
    SingleBusMulti &operator=(const SingleBusMulti &) = delete;

    EventQueue &eventQueue() { return eq; }
    unsigned numProcessors() const { return params.numProcessors; }
    MultiCache &cache(NodeId id) { return *caches[id]; }
    Bus &bus() { return *theBus; }

    bool memValid(Addr addr) const;
    std::uint64_t memToken(Addr addr) const;

    void run(Tick ticks) { eq.runUntil(eq.now() + ticks); }
    bool drain(Tick max_ticks = 10'000'000);

  private:
    friend class MultiCache;

    struct MemLine
    {
        std::uint64_t token = 0;
        bool valid = true;  //!< false while a dirty copy exists
    };

    /** Every cache + memory snoops through this one agent (keeps
     *  deterministic ordering simple). */
    struct Agent : BusAgent
    {
        SingleBusMulti *owner = nullptr;
        void snoop(const BusOp &op, bool) override;
    };

    void snoopAll(const BusOp &op);
    void memorySnoop(const BusOp &op);
    void memoryRespond(BusOp op);

    MultiParams params;
    EventQueue eq;
    std::unique_ptr<Bus> theBus;
    Agent agent;
    unsigned slot = 0;
    std::vector<std::unique_ptr<MultiCache>> caches;
    mutable std::unordered_map<Addr, MemLine> mem;
    Tick memBusyUntil = 0;
};

} // namespace mcube

#endif // MCUBE_BASELINE_SINGLE_BUS_MULTI_HH
