#include "baseline/single_bus_multi.hh"

#include <cassert>

namespace mcube
{

// ---------------------------------------------------------------------
// MultiCache
// ---------------------------------------------------------------------

MultiCache::MultiCache(SingleBusMulti &sys, NodeId id) : sys(sys), id(id)
{
    lines.resize(sys.params.cache.numSets * sys.params.cache.assoc);
}

MultiCache::Line *
MultiCache::find(Addr addr)
{
    std::size_t set = addr % sys.params.cache.numSets;
    std::size_t base = set * sys.params.cache.assoc;
    for (unsigned w = 0; w < sys.params.cache.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.tagValid && l.addr == addr)
            return &l;
    }
    return nullptr;
}

const MultiCache::Line *
MultiCache::find(Addr addr) const
{
    return const_cast<MultiCache *>(this)->find(addr);
}

MultiCache::Line *
MultiCache::allocSlot(Addr addr)
{
    std::size_t set = addr % sys.params.cache.numSets;
    std::size_t base = set * sys.params.cache.assoc;
    Line *lru = nullptr;
    for (unsigned w = 0; w < sys.params.cache.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.tagValid && l.addr == addr)
            return &l;
        if (!l.tagValid)
            return &l;
        if (!lru || l.lru < lru->lru)
            lru = &l;
    }
    return lru;
}

WoMode
MultiCache::modeOf(Addr addr) const
{
    const Line *l = find(addr);
    return l ? l->mode : WoMode::Invalid;
}

std::uint64_t
MultiCache::tokenOf(Addr addr) const
{
    const Line *l = find(addr);
    return l ? l->token : 0;
}

bool
MultiCache::read(Addr addr, std::uint64_t &token_out, CompletionCb cb)
{
    Line *l = find(addr);
    if (l && l->mode != WoMode::Invalid) {
        l->lru = nextLru++;
        token_out = l->token;
        ++statHits;
        return true;
    }
    assert(!pendingActive);
    ++statMisses;

    Line *slot = allocSlot(addr);
    if (slot->tagValid && slot->mode == WoMode::Dirty) {
        BusOp wb;
        wb.txn = TxnType::WriteBack;
        wb.params = op::Update;
        wb.addr = slot->addr;
        wb.origin = id;
        wb.hasData = true;
        wb.data.token = slot->token;
        sys.theBus->request(static_cast<unsigned>(id), wb);
    }
    slot->addr = addr;
    slot->tagValid = true;
    slot->mode = WoMode::Invalid;
    slot->lru = nextLru++;

    pendingActive = true;
    pendingAddr = addr;
    pendingWrite = false;
    pendingCb = std::move(cb);

    BusOp req;
    req.txn = TxnType::Read;
    req.params = op::Request;
    req.addr = addr;
    req.origin = id;
    sys.theBus->request(static_cast<unsigned>(id), req);
    return false;
}

bool
MultiCache::write(Addr addr, std::uint64_t token, CompletionCb cb)
{
    Line *l = find(addr);
    if (l && (l->mode == WoMode::Reserved || l->mode == WoMode::Dirty)) {
        // Second and later writes stay local (write-once).
        l->token = token;
        l->mode = WoMode::Dirty;
        l->lru = nextLru++;
        ++statHits;
        return true;
    }

    assert(!pendingActive);
    pendingActive = true;
    pendingAddr = addr;
    pendingWrite = true;
    pendingToken = token;
    pendingCb = std::move(cb);

    if (l && l->mode == WoMode::Valid) {
        // First write to a valid copy: write the word through to
        // memory, invalidating all other copies.
        ++statHits;
        BusOp wt;
        wt.txn = TxnType::WriteBack;
        wt.params = op::Update | op::Request;  // word write-through
        wt.addr = addr;
        wt.origin = id;
        wt.data.token = token;
        sys.theBus->request(static_cast<unsigned>(id), wt);
        return false;
    }

    ++statMisses;
    Line *slot = allocSlot(addr);
    if (slot->tagValid && slot->mode == WoMode::Dirty
        && slot->addr != addr) {
        BusOp wb;
        wb.txn = TxnType::WriteBack;
        wb.params = op::Update;
        wb.addr = slot->addr;
        wb.origin = id;
        wb.hasData = true;
        wb.data.token = slot->token;
        sys.theBus->request(static_cast<unsigned>(id), wb);
    }
    slot->addr = addr;
    slot->tagValid = true;
    slot->mode = WoMode::Invalid;
    slot->lru = nextLru++;

    BusOp req;
    req.txn = TxnType::ReadMod;
    req.params = op::Request;
    req.addr = addr;
    req.origin = id;
    sys.theBus->request(static_cast<unsigned>(id), req);
    return false;
}

void
MultiCache::complete(std::uint64_t token)
{
    assert(pendingActive);
    pendingActive = false;
    CompletionCb cb = std::move(pendingCb);
    if (cb)
        cb(token);
}

void
MultiCache::snoop(const BusOp &bop)
{
    Line *l = find(bop.addr);

    switch (bop.txn) {
      case TxnType::Read:
        if (bop.is(op::Request)) {
            if (l && l->mode == WoMode::Dirty && bop.origin != id) {
                // Supply the data and update memory (write-once: the
                // dirty holder services the read and becomes valid).
                BusOp reply;
                reply.txn = TxnType::Read;
                reply.params = op::Reply | op::Update;
                reply.addr = bop.addr;
                reply.origin = bop.origin;
                reply.hasData = true;
                reply.data.token = l->token;
                sys.theBus->request(static_cast<unsigned>(id), reply);
                l->mode = WoMode::Valid;
            }
        } else if (bop.is(op::Reply)) {
            if (bop.origin == id && pendingActive && !pendingWrite
                && pendingAddr == bop.addr) {
                Line *slot = find(bop.addr);
                assert(slot);
                slot->mode = WoMode::Valid;
                slot->token = bop.data.token;
                complete(bop.data.token);
            }
        }
        break;

      case TxnType::ReadMod:
        if (bop.is(op::Request)) {
            if (bop.origin != id && l && l->mode != WoMode::Invalid) {
                if (l->mode == WoMode::Dirty) {
                    BusOp reply;
                    reply.txn = TxnType::ReadMod;
                    reply.params = op::Reply;
                    reply.addr = bop.addr;
                    reply.origin = bop.origin;
                    reply.hasData = true;
                    reply.data.token = l->token;
                    sys.theBus->request(static_cast<unsigned>(id),
                                        reply);
                }
                l->mode = WoMode::Invalid;
                ++statInvals;
            }
        } else if (bop.is(op::Reply)) {
            if (bop.origin == id && pendingActive && pendingWrite
                && pendingAddr == bop.addr) {
                Line *slot = find(bop.addr);
                assert(slot);
                slot->mode = WoMode::Dirty;
                slot->token = pendingToken;
                complete(pendingToken);
            }
        }
        break;

      case TxnType::WriteBack:
        if (bop.is(op::Request)) {
            // One-word write-through (first write to a valid line).
            if (bop.origin == id) {
                if (l) {
                    l->mode = WoMode::Reserved;
                    l->token = bop.data.token;
                }
                if (pendingActive && pendingWrite
                    && pendingAddr == bop.addr)
                    complete(bop.data.token);
            } else if (l && l->mode != WoMode::Invalid) {
                l->mode = WoMode::Invalid;
                ++statInvals;
            }
        }
        break;

      default:
        break;
    }
}

// ---------------------------------------------------------------------
// SingleBusMulti
// ---------------------------------------------------------------------

void
SingleBusMulti::Agent::snoop(const BusOp &op, bool)
{
    owner->snoopAll(op);
}

SingleBusMulti::SingleBusMulti(const MultiParams &params) : params(params)
{
    theBus = std::make_unique<Bus>("bus", eq, params.bus);
    // One slot per processor for fair round-robin arbitration, plus a
    // final slot used by memory replies. Only the last attached agent
    // (the system) actually snoops, giving one deterministic dispatch
    // per op.
    caches.reserve(params.numProcessors);
    for (NodeId id = 0; id < params.numProcessors; ++id) {
        caches.push_back(std::make_unique<MultiCache>(*this, id));
        struct Null : BusAgent
        {
            void snoop(const BusOp &, bool) override {}
        };
        static Null null_agent;
        unsigned s = theBus->attach(&null_agent);
        assert(s == id);
        (void)s;
    }
    agent.owner = this;
    slot = theBus->attach(&agent);
}

void
SingleBusMulti::snoopAll(const BusOp &op)
{
    // Caches snoop first (a dirty holder inhibits memory), then
    // memory.
    bool dirty_holder = false;
    for (auto &c : caches) {
        const MultiCache::Line *l = c->find(op.addr);
        if (l && l->mode == WoMode::Dirty && op.origin != c->id)
            dirty_holder = true;
    }
    for (auto &c : caches)
        c->snoop(op);
    if (!dirty_holder)
        memorySnoop(op);
}

void
SingleBusMulti::memorySnoop(const BusOp &bop)
{
    MemLine &l = mem[bop.addr];

    switch (bop.txn) {
      case TxnType::Read:
      case TxnType::ReadMod:
        if (bop.is(op::Request)) {
            BusOp reply;
            reply.txn = bop.txn;
            reply.params = op::Reply | op::Memory;
            reply.addr = bop.addr;
            reply.origin = bop.origin;
            reply.hasData = true;
            reply.data.token = l.token;
            memoryRespond(reply);
        }
        break;

      case TxnType::WriteBack:
        // Both the dirty-eviction writeback and the one-word
        // write-through update memory.
        l.token = bop.data.token;
        break;

      default:
        break;
    }

    // Absorb cache-supplied read replies that also update memory.
    if (bop.txn == TxnType::Read && bop.is(op::Reply)
        && bop.is(op::Update)) {
        l.token = bop.data.token;
    }
}

void
SingleBusMulti::memoryRespond(BusOp op)
{
    Tick start = std::max(eq.now(), memBusyUntil);
    memBusyUntil = start + params.memAccessTicks;
    eq.schedule(memBusyUntil,
                [this, op] { theBus->request(slot, op); });
}

bool
SingleBusMulti::memValid(Addr addr) const
{
    for (const auto &c : caches) {
        const MultiCache::Line *l = c->find(addr);
        if (l && l->mode == WoMode::Dirty)
            return false;
    }
    return true;
}

std::uint64_t
SingleBusMulti::memToken(Addr addr) const
{
    return mem[addr].token;
}

bool
SingleBusMulti::drain(Tick max_ticks)
{
    Tick deadline = eq.now() + max_ticks;
    while (eq.now() < deadline) {
        if (eq.empty() && theBus->pendingOps() == 0)
            return true;
        if (eq.empty())
            return true;
        eq.run(1);
    }
    return false;
}

} // namespace mcube
