/**
 * @file
 * Baseline: a dance-hall multiprocessor behind a multistage
 * interconnection network — the NYU Ultracomputer / RP3 / Butterfly
 * class the paper's introduction contrasts against: "since there are
 * no efficient mechanisms known for maintaining hardware cache
 * consistency among large-scale multiprocessors, these architectures
 * generally do not allow shared data blocks to migrate from global
 * shared memory to local memories or caches."
 *
 * Model: P processors and B interleaved memory banks joined by a
 * log2(P)-stage network. Private data lives in local memory (free);
 * every *shared* reference crosses the network both ways and queues
 * at its bank — there is no caching of shared blocks, so repeated
 * reads of the same datum pay the full round trip every time. This
 * isolates exactly the property the Multicube adds: migration of
 * shared lines into caches.
 */

#ifndef MCUBE_BASELINE_DANCEHALL_HH
#define MCUBE_BASELINE_DANCEHALL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

/** Configuration of the dance-hall machine. */
struct DancehallParams
{
    unsigned numProcessors = 64;
    unsigned numBanks = 64;
    Tick hopTicks = 100;        //!< per network stage, each direction
    Tick bankServiceTicks = 750;  //!< memory bank access (FIFO)
    /** Words moved per shared access (timing only; a block fetch
     *  would amortise, but without caching there is nowhere to put
     *  it — accesses are word-granular). */
    Tick wordTicks = 50;
};

/** The machine plus a rate-driven shared-access workload. */
class DancehallSystem
{
  public:
    explicit DancehallSystem(const DancehallParams &params);

    DancehallSystem(const DancehallSystem &) = delete;
    DancehallSystem &operator=(const DancehallSystem &) = delete;

    EventQueue &eventQueue() { return eq; }
    unsigned numProcessors() const { return params.numProcessors; }

    /** Network stages for this machine size: ceil(log2 P). */
    unsigned stages() const;

    /** One-way unloaded network latency. */
    Tick networkLatency() const;

    /**
     * Issue one shared access (read or write) from @p proc to
     * @p addr; @p cb fires when the reply returns. Exactly one
     * outstanding access per processor.
     */
    void access(NodeId proc, Addr addr, bool is_write,
                std::uint64_t token, std::function<void(std::uint64_t)> cb);

    bool busy(NodeId proc) const { return inFlight[proc]; }

    std::uint64_t memToken(Addr addr) const { return mem[addr]; }

    /** Mean bank utilisation since construction. */
    double bankUtilization() const;

    std::uint64_t accesses() const { return statAccesses.value(); }

  private:
    DancehallParams params;
    EventQueue eq;
    std::vector<bool> inFlight;
    std::vector<Tick> bankBusyUntil;
    std::vector<Tick> bankBusyTotal;
    mutable std::unordered_map<Addr, std::uint64_t> mem;
    Counter statAccesses;
};

/** Rate workload mirroring the Multicube mix's shared component. */
class DancehallWorkload
{
  public:
    /**
     * @param sys Machine to drive.
     * @param requests_per_ms Shared accesses per ms per processor.
     * @param frac_write Store fraction.
     * @param shared_lines Size of the contended address pool.
     * @param seed RNG seed.
     */
    DancehallWorkload(DancehallSystem &sys, double requests_per_ms,
                      double frac_write = 0.25,
                      std::uint64_t shared_lines = 4096,
                      std::uint64_t seed = 21);

    void start();
    void
    stop()
    {
        running = false;
        stopTick = sys.eventQueue().now();
    }

    double efficiency() const;
    std::uint64_t completed() const { return done; }

  private:
    struct Agent
    {
        NodeId id = 0;
        Random rng;
        std::uint64_t nextToken = 1;
    };

    void scheduleNext(Agent &a);
    void issue(Agent &a);

    DancehallSystem &sys;
    double rate;
    double fracWrite;
    std::uint64_t sharedLines;
    Random seeder;
    std::vector<Agent> agents;
    bool running = false;
    Tick startTick = 0;
    Tick stopTick = 0;
    std::uint64_t done = 0;
};

} // namespace mcube

#endif // MCUBE_BASELINE_DANCEHALL_HH
