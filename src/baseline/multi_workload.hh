/**
 * @file
 * Rate-driven synthetic workload for the single-bus multi baseline —
 * the same think/transact cycle and class mix as proc/MixWorkload, so
 * the Multicube-vs-multi comparison (bench_vs_single_bus) holds the
 * workload constant and varies only the interconnect.
 */

#ifndef MCUBE_BASELINE_MULTI_WORKLOAD_HH
#define MCUBE_BASELINE_MULTI_WORKLOAD_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baseline/single_bus_multi.hh"
#include "proc/mix_workload.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace mcube
{

/** Drives every processor of a SingleBusMulti with the mix. */
class MultiMixWorkload
{
  public:
    MultiMixWorkload(SingleBusMulti &sys, const MixParams &params);

    void start();

    void
    stop()
    {
        running = false;
        stopTick = sys.eventQueue().now();
    }

    /** Paper's efficiency metric since start(). */
    double efficiency() const;

    std::uint64_t totalCompleted() const { return completedCount; }

  private:
    struct Agent
    {
        NodeId id = 0;
        Random rng;
        Tick computeTicks = 0;
        std::uint64_t nextToken = 1;
    };

    void scheduleNext(Agent &a);
    void issue(Agent &a);
    bool pickModified(Agent &a, Addr &addr_out);

    SingleBusMulti &sys;
    MixParams params;
    Random seeder;
    std::vector<Agent> agents;
    Tick startTick = 0;
    Tick stopTick = 0;
    bool running = false;
    std::uint64_t completedCount = 0;

    std::unordered_map<Addr, NodeId> modifiedBy;
    std::vector<Addr> modifiedList;
};

} // namespace mcube

#endif // MCUBE_BASELINE_MULTI_WORKLOAD_HH
