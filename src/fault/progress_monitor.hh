/**
 * @file
 * Global progress (deadlock/livelock) monitor for a MulticubeSystem.
 *
 * Periodically samples the system and declares a stall when some
 * controller has an outstanding transaction but the global completion
 * count has not advanced for a configurable number of consecutive
 * checks. Two stall shapes are distinguished in the report:
 *
 *  - deadlock: bus traffic has also stopped (nothing in flight at
 *    all — an op was lost and no recovery path fired);
 *  - livelock: bus ops keep flowing but no transaction ever finishes
 *    (e.g. a request circling between a bouncing memory module and a
 *    reissuing row controller).
 *
 * Instead of letting a test hang, the monitor captures every
 * controller's pendingInfo() plus the MLT and memory valid-bit state
 * (MulticubeSystem::dumpPendingState) into a report and invokes an
 * optional callback, so stuck runs fail with a diagnosis.
 *
 * The periodic event self-cancels once it is the only thing left in
 * the event queue and no transaction is outstanding, so drain() still
 * terminates with a monitor attached.
 */

#ifndef MCUBE_FAULT_PROGRESS_MONITOR_HH
#define MCUBE_FAULT_PROGRESS_MONITOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/types.hh"

namespace mcube
{

class MulticubeSystem;

/** Configuration of a ProgressMonitor. */
struct ProgressMonitorParams
{
    /** Sampling period. Must comfortably exceed the worst-case
     *  transaction latency (including watchdog backoff rounds) or
     *  slow-but-live transactions will be miscalled as stalls. */
    Tick checkIntervalTicks = 250'000;
    /** Consecutive no-progress checks before declaring a stall. */
    unsigned stallChecks = 4;
    /**
     * Invoked on every check that finds the system healthy: either a
     * transaction completed since the last check, or nothing is
     * outstanding at all (idle/draining). A supervised worker wires
     * this to its heartbeat pipe (run::Heartbeat::beat), so a
     * livelocked run — busy but completing nothing — goes silent and
     * the supervisor can tell it from a merely slow one. Pure
     * observation: must not touch simulation state or RNG streams.
     */
    std::function<void()> onProgress{};
};

/** Watches a system for quiescence-with-outstanding-work. */
class ProgressMonitor
{
  public:
    using StallCb = std::function<void(const std::string &)>;

    ProgressMonitor(MulticubeSystem &sys,
                    const ProgressMonitorParams &params = {},
                    StallCb on_stall = {});

    ProgressMonitor(const ProgressMonitor &) = delete;
    ProgressMonitor &operator=(const ProgressMonitor &) = delete;

    /** Begin (or resume) periodic checking. */
    void start();

    /** Stop checking after the current interval. */
    void stop() { running = false; }

    /** True once a stall has been declared. */
    bool stalled() const { return _stalled; }

    /** Diagnosis captured when the stall was declared. */
    const std::string &report() const { return _report; }

    /** Checks performed so far. */
    std::uint64_t checksRun() const { return _checks; }

  private:
    void check();

    /** Transactions completed across all controllers. */
    std::uint64_t totalCompletions() const;

    /** True if any controller has an outstanding transaction. */
    bool anyBusy() const;

    MulticubeSystem &sys;
    ProgressMonitorParams params;
    StallCb onStall;

    bool running = false;
    bool _stalled = false;
    unsigned noProgress = 0;
    std::uint64_t lastCompletions = 0;
    std::uint64_t lastBusOps = 0;
    std::uint64_t _checks = 0;
    std::string _report;
};

} // namespace mcube

#endif // MCUBE_FAULT_PROGRESS_MONITOR_HH
