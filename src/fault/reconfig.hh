/**
 * @file
 * Fail-stop detection, quarantine, and epoch-based reconfiguration.
 *
 * The paper's robustness story (Appendix A / "Timing Considerations")
 * covers *transient* losses: any dropped or mis-routed op eventually
 * bounces off the memory valid bit and retries. A permanently dead
 * component breaks that loop — requests for its lines bounce forever.
 * The ReconfigurationManager closes it for fail-stop faults
 * (docs/ROBUSTNESS.md):
 *
 *  1. **Kill.** FaultPlan specs of the FailStop* kinds name a victim
 *     (a row/column bus, one snooping controller, or one memory
 *     module) and a tick. At that tick the manager darkens the
 *     component: Bus::failStop / SnoopController::retire /
 *     MemoryModule::failStop, plus GridMap::markUnreachable for every
 *     retired node. Nothing else learns of the fault — the surviving
 *     protocol engines keep reissuing into the void.
 *
 *  2. **Detect.** Every controller's watchdog reissue feeds the
 *     onWatchdogReissue hook with its per-transaction reissue count.
 *     Reports at or past `escalationThreshold` reissues count toward
 *     each executed-but-undetected kill; at `detectThreshold` such
 *     reports the kill is *detected* (time_to_detect sampled). A
 *     deadline at kill + detectTimeoutTicks force-detects kills that
 *     no surviving traffic happens to trip over.
 *
 *  3. **Reconfigure.** drainTicks after detection the epoch cutover
 *     runs: dead caches are audited, MLT entries and presence-filter
 *     counts naming retired owners are purged from the surviving
 *     column copies, memory is revalidated with its stale copy for
 *     every dirty line that died (counted in data_loss_lines and
 *     recorded in the checker's golden history via onLineLost), lines
 *     homed on a dead memory module are quarantined out of every live
 *     cache, and in-flight transactions touching affected lines are
 *     aborted (TxnResult::aborted). Service resumes on the surviving
 *     grid; epochs counts the transitions.
 *
 * A *graceful* retire (FaultSpec::graceful) is staged so nothing is
 * ever lost in flight: at atTick the dying nodes close their
 * processor side (pendings aborted, workload agents park, in-flight
 * replies still parked back to memory) and any dying memory column is
 * quarantined from new traffic; half a quiesce window later the dying
 * nodes silence their ports (no reply naming them is ever queued on a
 * bus about to die — requests for their lines bounce off the invalid
 * memory copy and retry); at atTick + gracefulQuiesceTicks the
 * clairvoyant scrub writes every dirty line the dying component still
 * owns back to a live home memory and the component darkens. With the
 * wire quiet by construction, data_loss_lines stays 0 — the
 * availability/durability upper bound for the same kill.
 *
 * Losses the cutover cannot see (a grant in flight into a component
 * that died before claiming it leaves a tabled line with no owner)
 * self-heal lazily: escalation reports age per line, and once a line
 * has been stuck past phantomGraceTicks with no live modified holder
 * and an invalid memory copy, the manager repairs it — table entries
 * dropped, memory revalidated stale, loss counted — and the next
 * watchdog reissue is served normally. Because a line can also look
 * owner-less for the instant an ownership transfer is legitimately on
 * a live wire, every repair re-verifies after repairSettleTicks and
 * only then commits. The cutover seeds the same path for every
 * address the dead nodes had in flight, so phantoms whose waiters it
 * aborted (and which no one may ever touch again) still get repaired
 * deterministically.
 *
 * The checker cooperates across the window where all of this is in
 * motion: each executed kill opens a "degraded window"
 * (CoherenceChecker::beginDegradedWindow) in which lenient-sweep
 * I6/I7 offences age without being reported — a tabled line whose
 * owner just died *is* the symptom being repaired — and the manager
 * closes it a fixed lag after the cutover, sized so every bounded
 * repair above has settled. Per-op invariants and strict sweeps stay
 * armed throughout.
 *
 * Everything here is deterministic: no RNG, all decisions are pure
 * functions of (tick, hook call stream), so fixed-seed runs remain
 * bit-identical — the PR 4/5 determinism contract.
 */

#ifndef MCUBE_FAULT_RECONFIG_HH
#define MCUBE_FAULT_RECONFIG_HH

#include <cstdint>
#include <vector>

#include "fault/fault_injector.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

class MulticubeSystem;
class CoherenceChecker;

/** Tuning knobs of the detection/reconfiguration state machine. */
struct ReconfigParams
{
    /** Watchdog reissues on one transaction before its report counts
     *  as a fail-stop symptom (transients recover in one or two). */
    unsigned escalationThreshold = 3;
    /** Escalated reports needed to declare a kill detected. */
    unsigned detectThreshold = 4;
    /** Detection-to-cutover delay, letting in-flight ops on surviving
     *  buses deliver before the state audit runs. */
    Tick drainTicks = 200'000;
    /** Force detection this long after a kill even if no surviving
     *  traffic trips over the corpse. */
    Tick detectTimeoutTicks = 8'000'000;
    /** How long a line must stay stuck (escalations, no live modified
     *  holder, invalid memory) before the lazy phantom repair fires.
     *  Must exceed any legitimate in-flight ownership-transfer window. */
    Tick phantomGraceTicks = 200'000;
    /** Graceful kills only: delay between the spec's atTick (processor
     *  side closes) and the actual darkening; the dying component's
     *  ports silence halfway through. Sized so in-flight replies land
     *  and the dying component's queued traffic drains first. */
    Tick gracefulQuiesceTicks = 100'000;
    /** A repair candidate must still look like a phantom after this
     *  settle delay before the repair commits — an ownership transfer
     *  legitimately on a live wire lands well within it. */
    Tick repairSettleTicks = 10'000;
};

/**
 * Executes the FailStop* specs of a FaultPlan against a system and
 * degrades it gracefully. Construct after the system and the checker;
 * plans without fail-stop specs need no manager (planNeedsReconfig).
 */
class ReconfigurationManager
{
  public:
    ReconfigurationManager(MulticubeSystem &sys, const FaultPlan &plan,
                           CoherenceChecker *checker = nullptr,
                           const ReconfigParams &params = {});

    ReconfigurationManager(const ReconfigurationManager &) = delete;
    ReconfigurationManager &operator=(const ReconfigurationManager &) =
        delete;

    /** True if @p plan contains any FailStop* spec. */
    static bool planNeedsReconfig(const FaultPlan &plan);

    /** Degradation epoch (0 until the first cutover). */
    unsigned epoch() const { return static_cast<unsigned>(
        statEpochs.value()); }

    /** Dirty lines accounted as lost across all cutovers/repairs. */
    std::uint64_t dataLossLines() const
    {
        return statDataLoss.value();
    }

    /** @{ Stat accessors for benches and tests. */
    std::uint64_t kills() const { return statKills.value(); }
    std::uint64_t detections() const { return statDetections.value(); }
    std::uint64_t timeoutDetections() const
    {
        return statTimeoutDetections.value();
    }
    std::uint64_t abortedTxns() const { return statAborted.value(); }
    std::uint64_t phantomRepairs() const
    {
        return statPhantomRepairs.value();
    }
    std::uint64_t quarantinedNodes() const
    {
        return statQuarantinedNodes.value();
    }
    /** Kill-to-detection latency of each detected kill, in kill
     *  detection order. */
    const std::vector<Tick> &detectLatencies() const
    {
        return _detectLatencies;
    }
    /** Detection-to-cutover latency of each completed epoch
     *  transition. */
    const std::vector<Tick> &reconfigureLatencies() const
    {
        return _reconfigLatencies;
    }
    /** @} */

    /** True if @p addr is homed on a fail-stopped memory module. */
    bool addrQuarantined(Addr addr) const;

    /**
     * True if node @p req can still get a request for @p addr served
     * on the degraded grid. Requests are row-first and cannot be
     * rerouted (unlike replies, which fall back to the other
     * diagonal): @p req reaches the home column only through its
     * row-mate there, and reaches a modified owner only through its
     * row-mate on the owner's column. Workload filters consult this
     * before issuing; the cutover and the escalation backstop abort
     * pendings for which it has turned false.
     */
    bool requestRoutable(NodeId req, Addr addr) const;

    /** True if node @p id has been retired by an executed kill. */
    bool nodeRetired(NodeId id) const;

    /** Register the "reconfig" stat group under @p parent. */
    void regStats(StatGroup &parent);

  private:
    /** One scheduled fail-stop and its detection lifecycle. */
    struct Kill
    {
        FaultSpec spec;
        bool executed = false;
        bool detected = false;
        bool reconfigured = false;
        Tick killedAt = 0;
        Tick detectedAt = 0;
        unsigned detectCount = 0;
        /** Nodes this kill retires (captured at execution). */
        std::vector<NodeId> deadNodes;
        /** Pending addresses the dead nodes held at the kill tick
         *  (their transactions may root live waiter chains). */
        std::vector<Addr> inFlightAddrs;
        /** Column whose memory this kill quarantines; -1 = none. */
        int quarantineColumn = -1;
    };

    /** Hook target: a controller reissued its pending transaction. */
    void onReissue(NodeId node, Addr addr, unsigned count);

    /** Kill entry point at the spec's atTick: darkens immediately, or
     *  starts the graceful quiesce staging (see file comment). */
    void executeKill(std::size_t k);
    /** Graceful phase 2: silence the dying nodes' ports. */
    void silenceKill(std::size_t k);
    /** Actually darken the component (phase 3 of a graceful kill). */
    void darken(std::size_t k);
    void detect(std::size_t k, bool by_timeout);
    void cutover(std::size_t k);

    /** Graceful scrub at the darken tick (see file comment). */
    void scrubNode(NodeId id);
    void scrubColumn(unsigned column);

    /** Close the processor side of @p id ahead of a graceful kill. */
    void drainNode(NodeId id);

    /** Quarantine @p column's address range (idempotent). */
    void quarantineColumnNow(unsigned column, Kill &kill);

    /** Every node this kill will retire (kind/dim dispatch). */
    std::vector<NodeId> killTargets(const Kill &kill) const;

    /** How long after a cutover the checker's degraded window stays
     *  open: every bounded repair has settled by then. */
    Tick degradedWindowLag() const;

    /** Retire one controller and mark it unreachable. */
    void retireNode(NodeId id, Kill &kill);

    /** Drop @p addr's MLT entry from every live node of @p column. */
    void dropTableColumnWide(unsigned column, Addr addr);

    /** Account one dirty line of dead node @p owner as lost (unless
     *  quarantined, which has its own accounting) and revalidate the
     *  home memory with its stale copy. */
    void loseLine(NodeId owner, Addr addr);

    /** Abort every live controller's pending transaction on @p addr. */
    void abortPendingOn(Addr addr);

    /** Cutover sweep: live nodes flush (straight into memory) dirty
     *  lines whose home-column row relay died — they could never be
     *  written back through the protocol again — and live pendings
     *  that are no longer requestRoutable are aborted. Flushes move
     *  current data, so they cost no loss. Lock lines flushed this way
     *  are appended to @p affected so their waiter chains abort. */
    void flushUnservableLines(std::vector<Addr> &affected);

    /** True if @p addr currently has no modified holder anywhere and
     *  an invalid (non-quarantined) home memory copy. */
    bool looksPhantom(Addr addr) const;

    /** Lazy phantom repair attempt for @p addr (see file comment):
     *  verifies, then re-verifies after repairSettleTicks via
     *  confirmPhantomRepair before committing the repair. */
    void tryPhantomRepair(Addr addr);
    void confirmPhantomRepair(Addr addr);

    MulticubeSystem &sys;
    CoherenceChecker *checker;
    ReconfigParams params;

    std::vector<Kill> kills_;
    std::vector<std::uint8_t> retired_;   //!< per-node retired flag
    std::vector<std::uint8_t> quarCols;   //!< per-column quarantine
    bool anyQuarantine = false;
    bool anyKillExecuted = false;

    /** Lock lines scrubbed by the current kill's graceful pass; their
     *  waiter chains route into the cutover's abort set. */
    std::vector<Addr> scrubbedLockAddrs;

    /** First escalated-report tick per still-stuck line (lazy phantom
     *  repair); entries are erased once repaired or re-owned. */
    FlatMap<Addr, Tick> stuckSince;

    std::vector<Tick> _detectLatencies;
    std::vector<Tick> _reconfigLatencies;

    Counter statKills;
    Counter statDetections;
    Counter statTimeoutDetections;
    Counter statEpochs;
    Counter statDataLoss;
    Counter statAborted;
    Counter statQuarantinedNodes;
    Counter statPhantomRepairs;
    Histogram statTimeToDetect;
    Histogram statTimeToReconfigure;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_FAULT_RECONFIG_HH
