#include "fault/progress_monitor.hh"

#include <sstream>

#include "core/system.hh"
#include "sim/log.hh"

namespace mcube
{

ProgressMonitor::ProgressMonitor(MulticubeSystem &sys,
                                 const ProgressMonitorParams &params,
                                 StallCb on_stall)
    : sys(sys), params(params), onStall(std::move(on_stall))
{
}

void
ProgressMonitor::start()
{
    if (running)
        return;
    running = true;
    lastCompletions = totalCompletions();
    lastBusOps = sys.totalBusOps();
    noProgress = 0;
    sys.eventQueue().scheduleIn(params.checkIntervalTicks,
                                [this] { check(); });
}

std::uint64_t
ProgressMonitor::totalCompletions() const
{
    std::uint64_t total = 0;
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        total += sys.node(id).missLatency().count();
    return total;
}

bool
ProgressMonitor::anyBusy() const
{
    for (NodeId id = 0; id < sys.numNodes(); ++id)
        if (sys.node(id).busy())
            return true;
    return false;
}

void
ProgressMonitor::check()
{
    if (!running)
        return;
    ++_checks;

    std::uint64_t completions = totalCompletions();
    std::uint64_t bus_ops = sys.totalBusOps();
    bool busy = anyBusy();

    if (!busy || completions != lastCompletions) {
        noProgress = 0;
        if (params.onProgress)
            params.onProgress();
    } else if (++noProgress >= params.stallChecks && !_stalled) {
        _stalled = true;
        std::ostringstream oss;
        bool traffic = bus_ops != lastBusOps;
        oss << (traffic ? "LIVELOCK" : "DEADLOCK") << " at tick "
            << sys.eventQueue().now() << ": no transaction completed in "
            << noProgress * params.checkIntervalTicks << " ticks ("
            << (traffic ? "bus ops still flowing"
                        : "no bus traffic either")
            << ")\n"
            << sys.dumpPendingState();
        _report = oss.str();
        MCUBE_LOG(LogCat::Check, sys.eventQueue().now(), _report);
        if (onStall)
            onStall(_report);
    }

    lastCompletions = completions;
    lastBusOps = bus_ops;

    // Self-cancel when the workload is over and only this event keeps
    // the queue alive, so drain() terminates.
    if (!busy && sys.eventQueue().size() == 0) {
        running = false;
        return;
    }
    sys.eventQueue().scheduleIn(params.checkIntervalTicks,
                                [this] { check(); });
}

} // namespace mcube
