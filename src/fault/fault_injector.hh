/**
 * @file
 * Bus-level fault injection for the Multicube.
 *
 * The paper's "Timing Considerations" robustness claim is that the
 * valid-bit-per-memory-line makes the protocol self-healing: requests
 * that are mis-routed (or simply discarded by a controller) bounce off
 * memory and retry. The FaultInjector turns that claim into a testable
 * subsystem: it taps every bus of a MulticubeSystem (the same attach
 * pattern as CoherenceChecker, but at the enqueue side via
 * Bus::setFaultHook) and applies a seeded FaultPlan — dropping
 * requests, dropping recoverable replies, delaying ops, duplicating
 * requests — while the controller-side transaction watchdog provides
 * the retry half of the loop.
 *
 * Eligibility rules (what may be faulted) are part of the model, not
 * an implementation detail. The protocol is memoryless, so the only
 * losses it can recover from are those where either the state needed
 * to re-serve the transaction still exists somewhere, or the op will
 * be regenerated:
 *
 *  - DropRequest: any op with op::Request. The requester's watchdog
 *    reissues; MLT/memory state is only changed by *delivered* ops.
 *  - DropReply: replies whose loss strands no state — failure notices
 *    (op::Fail), SYNC queue acks (the chain still points at the
 *    waiter), and memory READ data (op::NoPurge; memory stays valid).
 *    Data-carrying ownership transfers are never dropped: the reply
 *    is the only copy of the line, which no retry can resurrect.
 *  - Delay: any op. Delivery remains an atomic broadcast, so MLT
 *    column agreement (checker I5) is unaffected; delays only widen
 *    the windows the protocol already tolerates.
 *  - Duplicate: request ops except ALLOCATE. A stale duplicate
 *    request is re-served and the spurious reply parked back to
 *    memory (see SnoopController's duplicate-reply guards); an
 *    ALLOCATE ack carries no data, so a spurious one cannot be
 *    reconstructed into a parkable line.
 *
 * Every spec can be probabilistic (deterministically seeded) or an
 * explicit schedule ("fire on the k-th eligible op") for regression
 * repros. Per-fault-type counters land in the system stats tree under
 * "fault".
 */

#ifndef MCUBE_FAULT_FAULT_INJECTOR_HH
#define MCUBE_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/bus.hh"
#include "bus/bus_op.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcube
{

class MulticubeSystem;

/** The injectable fault classes. */
enum class FaultKind : std::uint8_t
{
    DropRequest,  //!< discard a request op at enqueue
    DropReply,    //!< discard a recoverable reply op
    Delay,        //!< enqueue the op late
    Duplicate,    //!< enqueue a request twice
};

/** Text name of a fault kind (stat names, reports). */
const char *toString(FaultKind kind);

/** One fault rule of a plan. */
struct FaultSpec
{
    FaultKind kind = FaultKind::DropRequest;
    /** Per-eligible-op injection probability (ignored when atMatches
     *  is non-empty). */
    double prob = 0.0;
    /** Extra ticks for FaultKind::Delay. */
    Tick delayTicks = 2000;
    /** Restrict to row (0) or column (1) buses; -1 = both. */
    int busDim = -1;
    /** Restrict to one bus index within the dimension; -1 = all. */
    int busIndex = -1;
    /** Restrict to one transaction type. */
    std::optional<TxnType> txn{};
    /**
     * Deterministic schedule: fire exactly on these (0-based) indices
     * of the spec's eligible-op match stream. Exact repro handle for
     * regressions; overrides prob.
     */
    std::vector<std::uint64_t> atMatches{};
    /** Cap on total injections by this spec. */
    std::uint64_t maxInjections = UINT64_MAX;
    /** Active window in simulated time. */
    Tick activeFrom = 0;
    Tick activeUntil = maxTick;
};

/** A complete, reproducible fault campaign configuration. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultSpec> specs{};

    /** @{ Convenience constructors for the common single-fault plans. */
    static FaultPlan dropRequests(double prob, std::uint64_t seed = 1);
    static FaultPlan dropReplies(double prob, std::uint64_t seed = 1);
    static FaultPlan delays(double prob, Tick delay_ticks,
                            std::uint64_t seed = 1);
    static FaultPlan duplicates(double prob, std::uint64_t seed = 1);
    /** @} */
};

/**
 * Applies a FaultPlan to every bus of a system. Construct after the
 * system (and alongside a CoherenceChecker); detaches automatically on
 * destruction.
 */
class FaultInjector
{
  public:
    FaultInjector(MulticubeSystem &sys, const FaultPlan &plan);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** @{ Per-fault-type injection counts. */
    std::uint64_t requestsDropped() const
    {
        return statDropRequest.value();
    }
    std::uint64_t repliesDropped() const
    {
        return statDropReply.value();
    }
    std::uint64_t opsDelayed() const { return statDelay.value(); }
    std::uint64_t opsDuplicated() const
    {
        return statDuplicate.value();
    }
    std::uint64_t totalInjections() const;
    /** Ops offered to the hook across all buses. */
    std::uint64_t opsSeen() const { return statSeen.value(); }
    /** @} */

    /** True if @p op may be faulted with @p kind at all (the
     *  recoverability rules above); exposed for tests. */
    static bool eligible(FaultKind kind, const BusOp &op);

    /** Register the "fault" stat group under @p parent. */
    void regStats(StatGroup &parent);

  private:
    struct Hook : BusFaultHook
    {
        FaultInjector *inj = nullptr;
        int dim = 0;    //!< 0 = row bus, 1 = column bus
        int index = 0;  //!< bus index within the dimension

        FaultAction onEnqueue(const Bus &bus, const BusOp &op) override;
    };

    /** Mutable per-spec match/injection bookkeeping. */
    struct SpecState
    {
        std::uint64_t matches = 0;     //!< eligible ops seen
        std::uint64_t injections = 0;  //!< faults actually fired
    };

    FaultAction decide(const Hook &hook, const BusOp &op);
    bool specApplies(const FaultSpec &spec, SpecState &state,
                     const Hook &hook, const BusOp &op);

    MulticubeSystem &sys;
    FaultPlan plan;
    Random rng;
    std::vector<std::unique_ptr<Hook>> hooks;
    std::vector<SpecState> states;

    Counter statSeen;
    Counter statDropRequest;
    Counter statDropReply;
    Counter statDelay;
    Counter statDuplicate;
    StatGroup stats;
};

} // namespace mcube

#endif // MCUBE_FAULT_FAULT_INJECTOR_HH
